// Load test of the multi-tenant PMM job service (DESIGN.md §5.15) on the
// deterministic virtual clock: open-loop Poisson arrivals drain through
// the DWRR JobQueue into modeled-plane executions priced by one run_pmm
// per distinct job signature, so every latency percentile, shed fraction,
// and fairness share below is bit-identical across runs and machines —
// bench/BENCH_service.json commits them and CI gates at 1.05x.
//
// Scenarios (all sharing one RuntimeContext and one memoized price model):
//  * steady   — offered load at 50% of service capacity: nothing sheds.
//  * overload — offered load at --overload x capacity: admission control
//    sheds the excess at the door and throughput must NOT collapse (gate:
//    overload throughput >= steady throughput).
//  * fairness — two tenants with --weight-ratio DWRR weights, both
//    saturating: served work must split within --fairness-tol of the
//    weights (gate), demonstrating a flooding tenant cannot starve one
//    paying for priority.
//  * reuse    — the same job executed repeatedly with its signature as
//    plan_cache_key: the repeat must hit the RuntimeContext plan cache and
//    the shared-schedule cache, and its virtual time must be bit-identical
//    to the cold run (gates) — the cross-job reuse the shared runtime buys.
//
// Flags: --n 3072  --jobs 400  --fair-jobs 4000  --executors 2
//        --overload 2  --seed 1  --depth 48  --batch-limit 8  --quantum 4
//        --weight-ratio 10  --fairness-tol 0.15  --csv  --json FILE
//        (Google-Benchmark JSON for tools/compare_bench.py, committed
//        baseline bench/BENCH_service.json)
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/core/runner.hpp"
#include "src/service/simulator.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using summagen::benchjson::JsonEntry;

/// CPM config on the paper platform, modeled engine (virtual times only).
summagen::core::ExperimentConfig job_config(std::int64_t n,
                                            summagen::partition::Shape shape,
                                            std::uint64_t seed) {
  summagen::core::ExperimentConfig config;
  config.platform = summagen::device::Platform::hclserver1();
  config.n = n;
  config.shape = shape;
  config.regime = summagen::core::Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.engine = summagen::sgmpi::Engine::kModeled;
  config.seed = seed;
  return config;
}

std::vector<std::pair<std::string, double>> scenario_counters(
    const summagen::service::ScenarioReport& r) {
  return {{"latency_p50_s", r.latency.p50_s},
          {"latency_p95_s", r.latency.p95_s},
          {"latency_p99_s", r.latency.p99_s},
          {"latency_mean_s", r.latency.mean_s},
          {"throughput_jobs_per_s", r.throughput_jobs_per_s},
          {"shed_fraction", r.shed_fraction},
          {"completed", static_cast<double>(r.completed)},
          {"batches", static_cast<double>(r.batches)},
          {"batched_jobs", static_cast<double>(r.batched_jobs)}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 3072);
  const std::int64_t jobs = cli.get_int("jobs", 400);
  const std::int64_t fair_jobs = cli.get_int("fair-jobs", 4000);
  const int executors = static_cast<int>(cli.get_int("executors", 2));
  const double overload = cli.get_double("overload", 2.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t depth = static_cast<std::size_t>(cli.get_int("depth", 48));
  const std::size_t batch_limit =
      static_cast<std::size_t>(cli.get_int("batch-limit", 8));
  const double quantum = cli.get_double("quantum", 4.0);
  const double weight_ratio = cli.get_double("weight-ratio", 10.0);
  const double fairness_tol = cli.get_double("fairness-tol", 0.15);
  const bool csv = cli.get_bool("csv", false);

  // One shared runtime for every pricing run and the reuse probe: the plan
  // cache, pack cache, and schedule cache live here across all scenarios.
  core::RuntimeContext runtime;
  const service::ServiceModel model = service::modeled_service_time();

  // Workload mix: three shapes at two sizes. Mean service time prices the
  // offered-load scale so "2x overload" means 2x actual capacity.
  const std::vector<partition::Shape> shapes = {
      partition::Shape::kSquareCorner, partition::Shape::kSquareRectangle,
      partition::Shape::kBlockRectangle};
  std::vector<service::JobTemplate> mix;
  double mean_service_s = 0.0;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    service::JobTemplate jt;
    jt.config = job_config(i == 2 ? n / 2 : n, shapes[i], /*seed=*/42);
    jt.config.plan_cache_key = service::job_signature(jt.config);
    mix.push_back(jt);
    mean_service_s += model(jt.config);
  }
  mean_service_s /= static_cast<double>(mix.size());
  const double capacity_jobs_per_s =
      static_cast<double>(executors) / mean_service_s;

  service::ScenarioOptions base;
  base.executors = executors;
  base.seed = seed;
  base.queue.max_depth = depth;
  base.queue.batch_limit = batch_limit;
  base.queue.quantum_units = quantum;
  base.tenants = {{"alpha", 1.0, 1.0, mix}, {"beta", 1.0, 1.0, mix}};

  const auto run_at = [&](double rate_scale, std::int64_t arrival_count) {
    service::ScenarioOptions opts = base;
    opts.arrival_rate_per_s = rate_scale * capacity_jobs_per_s;
    opts.duration_s =
        static_cast<double>(arrival_count) / opts.arrival_rate_per_s;
    return service::simulate(opts, model);
  };
  const auto steady = run_at(0.5, jobs);
  // Batching multiplies the effective service rate by up to batch_limit,
  // so offer overload x batch_limit x the unbatched capacity: whatever
  // batch sizes actually materialise, the offered load is at least
  // `overload` x the achievable rate and admission control must shed.
  const auto over =
      run_at(overload * static_cast<double>(batch_limit), jobs);

  // Fairness: distinct fill seeds keep the tenants' signatures disjoint
  // (cross-tenant batching would split costs and mask the shares) and
  // batching off keeps served units exactly the DWRR allocation. The
  // per-tenant depth bound is what lets gold keep entering while bronze
  // floods; without it bronze's backlog fills the global queue and gold
  // sheds at the door regardless of its weight. The window is long
  // (--fair-jobs) so the saturated steady state dominates the startup and
  // drain transients, during which served shares track admission, not
  // weights.
  service::ScenarioOptions fair = base;
  fair.queue.batch_limit = 1;
  fair.queue.max_tenant_depth = 8;
  std::vector<service::JobTemplate> gold_mix = mix;
  for (auto& jt : gold_mix) {
    jt.config.seed = 43;
    jt.config.plan_cache_key = service::job_signature(jt.config);
  }
  fair.tenants = {{"gold", weight_ratio, 1.0, gold_mix},
                  {"bronze", 1.0, 1.0, mix}};
  fair.arrival_rate_per_s = 2.0 * overload * capacity_jobs_per_s;
  fair.duration_s = static_cast<double>(fair_jobs) / fair.arrival_rate_per_s;
  const auto fairness = service::simulate(fair, model);
  const double gold_units = fairness.tenants[0].queue.service_units;
  const double bronze_units = fairness.tenants[1].queue.service_units;
  const double achieved_ratio =
      bronze_units > 0.0 ? gold_units / bronze_units : 0.0;
  const double fairness_error =
      achieved_ratio > 0.0
          ? std::abs(achieved_ratio - weight_ratio) / weight_ratio
          : 1.0;

  // Reuse probe: same config, signature as plan key — the repeat must be
  // plan-cache and schedule-cache served, at bit-identical virtual time.
  core::ExperimentConfig probe = mix.front().config;
  const auto cold = core::run_pmm(probe);
  const auto warm = core::run_pmm(probe);

  util::Table t("Service load, N=" + std::to_string(n) + ", " +
                std::to_string(executors) + " executors, capacity " +
                util::Table::num(capacity_jobs_per_s, 3) + " jobs/s");
  t.set_header({"scenario", "offered/s", "submitted", "shed", "completed",
                "p50_s", "p99_s", "tput/s"});
  const auto add_scenario = [&t](const std::string& name,
                                 const service::ScenarioReport& r) {
    t.add_row({name, util::Table::num(r.offered_jobs_per_s, 3),
               std::to_string(r.submitted), std::to_string(r.shed),
               std::to_string(r.completed), util::Table::num(r.latency.p50_s, 3),
               util::Table::num(r.latency.p99_s, 3),
               util::Table::num(r.throughput_jobs_per_s, 3)});
  };
  add_scenario("steady", steady);
  add_scenario("overload", over);
  add_scenario("fairness", fairness);
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\nfairness (gold:bronze weights "
            << util::Table::num(weight_ratio, 1)
            << ":1): served units " << util::Table::num(gold_units, 1) << " : "
            << util::Table::num(bronze_units, 1) << " -> ratio "
            << util::Table::num(achieved_ratio, 2) << " (error "
            << util::Table::num(100.0 * fairness_error, 1) << "%)\n";
  std::cout << "batching: steady " << steady.batched_jobs << "/"
            << steady.completed << " jobs shared an execution, overload "
            << over.batched_jobs << "/" << over.completed << "\n";
  std::cout << "reuse: plan_cache_hit=" << (warm.plan_cache_hit ? "yes" : "no")
            << " sched=" << warm.alloc.sched_hits << "/"
            << warm.alloc.sched_lookups
            << " virtual time cold=" << cold.exec_time_s
            << " warm=" << warm.exec_time_s << "\n";

  // Gates (exit 1): the acceptance bars of the service PR.
  bool ok = true;
  if (steady.shed > 0) {
    std::cerr << "GATE: steady scenario shed " << steady.shed << " jobs\n";
    ok = false;
  }
  if (over.shed == 0) {
    std::cerr << "GATE: overload scenario shed nothing (not overloaded?)\n";
    ok = false;
  }
  if (over.throughput_jobs_per_s < steady.throughput_jobs_per_s) {
    std::cerr << "GATE: throughput collapsed under overload ("
              << over.throughput_jobs_per_s << " < "
              << steady.throughput_jobs_per_s << " jobs/s)\n";
    ok = false;
  }
  if (fairness_error > fairness_tol) {
    std::cerr << "GATE: fairness error " << 100.0 * fairness_error
              << "% exceeds " << 100.0 * fairness_tol << "%\n";
    ok = false;
  }
  if (!warm.plan_cache_hit || warm.alloc.sched_lookups == 0 ||
      warm.alloc.sched_hits != warm.alloc.sched_lookups) {
    std::cerr << "GATE: repeat run was not cache-served (plan hit="
              << warm.plan_cache_hit << ", sched " << warm.alloc.sched_hits
              << "/" << warm.alloc.sched_lookups << ")\n";
    ok = false;
  }
  if (warm.exec_time_s != cold.exec_time_s) {
    std::cerr << "GATE: cache-served repeat changed virtual time ("
              << cold.exec_time_s << " vs " << warm.exec_time_s << ")\n";
    ok = false;
  }

  if (cli.has("json")) {
    std::vector<JsonEntry> rows;
    rows.emplace_back("service/steady", steady.latency.p50_s,
                      scenario_counters(steady));
    rows.emplace_back("service/overload", over.latency.p50_s,
                      scenario_counters(over));
    auto fair_counters = scenario_counters(fairness);
    fair_counters.emplace_back("fairness_error", fairness_error);
    fair_counters.emplace_back("gold_service_units", gold_units);
    fair_counters.emplace_back("bronze_service_units", bronze_units);
    rows.emplace_back("service/fairness", fairness.latency.p50_s,
                      fair_counters);
    rows.emplace_back(
        "service/reuse", warm.exec_time_s,
        std::vector<std::pair<std::string, double>>{
            {"plan_cache_hit", warm.plan_cache_hit ? 1.0 : 0.0},
            {"sched_hit_rate", warm.alloc.sched_hit_rate()}});
    benchjson::write_json(cli.get("json", ""), "service_load", rows);
  }
  return ok ? 0 : 1;
}

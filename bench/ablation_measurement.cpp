// Methodology bench: the paper's measurement protocol, end to end.
//
// "The application is executed repeatedly until the sample mean lies in
// the 95% confidence interval and a precision of 0.025 (2.5%) has been
// achieved. For this purpose, Student's t-test is used ... We verify the
// validity of these assumptions using Pearson's chi-squared test."
//
// The device models accept run-to-run lognormal noise; this bench injects
// it, runs the repeat-until-precise driver for every shape, and reports
// the mean execution time with its confidence interval, the repetition
// count, and the chi-squared normality verdict.
//
// Flags: --n 30720  --sigma 0.05  --max-reps 100
#include <iostream>

#include "src/core/runner.hpp"
#include "src/trace/stats.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const double sigma = cli.get_double("sigma", 0.05);

  trace::MeasureOptions opts;
  opts.max_reps = static_cast<int>(cli.get_int("max-reps", 100));

  util::Table t("Student-t measurement driver, N=" + std::to_string(n) +
                ", kernel noise sigma=" + util::Table::num(sigma, 2));
  t.set_header({"shape", "mean_s", "ci95_halfwidth", "reps", "converged",
                "chi2_stat", "chi2_crit", "normality"});

  for (partition::Shape s : partition::all_shapes()) {
    std::uint64_t rep = 0;
    const auto point = trace::measure_until_precise(
        [&] {
          core::ExperimentConfig config;
          config.n = n;
          config.shape = s;
          config.cpm_speeds = {1.0, 2.0, 0.9};
          config.noise_sigma = sigma;
          config.noise_seed = 5000 + ++rep;  // fresh noise per repetition
          return core::run_pmm(config).exec_time_s;
        },
        opts);
    const auto chi2 = trace::chi_squared_normality(point.samples);
    t.add_row({partition::shape_name(s), util::Table::num(point.mean, 4),
               util::Table::num(point.ci_halfwidth, 4),
               util::Table::num(static_cast<std::int64_t>(point.repetitions)),
               point.converged ? "yes" : "no",
               util::Table::num(chi2.statistic, 2),
               util::Table::num(chi2.critical_value, 2),
               chi2.normality_plausible ? "plausible" : "rejected"});
  }
  t.print(std::cout);
  std::cout << "\nconvergence target: CI95 half-width <= 2.5% of the mean "
               "(the paper's per-data-point protocol)\n";
  return 0;
}

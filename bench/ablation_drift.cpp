// Ablation: dynamic load drift — static plan vs online re-partitioning.
//
// For each paper shape the bench runs the drift-free baseline, then injects
// a time-varying slowdown of one rank (step / ramp / periodic profiles,
// DESIGN.md §5.13) and measures the same problem twice: limping along under
// the static partition, and with the online drift detector + mid-run
// re-partitioning enabled (--repartition on). The adaptive run sheds the
// victim's remaining compute once drift is confirmed, re-derives the
// partition from live-measured speeds, and re-executes only the unfinished
// cells.
//
// Acceptance bars:
//  * under the sustained step slowdown the online run beats the static one
//    on at least --min-wins (default 3) of the four shapes;
//  * with no drift injected, enabling the detector costs at most
//    --max-clean-overhead (default 1.05) times the clean time on every
//    shape (the detector is observation-only; the only modeled cost is the
//    fault-tolerant commit gate);
//  * a small numeric run (--verify-n) with drift + re-partitioning still
//    verifies against the serial reference on every shape.
//
// Flags: --n 2048  --victim 1  --factor 2.5  --at-frac 0.3
//        --panel-rows 64  --budget 1  --verify-n 192  --min-wins 3
//        --max-clean-overhead 1.05  --json FILE (Google-Benchmark JSON for
//        tools/compare_bench.py, see bench/BENCH_drift.json)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/core/runner.hpp"
#include "src/device/drift.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

summagen::core::ExperimentConfig base_config(std::int64_t n,
                                             summagen::partition::Shape shape,
                                             std::int64_t panel_rows) {
  summagen::core::ExperimentConfig config;
  config.platform = summagen::device::Platform::hclserver1();
  config.n = n;
  config.shape = shape;
  config.regime = summagen::core::Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  // Chunked dataflow execution: the detector sees one observation per
  // DGEMM chunk, so confirmation lands within a few panels of the drift.
  config.summagen_options.scheduler = summagen::core::Scheduler::kTaskGraph;
  config.summagen_options.bcast_panel_rows = panel_rows;
  return config;
}

summagen::device::DriftPlan one_drift(summagen::device::DriftKind kind,
                                      int rank, double at, double factor,
                                      double arg) {
  summagen::device::DriftEvent ev;
  ev.kind = kind;
  ev.rank = rank;
  ev.at_vtime = at;
  ev.factor = factor;
  if (kind == summagen::device::DriftKind::kRamp) ev.duration_s = arg;
  if (kind == summagen::device::DriftKind::kPeriodic) ev.period_s = arg;
  return summagen::device::DriftPlan{{ev}};
}

using summagen::benchjson::JsonEntry;

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 2048);
  const int victim = static_cast<int>(cli.get_int("victim", 1));
  const double factor = cli.get_double("factor", 2.5);
  const double at_frac = cli.get_double("at-frac", 0.3);
  const std::int64_t panel_rows = cli.get_int("panel-rows", 64);
  const int budget = static_cast<int>(cli.get_int("budget", 1));
  // Chunk counts per rank vary a lot across shapes (one_dimensional gives a
  // rank only a handful of observations), so the bench arms a fast but
  // still debounced detector.
  const int warmup = static_cast<int>(cli.get_int("warmup", 1));
  const int hysteresis = static_cast<int>(cli.get_int("hysteresis", 2));
  const std::int64_t verify_n = cli.get_int("verify-n", 192);
  const int min_wins = static_cast<int>(cli.get_int("min-wins", 3));
  const double max_clean_overhead = cli.get_double("max-clean-overhead", 1.05);
  const bool csv = cli.get_bool("csv", false);

  const auto& shapes = partition::all_shapes();

  util::Table t("Drift ablation, CPM, N=" + std::to_string(n) + ", rank " +
                std::to_string(victim) + " x" + util::Table::num(factor, 1));
  t.set_header({"shape", "drift", "static_s", "online_s", "saving_%",
                "reparts", "family", "redone"});

  struct Kind {
    const char* name;
    device::DriftKind kind;
  };
  const Kind kinds[] = {
      {"step", device::DriftKind::kStep},
      {"ramp", device::DriftKind::kRamp},
      {"periodic", device::DriftKind::kPeriodic},
  };

  int step_wins = 0;
  std::vector<JsonEntry> json_rows;
  bool clean_overhead_ok = true;
  for (auto shape : shapes) {
    const auto clean = core::run_pmm(base_config(n, shape, panel_rows));
    const double t0 = clean.exec_time_s;

    // Clean-run overhead of arming the detector (no drift injected).
    {
      core::ExperimentConfig config = base_config(n, shape, panel_rows);
      config.repartition.enabled = true;
      config.repartition.max_repartitions = budget;
      config.repartition.warmup_steps = warmup;
      config.repartition.hysteresis = hysteresis;
      config.fault_detect_s = 0.02 * t0;
      const auto adaptive = core::run_pmm(config);
      if (adaptive.exec_time_s > max_clean_overhead * t0 ||
          !adaptive.repartitions.empty()) {
        clean_overhead_ok = false;
      }
      json_rows.push_back({std::string("drift/") +
                               partition::shape_name(shape) + "/none/online",
                           adaptive.exec_time_s});
    }

    for (const Kind& k : kinds) {
      // Step holds the slowdown from at_frac*t0; the ramp reaches it over
      // 20% of the run; the periodic profile alternates with a half-run
      // period, so the victim is slow half of the time.
      const double at =
          k.kind == device::DriftKind::kPeriodic ? 0.0 : at_frac * t0;
      const double arg = k.kind == device::DriftKind::kRamp ? 0.2 * t0
                                                            : 0.5 * t0;
      const auto plan = one_drift(k.kind, victim, at, factor, arg);

      core::ExperimentConfig fixed = base_config(n, shape, panel_rows);
      fixed.drift = plan;
      const auto static_run = core::run_pmm(fixed);

      core::ExperimentConfig online = fixed;
      online.repartition.enabled = true;
      online.repartition.max_repartitions = budget;
      online.repartition.warmup_steps = warmup;
      online.repartition.hysteresis = hysteresis;
      online.fault_detect_s = 0.02 * t0;
      const auto online_run = core::run_pmm(online);

      const double saving =
          100.0 * (1.0 - online_run.exec_time_s / static_run.exec_time_s);
      if (k.kind == device::DriftKind::kStep &&
          online_run.exec_time_s < static_run.exec_time_s) {
        ++step_wins;
      }
      std::string family = "-";
      std::int64_t redone = 0;
      for (const auto& ev : online_run.repartitions) {
        family = core::repartition_family_name(ev.family);
        redone += ev.redone_area;
      }
      t.add_row({partition::shape_name(shape), k.name,
                 util::Table::num(static_run.exec_time_s, 4),
                 util::Table::num(online_run.exec_time_s, 4),
                 util::Table::num(saving, 1),
                 std::to_string(online_run.repartitions.size()), family,
                 util::Table::num(redone)});
      const std::string key = std::string("drift/") +
                              partition::shape_name(shape) + "/" + k.name;
      json_rows.push_back({key + "/static", static_run.exec_time_s});
      json_rows.push_back({key + "/online", online_run.exec_time_s});
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\nOnline beats static under the step slowdown on "
            << step_wins << "/" << shapes.size() << " shapes (need >= "
            << min_wins << ")\n";
  std::cout << "Clean-run detector overhead <= "
            << util::Table::num(max_clean_overhead, 2)
            << "x on every shape: " << (clean_overhead_ok ? "yes" : "NO")
            << "\n";

  // Numeric cross-check: drift + online re-partitioning must leave C
  // exactly matching the serial reference (two partition epochs, shared
  // pack cache, shed compute re-executed by the new owners).
  std::cout << "\nNumeric verification (N=" << verify_n << "):\n";
  bool all_verified = true;
  for (auto shape : shapes) {
    core::ExperimentConfig probe = base_config(verify_n, shape, 48);
    probe.numeric = true;
    const double t0 = core::run_pmm(probe).exec_time_s;

    core::ExperimentConfig config = probe;
    config.drift = one_drift(device::DriftKind::kStep, victim, 0.0, 3.0, 0.0);
    config.repartition.enabled = true;
    config.repartition.max_repartitions = budget;
    config.repartition.warmup_steps = warmup;
    config.repartition.hysteresis = hysteresis;
    config.fault_detect_s = 0.02 * t0;
    const auto res = core::run_pmm(config);
    const bool ok = res.verified && !res.repartitions.empty();
    all_verified = all_verified && ok;
    std::cout << "  " << partition::shape_name(shape)
              << ": verified=" << (ok ? "yes" : "NO")
              << " repartitions=" << res.repartitions.size()
              << " max_abs_error=" << res.max_abs_error << "\n";
  }

  if (cli.has("json")) {
    benchjson::write_json(cli.get("json", ""), "ablation_drift", json_rows);
  }
  return step_wins >= min_wins && clean_overhead_ok && all_verified ? 0 : 1;
}

// Extension bench: the Push Technique descent vs the analytic shapes.
//
// DeFlumere et al. proved the paper's four shapes optimal by pushing
// elements between processors until the communication volume stops
// falling. Running the same descent numerically shows (a) it rediscovers
// the square corner beyond the 3:1 two-processor ratio, and (b) for three
// processors it lands within cell granularity of the best analytic shape —
// evidence the four candidates are the right ones.
//
// Flags: --n 1024  --grid 32
#include <iostream>

#include "src/partition/areas.hpp"
#include "src/partition/push.hpp"
#include "src/partition/shapes.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 1024);
  partition::PushOptions opts;
  opts.grid = static_cast<int>(cli.get_int("grid", 32));

  // Two processors across the ratio sweep.
  {
    util::Table t("Push descent, two processors, N=" + std::to_string(n) +
                  ", grid " + std::to_string(opts.grid));
    t.set_header({"ratio", "start_hp(1D)", "push_hp", "square_corner_hp",
                  "swaps", "push_found"});
    for (double ratio : {1.0, 2.0, 3.0, 4.0, 6.0, 10.0}) {
      const auto areas = partition::partition_areas_cpm(n * n, {ratio, 1.0});
      const auto res = partition::push_optimize(n, areas, opts);
      const auto corner =
          partition::build_shape(partition::Shape::kSquareCorner, n, areas);
      const char* found =
          res.final_half_perimeter < 3 * n ? "corner-like" : "straight-line";
      t.add_row({util::Table::num(ratio, 1),
                 util::Table::num(res.initial_half_perimeter),
                 util::Table::num(res.final_half_perimeter),
                 util::Table::num(corner.total_half_perimeter()),
                 util::Table::num(static_cast<std::int64_t>(res.swaps)),
                 found});
    }
    t.print(std::cout);
    std::cout << "(theory: the corner becomes optimal at ratio 3)\n\n";
  }

  // Three processors with the paper's speeds: descent vs the four shapes.
  {
    const auto areas =
        partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
    util::Table t("Push descent vs the four shapes, three processors");
    t.set_header({"layout", "half_perimeter"});
    for (auto s : partition::all_shapes()) {
      t.add_row({partition::shape_name(s),
                 util::Table::num(partition::build_shape(s, n, areas)
                                      .total_half_perimeter())});
    }
    const auto res = partition::push_optimize(n, areas, opts);
    t.add_row({"push_descent", util::Table::num(res.final_half_perimeter)});
    t.print(std::cout);
    std::cout << "\nlayout found by the descent (1 char = "
              << opts.grid / 16 * (n / opts.grid) << " elements):\n"
              << res.spec.render(std::max<std::int64_t>(1, n / 16));
  }
  return 0;
}

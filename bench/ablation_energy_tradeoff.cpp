// Exploratory bench for the paper's open problem: are the time-optimal
// shapes also energy-optimal? (Section VI-C: "This does not, however,
// suggest that the shapes are optimal for dynamic energy. We aim to
// further develop methods to prove whether these shapes are optimal.")
//
// The harness perturbs the time-optimal workload distribution by shifting
// share between the power-hungry CPU and the more energy-efficient GPU,
// and traces the (execution time, dynamic energy) Pareto front for each
// shape. With heterogeneous flops-per-joule, the energy minimizer is NOT
// the time minimizer — quantifying the gap the paper leaves open.
//
// Flags: --n 30720  --shifts -0.10,-0.05,0,0.05,0.10
#include <iostream>

#include "src/core/runner.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const auto shifts = cli.get_double_list(
      "shifts", {-0.10, -0.05, 0.0, 0.05, 0.10});

  const auto platform = device::Platform::hclserver1();
  // Device efficiency in flops per joule at the contended large-size speed.
  std::cout << "device energy efficiency (GFLOPs/W, contended, large sizes):"
            << "\n";
  for (const auto& ap : platform.processors()) {
    std::cout << "  " << ap.spec().name << ": "
              << util::Table::num(ap.effective_flops(20000, true) / 1e9 /
                                      ap.spec().dynamic_power_w,
                                  2)
              << "\n";
  }

  const auto base = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  util::Table t("time vs dynamic energy as load shifts CPU->GPU, N=" +
                std::to_string(n) + " (block rectangle)");
  t.set_header({"gpu_share_shift", "exec_s", "dynamic_kJ", "energy_per_flop",
                "note"});

  double t_best = 1e300, e_best = 1e300;
  double t_at_ebest = 0, e_at_tbest = 0;
  for (double shift : shifts) {
    // Move `shift` of the total area from the CPU to the GPU.
    auto areas = base;
    const auto delta = static_cast<std::int64_t>(
        shift * static_cast<double>(n) * static_cast<double>(n));
    if (areas[0] - delta < 0 || areas[1] + delta < 0) continue;
    areas[0] -= delta;
    areas[1] += delta;

    core::ExperimentConfig config;
    config.platform = platform;
    config.n = n;
    config.shape = partition::Shape::kBlockRectangle;
    config.preset_areas = areas;
    config.record_events = true;
    const auto res = core::run_pmm(config);
    const double joules = res.energy.dynamic_j;
    if (res.exec_time_s < t_best) {
      t_best = res.exec_time_s;
      e_at_tbest = joules;
    }
    if (joules < e_best) {
      e_best = joules;
      t_at_ebest = res.exec_time_s;
    }
    t.add_row({util::Table::num(shift, 2),
               util::Table::num(res.exec_time_s, 3),
               util::Table::num(joules / 1e3, 3),
               util::Table::num(joules / (2.0 * static_cast<double>(n) *
                                          static_cast<double>(n) *
                                          static_cast<double>(n)) * 1e12,
                                3),
               shift == 0.0 ? "time-optimal (CPM)" : ""});
  }
  t.print(std::cout);

  std::cout << "\nPareto gap: the energy minimizer spends "
            << util::Table::num(100.0 * (t_at_ebest - t_best) / t_best, 1)
            << "% more time to save "
            << util::Table::num(100.0 * (e_at_tbest - e_best) / e_at_tbest, 1)
            << "% dynamic energy vs the time minimizer — the trade space "
               "behind the paper's open question.\n";
  return 0;
}

// Table I: specification of the simulated HCLServer1 platform, plus the
// calibration summary tying the model back to the paper's headline numbers
// (2.5 TFLOPs theoretical peak; contended relative speeds ~{1.0, 2.0, 0.9}).
#include <iostream>

#include "src/core/runner.hpp"
#include "src/device/platform.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace summagen;
  const auto platform = device::Platform::hclserver1();

  util::Table specs("Table I: " + platform.name);
  specs.set_header({"device", "kind", "cores", "memory", "bandwidth",
                    "peak TFLOPs", "dyn. power W"});
  for (const auto& d : platform.devices) {
    specs.add_row({d.name, device::to_string(d.kind), d.cores_description,
                   d.memory_description, d.bandwidth_description,
                   util::Table::num(d.peak_flops / 1e12, 2),
                   util::Table::num(d.dynamic_power_w, 0)});
  }
  specs.print(std::cout);

  std::cout << "\nnode theoretical peak: "
            << util::Table::num(platform.theoretical_peak_flops() / 1e12, 2)
            << " TFLOPs (paper: 2.50)\n"
            << "static power: " << platform.static_power_w
            << " W (paper: 230 W)\n"
            << "MPI fabric: alpha=" << platform.mpi_link.alpha_s * 1e6
            << " us, bandwidth="
            << 1.0 / platform.mpi_link.beta_s_per_byte / 1e9 << " GB/s\n";

  const auto rel = core::default_cpm_speeds(platform);
  std::cout << "contended relative speeds in the constant range: {";
  for (std::size_t i = 0; i < rel.size(); ++i) {
    std::cout << (i ? ", " : "") << util::Table::num(rel[i], 2);
  }
  std::cout << "} (paper: {1.0, 2.0, 0.9})\n";
  return 0;
}

// Ablation: communication/computation overlap of the pipelined scheduler.
//
// The paper's SummaGen runs its phases strictly in sequence, so every
// rank's time is comm + comp. The kPipelined scheduler posts the panel
// broadcasts non-blocking and completes them just before the first DGEMM
// k-chunk that reads them, hiding broadcast cost behind computation. This
// ablation sweeps the four paper shapes x broadcast panel rows x overlap
// depth on a communication-bound fabric (beta scaled up so the broadcasts
// are worth hiding) and reports the eager baseline, the pipelined time,
// the hidden communication cost, and the saving.
//
// A small numeric run (--verify-n) cross-checks that the pipelined
// scheduler still verifies against the serial reference and moves exactly
// the same broadcast bytes as eager.
//
// Flags: --n 2048  --beta-scale 200  --panel-rows 0,64,512
//        --depths 1,2,0  --verify-n 128
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

summagen::core::ExperimentConfig base_config(std::int64_t n,
                                             summagen::partition::Shape shape,
                                             double beta_scale) {
  summagen::core::ExperimentConfig config;
  config.platform = summagen::device::Platform::hclserver1();
  config.platform.mpi_link.beta_s_per_byte *= beta_scale;
  config.n = n;
  config.shape = shape;
  config.regime = summagen::core::Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  return config;
}

std::int64_t total_bcast_bytes(const summagen::core::ExperimentResult& res) {
  std::int64_t bytes = 0;
  for (const auto& rep : res.reports) bytes += rep.bcast_bytes;
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 2048);
  const double beta_scale = cli.get_double("beta-scale", 200.0);
  const auto panel_rows = cli.get_int_list("panel-rows", {0, 64, 512});
  const auto depths = cli.get_int_list("depths", {1, 2, 0});
  const std::int64_t verify_n = cli.get_int("verify-n", 128);
  const bool csv = cli.get_bool("csv", false);

  const auto& shapes = partition::all_shapes();

  util::Table t("Overlap ablation, CPM, N=" + std::to_string(n) +
                ", beta x" + util::Table::num(beta_scale, 0));
  t.set_header({"shape", "panel", "depth", "eager_s", "pipelined_s",
                "hidden_s", "saving_%"});

  // The acceptance bar: on this communication-bound fabric every paper
  // shape must have at least one configuration where pipelining is
  // strictly faster while moving exactly the same broadcast bytes.
  std::map<partition::Shape, bool> shape_wins;
  for (auto shape : shapes) {
    shape_wins[shape] = false;
    for (std::int64_t panel : panel_rows) {
      core::ExperimentConfig config = base_config(n, shape, beta_scale);
      config.summagen_options.bcast_panel_rows = panel;
      const auto eager = core::run_pmm(config);

      for (std::int64_t depth : depths) {
        config.summagen_options.scheduler = core::Scheduler::kPipelined;
        config.summagen_options.overlap_depth = static_cast<int>(depth);
        const auto pipelined = core::run_pmm(config);
        const double saving =
            100.0 * (eager.exec_time_s - pipelined.exec_time_s) /
            eager.exec_time_s;
        if (pipelined.exec_time_s < eager.exec_time_s &&
            total_bcast_bytes(pipelined) == total_bcast_bytes(eager)) {
          shape_wins[shape] = true;
        }
        t.add_row({partition::shape_name(shape),
                   panel == 0 ? "whole" : std::to_string(panel),
                   depth == 0 ? "inf" : std::to_string(depth),
                   util::Table::num(eager.exec_time_s, 3),
                   util::Table::num(pipelined.exec_time_s, 3),
                   util::Table::num(pipelined.hidden_comm_time_s, 3),
                   util::Table::num(saving, 1)});
      }
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  bool all_shapes_win = true;
  std::cout << "\nStrict win (same broadcast bytes) per shape:\n";
  for (auto shape : shapes) {
    all_shapes_win = all_shapes_win && shape_wins[shape];
    std::cout << "  " << partition::shape_name(shape) << ": "
              << (shape_wins[shape] ? "yes" : "NO") << "\n";
  }

  // Numeric cross-check at small n: the overlap must not change C.
  std::cout << "\nNumeric verification (N=" << verify_n << "):\n";
  bool all_verified = true;
  for (auto shape : shapes) {
    core::ExperimentConfig config = base_config(verify_n, shape, beta_scale);
    config.numeric = true;
    config.summagen_options.bcast_panel_rows = 32;
    const auto eager = core::run_pmm(config);
    config.summagen_options.scheduler = core::Scheduler::kPipelined;
    const auto pipelined = core::run_pmm(config);
    const bool ok = eager.verified && pipelined.verified &&
                    total_bcast_bytes(pipelined) == total_bcast_bytes(eager);
    all_verified = all_verified && ok;
    std::cout << "  " << partition::shape_name(shape)
              << ": verified=" << (ok ? "yes" : "NO")
              << " max_abs_error=" << pipelined.max_abs_error << "\n";
  }
  return all_shapes_win && all_verified ? 0 : 1;
}

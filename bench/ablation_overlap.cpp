// Ablation: communication/computation overlap of the pipelined and
// task-graph schedulers.
//
// The paper's SummaGen runs its phases strictly in sequence, so every
// rank's time is comm + comp. The kPipelined scheduler posts the panel
// broadcasts non-blocking and completes them just before the first DGEMM
// k-chunk that reads them; the kTaskGraph scheduler executes the same
// dependency graph dataflow-style, running whichever chunk is ready while
// broadcasts complete in collective order. This ablation sweeps the four
// paper shapes x broadcast panel rows x overlap depth on a
// communication-bound fabric (beta scaled up so the broadcasts are worth
// hiding) and reports the eager baseline, both overlapped times, the
// hidden communication cost, and the saving.
//
// Gates (exit 1 on violation):
//  * every shape has >= 1 configuration where pipelining strictly beats
//    eager while moving exactly the same broadcast bytes;
//  * the task-graph schedule is never slower than the in-order pipeline
//    on any configuration (it only ever moves compute earlier);
//  * a small numeric run (--verify-n) cross-checks that both overlapped
//    schedulers still verify against the serial reference.
//
// Flags: --n 2048  --beta-scale 200  --panel-rows 0,64,512
//        --depths 1,2,0  --verify-n 128  --json FILE (Google-Benchmark
//        JSON for tools/compare_bench.py, see bench/BENCH_overlap.json)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/core/runner.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

summagen::core::ExperimentConfig base_config(std::int64_t n,
                                             summagen::partition::Shape shape,
                                             double beta_scale) {
  summagen::core::ExperimentConfig config;
  config.platform = summagen::device::Platform::hclserver1();
  config.platform.mpi_link.beta_s_per_byte *= beta_scale;
  config.n = n;
  config.shape = shape;
  config.regime = summagen::core::Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  return config;
}

std::int64_t total_bcast_bytes(const summagen::core::ExperimentResult& res) {
  std::int64_t bytes = 0;
  for (const auto& rep : res.reports) bytes += rep.bcast_bytes;
  return bytes;
}

using summagen::benchjson::JsonEntry;

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 2048);
  const double beta_scale = cli.get_double("beta-scale", 200.0);
  const auto panel_rows = cli.get_int_list("panel-rows", {0, 64, 512});
  const auto depths = cli.get_int_list("depths", {1, 2, 0});
  const std::int64_t verify_n = cli.get_int("verify-n", 128);
  const bool csv = cli.get_bool("csv", false);

  const auto& shapes = partition::all_shapes();

  util::Table t("Overlap ablation, CPM, N=" + std::to_string(n) +
                ", beta x" + util::Table::num(beta_scale, 0));
  t.set_header({"shape", "panel", "depth", "eager_s", "pipelined_s",
                "taskgraph_s", "hidden_s", "saving_%"});

  // The acceptance bars: on this communication-bound fabric every paper
  // shape must have at least one configuration where pipelining is
  // strictly faster while moving exactly the same broadcast bytes, and
  // the dataflow schedule must dominate the in-order pipeline everywhere.
  std::map<partition::Shape, bool> shape_wins;
  bool taskgraph_dominates = true;
  std::vector<JsonEntry> json_rows;
  for (auto shape : shapes) {
    shape_wins[shape] = false;
    for (std::int64_t panel : panel_rows) {
      core::ExperimentConfig config = base_config(n, shape, beta_scale);
      config.summagen_options.bcast_panel_rows = panel;
      const auto eager = core::run_pmm(config);

      for (std::int64_t depth : depths) {
        config.summagen_options.overlap_depth = static_cast<int>(depth);
        config.summagen_options.scheduler = core::Scheduler::kPipelined;
        const auto pipelined = core::run_pmm(config);
        config.summagen_options.scheduler = core::Scheduler::kTaskGraph;
        const auto taskgraph = core::run_pmm(config);
        config.summagen_options.scheduler = core::Scheduler::kEager;

        const double saving =
            100.0 * (eager.exec_time_s - taskgraph.exec_time_s) /
            eager.exec_time_s;
        if (pipelined.exec_time_s < eager.exec_time_s &&
            total_bcast_bytes(pipelined) == total_bcast_bytes(eager)) {
          shape_wins[shape] = true;
        }
        if (taskgraph.exec_time_s >
            pipelined.exec_time_s * (1.0 + 1e-9)) {
          taskgraph_dominates = false;
          std::cerr << "taskgraph slower than pipelined: "
                    << partition::shape_name(shape) << " panel=" << panel
                    << " depth=" << depth << " (" << taskgraph.exec_time_s
                    << " vs " << pipelined.exec_time_s << ")\n";
        }
        const std::string key =
            std::string("overlap/") + partition::shape_name(shape) +
            "/panel" + std::to_string(panel) + "/depth" +
            std::to_string(depth);
        json_rows.push_back({key + "/eager", eager.exec_time_s});
        json_rows.push_back({key + "/pipelined", pipelined.exec_time_s});
        json_rows.push_back({key + "/taskgraph", taskgraph.exec_time_s});
        t.add_row({partition::shape_name(shape),
                   panel == 0 ? "whole" : std::to_string(panel),
                   depth == 0 ? "inf" : std::to_string(depth),
                   util::Table::num(eager.exec_time_s, 3),
                   util::Table::num(pipelined.exec_time_s, 3),
                   util::Table::num(taskgraph.exec_time_s, 3),
                   util::Table::num(taskgraph.hidden_comm_time_s, 3),
                   util::Table::num(saving, 1)});
      }
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  bool all_shapes_win = true;
  std::cout << "\nStrict win (same broadcast bytes) per shape:\n";
  for (auto shape : shapes) {
    all_shapes_win = all_shapes_win && shape_wins[shape];
    std::cout << "  " << partition::shape_name(shape) << ": "
              << (shape_wins[shape] ? "yes" : "NO") << "\n";
  }
  std::cout << "taskgraph <= pipelined on every configuration: "
            << (taskgraph_dominates ? "yes" : "NO") << "\n";

  // Numeric cross-check at small n: the overlap must not change C.
  std::cout << "\nNumeric verification (N=" << verify_n << "):\n";
  bool all_verified = true;
  for (auto shape : shapes) {
    core::ExperimentConfig config = base_config(verify_n, shape, beta_scale);
    config.numeric = true;
    config.summagen_options.bcast_panel_rows = 32;
    const auto eager = core::run_pmm(config);
    config.summagen_options.scheduler = core::Scheduler::kPipelined;
    const auto pipelined = core::run_pmm(config);
    config.summagen_options.scheduler = core::Scheduler::kTaskGraph;
    const auto taskgraph = core::run_pmm(config);
    const bool ok = eager.verified && pipelined.verified &&
                    taskgraph.verified &&
                    total_bcast_bytes(pipelined) == total_bcast_bytes(eager) &&
                    total_bcast_bytes(taskgraph) == total_bcast_bytes(eager);
    all_verified = all_verified && ok;
    std::cout << "  " << partition::shape_name(shape)
              << ": verified=" << (ok ? "yes" : "NO")
              << " max_abs_error=" << taskgraph.max_abs_error << "\n";
  }

  if (cli.has("json")) {
    benchjson::write_json(cli.get("json", ""), "ablation_overlap", json_rows);
  }
  return all_shapes_win && taskgraph_dominates && all_verified ? 0 : 1;
}

// Micro-benchmark: sgblas DGEMM kernels (the MKL/CUBLAS substrate).
//
// Beyond the single-caller kernel sweeps, the `Concurrent3` benchmarks
// model the in-process platform's three rank threads issuing local DGEMMs
// against the one shared sgpool executor — the scenario the pool exists
// for (no per-call thread spawning, no host oversubscription).
//
// Per-tier entries: BM_GemmPackedTier<Scalar|Sse2|Avx2> are registered for
// every SIMD tier available on this host, so one run covers the dispatch
// table and the baseline gates each tier independently (a forced-scalar
// host simply registers fewer entries).
//
//   --json FILE   also write results as Google-Benchmark JSON (the format
//                 tools/compare_bench.py checks against BENCH_dgemm.json).
//   --repeats R   run R repetitions per benchmark and report aggregates;
//                 compare_bench.py prefers the medians (sugar for
//                 --benchmark_repetitions=R).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/blas/gemm.hpp"
#include "src/blas/simd.hpp"
#include "src/pool/pool.hpp"
#include "src/util/accounting.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace {

using summagen::blas::GemmKernel;
using summagen::blas::GemmOptions;

// Exports the data-plane accounting delta of the timed region as benchmark
// counters, so the JSON baseline also gates allocation behaviour (a kernel
// that silently starts allocating per call regresses alloc_bytes_per_iter
// long before it regresses GFLOPs).
void set_alloc_counters(benchmark::State& state,
                        const summagen::util::DataPlaneStats& base) {
  const summagen::util::DataPlaneStats d =
      summagen::util::data_plane_stats().since(base);
  const double iters =
      static_cast<double>(state.iterations() > 0 ? state.iterations() : 1);
  state.counters["alloc_bytes_per_iter"] =
      static_cast<double>(d.alloc_bytes) / iters;
  state.counters["allocs_per_iter"] = static_cast<double>(d.allocs) / iters;
  state.counters["pool_hit_rate"] = d.pool_hit_rate();
}

void run_gemm(benchmark::State& state, GemmKernel kernel, int threads,
              summagen::blas::SimdTier tier = summagen::blas::SimdTier::kAuto) {
  const std::int64_t n = state.range(0);
  summagen::util::Matrix a(n, n), b(n, n), c(n, n);
  summagen::util::fill_random(a, 1);
  summagen::util::fill_random(b, 2);
  GemmOptions opts;
  opts.kernel = kernel;
  opts.threads = threads;
  opts.tier = tier;
  // One untimed warm-up so the counters measure the pool's steady state,
  // not the first touch of this problem size's buffer classes.
  summagen::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                        c.data(), n, opts);
  const summagen::util::DataPlaneStats base =
      summagen::util::data_plane_stats();
  for (auto _ : state) {
    summagen::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                          c.data(), n, opts);
    benchmark::DoNotOptimize(c.data());
  }
  set_alloc_counters(state, base);
  state.SetItemsProcessed(state.iterations() *
                          summagen::blas::gemm_flops(n, n, n));
}

// Three caller threads (the rank-thread count of the paper's platform)
// each multiply their own n^3 problem concurrently through the shared
// pool. Items processed counts all three multiplications.
void run_gemm_concurrent3(benchmark::State& state, GemmKernel kernel) {
  constexpr int kCallers = 3;
  const std::int64_t n = state.range(0);
  std::vector<summagen::util::Matrix> as, bs, cs;
  for (int r = 0; r < kCallers; ++r) {
    as.emplace_back(n, n);
    bs.emplace_back(n, n);
    cs.emplace_back(n, n);
    summagen::util::fill_random(as.back(), 2 * r + 1);
    summagen::util::fill_random(bs.back(), 2 * r + 2);
  }
  GemmOptions opts;
  opts.kernel = kernel;
  const auto wave = [&] {
    std::vector<std::thread> callers;
    for (int r = 0; r < kCallers; ++r) {
      callers.emplace_back([&, r] {
        summagen::blas::dgemm(n, n, n, 1.0, as[r].data(), n, bs[r].data(), n,
                              0.0, cs[r].data(), n, opts);
      });
    }
    for (auto& t : callers) t.join();
  };
  // One untimed 3-way wave warms the pool at this concurrency level, so
  // the counters below report the steady state.
  wave();
  const summagen::util::DataPlaneStats base =
      summagen::util::data_plane_stats();
  for (auto _ : state) {
    wave();
    benchmark::DoNotOptimize(cs[0].data());
  }
  set_alloc_counters(state, base);
  state.SetItemsProcessed(state.iterations() * kCallers *
                          summagen::blas::gemm_flops(n, n, n));
}

void BM_GemmNaive(benchmark::State& state) {
  run_gemm(state, GemmKernel::kNaive, 1);
}
void BM_GemmBlocked(benchmark::State& state) {
  run_gemm(state, GemmKernel::kBlocked, 1);
}
void BM_GemmThreaded(benchmark::State& state) {
  run_gemm(state, GemmKernel::kThreaded, 0);
}
void BM_GemmPacked(benchmark::State& state) {
  run_gemm(state, GemmKernel::kPacked, 0);
}
void BM_GemmThreadedConcurrent3(benchmark::State& state) {
  run_gemm_concurrent3(state, GemmKernel::kThreaded);
}
void BM_GemmPackedConcurrent3(benchmark::State& state) {
  run_gemm_concurrent3(state, GemmKernel::kPacked);
}

// Registers one BM_GemmPackedTier<Name> entry per available SIMD tier, so
// the baseline JSON carries each tier's GFLOPs independently of which tier
// kAuto dispatches to.
void register_tier_benchmarks() {
  using summagen::blas::SimdTier;
  struct TierEntry {
    SimdTier tier;
    const char* name;
  };
  const TierEntry tiers[] = {{SimdTier::kScalar, "BM_GemmPackedTierScalar"},
                             {SimdTier::kSse2, "BM_GemmPackedTierSse2"},
                             {SimdTier::kAvx2, "BM_GemmPackedTierAvx2"}};
  for (const TierEntry& entry : tiers) {
    if (!summagen::blas::simd_tier_available(entry.tier)) continue;
    const SimdTier tier = entry.tier;
    benchmark::RegisterBenchmark(
        entry.name,
        [tier](benchmark::State& state) {
          run_gemm(state, GemmKernel::kPacked, 0, tier);
        })
        ->Arg(256)
        ->Arg(512)
        ->Arg(1024);
  }
}

}  // namespace

BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmThreaded)->Arg(256)->Arg(512)->Arg(1024);
BENCHMARK(BM_GemmPacked)->Arg(256)->Arg(512)->Arg(1024);
// UseRealTime: the measuring thread only spawns/joins the callers, so CPU
// time would be ~0 and the derived GFLOPs meaningless.
BENCHMARK(BM_GemmThreadedConcurrent3)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_GemmPackedConcurrent3)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

int main(int argc, char** argv) {
  // Translate `--json FILE` into the library's out/out_format flags so the
  // CI regression gate gets machine-readable GFLOPs (items_per_second),
  // and `--repeats R` into --benchmark_repetitions (median-of-R rows that
  // compare_bench.py prefers over single runs).
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> rewritten;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string file;
    if (arg.rfind("--json=", 0) == 0) {
      file = arg.substr(std::strlen("--json="));
    } else if (arg == "--json" && i + 1 < args.size()) {
      file = args[++i];
    } else if (arg.rfind("--repeats=", 0) == 0) {
      rewritten.push_back("--benchmark_repetitions=" +
                          arg.substr(std::strlen("--repeats=")));
      continue;
    } else if (arg == "--repeats" && i + 1 < args.size()) {
      rewritten.push_back("--benchmark_repetitions=" + args[++i]);
      continue;
    } else {
      rewritten.push_back(arg);
      continue;
    }
    rewritten.push_back("--benchmark_out=" + file);
    rewritten.push_back("--benchmark_out_format=json");
  }
  register_tier_benchmarks();
  std::vector<char*> cargs;
  for (std::string& s : rewritten) cargs.push_back(s.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

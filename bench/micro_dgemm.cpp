// Micro-benchmark: sgblas DGEMM kernels (the MKL/CUBLAS substrate).
#include <benchmark/benchmark.h>

#include "src/blas/gemm.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace {

using summagen::blas::GemmKernel;
using summagen::blas::GemmOptions;

void run_gemm(benchmark::State& state, GemmKernel kernel, int threads) {
  const std::int64_t n = state.range(0);
  summagen::util::Matrix a(n, n), b(n, n), c(n, n);
  summagen::util::fill_random(a, 1);
  summagen::util::fill_random(b, 2);
  GemmOptions opts;
  opts.kernel = kernel;
  opts.threads = threads;
  for (auto _ : state) {
    summagen::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                          c.data(), n, opts);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          summagen::blas::gemm_flops(n, n, n));
}

void BM_GemmNaive(benchmark::State& state) {
  run_gemm(state, GemmKernel::kNaive, 1);
}
void BM_GemmBlocked(benchmark::State& state) {
  run_gemm(state, GemmKernel::kBlocked, 1);
}
void BM_GemmThreaded(benchmark::State& state) {
  run_gemm(state, GemmKernel::kThreaded, 4);
}

}  // namespace

BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512);
BENCHMARK(BM_GemmThreaded)->Arg(256)->Arg(512);

BENCHMARK_MAIN();

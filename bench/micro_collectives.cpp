// Micro-benchmark: real wall-clock latency of the sgmpi collectives
// (rendezvous + memcpy machinery), independent of the Hockney virtual
// costs they account.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/mpi/mpi.hpp"

namespace {

using summagen::sgmpi::Comm;
using summagen::sgmpi::Config;
using summagen::sgmpi::Runtime;

void BM_Bcast(benchmark::State& state) {
  const int nranks = 3;
  const auto count = static_cast<std::int64_t>(state.range(0));
  Config config;
  config.nranks = nranks;
  Runtime runtime(config);
  std::vector<std::vector<double>> bufs(
      nranks, std::vector<double>(static_cast<std::size_t>(count), 1.0));
  for (auto _ : state) {
    runtime.run([&](Comm& world) {
      world.bcast(bufs[static_cast<std::size_t>(world.rank())].data(), count,
                  0);
    });
  }
  state.SetBytesProcessed(state.iterations() * count *
                          static_cast<std::int64_t>(sizeof(double)) *
                          (nranks - 1));
}

void BM_Barrier(benchmark::State& state) {
  Config config;
  config.nranks = static_cast<int>(state.range(0));
  Runtime runtime(config);
  for (auto _ : state) {
    runtime.run([&](Comm& world) {
      for (int i = 0; i < 100; ++i) world.barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}

void BM_SendRecv(benchmark::State& state) {
  const auto count = static_cast<std::int64_t>(state.range(0));
  Config config;
  config.nranks = 2;
  Runtime runtime(config);
  std::vector<double> src(static_cast<std::size_t>(count), 1.0);
  std::vector<double> dst(static_cast<std::size_t>(count), 0.0);
  for (auto _ : state) {
    runtime.run([&](Comm& world) {
      if (world.rank() == 0) {
        world.send(src.data(), count, 1, 7);
      } else {
        world.recv(dst.data(), count, 0, 7);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * count *
                          static_cast<std::int64_t>(sizeof(double)));
}

}  // namespace

BENCHMARK(BM_Bcast)->Arg(1024)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_Barrier)->Arg(2)->Arg(3)->Arg(8);
BENCHMARK(BM_SendRecv)->Arg(1024)->Arg(1 << 20);

BENCHMARK_MAIN();

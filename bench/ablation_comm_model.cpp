// Ablation: sensitivity of the shape comparison to the Hockney parameters.
//
// The paper observes that with its fast intra-node MPI the execution times
// are dominated by computation (Fig. 6), while the communication times
// differ per shape (Fig. 6c). This ablation rescales the fabric's bandwidth
// and latency to show when the communication differences start deciding the
// ranking — i.e. where non-rectangular layouts' lower communication volume
// pays off.
//
// Flags: --n 30720  --beta-scales 1,4,16,64,256  --alpha-scales 1
#include <iostream>
#include <vector>

#include "src/core/runner.hpp"
#include "src/trace/stats.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const auto beta_scales = cli.get_double_list(
      "beta-scales", {1.0, 4.0, 16.0, 64.0, 256.0});
  const auto alpha_scales = cli.get_double_list("alpha-scales", {1.0});

  const auto& shapes = partition::all_shapes();
  util::Table t("Shape ranking vs Hockney parameters, CPM, N=" +
                std::to_string(n));
  std::vector<std::string> header = {"beta_x", "alpha_x"};
  for (auto s : shapes) header.push_back(partition::shape_name(s));
  header.push_back("spread_%");
  header.push_back("fastest");
  t.set_header(header);

  for (double as : alpha_scales) {
    for (double bs : beta_scales) {
      auto platform = device::Platform::hclserver1();
      platform.mpi_link.alpha_s *= as;
      platform.mpi_link.beta_s_per_byte *= bs;
      std::vector<std::string> row = {util::Table::num(bs, 0),
                                      util::Table::num(as, 0)};
      std::vector<double> times;
      std::string fastest;
      for (auto s : shapes) {
        core::ExperimentConfig config;
        config.platform = platform;
        config.n = n;
        config.shape = s;
        config.regime = core::Regime::kConstant;
        config.cpm_speeds = {1.0, 2.0, 0.9};
        const auto res = core::run_pmm(config);
        times.push_back(res.exec_time_s);
        row.push_back(util::Table::num(res.exec_time_s, 3));
        if (fastest.empty() ||
            res.exec_time_s <=
                *std::min_element(times.begin(), times.end())) {
          fastest = partition::shape_name(s);
        }
      }
      row.push_back(util::Table::num(trace::percentage_spread(times), 1));
      row.push_back(fastest);
      t.add_row(row);
    }
  }
  t.print(std::cout);
  std::cout << "\nAt 1x the node fabric, computation dominates and the "
               "shapes are near-equal (Fig. 6); slower fabrics amplify the "
               "per-shape communication differences of Fig. 6c.\n";
  return 0;
}

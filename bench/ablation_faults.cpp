// Ablation: cost of surviving faults with shrink-and-repartition recovery.
//
// For each paper shape the bench runs the fault-free baseline, then the
// same problem with (a) a rank crash at 40% of the baseline execution time
// and (b) a 4x compute slowdown of the same rank at the same instant. Both
// interrupting faults unwind the survivors, who agree on the failure
// (Comm::shrink), re-partition the unfinished C area over the remaining
// (or degraded) devices, and re-execute only the lost work.
//
// Acceptance bar: on every shape the crash run must finish in less than
// --max-overhead (default 2.0) times the fault-free time — i.e. losing a
// device mid-run costs less than starting over — and a small numeric run
// with a mid-phase crash must still verify against the serial reference.
//
// Flags: --n 2048  --victim 1  --slow-factor 4  --max-overhead 2.0
//        --verify-n 192
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/mpi/faults.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

summagen::core::ExperimentConfig base_config(std::int64_t n,
                                             summagen::partition::Shape shape) {
  summagen::core::ExperimentConfig config;
  config.platform = summagen::device::Platform::hclserver1();
  config.n = n;
  config.shape = shape;
  config.regime = summagen::core::Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  return config;
}

summagen::sgmpi::FaultPlan one_event(summagen::sgmpi::FaultKind kind,
                                     int rank, double at, double factor) {
  summagen::sgmpi::FaultEvent ev;
  ev.kind = kind;
  ev.rank = rank;
  ev.at_vtime = at;
  ev.factor = factor;
  return summagen::sgmpi::FaultPlan{{ev}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 2048);
  const int victim = static_cast<int>(cli.get_int("victim", 1));
  const double slow_factor = cli.get_double("slow-factor", 4.0);
  const double max_overhead = cli.get_double("max-overhead", 2.0);
  const std::int64_t verify_n = cli.get_int("verify-n", 192);
  const bool csv = cli.get_bool("csv", false);

  const auto& shapes = partition::all_shapes();

  util::Table t("Fault ablation, CPM, N=" + std::to_string(n) +
                ", victim rank " + std::to_string(victim));
  t.set_header({"shape", "fault", "time_s", "overhead_x", "recoveries",
                "redistributed", "detect_s"});

  bool within_budget = true;
  for (auto shape : shapes) {
    const auto clean = core::run_pmm(base_config(n, shape));
    const double t0 = clean.exec_time_s;
    t.add_row({partition::shape_name(shape), "none",
               util::Table::num(t0, 4), "1.00", "0", "0", "-"});

    struct Case {
      const char* name;
      sgmpi::FaultKind kind;
      double factor;
    };
    const Case cases[] = {
        {"crash", sgmpi::FaultKind::kCrash, 1.0},
        {"slow", sgmpi::FaultKind::kSlowdown, slow_factor},
    };
    for (const Case& c : cases) {
      core::ExperimentConfig config = base_config(n, shape);
      config.faults = one_event(c.kind, victim, 0.4 * t0, c.factor);
      // Detection latency proportional to the run, as a real failure
      // detector's timeout would be to its heartbeat period.
      config.fault_detect_s = 0.02 * t0;
      const auto res = core::run_pmm(config);
      const double overhead = res.exec_time_s / t0;
      if (c.kind == sgmpi::FaultKind::kCrash && overhead >= max_overhead) {
        within_budget = false;
      }
      t.add_row({partition::shape_name(shape), c.name,
                 util::Table::num(res.exec_time_s, 4),
                 util::Table::num(overhead, 2),
                 std::to_string(res.recoveries),
                 util::Table::num(res.redistributed_area),
                 util::Table::num(res.detection_latency_s, 4)});
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\nCrash overhead < " << util::Table::num(max_overhead, 2)
            << "x fault-free on every shape: "
            << (within_budget ? "yes" : "NO") << "\n";

  // Numeric cross-check: a mid-phase crash must leave C exactly equal to
  // the serial reference (survivors recompute all lost cells).
  std::cout << "\nNumeric verification (N=" << verify_n << "):\n";
  bool all_verified = true;
  for (auto shape : shapes) {
    core::ExperimentConfig probe = base_config(verify_n, shape);
    probe.numeric = true;
    const double t0 = core::run_pmm(probe).exec_time_s;

    core::ExperimentConfig config = probe;
    config.faults = one_event(sgmpi::FaultKind::kCrash, victim, 0.4 * t0, 1.0);
    config.fault_detect_s = 0.02 * t0;
    const auto res = core::run_pmm(config);
    const bool ok = res.verified && res.recoveries >= 1;
    all_verified = all_verified && ok;
    std::cout << "  " << partition::shape_name(shape)
              << ": verified=" << (ok ? "yes" : "NO")
              << " recoveries=" << res.recoveries
              << " redistributed=" << res.redistributed_area << "\n";
  }
  return within_budget && all_verified ? 0 : 1;
}

// Extension bench: NRRP-style recursive non-rectangular partitioning for
// arbitrary processor counts (the paper's reference [11] and its
// "distributed-memory nodes and large clusters" future work).
//
// Two studies:
//  1. p = 3 at the paper's scale — NRRP vs the four hand-proven shapes on
//     communication volume and modeled time;
//  2. p = 2..16 on random heterogeneous speed mixes — half-perimeter
//     quality vs the universal lower bound sum_i 2*sqrt(a_i), with and
//     without the non-rectangular corner leaves (the Nagamochi-Abe
//     rectangular baseline).
//
// Flags: --n 30720  --pmax 16  --trials 20
#include <iostream>

#include "src/core/runner.hpp"
#include "src/partition/nrrp.hpp"
#include "src/util/cli.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

// Modeled SummaGen run over an explicit spec on a synthetic platform.
double modeled_exec(const summagen::partition::PartitionSpec& spec,
                    const summagen::device::Platform& platform) {
  using namespace summagen;
  const auto processors = platform.processors();
  sgmpi::Config mpi_config;
  mpi_config.nranks = platform.nprocs();
  mpi_config.link = platform.mpi_link;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    core::summagen_rank(world, spec,
                        processors[static_cast<std::size_t>(world.rank())],
                        nullptr);
  });
  return runtime.max_vtime();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const int pmax = static_cast<int>(cli.get_int("pmax", 16));
  const int trials = static_cast<int>(cli.get_int("trials", 20));

  // Study 1: three processors, paper configuration.
  {
    const auto platform = device::Platform::hclserver1();
    const auto areas =
        partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
    util::Table t("NRRP vs the four shapes, p=3, N=" + std::to_string(n));
    t.set_header({"partitioner", "half_perim", "quality_vs_LB", "exec_s"});
    for (auto s : partition::all_shapes()) {
      core::ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.shape = s;
      config.preset_areas = areas;
      const auto res = core::run_pmm(config);
      t.add_row({partition::shape_name(s),
                 util::Table::num(res.total_half_perimeter),
                 util::Table::num(partition::nrrp_quality(res.spec), 4),
                 util::Table::num(res.exec_time_s, 3)});
    }
    const auto nrrp = partition::nrrp_partition(n, areas);
    t.add_row({"nrrp", util::Table::num(nrrp.total_half_perimeter()),
               util::Table::num(partition::nrrp_quality(nrrp), 4),
               util::Table::num(modeled_exec(nrrp, platform), 3)});
    partition::NrrpOptions rect_only;
    rect_only.allow_non_rectangular = false;
    const auto na = partition::nrrp_partition(n, areas, rect_only);
    t.add_row({"recursive_rectangular",
               util::Table::num(na.total_half_perimeter()),
               util::Table::num(partition::nrrp_quality(na), 4),
               util::Table::num(modeled_exec(na, platform), 3)});
    t.print(std::cout);
  }

  // Study 2: scaling in p on random heterogeneity.
  {
    util::Table t("NRRP quality vs processor count (random speeds, " +
                  std::to_string(trials) + " trials each)");
    t.set_header({"p", "nrrp_mean_q", "nrrp_worst_q", "rect_mean_q",
                  "corner_leaves_used_%"});
    const std::int64_t n2 = 8192;
    for (int p = 2; p <= pmax; p *= 2) {
      util::Rng rng(1000 + static_cast<std::uint64_t>(p));
      double nrrp_sum = 0.0, nrrp_worst = 0.0, rect_sum = 0.0;
      int corner_used = 0;
      for (int trial = 0; trial < trials; ++trial) {
        std::vector<double> speeds;
        for (int i = 0; i < p; ++i) speeds.push_back(rng.uniform(0.2, 4.0));
        const auto areas = partition::partition_areas_cpm(n2 * n2, speeds);
        const auto spec = partition::nrrp_partition(n2, areas);
        const double q = partition::nrrp_quality(spec);
        nrrp_sum += q;
        nrrp_worst = std::max(nrrp_worst, q);
        partition::NrrpOptions rect_only;
        rect_only.allow_non_rectangular = false;
        const auto rect = partition::nrrp_partition(n2, areas, rect_only);
        rect_sum += partition::nrrp_quality(rect);
        // Corner leaves manifest as non-rectangular zones.
        for (int r = 0; r < p; ++r) {
          if (!spec.is_rectangular(r)) {
            ++corner_used;
            break;
          }
        }
      }
      t.add_row({util::Table::num(static_cast<std::int64_t>(p)),
                 util::Table::num(nrrp_sum / trials, 4),
                 util::Table::num(nrrp_worst, 4),
                 util::Table::num(rect_sum / trials, 4),
                 util::Table::num(100.0 * corner_used / trials, 0)});
    }
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\n(quality = total half-perimeter / lower bound "
                 "sum 2*sqrt(a_i); NRRP's continuous-model guarantee is "
                 "2/sqrt(3) ~ 1.1547)\n";
  }
  return 0;
}

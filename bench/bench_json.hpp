// Shared Google-Benchmark JSON emission for the table-style bench binaries
// (ablation_overlap, ablation_drift, cluster_scaling, service_load, ...).
//
// The binaries print human tables; --json FILE additionally emits the
// minimal Google-Benchmark document tools/compare_bench.py gates on: one
// iteration row per entry with the virtual seconds as real_time/cpu_time,
// plus optional extra numeric counters on the row (latency percentiles,
// shed fractions, ...) gated per-metric via compare_bench.py --metric.
// Everything emitted here is modeled/virtual time, so committed baselines
// (bench/BENCH_*.json) reproduce bit-for-bit and CI gates at tight ratios.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace summagen::benchjson {

/// One benchmark row: `seconds` is the headline metric (lower is better);
/// `counters` adds named numeric fields to the row.
struct JsonEntry {
  std::string name;
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> counters;

  JsonEntry() = default;
  JsonEntry(std::string name_in, double seconds_in)
      : name(std::move(name_in)), seconds(seconds_in) {}
  JsonEntry(std::string name_in, double seconds_in,
            std::vector<std::pair<std::string, double>> counters_in)
      : name(std::move(name_in)),
        seconds(seconds_in),
        counters(std::move(counters_in)) {}
};

/// Writes the document; exits 2 when the file cannot be opened (the bench
/// was asked for a JSON artifact and silently skipping it would let a CI
/// gate pass vacuously).
inline void write_json(const std::string& path, const std::string& executable,
                       const std::vector<JsonEntry>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open --json file '" << path << "'\n";
    std::exit(2);
  }
  out << "{\n  \"context\": {\"executable\": \"" << executable << "\"},\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    out << "    {\"name\": \"" << rows[i].name
        << "\", \"run_type\": \"iteration\", \"iterations\": 1, "
        << "\"real_time\": " << rows[i].seconds
        << ", \"cpu_time\": " << rows[i].seconds << ", \"time_unit\": \"s\"";
    for (const auto& [key, value] : rows[i].counters) {
      out << ", \"" << key << "\": " << value;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace summagen::benchjson

// Figure 6 (a, b, c) + Section VI-A claims: execution, computation and
// communication times of PMM for the four partition shapes under constant
// performance models, at the paper's problem sizes (modeled plane).
//
// Paper reference points: shapes equal within an average percentage
// difference of ~8% (max ~23% at N=25600); peak 2.10 TFLOPs (84% of the
// 2.5 TFLOPs theoretical peak) at N=38416 for square rectangle; average
// ~70% of theoretical peak.
//
// Flags: --sizes 25600,...  --speeds 1.0,2.0,0.9  --csv
//        --extended  (adds the l_rectangle candidate shape as a column)
#include <iostream>
#include <vector>

#include "src/core/runner.hpp"
#include "src/trace/stats.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);

  const std::vector<std::int64_t> sizes = cli.get_int_list(
      "sizes", {25600, 28160, 30720, 33280, 35840, 38416});
  const std::vector<double> speeds =
      cli.get_double_list("speeds", {1.0, 2.0, 0.9});

  const auto platform = device::Platform::hclserver1();
  const auto& shapes = cli.get_bool("extended", false)
                           ? partition::extended_shapes()
                           : partition::all_shapes();

  util::Table exec("Figure 6a: PMM execution times, constant speeds (s)");
  util::Table comp("Figure 6b: computation times (s)");
  util::Table comm("Figure 6c: MPI communication times (s)");
  std::vector<std::string> header = {"N"};
  for (auto s : shapes) header.push_back(partition::shape_name(s));
  exec.set_header(header);
  comp.set_header(header);
  comm.set_header(header);

  double spread_sum = 0.0;
  double spread_max = 0.0;
  std::int64_t spread_max_n = 0;
  double peak_tflops = 0.0;
  std::int64_t peak_n = 0;
  std::string peak_shape;
  double tflops_sum = 0.0;
  int tflops_count = 0;

  for (std::int64_t n : sizes) {
    std::vector<std::string> erow = {util::Table::num(n)};
    std::vector<std::string> prow = {util::Table::num(n)};
    std::vector<std::string> crow = {util::Table::num(n)};
    std::vector<double> times;
    for (auto s : shapes) {
      core::ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.shape = s;
      config.regime = core::Regime::kConstant;
      config.cpm_speeds = speeds;
      config.numeric = false;  // modeled plane at paper-scale N
      const auto res = core::run_pmm(config);
      times.push_back(res.exec_time_s);
      erow.push_back(util::Table::num(res.exec_time_s, 3));
      prow.push_back(util::Table::num(res.comp_time_s, 3));
      crow.push_back(util::Table::num(res.comm_time_s, 3));
      if (res.tflops > peak_tflops) {
        peak_tflops = res.tflops;
        peak_n = n;
        peak_shape = partition::shape_name(s);
      }
      tflops_sum += res.tflops;
      ++tflops_count;
    }
    exec.add_row(erow);
    comp.add_row(prow);
    comm.add_row(crow);
    const double spread = trace::percentage_spread(times);
    spread_sum += spread;
    if (spread > spread_max) {
      spread_max = spread;
      spread_max_n = n;
    }
  }

  if (csv) {
    exec.print_csv(std::cout);
    comp.print_csv(std::cout);
    comm.print_csv(std::cout);
  } else {
    exec.print(std::cout);
    std::cout << "\n";
    comp.print(std::cout);
    std::cout << "\n";
    comm.print(std::cout);
  }

  const double theoretical = platform.theoretical_peak_flops() / 1.0e12;
  std::cout << "\n== Section VI-A summary (paper in parentheses) ==\n"
            << "average %-difference between shapes: "
            << util::Table::num(spread_sum / sizes.size(), 1) << "% (8%)\n"
            << "maximum %-difference: " << util::Table::num(spread_max, 1)
            << "% at N=" << spread_max_n << " (23% at N=25600)\n"
            << "peak performance: " << util::Table::num(peak_tflops, 2)
            << " TFLOPs at N=" << peak_n << " for " << peak_shape
            << " (2.10 TFLOPs at N=38416 for square_rectangle)\n"
            << "peak as % of theoretical " << util::Table::num(theoretical, 2)
            << " TFLOPs: "
            << util::Table::num(100.0 * peak_tflops / theoretical, 0)
            << "% (84%)\n"
            << "average as % of theoretical: "
            << util::Table::num(
                   100.0 * (tflops_sum / tflops_count) / theoretical, 0)
            << "% (70%)\n";
  return 0;
}

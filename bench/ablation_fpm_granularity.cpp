// Ablation: FPM partitioner grid step vs solution quality and cost.
//
// The load-imbalancing partitioner (DESIGN.md §5.5) solves a DP over a
// quantised workload grid and then refines locally. A coarser grid is
// faster but risks missing the narrow performance troughs that make load
// *imbalancing* profitable. This sweep quantifies that trade-off.
//
// Flags: --n 16384  --divisors 64,128,256,512,1024,2048,4096
#include <chrono>
#include <iostream>
#include <vector>

#include "src/core/runner.hpp"
#include "src/partition/areas.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 16384);
  const auto divisors = cli.get_int_list(
      "divisors", {64, 128, 256, 512, 1024, 2048, 4096});

  const auto platform = device::Platform::hclserver1();
  const auto models = core::default_fpm_models(platform, n);
  std::vector<const device::SpeedFunction*> ptrs;
  for (const auto& m : models) ptrs.push_back(&m);

  util::Table t("FPM partitioner: grid step vs makespan, N=" +
                std::to_string(n));
  t.set_header({"grid_slots", "step_elems", "tcomp_s", "vs_best_%",
                "solve_ms", "areas"});

  struct Row {
    std::int64_t slots, step;
    double tcomp, ms;
    std::vector<std::int64_t> areas;
  };
  std::vector<Row> rows;
  double best = -1.0;
  for (std::int64_t d : divisors) {
    partition::FpmOptions opts;
    opts.grid_step = std::max<std::int64_t>(1, n * n / d);
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = partition::partition_areas_fpm(n, ptrs, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    rows.push_back({d, opts.grid_step, res.tcomp, ms, res.areas});
    if (best < 0 || res.tcomp < best) best = res.tcomp;
  }
  for (const auto& r : rows) {
    std::string areas;
    for (std::size_t i = 0; i < r.areas.size(); ++i) {
      areas += (i ? "/" : "") + std::to_string(r.areas[i]);
    }
    t.add_row({util::Table::num(r.slots), util::Table::num(r.step),
               util::Table::num(r.tcomp, 5),
               util::Table::num(100.0 * (r.tcomp - best) / best, 2),
               util::Table::num(r.ms, 1), areas});
  }
  t.print(std::cout);

  // Reference: the proportional (CPM-style) distribution evaluated under
  // the same FPMs, showing what load *balancing* would cost.
  const auto cpm_areas = partition::partition_areas_cpm(
      n * n, core::default_cpm_speeds(platform));
  const double cpm_t = partition::distribution_time(n, ptrs, cpm_areas);
  std::cout << "\nproportional (constant-speed) distribution under the same "
               "FPMs: tcomp = "
            << util::Table::num(cpm_t, 5) << " s ("
            << util::Table::num(100.0 * (cpm_t - best) / best, 1)
            << "% worse than the best imbalanced solution)\n";
  return 0;
}

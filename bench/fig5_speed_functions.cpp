// Figure 5: speed functions / performance profiles of the three abstract
// processors (AbsCPU, AbsGPU, AbsXeonPhi) for square DGEMMs of size N x N,
// measured with all processors loaded simultaneously (contended) and with
// host<->device transfer time included — the paper's profiling methodology.
//
// Flags: --lo 64 --hi 38416 --points 64 --solo (uncontended) --csv
#include <iostream>

#include "src/device/platform.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);
  const bool contended = !cli.get_bool("solo", false);

  const auto platform = device::Platform::hclserver1();
  const auto grid = device::profile_grid(
      static_cast<double>(cli.get_int("lo", 64)),
      static_cast<double>(cli.get_int("hi", 38416)),
      static_cast<int>(cli.get_int("points", 64)));

  const auto profiles = platform.profiles(grid, contended);

  util::Table t(std::string("Figure 5: speed functions (TFLOPs), ") +
                (contended ? "contended" : "solo"));
  t.set_header({"N", "AbsCPU", "AbsGPU", "AbsXeonPhi"});
  for (std::size_t k = 0; k < grid.size(); ++k) {
    std::vector<std::string> row = {
        util::Table::num(static_cast<std::int64_t>(grid[k]))};
    for (const auto& sf : profiles) {
      row.push_back(util::Table::num(sf.flops_at_edge(grid[k]) / 1e12, 4));
    }
    t.add_row(row);
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\nprofile character (paper Section VI-B):\n";
  const char* names[] = {"AbsCPU", "AbsGPU", "AbsXeonPhi"};
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    std::cout << "  " << names[d]
              << ": variation over [1k, 8k] = "
              << util::Table::num(
                     100.0 * profiles[d].relative_variation(1024, 8192), 1)
              << "%, over [14k, 22k] = "
              << util::Table::num(
                     100.0 * profiles[d].relative_variation(14000, 22000), 1)
              << "% (constant range)\n";
  }
  return 0;
}

// Extension bench: SummaGen on distributed-memory clusters — the paper's
// closing future-work item ("we will study the efficiency of SummaGen for
// distributed-memory nodes and large clusters").
//
// Strong scaling of one PMM across 1, 2 and 4 simulated HCLServer1 nodes
// (3, 6, 12 abstract processors) connected by a slower network link.
// Three partitioners drive the layouts, all executed by the same SummaGen
// core: NRRP (non-rectangular recursive), the Beaumont column-based
// rectangular baseline, and traditional 1D slices.
//
// Flags: --n 30720  --nodes 1,2,4  --net-gbps 12.5
// (12.5 GB/s ~ EDR InfiniBand; try --net-gbps 1 for an Ethernet-class
// network where communication caps scaling and 1D collapses first)
#include <iostream>

#include "src/core/runner.hpp"
#include "src/partition/column_based.hpp"
#include "src/partition/nrrp.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 30720);
  const auto node_counts = cli.get_int_list("nodes", {1, 2, 4});
  const double net_gbps = cli.get_double("net-gbps", 12.5);

  const auto base = device::Platform::hclserver1();
  const trace::HockneyParams net{20.0e-6, 1.0 / (net_gbps * 1.0e9)};

  util::Table t("Strong scaling across cluster nodes, N=" +
                std::to_string(n) + ", network " +
                util::Table::num(net_gbps, 1) + " GB/s");
  t.set_header({"nodes", "p", "partitioner", "exec_s", "comp_s", "mpi_s",
                "speedup", "efficiency_%"});

  std::map<std::string, double> single_node_time;

  for (std::int64_t nodes : node_counts) {
    const auto platform =
        device::Platform::cluster(base, static_cast<int>(nodes), net);
    const int p = platform.nprocs();

    // Per-rank speeds: the paper's readout replicated per node.
    std::vector<double> speeds;
    for (std::int64_t node = 0; node < nodes; ++node) {
      speeds.insert(speeds.end(), {1.0, 2.0, 0.9});
    }
    const auto areas = partition::partition_areas_cpm(n * n, speeds);

    struct Entry {
      std::string name;
      partition::PartitionSpec spec;
    };
    std::vector<Entry> entries;
    entries.push_back({"nrrp", partition::nrrp_partition(n, areas)});
    // Hierarchical: one rectangle per node, SummaGen shapes within.
    std::vector<std::vector<std::int64_t>> by_node;
    for (std::int64_t node = 0; node < nodes; ++node) {
      by_node.push_back({areas[static_cast<std::size_t>(3 * node)],
                         areas[static_cast<std::size_t>(3 * node + 1)],
                         areas[static_cast<std::size_t>(3 * node + 2)]});
    }
    entries.push_back(
        {"hierarchical", partition::nrrp_hierarchical(n, by_node)});
    entries.push_back(
        {"column_based", partition::column_based_partition(n, areas)});
    entries.push_back({"one_dimensional",
                       partition::build_shape(
                           partition::Shape::kOneDimensional, n, areas)});

    for (const auto& entry : entries) {
      core::ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.preset_spec = entry.spec;
      const auto res = core::run_pmm(config);
      if (nodes == node_counts.front()) {
        single_node_time[entry.name] = res.exec_time_s * nodes;
      }
      const double serial_ref = single_node_time.contains(entry.name)
                                    ? single_node_time[entry.name]
                                    : res.exec_time_s * nodes;
      const double speedup = serial_ref / res.exec_time_s / node_counts.front();
      t.add_row({util::Table::num(nodes), util::Table::num(
                     static_cast<std::int64_t>(p)),
                 entry.name, util::Table::num(res.exec_time_s, 3),
                 util::Table::num(res.comp_time_s, 3),
                 util::Table::num(res.comm_time_s, 3),
                 util::Table::num(speedup, 2),
                 util::Table::num(
                     100.0 * speedup /
                         (static_cast<double>(nodes) /
                          static_cast<double>(node_counts.front())),
                     0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nspeedup is relative to the first node count; hierarchical "
               "(one rectangle per node, non-rectangular shapes within) "
               "keeps cross-node traffic lowest, 1D degrades first.\n";
  return 0;
}

// Extension bench: SummaGen on distributed-memory clusters — the paper's
// closing future-work item ("we will study the efficiency of SummaGen for
// distributed-memory nodes and large clusters").
//
// Strong scaling of one PMM across simulated nodes connected by a slower
// network link. Several partitioners drive the layouts, all executed by the
// same SummaGen core: NRRP (non-rectangular recursive), hierarchical
// (one rectangle per node, shapes within), the Beaumont column-based
// rectangular baseline, and traditional 1D slices.
//
// Speedup and efficiency come from core::ScalingTable, which insists on a
// true single-node baseline per configuration: when --nodes omits 1, the
// bench measures nodes=1 itself rather than fabricating a baseline from the
// smallest swept count (the historical bug this bench shipped with).
//
// Flags: --n 30720  --nodes 1,2,4  --net-gbps 12.5
//        --node-procs 0   (0 = heterogeneous HCLServer1 node, 3 procs;
//                          K>0 = K identical procs per node — with
//                          --node-procs 4, --nodes 256/1024 gives the
//                          p=1024/4096 scale-out points)
//        --engine thread|modeled   (modeled = fibers, cheap at large p)
//        --bcast-algo tree|flat|ring|pipelined|auto
//        --two-level               (topology-aware two-stage collectives)
//        --partitioners nrrp,hierarchical,column_based,one_dimensional
//        --json FILE               (Google-Benchmark format for
//                                   tools/compare_bench.py)
// (12.5 GB/s ~ EDR InfiniBand; try --net-gbps 1 for an Ethernet-class
// network where communication caps scaling and 1D collapses first)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/core/runner.hpp"
#include "src/core/scaling.hpp"
#include "src/partition/column_based.hpp"
#include "src/partition/nrrp.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using namespace summagen;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  for (char c : csv) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

using summagen::benchjson::JsonEntry;

partition::PartitionSpec build_spec(const std::string& name, std::int64_t n,
                                    const std::vector<std::int64_t>& areas,
                                    std::int64_t nodes,
                                    std::size_t procs_per_node) {
  if (name == "nrrp") return partition::nrrp_partition(n, areas);
  if (name == "hierarchical") {
    // One rectangle per node, SummaGen shapes within.
    std::vector<std::vector<std::int64_t>> by_node;
    for (std::int64_t node = 0; node < nodes; ++node) {
      std::vector<std::int64_t> group;
      for (std::size_t i = 0; i < procs_per_node; ++i) {
        group.push_back(
            areas[static_cast<std::size_t>(node) * procs_per_node + i]);
      }
      by_node.push_back(std::move(group));
    }
    return partition::nrrp_hierarchical(n, by_node);
  }
  if (name == "column_based") {
    return partition::column_based_partition(n, areas);
  }
  if (name == "one_dimensional") {
    return partition::build_shape(partition::Shape::kOneDimensional, n, areas);
  }
  throw util::CliError("unknown --partitioners entry '" + name +
                       "' (expected nrrp, hierarchical, column_based or "
                       "one_dimensional)");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  std::int64_t n = 0;
  std::vector<std::int64_t> node_counts;
  double net_gbps = 0.0;
  std::int64_t node_procs = 0;
  std::vector<std::string> partitioners;
  sgmpi::Engine engine = sgmpi::Engine::kThread;
  trace::BcastAlgo bcast_algo = trace::BcastAlgo::kTree;
  bool two_level = false;
  try {
    n = cli.get_int_min("n", 30720, 1);
    node_counts = cli.get_int_list("nodes", {1, 2, 4});
    net_gbps = cli.get_double("net-gbps", 12.5);
    node_procs = cli.get_int_min("node-procs", 0, 0);
    partitioners = split_csv(cli.get(
        "partitioners", "nrrp,hierarchical,column_based,one_dimensional"));
    engine = sgmpi::parse_engine(cli.get("engine", "thread"));
    bcast_algo = trace::parse_bcast_algo(cli.get("bcast-algo", "tree"));
    two_level = cli.get_bool("two-level", false);
  } catch (const std::exception& e) {
    std::cerr << "cluster_scaling: " << e.what() << "\n";
    return 2;
  }
  if (partitioners.empty()) {
    std::cerr << "cluster_scaling: --partitioners selected nothing\n";
    return 2;
  }

  const auto base = node_procs > 0
                        ? device::Platform::homogeneous(
                              static_cast<int>(node_procs))
                        : device::Platform::hclserver1();
  // Per-node speeds: the paper's readout for HCLServer1, flat for the
  // homogeneous scale-out node.
  const std::vector<double> node_speeds =
      node_procs > 0 ? std::vector<double>(
                           static_cast<std::size_t>(node_procs), 1.0)
                     : std::vector<double>{1.0, 2.0, 0.9};
  const trace::HockneyParams net{20.0e-6, 1.0 / (net_gbps * 1.0e9)};

  // Every configuration needs a true single-node measurement — measure it
  // even when the sweep starts above one node.
  std::vector<std::int64_t> sweep = node_counts;
  bool baseline_added = false;
  if (std::find(sweep.begin(), sweep.end(), std::int64_t{1}) == sweep.end()) {
    sweep.insert(sweep.begin(), 1);
    baseline_added = true;
  }

  core::ScalingTable table;
  std::vector<JsonEntry> json_rows;

  for (std::int64_t nodes : sweep) {
    const auto platform =
        device::Platform::cluster(base, static_cast<int>(nodes), net);
    const int p = platform.nprocs();

    std::vector<double> speeds;
    for (std::int64_t node = 0; node < nodes; ++node) {
      speeds.insert(speeds.end(), node_speeds.begin(), node_speeds.end());
    }
    const auto areas = partition::partition_areas_cpm(n * n, speeds);

    for (const std::string& name : partitioners) {
      partition::PartitionSpec spec;
      try {
        spec = build_spec(name, n, areas, nodes, node_speeds.size());
      } catch (const util::CliError& e) {
        std::cerr << "cluster_scaling: " << e.what() << "\n";
        return 2;
      }
      core::ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.preset_spec = spec;
      config.engine = engine;
      config.bcast_algo = bcast_algo;
      config.two_level_collectives = two_level;
      const auto res = core::run_pmm(config);

      core::ScalingMeasurement m;
      m.name = name;
      m.nodes = nodes;
      m.ranks = p;
      m.exec_s = res.exec_time_s;
      m.comp_s = res.comp_time_s;
      m.comm_s = res.comm_time_s;
      table.add(m);
      json_rows.push_back({"cluster_scaling/" + name +
                               "/nodes:" + std::to_string(nodes) +
                               "/p:" + std::to_string(p),
                           res.exec_time_s});
    }
  }

  table
      .render("Strong scaling across cluster nodes, N=" + std::to_string(n) +
              ", " + std::to_string(node_speeds.size()) + " procs/node, " +
              "network " + util::Table::num(net_gbps, 1) + " GB/s, engine " +
              sgmpi::to_string(engine) + ", bcast " +
              trace::to_string(bcast_algo))
      .print(std::cout);
  if (baseline_added) {
    std::cout << "\n(nodes=1 measured as the speedup baseline; it was not in "
                 "--nodes)\n";
  }
  std::cout << "\nspeedup is relative to the true single-node run of the same "
               "partitioner; hierarchical (one rectangle per node, "
               "non-rectangular shapes within) keeps cross-node traffic "
               "lowest, 1D degrades first.\n";

  if (cli.has("json")) {
    benchjson::write_json(cli.get("json", ""), "cluster_scaling", json_rows);
  }
  return 0;
}

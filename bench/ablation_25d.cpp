// Extension bench: 2.5D replication vs a flat SUMMA grid at equal
// processor count (paper Section III-D's communication-optimal frontier).
//
// 256 homogeneous processors (modeled plane; ranks are cheap threads)
// arranged either as a 16x16 SUMMA grid (c=1) or as 8x8 grids stacked
// c=4 deep. The 2.5D trade: each rank's panel broadcast traffic drops
// ~c-fold, paid for with one block replication and one C reduction. The
// win condition 1/sqrt(c) + c/sqrt(p) < 1 needs p > 64 for c=4 — at
// p=256 the per-rank traffic drops ~25% and the modeled communication
// time with it.
//
// Flags: --n 16384  --beta-scales 1,16
#include <iostream>

#include "src/core/summa25d.hpp"
#include "src/device/platform.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

struct Outcome {
  double exec = 0.0, comp = 0.0, comm = 0.0;
  std::int64_t panel_mib = 0, extra_mib = 0;
};

Outcome run(std::int64_t n, const summagen::core::Summa25dConfig& config,
            const summagen::device::Platform& platform) {
  using namespace summagen;
  const int p = config.q * config.q * config.c;
  const auto processors = platform.processors();
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  mpi_config.link = platform.mpi_link;
  sgmpi::Runtime runtime(mpi_config);
  std::vector<core::Summa25dReport> reports(static_cast<std::size_t>(p));
  runtime.run([&](sgmpi::Comm& world) {
    reports[static_cast<std::size_t>(world.rank())] = core::summa25d_rank(
        world, n, config, processors[static_cast<std::size_t>(world.rank())],
        nullptr);
  });
  Outcome out;
  out.exec = runtime.max_vtime();
  for (int r = 0; r < p; ++r) {
    out.comp = std::max(out.comp, runtime.clock(r).compute_seconds());
    out.comm = std::max(out.comm, runtime.clock(r).comm_seconds());
    out.panel_mib = std::max(
        out.panel_mib,
        reports[static_cast<std::size_t>(r)].bcast_bytes / (1 << 20));
    out.extra_mib = std::max(
        out.extra_mib,
        (reports[static_cast<std::size_t>(r)].replication_bytes +
         reports[static_cast<std::size_t>(r)].reduce_bytes) /
            (1 << 20));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 16384);
  const auto beta_scales = cli.get_double_list("beta-scales", {1.0, 16.0});

  util::Table t("2.5D vs flat SUMMA, 256 homogeneous processors, N=" +
                std::to_string(n));
  t.set_header({"fabric", "layout", "exec_s", "comp_s", "comm_s",
                "panel_MiB/rank", "repl+reduce_MiB"});

  for (double bs : beta_scales) {
    auto platform = device::Platform::homogeneous(256, 50.0e9);
    platform.mpi_link.beta_s_per_byte *= bs;
    const auto flat = run(n, {16, 1, 512}, platform);
    const auto deep = run(n, {8, 4, 512}, platform);
    const std::string fabric = util::Table::num(bs, 0) + "x slower";
    t.add_row({fabric, "16x16 (c=1)", util::Table::num(flat.exec, 3),
               util::Table::num(flat.comp, 3), util::Table::num(flat.comm, 3),
               util::Table::num(flat.panel_mib),
               util::Table::num(flat.extra_mib)});
    t.add_row({fabric, "8x8x4 (c=4)", util::Table::num(deep.exec, 3),
               util::Table::num(deep.comp, 3), util::Table::num(deep.comm, 3),
               util::Table::num(deep.panel_mib),
               util::Table::num(deep.extra_mib)});
  }
  t.print(std::cout);
  std::cout << "\nReplication divides the per-rank panel traffic by ~c at a "
               "one-off replication + reduction price; with p large enough "
               "(1/sqrt(c) + c/sqrt(p) < 1) the total traffic and the "
               "modeled communication time drop.\n";
  return 0;
}

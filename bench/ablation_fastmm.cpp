// Ablation: Strassen-family fast MM vs the classical packed kernel.
//
// For each N the bench times the packed classical DGEMM and the fast-MM
// kinds (strassen / s223 / auto, src/blas/fastmm.hpp) on the same random
// operands, reporting effective GFLOP/s (always normalised to classical
// 2N^3 flops so the numbers compare directly) and the norm-wise error of
// each fast result against the classical one as a fraction of its budget
// (err_over_bound must stay <= 1).
//
// Unlike the virtual-time ablations this bench measures real wall time, so
// absolute seconds vary per machine; the committed baseline
// (bench/BENCH_fastmm.json) is gated in CI on the machine-relative
// speedup_vs_classical counter rather than raw time.
//
// Acceptance bars (ISSUE 10):
//  * best fast kind >= --min-speedup (default 1.10) x classical GFLOP/s at
//    the largest N;
//  * auto >= --auto-tolerance (default 1.0) x classical at EVERY N — auto
//    must never lose to classical, it can only decline to split;
//  * every fast result within its fastmm_error_budget norm bound.
//
// Flags: --sizes 512,1024,2048  --repeats 5  --crossover 0 (0 = tuned/auto)
//        --max-depth 3  --min-speedup 1.10  --auto-tolerance 1.0
//        --csv  --json FILE (Google-Benchmark JSON for
//        tools/compare_bench.py, see bench/BENCH_fastmm.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "src/blas/fastmm.hpp"
#include "src/blas/gemm.hpp"
#include "src/util/cli.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace {

using summagen::benchjson::JsonEntry;
using summagen::util::Matrix;

double frobenius(const Matrix& x) {
  double s = 0.0;
  const double* p = x.data();
  const std::int64_t total = x.rows() * x.cols();
  for (std::int64_t i = 0; i < total; ++i) s += p[i] * p[i];
  return std::sqrt(s);
}

double frobenius_diff(const Matrix& x, const Matrix& y) {
  double s = 0.0;
  const double* px = x.data();
  const double* py = y.data();
  const std::int64_t total = x.rows() * x.cols();
  for (std::int64_t i = 0; i < total; ++i) {
    const double d = px[i] - py[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t h = v.size() / 2;
  return v.size() % 2 == 1 ? v[h] : 0.5 * (v[h - 1] + v[h]);
}

// Median wall seconds of `repeats` multiplications (one untimed warm-up
// primes the pool size classes and the pack paths).
double time_dgemm(std::int64_t n, const Matrix& a, const Matrix& b, Matrix* c,
                  const summagen::blas::GemmOptions& opts, int repeats) {
  summagen::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                        c->data(), n, opts);
  std::vector<double> secs;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    summagen::blas::dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
                          c->data(), n, opts);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    secs.push_back(dt.count());
  }
  return median_of(std::move(secs));
}

const char* bench_tag(summagen::blas::FastMmKind kind) {
  switch (kind) {
    case summagen::blas::FastMmKind::kClassical: return "BM_FastMMClassical";
    case summagen::blas::FastMmKind::kStrassen: return "BM_FastMMStrassen";
    case summagen::blas::FastMmKind::kS223: return "BM_FastMMS223";
    case summagen::blas::FastMmKind::kAuto: return "BM_FastMMAuto";
  }
  return "BM_FastMM";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::vector<std::int64_t> sizes =
      cli.get_int_list("sizes", {512, 1024, 2048});
  const int repeats = static_cast<int>(cli.get_int_min("repeats", 5, 1));
  const std::int64_t crossover = cli.get_int("crossover", 0);
  const int max_depth = static_cast<int>(cli.get_int("max-depth", 3));
  const double min_speedup = cli.get_double("min-speedup", 1.10);
  const double auto_tolerance = cli.get_double("auto-tolerance", 1.0);
  const bool csv = cli.get_bool("csv", false);

  const blas::FastMmKind kinds[] = {blas::FastMmKind::kStrassen,
                                    blas::FastMmKind::kS223,
                                    blas::FastMmKind::kAuto};

  util::Table t("Fast-MM ablation (classical-normalised GFLOP/s, tier " +
                std::string(blas::simd_tier_name(blas::best_simd_tier())) +
                ")");
  t.set_header({"N", "kind", "seconds", "gflops", "speedup", "err/bound"});

  std::vector<JsonEntry> json_rows;
  bool bound_ok = true;
  bool auto_ok = true;
  double top_speedup = 0.0;
  std::int64_t top_n = 0;

  for (const std::int64_t n : sizes) {
    Matrix a(n, n), b(n, n), c(n, n);
    util::fill_random(a, 1);
    util::fill_random(b, 2);
    const double norm_product = frobenius(a) * frobenius(b);
    const double flops = static_cast<double>(blas::gemm_flops(n, n, n));

    blas::GemmOptions classical;
    const double classical_s = time_dgemm(n, a, b, &c, classical, repeats);
    const double classical_gflops = flops / classical_s / 1e9;
    const Matrix reference = c;  // classical product, beta = 0
    t.add_row({util::Table::num(n), "classical",
               util::Table::num(classical_s), util::Table::num(classical_gflops),
               "1.0000", "-"});
    json_rows.push_back({std::string(bench_tag(classical.fastmm)) + "/" +
                             std::to_string(n),
                         classical_s,
                         {{"gflops", classical_gflops},
                          {"speedup_vs_classical", 1.0}}});

    for (const blas::FastMmKind kind : kinds) {
      blas::GemmOptions fast;
      fast.fastmm = kind;
      fast.fastmm_crossover = crossover;
      fast.fastmm_max_depth = max_depth;
      const double fast_s = time_dgemm(n, a, b, &c, fast, repeats);
      const double fast_gflops = flops / fast_s / 1e9;
      const double speedup = classical_s / fast_s;

      const int depth = blas::fastmm_max_reachable_depth(n, n, n, fast);
      const double bound = blas::fastmm_error_budget(n, depth) *
                           std::numeric_limits<double>::epsilon() *
                           norm_product;
      const double err_over_bound =
          depth == 0 ? 0.0 : frobenius_diff(c, reference) / bound;
      if (err_over_bound > 1.0) bound_ok = false;
      // depth 0 means auto declined to split: the code path IS classical,
      // so any measured difference is timer noise, not a loss.
      if (kind == blas::FastMmKind::kAuto && depth > 0 &&
          speedup < auto_tolerance - 1e-9) {
        auto_ok = false;
      }
      if (n == sizes.back() && speedup > top_speedup) {
        top_speedup = speedup;
        top_n = n;
      }

      t.add_row({util::Table::num(n), blas::fastmm_kind_name(kind),
                 util::Table::num(fast_s), util::Table::num(fast_gflops),
                 util::Table::num(speedup),
                 depth == 0 ? "=classical" : util::Table::num(err_over_bound)});
      json_rows.push_back({std::string(bench_tag(kind)) + "/" +
                               std::to_string(n),
                           fast_s,
                           {{"gflops", fast_gflops},
                            {"speedup_vs_classical", speedup},
                            {"err_over_bound", err_over_bound},
                            {"depth", static_cast<double>(depth)}}});
    }
  }

  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  if (cli.has("json")) {
    benchjson::write_json(cli.get("json", ""), "ablation_fastmm", json_rows);
  }

  bool ok = true;
  if (!bound_ok) {
    std::cout << "FAIL: a fast result exceeded its norm-wise error budget\n";
    ok = false;
  }
  if (!auto_ok) {
    std::cout << "FAIL: --fastmm auto fell below " << auto_tolerance
              << "x classical at some N (auto must never lose)\n";
    ok = false;
  }
  if (top_speedup < min_speedup) {
    std::cout << "FAIL: best fast kind reached only " << top_speedup
              << "x classical at N=" << top_n << " (need >= " << min_speedup
              << ")\n";
    ok = false;
  }
  if (ok) {
    std::cout << "OK: best fast speedup " << util::Table::num(top_speedup)
              << "x at N=" << top_n << ", all error bounds held\n";
  }
  return ok ? 0 : 1;
}

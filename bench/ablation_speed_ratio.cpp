// Ablation: square corner vs 1D rectangular as heterogeneity grows.
//
// Becker & Lastovetsky (the paper's refs [7]/[8], origin of the second
// research thread) showed that for two processors the square-corner
// partition beats the straight-line (1D) partition once the speed ratio
// exceeds ~3:1, because its total communication volume 2n + 2n/sqrt(1+r)
// drops below the 1D partition's constant 3n. SummaGen makes that claim
// executable: we sweep the ratio on a synthetic two-processor platform and
// report communication volume and modeled times.
//
// Flags: --n 16384  --ratios 1,2,3,4,6,8  --beta-scale 1.0  --csv
#include <iostream>
#include <vector>

#include "src/core/runner.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);
  const std::int64_t n = cli.get_int("n", 16384);
  const std::vector<double> ratios =
      cli.get_double_list("ratios", {1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 6.0,
                                     8.0});
  // Communication matters more when the fabric is slower; scale beta to
  // move the compute/comm balance (1.0 = the node's shared-memory MPI).
  const double beta_scale = cli.get_double("beta-scale", 20.0);

  util::Table t("Square corner vs 1D rectangular, two processors, N=" +
                std::to_string(n));
  t.set_header({"ratio", "sc_halfperim", "1d_halfperim", "sc_exec_s",
                "1d_exec_s", "sc_comm_s", "1d_comm_s", "winner"});

  double crossover = -1.0;
  std::string prev_winner;
  for (double r : ratios) {
    auto platform = device::Platform::synthetic({1.0, r}, 200.0e9);
    platform.mpi_link.beta_s_per_byte *= beta_scale;

    double exec[2], comm[2];
    std::int64_t hp[2];
    const partition::Shape shapes[2] = {partition::Shape::kSquareCorner,
                                        partition::Shape::kOneDimensional};
    for (int i = 0; i < 2; ++i) {
      core::ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.shape = shapes[i];
      config.regime = core::Regime::kConstant;
      config.cpm_speeds = {1.0, r};
      const auto res = core::run_pmm(config);
      exec[i] = res.exec_time_s;
      comm[i] = res.comm_time_s;
      hp[i] = res.total_half_perimeter;
    }
    const std::string winner = exec[0] < exec[1] ? "square_corner" : "1d";
    if (winner == "square_corner" && prev_winner == "1d" && crossover < 0) {
      crossover = r;
    }
    prev_winner = winner;
    t.add_row({util::Table::num(r, 2), util::Table::num(hp[0]),
               util::Table::num(hp[1]), util::Table::num(exec[0], 4),
               util::Table::num(exec[1], 4), util::Table::num(comm[0], 4),
               util::Table::num(comm[1], 4), winner});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cout << "\nsquare corner first wins at ratio ~"
            << (crossover > 0 ? util::Table::num(crossover, 1) : "n/a")
            << " (theory: half-perimeter crossover at ratio 3)\n";
  return 0;
}

// Figure 8: dynamic energy consumption of the PMM application for the four
// partition shapes under constant performance models (paper Section VI-C).
//
// The paper's finding: the four shapes consume equal dynamic energy over
// N in {25600, ..., 35840}. Energy here comes from the platform power model
// integrated over the run's event log (exact), with one size cross-checked
// against the simulated WattsUp meter (1 Hz sampling, +-3% accuracy,
// E_D = E_T - P_S * T_E).
//
// Flags: --sizes ...  --speeds 1.0,2.0,0.9  --csv
#include <iostream>
#include <vector>

#include "src/core/runner.hpp"
#include "src/energy/energy.hpp"
#include "src/trace/stats.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);

  const std::vector<std::int64_t> sizes =
      cli.get_int_list("sizes", {25600, 28160, 30720, 33280, 35840});
  const std::vector<double> speeds =
      cli.get_double_list("speeds", {1.0, 2.0, 0.9});

  const auto platform = device::Platform::hclserver1();
  const auto& shapes = partition::all_shapes();

  util::Table t("Figure 8: dynamic energy of PMM, constant speeds (kJ)");
  std::vector<std::string> header = {"N"};
  for (auto s : shapes) header.push_back(partition::shape_name(s));
  t.set_header(header);

  double spread_sum = 0.0;
  for (std::int64_t n : sizes) {
    std::vector<std::string> row = {util::Table::num(n)};
    std::vector<double> joules;
    for (auto s : shapes) {
      core::ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.shape = s;
      config.regime = core::Regime::kConstant;
      config.cpm_speeds = speeds;
      config.record_events = true;
      const auto res = core::run_pmm(config);
      joules.push_back(res.energy.dynamic_j);
      row.push_back(util::Table::num(res.energy.dynamic_j / 1e3, 3));
    }
    t.add_row(row);
    spread_sum += trace::percentage_spread(joules);
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\naverage %-difference in dynamic energy between shapes: "
            << util::Table::num(spread_sum / sizes.size(), 1)
            << "% (paper: \"the dynamic energy consumptions are equal\")\n";

  // Meter cross-check at the first size, square corner: exact integration
  // vs the simulated WattsUp path (1 Hz sampling + Eq. 5).
  {
    core::ExperimentConfig config;
    config.platform = platform;
    config.n = sizes.front();
    config.shape = partition::Shape::kSquareCorner;
    config.regime = core::Regime::kConstant;
    config.cpm_speeds = speeds;
    config.record_events = true;
    const auto res = core::run_pmm(config);
    const auto reading = energy::simulate_wattsup(res.events, platform,
                                                  res.exec_time_s);
    const double metered =
        energy::dynamic_from_meter(reading, platform.static_power_w);
    std::cout << "meter cross-check at N=" << sizes.front()
              << " (square corner): exact E_D = "
              << util::Table::num(res.energy.dynamic_j / 1e3, 3)
              << " kJ, WattsUp-simulated E_D = "
              << util::Table::num(metered / 1e3, 3) << " kJ ("
              << reading.samples_w.size() << " samples at 1 Hz)\n";
  }
  return 0;
}

// Figure 7 (a, b, c) + Section VI-B claims: execution, computation and
// communication times of PMM for the four partition shapes when the matrix
// decomposition comes from the load-imbalancing data-partitioning algorithm
// over non-smooth functional performance models.
//
// Paper reference points: square rectangle and block rectangle perform
// better than the other two shapes; peak 1.80 TFLOPs (72% of theoretical)
// at N=35008 for square rectangle.
//
// Flags: --sizes 1024,...,20480  --akima  --csv
#include <iostream>
#include <map>
#include <vector>

#include "src/core/runner.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);

  // The paper sweeps {1024, ..., 20480} and separately reports the peak at
  // N=35008; the default grid includes both.
  const std::vector<std::int64_t> sizes = cli.get_int_list(
      "sizes",
      {1024, 2048, 4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432,
       20480, 35008});
  const auto interp = cli.get_bool("akima", false)
                          ? device::Interpolation::kAkima
                          : device::Interpolation::kPiecewiseLinear;

  const auto platform = device::Platform::hclserver1();
  const auto& shapes = partition::all_shapes();

  util::Table exec("Figure 7a: PMM execution times, FPM decomposition (s)");
  util::Table comp("Figure 7b: computation times (s)");
  util::Table comm("Figure 7c: MPI communication times (s)");
  std::vector<std::string> header = {"N"};
  for (auto s : shapes) header.push_back(partition::shape_name(s));
  exec.set_header(header);
  comp.set_header(header);
  comm.set_header(header);

  std::map<std::string, int> wins;       // fastest shape per size
  std::map<std::string, double> totals;  // aggregate exec time per shape
  double peak_tflops = 0.0;
  std::int64_t peak_n = 0;
  std::string peak_shape;

  for (std::int64_t n : sizes) {
    // Build the profiles and run the load-imbalancing partitioner once per
    // size; all shapes share the distribution (paper Step 1).
    const auto models = core::default_fpm_models(platform, n, interp);
    core::ExperimentConfig probe;
    probe.platform = platform;
    probe.n = n;
    probe.regime = core::Regime::kFunctional;
    probe.fpm_models = models;
    const auto areas = core::compute_areas(probe);

    std::vector<std::string> erow = {util::Table::num(n)};
    std::vector<std::string> prow = {util::Table::num(n)};
    std::vector<std::string> crow = {util::Table::num(n)};
    double best = 0.0;
    std::string best_shape;
    for (auto s : shapes) {
      core::ExperimentConfig config = probe;
      config.shape = s;
      config.preset_areas = areas;
      const auto res = core::run_pmm(config);
      erow.push_back(util::Table::num(res.exec_time_s, 4));
      prow.push_back(util::Table::num(res.comp_time_s, 4));
      crow.push_back(util::Table::num(res.comm_time_s, 4));
      const std::string name = partition::shape_name(s);
      totals[name] += res.exec_time_s;
      if (best_shape.empty() || res.exec_time_s < best) {
        best = res.exec_time_s;
        best_shape = name;
      }
      if (res.tflops > peak_tflops) {
        peak_tflops = res.tflops;
        peak_n = n;
        peak_shape = name;
      }
    }
    ++wins[best_shape];
    exec.add_row(erow);
    comp.add_row(prow);
    comm.add_row(crow);
  }

  if (csv) {
    exec.print_csv(std::cout);
    comp.print_csv(std::cout);
    comm.print_csv(std::cout);
  } else {
    exec.print(std::cout);
    std::cout << "\n";
    comp.print(std::cout);
    std::cout << "\n";
    comm.print(std::cout);
  }

  const double theoretical = platform.theoretical_peak_flops() / 1.0e12;
  std::cout << "\n== Section VI-B summary (paper in parentheses) ==\n"
            << "fastest-shape wins across sizes:";
  for (const auto& [name, count] : wins) {
    std::cout << " " << name << "=" << count;
  }
  std::cout << "\naggregate execution time (lower is better):";
  for (const auto& [name, total] : totals) {
    std::cout << " " << name << "=" << util::Table::num(total, 3) << "s";
  }
  std::cout << "\n(paper: square_rectangle and block_rectangle perform "
               "better than the other two shapes)\n"
            << "peak performance: " << util::Table::num(peak_tflops, 2)
            << " TFLOPs at N=" << peak_n << " for " << peak_shape
            << " (1.80 TFLOPs at N=35008 for square_rectangle)\n"
            << "peak as % of theoretical: "
            << util::Table::num(100.0 * peak_tflops / theoretical, 0)
            << "% (72%)\n";
  return 0;
}

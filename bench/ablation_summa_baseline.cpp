// Baseline bench: classic SUMMA vs SummaGen on a homogeneous 2x2 grid.
//
// SummaGen's non-rectangular machinery must not cost anything when the
// platform is homogeneous: a block partition driven through SummaGen
// should track classic SUMMA's compute time, while SUMMA's panelled
// broadcasts trade message count against buffer size (panel-width sweep).
//
// Flags: --n 16384  --panels 128,512,2048,16384
#include <iostream>

#include "src/core/runner.hpp"
#include "src/core/summa.hpp"
#include "src/partition/column_based.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 16384);
  const auto panels = cli.get_int_list("panels", {128, 512, 2048, 16384});

  const auto platform = device::Platform::homogeneous(4, 500.0e9);
  const auto processors = platform.processors();

  util::Table t("SUMMA vs SummaGen, 4 homogeneous processors, N=" +
                std::to_string(n));
  t.set_header({"algorithm", "panel", "exec_s", "comp_s", "mpi_s",
                "bcasts", "traffic_MiB"});

  for (std::int64_t panel : panels) {
    sgmpi::Config mpi_config;
    mpi_config.nranks = 4;
    mpi_config.link = platform.mpi_link;
    sgmpi::Runtime runtime(mpi_config);
    std::vector<core::SummaReport> reports(4);
    runtime.run([&](sgmpi::Comm& world) {
      reports[static_cast<std::size_t>(world.rank())] = core::summa_rank(
          world, n, {2, 2, panel},
          processors[static_cast<std::size_t>(world.rank())], nullptr);
    });
    double comp = 0.0, comm = 0.0;
    for (int r = 0; r < 4; ++r) {
      comp = std::max(comp, runtime.clock(r).compute_seconds());
      comm = std::max(comm, runtime.clock(r).comm_seconds());
    }
    t.add_row({"summa", util::Table::num(panel),
               util::Table::num(runtime.max_vtime(), 4),
               util::Table::num(comp, 4), util::Table::num(comm, 4),
               util::Table::num(static_cast<std::int64_t>(reports[0].bcasts)),
               util::Table::num(static_cast<double>(reports[0].bcast_bytes) /
                                    (1 << 20),
                                1)});
  }

  // SummaGen over the equivalent 2x2 block partition (column-based emits
  // exactly that for four equal areas).
  {
    std::vector<std::int64_t> areas(4, n * n / 4);
    areas[0] += n * n - 4 * (n * n / 4);
    core::ExperimentConfig config;
    config.platform = platform;
    config.n = n;
    config.preset_spec = partition::column_based_partition(n, areas);
    const auto res = core::run_pmm(config);
    std::int64_t bcasts = 0, bytes = 0;
    for (const auto& rep : res.reports) {
      bcasts = std::max<std::int64_t>(bcasts, rep.bcasts);
      bytes = std::max<std::int64_t>(bytes, rep.bcast_bytes);
    }
    t.add_row({"summagen(2x2 blocks)", "-",
               util::Table::num(res.exec_time_s, 4),
               util::Table::num(res.comp_time_s, 4),
               util::Table::num(res.comm_time_s, 4),
               util::Table::num(bcasts),
               util::Table::num(static_cast<double>(bytes) / (1 << 20), 1)});
  }
  t.print(std::cout);
  std::cout << "\nSUMMA's panelled schedule keeps buffers small at the cost "
               "of extra broadcast latency; SummaGen broadcasts whole "
               "sub-partitions once. Compute times agree — the generality "
               "is free on homogeneous grids.\n";
  return 0;
}

// Cross-module integration: the full paper pipeline (profiles -> workload
// partitioning -> shape construction -> SummaGen -> metrics/energy) glued
// together the way the bench binaries use it, checked for the paper's
// qualitative findings at reduced scale.
#include <gtest/gtest.h>

#include <numeric>

#include "src/core/reference.hpp"
#include "src/core/runner.hpp"
#include "src/energy/energy.hpp"
#include "src/partition/column_based.hpp"
#include "src/trace/stats.hpp"
#include "src/util/rng.hpp"

namespace summagen {
namespace {

using core::ExperimentConfig;
using core::Regime;
using partition::Shape;

TEST(Pipeline, Fig6PropertyShapesEqualInConstantRange) {
  std::vector<double> times;
  for (Shape s : partition::all_shapes()) {
    ExperimentConfig config;
    config.n = 28160;
    config.shape = s;
    config.cpm_speeds = {1.0, 2.0, 0.9};
    times.push_back(core::run_pmm(config).exec_time_s);
  }
  EXPECT_LT(trace::percentage_spread(times), 25.0);
}

TEST(Pipeline, Fig6PropertyComputationDominates) {
  // Paper: "The parallel execution times are dominated by computation."
  ExperimentConfig config;
  config.n = 30720;
  config.shape = Shape::kSquareRectangle;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  const auto res = core::run_pmm(config);
  EXPECT_GT(res.comp_time_s, 5.0 * res.comm_time_s);
}

TEST(Pipeline, Fig7PropertySquareCornerTrailsUnderFpm) {
  // Paper VI-B: square rectangle and block rectangle beat the others; at
  // minimum the square corner must not win.
  const auto platform = device::Platform::hclserver1();
  double corner = 0.0, best_rect = 1e300;
  for (Shape s : partition::all_shapes()) {
    ExperimentConfig config;
    config.platform = platform;
    config.n = 16384;
    config.shape = s;
    config.regime = Regime::kFunctional;
    const double t = core::run_pmm(config).exec_time_s;
    if (s == Shape::kSquareCorner) {
      corner = t;
    } else if (s == Shape::kSquareRectangle || s == Shape::kBlockRectangle) {
      best_rect = std::min(best_rect, t);
    }
  }
  EXPECT_GT(corner, best_rect);
}

TEST(Pipeline, Fig8PropertyDynamicEnergiesEqual) {
  std::vector<double> joules;
  for (Shape s : partition::all_shapes()) {
    ExperimentConfig config;
    config.n = 25600;
    config.shape = s;
    config.cpm_speeds = {1.0, 2.0, 0.9};
    config.record_events = true;
    joules.push_back(core::run_pmm(config).energy.dynamic_j);
  }
  EXPECT_LT(trace::percentage_spread(joules), 10.0);
}

TEST(Pipeline, PeakPerformanceInPaperBallpark) {
  // Paper: peak 84%, average 70% of the 2.5 TFLOPs theoretical peak. Allow
  // a generous band — the claim is "most of the machine is usable".
  const auto platform = device::Platform::hclserver1();
  double peak = 0.0;
  for (std::int64_t n : {30720, 35840, 38416}) {
    for (Shape s : partition::all_shapes()) {
      ExperimentConfig config;
      config.platform = platform;
      config.n = n;
      config.shape = s;
      config.cpm_speeds = {1.0, 2.0, 0.9};
      peak = std::max(peak, core::run_pmm(config).tflops);
    }
  }
  const double frac = peak * 1e12 / platform.theoretical_peak_flops();
  EXPECT_GT(frac, 0.65);
  EXPECT_LT(frac, 0.95);
}

TEST(Pipeline, MeterAgreesWithExactEnergyWithinNoise) {
  ExperimentConfig config;
  config.n = 25600;
  config.shape = Shape::kBlockRectangle;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.record_events = true;
  const auto res = core::run_pmm(config);
  const auto reading = energy::simulate_wattsup(res.events, config.platform,
                                                res.exec_time_s);
  const double metered =
      energy::dynamic_from_meter(reading, config.platform.static_power_w);
  // 3% meter accuracy + sampling discretisation.
  EXPECT_NEAR(metered, res.energy.dynamic_j, res.energy.total_j * 0.05);
}

TEST(Pipeline, ColumnBasedBaselineVerifiesNumerically) {
  // The rectangular baseline partitioner drives SummaGen too (it emits an
  // ordinary PartitionSpec): numeric check via preset areas + custom spec.
  const std::int64_t n = 192;
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  const auto spec = partition::column_based_partition(n, areas);

  // Drive SummaGen directly over the custom spec.
  const auto platform = device::Platform::hclserver1();
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 5);
  util::fill_random(b, 6);
  std::vector<std::unique_ptr<core::LocalData>> locals;
  for (int r = 0; r < 3; ++r) {
    locals.push_back(std::make_unique<core::LocalData>(spec, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = 3;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    core::summagen_rank(world, spec,
                        processors[static_cast<std::size_t>(world.rank())],
                        locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(n, n);
  for (int r = 0; r < 3; ++r) locals[static_cast<std::size_t>(r)]->gather_c(spec, c);
  const auto want = core::reference_multiply(a, b);
  EXPECT_LE(util::Matrix::max_abs_diff(c, want), core::gemm_tolerance(n));
}

TEST(Pipeline, CommVolumeTracksHalfPerimeterOrdering) {
  // The modeled MPI bytes of SummaGen should rank shapes consistently with
  // the sum-of-half-perimeters theory metric at equal areas.
  const std::int64_t n = 4096;
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  std::vector<std::pair<std::int64_t, std::int64_t>> metric;  // (hp, bytes)
  for (Shape s : partition::all_shapes()) {
    ExperimentConfig config;
    config.n = n;
    config.shape = s;
    config.preset_areas = areas;
    const auto res = core::run_pmm(config);
    std::int64_t bytes = 0;
    for (const auto& rep : res.reports) bytes += rep.bcast_bytes;
    metric.push_back({res.total_half_perimeter, bytes});
  }
  // 1D has the largest half-perimeter sum and the largest traffic.
  const auto& one_d = metric[3];
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(metric[i].first, one_d.first);
  }
}

TEST(Pipeline, FpmDistributionBeatsProportionalUnderFpmModels) {
  // The load-imbalancing partitioner's raison d'etre (paper Section VI-B).
  const auto platform = device::Platform::hclserver1();
  const std::int64_t n = 12288;
  const auto models = core::default_fpm_models(platform, n);
  std::vector<const device::SpeedFunction*> ptrs;
  for (const auto& m : models) ptrs.push_back(&m);
  const auto fpm = partition::partition_areas_fpm(n, ptrs);
  const auto cpm = partition::partition_areas_cpm(
      n * n, core::default_cpm_speeds(platform));
  EXPECT_LE(fpm.tcomp, partition::distribution_time(n, ptrs, cpm) + 1e-12);
}

}  // namespace
}  // namespace summagen

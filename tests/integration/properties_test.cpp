// Randomised property tests: SummaGen must compute the correct product and
// keep its invariants for arbitrary valid partition specs — including
// hand-crafted irregular ones no shape builder would produce.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "src/core/reference.hpp"
#include "src/core/runner.hpp"
#include "src/partition/nrrp.hpp"
#include "src/util/rng.hpp"

namespace summagen {
namespace {

// Runs SummaGen numerically over an arbitrary spec and platform; returns
// max |C - A*B|.
double run_spec(const partition::PartitionSpec& spec, int nprocs,
                std::uint64_t seed) {
  const auto platform = device::Platform::homogeneous(nprocs);
  const auto processors = platform.processors();
  util::Matrix a(spec.n, spec.n), b(spec.n, spec.n);
  util::fill_random(a, util::derive_seed(seed, 1));
  util::fill_random(b, util::derive_seed(seed, 2));
  std::vector<std::unique_ptr<core::LocalData>> locals;
  for (int r = 0; r < nprocs; ++r) {
    locals.push_back(std::make_unique<core::LocalData>(spec, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = nprocs;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    core::summagen_rank(world, spec,
                        processors[static_cast<std::size_t>(world.rank())],
                        locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(spec.n, spec.n);
  for (int r = 0; r < nprocs; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(spec, c);
  }
  return util::Matrix::max_abs_diff(c, core::reference_multiply(a, b));
}

// Random valid spec: random grid cuts, random owners.
partition::PartitionSpec random_spec(util::Rng& rng, std::int64_t n,
                                     int nprocs) {
  partition::PartitionSpec spec;
  spec.n = n;
  spec.subplda = static_cast<int>(rng.uniform_int(1, 4));
  spec.subpldb = static_cast<int>(rng.uniform_int(1, 4));
  auto cuts = [&](int parts) {
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(parts), 0);
    std::int64_t left = n;
    for (int i = 0; i < parts - 1; ++i) {
      sizes[static_cast<std::size_t>(i)] =
          rng.uniform_int(0, left);  // zero extents allowed
      left -= sizes[static_cast<std::size_t>(i)];
    }
    sizes[static_cast<std::size_t>(parts - 1)] = left;
    return sizes;
  };
  spec.subph = cuts(spec.subplda);
  spec.subpw = cuts(spec.subpldb);
  spec.subp.resize(static_cast<std::size_t>(spec.subplda) *
                   static_cast<std::size_t>(spec.subpldb));
  for (auto& owner : spec.subp) {
    owner = static_cast<int>(rng.uniform_int(0, nprocs - 1));
  }
  return spec;
}

TEST(RandomSpecs, SummaGenCorrectOnArbitraryValidLayouts) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t n = rng.uniform_int(8, 96);
    const int nprocs = static_cast<int>(rng.uniform_int(1, 4));
    const auto spec = random_spec(rng, n, nprocs);
    ASSERT_NO_THROW(spec.validate(nprocs));
    const double err = run_spec(spec, nprocs, 100 + trial);
    EXPECT_LE(err, core::gemm_tolerance(n))
        << "trial " << trial << " n=" << n << " p=" << nprocs << "\n"
        << spec.render(std::max<std::int64_t>(1, n / 16));
  }
}

TEST(RandomSpecs, RankOwningNothingIsHarmless) {
  // Owner 2 never appears; ranks 0..2 all participate in the run.
  partition::PartitionSpec spec;
  spec.n = 32;
  spec.subplda = 1;
  spec.subpldb = 2;
  spec.subp = {0, 1};
  spec.subph = {32};
  spec.subpw = {16, 16};
  EXPECT_LE(run_spec(spec, 3, 7), core::gemm_tolerance(32));
}

TEST(RandomSpecs, SingleCellSpec) {
  partition::PartitionSpec spec;
  spec.n = 17;
  spec.subplda = 1;
  spec.subpldb = 1;
  spec.subp = {0};
  spec.subph = {17};
  spec.subpw = {17};
  EXPECT_LE(run_spec(spec, 2, 8), core::gemm_tolerance(17));
}

TEST(RandomSpecs, CheckerboardSpec) {
  // Alternating ownership: every row and column needs both processors.
  partition::PartitionSpec spec;
  spec.n = 24;
  spec.subplda = 4;
  spec.subpldb = 4;
  spec.subph = {6, 6, 6, 6};
  spec.subpw = {6, 6, 6, 6};
  spec.subp.resize(16);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      spec.subp[static_cast<std::size_t>(i * 4 + j)] = (i + j) % 2;
    }
  }
  EXPECT_LE(run_spec(spec, 2, 9), core::gemm_tolerance(24));
}

TEST(RandomShapesUnderRandomSpeeds, EndToEndVerification) {
  util::Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    core::ExperimentConfig config;
    std::vector<double> speeds;
    for (int i = 0; i < 3; ++i) speeds.push_back(rng.uniform(0.3, 4.0));
    config.platform = device::Platform::synthetic(speeds);
    config.cpm_speeds = speeds;
    config.n = rng.uniform_int(24, 200);
    config.shape = partition::all_shapes()[static_cast<std::size_t>(
        rng.uniform_int(0, 3))];
    config.numeric = true;
    config.seed = 1000 + trial;
    const auto res = core::run_pmm(config);
    EXPECT_TRUE(res.verified)
        << partition::shape_name(config.shape) << " n=" << config.n
        << " err=" << res.max_abs_error;
  }
}

TEST(RandomSpecs, NrrpSpecsComputeCorrectProducts) {
  // NRRP emits arbitrary-p non-rectangular layouts; SummaGen must be
  // correct over them (this is the paper's "future work" path made real).
  util::Rng rng(4242);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t n = rng.uniform_int(32, 128);
    const int p = static_cast<int>(rng.uniform_int(2, 6));
    std::vector<double> speeds;
    for (int i = 0; i < p; ++i) speeds.push_back(rng.uniform(0.2, 5.0));
    const auto areas = partition::partition_areas_cpm(n * n, speeds);
    const auto spec = partition::nrrp_partition(n, areas);
    const double err = run_spec(spec, p, 9000 + trial);
    EXPECT_LE(err, core::gemm_tolerance(n))
        << "trial " << trial << " p=" << p << " n=" << n;
  }
}

TEST(Invariants, FlopsConservedAcrossShapes) {
  // Whatever the shape, the summed per-rank flops equal 2 n^3.
  const std::int64_t n = 640;
  for (auto s : partition::all_shapes()) {
    core::ExperimentConfig config;
    config.n = n;
    config.shape = s;
    config.cpm_speeds = {1.0, 2.0, 0.9};
    const auto res = core::run_pmm(config);
    std::int64_t flops = 0;
    for (const auto& rep : res.reports) flops += rep.flops;
    EXPECT_EQ(flops, 2 * n * n * n) << partition::shape_name(s);
  }
}

TEST(Invariants, BcastBytesConsistentAcrossParticipants) {
  // Every broadcast is counted by each participant; with 3 ranks the
  // per-rank byte counts must all equal the traffic of the rows/cols the
  // rank participates in — and ranks sharing all groups see equal counts.
  core::ExperimentConfig config;
  config.n = 512;
  config.shape = partition::Shape::kOneDimensional;  // all share all groups
  config.cpm_speeds = {1.0, 1.0, 1.0};
  const auto res = core::run_pmm(config);
  // 1D: rows are single-owner? No — one row spanning all columns, so the
  // row group is everyone; columns are single-owner. Everyone participates
  // in the same broadcasts.
  EXPECT_EQ(res.reports[0].bcast_bytes, res.reports[1].bcast_bytes);
  EXPECT_EQ(res.reports[1].bcast_bytes, res.reports[2].bcast_bytes);
  EXPECT_GT(res.reports[0].bcasts, 0);
}

}  // namespace
}  // namespace summagen

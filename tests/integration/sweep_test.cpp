// Exhaustive configuration sweeps: every shape x regime x platform flavour
// x granularity, each verified numerically end to end. These are the
// "boring" combinations the targeted tests skip; running them all keeps
// refactors honest across the whole configuration space.
#include <gtest/gtest.h>

#include "src/core/runner.hpp"

namespace summagen {
namespace {

using core::ExperimentConfig;
using core::Regime;
using partition::Shape;

enum class PlatformKind { kHclServer1, kSynthetic, kHomogeneous };

const char* platform_name(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kHclServer1:
      return "hclserver1";
    case PlatformKind::kSynthetic:
      return "synthetic";
    case PlatformKind::kHomogeneous:
      return "homogeneous";
  }
  return "?";
}

device::Platform make_platform(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kHclServer1:
      return device::Platform::hclserver1();
    case PlatformKind::kSynthetic:
      return device::Platform::synthetic({1.4, 0.6, 2.2});
    case PlatformKind::kHomogeneous:
      return device::Platform::homogeneous(3);
  }
  throw std::logic_error("unreachable");
}

class FullConfigurationSweep
    : public ::testing::TestWithParam<
          std::tuple<Shape, Regime, PlatformKind>> {};

TEST_P(FullConfigurationSweep, NumericVerification) {
  const auto [shape, regime, kind] = GetParam();
  ExperimentConfig config;
  config.platform = make_platform(kind);
  config.n = 144;
  config.shape = shape;
  config.regime = regime;
  config.numeric = true;
  config.record_events = true;  // exercise tracing in every combination
  const auto res = core::run_pmm(config);
  EXPECT_TRUE(res.verified)
      << partition::shape_name(shape) << " on " << platform_name(kind)
      << " err=" << res.max_abs_error;
  EXPECT_GT(res.energy.dynamic_j, 0.0);
  // The spec always covers the matrix exactly.
  std::int64_t area = 0;
  for (int r = 0; r < 3; ++r) area += res.spec.area_of(r);
  EXPECT_EQ(area, config.n * config.n);
}

INSTANTIATE_TEST_SUITE_P(
    All, FullConfigurationSweep,
    ::testing::Combine(::testing::ValuesIn(partition::extended_shapes()),
                       ::testing::Values(Regime::kConstant,
                                         Regime::kFunctional),
                       ::testing::Values(PlatformKind::kHclServer1,
                                         PlatformKind::kSynthetic,
                                         PlatformKind::kHomogeneous)),
    [](const auto& param_info) {
      return std::string(
                 partition::shape_name(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) == Regime::kConstant ? "_cpm_"
                                                                 : "_fpm_") +
             platform_name(std::get<2>(param_info.param));
    });

class GranularitySweep
    : public ::testing::TestWithParam<std::tuple<Shape, std::int64_t>> {};

TEST_P(GranularitySweep, DimensionsSnapAndResultVerifies) {
  const auto [shape, granularity] = GetParam();
  ExperimentConfig config;
  config.platform = device::Platform::synthetic({1.0, 2.0, 0.9});
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.n = 192;
  config.shape = shape;
  config.granularity = granularity;
  config.numeric = true;
  const auto res = core::run_pmm(config);
  EXPECT_TRUE(res.verified) << partition::shape_name(shape);
  for (auto h : res.spec.subph) EXPECT_EQ(h % granularity, 0);
  for (auto w : res.spec.subpw) EXPECT_EQ(w % granularity, 0);
}

INSTANTIATE_TEST_SUITE_P(
    All, GranularitySweep,
    ::testing::Combine(::testing::ValuesIn(partition::extended_shapes()),
                       ::testing::Values<std::int64_t>(2, 16, 48)),
    [](const auto& param_info) {
      return std::string(
                 partition::shape_name(std::get<0>(param_info.param))) +
             "_g" + std::to_string(std::get<1>(param_info.param));
    });

class InterpolationSweep
    : public ::testing::TestWithParam<device::Interpolation> {};

TEST_P(InterpolationSweep, FpmPipelineWorksWithBothModels) {
  ExperimentConfig config;
  config.n = 160;
  config.shape = Shape::kBlockRectangle;
  config.regime = Regime::kFunctional;
  config.fpm_models =
      core::default_fpm_models(config.platform, config.n, GetParam());
  config.numeric = true;
  const auto res = core::run_pmm(config);
  EXPECT_TRUE(res.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Models, InterpolationSweep,
    ::testing::Values(device::Interpolation::kPiecewiseLinear,
                      device::Interpolation::kAkima),
    [](const auto& param_info) {
      return param_info.param == device::Interpolation::kAkima
                 ? "akima"
                 : "piecewise_linear";
    });

class KernelSweep : public ::testing::TestWithParam<blas::GemmKernel> {};

TEST_P(KernelSweep, NumericPlaneWorksWithEveryKernel) {
  ExperimentConfig config;
  config.n = 96;
  config.shape = Shape::kSquareCorner;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.numeric = true;
  config.kernel.kernel = GetParam();
  config.kernel.threads = 2;
  const auto res = core::run_pmm(config);
  EXPECT_TRUE(res.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSweep,
    ::testing::Values(blas::GemmKernel::kNaive, blas::GemmKernel::kBlocked,
                      blas::GemmKernel::kThreaded, blas::GemmKernel::kPacked),
    [](const auto& param_info) {
      switch (param_info.param) {
        case blas::GemmKernel::kNaive:
          return "naive";
        case blas::GemmKernel::kBlocked:
          return "blocked";
        case blas::GemmKernel::kThreaded:
          return "threaded";
        case blas::GemmKernel::kPacked:
          return "packed";
      }
      return "unknown";
    });

}  // namespace
}  // namespace summagen

#include "src/partition/spec.hpp"

#include <gtest/gtest.h>

namespace summagen::partition {
namespace {

// The paper's square-corner example (Figure 1a), used throughout.
PartitionSpec corner16() {
  PartitionSpec s;
  s.n = 16;
  s.subplda = 3;
  s.subpldb = 3;
  s.subp = {0, 1, 1, 1, 1, 1, 1, 1, 2};
  s.subph = {9, 3, 4};
  s.subpw = {9, 3, 4};
  return s;
}

TEST(PartitionSpec, ValidateAcceptsCorner16) {
  EXPECT_NO_THROW(corner16().validate(3));
}

TEST(PartitionSpec, ValidateCatchesWrongSums) {
  auto s = corner16();
  s.subph = {9, 3, 3};
  EXPECT_THROW(s.validate(3), std::invalid_argument);
  s = corner16();
  s.subpw = {9, 3, 5};
  EXPECT_THROW(s.validate(3), std::invalid_argument);
}

TEST(PartitionSpec, ValidateCatchesArraySizeMismatches) {
  auto s = corner16();
  s.subp.pop_back();
  EXPECT_THROW(s.validate(3), std::invalid_argument);
  s = corner16();
  s.subph.push_back(0);
  EXPECT_THROW(s.validate(3), std::invalid_argument);
}

TEST(PartitionSpec, ValidateCatchesBadOwners) {
  auto s = corner16();
  s.subp[4] = 7;
  EXPECT_THROW(s.validate(3), std::invalid_argument);
  s.subp[4] = -1;
  EXPECT_THROW(s.validate(3), std::invalid_argument);
  s.subp[4] = 7;
  EXPECT_NO_THROW(s.validate(-1));  // owner-range check skipped
}

TEST(PartitionSpec, ValidateAllowsZeroExtents) {
  auto s = corner16();
  s.subph = {9, 0, 7};
  EXPECT_NO_THROW(s.validate(3));
}

TEST(PartitionSpec, ValidateCatchesNegativeExtents) {
  auto s = corner16();
  s.subph = {9, -1, 8};
  EXPECT_THROW(s.validate(3), std::invalid_argument);
}

TEST(PartitionSpec, NprocsIsMaxOwnerPlusOne) {
  EXPECT_EQ(corner16().nprocs(), 3);
  PartitionSpec s;
  s.n = 4;
  s.subplda = s.subpldb = 1;
  s.subp = {5};
  s.subph = {4};
  s.subpw = {4};
  EXPECT_EQ(s.nprocs(), 6);
}

TEST(PartitionSpec, Offsets) {
  const auto s = corner16();
  EXPECT_EQ(s.row_offsets(), (std::vector<std::int64_t>{0, 9, 12, 16}));
  EXPECT_EQ(s.col_offsets(), (std::vector<std::int64_t>{0, 9, 12, 16}));
}

TEST(PartitionSpec, RowAndColumnMembership) {
  const auto s = corner16();
  EXPECT_TRUE(s.row_contains(0, 0));
  EXPECT_TRUE(s.row_contains(1, 0));
  EXPECT_FALSE(s.row_contains(2, 0));
  EXPECT_FALSE(s.row_contains(0, 1));  // row 1 is all P1
  EXPECT_TRUE(s.row_contains(1, 1));
  EXPECT_TRUE(s.row_contains(2, 2));
  EXPECT_TRUE(s.col_contains(1, 2));
  EXPECT_FALSE(s.col_contains(0, 2));
}

TEST(PartitionSpec, RanksInRowSortedDistinct) {
  const auto s = corner16();
  EXPECT_EQ(s.ranks_in_row(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(s.ranks_in_row(1), (std::vector<int>{1}));
  EXPECT_EQ(s.ranks_in_row(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(s.ranks_in_col(0), (std::vector<int>{0, 1}));
  EXPECT_EQ(s.ranks_in_col(2), (std::vector<int>{1, 2}));
}

TEST(PartitionSpec, RowAndColSpans) {
  const auto s = corner16();
  EXPECT_EQ(s.row_span(0), (std::pair<int, int>{0, 1}));
  EXPECT_EQ(s.row_span(1), (std::pair<int, int>{0, 3}));
  EXPECT_EQ(s.row_span(2), (std::pair<int, int>{2, 1}));
  EXPECT_EQ(s.col_span(1), (std::pair<int, int>{0, 3}));
  EXPECT_EQ(s.col_span(2), (std::pair<int, int>{2, 1}));
  // A rank that owns nothing.
  EXPECT_EQ(s.row_span(9), (std::pair<int, int>{0, 0}));
}

TEST(PartitionSpec, AreasSumToNSquared) {
  const auto s = corner16();
  EXPECT_EQ(s.area_of(0) + s.area_of(1) + s.area_of(2), 16 * 16);
}

TEST(PartitionSpec, CoveringRectangles) {
  const auto s = corner16();
  EXPECT_EQ(s.covering(0), (Rect{0, 0, 9, 9}));
  EXPECT_EQ(s.covering(1), (Rect{0, 0, 16, 16}));
  EXPECT_EQ(s.covering(2), (Rect{12, 12, 4, 4}));
  EXPECT_EQ(s.covering(5), (Rect{}));  // absent rank: empty zone
}

TEST(PartitionSpec, CoveringIgnoresZeroExtentCells) {
  auto s = corner16();
  // Give row 1 zero height: P1's covering must still be the full matrix
  // via rows 0 and 2, but a rank owning only zero-height cells vanishes.
  s.subph = {9, 0, 7};
  EXPECT_EQ(s.covering(1).rows, 16);
  s.subp = {0, 1, 1, 2, 2, 2, 1, 1, 1};  // P2 only in the zero-height row
  EXPECT_EQ(s.covering(2), (Rect{}));
  EXPECT_EQ(s.half_perimeter(2), 0);
}

TEST(PartitionSpec, IsRectangular) {
  const auto s = corner16();
  EXPECT_TRUE(s.is_rectangular(0));
  EXPECT_FALSE(s.is_rectangular(1));
  EXPECT_TRUE(s.is_rectangular(2));
}

TEST(PartitionSpec, RenderOneCharPerElement) {
  PartitionSpec s;
  s.n = 2;
  s.subplda = 1;
  s.subpldb = 2;
  s.subp = {0, 1};
  s.subph = {2};
  s.subpw = {1, 1};
  EXPECT_EQ(s.render(), "01\n01\n");
  EXPECT_THROW(s.render(0), std::invalid_argument);
}

}  // namespace
}  // namespace summagen::partition

#include "src/partition/areas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/device/speed_function.hpp"

namespace summagen::partition {
namespace {

using device::SpeedFunction;
using device::SpeedPoint;

TEST(CpmAreas, ProportionalToSpeeds) {
  const auto areas = partition_areas_cpm(100, {1.0, 3.0});
  EXPECT_EQ(areas[0] + areas[1], 100);
  EXPECT_EQ(areas[0], 25);
  EXPECT_EQ(areas[1], 75);
}

TEST(CpmAreas, PaperSpeedsSumExactly) {
  // The paper's {1.0, 2.0, 0.9} at a paper-size total.
  const std::int64_t total = 30720LL * 30720LL;
  const auto areas = partition_areas_cpm(total, {1.0, 2.0, 0.9});
  EXPECT_EQ(std::accumulate(areas.begin(), areas.end(), std::int64_t{0}),
            total);
  // Shares within one element of total * s/S.
  EXPECT_NEAR(static_cast<double>(areas[0]), total / 3.9, 1.5);
  EXPECT_NEAR(static_cast<double>(areas[1]), total * 2.0 / 3.9, 1.5);
  EXPECT_NEAR(static_cast<double>(areas[2]), total * 0.9 / 3.9, 1.5);
}

TEST(CpmAreas, LargestRemainderDistributesLeftover) {
  // total=10 over equal speeds {1,1,1}: 3+3+4 in some order, sum exact.
  const auto areas = partition_areas_cpm(10, {1.0, 1.0, 1.0});
  EXPECT_EQ(std::accumulate(areas.begin(), areas.end(), std::int64_t{0}), 10);
  for (auto a : areas) EXPECT_GE(a, 3);
}

TEST(CpmAreas, RejectsBadInput) {
  EXPECT_THROW(partition_areas_cpm(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(partition_areas_cpm(10, {}), std::invalid_argument);
  EXPECT_THROW(partition_areas_cpm(10, {1.0, -1.0}), std::invalid_argument);
}

TEST(CpmAreas, ExtremeRatiosStayNonNegative) {
  const auto areas = partition_areas_cpm(1000, {1e-9, 1.0});
  EXPECT_EQ(areas[0] + areas[1], 1000);
  EXPECT_GE(areas[0], 0);
}

TEST(DistributionTime, MaxOfZoneTimes) {
  const auto f1 = SpeedFunction::constant(1.0e9);
  const auto f2 = SpeedFunction::constant(2.0e9);
  const std::vector<const SpeedFunction*> fs = {&f1, &f2};
  // n=100: times are 2*a*n/speed.
  const double t = distribution_time(100, fs, {5000, 5000});
  EXPECT_DOUBLE_EQ(t, 2.0 * 5000 * 100 / 1.0e9);
}

TEST(FpmAreas, ConstantSpeedsReduceToProportional) {
  const auto f1 = SpeedFunction::constant(1.0e9);
  const auto f2 = SpeedFunction::constant(3.0e9);
  const std::vector<const SpeedFunction*> fs = {&f1, &f2};
  const auto res = partition_areas_fpm(256, fs);
  EXPECT_EQ(res.areas[0] + res.areas[1], 256 * 256);
  // Optimal split is a1/a2 = 1/3 (within refinement granularity).
  EXPECT_NEAR(static_cast<double>(res.areas[1]) /
                  static_cast<double>(res.areas[0]),
              3.0, 0.15);
}

TEST(FpmAreas, SingleProcessorGetsEverything) {
  const auto f = SpeedFunction::constant(1.0e9);
  const auto res = partition_areas_fpm(64, {&f});
  EXPECT_EQ(res.areas, (std::vector<std::int64_t>{64 * 64}));
  EXPECT_GT(res.tcomp, 0.0);
}

TEST(FpmAreas, AvoidsPerformanceTrough) {
  // Processor 0 collapses for zones with edge in [100, 160] (area 1e4 to
  // 2.5e4); the optimizer must keep its allocation outside the trough even
  // though proportional splitting would land inside it.
  const auto trough = SpeedFunction::from_points({{50, 1.0e9},
                                                  {90, 1.0e9},
                                                  {110, 0.05e9},
                                                  {150, 0.05e9},
                                                  {170, 1.0e9},
                                                  {400, 1.0e9}});
  const auto steady = SpeedFunction::constant(1.0e9);
  const std::vector<const SpeedFunction*> fs = {&trough, &steady};
  const std::int64_t n = 200;  // proportional split: 2e4 each — in trough
  const auto res = partition_areas_fpm(n, fs);
  const double edge0 = std::sqrt(static_cast<double>(res.areas[0]));
  EXPECT_TRUE(edge0 < 105.0 || edge0 > 155.0)
      << "allocation landed in the trough: edge=" << edge0;
  // And the solution is much better than proportional.
  const double proportional =
      distribution_time(n, fs, {n * n / 2, n * n - n * n / 2});
  EXPECT_LT(res.tcomp, proportional * 0.5);
}

TEST(FpmAreas, MatchesBruteForceOnCoarseGrid) {
  // Exhaustive check on a deliberately coarse grid: DP must be optimal
  // among grid-quantised distributions (before refinement can only improve).
  const auto f1 = SpeedFunction::from_points(
      {{10, 1.0e8}, {40, 2.0e8}, {80, 0.5e8}, {160, 3.0e8}});
  const auto f2 = SpeedFunction::from_points(
      {{10, 2.0e8}, {40, 0.7e8}, {80, 2.5e8}, {160, 1.0e8}});
  const auto f3 = SpeedFunction::constant(1.5e8);
  const std::vector<const SpeedFunction*> fs = {&f1, &f2, &f3};
  const std::int64_t n = 96;
  const std::int64_t total = n * n;
  const std::int64_t step = total / 64;

  // Brute force over the same grid (+ remainder folded into rank 0, as the
  // DP does).
  double best = 1e300;
  const std::int64_t slots = total / step;
  for (std::int64_t k1 = 0; k1 <= slots; ++k1) {
    for (std::int64_t k2 = 0; k1 + k2 <= slots; ++k2) {
      const std::int64_t k0 = slots - k1 - k2;
      const std::vector<std::int64_t> areas = {
          k0 * step + (total - slots * step), k1 * step, k2 * step};
      best = std::min(best, distribution_time(n, fs, areas));
    }
  }

  FpmOptions opts;
  opts.grid_step = step;
  opts.refine_iters = 0;  // isolate the DP
  const auto res = partition_areas_fpm(n, fs, opts);
  EXPECT_LE(res.tcomp, best * (1.0 + 1e-9));
}

TEST(FpmAreas, RefinementNeverHurts) {
  const auto f1 = SpeedFunction::from_points(
      {{10, 1.0e8}, {100, 3.0e8}, {200, 0.8e8}, {300, 2.0e8}});
  const auto f2 = SpeedFunction::constant(1.0e8);
  const std::vector<const SpeedFunction*> fs = {&f1, &f2};
  FpmOptions coarse;
  coarse.grid_step = 256 * 256 / 16;
  coarse.refine_iters = 0;
  const auto rough = partition_areas_fpm(256, fs, coarse);
  coarse.refine_iters = 500;
  const auto refined = partition_areas_fpm(256, fs, coarse);
  EXPECT_LE(refined.tcomp, rough.tcomp * (1.0 + 1e-12));
}

TEST(FpmAreas, AreasAlwaysSumToTotalAndNonNegative) {
  const auto f1 = SpeedFunction::from_points({{10, 1e8}, {500, 4e8}});
  const auto f2 = SpeedFunction::from_points({{10, 3e8}, {500, 1e8}});
  const auto f3 = SpeedFunction::constant(2e8);
  const std::vector<const SpeedFunction*> fs = {&f1, &f2, &f3};
  for (std::int64_t n : {17, 64, 129, 300}) {
    const auto res = partition_areas_fpm(n, fs);
    EXPECT_EQ(std::accumulate(res.areas.begin(), res.areas.end(),
                              std::int64_t{0}),
              n * n);
    for (auto a : res.areas) EXPECT_GE(a, 0);
  }
}

TEST(FpmAreas, RejectsBadInput) {
  const auto f = SpeedFunction::constant(1e9);
  EXPECT_THROW(partition_areas_fpm(0, {&f}), std::invalid_argument);
  EXPECT_THROW(partition_areas_fpm(64, std::vector<const SpeedFunction*>{}),
               std::invalid_argument);
  FpmOptions opts;
  opts.grid_step = 1 << 30;  // coarser than the whole workload
  const std::vector<const SpeedFunction*> fs = {&f, &f, &f};
  EXPECT_THROW(partition_areas_fpm(16, fs, opts), std::invalid_argument);
}

TEST(FpmAreas, OwningVectorOverload) {
  std::vector<SpeedFunction> fs = {SpeedFunction::constant(1e9),
                                   SpeedFunction::constant(1e9)};
  const auto res = partition_areas_fpm(64, fs);
  EXPECT_EQ(res.areas.size(), 2u);
  EXPECT_NEAR(static_cast<double>(res.areas[0]),
              static_cast<double>(res.areas[1]), 64.0 * 8);
}

}  // namespace
}  // namespace summagen::partition

#include "src/partition/column_based.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace summagen::partition {
namespace {

TEST(ColumnLayout, SingleProcessorIsOneColumn) {
  const auto layout = optimal_column_layout({1.0});
  ASSERT_EQ(layout.columns.size(), 1u);
  EXPECT_EQ(layout.columns[0], (std::vector<int>{0}));
  // One rectangle filling the unit square: half-perimeter 2.
  EXPECT_NEAR(layout.continuous_half_perimeter, 2.0, 1e-12);
}

TEST(ColumnLayout, EqualPairSplitsIntoTwoColumns) {
  // Two equal processors: {1 column of 2} costs 2*0.5*2... compare:
  //   one column  : 2*1 + 1 = 3
  //   two columns : (1*0.5 + 1) * 2 = 3 — tie; either is optimal.
  const auto layout = optimal_column_layout({1.0, 1.0});
  EXPECT_NEAR(layout.continuous_half_perimeter, 3.0, 1e-12);
}

TEST(ColumnLayout, FourEqualProcessorsPreferTwoByTwo) {
  // 2x2 grid: per column 2 rects of w=0.5 => cost 2*(2*0.5 + 1) = 4;
  // 1x4 slices: 4*0.25*1 + ... = 1*4... compute: one column of 4:
  // 4*1 + 1 = 5; four columns: 4*(1*0.25 + 1) = 5; two columns of 2:
  // 2*(2*0.5 + 1) = 4 — optimal.
  const auto layout = optimal_column_layout({1.0, 1.0, 1.0, 1.0});
  ASSERT_EQ(layout.columns.size(), 2u);
  EXPECT_EQ(layout.columns[0].size(), 2u);
  EXPECT_NEAR(layout.continuous_half_perimeter, 4.0, 1e-12);
}

TEST(ColumnLayout, MatchesBruteForceForConsecutivePartitions) {
  // DP must find the optimal consecutive grouping of the sorted areas.
  const std::vector<double> areas = {0.4, 0.25, 0.2, 0.1, 0.05};
  const auto layout = optimal_column_layout(areas);

  // Brute force all 2^(p-1) consecutive splits of the sorted sequence.
  std::vector<double> sorted = areas;  // already descending
  const std::size_t p = sorted.size();
  double best = 1e300;
  for (unsigned mask = 0; mask < (1u << (p - 1)); ++mask) {
    double cost = 0.0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < p; ++i) {
      const bool cut = i + 1 == p || (mask >> i) & 1u;
      if (!cut) continue;
      double w = 0.0;
      for (std::size_t j = start; j <= i; ++j) w += sorted[j];
      cost += static_cast<double>(i - start + 1) * w + 1.0;
      start = i + 1;
    }
    best = std::min(best, cost);
  }
  EXPECT_NEAR(layout.continuous_half_perimeter, best, 1e-9);
}

TEST(ColumnLayout, RejectsBadInput) {
  EXPECT_THROW(optimal_column_layout({}), std::invalid_argument);
  EXPECT_THROW(optimal_column_layout({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(optimal_column_layout({0.0, 0.0}), std::invalid_argument);
}

TEST(ColumnPartition, CoversExactlyWithRequestedAreas) {
  const std::int64_t n = 240;
  const std::vector<std::int64_t> areas = {n * n / 2, n * n / 3,
                                           n * n - n * n / 2 - n * n / 3};
  const auto spec = column_based_partition(n, areas);
  spec.validate(3);
  std::int64_t sum = 0;
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(spec.is_rectangular(r)) << "rank " << r;
    sum += spec.area_of(r);
    EXPECT_NEAR(static_cast<double>(spec.area_of(r)),
                static_cast<double>(areas[static_cast<std::size_t>(r)]),
                static_cast<double>(2 * n));
  }
  EXPECT_EQ(sum, n * n);
}

TEST(ColumnPartition, ManyProcessors) {
  const std::int64_t n = 360;
  std::vector<std::int64_t> areas(6, n * n / 6);
  areas[0] += n * n - 6 * (n * n / 6);
  const auto spec = column_based_partition(n, areas);
  spec.validate(6);
  std::int64_t sum = 0;
  for (int r = 0; r < 6; ++r) {
    EXPECT_TRUE(spec.is_rectangular(r));
    sum += spec.area_of(r);
  }
  EXPECT_EQ(sum, n * n);
}

TEST(ColumnPartition, SingleProcessorOwnsEverything) {
  const auto spec = column_based_partition(64, {64 * 64});
  EXPECT_EQ(spec.area_of(0), 64 * 64);
  EXPECT_TRUE(spec.is_rectangular(0));
}

TEST(ColumnPartition, RejectsWrongTotals) {
  EXPECT_THROW(column_based_partition(16, {100, 100}),
               std::invalid_argument);
  EXPECT_THROW(column_based_partition(0, {0}), std::invalid_argument);
  EXPECT_THROW(column_based_partition(16, {-4, 260}), std::invalid_argument);
}

}  // namespace
}  // namespace summagen::partition

// Layer-based partitioning (src/partition/layered.hpp): transpose duality
// with the column-based optimum, validity, and the build_shape integration.
#include <gtest/gtest.h>

#include <cmath>

#include "src/partition/column_based.hpp"
#include "src/partition/layered.hpp"
#include "src/partition/shapes.hpp"

namespace summagen::partition {
namespace {

std::vector<std::int64_t> areas_for(std::int64_t n,
                                    const std::vector<double>& speeds) {
  double total = 0.0;
  for (double s : speeds) total += s;
  std::vector<std::int64_t> areas;
  std::int64_t used = 0;
  for (std::size_t i = 0; i + 1 < speeds.size(); ++i) {
    areas.push_back(static_cast<std::int64_t>(
        std::llround(static_cast<double>(n * n) * speeds[i] / total)));
    used += areas.back();
  }
  areas.push_back(n * n - used);
  return areas;
}

TEST(TransposeSpec, IsAnInvolutionAndPreservesAreas) {
  const std::int64_t n = 192;
  const auto areas = areas_for(n, {1.0, 2.0, 0.9});
  const auto spec = column_based_partition(n, areas);
  const auto t = transpose_spec(spec);
  EXPECT_EQ(t.n, spec.n);
  EXPECT_EQ(t.subplda, spec.subpldb);
  EXPECT_EQ(t.subpldb, spec.subplda);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(t.area_of(r), spec.area_of(r));
  const auto tt = transpose_spec(t);
  EXPECT_EQ(tt.subp, spec.subp);
  EXPECT_EQ(tt.subph, spec.subph);
  EXPECT_EQ(tt.subpw, spec.subpw);
}

TEST(LayeredPartition, ValidFullWidthLayers) {
  const std::int64_t n = 256;
  const auto areas = areas_for(n, {1.0, 2.0, 0.9});
  const auto spec = layered_partition(n, areas);
  spec.validate(3);
  std::int64_t sum = 0;
  for (int r = 0; r < 3; ++r) sum += spec.area_of(r);
  EXPECT_EQ(sum, n * n);
  // Every rank's zone is a rectangle (layers split vertically).
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(spec.is_rectangular(r));
  // Areas approximate the requests within integer-rounding slack.
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(static_cast<double>(spec.area_of(r)),
                static_cast<double>(areas[static_cast<std::size_t>(r)]),
                3.0 * static_cast<double>(n));
  }
}

TEST(LayeredPartition, IsTheTransposeOfColumnBased) {
  const std::int64_t n = 128;
  const auto areas = areas_for(n, {1.4, 0.6, 2.2});
  const auto columns = column_based_partition(n, areas);
  const auto layers = layered_partition(n, areas);
  EXPECT_EQ(layers.subph, columns.subpw);
  EXPECT_EQ(layers.subpw, columns.subph);
  EXPECT_EQ(layers.total_half_perimeter(), columns.total_half_perimeter());
}

TEST(LayeredPartition, ManyProcessors) {
  const std::int64_t n = 120;
  const auto areas = areas_for(n, {1.0, 1.5, 0.7, 2.0, 1.1});
  const auto spec = layered_partition(n, areas);
  spec.validate(5);
  std::int64_t sum = 0;
  for (int r = 0; r < 5; ++r) sum += spec.area_of(r);
  EXPECT_EQ(sum, n * n);
}

TEST(LayeredShape, BuildShapeSnapsToGranularity) {
  const std::int64_t n = 192;
  const auto areas = areas_for(n, {1.0, 2.0, 0.9});
  for (std::int64_t g : {1, 2, 16, 48}) {
    const auto spec = build_shape(Shape::kLayered, n, areas, g);
    spec.validate(3);
    for (auto h : spec.subph) EXPECT_EQ(h % g, 0) << "g=" << g;
    for (auto w : spec.subpw) EXPECT_EQ(w % g, 0) << "g=" << g;
    std::int64_t sum = 0;
    for (int r = 0; r < 3; ++r) sum += spec.area_of(r);
    EXPECT_EQ(sum, n * n);
  }
}

TEST(LayeredShape, InExtendedShapesWithStableName) {
  bool found = false;
  for (Shape s : extended_shapes()) {
    if (s == Shape::kLayered) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_STREQ(shape_name(Shape::kLayered), "layered");
}

}  // namespace
}  // namespace summagen::partition

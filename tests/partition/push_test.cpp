#include "src/partition/push.hpp"

#include <gtest/gtest.h>

#include "src/partition/areas.hpp"
#include "src/partition/shapes.hpp"

namespace summagen::partition {
namespace {

TEST(Push, PreservesAreasExactly) {
  const std::int64_t n = 128;
  const auto areas = partition_areas_cpm(n * n, {3.0, 1.0});
  PushOptions opts;
  opts.grid = 16;
  const auto res = push_optimize(n, areas, opts);
  res.spec.validate(2);
  // Cell quantisation: each zone within one cell row/column of its request.
  const double cell = static_cast<double>(n) / opts.grid;
  for (int r = 0; r < 2; ++r) {
    EXPECT_NEAR(static_cast<double>(res.spec.area_of(r)),
                static_cast<double>(areas[static_cast<std::size_t>(r)]),
                cell * n + cell * cell);
  }
}

TEST(Push, NeverWorsensTheStartingLayout) {
  const std::int64_t n = 96;
  for (auto speeds : {std::vector<double>{1.0, 1.0},
                      std::vector<double>{4.0, 1.0},
                      std::vector<double>{1.0, 2.0, 0.9}}) {
    const auto areas = partition_areas_cpm(n * n, speeds);
    PushOptions opts;
    opts.grid = 12;
    const auto res = push_optimize(n, areas, opts);
    EXPECT_LE(res.final_half_perimeter, res.initial_half_perimeter);
    EXPECT_GE(res.passes, 1);
  }
}

TEST(Push, BalancedTwoProcessorsKeepStraightLine) {
  // Ratio 1:1 is below the square-corner crossover: the straight line is
  // optimal (HP = 3n) and the descent must not do worse.
  const std::int64_t n = 128;
  const auto areas = partition_areas_cpm(n * n, {1.0, 1.0});
  PushOptions opts;
  opts.grid = 16;
  const auto res = push_optimize(n, areas, opts);
  EXPECT_EQ(res.final_half_perimeter, 3 * n);
}

TEST(Push, SkewedTwoProcessorsDiscoverTheCorner) {
  // Ratio 8:1 is far beyond 3:1: the descent must find a layout at least
  // as good as the analytic square corner and strictly better than 1D.
  const std::int64_t n = 128;
  const auto areas = partition_areas_cpm(n * n, {8.0, 1.0});
  PushOptions opts;
  opts.grid = 16;
  const auto res = push_optimize(n, areas, opts);
  EXPECT_LT(res.final_half_perimeter, 3 * n);  // beat the straight line
  const auto corner = build_shape(Shape::kSquareCorner, n, areas);
  // Within one cell-granularity step of the analytic optimum.
  const std::int64_t cell = n / opts.grid;
  EXPECT_LE(res.final_half_perimeter,
            corner.total_half_perimeter() + 2 * cell);
  EXPECT_GT(res.swaps, 0);
}

TEST(Push, ThreeProcessorsBeatOneDimensional) {
  const std::int64_t n = 120;
  const auto areas = partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  PushOptions opts;
  opts.grid = 12;
  const auto res = push_optimize(n, areas, opts);
  const auto one_d = build_shape(Shape::kOneDimensional, n, areas);
  EXPECT_LT(res.final_half_perimeter, one_d.total_half_perimeter());
}

TEST(Push, DeterministicPerSeed) {
  const std::int64_t n = 64;
  const auto areas = partition_areas_cpm(n * n, {5.0, 1.0});
  PushOptions opts;
  opts.grid = 8;
  const auto r1 = push_optimize(n, areas, opts);
  const auto r2 = push_optimize(n, areas, opts);
  EXPECT_EQ(r1.final_half_perimeter, r2.final_half_perimeter);
  EXPECT_EQ(r1.spec.subp, r2.spec.subp);
}

TEST(Push, RejectsBadInput) {
  EXPECT_THROW(push_optimize(0, {0}), std::invalid_argument);
  EXPECT_THROW(push_optimize(64, {}), std::invalid_argument);
  EXPECT_THROW(push_optimize(64, {100, 100}), std::invalid_argument);
  PushOptions opts;
  opts.grid = 1;
  EXPECT_THROW(push_optimize(64, {64 * 64}, opts), std::invalid_argument);
  opts.grid = 2;
  std::vector<std::int64_t> many(5, 64 * 64 / 5);
  many[0] += 64 * 64 - 5 * (64 * 64 / 5);
  EXPECT_THROW(push_optimize(64, many, opts), std::invalid_argument);
}

}  // namespace
}  // namespace summagen::partition

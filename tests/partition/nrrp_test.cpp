#include "src/partition/nrrp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/partition/areas.hpp"
#include "src/util/rng.hpp"

namespace summagen::partition {
namespace {

std::vector<std::int64_t> equal_areas(std::int64_t n, int p) {
  std::vector<std::int64_t> areas(static_cast<std::size_t>(p), n * n / p);
  areas[0] += n * n - p * (n * n / p);
  return areas;
}

TEST(Nrrp, SingleProcessorOwnsEverything) {
  const auto spec = nrrp_partition(64, {64 * 64});
  EXPECT_EQ(spec.area_of(0), 64 * 64);
  EXPECT_TRUE(spec.is_rectangular(0));
}

TEST(Nrrp, TwoBalancedProcessorsGuillotine) {
  // Equal areas: the corner layout loses (2s > min side), so both zones
  // are rectangles.
  const auto spec = nrrp_partition(128, equal_areas(128, 2));
  spec.validate(2);
  EXPECT_TRUE(spec.is_rectangular(0));
  EXPECT_TRUE(spec.is_rectangular(1));
  EXPECT_NEAR(static_cast<double>(spec.area_of(0)),
              static_cast<double>(spec.area_of(1)), 256.0);
}

TEST(Nrrp, TwoSkewedProcessorsCornerLeaf) {
  // Ratio 9:1 — well past the 3:1 crossover; the small zone must be a
  // corner square and the big zone non-rectangular.
  const std::int64_t n = 120;
  const auto areas = partition_areas_cpm(n * n, {9.0, 1.0});
  const auto spec = nrrp_partition(n, areas);
  spec.validate(2);
  EXPECT_FALSE(spec.is_rectangular(0));
  EXPECT_TRUE(spec.is_rectangular(1));
  const Rect sq = spec.covering(1);
  EXPECT_EQ(sq.rows, sq.cols);
  // Half-perimeter beats the straight-line split's 3n.
  EXPECT_LT(spec.total_half_perimeter(), 3 * n);
}

TEST(Nrrp, RectangularOnlyModeNeverEmitsNonRectZones) {
  util::Rng rng(3);
  NrrpOptions opts;
  opts.allow_non_rectangular = false;
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 200;
    std::vector<double> speeds;
    const int p = static_cast<int>(rng.uniform_int(2, 8));
    for (int i = 0; i < p; ++i) speeds.push_back(rng.uniform(0.1, 5.0));
    const auto areas = partition_areas_cpm(n * n, speeds);
    const auto spec = nrrp_partition(n, areas, opts);
    for (int r = 0; r < p; ++r) {
      EXPECT_TRUE(spec.is_rectangular(r)) << "trial " << trial;
    }
  }
}

TEST(Nrrp, ExactCoverForManyProcessorCounts) {
  for (int p : {2, 3, 5, 8, 13, 16}) {
    const std::int64_t n = 160;
    const auto spec = nrrp_partition(n, equal_areas(n, p));
    spec.validate(p);
    std::int64_t sum = 0;
    for (int r = 0; r < p; ++r) sum += spec.area_of(r);
    EXPECT_EQ(sum, n * n) << "p=" << p;
  }
}

TEST(Nrrp, AreasApproximateRequests) {
  util::Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    const std::int64_t n = 256;
    const int p = static_cast<int>(rng.uniform_int(2, 10));
    std::vector<double> speeds;
    for (int i = 0; i < p; ++i) speeds.push_back(rng.uniform(0.3, 3.0));
    const auto areas = partition_areas_cpm(n * n, speeds);
    const auto spec = nrrp_partition(n, areas);
    for (int r = 0; r < p; ++r) {
      // Integer cuts cost at most ~one row/column of the zone's extent per
      // recursion level (log2 p levels).
      const double slack =
          4.0 * static_cast<double>(n) * std::log2(p + 1);
      EXPECT_NEAR(static_cast<double>(spec.area_of(r)),
                  static_cast<double>(areas[static_cast<std::size_t>(r)]),
                  slack)
          << "trial " << trial << " p=" << p << " rank " << r;
    }
  }
}

TEST(Nrrp, QualityWithinApproximationBand) {
  // Random heterogeneous instances: the half-perimeter quality should stay
  // in a tight band above the universal lower bound. (The continuous NRRP
  // guarantee is 1.1547; integer effects can push slightly past it.)
  util::Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t n = 512;
    const int p = static_cast<int>(rng.uniform_int(2, 12));
    std::vector<double> speeds;
    for (int i = 0; i < p; ++i) speeds.push_back(rng.uniform(0.2, 4.0));
    const auto areas = partition_areas_cpm(n * n, speeds);
    const auto spec = nrrp_partition(n, areas);
    EXPECT_LT(nrrp_quality(spec), 1.35)
        << "trial " << trial << " p=" << p;
    EXPECT_GE(nrrp_quality(spec), 1.0);
  }
}

TEST(Nrrp, CornerLeavesImproveSkewedInstances) {
  // With strong two-group heterogeneity the corner option must not lose to
  // the rectangular-only dissection.
  const std::int64_t n = 240;
  const auto areas = partition_areas_cpm(n * n, {10.0, 1.0});
  const auto with_corners = nrrp_partition(n, areas);
  NrrpOptions opts;
  opts.allow_non_rectangular = false;
  const auto rect_only = nrrp_partition(n, areas, opts);
  EXPECT_LE(with_corners.total_half_perimeter(),
            rect_only.total_half_perimeter());
}

TEST(Nrrp, ZeroAreaProcessorsAllowed) {
  const std::int64_t n = 64;
  const auto spec = nrrp_partition(n, {n * n / 2, 0, n * n - n * n / 2});
  spec.validate(3);
  EXPECT_EQ(spec.area_of(1), 0);
  EXPECT_EQ(spec.area_of(0) + spec.area_of(2), n * n);
}

TEST(Nrrp, RejectsBadInput) {
  EXPECT_THROW(nrrp_partition(0, {0}), std::invalid_argument);
  EXPECT_THROW(nrrp_partition(16, {}), std::invalid_argument);
  EXPECT_THROW(nrrp_partition(16, {100, 100}), std::invalid_argument);
  EXPECT_THROW(nrrp_partition(16, {-5, 261}), std::invalid_argument);
  EXPECT_THROW(nrrp_partition(16, {0, 0}), std::invalid_argument);
  // More processors than rows.
  std::vector<std::int64_t> many(8, 2);
  EXPECT_THROW(nrrp_partition(4, many), std::invalid_argument);
}

TEST(Hierarchical, EachGroupOwnsOneRectangleRegion) {
  // 2 groups of 3 processors: the union of each group's zones must be a
  // rectangle (level 1 is rectangular-only).
  const std::int64_t n = 240;
  std::vector<std::vector<std::int64_t>> by_group = {
      {9600, 19200, 9600}, {8640, 7680, 2880}};
  std::int64_t total = 0;
  for (const auto& g : by_group)
    for (auto a : g) total += a;
  ASSERT_EQ(total, n * n);
  const auto spec = nrrp_hierarchical(n, by_group);
  spec.validate(6);
  // Group zone = union of member zones; check its bounding box area equals
  // its total area (rectangular region).
  for (int g = 0; g < 2; ++g) {
    std::int64_t area = 0;
    Rect box{};
    bool first = true;
    for (int i = 0; i < 3; ++i) {
      const int rank = g * 3 + i;
      area += spec.area_of(rank);
      const Rect r = spec.covering(rank);
      if (r.rows == 0) continue;
      if (first) {
        box = r;
        first = false;
      } else {
        const std::int64_t r1 = std::min(box.row0, r.row0);
        const std::int64_t c1 = std::min(box.col0, r.col0);
        const std::int64_t r2 =
            std::max(box.row0 + box.rows, r.row0 + r.rows);
        const std::int64_t c2 =
            std::max(box.col0 + box.cols, r.col0 + r.cols);
        box = {r1, c1, r2 - r1, c2 - c1};
      }
    }
    EXPECT_EQ(area, box.rows * box.cols) << "group " << g;
  }
}

TEST(Hierarchical, ExactCoverAndAreaApproximation) {
  const std::int64_t n = 300;
  std::vector<std::vector<std::int64_t>> by_group(3);
  // 3 nodes x 3 devices with the paper's speed mix.
  const auto flat = partition_areas_cpm(
      n * n, {1.0, 2.0, 0.9, 1.0, 2.0, 0.9, 1.0, 2.0, 0.9});
  for (int g = 0; g < 3; ++g) {
    by_group[static_cast<std::size_t>(g)] = {
        flat[static_cast<std::size_t>(3 * g)],
        flat[static_cast<std::size_t>(3 * g + 1)],
        flat[static_cast<std::size_t>(3 * g + 2)]};
  }
  const auto spec = nrrp_hierarchical(n, by_group);
  spec.validate(9);
  std::int64_t sum = 0;
  for (int r = 0; r < 9; ++r) sum += spec.area_of(r);
  EXPECT_EQ(sum, n * n);
  for (int r = 0; r < 9; ++r) {
    EXPECT_NEAR(static_cast<double>(spec.area_of(r)),
                static_cast<double>(flat[static_cast<std::size_t>(r)]),
                6.0 * n);
  }
}

TEST(Hierarchical, SingleGroupEqualsFlatNrrp) {
  const std::int64_t n = 128;
  const auto areas = partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  const auto flat = nrrp_partition(n, areas);
  const auto hier = nrrp_hierarchical(n, {areas});
  EXPECT_EQ(flat.total_half_perimeter(), hier.total_half_perimeter());
}

TEST(Hierarchical, RejectsBadInput) {
  EXPECT_THROW(nrrp_hierarchical(16, {}), std::invalid_argument);
  EXPECT_THROW(nrrp_hierarchical(16, {{}}), std::invalid_argument);
  EXPECT_THROW(nrrp_hierarchical(16, {{100}, {100}}),
               std::invalid_argument);
  EXPECT_THROW(nrrp_hierarchical(16, {{-1}, {257}}), std::invalid_argument);
}

TEST(LowerBound, Formula) {
  EXPECT_DOUBLE_EQ(half_perimeter_lower_bound({100}), 20.0);
  EXPECT_DOUBLE_EQ(half_perimeter_lower_bound({100, 400}), 20.0 + 40.0);
  EXPECT_THROW(half_perimeter_lower_bound({-1}), std::invalid_argument);
}

TEST(Quality, PerfectSquareScoresAtBound) {
  // One processor on the whole square: HP = 2n, LB = 2n -> quality 1.
  const auto spec = nrrp_partition(32, {32 * 32});
  EXPECT_DOUBLE_EQ(nrrp_quality(spec), 1.0);
}

}  // namespace
}  // namespace summagen::partition

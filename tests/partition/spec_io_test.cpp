#include "src/partition/spec_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/partition/shapes.hpp"
#include "src/util/rng.hpp"

namespace summagen::partition {
namespace {

PartitionSpec corner16() {
  return build_shape(Shape::kSquareCorner, 16, {81, 159, 16});
}

// Areas for the paper's speeds {1.0, 2.0, 0.9} at n=256.
std::vector<std::int64_t> areas256() {
  return {16804, 33608, 15124};
}

TEST(SpecIo, RoundTripExactForEveryShape) {
  for (Shape s : extended_shapes()) {
    const auto spec = build_shape(s, 256, areas256());
    const auto parsed = parse_spec(to_text(spec));
    EXPECT_EQ(parsed.n, spec.n) << shape_name(s);
    EXPECT_EQ(parsed.subplda, spec.subplda);
    EXPECT_EQ(parsed.subpldb, spec.subpldb);
    EXPECT_EQ(parsed.subp, spec.subp);
    EXPECT_EQ(parsed.subph, spec.subph);
    EXPECT_EQ(parsed.subpw, spec.subpw);
  }
}

TEST(SpecIo, ParsesThePaperNotationVerbatim) {
  // Section IV's square-corner arrays, including the paper's use of ';'
  // to put two assignments on one line.
  const std::string text = R"(
# Figure 1a
n = 16
subplda = 3; subpldb = 3
subp = {0, 1, 1, 1, 1, 1, 1, 1, 2}
subph = {9, 3, 4}
subpw = {9, 3, 4}
)";
  const auto spec = parse_spec(text);
  const auto expected = corner16();
  EXPECT_EQ(spec.subp, expected.subp);
  EXPECT_EQ(spec.subph, expected.subph);
  EXPECT_EQ(spec.area_of(1), 159);
}

TEST(SpecIo, CommentsAndWhitespaceTolerated) {
  const std::string text =
      "  n=4   # tiny\n"
      "subplda=1\n"
      "subpldb = 2\n"
      "subp={0,1}\n"
      "subph = { 4 }\n"
      "subpw={1,3}\n";
  const auto spec = parse_spec(text);
  EXPECT_EQ(spec.n, 4);
  EXPECT_EQ(spec.owner(0, 1), 1);
}

TEST(SpecIo, MissingKeyRejected) {
  EXPECT_THROW(parse_spec("n = 4\nsubplda = 1\n"), std::invalid_argument);
}

TEST(SpecIo, DuplicateKeyRejected) {
  const std::string text =
      "n=4\nn=5\nsubplda=1\nsubpldb=1\nsubp={0}\nsubph={4}\nsubpw={4}\n";
  EXPECT_THROW(parse_spec(text), std::invalid_argument);
}

TEST(SpecIo, SyntaxErrorsNameTheLine) {
  try {
    parse_spec("n = 4\nsubplda == 1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_spec("n = {1, 2}\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("n = x\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("n = 4\nsubp = {0, }\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("n = 4\nsubp = {0, 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("bogus = 3\n"), std::invalid_argument);
}

TEST(SpecIo, InvalidSpecRejectedAfterParsing) {
  // Heights sum to 5, n is 4.
  const std::string text =
      "n=4\nsubplda=1\nsubpldb=1\nsubp={0}\nsubph={5}\nsubpw={4}\n";
  EXPECT_THROW(parse_spec(text), std::invalid_argument);
}

TEST(SpecIo, FileRoundTrip) {
  namespace fs = std::filesystem;
  const auto path = fs::temp_directory_path() / "summagen_spec_io_test.spec";
  const auto spec = corner16();
  save_spec(path.string(), spec);
  const auto loaded = load_spec(path.string());
  EXPECT_EQ(loaded.subp, spec.subp);
  EXPECT_EQ(loaded.subph, spec.subph);
  std::remove(path.string().c_str());
}

TEST(SpecIo, FuzzRoundTripRandomSpecs) {
  util::Rng rng(12321);
  for (int trial = 0; trial < 30; ++trial) {
    PartitionSpec spec;
    spec.n = rng.uniform_int(4, 200);
    spec.subplda = static_cast<int>(rng.uniform_int(1, 5));
    spec.subpldb = static_cast<int>(rng.uniform_int(1, 5));
    auto cuts = [&](int parts) {
      std::vector<std::int64_t> sizes(static_cast<std::size_t>(parts), 0);
      std::int64_t left = spec.n;
      for (int i = 0; i < parts - 1; ++i) {
        sizes[static_cast<std::size_t>(i)] = rng.uniform_int(0, left);
        left -= sizes[static_cast<std::size_t>(i)];
      }
      sizes[static_cast<std::size_t>(parts - 1)] = left;
      return sizes;
    };
    spec.subph = cuts(spec.subplda);
    spec.subpw = cuts(spec.subpldb);
    spec.subp.resize(static_cast<std::size_t>(spec.subplda) *
                     static_cast<std::size_t>(spec.subpldb));
    for (auto& owner : spec.subp) {
      owner = static_cast<int>(rng.uniform_int(0, 7));
    }
    const auto round = parse_spec(to_text(spec));
    EXPECT_EQ(round.n, spec.n) << "trial " << trial;
    EXPECT_EQ(round.subp, spec.subp);
    EXPECT_EQ(round.subph, spec.subph);
    EXPECT_EQ(round.subpw, spec.subpw);
  }
}

TEST(SpecIo, FileErrorsThrowRuntimeError) {
  EXPECT_THROW(load_spec("/nonexistent/dir/x.spec"), std::runtime_error);
  EXPECT_THROW(save_spec("/nonexistent/dir/x.spec", corner16()),
               std::runtime_error);
}

// Capture the typed error a parse raises, or fail the test if none does.
SpecParseError capture(const std::string& text) {
  try {
    parse_spec(text);
  } catch (const SpecParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected SpecParseError for:\n" << text;
  return SpecParseError(0, "", "no error raised");
}

TEST(SpecIoTyped, SyntaxErrorCarriesLineAndEmptyKey) {
  const auto e = capture("n = 4\nsubplda == 1\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_EQ(e.key(), "");
  EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
}

TEST(SpecIoTyped, DuplicateKeyNamesTheSecondDefinition) {
  const auto e = capture(
      "n=4\nn=5\nsubplda=1\nsubpldb=1\nsubp={0}\nsubph={4}\nsubpw={4}\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_EQ(e.key(), "n");
}

TEST(SpecIoTyped, UnknownKeyIsAttributed) {
  const auto e = capture("n = 4\nbogus = 3\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_EQ(e.key(), "bogus");
}

TEST(SpecIoTyped, MissingKeyIsDocumentLevel) {
  const auto e = capture("n = 4\nsubplda = 1\n");
  EXPECT_EQ(e.line(), 0);
  EXPECT_EQ(e.key(), "");
  EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
}

TEST(SpecIoTyped, NonCoveringPartitionBlamesTheExtentLine) {
  // Row heights sum to 5 but n = 4: not a tiling of the matrix.
  const auto e = capture(
      "n=4\nsubplda=1\nsubpldb=1\nsubp={0}\nsubph={5}\nsubpw={4}\n");
  EXPECT_EQ(e.line(), 5);
  EXPECT_EQ(e.key(), "subph");
  EXPECT_NE(std::string(e.what()).find("does not cover"), std::string::npos);
}

TEST(SpecIoTyped, OverlappingColumnsBlameSubpw) {
  // Column widths sum to 6 > n = 4: sub-partitions would overlap.
  const auto e = capture(
      "n=4\nsubplda=1\nsubpldb=2\nsubp={0,1}\nsubph={4}\nsubpw={3,3}\n");
  EXPECT_EQ(e.line(), 6);
  EXPECT_EQ(e.key(), "subpw");
}

TEST(SpecIoTyped, MisSizedOwnerArrayBlamesSubp) {
  const auto e = capture(
      "n=4\nsubplda=2\nsubpldb=2\nsubp={0,1}\nsubph={2,2}\nsubpw={2,2}\n");
  EXPECT_EQ(e.line(), 4);
  EXPECT_EQ(e.key(), "subp");
  EXPECT_NE(std::string(e.what()).find("subplda*subpldb"),
            std::string::npos);
}

TEST(SpecIoTyped, NegativeExtentBlamesItsArray) {
  const auto e = capture(
      "n=4\nsubplda=2\nsubpldb=1\nsubp={0,1}\nsubph={-1,5}\nsubpw={4}\n");
  EXPECT_EQ(e.line(), 5);
  EXPECT_EQ(e.key(), "subph");
}

TEST(SpecIoTyped, NegativeOwnerBlamesSubp) {
  const auto e = capture(
      "n=4\nsubplda=1\nsubpldb=2\nsubp={0,-2}\nsubph={4}\nsubpw={2,2}\n");
  EXPECT_EQ(e.key(), "subp");
  EXPECT_EQ(e.line(), 4);
}

TEST(SpecIoTyped, SemanticErrorsSurviveStatementReordering) {
  // Same non-covering spec, but subph defined first: the attribution must
  // follow the key's own line, not document order of discovery.
  const auto e = capture(
      "subph={5}\nn=4\nsubplda=1\nsubpldb=1\nsubp={0}\nsubpw={4}\n");
  EXPECT_EQ(e.line(), 1);
  EXPECT_EQ(e.key(), "subph");
}

TEST(SpecIoTyped, ValidSpecsStillRoundTripThroughHardenedParser) {
  // The hardening must not reject anything the writer produces.
  for (Shape s : extended_shapes()) {
    const auto spec = build_shape(s, 256, areas256());
    EXPECT_NO_THROW(parse_spec(to_text(spec))) << shape_name(s);
  }
}

}  // namespace
}  // namespace summagen::partition

// The worked 16 x 16 examples of the paper's Section IV (Figure 1): the
// shape builders must regenerate the exact {subplda, subpldb, subp, subph,
// subpw} arrays the paper lists for each of the four partition shapes.
#include <gtest/gtest.h>

#include "src/partition/shapes.hpp"

namespace summagen::partition {
namespace {

TEST(PaperExamples, SquareCornerArrays) {
  // Figure 1a: P0 and P2 own the corner squares (areas 81 and 16), P1 the
  // non-rectangular remainder (159).
  const auto spec =
      build_shape(Shape::kSquareCorner, 16, {81, 159, 16});
  EXPECT_EQ(spec.subplda, 3);
  EXPECT_EQ(spec.subpldb, 3);
  EXPECT_EQ(spec.subp, (std::vector<int>{0, 1, 1, 1, 1, 1, 1, 1, 2}));
  EXPECT_EQ(spec.subph, (std::vector<std::int64_t>{9, 3, 4}));
  EXPECT_EQ(spec.subpw, (std::vector<std::int64_t>{9, 3, 4}));
  // "The sub-partitions in row-major order is given by the Cartesian
  // product subph x subpw": P0 owns {9x9}, P1 owns seven cells, P2 {4x4}.
  EXPECT_EQ(spec.area_of(0), 81);
  EXPECT_EQ(spec.area_of(1), 159);
  EXPECT_EQ(spec.area_of(2), 16);
  EXPECT_TRUE(spec.is_rectangular(0));
  EXPECT_FALSE(spec.is_rectangular(1));
  EXPECT_TRUE(spec.is_rectangular(2));
}

TEST(PaperExamples, SquareRectangleArrays) {
  // Figure 1b: P1 owns the full-height rectangle, P2 the square, P0 the
  // non-rectangular rest.
  const auto spec =
      build_shape(Shape::kSquareRectangle, 16, {192, 48, 16});
  EXPECT_EQ(spec.subplda, 2);
  EXPECT_EQ(spec.subpldb, 3);
  EXPECT_EQ(spec.subp, (std::vector<int>{0, 0, 1, 0, 2, 1}));
  EXPECT_EQ(spec.subph, (std::vector<std::int64_t>{12, 4}));
  EXPECT_EQ(spec.subpw, (std::vector<std::int64_t>{9, 4, 3}));
  // Paper: P0 owns {12x9, 12x4, 4x9}, P1 owns {12x3, 4x3}, P2 owns {4x4}.
  EXPECT_EQ(spec.area_of(0), 12 * 9 + 12 * 4 + 4 * 9);
  EXPECT_EQ(spec.area_of(1), 12 * 3 + 4 * 3);
  EXPECT_EQ(spec.area_of(2), 4 * 4);
  EXPECT_TRUE(spec.is_rectangular(1));  // full right column
  EXPECT_TRUE(spec.is_rectangular(2));
  EXPECT_FALSE(spec.is_rectangular(0));
}

TEST(PaperExamples, BlockRectangleArrays) {
  // Figure 1c: P0 the full-width top rectangle; P1 and P2 split the bottom
  // strip. All partitions rectangular.
  const auto spec =
      build_shape(Shape::kBlockRectangle, 16, {192, 24, 40});
  EXPECT_EQ(spec.subplda, 2);
  EXPECT_EQ(spec.subpldb, 2);
  EXPECT_EQ(spec.subp, (std::vector<int>{0, 0, 1, 2}));
  EXPECT_EQ(spec.subph, (std::vector<std::int64_t>{12, 4}));
  EXPECT_EQ(spec.subpw, (std::vector<std::int64_t>{6, 10}));
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(spec.is_rectangular(r));
}

TEST(PaperExamples, OneDimensionalArrays) {
  // Figure 1d: vertical slices of widths {8, 5, 3}.
  const auto spec =
      build_shape(Shape::kOneDimensional, 16, {128, 80, 48});
  EXPECT_EQ(spec.subplda, 1);
  EXPECT_EQ(spec.subpldb, 3);
  EXPECT_EQ(spec.subp, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(spec.subph, (std::vector<std::int64_t>{16}));
  EXPECT_EQ(spec.subpw, (std::vector<std::int64_t>{8, 5, 3}));
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(spec.is_rectangular(r));
}

TEST(PaperExamples, SquareCornerHalfPerimeters) {
  // Communication-volume geometry of Figure 1a: the covering rectangle of
  // the non-rectangular zone is the whole matrix.
  const auto spec =
      build_shape(Shape::kSquareCorner, 16, {81, 159, 16});
  EXPECT_EQ(spec.half_perimeter(0), 18);  // 9 + 9
  EXPECT_EQ(spec.half_perimeter(1), 32);  // 16 + 16
  EXPECT_EQ(spec.half_perimeter(2), 8);   // 4 + 4
  EXPECT_EQ(spec.total_half_perimeter(), 58);
}

TEST(PaperExamples, RenderMatchesFigure1a) {
  const auto spec =
      build_shape(Shape::kSquareCorner, 16, {81, 159, 16});
  // 4x4 cells -> sample elements (0,4,8,12)^2: the 9x9 P0 square covers
  // the first three samples of the first three rows; P2's 4x4 square owns
  // only the last sample of the last row.
  const std::string art = spec.render(4);
  EXPECT_EQ(art,
            "0001\n"
            "0001\n"
            "0001\n"
            "1112\n");
}

}  // namespace
}  // namespace summagen::partition

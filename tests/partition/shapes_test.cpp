// Property tests of the shape builders: for every shape, a spread of sizes
// and speed mixes, the generated PartitionSpec must cover the matrix
// exactly, assign every rank roughly its requested area, and respect the
// shape's geometric signature.
#include "src/partition/shapes.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/partition/areas.hpp"

namespace summagen::partition {
namespace {

std::vector<std::int64_t> areas_for(std::int64_t n,
                                    const std::vector<double>& speeds) {
  return partition_areas_cpm(n * n, speeds);
}

class ShapeProperties
    : public ::testing::TestWithParam<
          std::tuple<Shape, std::int64_t, std::vector<double>>> {};

TEST_P(ShapeProperties, CoversExactlyAndApproximatesAreas) {
  const auto [shape, n, speeds] = GetParam();
  const auto areas = areas_for(n, speeds);
  const auto spec = build_shape(shape, n, areas);
  ASSERT_NO_THROW(spec.validate(3));

  // Exact cover: per-rank areas sum to n^2 (validate already checks the
  // grid sums; this checks ownership accounting).
  std::int64_t sum = 0;
  for (int r = 0; r < 3; ++r) sum += spec.area_of(r);
  EXPECT_EQ(sum, n * n);

  // Achieved areas approximate requests. Corner squares round area to a
  // squared integer, so allow ~3*sqrt(a)+granularity slack per rank.
  // Exception: the square corner is geometrically infeasible when the two
  // corner squares would overlap (near-homogeneous areas); the builder then
  // degrades to the most balanced layout the shape admits and the area
  // approximation guarantee is void.
  const auto order = ranks_by_area(areas);
  const bool corner_infeasible =
      shape == Shape::kSquareCorner &&
      std::sqrt(static_cast<double>(
          areas[static_cast<std::size_t>(order[1])])) +
              std::sqrt(static_cast<double>(
                  areas[static_cast<std::size_t>(order[2])])) >
          static_cast<double>(n);
  if (!corner_infeasible) {
    for (int r = 0; r < 3; ++r) {
      const double slack =
          3.0 * std::sqrt(static_cast<double>(areas[static_cast<std::size_t>(
              r)])) + 16.0;
      EXPECT_NEAR(static_cast<double>(spec.area_of(r)),
                  static_cast<double>(areas[static_cast<std::size_t>(r)]),
                  slack)
          << shape_name(shape) << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShapeProperties,
    ::testing::Combine(
        ::testing::ValuesIn(all_shapes()),
        ::testing::Values<std::int64_t>(16, 64, 100, 257, 1024),
        ::testing::Values(std::vector<double>{1.0, 2.0, 0.9},
                          std::vector<double>{1.0, 1.0, 1.0},
                          std::vector<double>{5.0, 1.0, 1.0},
                          std::vector<double>{1.0, 8.0, 2.0})),
    [](const auto& param_info) {
      std::string s =
          std::string(shape_name(std::get<0>(param_info.param))) + "_n" +
          std::to_string(std::get<1>(param_info.param)) + "_s";
      for (double v : std::get<2>(param_info.param)) {
        s += std::to_string(static_cast<int>(v * 10));
      }
      return s;
    });

TEST(ShapeGeometry, SquareCornerSignature) {
  const auto spec = build_shape(Shape::kSquareCorner, 256,
                                areas_for(256, {1.0, 2.0, 0.9}));
  // Exactly one non-rectangular zone (the largest area), two squares.
  int non_rect = 0;
  for (int r = 0; r < 3; ++r) non_rect += spec.is_rectangular(r) ? 0 : 1;
  EXPECT_EQ(non_rect, 1);
  const auto order = ranks_by_area({spec.area_of(0), spec.area_of(1),
                                    spec.area_of(2)});
  EXPECT_FALSE(spec.is_rectangular(order[0]));
  // The two rectangular zones are squares in opposite corners.
  const Rect r2 = spec.covering(order[1]);
  const Rect r3 = spec.covering(order[2]);
  EXPECT_EQ(r2.rows, r2.cols);
  EXPECT_EQ(r3.rows, r3.cols);
  EXPECT_EQ(r2.row0, 0);
  EXPECT_EQ(r2.col0, 0);
  EXPECT_EQ(r3.row0 + r3.rows, 256);
  EXPECT_EQ(r3.col0 + r3.cols, 256);
}

TEST(ShapeGeometry, SquareRectangleSignature) {
  const auto spec = build_shape(Shape::kSquareRectangle, 256,
                                areas_for(256, {1.0, 2.0, 0.9}));
  const auto order = ranks_by_area({spec.area_of(0), spec.area_of(1),
                                    spec.area_of(2)});
  // Second-largest owns a full-height rectangle at the right edge.
  const Rect rect = spec.covering(order[1]);
  EXPECT_TRUE(spec.is_rectangular(order[1]));
  EXPECT_EQ(rect.rows, 256);
  EXPECT_EQ(rect.col0 + rect.cols, 256);
  // Smallest owns a square.
  const Rect sq = spec.covering(order[2]);
  EXPECT_TRUE(spec.is_rectangular(order[2]));
  EXPECT_EQ(sq.rows, sq.cols);
}

TEST(ShapeGeometry, BlockRectangleAllRectangular) {
  const auto spec = build_shape(Shape::kBlockRectangle, 256,
                                areas_for(256, {1.0, 2.0, 0.9}));
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(spec.is_rectangular(r));
  // Largest owns the full-width top band.
  const auto order = ranks_by_area({spec.area_of(0), spec.area_of(1),
                                    spec.area_of(2)});
  const Rect top = spec.covering(order[0]);
  EXPECT_EQ(top.cols, 256);
  EXPECT_EQ(top.row0, 0);
}

TEST(ShapeGeometry, OneDimensionalVerticalSlices) {
  const auto spec = build_shape(Shape::kOneDimensional, 256,
                                areas_for(256, {1.0, 2.0, 0.9}));
  EXPECT_EQ(spec.subplda, 1);
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(spec.is_rectangular(r));
    EXPECT_EQ(spec.covering(r).rows, 256);
  }
  // Fastest (largest area) leftmost.
  const auto order = ranks_by_area({spec.area_of(0), spec.area_of(1),
                                    spec.area_of(2)});
  EXPECT_EQ(spec.owner(0, 0), order[0]);
}

TEST(ShapeGeometry, HalfPerimeterOrderingMatchesTheory) {
  // For mild heterogeneity the 1D layout has the largest total
  // half-perimeter (3n); 2D layouts are strictly better.
  const std::int64_t n = 1024;
  const auto areas = areas_for(n, {1.0, 2.0, 0.9});
  const auto hp = [&](Shape s) {
    return build_shape(s, n, areas).total_half_perimeter();
  };
  EXPECT_EQ(hp(Shape::kOneDimensional), 3 * n + n);  // 3 slices: 3n + n
  EXPECT_LT(hp(Shape::kBlockRectangle), hp(Shape::kOneDimensional));
  EXPECT_LT(hp(Shape::kSquareRectangle), hp(Shape::kOneDimensional));
}

TEST(ShapeBuilders, TwoProcessorSquareCorner) {
  const auto spec = build_shape(Shape::kSquareCorner, 128, {12384, 4000});
  spec.validate(2);
  EXPECT_EQ(spec.area_of(0) + spec.area_of(1), 128 * 128);
  // Smaller area is a corner square.
  const Rect sq = spec.covering(1);
  EXPECT_EQ(sq.rows, sq.cols);
  EXPECT_TRUE(spec.is_rectangular(1));
  EXPECT_FALSE(spec.is_rectangular(0));
}

TEST(ShapeBuilders, OneDimensionalArbitraryProcessorCount) {
  for (int p : {1, 2, 4, 7}) {
    std::vector<double> speeds(static_cast<std::size_t>(p), 1.0);
    speeds[0] = 3.0;
    const std::int64_t n = 210;
    const auto areas = partition_areas_cpm(n * n, speeds);
    const auto spec = build_shape(Shape::kOneDimensional, n, areas);
    spec.validate(p);
    std::int64_t sum = 0;
    for (int r = 0; r < p; ++r) sum += spec.area_of(r);
    EXPECT_EQ(sum, n * n);
  }
}

TEST(ShapeBuilders, GranularitySnapsDimensions) {
  const std::int64_t n = 256, g = 32;
  const auto areas = areas_for(n, {1.0, 2.0, 0.9});
  for (Shape s : all_shapes()) {
    const auto spec = build_shape(s, n, areas, g);
    for (auto h : spec.subph) EXPECT_EQ(h % g, 0) << shape_name(s);
    for (auto w : spec.subpw) EXPECT_EQ(w % g, 0) << shape_name(s);
  }
}

TEST(ShapeBuilders, GranularityMustDivideN) {
  EXPECT_THROW(build_shape(Shape::kOneDimensional, 100, {5000, 5000}, 3),
               std::invalid_argument);
  EXPECT_THROW(build_shape(Shape::kOneDimensional, 100, {5000, 5000}, 0),
               std::invalid_argument);
}

TEST(ShapeBuilders, WrongProcessorCounts) {
  EXPECT_THROW(build_shape(Shape::kSquareCorner, 16, {256}),
               std::invalid_argument);
  EXPECT_THROW(build_shape(Shape::kSquareCorner, 16, {64, 64, 64, 64}),
               std::invalid_argument);
  EXPECT_THROW(build_shape(Shape::kSquareRectangle, 16, {128, 128}),
               std::invalid_argument);
  EXPECT_THROW(build_shape(Shape::kBlockRectangle, 16, {128, 128}),
               std::invalid_argument);
}

TEST(ShapeBuilders, AreasMustSumToNSquared) {
  EXPECT_THROW(build_shape(Shape::kOneDimensional, 16, {100, 100, 100}),
               std::invalid_argument);
  EXPECT_THROW(build_shape(Shape::kOneDimensional, 16, {-1, 200, 57}),
               std::invalid_argument);
}

TEST(ShapeBuilders, ExtremeSkewStillValid) {
  // One processor ~100x the others.
  const std::int64_t n = 512;
  const auto areas = areas_for(n, {100.0, 1.0, 1.0});
  for (Shape s : all_shapes()) {
    const auto spec = build_shape(s, n, areas);
    EXPECT_NO_THROW(spec.validate(3)) << shape_name(s);
    std::int64_t sum = 0;
    for (int r = 0; r < 3; ++r) sum += spec.area_of(r);
    EXPECT_EQ(sum, n * n) << shape_name(s);
  }
}

TEST(ShapeBuilders, TinyMatrixDoesNotUnderflow) {
  for (Shape s : all_shapes()) {
    const auto areas = areas_for(8, {1.0, 2.0, 0.9});
    EXPECT_NO_THROW(build_shape(s, 8, areas)) << shape_name(s);
  }
}

TEST(ShapeBuilders, LRectangleExtensionShape) {
  // The extension shape: two stacked rectangles at the right edge, the
  // largest zone an L around them.
  const std::int64_t n = 256;
  const auto areas = areas_for(n, {1.0, 2.0, 0.9});
  const auto spec = build_shape(Shape::kLRectangle, n, areas);
  spec.validate(3);
  std::int64_t sum = 0;
  for (int r = 0; r < 3; ++r) sum += spec.area_of(r);
  EXPECT_EQ(sum, n * n);
  const auto order = ranks_by_area({spec.area_of(0), spec.area_of(1),
                                    spec.area_of(2)});
  EXPECT_FALSE(spec.is_rectangular(order[0]));  // the L
  EXPECT_TRUE(spec.is_rectangular(order[1]));
  EXPECT_TRUE(spec.is_rectangular(order[2]));
  // The two smaller zones stack: same column range, right edge.
  const Rect r2 = spec.covering(order[1]);
  const Rect r3 = spec.covering(order[2]);
  EXPECT_EQ(r2.col0, r3.col0);
  EXPECT_EQ(r2.cols, r3.cols);
  EXPECT_EQ(r2.col0 + r2.cols, n);
  // Areas approximate requests.
  for (int r = 0; r < 3; ++r) {
    EXPECT_NEAR(static_cast<double>(spec.area_of(r)),
                static_cast<double>(areas[static_cast<std::size_t>(r)]),
                3.0 * std::sqrt(static_cast<double>(
                    areas[static_cast<std::size_t>(r)])) + 16.0);
  }
}

TEST(ShapeBuilders, LRectangleNeedsThreeProcessors) {
  EXPECT_THROW(build_shape(Shape::kLRectangle, 16, {128, 128}),
               std::invalid_argument);
}

TEST(ShapeBuilders, ExtendedShapesSupersetOfPaperShapes) {
  EXPECT_EQ(extended_shapes().size(), all_shapes().size() + 2);
  for (std::size_t i = 0; i < all_shapes().size(); ++i) {
    EXPECT_EQ(extended_shapes()[i], all_shapes()[i]);
  }
  EXPECT_STREQ(shape_name(Shape::kLRectangle), "l_rectangle");
  EXPECT_STREQ(shape_name(Shape::kLayered), "layered");
}

TEST(RanksByArea, SortsDescendingStable) {
  EXPECT_EQ(ranks_by_area({10, 30, 20}), (std::vector<int>{1, 2, 0}));
  EXPECT_EQ(ranks_by_area({5, 5, 5}), (std::vector<int>{0, 1, 2}));
}

TEST(ShapeNames, AllDistinctAndStable) {
  EXPECT_STREQ(shape_name(Shape::kSquareCorner), "square_corner");
  EXPECT_STREQ(shape_name(Shape::kSquareRectangle), "square_rectangle");
  EXPECT_STREQ(shape_name(Shape::kBlockRectangle), "block_rectangle");
  EXPECT_STREQ(shape_name(Shape::kOneDimensional), "one_dimensional");
  EXPECT_EQ(all_shapes().size(), 4u);
}

}  // namespace
}  // namespace summagen::partition

// Cross-rank packed-B reuse through the blas pack cache.
//
// On a pr x 1 SUMMA grid every rank multiplies against the *same* WB panel
// each k-step (one processor column owns all of B's columns), so with pr
// ranks and S k-steps only S panels are ever packed and the remaining
// (pr-1)*S keyed lookups hit. The acceptance bar from the tuning issue:
// a SUMMA run at n = 1024 shows at least 50% B-pack reuse.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/blas/pack_cache.hpp"
#include "src/core/reference.hpp"
#include "src/core/runner.hpp"
#include "src/core/summa.hpp"
#include "src/device/platform.hpp"
#include "src/util/accounting.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {
namespace {

TEST(PackReuse, SummaColumnGridReusesPackedB) {
  const std::int64_t n = 1024;
  const SummaConfig config{3, 1, 256};
  const int p = config.pr * config.pc;
  const auto platform = device::Platform::homogeneous(p);
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 101);
  util::fill_random(b, 102);
  std::vector<std::unique_ptr<SummaLocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(std::make_unique<SummaLocalData>(n, config, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  sgmpi::Runtime runtime(mpi_config);

  const auto base = util::data_plane_stats();
  runtime.run([&](sgmpi::Comm& world) {
    summa_rank(world, n, config,
               processors[static_cast<std::size_t>(world.rank())],
               locals[static_cast<std::size_t>(world.rank())].get());
  });
  const auto d = util::data_plane_stats().since(base);

  // 3 ranks x 4 k-steps = 12 keyed lookups over 4 distinct panels; the
  // ideal hit rate is 2/3. Scheduling nondeterminism cannot lower it below
  // the issue's 50% bar unless the cache is broken (a panel can only be
  // packed more than once if its first packer's entry was evicted, and the
  // budget comfortably holds all four 256x1024 panels = 8 MiB).
  EXPECT_GE(d.pack_lookups, 12);
  EXPECT_GE(d.pack_hit_rate(), 0.5)
      << "lookups=" << d.pack_lookups << " hits=" << d.pack_hits;

  util::Matrix c(n, n);
  for (int r = 0; r < p; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(c);
  }
  EXPECT_LE(util::Matrix::max_abs_diff(c, reference_multiply(a, b)),
            gemm_tolerance(n));
}

TEST(PackReuse, RunnerReportsPackCountersInResult) {
  // The experiment runner's accounting window must surface the pack-cache
  // counters so EXPERIMENTS.md hit rates come straight from results.
  ExperimentConfig config;
  config.platform = device::Platform::homogeneous(3);
  config.n = 256;
  config.numeric = true;
  const ExperimentResult res = run_pmm(config);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.alloc.pack_lookups, 0);
  EXPECT_GE(res.alloc.pack_hits, 0);
  EXPECT_GE(res.alloc.pack_hit_rate(), 0.0);
}

TEST(PackReuse, PartitionEpochNamespacesPackTags) {
  // A drift-triggered re-partition changes cell geometry mid-run; the
  // schedulers append the partition epoch to every B-panel tag so a packed
  // panel from a pre-re-partition layout can never satisfy a post-
  // re-partition lookup. Tags differing only in the epoch must not collide.
  const std::uint64_t uid = 7;
  const std::uint64_t tag_epoch0 = blas::pack_tag({uid, 3, 1, 2, 0});
  const std::uint64_t tag_epoch1 = blas::pack_tag({uid, 3, 1, 2, 1});
  EXPECT_NE(tag_epoch0, tag_epoch1);
  EXPECT_NE(tag_epoch0, 0u);
  EXPECT_NE(tag_epoch1, 0u);
}

TEST(PackReuse, RepartitionedRunStillVerifiesWithPackedKernels) {
  // End-to-end guard for the epoch keying: a run that re-partitions mid-way
  // (two partition epochs sharing one pack cache) must still verify — a
  // stale cross-epoch pack hit would corrupt C.
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 192;
  config.shape = partition::Shape::kSquareCorner;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.numeric = true;
  config.summagen_options.scheduler = Scheduler::kTaskGraph;
  config.summagen_options.bcast_panel_rows = 48;
  config.fault_detect_s = 1e-4;
  device::DriftEvent drift;
  drift.kind = device::DriftKind::kStep;
  drift.rank = 1;
  drift.at_vtime = 0.0;
  drift.factor = 3.0;
  config.drift.events.push_back(drift);
  config.repartition.enabled = true;
  const ExperimentResult res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.repartitions.size(), 1u);
  EXPECT_GT(res.alloc.pack_lookups, 0);
}

}  // namespace
}  // namespace summagen::core

// Regression tests for the strong-scaling table math behind
// bench/cluster_scaling. The bench once derived "speedup" from the first
// swept node count scaled by `nodes` — so `--nodes 2,4` quietly printed
// speedups relative to a fabricated baseline. ScalingTable owns the
// arithmetic now: speedup is always T(1 node)/T(n nodes) of the SAME
// configuration, and a missing single-node measurement is an error, never
// a silent guess.
#include "src/core/scaling.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace summagen::core {
namespace {

ScalingMeasurement point(const std::string& name, std::int64_t nodes,
                         double exec_s) {
  ScalingMeasurement m;
  m.name = name;
  m.nodes = nodes;
  m.ranks = static_cast<int>(3 * nodes);
  m.exec_s = exec_s;
  m.comp_s = exec_s * 0.8;
  m.comm_s = exec_s * 0.2;
  return m;
}

TEST(ScalingMath, SpeedupIsAgainstTrueSingleNodeTime) {
  EXPECT_DOUBLE_EQ(scaling_speedup(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(scaling_speedup(10.0, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(scaling_speedup(0.0, 2.5), 0.0);  // degenerate input
}

TEST(ScalingMath, EfficiencyIsSpeedupOverNodes) {
  EXPECT_DOUBLE_EQ(scaling_efficiency_pct(4.0, 4), 100.0);
  EXPECT_DOUBLE_EQ(scaling_efficiency_pct(3.0, 4), 75.0);
  EXPECT_DOUBLE_EQ(scaling_efficiency_pct(1.0, 1), 100.0);
}

TEST(ScalingTableTest, DerivesSpeedupPerConfiguration) {
  ScalingTable t;
  t.add(point("nrrp", 1, 8.0));
  t.add(point("nrrp", 2, 5.0));
  t.add(point("nrrp", 4, 2.0));
  t.add(point("one_dimensional", 1, 8.0));
  t.add(point("one_dimensional", 4, 8.0));  // 1D stops scaling

  const auto rows = t.rows();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].efficiency_pct, 100.0);
  EXPECT_DOUBLE_EQ(rows[1].speedup, 1.6);
  EXPECT_DOUBLE_EQ(rows[1].efficiency_pct, 80.0);
  EXPECT_DOUBLE_EQ(rows[2].speedup, 4.0);
  EXPECT_DOUBLE_EQ(rows[2].efficiency_pct, 100.0);
  // The 1D configuration is compared against ITS OWN baseline.
  EXPECT_DOUBLE_EQ(rows[4].speedup, 1.0);
  EXPECT_DOUBLE_EQ(rows[4].efficiency_pct, 25.0);
}

// The historical bug, pinned: sweeping `--nodes 2,4` must not treat the
// 2-node run as a baseline. Without a nodes=1 measurement the table
// refuses to produce rows at all.
TEST(ScalingTableTest, MissingSingleNodeBaselineThrows) {
  ScalingTable t;
  t.add(point("nrrp", 2, 5.0));
  t.add(point("nrrp", 4, 2.0));
  EXPECT_FALSE(t.has_baseline("nrrp"));
  EXPECT_EQ(t.missing_baselines(), std::vector<std::string>{"nrrp"});
  try {
    t.rows();
    FAIL() << "rows() accepted a sweep without a single-node baseline";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("nrrp"), std::string::npos)
        << e.what();
  }
}

TEST(ScalingTableTest, BaselineAddedLaterUnblocksRows) {
  ScalingTable t;
  t.add(point("nrrp", 2, 5.0));
  t.add(point("nrrp", 4, 2.0));
  t.add(point("nrrp", 1, 8.0));  // the bench prepends nodes=1 when absent
  EXPECT_TRUE(t.has_baseline("nrrp"));
  EXPECT_TRUE(t.missing_baselines().empty());
  const auto rows = t.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.6);   // 8.0 / 5.0, NOT 1.0
  EXPECT_DOUBLE_EQ(rows[1].speedup, 4.0);   // 8.0 / 2.0, NOT 2.5
  EXPECT_DOUBLE_EQ(rows[2].speedup, 1.0);
}

TEST(ScalingTableTest, FirstSingleNodeMeasurementWins) {
  ScalingTable t;
  t.add(point("nrrp", 1, 8.0));
  t.add(point("nrrp", 1, 6.0));  // repeated baseline: ignored
  t.add(point("nrrp", 2, 4.0));
  EXPECT_DOUBLE_EQ(t.rows()[2].speedup, 2.0);
}

// Regression on the printed table itself: exactly the bench's header and
// the derived numbers, so a reformat that reintroduces wrong arithmetic
// fails here.
TEST(ScalingTableTest, RenderedTableShowsTrueSpeedups) {
  ScalingTable t;
  t.add(point("nrrp", 1, 8.0));
  t.add(point("nrrp", 4, 2.0));
  std::ostringstream os;
  t.render("strong scaling").print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== strong scaling =="), std::string::npos) << s;
  for (const char* column :
       {"nodes", "p", "partitioner", "exec_s", "comp_s", "mpi_s", "speedup",
        "efficiency_%"}) {
    EXPECT_NE(s.find(column), std::string::npos) << column << "\n" << s;
  }
  EXPECT_NE(s.find("4.00"), std::string::npos) << s;   // speedup at 4 nodes
  EXPECT_NE(s.find("100"), std::string::npos) << s;    // efficiency_%
  EXPECT_NE(s.find("nrrp"), std::string::npos) << s;
}

}  // namespace
}  // namespace summagen::core

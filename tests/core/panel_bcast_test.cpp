// Tests of the shared k-panel broadcast helper (the single implementation
// behind the A/B panel movement of both classic SUMMA and 2.5D): owner
// segmentation at uneven block boundaries, zero-staging delivery into
// strided workspaces, stat accounting, and the degenerate parts==1 and
// modeled-plane paths.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/core/panel_bcast.hpp"
#include "src/mpi/mpi.hpp"
#include "src/util/matrix.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::core {
namespace {

using summagen::util::ConstMatrixView;
using summagen::util::Matrix;
using summagen::util::MatrixView;

sgmpi::Config small_config(int nranks) {
  sgmpi::Config config;
  config.nranks = nranks;
  config.poll_interval_s = 0.005;
  return config;
}

TEST(PanelBcast, BalancedSplitHelpers) {
  // 10 over 3 parts: sizes 4, 3, 3 at offsets 0, 4, 7.
  EXPECT_EQ(balanced_part_offset(10, 3, 0), 0);
  EXPECT_EQ(balanced_part_offset(10, 3, 1), 4);
  EXPECT_EQ(balanced_part_offset(10, 3, 2), 7);
  EXPECT_EQ(balanced_part_offset(10, 3, 3), 10);
  EXPECT_EQ(balanced_part_size(10, 3, 0), 4);
  EXPECT_EQ(balanced_part_size(10, 3, 1), 3);
  EXPECT_EQ(balanced_part_size(10, 3, 2), 3);
}

// Three ranks each own a column band of a 10-column A (widths 4, 3, 3);
// a panel straddling the 0/1 boundary must arrive in every rank's
// workspace as two broadcasts, bit-identical to the global operand.
TEST(PanelBcast, APanelStraddlingOwnerBoundary) {
  const std::int64_t n = 10;
  const std::int64_t my_rows = 5;
  const std::int64_t k0 = 2, bcur = 4;  // covers owner 0 ([2,4)) + 1 ([4,6))
  Matrix global(my_rows, n);
  for (std::int64_t i = 0; i < my_rows; ++i) {
    for (std::int64_t j = 0; j < n; ++j) global(i, j) = 100.0 * i + j;
  }
  sgmpi::Runtime rt(small_config(3));
  rt.run([&](sgmpi::Comm& world) {
    const int me = world.rank();
    const std::int64_t col0 = balanced_part_offset(n, 3, me);
    const std::int64_t cols = balanced_part_size(n, 3, me);
    // Each rank's local block = its column band of the global operand.
    const Matrix block = util::materialize(util::block_view(
        static_cast<const Matrix&>(global), 0, col0, my_rows, cols));
    std::vector<double> wa(static_cast<std::size_t>(my_rows * bcur), -1.0);
    const MatrixView dst(wa.data(), my_rows, bcur, bcur);

    const PanelBcastStats stats =
        bcast_k_panel(world, PanelAxis::kA, n, 3, me, my_rows, k0, bcur,
                      ConstMatrixView(block), dst);
    EXPECT_EQ(stats.bcasts, 2);  // one per owner segment
    EXPECT_EQ(stats.bytes, my_rows * bcur *
                               static_cast<std::int64_t>(sizeof(double)));
    for (std::int64_t i = 0; i < my_rows; ++i) {
      for (std::int64_t j = 0; j < bcur; ++j) {
        EXPECT_EQ(dst(i, j), global(i, k0 + j)) << "rank " << me;
      }
    }
  });
}

TEST(PanelBcast, BPanelStraddlingOwnerBoundary) {
  const std::int64_t n = 7;
  const std::int64_t my_cols = 4;
  const std::int64_t k0 = 3, bcur = 3;  // owners 0 ([3,4)) and 1 ([4,6))
  Matrix global(n, my_cols);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < my_cols; ++j) global(i, j) = 10.0 * i + j;
  }
  sgmpi::Runtime rt(small_config(2));
  rt.run([&](sgmpi::Comm& world) {
    const int me = world.rank();
    const std::int64_t row0 = balanced_part_offset(n, 2, me);
    const std::int64_t rows = balanced_part_size(n, 2, me);
    const Matrix block = util::materialize(util::block_view(
        static_cast<const Matrix&>(global), row0, 0, rows, my_cols));
    std::vector<double> wb(static_cast<std::size_t>(bcur * my_cols), -1.0);
    const MatrixView dst(wb.data(), bcur, my_cols, my_cols);

    const PanelBcastStats stats =
        bcast_k_panel(world, PanelAxis::kB, n, 2, me, my_cols, k0, bcur,
                      ConstMatrixView(block), dst);
    EXPECT_EQ(stats.bcasts, 2);
    for (std::int64_t i = 0; i < bcur; ++i) {
      for (std::int64_t j = 0; j < my_cols; ++j) {
        EXPECT_EQ(dst(i, j), global(k0 + i, j)) << "rank " << me;
      }
    }
  });
}

TEST(PanelBcast, SinglePartIsLocalCopyWithoutBroadcasts) {
  const std::int64_t n = 6;
  Matrix block(3, n);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < n; ++j) block(i, j) = i + 10.0 * j;
  }
  sgmpi::Runtime rt(small_config(1));
  rt.run([&](sgmpi::Comm& world) {
    std::vector<double> wa(static_cast<std::size_t>(3 * n), -1.0);
    const MatrixView dst(wa.data(), 3, n, n);
    const PanelBcastStats stats = bcast_k_panel(
        world, PanelAxis::kA, n, 1, 0, 3, 0, n, ConstMatrixView(block), dst);
    EXPECT_EQ(stats.bcasts, 0);
    EXPECT_EQ(stats.bytes, 0);
    EXPECT_EQ(stats.mpi_time_s, 0.0);
    EXPECT_EQ(world.clock().now(), 0.0);
    for (std::int64_t i = 0; i < 3; ++i) {
      for (std::int64_t j = 0; j < n; ++j) EXPECT_EQ(dst(i, j), block(i, j));
    }
  });
}

TEST(PanelBcast, ModeledPlaneMovesClockAndCountersOnly) {
  const std::int64_t n = 8;
  sgmpi::Runtime rt(small_config(2));
  rt.run([&](sgmpi::Comm& world) {
    const PanelBcastStats stats =
        bcast_k_panel(world, PanelAxis::kA, n, 2, world.rank(), 5, 0, n,
                      ConstMatrixView{}, MatrixView{});
    EXPECT_EQ(stats.bcasts, 2);  // the panel spans both owners
    EXPECT_EQ(stats.bytes,
              5 * n * static_cast<std::int64_t>(sizeof(double)));
    EXPECT_GT(stats.mpi_time_s, 0.0);
  });
}

TEST(PanelBcast, ValidatesArguments) {
  sgmpi::Runtime rt(small_config(1));
  rt.run([](sgmpi::Comm& world) {
    Matrix block(2, 4);
    std::vector<double> wa(8, 0.0);
    const MatrixView dst(wa.data(), 2, 4, 4);
    EXPECT_THROW(bcast_k_panel(world, PanelAxis::kA, 4, 1, 1, 2, 0, 4,
                               ConstMatrixView(block), dst),
                 std::invalid_argument);  // my_index outside parts
    EXPECT_THROW(bcast_k_panel(world, PanelAxis::kA, 4, 1, 0, 2, 2, 4,
                               ConstMatrixView(block), dst),
                 std::invalid_argument);  // panel exceeds [0, n)
    EXPECT_THROW(bcast_k_panel(world, PanelAxis::kA, 4, 1, 0, 3, 0, 4,
                               ConstMatrixView(block), dst),
                 std::invalid_argument);  // workspace shape mismatch
  });
}

}  // namespace
}  // namespace summagen::core

// Engine equivalence (DESIGN.md §5.14): the modeled engine — every rank a
// cooperative fiber on one scheduler thread — must be indistinguishable
// from the thread engine in everything but host cost. Across the four
// paper shapes and all three schedulers, the numeric C must be
// bit-identical and the full virtual timeline (execution, computation,
// communication, hidden overlap, per rank) must match EXACTLY — the
// modeled engine is a cheaper execution of the same schedule, never a
// different schedule.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/runner.hpp"
#include "src/partition/nrrp.hpp"
#include "src/util/rng.hpp"

namespace summagen {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::Scheduler;
using partition::Shape;

constexpr Scheduler kSchedulers[] = {Scheduler::kEager, Scheduler::kPipelined,
                                     Scheduler::kTaskGraph};

/// Gathers the full distributed C of one numeric execution under the
/// given engine.
util::Matrix distributed_c(Shape shape, Scheduler scheduler,
                           sgmpi::Engine engine) {
  const std::int64_t n = 120;
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  const auto spec = partition::build_shape(shape, n, areas);

  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  std::vector<std::unique_ptr<core::LocalData>> locals;
  for (int r = 0; r < 3; ++r) {
    locals.push_back(std::make_unique<core::LocalData>(spec, r, a, b));
  }
  const auto platform = device::Platform::hclserver1();
  const auto processors = platform.processors(blas::GemmOptions{});

  core::SummaGenOptions options;
  options.scheduler = scheduler;
  options.overlap_depth = 2;
  options.bcast_panel_rows = 16;

  sgmpi::Config mpi_config;
  mpi_config.nranks = 3;
  mpi_config.engine = engine;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    const std::size_t r = static_cast<std::size_t>(world.rank());
    core::summagen_rank(world, spec, processors[r], locals[r].get(),
                        /*contended=*/true, options);
  });

  util::Matrix c(n, n);
  for (int r = 0; r < 3; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(spec, c);
  }
  return c;
}

ExperimentConfig model_config(Shape shape, Scheduler scheduler,
                              sgmpi::Engine engine) {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 2048;
  config.shape = shape;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.summagen_options.scheduler = scheduler;
  config.summagen_options.overlap_depth = 2;
  config.summagen_options.bcast_panel_rows = 64;
  config.engine = engine;
  return config;
}

class EngineEquivalenceMatrix : public ::testing::TestWithParam<Shape> {};

TEST_P(EngineEquivalenceMatrix, NumericCBitIdenticalAcrossEngines) {
  const Shape shape = GetParam();
  for (const Scheduler sched : kSchedulers) {
    const util::Matrix threaded =
        distributed_c(shape, sched, sgmpi::Engine::kThread);
    const util::Matrix modeled =
        distributed_c(shape, sched, sgmpi::Engine::kModeled);
    EXPECT_EQ(util::Matrix::max_abs_diff(threaded, modeled), 0.0)
        << partition::shape_name(shape) << " " << core::to_string(sched);
  }
}

TEST_P(EngineEquivalenceMatrix, VirtualTimelineBitIdenticalAcrossEngines) {
  const Shape shape = GetParam();
  for (const Scheduler sched : kSchedulers) {
    const std::string label = std::string(partition::shape_name(shape)) +
                              " " + core::to_string(sched);
    const ExperimentResult threaded =
        core::run_pmm(model_config(shape, sched, sgmpi::Engine::kThread));
    const ExperimentResult modeled =
        core::run_pmm(model_config(shape, sched, sgmpi::Engine::kModeled));

    // Exact doubles: the fibers replay the same virtual-clock arithmetic.
    EXPECT_EQ(threaded.exec_time_s, modeled.exec_time_s) << label;
    EXPECT_EQ(threaded.comp_time_s, modeled.comp_time_s) << label;
    EXPECT_EQ(threaded.comm_time_s, modeled.comm_time_s) << label;
    EXPECT_EQ(threaded.hidden_comm_time_s, modeled.hidden_comm_time_s)
        << label;
    ASSERT_EQ(threaded.rank_exec_s.size(), modeled.rank_exec_s.size())
        << label;
    for (std::size_t r = 0; r < threaded.rank_exec_s.size(); ++r) {
      EXPECT_EQ(threaded.rank_exec_s[r], modeled.rank_exec_s[r])
          << label << " rank " << r;
      EXPECT_EQ(threaded.rank_comp_s[r], modeled.rank_comp_s[r])
          << label << " rank " << r;
      EXPECT_EQ(threaded.rank_comm_s[r], modeled.rank_comm_s[r])
          << label << " rank " << r;
      EXPECT_EQ(threaded.rank_idle_s[r], modeled.rank_idle_s[r])
          << label << " rank " << r;
      EXPECT_EQ(threaded.rank_hidden_s[r], modeled.rank_hidden_s[r])
          << label << " rank " << r;
    }
    ASSERT_EQ(threaded.reports.size(), modeled.reports.size()) << label;
    for (std::size_t r = 0; r < threaded.reports.size(); ++r) {
      EXPECT_EQ(threaded.reports[r].bcasts, modeled.reports[r].bcasts)
          << label << " rank " << r;
      EXPECT_EQ(threaded.reports[r].bcast_bytes,
                modeled.reports[r].bcast_bytes)
          << label << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineEquivalenceMatrix,
    ::testing::Values(Shape::kSquareCorner, Shape::kSquareRectangle,
                      Shape::kBlockRectangle, Shape::kOneDimensional),
    [](const auto& param_info) {
      return std::string(partition::shape_name(param_info.param));
    });

// A 16-rank cluster run through the full runner pipeline: the modeled
// engine must reproduce the thread engine's timeline on a multi-node
// platform (subgroup communicators, inter-node pricing) too.
TEST(EngineEquivalenceCluster, MultiNodeTimelineBitIdentical) {
  auto make = [](sgmpi::Engine engine) {
    const std::int64_t n = 1024;
    const auto base = device::Platform::homogeneous(4);
    const trace::HockneyParams net{20.0e-6, 1.0 / 1.0e9};
    ExperimentConfig config;
    config.platform = device::Platform::cluster(base, 4, net);
    config.n = n;
    const std::vector<double> speeds(16, 1.0);
    const auto areas = partition::partition_areas_cpm(n * n, speeds);
    config.preset_spec = partition::nrrp_partition(n, areas);
    config.engine = engine;
    return core::run_pmm(config);
  };
  const ExperimentResult threaded = make(sgmpi::Engine::kThread);
  const ExperimentResult modeled = make(sgmpi::Engine::kModeled);
  EXPECT_EQ(threaded.exec_time_s, modeled.exec_time_s);
  EXPECT_EQ(threaded.comp_time_s, modeled.comp_time_s);
  EXPECT_EQ(threaded.comm_time_s, modeled.comm_time_s);
  ASSERT_EQ(threaded.rank_exec_s.size(), modeled.rank_exec_s.size());
  for (std::size_t r = 0; r < threaded.rank_exec_s.size(); ++r) {
    EXPECT_EQ(threaded.rank_exec_s[r], modeled.rank_exec_s[r]) << "rank " << r;
  }
}

}  // namespace
}  // namespace summagen

// Dynamic load drift (DESIGN.md §5.13): the DriftController policy, the
// --drift/--repartition grammars, the layered re-partitioner selection, and
// the end-to-end online re-partitioning loop of the runner.
#include "src/core/drift.hpp"

#include <gtest/gtest.h>

#include "src/core/recovery.hpp"
#include "src/core/runner.hpp"
#include "src/partition/spec_io.hpp"

namespace summagen::core {
namespace {

// ------------------------------------------------------ DriftController ----

trace::StepSample sample(double ratio) {
  trace::StepSample s;
  s.predicted_s = 1.0;
  s.observed_s = ratio;
  return s;
}

RepartitionOptions tight_options() {
  RepartitionOptions o;
  o.enabled = true;
  o.threshold = 0.25;
  o.hysteresis = 3;
  o.ewma_alpha = 1.0;  // track the last sample exactly
  o.warmup_steps = 2;
  return o;
}

TEST(DriftController, WarmupThenHysteresisConfirmsExactlyOnce) {
  DriftController d(tight_options(), /*drift_round=*/0);
  // Steps 1-2: warmup. Steps 3-4: streak builds. Step 5: streak == 3.
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_TRUE(d.observe(sample(2.0)));
  EXPECT_TRUE(d.confirmed());
  EXPECT_DOUBLE_EQ(d.smoothed_ratio(), 2.0);
  // Stays confirmed, never fires again.
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_EQ(d.steps(), 6);
}

TEST(DriftController, TransientSpikeDoesNotConfirm) {
  auto o = tight_options();
  o.warmup_steps = 0;
  DriftController d(o, 0);
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.observe(sample(1.0)));  // back in band: streak resets
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.observe(sample(2.0)));
  EXPECT_FALSE(d.confirmed());
}

TEST(DriftController, SpeedupIsDriftToo) {
  auto o = tight_options();
  o.warmup_steps = 0;
  o.hysteresis = 2;
  DriftController d(o, 0);
  EXPECT_FALSE(d.observe(sample(0.5)));
  EXPECT_TRUE(d.observe(sample(0.5)));  // ratio < 1 / 1.25
}

TEST(DriftController, InBandRatioNeverConfirms) {
  auto o = tight_options();
  o.warmup_steps = 0;
  DriftController d(o, 0);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(d.observe(sample(1.2)));
  EXPECT_FALSE(d.confirmed());
}

TEST(DriftController, BackoffDoublesWarmupPerRound) {
  auto o = tight_options();
  o.hysteresis = 1;
  // Round 2: warmup 2 -> 8. Confirmation lands on step 9.
  DriftController d(o, /*drift_round=*/2);
  int confirm_step = -1;
  for (int i = 1; i <= 12; ++i) {
    if (d.observe(sample(3.0))) confirm_step = i;
  }
  EXPECT_EQ(confirm_step, 9);
}

TEST(DriftController, RejectsInvalidOptions) {
  auto bad = tight_options();
  bad.threshold = 0.0;
  EXPECT_THROW(DriftController(bad, 0), std::invalid_argument);
  bad = tight_options();
  bad.hysteresis = 0;
  EXPECT_THROW(DriftController(bad, 0), std::invalid_argument);
  bad = tight_options();
  bad.ewma_alpha = 1.5;
  EXPECT_THROW(DriftController(bad, 0), std::invalid_argument);
}

// -------------------------------------------------------- CLI grammars ----

TEST(DriftGrammar, ParsesEveryKind) {
  const auto plan =
      parse_drift_plan("step@0.5:1x2.5,ramp@0:0x3/0.2,periodic@1:2/0.1");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, device::DriftKind::kStep);
  EXPECT_EQ(plan.events[0].rank, 1);
  EXPECT_DOUBLE_EQ(plan.events[0].at_vtime, 0.5);
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 2.5);
  EXPECT_EQ(plan.events[1].kind, device::DriftKind::kRamp);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 3.0);
  EXPECT_DOUBLE_EQ(plan.events[1].duration_s, 0.2);
  EXPECT_EQ(plan.events[2].kind, device::DriftKind::kPeriodic);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 2.0);  // default factor
  EXPECT_DOUBLE_EQ(plan.events[2].period_s, 0.1);
}

TEST(DriftGrammar, EmptyTextIsEmptyPlan) {
  EXPECT_TRUE(parse_drift_plan("").empty());
}

TEST(DriftGrammar, ErrorsCarryEventIndexAndField) {
  try {
    parse_drift_plan("step@0:1,ramp@0:1x2");
    FAIL() << "expected SpecParseError";
  } catch (const partition::SpecParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.key(), "duration");
  }
  try {
    parse_drift_plan("step@oops:1");
    FAIL() << "expected SpecParseError";
  } catch (const partition::SpecParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.key(), "at");
  }
  EXPECT_THROW(parse_drift_plan("wobble@0:1"), partition::SpecParseError);
  EXPECT_THROW(parse_drift_plan("step@0:1/0.3"), partition::SpecParseError);
  EXPECT_THROW(parse_drift_plan("periodic@0:1"), partition::SpecParseError);
  EXPECT_THROW(parse_drift_plan("step@0:1.5"), partition::SpecParseError);
}

TEST(RepartitionGrammar, OnOffAndKeyValueList) {
  EXPECT_TRUE(parse_repartition_options("on").enabled);
  EXPECT_TRUE(parse_repartition_options("").enabled);
  EXPECT_FALSE(parse_repartition_options("off").enabled);
  const auto o = parse_repartition_options(
      "threshold=0.3,hysteresis=4,alpha=0.5,warmup=2,budget=1");
  EXPECT_TRUE(o.enabled);
  EXPECT_DOUBLE_EQ(o.threshold, 0.3);
  EXPECT_EQ(o.hysteresis, 4);
  EXPECT_DOUBLE_EQ(o.ewma_alpha, 0.5);
  EXPECT_EQ(o.warmup_steps, 2);
  EXPECT_EQ(o.max_repartitions, 1);
}

TEST(RepartitionGrammar, ErrorsCarryItemIndexAndKey) {
  try {
    parse_repartition_options("threshold=0.3,bogus=1");
    FAIL() << "expected SpecParseError";
  } catch (const partition::SpecParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.key(), "bogus");
  }
  EXPECT_THROW(parse_repartition_options("threshold=zero"),
               partition::SpecParseError);
  EXPECT_THROW(parse_repartition_options("alpha=2"),
               partition::SpecParseError);
  EXPECT_THROW(parse_repartition_options("hysteresis"),
               partition::SpecParseError);
}

// --------------------------------------------- layered re-partitioning ----

partition::PartitionSpec three_by_three() {
  partition::PartitionSpec spec;
  spec.n = 12;
  spec.subplda = 3;
  spec.subpldb = 3;
  spec.subp = {0, 0, 1,  //
               0, 1, 1,  //
               2, 2, 2};
  spec.subph = {4, 4, 4};
  spec.subpw = {4, 4, 4};
  spec.validate(3);
  return spec;
}

TEST(LayeredRepartition, DealsContiguousRowMajorRuns) {
  const auto old_spec = three_by_three();
  std::int64_t moved = -1;
  const auto spec = repartition_layered(old_spec, {}, {0, 1, 2},
                                        {1.0, 1.0, 1.0}, &moved);
  spec.validate(3);
  // Equal weights over a uniform grid: one full row of cells per rank.
  for (int bj = 0; bj < 3; ++bj) {
    EXPECT_EQ(spec.owner(0, bj), 0);
    EXPECT_EQ(spec.owner(1, bj), 1);
    EXPECT_EQ(spec.owner(2, bj), 2);
  }
}

TEST(LayeredRepartition, ParksDoneCellsAndSkipsTheDead) {
  const auto old_spec = three_by_three();
  const CellSet done = {{0, 0}, {2, 2}};
  std::int64_t moved = -1;
  const auto spec =
      repartition_layered(old_spec, done, {0, 2}, {1.0, 1.0}, &moved);
  spec.validate(3);
  for (int bi = 0; bi < 3; ++bi) {
    for (int bj = 0; bj < 3; ++bj) EXPECT_NE(spec.owner(bi, bj), 1);
  }
  // Unfinished area splits evenly over the two survivors: 7 cells -> 4 + 3
  // (or 3 + 4), so neither takes more than 4 * 16.
  std::int64_t a0 = 0;
  std::int64_t a2 = 0;
  for (int bi = 0; bi < 3; ++bi) {
    for (int bj = 0; bj < 3; ++bj) {
      if (done.count({bi, bj}) != 0) continue;
      (spec.owner(bi, bj) == 0 ? a0 : a2) += 16;
    }
  }
  EXPECT_EQ(a0 + a2, 7 * 16);
  EXPECT_LE(a0, 4 * 16);
  EXPECT_LE(a2, 4 * 16);
}

TEST(LayeredRepartition, WeightsSkewTheRuns) {
  const auto old_spec = three_by_three();
  const auto spec =
      repartition_layered(old_spec, {}, {0, 2}, {1.0, 8.0}, nullptr);
  EXPECT_GT(spec.area_of(2), spec.area_of(0));
}

TEST(ChooseRepartition, PicksTheSmallerPredictedMakespan) {
  const auto old_spec = three_by_three();
  const CellSet done = {{0, 0}};
  const std::vector<int> survivors = {0, 2};
  const std::vector<double> weights = {1.0, 3.0};
  const auto grid =
      repartition_unfinished(old_spec, done, survivors, weights, nullptr);
  const auto layered =
      repartition_layered(old_spec, done, survivors, weights, nullptr);
  const double grid_ms = predicted_makespan(grid, done, survivors, weights);
  const double layered_ms =
      predicted_makespan(layered, done, survivors, weights);
  RepartitionFamily family = RepartitionFamily::kGrid;
  const auto chosen =
      choose_repartition(old_spec, done, survivors, weights, nullptr, &family);
  const double chosen_ms =
      predicted_makespan(chosen, done, survivors, weights);
  EXPECT_DOUBLE_EQ(chosen_ms, std::min(grid_ms, layered_ms));
  if (family == RepartitionFamily::kLayered) {
    EXPECT_LT(layered_ms, grid_ms);  // layered only wins strictly
  }
  EXPECT_STREQ(repartition_family_name(RepartitionFamily::kGrid), "grid");
  EXPECT_STREQ(repartition_family_name(RepartitionFamily::kLayered),
               "layered");
}

// ------------------------------------------------- end-to-end (runner) ----

ExperimentConfig drift_config() {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 192;
  config.shape = partition::Shape::kSquareCorner;
  config.regime = Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.numeric = true;
  // Chunked dataflow execution gives the detector enough per-rank steps.
  config.summagen_options.scheduler = Scheduler::kTaskGraph;
  config.summagen_options.bcast_panel_rows = 48;
  config.fault_detect_s = 1e-4;
  return config;
}

device::DriftEvent step_drift(int rank, double at, double factor) {
  device::DriftEvent e;
  e.kind = device::DriftKind::kStep;
  e.rank = rank;
  e.at_vtime = at;
  e.factor = factor;
  return e;
}

TEST(DriftRuns, UnmanagedDriftStretchesTimeButStaysCorrect) {
  auto config = drift_config();
  const double t0 = run_pmm(config).exec_time_s;
  ASSERT_GT(t0, 0.0);
  config.drift.events.push_back(step_drift(1, 0.0, 3.0));
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GT(res.exec_time_s, t0);
  EXPECT_TRUE(res.repartitions.empty());  // detection is opt-in
}

TEST(DriftRuns, OnlineRepartitionVerifiesAndRecordsTheEvent) {
  auto config = drift_config();
  config.drift.events.push_back(step_drift(1, 0.0, 3.0));
  config.repartition.enabled = true;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  ASSERT_GE(res.repartitions.size(), 1u);
  const auto& ev = res.repartitions[0];
  EXPECT_EQ(ev.epoch, 1);
  EXPECT_EQ(ev.trigger_rank, 1);  // the drifting rank detects first
  EXPECT_GE(ev.trigger_vtime, 0.0);
  ASSERT_EQ(ev.measured_speeds.size(), 3u);
  // The victim's corrected weight drops well below its static weight 2.
  EXPECT_LT(ev.measured_speeds[1], 1.0);
  EXPECT_GE(ev.redone_cells, 0);
  EXPECT_GE(ev.redone_area, 0);
  EXPECT_LE(static_cast<int>(res.repartitions.size()),
            config.repartition.max_repartitions);
}

TEST(DriftRuns, OnlineBeatsStaticUnderSustainedSlowdown) {
  auto config = drift_config();
  config.numeric = false;
  config.n = 1536;
  config.drift.events.push_back(step_drift(1, 0.0, 3.0));
  const double static_time = run_pmm(config).exec_time_s;
  config.repartition.enabled = true;
  config.repartition.max_repartitions = 1;
  const auto res = run_pmm(config);
  ASSERT_GE(res.repartitions.size(), 1u);
  EXPECT_LT(res.exec_time_s, static_time);
}

TEST(DriftRuns, AdaptiveRunWithoutDriftHasBoundedOverhead) {
  auto config = drift_config();
  const auto plain = run_pmm(config);
  config.repartition.enabled = true;
  const auto adaptive = run_pmm(config);
  EXPECT_TRUE(adaptive.verified);
  EXPECT_TRUE(adaptive.repartitions.empty());
  // The armed detector is observation-only; the only modeled cost a clean
  // adaptive run pays is the single commit-gate barrier every
  // fault-tolerant run charges (trace::barrier_cost, tens of microseconds).
  EXPECT_GE(adaptive.exec_time_s, plain.exec_time_s);
  EXPECT_LE(adaptive.exec_time_s, plain.exec_time_s + 1e-3);
}

TEST(DriftRuns, BudgetBoundsThrashingRepartitions) {
  auto config = drift_config();
  // Persistent drift keeps re-confirming against the static model; the
  // budget must cap the rounds.
  config.drift.events.push_back(step_drift(1, 0.0, 4.0));
  config.repartition.enabled = true;
  config.repartition.max_repartitions = 1;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_EQ(res.repartitions.size(), 1u);
}

TEST(DriftRuns, DeterministicAcrossRepeatedRuns) {
  for (Scheduler scheduler :
       {Scheduler::kEager, Scheduler::kPipelined, Scheduler::kTaskGraph}) {
    auto config = drift_config();
    config.summagen_options.scheduler = scheduler;
    // Eager fuses each cell into one step; arm the detector accordingly.
    config.repartition.enabled = true;
    config.repartition.warmup_steps = 1;
    config.repartition.hysteresis = 2;
    config.drift.events.push_back(step_drift(1, 0.0, 3.0));
    const auto a = run_pmm(config);
    const auto b = run_pmm(config);
    EXPECT_TRUE(a.verified) << to_string(scheduler);
    EXPECT_TRUE(b.verified) << to_string(scheduler);
    EXPECT_EQ(a.exec_time_s, b.exec_time_s) << to_string(scheduler);
    ASSERT_EQ(a.repartitions.size(), b.repartitions.size())
        << to_string(scheduler);
    for (std::size_t i = 0; i < a.repartitions.size(); ++i) {
      EXPECT_EQ(a.repartitions[i].epoch, b.repartitions[i].epoch);
      EXPECT_EQ(a.repartitions[i].trigger_rank,
                b.repartitions[i].trigger_rank);
      EXPECT_EQ(a.repartitions[i].trigger_vtime,
                b.repartitions[i].trigger_vtime);
      EXPECT_EQ(a.repartitions[i].redone_cells,
                b.repartitions[i].redone_cells);
      EXPECT_EQ(a.repartitions[i].redone_area,
                b.repartitions[i].redone_area);
      EXPECT_EQ(a.repartitions[i].family, b.repartitions[i].family);
      EXPECT_EQ(a.repartitions[i].measured_speeds,
                b.repartitions[i].measured_speeds);
    }
  }
}

// A crash landing while a drift-triggered re-partition is being handled
// must still shrink and verify — under every scheduler.
TEST(DriftRuns, CrashDuringDriftRepartitionRecovers) {
  for (Scheduler scheduler :
       {Scheduler::kEager, Scheduler::kPipelined, Scheduler::kTaskGraph}) {
    auto config = drift_config();
    config.summagen_options.scheduler = scheduler;
    config.repartition.enabled = true;
    config.repartition.warmup_steps = 1;
    config.repartition.hysteresis = 2;
    config.drift.events.push_back(step_drift(1, 0.0, 3.0));
    const auto baseline = run_pmm(config);
    ASSERT_GE(baseline.repartitions.size(), 1u) << to_string(scheduler);
    const double trigger = baseline.repartitions[0].trigger_vtime;
    config.faults.events.push_back({sgmpi::FaultKind::kCrash, /*rank=*/2,
                                    /*at_vtime=*/trigger + 1e-6});
    const auto res = run_pmm(config);
    EXPECT_TRUE(res.verified)
        << to_string(scheduler) << " max_abs_error=" << res.max_abs_error;
    EXPECT_GE(res.recoveries, 1) << to_string(scheduler);
  }
}

}  // namespace
}  // namespace summagen::core

// End-to-end correctness of the SummaGen algorithm on the numeric plane:
// for every shape, every regime and a spread of sizes, the distributed
// product must match the serial reference.
#include <gtest/gtest.h>

#include "src/core/reference.hpp"
#include "src/core/runner.hpp"
#include "src/trace/stats.hpp"

namespace summagen {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::Regime;
using partition::Shape;

ExperimentConfig numeric_config(Shape shape, std::int64_t n) {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = n;
  config.shape = shape;
  config.regime = Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.numeric = true;
  return config;
}

class AllShapesNumeric
    : public ::testing::TestWithParam<std::tuple<Shape, std::int64_t>> {};

TEST_P(AllShapesNumeric, MatchesSerialReference) {
  const auto [shape, n] = GetParam();
  const ExperimentResult res = core::run_pmm(numeric_config(shape, n));
  EXPECT_TRUE(res.verified)
      << partition::shape_name(shape) << " n=" << n
      << " max_abs_error=" << res.max_abs_error;
  EXPECT_GT(res.exec_time_s, 0.0);
  EXPECT_GT(res.comp_time_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllShapesNumeric,
    ::testing::Combine(::testing::Values(Shape::kSquareCorner,
                                         Shape::kSquareRectangle,
                                         Shape::kBlockRectangle,
                                         Shape::kOneDimensional),
                       ::testing::Values<std::int64_t>(16, 64, 129, 256)),
    [](const auto& param_info) {
      return std::string(
                 partition::shape_name(std::get<0>(param_info.param))) +
             "_n" + std::to_string(std::get<1>(param_info.param));
    });

class PanelledBroadcasts : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PanelledBroadcasts, SameResultSameBytesMoreMessages) {
  // The paper's block size r as a broadcast panel: identical numerics and
  // total traffic, more messages (and so more modeled latency).
  ExperimentConfig whole = numeric_config(Shape::kSquareCorner, 160);
  ExperimentConfig panelled = whole;
  panelled.summagen_options.bcast_panel_rows = GetParam();

  const auto a = core::run_pmm(whole);
  const auto b = core::run_pmm(panelled);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  std::int64_t bytes_a = 0, bytes_b = 0;
  int msgs_a = 0, msgs_b = 0;
  for (const auto& rep : a.reports) {
    bytes_a += rep.bcast_bytes;
    msgs_a += rep.bcasts;
  }
  for (const auto& rep : b.reports) {
    bytes_b += rep.bcast_bytes;
    msgs_b += rep.bcasts;
  }
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_GT(msgs_b, msgs_a);
  EXPECT_GE(b.comm_time_s, a.comm_time_s);  // extra latency terms
}

INSTANTIATE_TEST_SUITE_P(PanelRows, PanelledBroadcasts,
                         ::testing::Values<std::int64_t>(1, 7, 32),
                         [](const auto& param_info) {
                           return "r" + std::to_string(param_info.param);
                         });

TEST(SummaGenFpm, NumericFpmRegimeVerifies) {
  ExperimentConfig config = numeric_config(Shape::kSquareRectangle, 192);
  config.regime = Regime::kFunctional;
  config.cpm_speeds.clear();
  const ExperimentResult res = core::run_pmm(config);
  EXPECT_TRUE(res.verified) << res.max_abs_error;
}

TEST(SummaGenMetrics, ShapesAgreeUnderConstantSpeeds) {
  // The headline Figure 6a property: with constant speeds, in the paper's
  // constant problem-size range, all four shapes take roughly the same
  // (modeled) time — the paper reports an average spread of 8% and a
  // maximum of 23%.
  std::vector<double> times;
  for (Shape s : partition::all_shapes()) {
    ExperimentConfig config = numeric_config(s, 0);
    config.n = 30720;
    config.numeric = false;
    times.push_back(core::run_pmm(config).exec_time_s);
  }
  EXPECT_LT(trace::percentage_spread(times), 25.0);
}

}  // namespace
}  // namespace summagen

#include "src/core/summa.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/reference.hpp"
#include "src/device/platform.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {
namespace {

double run_summa(std::int64_t n, const SummaConfig& config,
                 std::uint64_t seed) {
  const int p = config.pr * config.pc;
  const auto platform = device::Platform::homogeneous(p);
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, util::derive_seed(seed, 1));
  util::fill_random(b, util::derive_seed(seed, 2));
  std::vector<std::unique_ptr<SummaLocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(std::make_unique<SummaLocalData>(n, config, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    summa_rank(world, n, config,
               processors[static_cast<std::size_t>(world.rank())],
               locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(n, n);
  for (int r = 0; r < p; ++r) locals[static_cast<std::size_t>(r)]->gather_c(c);
  return util::Matrix::max_abs_diff(c, reference_multiply(a, b));
}

TEST(SummaBlocks, BalancedSplitCoversMatrix) {
  const SummaConfig config{3, 2, 64};
  std::int64_t area = 0;
  for (int r = 0; r < 6; ++r) {
    const auto b = summa_block(100, config, r);
    area += b.rows * b.cols;
    EXPECT_GT(b.rows, 0);
    EXPECT_GT(b.cols, 0);
  }
  EXPECT_EQ(area, 100 * 100);
  // Uneven split: 100 over 3 rows -> 34, 33, 33.
  EXPECT_EQ(summa_block(100, config, 0).rows, 34);
  EXPECT_EQ(summa_block(100, config, 5).rows, 33);
}

TEST(SummaBlocks, RejectsBadInput) {
  EXPECT_THROW(summa_block(0, {2, 2, 64}, 0), std::invalid_argument);
  EXPECT_THROW(summa_block(16, {2, 2, 64}, 4), std::invalid_argument);
  EXPECT_THROW(summa_block(16, {0, 2, 64}, 0), std::invalid_argument);
  EXPECT_THROW(summa_block(16, {2, 2, 0}, 0), std::invalid_argument);
  EXPECT_THROW(summa_block(4, {8, 1, 1}, 0), std::invalid_argument);
}

struct SummaCase {
  std::int64_t n;
  SummaConfig config;
};

class SummaCorrectness : public ::testing::TestWithParam<SummaCase> {};

TEST_P(SummaCorrectness, MatchesReference) {
  const auto& c = GetParam();
  EXPECT_LE(run_summa(c.n, c.config, 99), gemm_tolerance(c.n))
      << "n=" << c.n << " grid=" << c.config.pr << "x" << c.config.pc
      << " panel=" << c.config.panel;
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndPanels, SummaCorrectness,
    ::testing::Values(SummaCase{64, {1, 1, 16}},    // serial degenerate
                      SummaCase{64, {2, 2, 16}},    // square grid
                      SummaCase{64, {2, 2, 64}},    // single panel
                      SummaCase{64, {2, 2, 7}},     // panel !| n
                      SummaCase{100, {3, 2, 17}},   // uneven blocks
                      SummaCase{100, {2, 3, 100}},  // wide grid, full panel
                      SummaCase{96, {4, 1, 32}},    // column of processors
                      SummaCase{96, {1, 4, 32}},    // row of processors
                      SummaCase{129, {3, 3, 40}}),  // prime-ish everything
    [](const auto& param_info) {
      const auto& c = param_info.param;
      return "n" + std::to_string(c.n) + "_g" + std::to_string(c.config.pr) +
             "x" + std::to_string(c.config.pc) + "_b" +
             std::to_string(c.config.panel);
    });

TEST(Summa, ModeledPlaneCountsTrafficWithoutData) {
  const SummaConfig config{2, 2, 32};
  const auto platform = device::Platform::homogeneous(4);
  const auto processors = platform.processors();
  sgmpi::Config mpi_config;
  mpi_config.nranks = 4;
  sgmpi::Runtime runtime(mpi_config);
  std::vector<SummaReport> reports(4);
  runtime.run([&](sgmpi::Comm& world) {
    reports[static_cast<std::size_t>(world.rank())] =
        summa_rank(world, 128, config,
                   processors[static_cast<std::size_t>(world.rank())],
                   nullptr);
  });
  for (const auto& r : reports) {
    EXPECT_EQ(r.steps, 4);
    EXPECT_GT(r.bcasts, 0);
    EXPECT_GT(r.bcast_bytes, 0);
    EXPECT_GT(r.mpi_time_s, 0.0);
    // Every rank computes its 64x64 block over k=128.
    EXPECT_EQ(r.flops, 2LL * 64 * 64 * 128);
  }
  EXPECT_GT(runtime.max_vtime(), 0.0);
}

TEST(Summa, SmallerPanelsMeanMoreSmallerBroadcasts) {
  const auto platform = device::Platform::homogeneous(4);
  const auto processors = platform.processors();
  auto run = [&](std::int64_t panel) {
    sgmpi::Config mpi_config;
    mpi_config.nranks = 4;
    sgmpi::Runtime runtime(mpi_config);
    SummaReport rep;
    runtime.run([&](sgmpi::Comm& world) {
      const auto r = summa_rank(world, 256, {2, 2, panel},
                                processors[static_cast<std::size_t>(
                                    world.rank())],
                                nullptr);
      if (world.rank() == 0) rep = r;
    });
    return rep;
  };
  const auto coarse = run(256);
  const auto fine = run(32);
  EXPECT_GT(fine.bcasts, coarse.bcasts);
  // Same total payload either way.
  EXPECT_EQ(fine.bcast_bytes, coarse.bcast_bytes);
  // More messages, more latency terms.
  EXPECT_GT(fine.mpi_time_s, coarse.mpi_time_s);
}

TEST(Summa, WorldSizeMismatchThrows) {
  const auto platform = device::Platform::homogeneous(3);
  const auto processors = platform.processors();
  sgmpi::Config mpi_config;
  mpi_config.nranks = 3;
  sgmpi::Runtime runtime(mpi_config);
  EXPECT_THROW(runtime.run([&](sgmpi::Comm& world) {
    summa_rank(world, 64, {2, 2, 16},
               processors[static_cast<std::size_t>(world.rank())], nullptr);
  }),
               std::invalid_argument);
}

}  // namespace
}  // namespace summagen::core

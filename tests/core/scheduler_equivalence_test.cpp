// Scheduler equivalence: kPipelined and kTaskGraph must produce
// bit-identical C to kEager across all four paper shapes, and their
// modeled timelines must obey the overlap invariants (never slower than
// eager at unbounded depth, same broadcast count and bytes — overlap hides
// cost, it never changes what is communicated; the dataflow schedule is
// additionally never slower than the in-order pipeline).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/runner.hpp"
#include "src/util/rng.hpp"

namespace summagen {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::Scheduler;
using partition::Shape;

/// Gathers the full distributed C of one numeric execution.
util::Matrix distributed_c(Shape shape, Scheduler scheduler, int depth,
                           std::int64_t panel_rows) {
  const std::int64_t n = 120;
  const auto areas =
      partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  const auto spec = partition::build_shape(shape, n, areas);

  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  std::vector<std::unique_ptr<core::LocalData>> locals;
  for (int r = 0; r < 3; ++r) {
    locals.push_back(std::make_unique<core::LocalData>(spec, r, a, b));
  }
  const auto platform = device::Platform::hclserver1();
  const auto processors = platform.processors(blas::GemmOptions{});

  core::SummaGenOptions options;
  options.scheduler = scheduler;
  options.overlap_depth = depth;
  options.bcast_panel_rows = panel_rows;

  sgmpi::Config mpi_config;
  mpi_config.nranks = 3;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    const std::size_t r = static_cast<std::size_t>(world.rank());
    core::summagen_rank(world, spec, processors[r], locals[r].get(),
                        /*contended=*/true, options);
  });

  util::Matrix c(n, n);
  for (int r = 0; r < 3; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(spec, c);
  }
  return c;
}

class SchedulerEquivalence : public ::testing::TestWithParam<Shape> {};

TEST_P(SchedulerEquivalence, OverlappingCBitIdenticalToEager) {
  const Shape shape = GetParam();
  const util::Matrix eager =
      distributed_c(shape, Scheduler::kEager, 0, /*panel_rows=*/0);
  for (const Scheduler sched : {Scheduler::kPipelined,
                                Scheduler::kTaskGraph}) {
    for (const int depth : {0, 1, 2}) {
      for (const std::int64_t panel_rows :
           {std::int64_t{0}, std::int64_t{16}}) {
        const util::Matrix overlapped =
            distributed_c(shape, sched, depth, panel_rows);
        EXPECT_EQ(util::Matrix::max_abs_diff(eager, overlapped), 0.0)
            << partition::shape_name(shape) << " " << core::to_string(sched)
            << " depth=" << depth << " panel_rows=" << panel_rows;
      }
    }
  }
}

/// A configuration where communication matters: a slow fabric makes the
/// broadcasts worth hiding.
ExperimentConfig comm_bound_config(Shape shape, Scheduler scheduler) {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.platform.mpi_link.beta_s_per_byte *= 200.0;
  config.n = 2048;
  config.shape = shape;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.summagen_options.scheduler = scheduler;
  config.summagen_options.overlap_depth = 0;  // unbounded prefetch window
  config.summagen_options.bcast_panel_rows = 64;
  return config;
}

TEST_P(SchedulerEquivalence, OverlapNeverSlowerAndTrafficIdentical) {
  const Shape shape = GetParam();
  const ExperimentResult eager =
      core::run_pmm(comm_bound_config(shape, Scheduler::kEager));
  const ExperimentResult pipelined =
      core::run_pmm(comm_bound_config(shape, Scheduler::kPipelined));
  const ExperimentResult taskgraph =
      core::run_pmm(comm_bound_config(shape, Scheduler::kTaskGraph));

  EXPECT_LE(pipelined.exec_time_s, eager.exec_time_s * (1.0 + 1e-9))
      << partition::shape_name(shape);
  // The dataflow schedule only ever moves compute earlier relative to the
  // same comm completion order, so it dominates the in-order pipeline too.
  EXPECT_LE(taskgraph.exec_time_s, pipelined.exec_time_s * (1.0 + 1e-9))
      << partition::shape_name(shape);

  // Overlap hides broadcast cost; it never changes what is communicated.
  ASSERT_EQ(eager.reports.size(), pipelined.reports.size());
  ASSERT_EQ(eager.reports.size(), taskgraph.reports.size());
  for (std::size_t r = 0; r < eager.reports.size(); ++r) {
    EXPECT_EQ(eager.reports[r].bcasts, pipelined.reports[r].bcasts)
        << "rank " << r;
    EXPECT_EQ(eager.reports[r].bcast_bytes, pipelined.reports[r].bcast_bytes)
        << "rank " << r;
    EXPECT_EQ(eager.reports[r].bcasts, taskgraph.reports[r].bcasts)
        << "rank " << r;
    EXPECT_EQ(eager.reports[r].bcast_bytes, taskgraph.reports[r].bcast_bytes)
        << "rank " << r;
  }

  // The eager schedule hides nothing; the comm-bound overlapping runs must
  // hide something on at least one rank and be strictly faster.
  EXPECT_EQ(eager.hidden_comm_time_s, 0.0);
  EXPECT_GT(pipelined.hidden_comm_time_s, 0.0)
      << partition::shape_name(shape);
  EXPECT_GT(taskgraph.hidden_comm_time_s, 0.0)
      << partition::shape_name(shape);
  EXPECT_LT(pipelined.exec_time_s, eager.exec_time_s)
      << partition::shape_name(shape);
  EXPECT_LT(taskgraph.exec_time_s, eager.exec_time_s)
      << partition::shape_name(shape);

  // Total computation is scheduler-invariant: the chunks are pro-rata
  // slices of the same kernel invocations.
  EXPECT_NEAR(pipelined.comp_time_s, eager.comp_time_s,
              1e-9 * eager.comp_time_s);
  EXPECT_NEAR(taskgraph.comp_time_s, eager.comp_time_s,
              1e-9 * eager.comp_time_s);
}

TEST_P(SchedulerEquivalence, BoundedDepthStillVerifiesNumerically) {
  const Shape shape = GetParam();
  for (const Scheduler sched : {Scheduler::kPipelined,
                                Scheduler::kTaskGraph}) {
    ExperimentConfig config;
    config.platform = device::Platform::hclserver1();
    config.n = 96;
    config.shape = shape;
    config.cpm_speeds = {1.0, 2.0, 0.9};
    config.numeric = true;
    config.summagen_options.scheduler = sched;
    config.summagen_options.overlap_depth = 1;  // smallest legal window
    config.summagen_options.bcast_panel_rows = 8;
    const ExperimentResult res = core::run_pmm(config);
    EXPECT_TRUE(res.verified)
        << partition::shape_name(shape) << " " << core::to_string(sched)
        << " " << res.max_abs_error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulerEquivalence,
    ::testing::Values(Shape::kSquareCorner, Shape::kSquareRectangle,
                      Shape::kBlockRectangle, Shape::kOneDimensional),
    [](const auto& param_info) {
      return std::string(partition::shape_name(param_info.param));
    });

}  // namespace
}  // namespace summagen

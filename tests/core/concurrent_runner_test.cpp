// Concurrent run_pmm callers over one shared RuntimeContext — the
// multi-tenant service's execution pattern, exercised raw (and under TSan
// in CI): N threads with mixed shapes/engines must not corrupt each
// other's numerics, virtual clocks, or per-job accounting.
//
// What is deterministic under concurrency (and asserted bit-exactly):
// modeled virtual times, numeric verification, per-job copy and
// pack-lookup counts (the per-job StatsSink rides the pool task token, so
// a pack running on a stolen worker bills the submitting job). What is
// NOT: BufferPool alloc/hit counts — pool workers race the rank threads
// on the freelists even in a single job — so nothing here asserts those.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/runtime_context.hpp"
#include "src/device/platform.hpp"

namespace summagen::core {
namespace {

ExperimentConfig modeled_config(partition::Shape shape) {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 1024;
  config.shape = shape;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.engine = sgmpi::Engine::kModeled;
  return config;
}

ExperimentConfig numeric_config(partition::Shape shape, std::uint64_t seed) {
  ExperimentConfig config;
  config.platform = device::Platform::homogeneous(3);
  config.n = 192;
  config.shape = shape;
  config.numeric = true;
  config.seed = seed;
  return config;
}

TEST(ConcurrentRunner, MixedJobsMatchSoloRuns) {
  RuntimeContext::Options options;
  options.reserved_threads = 8;
  RuntimeContext ctx(options);

  const std::vector<ExperimentConfig> configs = {
      modeled_config(partition::Shape::kSquareCorner),
      modeled_config(partition::Shape::kSquareRectangle),
      numeric_config(partition::Shape::kSquareCorner, 7),
      numeric_config(partition::Shape::kBlockRectangle, 11),
  };

  // Solo reference runs, sequentially, under the same context.
  std::vector<ExperimentResult> solo;
  for (const auto& config : configs) {
    solo.push_back(run_pmm(config));
  }

  // The same four jobs, all in flight at once.
  std::vector<ExperimentResult> concurrent(configs.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    threads.emplace_back([&, i] { concurrent[i] = run_pmm(configs[i]); });
  }
  for (auto& t : threads) {
    t.join();
  }

  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    // Virtual clocks are a pure function of the config: concurrency must
    // not leak into them.
    EXPECT_EQ(concurrent[i].exec_time_s, solo[i].exec_time_s);
    EXPECT_EQ(concurrent[i].comp_time_s, solo[i].comp_time_s);
    EXPECT_EQ(concurrent[i].comm_time_s, solo[i].comm_time_s);
    if (configs[i].numeric) {
      EXPECT_TRUE(concurrent[i].verified);
    }
    // Per-job attribution: the concurrent job bills exactly the events the
    // solo run did, not a slice of its neighbours'.
    EXPECT_EQ(concurrent[i].alloc.copy_calls, solo[i].alloc.copy_calls);
    EXPECT_EQ(concurrent[i].alloc.copy_bytes, solo[i].alloc.copy_bytes);
    EXPECT_EQ(concurrent[i].alloc.pack_lookups, solo[i].alloc.pack_lookups);
  }
}

TEST(ConcurrentRunner, KeyedJobsShareOnePlanAcrossThreads) {
  RuntimeContext::Options options;
  options.reserved_threads = 4;
  RuntimeContext ctx(options);

  ExperimentConfig config = modeled_config(partition::Shape::kSquareCorner);
  config.plan_cache_key = 0xBEEF;

  // Warm the cache so the concurrent lookups below are all hits (a cold
  // concurrent start may race-build the plan, which keeps results correct
  // but makes hit counts timing-dependent).
  const ExperimentResult warm = run_pmm(config);
  EXPECT_FALSE(warm.plan_cache_hit);

  constexpr int kThreads = 4;
  std::vector<ExperimentResult> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] { results[static_cast<std::size_t>(i)] =
                                      run_pmm(config); });
  }
  for (auto& t : threads) {
    t.join();
  }

  for (const auto& r : results) {
    EXPECT_TRUE(r.plan_cache_hit);
    EXPECT_EQ(r.exec_time_s, warm.exec_time_s);
    EXPECT_EQ(r.spec.subp, warm.spec.subp);
  }
  const auto stats = ctx.plan_cache_stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.lookups, 1 + kThreads);
  EXPECT_EQ(stats.hits, kThreads);
}

TEST(ConcurrentRunner, RepeatedKeyedJobReusesSchedulesAndPacks) {
  RuntimeContext::Options options;
  options.reserved_threads = 4;
  RuntimeContext ctx(options);

  // Modeled plane: the repeat must be served by the shared-schedule cache.
  ExperimentConfig modeled = modeled_config(partition::Shape::kSquareCorner);
  modeled.plan_cache_key = 0xC0FFEE;
  const ExperimentResult cold = run_pmm(modeled);
  const ExperimentResult hot = run_pmm(modeled);
  EXPECT_TRUE(hot.plan_cache_hit);
  EXPECT_GT(hot.alloc.sched_lookups, 0);
  EXPECT_EQ(hot.alloc.sched_hits, hot.alloc.sched_lookups);
  EXPECT_EQ(hot.exec_time_s, cold.exec_time_s);

  // Numeric plane: with the signature-derived pack namespace, the repeat's
  // B panels are already packed — every pack lookup hits.
  ExperimentConfig numeric =
      numeric_config(partition::Shape::kSquareCorner, 7);
  numeric.plan_cache_key = 0xFEED;
  const ExperimentResult first = run_pmm(numeric);
  const ExperimentResult second = run_pmm(numeric);
  EXPECT_TRUE(first.verified);
  EXPECT_TRUE(second.verified);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_GT(second.alloc.pack_lookups, 0);
  EXPECT_EQ(second.alloc.pack_hits, second.alloc.pack_lookups)
      << "repeat run repacked B panels it should have reused";
}

}  // namespace
}  // namespace summagen::core

// Task-graph structure and scheduling contracts (src/core/taskgraph/):
//
//  * the SummaGen graph is acyclic, every broadcast feeds at least one
//    DGEMM chunk, and chunk dependencies reproduce the plan's
//    prefix-of-comm_ops contract in ascending collective order;
//  * recovery pruning drops exactly what the historical row/column
//    liveness rule dropped, with node ids untouched;
//  * the SUMMA / 2.5D step chains have the expected shape (replication
//    heads, write-after-read workspace edges, reduction tail);
//  * all three schedulers produce bit-identical numeric results and
//    identical counters on the chain graphs (SUMMA and 2.5D).
#include "src/core/taskgraph/taskgraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/core/plan.hpp"
#include "src/core/summa.hpp"
#include "src/core/summa25d.hpp"
#include "src/device/platform.hpp"
#include "src/partition/areas.hpp"
#include "src/partition/shapes.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {
namespace {

using taskgraph::NodeKind;
using taskgraph::TaskGraph;
using taskgraph::TaskNode;

partition::PartitionSpec shape_spec(partition::Shape shape,
                                    std::int64_t n = 120) {
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  return partition::build_shape(shape, n, areas);
}

std::vector<partition::Shape> all_shapes() {
  return {partition::Shape::kSquareCorner, partition::Shape::kSquareRectangle,
          partition::Shape::kBlockRectangle,
          partition::Shape::kOneDimensional};
}

/// Largest comm-node id among a node's predecessors, -1 when none.
int max_comm_pred(const TaskGraph& g, const TaskNode& n) {
  int dep = -1;
  for (int p : n.preds) {
    if (g.node(p).is_comm()) dep = std::max(dep, p);
  }
  return dep;
}

TEST(SummagenGraph, NodeInventoryMatchesPlan) {
  for (const auto shape : all_shapes()) {
    const auto spec = shape_spec(shape);
    SummaGenOptions options;
    options.bcast_panel_rows = 16;  // panelled: several comms per line
    const ExecutionPlan plan = build_plan(spec, options);
    const TaskGraph g = taskgraph::build_summagen_graph(spec, plan);
    EXPECT_NO_THROW(g.validate());

    std::size_t chunks = 0;
    for (const auto& op : plan.gemm_ops) chunks += op.chunks.size();
    ASSERT_EQ(g.size(), plan.copy_ops.size() + plan.comm_ops.size() + chunks);

    // Construction order is copies, comms, chunks — and the comm nodes
    // preserve the plan's eager global (collective) order: node
    // |copy_ops| + i is plan comm op i, over the same subgroup.
    for (std::size_t i = 0; i < plan.copy_ops.size(); ++i) {
      EXPECT_EQ(g.node(static_cast<int>(i)).kind, NodeKind::kCopy);
    }
    for (std::size_t i = 0; i < plan.comm_ops.size(); ++i) {
      const TaskNode& n =
          g.node(static_cast<int>(plan.copy_ops.size() + i));
      EXPECT_EQ(n.kind, NodeKind::kBcast);
      EXPECT_EQ(n.payload, static_cast<int>(i));
      EXPECT_EQ(n.owners, plan.comm_ops[i].owners);
    }
  }
}

TEST(SummagenGraph, EveryBroadcastFeedsAGemmChunk) {
  for (const auto shape : all_shapes()) {
    const auto spec = shape_spec(shape);
    for (const std::int64_t panel_rows : {std::int64_t{0}, std::int64_t{16}}) {
      SummaGenOptions options;
      options.bcast_panel_rows = panel_rows;
      const ExecutionPlan plan = build_plan(spec, options);
      const TaskGraph g = taskgraph::build_summagen_graph(spec, plan);
      for (const TaskNode& n : g.nodes()) {
        if (n.kind != NodeKind::kBcast) continue;
        const bool feeds_gemm = std::any_of(
            n.succs.begin(), n.succs.end(),
            [&](int s) { return g.node(s).kind == NodeKind::kGemm; });
        EXPECT_TRUE(feeds_gemm)
            << partition::shape_name(shape) << " bcast node " << n.id
            << " (plan comm op " << n.payload << ") feeds no DGEMM chunk";
      }
    }
  }
}

TEST(SummagenGraph, ChunkDepsReproducePlanPrefixes) {
  for (const auto shape : all_shapes()) {
    const auto spec = shape_spec(shape);
    SummaGenOptions options;
    options.bcast_panel_rows = 16;
    const ExecutionPlan plan = build_plan(spec, options);
    const TaskGraph g = taskgraph::build_summagen_graph(spec, plan);
    const int ncopies = static_cast<int>(plan.copy_ops.size());
    for (const TaskNode& n : g.nodes()) {
      if (n.kind != NodeKind::kGemm) continue;
      const GemmOp& op = plan.gemm_ops[static_cast<std::size_t>(n.payload)];
      const GemmChunk& ch = op.chunks[static_cast<std::size_t>(n.aux)];
      // A chunk's completion horizon — the largest comm node it waits for
      // — is exactly the plan's prefix bound, offset by the copy block.
      // Chunks of one op have strictly increasing dep, so the horizons of
      // the chunk chain are strictly increasing too.
      const int horizon = max_comm_pred(g, n);
      if (ch.dep < 0) {
        EXPECT_EQ(horizon, -1) << "dep-free chunk waits for a comm node";
      } else {
        EXPECT_EQ(horizon, ncopies + ch.dep)
            << partition::shape_name(shape) << " gemm op " << n.payload
            << " chunk " << n.aux;
      }
      if (n.aux > 0) {
        const TaskNode* prev = nullptr;
        for (int p : n.preds) {
          const TaskNode& pn = g.node(p);
          if (pn.kind == NodeKind::kGemm && pn.payload == n.payload) {
            prev = &pn;
          }
        }
        ASSERT_NE(prev, nullptr) << "chunk chain broken";
        EXPECT_EQ(prev->aux, n.aux - 1);
        EXPECT_GT(horizon, max_comm_pred(g, *prev));
      }
    }
  }
}

TEST(SummagenGraph, PruneMatchesRowColumnLiveness) {
  const auto spec = shape_spec(partition::Shape::kSquareCorner);
  SummaGenOptions options;
  options.bcast_panel_rows = 16;
  const ExecutionPlan plan = build_plan(spec, options);

  // Mark a couple of cells finished, covering "row fully done" and
  // "row partially done" cases.
  std::set<std::pair<int, int>> done;
  done.insert({plan.gemm_ops[0].bi, plan.gemm_ops[0].bj});
  done.insert({plan.gemm_ops.back().bi, plan.gemm_ops.back().bj});

  TaskGraph g = taskgraph::build_summagen_graph(spec, plan);
  taskgraph::prune_completed(g, plan, done);
  EXPECT_NO_THROW(g.validate());  // ids and edges survive pruning

  std::set<int> live_rows, live_cols;
  for (const auto& op : plan.gemm_ops) {
    if (done.count({op.bi, op.bj}) == 0) {
      live_rows.insert(op.bi);
      live_cols.insert(op.bj);
    }
  }
  for (const TaskNode& n : g.nodes()) {
    switch (n.kind) {
      case NodeKind::kGemm: {
        const GemmOp& op =
            plan.gemm_ops[static_cast<std::size_t>(n.payload)];
        EXPECT_EQ(n.dropped, done.count({op.bi, op.bj}) != 0);
        break;
      }
      case NodeKind::kBcast: {
        const CommOp& op =
            plan.comm_ops[static_cast<std::size_t>(n.payload)];
        const bool live = op.is_a ? live_rows.count(op.bi) != 0
                                  : live_cols.count(op.bj) != 0;
        EXPECT_EQ(n.dropped, !live) << "comm op " << n.payload;
        break;
      }
      case NodeKind::kCopy: {
        const CopyOp& op =
            plan.copy_ops[static_cast<std::size_t>(n.payload)];
        const bool live = op.is_a ? live_rows.count(op.bi) != 0
                                  : live_cols.count(op.bj) != 0;
        EXPECT_EQ(n.dropped, !live) << "copy op " << n.payload;
        break;
      }
      default:
        FAIL() << "unexpected node kind in a SummaGen graph";
    }
  }
}

TEST(TaskGraphInvariants, RejectsBadEdgesAndCycles) {
  TaskGraph g;
  const int a = g.add_local(NodeKind::kCopy, 0, 0);
  const int b = g.add_local(NodeKind::kGemm, 0, 1);
  g.add_dep(a, b);
  EXPECT_THROW(g.add_dep(a, b), std::logic_error);   // duplicate
  EXPECT_THROW(g.add_dep(a, a), std::logic_error);   // self edge
  EXPECT_THROW(g.add_dep(a, 99), std::logic_error);  // unknown node
  EXPECT_NO_THROW(g.validate());
  g.add_dep(b, a);  // structurally fine, semantically a cycle
  EXPECT_THROW(g.validate(), std::logic_error);
  EXPECT_THROW(g.add_comm(NodeKind::kBcast, {}, 0), std::logic_error);
}

TEST(StepChainGraph, SummaShape) {
  const std::vector<int> row = {0, 1};
  const std::vector<int> col = {0, 2};
  const TaskGraph g = taskgraph::build_summa_graph(3, /*rank=*/0, row, col);
  ASSERT_EQ(g.size(), 9u);  // (a, b, gemm) per step
  for (int s = 0; s < 3; ++s) {
    const TaskNode& a = g.node(3 * s);
    const TaskNode& b = g.node(3 * s + 1);
    const TaskNode& gm = g.node(3 * s + 2);
    EXPECT_EQ(a.kind, NodeKind::kBcast);
    EXPECT_EQ(a.owners, row);
    EXPECT_EQ(b.owners, col);
    EXPECT_EQ(gm.kind, NodeKind::kGemm);
    EXPECT_EQ(a.payload, s);
    EXPECT_EQ(gm.payload, s);
    // The GEMM reads both panels; the next step's panels write-after-read
    // the shared workspaces, so they wait for this GEMM.
    std::vector<int> preds = gm.preds;
    std::sort(preds.begin(), preds.end());
    if (s == 0) {
      EXPECT_EQ(preds, (std::vector<int>{a.id, b.id}));
    } else {
      EXPECT_EQ(preds, (std::vector<int>{g.node(3 * s - 1).id, a.id, b.id}));
      EXPECT_TRUE(std::count(a.preds.begin(), a.preds.end(), 3 * s - 1));
      EXPECT_TRUE(std::count(b.preds.begin(), b.preds.end(), 3 * s - 1));
    }
  }
}

TEST(StepChainGraph, TrivialAxisBecomesLocalPack) {
  const TaskGraph g =
      taskgraph::build_summa_graph(2, /*rank=*/3, {3}, {1, 3});
  for (int s = 0; s < 2; ++s) {
    const TaskNode& a = g.node(3 * s);
    EXPECT_EQ(a.kind, NodeKind::kPack);
    EXPECT_FALSE(a.is_comm());
    EXPECT_EQ(a.owner, 3);
    EXPECT_EQ(g.node(3 * s + 1).kind, NodeKind::kBcast);
  }
}

TEST(StepChainGraph, Summa25dAddsReplicationAndReduction) {
  const std::vector<int> row = {0, 1};
  const std::vector<int> col = {0, 2};
  const std::vector<int> stack = {0, 4};
  const TaskGraph g =
      taskgraph::build_summa25d_graph(2, /*rank=*/0, row, col, stack);
  ASSERT_EQ(g.size(), 2u + 6u + 1u);
  const TaskNode& rep_a = g.node(0);
  const TaskNode& rep_b = g.node(1);
  const TaskNode& red = g.node(static_cast<int>(g.size()) - 1);
  EXPECT_EQ(rep_a.kind, NodeKind::kBcast);
  EXPECT_EQ(rep_a.payload, -1);
  EXPECT_EQ(rep_a.owners, stack);
  EXPECT_EQ(rep_b.payload, -1);
  EXPECT_EQ(red.kind, NodeKind::kReduce);
  EXPECT_EQ(red.payload, -2);
  EXPECT_EQ(red.owners, stack);
  // Depth-communicator collective order: A replication, B replication,
  // then (after the last GEMM) the reduction.
  EXPECT_EQ(rep_a.succs.front(), rep_b.id);
  EXPECT_TRUE(std::count(rep_b.succs.begin(), rep_b.succs.end(), 3));
  ASSERT_EQ(red.preds.size(), 1u);
  EXPECT_EQ(g.node(red.preds.front()).kind, NodeKind::kGemm);
  EXPECT_EQ(g.node(red.preds.front()).payload, 1);
}

/// One numeric SUMMA run: gathered C plus every rank's report.
struct SummaOutcome {
  util::Matrix c;
  std::vector<SummaReport> reports;
};

SummaOutcome run_summa(std::int64_t n, SummaConfig config,
                       Scheduler scheduler) {
  config.scheduler = scheduler;
  const int p = config.pr * config.pc;
  const auto platform = device::Platform::homogeneous(p);
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, util::derive_seed(29, 1));
  util::fill_random(b, util::derive_seed(29, 2));
  std::vector<std::unique_ptr<SummaLocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(std::make_unique<SummaLocalData>(n, config, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  sgmpi::Runtime runtime(mpi_config);
  SummaOutcome out;
  out.reports.resize(static_cast<std::size_t>(p));
  runtime.run([&](sgmpi::Comm& world) {
    const std::size_t r = static_cast<std::size_t>(world.rank());
    out.reports[r] =
        summa_rank(world, n, config, processors[r], locals[r].get());
  });
  out.c = util::Matrix(n, n);
  for (int r = 0; r < p; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(out.c);
  }
  return out;
}

TEST(StepChainSchedulerMatrix, SummaBitIdenticalAcrossSchedulers) {
  const std::int64_t n = 100;
  const SummaConfig config{2, 3, 32};
  const SummaOutcome eager = run_summa(n, config, Scheduler::kEager);
  for (const Scheduler sched :
       {Scheduler::kPipelined, Scheduler::kTaskGraph}) {
    const SummaOutcome other = run_summa(n, config, sched);
    EXPECT_EQ(util::Matrix::max_abs_diff(eager.c, other.c), 0.0)
        << to_string(sched);
    for (std::size_t r = 0; r < eager.reports.size(); ++r) {
      EXPECT_EQ(eager.reports[r].steps, other.reports[r].steps);
      EXPECT_EQ(eager.reports[r].bcasts, other.reports[r].bcasts);
      EXPECT_EQ(eager.reports[r].bcast_bytes, other.reports[r].bcast_bytes);
      EXPECT_EQ(eager.reports[r].mpi_time_s, other.reports[r].mpi_time_s);
      EXPECT_EQ(eager.reports[r].flops, other.reports[r].flops);
    }
  }
}

/// One numeric 2.5D run: layer-0 gathered C plus every rank's report.
struct Summa25dOutcome {
  util::Matrix c;
  std::vector<Summa25dReport> reports;
};

Summa25dOutcome run_25d(std::int64_t n, Summa25dConfig config,
                        Scheduler scheduler) {
  config.scheduler = scheduler;
  const int p = config.q * config.q * config.c;
  const auto platform = device::Platform::homogeneous(p);
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, util::derive_seed(31, 1));
  util::fill_random(b, util::derive_seed(31, 2));
  std::vector<std::unique_ptr<Summa25dLocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(std::make_unique<Summa25dLocalData>(n, config, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  sgmpi::Runtime runtime(mpi_config);
  Summa25dOutcome out;
  out.reports.resize(static_cast<std::size_t>(p));
  runtime.run([&](sgmpi::Comm& world) {
    const std::size_t r = static_cast<std::size_t>(world.rank());
    out.reports[r] =
        summa25d_rank(world, n, config, processors[r], locals[r].get());
  });
  out.c = util::Matrix(n, n);
  for (int r = 0; r < config.q * config.q; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(out.c);
  }
  return out;
}

TEST(StepChainSchedulerMatrix, Summa25dBitIdenticalAcrossSchedulers) {
  const std::int64_t n = 60;
  const Summa25dConfig config{2, 3, 7};  // nothing divides anything
  const Summa25dOutcome eager = run_25d(n, config, Scheduler::kEager);
  for (const Scheduler sched :
       {Scheduler::kPipelined, Scheduler::kTaskGraph}) {
    const Summa25dOutcome other = run_25d(n, config, sched);
    EXPECT_EQ(util::Matrix::max_abs_diff(eager.c, other.c), 0.0)
        << to_string(sched);
    for (std::size_t r = 0; r < eager.reports.size(); ++r) {
      EXPECT_EQ(eager.reports[r].steps, other.reports[r].steps);
      EXPECT_EQ(eager.reports[r].bcasts, other.reports[r].bcasts);
      EXPECT_EQ(eager.reports[r].bcast_bytes, other.reports[r].bcast_bytes);
      EXPECT_EQ(eager.reports[r].replication_bytes,
                other.reports[r].replication_bytes);
      EXPECT_EQ(eager.reports[r].reduce_bytes, other.reports[r].reduce_bytes);
      EXPECT_EQ(eager.reports[r].mpi_time_s, other.reports[r].mpi_time_s);
    }
  }
}

}  // namespace
}  // namespace summagen::core

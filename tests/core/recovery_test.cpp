// Shrink-and-repartition recovery: SummaGen survives rank crashes and
// slowdowns with the numeric C still matching the serial reference.
#include "src/core/recovery.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/core/runner.hpp"

namespace summagen::core {
namespace {

// ---------------------------------------------------------------- unit ----

partition::PartitionSpec three_by_three() {
  partition::PartitionSpec spec;
  spec.n = 12;
  spec.subplda = 3;
  spec.subpldb = 3;
  spec.subp = {0, 0, 1,  //
               0, 1, 1,  //
               2, 2, 2};
  spec.subph = {4, 4, 4};
  spec.subpw = {4, 4, 4};
  spec.validate(3);
  return spec;
}

TEST(Repartition, CrashMovesOnlyUnfinishedCells) {
  const auto old_spec = three_by_three();
  const CellSet done = {{0, 0}, {0, 1}};  // rank 0 finished two cells
  std::int64_t moved = -1;
  const auto spec = repartition_unfinished(old_spec, done, {0, 2},
                                           {1.0, 1.0}, &moved);
  // Grid preserved.
  EXPECT_EQ(spec.subph, old_spec.subph);
  EXPECT_EQ(spec.subpw, old_spec.subpw);
  // Done cells keep their surviving owner and carry no work.
  EXPECT_EQ(spec.owner(0, 0), 0);
  EXPECT_EQ(spec.owner(0, 1), 0);
  // No cell is owned by the dead rank.
  for (int bi = 0; bi < 3; ++bi) {
    for (int bj = 0; bj < 3; ++bj) EXPECT_NE(spec.owner(bi, bj), 1);
  }
  // At least the dead rank's unfinished cells moved: (0,2), (1,1), (1,2).
  // (Rebalancing toward the weight targets may move survivor cells too.)
  EXPECT_GE(moved, 3 * 16);
}

TEST(Repartition, WeightsSkewTheAssignment) {
  const auto old_spec = three_by_three();
  // Everything unfinished, rank 1 dead, rank 2 nine times faster: rank 2
  // must receive (much) more than rank 0.
  const auto spec = repartition_unfinished(old_spec, {}, {0, 2},
                                           {1.0, 9.0}, nullptr);
  EXPECT_GT(spec.area_of(2), spec.area_of(0));
}

TEST(Repartition, SurvivingOwnersKeepTheirUnfinishedCells) {
  const auto old_spec = three_by_three();
  std::int64_t moved = -1;
  const auto spec = repartition_unfinished(old_spec, {}, {0, 1, 2},
                                           {1.0, 1.0, 1.0}, &moved);
  // Nobody died and the old layout is balanced, so nothing moves.
  EXPECT_EQ(moved, 0);
  EXPECT_EQ(spec.subp, old_spec.subp);
}

TEST(Repartition, AllDoneYieldsNoMovement) {
  const auto old_spec = three_by_three();
  CellSet done;
  for (int bi = 0; bi < 3; ++bi) {
    for (int bj = 0; bj < 3; ++bj) done.insert({bi, bj});
  }
  std::int64_t moved = -1;
  const auto spec =
      repartition_unfinished(old_spec, done, {0, 2}, {1.0, 1.0}, &moved);
  EXPECT_EQ(moved, 0);
  spec.validate(3);
}

TEST(Repartition, RejectsBadWeights) {
  const auto old_spec = three_by_three();
  EXPECT_THROW(repartition_unfinished(old_spec, {}, {0, 1}, {1.0}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(
      repartition_unfinished(old_spec, {}, {0, 1}, {1.0, 0.0}, nullptr),
      std::invalid_argument);
  EXPECT_THROW(repartition_unfinished(old_spec, {}, {}, {}, nullptr),
               std::invalid_argument);
}

// ---------------------------------------------------- end-to-end runner ----

ExperimentConfig numeric_config() {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 192;
  config.shape = partition::Shape::kSquareCorner;
  config.regime = Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.numeric = true;
  return config;
}

double fault_free_time(const ExperimentConfig& config) {
  ExperimentConfig clean = config;
  clean.faults = {};
  return run_pmm(clean).exec_time_s;
}

TEST(FaultRecovery, MidPhaseCrashStillVerifies) {
  auto config = numeric_config();
  const double t0 = fault_free_time(config);
  ASSERT_GT(t0, 0.0);
  config.faults.events.push_back(
      {sgmpi::FaultKind::kCrash, /*rank=*/1, /*at_vtime=*/0.4 * t0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.recoveries, 1);
  EXPECT_GT(res.redistributed_area, 0);
  EXPECT_GE(res.detection_latency_s, config.fault_detect_s);
  EXPECT_GT(res.recovery_vtime_s, 0.0);
  ASSERT_EQ(res.fault_records.size(), 1u);
  EXPECT_TRUE(res.fault_records[0].handled);
}

TEST(FaultRecovery, ImmediateCrashRecoversFromScratch) {
  auto config = numeric_config();
  config.faults.events.push_back(
      {sgmpi::FaultKind::kCrash, /*rank=*/1, /*at_vtime=*/0.0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.recoveries, 1);
}

TEST(FaultRecovery, SlowdownKeepsAllRanksAndVerifies) {
  auto config = numeric_config();
  const double t0 = fault_free_time(config);
  config.faults.events.push_back({sgmpi::FaultKind::kSlowdown, /*rank=*/1,
                                  /*at_vtime=*/0.4 * t0, /*factor=*/4.0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.recoveries, 1);
  // Degraded, not dead: every rank's clock runs past the fault into the
  // recovery phase.
  for (double t : res.rank_exec_s) EXPECT_GT(t, 0.4 * t0);
}

TEST(FaultRecovery, CrashUnderPipelinedSchedulerVerifies) {
  auto config = numeric_config();
  config.summagen_options.scheduler = Scheduler::kPipelined;
  const double t0 = fault_free_time(config);
  config.faults.events.push_back(
      {sgmpi::FaultKind::kCrash, /*rank=*/2, /*at_vtime=*/0.5 * t0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.recoveries, 1);
}

// Recovery is re-scheduling the pruned task graph, so it works under the
// dataflow scheduler too — the surviving chunk->broadcast dependencies and
// the comm completion order are unchanged by pruning.
TEST(FaultRecovery, CrashUnderTaskGraphSchedulerVerifies) {
  auto config = numeric_config();
  config.summagen_options.scheduler = Scheduler::kTaskGraph;
  const double t0 = fault_free_time(config);
  config.faults.events.push_back(
      {sgmpi::FaultKind::kCrash, /*rank=*/2, /*at_vtime=*/0.5 * t0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.recoveries, 1);
}

TEST(FaultRecovery, TransientDropIsAbsorbedWithoutRecovery) {
  auto config = numeric_config();
  config.summagen_options.scheduler = Scheduler::kPipelined;
  config.faults.events.push_back({sgmpi::FaultKind::kMessageDrop, /*rank=*/0,
                                  /*at_vtime=*/0.0, /*factor=*/1.0,
                                  /*drop_count=*/2});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.recoveries, 0);  // retries absorb drops; no shrink
}

TEST(FaultRecovery, LinkSlowdownOnlyStretchesTime) {
  auto config = numeric_config();
  const double t0 = fault_free_time(config);
  config.faults.events.push_back({sgmpi::FaultKind::kLinkSlowdown,
                                  /*rank=*/0, /*at_vtime=*/0.0,
                                  /*factor=*/8.0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.recoveries, 0);
  EXPECT_GT(res.exec_time_s, t0);
}

TEST(FaultRecovery, CrashInFpmRegimeVerifies) {
  auto config = numeric_config();
  config.regime = Regime::kFunctional;
  config.cpm_speeds.clear();
  const double t0 = fault_free_time(config);
  config.faults.events.push_back(
      {sgmpi::FaultKind::kCrash, /*rank=*/1, /*at_vtime=*/0.4 * t0});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << "max_abs_error=" << res.max_abs_error;
  EXPECT_GE(res.recoveries, 1);
}

TEST(FaultRecovery, NeverTriggeringPlanStillCompletes) {
  auto config = numeric_config();
  config.faults.events.push_back(
      {sgmpi::FaultKind::kCrash, /*rank=*/1, /*at_vtime=*/1.0e9});
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.recoveries, 0);
  ASSERT_EQ(res.fault_records.size(), 1u);
  EXPECT_FALSE(res.fault_records[0].triggered);
}

}  // namespace
}  // namespace summagen::core

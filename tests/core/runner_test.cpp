#include "src/core/runner.hpp"

#include "src/partition/nrrp.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace summagen::core {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 1024;
  config.shape = partition::Shape::kSquareCorner;
  config.regime = Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  return config;
}

TEST(Runner, ComputeAreasCpmSumsToTotal) {
  const auto areas = compute_areas(base_config());
  EXPECT_EQ(std::accumulate(areas.begin(), areas.end(), std::int64_t{0}),
            1024LL * 1024);
  // GPU (speed 2.0) gets the biggest share.
  EXPECT_GT(areas[1], areas[0]);
  EXPECT_GT(areas[0], areas[2]);
}

TEST(Runner, ComputeAreasDerivesSpeedsWhenEmpty) {
  auto config = base_config();
  config.cpm_speeds.clear();
  const auto areas = compute_areas(config);
  EXPECT_EQ(std::accumulate(areas.begin(), areas.end(), std::int64_t{0}),
            1024LL * 1024);
  EXPECT_GT(areas[1], areas[0]);
}

TEST(Runner, ComputeAreasFpmRegime) {
  auto config = base_config();
  config.regime = Regime::kFunctional;
  config.cpm_speeds.clear();
  const auto areas = compute_areas(config);
  EXPECT_EQ(std::accumulate(areas.begin(), areas.end(), std::int64_t{0}),
            1024LL * 1024);
}

TEST(Runner, PresetAreasBypassPartitioning) {
  auto config = base_config();
  config.n = 64;
  config.preset_areas = {1000, 2000, 64 * 64 - 3000};
  const auto res = run_pmm(config);
  EXPECT_EQ(res.areas, config.preset_areas);
}

TEST(Runner, PresetAreasSizeMismatchThrows) {
  auto config = base_config();
  config.preset_areas = {10, 20};
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, SpeedCountMismatchThrows) {
  auto config = base_config();
  config.cpm_speeds = {1.0, 2.0};
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, NumericPlaneRefusedAtPaperScale) {
  auto config = base_config();
  config.n = 25600;
  config.numeric = true;
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, ModeledRunProducesConsistentMetrics) {
  const auto res = run_pmm(base_config());
  EXPECT_GT(res.exec_time_s, 0.0);
  EXPECT_GT(res.comp_time_s, 0.0);
  EXPECT_GE(res.comm_time_s, 0.0);
  EXPECT_GT(res.tflops, 0.0);
  ASSERT_EQ(res.rank_exec_s.size(), 3u);
  // Parallel time is the max of rank completion times.
  const double max_rank =
      *std::max_element(res.rank_exec_s.begin(), res.rank_exec_s.end());
  EXPECT_DOUBLE_EQ(res.exec_time_s, max_rank);
  // Every rank's buckets sum to its completion time.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(res.rank_comp_s[r] + res.rank_comm_s[r] + res.rank_idle_s[r],
                res.rank_exec_s[r], 1e-9);
  }
  // Reports account for every element of C: total flops == 2 n^3.
  std::int64_t flops = 0;
  for (const auto& rep : res.reports) flops += rep.flops;
  EXPECT_EQ(flops, 2 * 1024LL * 1024 * 1024);
}

TEST(Runner, ModeledRunIsDeterministic) {
  const auto r1 = run_pmm(base_config());
  const auto r2 = run_pmm(base_config());
  EXPECT_DOUBLE_EQ(r1.exec_time_s, r2.exec_time_s);
  EXPECT_DOUBLE_EQ(r1.comp_time_s, r2.comp_time_s);
  EXPECT_DOUBLE_EQ(r1.comm_time_s, r2.comm_time_s);
  EXPECT_EQ(r1.areas, r2.areas);
}

TEST(Runner, EventsAndEnergyOnlyWhenRequested) {
  auto config = base_config();
  const auto quiet = run_pmm(config);
  EXPECT_FALSE(quiet.has_energy);
  EXPECT_TRUE(quiet.events.empty());

  config.record_events = true;
  const auto traced = run_pmm(config);
  EXPECT_TRUE(traced.has_energy);
  EXPECT_FALSE(traced.events.empty());
  EXPECT_GT(traced.energy.dynamic_j, 0.0);
  EXPECT_NEAR(traced.energy.static_j,
              230.0 * traced.exec_time_s, 1e-6);
}

TEST(Runner, EnergyConsistentWithEventIntegration) {
  auto config = base_config();
  config.record_events = true;
  const auto res = run_pmm(config);
  const auto recomputed = energy::dynamic_energy_exact(
      res.events, config.platform, res.exec_time_s);
  EXPECT_DOUBLE_EQ(recomputed.dynamic_j, res.energy.dynamic_j);
}

TEST(Runner, NumericMatchesModeledTimes) {
  // The virtual-time metrics must not depend on the data plane.
  auto config = base_config();
  config.n = 128;
  const auto modeled = run_pmm(config);
  config.numeric = true;
  const auto numeric = run_pmm(config);
  EXPECT_TRUE(numeric.verified);
  EXPECT_DOUBLE_EQ(modeled.exec_time_s, numeric.exec_time_s);
  EXPECT_DOUBLE_EQ(modeled.comm_time_s, numeric.comm_time_s);
}

TEST(Runner, FastMmNumericRunVerifies) {
  // The fast-MM kernel is norm-bound accurate, not bit-identical; the
  // runner widens its elementwise tolerance by the reachable depth.
  auto config = base_config();
  config.n = 256;
  config.numeric = true;
  config.kernel.fastmm = blas::FastMmKind::kStrassen;
  config.kernel.fastmm_crossover = 32;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.alloc.fastmm_leases, 0);
}

TEST(Runner, FastMmRefusedWithFaults) {
  // Fault recovery re-executes cells under different sub-shapes, whose
  // verification demands bit-determinism — fast-MM cannot provide it.
  auto config = base_config();
  config.kernel.fastmm = blas::FastMmKind::kAuto;
  config.faults.events.push_back({sgmpi::FaultKind::kCrash, /*rank=*/1, 0.5});
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, FastMmRefusedWithRepartition) {
  auto config = base_config();
  config.kernel.fastmm = blas::FastMmKind::kStrassen;
  config.repartition.enabled = true;
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, GranularityForwarded) {
  auto config = base_config();
  config.n = 256;
  config.granularity = 32;
  const auto res = run_pmm(config);
  for (auto h : res.spec.subph) EXPECT_EQ(h % 32, 0);
  for (auto w : res.spec.subpw) EXPECT_EQ(w % 32, 0);
}

TEST(Runner, TwoProcessorPlatformWorks) {
  ExperimentConfig config;
  config.platform = device::Platform::synthetic({1.0, 3.0});
  config.n = 128;
  config.shape = partition::Shape::kSquareCorner;
  config.cpm_speeds = {1.0, 3.0};
  config.numeric = true;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);
}

TEST(Runner, SingleProcessorDegenerateCase) {
  ExperimentConfig config;
  config.platform = device::Platform::homogeneous(1);
  config.n = 64;
  config.shape = partition::Shape::kOneDimensional;
  config.cpm_speeds = {1.0};
  config.numeric = true;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.comm_time_s, 0.0);  // nothing to communicate
}

TEST(Runner, RejectsBadConfigs) {
  auto config = base_config();
  config.n = 0;
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, NoiseProducesRunToRunVariance) {
  auto config = base_config();
  config.noise_sigma = 0.05;
  config.noise_seed = 1;
  const auto r1 = run_pmm(config);
  config.noise_seed = 2;
  const auto r2 = run_pmm(config);
  EXPECT_NE(r1.exec_time_s, r2.exec_time_s);
  // Same seed replays identically.
  config.noise_seed = 1;
  const auto r3 = run_pmm(config);
  EXPECT_DOUBLE_EQ(r1.exec_time_s, r3.exec_time_s);
  // Noise is bounded-ish: a 5% sigma should not move times by 3x.
  EXPECT_NEAR(r2.exec_time_s / r1.exec_time_s, 1.0, 0.5);
}

TEST(Runner, NoiseDoesNotBreakNumericVerification) {
  auto config = base_config();
  config.n = 96;
  config.numeric = true;
  config.noise_sigma = 0.1;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified);  // noise affects time, never values
}

TEST(Runner, LRectangleExtensionRunsEndToEnd) {
  auto config = base_config();
  config.n = 128;
  config.shape = partition::Shape::kLRectangle;
  config.numeric = true;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << res.max_abs_error;
}

TEST(Runner, PresetSpecBypassesShapeConstruction) {
  // Drive run_pmm with an NRRP layout over a 2-node cluster — the
  // future-work pipeline end to end, numerically verified.
  const std::int64_t n = 120;
  const auto platform = device::Platform::cluster(
      device::Platform::synthetic({1.0, 2.0, 0.9}), 2);
  std::vector<double> speeds = {1.0, 2.0, 0.9, 1.0, 2.0, 0.9};
  const auto areas = partition::partition_areas_cpm(n * n, speeds);

  core::ExperimentConfig config;
  config.platform = platform;
  config.n = n;
  config.preset_spec = partition::nrrp_partition(n, areas);
  config.numeric = true;
  const auto res = run_pmm(config);
  EXPECT_TRUE(res.verified) << res.max_abs_error;
  ASSERT_EQ(res.areas.size(), 6u);
  std::int64_t sum = 0;
  for (auto a : res.areas) sum += a;
  EXPECT_EQ(sum, n * n);
}

TEST(Runner, PresetSpecSizeMismatchThrows) {
  auto config = base_config();
  config.preset_spec = partition::build_shape(
      partition::Shape::kOneDimensional, 64,
      partition::partition_areas_cpm(64 * 64, {1.0, 2.0, 0.9}));
  config.n = 128;  // != spec.n
  EXPECT_THROW(run_pmm(config), std::invalid_argument);
}

TEST(Runner, ClusterTopologyRaisesCommTime) {
  // The same layout costs more MPI time when the ranks straddle a slow
  // network than when they share a node.
  const std::int64_t n = 2048;
  const auto single = device::Platform::synthetic({1.0, 1.0, 1.0});
  auto spread = single;
  spread.node_of = {0, 1, 2};
  spread.internode_link = trace::HockneyParams{1.0e-4, 1.0 / 0.5e9};

  core::ExperimentConfig config;
  config.n = n;
  config.shape = partition::Shape::kOneDimensional;
  config.cpm_speeds = {1.0, 1.0, 1.0};
  config.platform = single;
  const auto fast = run_pmm(config);
  config.platform = spread;
  const auto slow = run_pmm(config);
  EXPECT_GT(slow.comm_time_s, 2.0 * fast.comm_time_s);
  EXPECT_DOUBLE_EQ(slow.comp_time_s, fast.comp_time_s);
}

TEST(DefaultFpmModels, OnePerDeviceCoveringN) {
  const auto platform = device::Platform::hclserver1();
  const auto models = default_fpm_models(platform, 4096);
  ASSERT_EQ(models.size(), 3u);
  for (const auto& m : models) {
    EXPECT_GE(m.points().back().edge, 4096.0);
    EXPECT_FALSE(m.is_constant());
  }
}

TEST(DefaultCpmSpeeds, NormalisedToFirstDevice) {
  const auto speeds =
      default_cpm_speeds(device::Platform::hclserver1());
  ASSERT_EQ(speeds.size(), 3u);
  EXPECT_DOUBLE_EQ(speeds[0], 1.0);
}

}  // namespace
}  // namespace summagen::core

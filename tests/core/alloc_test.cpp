// Allocation-behaviour acceptance tests for the zero-copy data plane.
//
// The pre-refactor plane allocated private sub-partition copies, broadcast
// staging buffers, and fresh workspaces on every run — 69-96 MiB per
// N=1024 numeric execution (the `kSeedAllocBytes` table below, measured on
// the seed implementation). The refactored plane reads operands as views
// over the globals and leases every transient from the BufferPool, so once
// the pool is warm a run performs ZERO data-plane heap allocations: at
// least 5x below the seed on every shape, and in particular nothing per
// k-chunk in the pipelined scheduler's steady state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/core/runner.hpp"
#include "src/util/accounting.hpp"

namespace summagen {
namespace {

using core::ExperimentConfig;
using core::ExperimentResult;
using core::Scheduler;
using partition::Shape;

struct ShapeCase {
  Shape shape;
  const char* name;
  // Seed-implementation bytes allocated per N=1024 numeric run (measured
  // over the execution window: local stores + execution + C gather), for
  // the eager and pipelined schedulers respectively.
  std::int64_t seed_eager_bytes;
  std::int64_t seed_pipelined_bytes;
};

constexpr std::int64_t kMiB = 1024 * 1024;

const ShapeCase kCases[] = {
    {Shape::kSquareCorner, "square_corner",
     static_cast<std::int64_t>(74.26 * kMiB),
     static_cast<std::int64_t>(96.08 * kMiB)},
    {Shape::kSquareRectangle, "square_rectangle",
     static_cast<std::int64_t>(74.18 * kMiB),
     static_cast<std::int64_t>(86.42 * kMiB)},
    {Shape::kBlockRectangle, "block_rectangle",
     static_cast<std::int64_t>(69.39 * kMiB),
     static_cast<std::int64_t>(74.87 * kMiB)},
    {Shape::kOneDimensional, "one_dimensional",
     static_cast<std::int64_t>(72.27 * kMiB),
     static_cast<std::int64_t>(82.05 * kMiB)},
};

ExperimentConfig numeric_config(Shape shape, Scheduler scheduler) {
  ExperimentConfig config;
  config.n = 1024;
  config.shape = shape;
  config.numeric = true;
  config.summagen_options.scheduler = scheduler;
  return config;
}

// Runs every shape twice per scheduler: the first run may miss the pool
// (first touch of each size class), the second must be allocation-free and
// comfortably beat the >= 5x acceptance bound against the seed baseline.
TEST(AllocSteadyState, WarmNumericRunsAllocateNothing) {
  for (const ShapeCase& sc : kCases) {
    for (Scheduler scheduler : {Scheduler::kEager, Scheduler::kPipelined}) {
      const ExperimentConfig config = numeric_config(sc.shape, scheduler);
      const ExperimentResult cold = core::run_pmm(config);
      ASSERT_TRUE(cold.verified) << sc.name;
      const ExperimentResult warm = core::run_pmm(config);
      ASSERT_TRUE(warm.verified) << sc.name;

      const std::string label =
          std::string(sc.name) +
          (scheduler == Scheduler::kEager ? "/eager" : "/pipelined");
      const std::int64_t seed_bytes = scheduler == Scheduler::kEager
                                          ? sc.seed_eager_bytes
                                          : sc.seed_pipelined_bytes;
      // >= 5x reduction against the seed implementation's bytes, asserted
      // at 16x so the bound documents the real margin.
      EXPECT_LE(warm.alloc.alloc_bytes, seed_bytes / 16) << label;
      // The steady-state property: operands are views, C is written in
      // place, every workspace comes from the pool. A handful of residual
      // misses are legal — the pool caches by observed *concurrent* use,
      // and thread scheduling can raise a size class's high-water mark on
      // any run — but allocation must no longer scale with the problem.
      EXPECT_LE(warm.alloc.allocs, 4) << label;
      EXPECT_GE(warm.alloc.pool_hit_rate(), 0.95) << label;
      // Copies are panel landings only — strictly below the seed's volume
      // (which staged every broadcast through scratch and gathered C).
      EXPECT_LT(warm.alloc.copy_bytes, seed_bytes) << label;
    }
  }
}

// Zero per-k-chunk allocations in the pipelined steady state: k-chunk
// count scales with n/panel, so if any per-chunk allocation existed the
// delta between two warm runs at different chunk counts would show it.
TEST(AllocSteadyState, PipelinedChunkCountDoesNotChangeAllocations) {
  ExperimentConfig config =
      numeric_config(Shape::kSquareCorner, Scheduler::kPipelined);
  config.n = 512;
  core::run_pmm(config);  // warm the pool for this problem size
  const ExperimentResult coarse = core::run_pmm(config);
  config.summagen_options.bcast_panel_rows = 64;  // more chunks per frame
  core::run_pmm(config);  // warm any panel-size-dependent classes
  const ExperimentResult fine = core::run_pmm(config);
  ASSERT_TRUE(coarse.verified);
  ASSERT_TRUE(fine.verified);
  // The fine run executes ~8x more k-chunks than the coarse run; if any
  // per-chunk allocation existed it would show up as hundreds of allocs.
  EXPECT_LE(coarse.alloc.allocs, 4);
  EXPECT_LE(fine.alloc.allocs, 4);
  EXPECT_LE(fine.alloc.alloc_bytes, 4 * kMiB);
}

}  // namespace
}  // namespace summagen

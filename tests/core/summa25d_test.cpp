#include "src/core/summa25d.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/reference.hpp"
#include "src/device/platform.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {
namespace {

struct RunOutcome {
  double error = 0.0;
  std::vector<Summa25dReport> reports;
};

RunOutcome run_25d(std::int64_t n, const Summa25dConfig& config,
                   std::uint64_t seed) {
  const int p = config.q * config.q * config.c;
  const auto platform = device::Platform::homogeneous(p);
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, util::derive_seed(seed, 1));
  util::fill_random(b, util::derive_seed(seed, 2));
  std::vector<std::unique_ptr<Summa25dLocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(
        std::make_unique<Summa25dLocalData>(n, config, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  sgmpi::Runtime runtime(mpi_config);
  RunOutcome outcome;
  outcome.reports.resize(static_cast<std::size_t>(p));
  runtime.run([&](sgmpi::Comm& world) {
    outcome.reports[static_cast<std::size_t>(world.rank())] = summa25d_rank(
        world, n, config, processors[static_cast<std::size_t>(world.rank())],
        locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(n, n);
  for (int r = 0; r < config.q * config.q; ++r) {
    locals[static_cast<std::size_t>(r)]->gather_c(c);
  }
  outcome.error = util::Matrix::max_abs_diff(c, reference_multiply(a, b));
  return outcome;
}

struct Case {
  std::int64_t n;
  Summa25dConfig config;
};

class Summa25dCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(Summa25dCorrectness, MatchesReference) {
  const auto& c = GetParam();
  const auto outcome = run_25d(c.n, c.config, 17);
  EXPECT_LE(outcome.error, gemm_tolerance(c.n))
      << "n=" << c.n << " q=" << c.config.q << " c=" << c.config.c;
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndLayers, Summa25dCorrectness,
    ::testing::Values(Case{64, {1, 1, 16}},   // serial
                      Case{64, {2, 1, 16}},   // plain SUMMA grid
                      Case{64, {2, 2, 16}},   // one replica layer
                      Case{64, {2, 4, 8}},    // deep stack
                      Case{60, {2, 3, 7}},    // nothing divides anything
                      Case{96, {3, 2, 32}},   // 3x3 grid, 2 layers
                      Case{64, {1, 4, 16}}),  // degenerate 1x1 grid, layers
    [](const auto& param_info) {
      const auto& c = param_info.param;
      return "n" + std::to_string(c.n) + "_q" + std::to_string(c.config.q) +
             "_c" + std::to_string(c.config.c) + "_b" +
             std::to_string(c.config.panel);
    });

TEST(Summa25d, ReplicationCutsPanelTraffic) {
  // At equal total processor count, trading grid area for layers divides
  // each rank's SUMMA broadcast traffic (the 2.5D bandwidth win).
  const std::int64_t n = 256;
  const auto flat = run_25d(n, {4, 1, 32}, 3);    // 16 ranks, no layers
  const auto stacked = run_25d(n, {2, 4, 32}, 3); // 16 ranks, 4 layers
  EXPECT_LE(stacked.error, gemm_tolerance(n));
  // Compare the max per-rank panel-broadcast bytes.
  auto max_bytes = [](const RunOutcome& o) {
    std::int64_t m = 0;
    for (const auto& r : o.reports) m = std::max(m, r.bcast_bytes);
    return m;
  };
  EXPECT_LT(max_bytes(stacked), max_bytes(flat));
  // And the layers pay replication + reduction instead.
  EXPECT_GT(stacked.reports[0].replication_bytes, 0);
  EXPECT_GT(stacked.reports[0].reduce_bytes, 0);
  EXPECT_EQ(flat.reports[0].replication_bytes, 0);
}

TEST(Summa25d, FlopsConservedAcrossConfigs) {
  const std::int64_t n = 120;
  for (const auto& config :
       {Summa25dConfig{2, 1, 32}, Summa25dConfig{2, 2, 32},
        Summa25dConfig{2, 3, 32}}) {
    const auto outcome = run_25d(n, config, 5);
    std::int64_t flops = 0;
    for (const auto& r : outcome.reports) flops += r.flops;
    EXPECT_EQ(flops, 2 * n * n * n) << "c=" << config.c;
  }
}

TEST(Summa25d, ModeledPlaneRuns) {
  const Summa25dConfig config{2, 2, 64};
  const auto platform = device::Platform::homogeneous(8);
  const auto processors = platform.processors();
  sgmpi::Config mpi_config;
  mpi_config.nranks = 8;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    const auto rep = summa25d_rank(
        world, 512, config,
        processors[static_cast<std::size_t>(world.rank())], nullptr);
    EXPECT_GT(rep.flops, 0);
    EXPECT_GT(rep.mpi_time_s, 0.0);
  });
  EXPECT_GT(runtime.max_vtime(), 0.0);
}

TEST(Summa25d, HeterogeneousProcessorsStillCorrect) {
  // The grid algorithms don't balance load across heterogeneous devices,
  // but they must stay numerically correct on them.
  const std::int64_t n = 64;
  const Summa25dConfig config{2, 2, 16};
  const auto platform =
      device::Platform::synthetic({1.0, 3.0, 0.5, 2.0, 1.5, 1.0, 0.7, 2.5});
  const auto processors = platform.processors();
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  std::vector<std::unique_ptr<Summa25dLocalData>> locals;
  for (int r = 0; r < 8; ++r) {
    locals.push_back(std::make_unique<Summa25dLocalData>(n, config, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = 8;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    summa25d_rank(world, n, config,
                  processors[static_cast<std::size_t>(world.rank())],
                  locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(n, n);
  for (int r = 0; r < 4; ++r) locals[static_cast<std::size_t>(r)]->gather_c(c);
  EXPECT_LE(util::Matrix::max_abs_diff(c, reference_multiply(a, b)),
            gemm_tolerance(n));
  // The slow device's clock dominates the makespan.
  EXPECT_GT(runtime.max_vtime(), 0.0);
}

TEST(Summa25d, RejectsBadConfigs) {
  const auto platform = device::Platform::homogeneous(4);
  const auto processors = platform.processors();
  sgmpi::Config mpi_config;
  mpi_config.nranks = 4;
  sgmpi::Runtime runtime(mpi_config);
  EXPECT_THROW(runtime.run([&](sgmpi::Comm& world) {
    summa25d_rank(world, 64, {2, 2, 16},  // needs 8 ranks, world has 4
                  processors[static_cast<std::size_t>(world.rank())],
                  nullptr);
  }),
               std::invalid_argument);

  util::Matrix a(8, 8), b(8, 8);
  EXPECT_THROW(Summa25dLocalData(8, {0, 1, 1}, 0, a, b),
               std::invalid_argument);
  EXPECT_THROW(Summa25dLocalData(8, {2, 1, 1}, 99, a, b),
               std::invalid_argument);
}

TEST(Summa25d, NonZeroLayerGatherRejected) {
  util::Matrix a(16, 16), b(16, 16);
  Summa25dLocalData local(16, {2, 2, 4}, /*rank=*/5, a, b);
  EXPECT_FALSE(local.on_layer_zero());
  util::Matrix c(16, 16);
  EXPECT_THROW(local.gather_c(c), std::logic_error);
}

}  // namespace
}  // namespace summagen::core

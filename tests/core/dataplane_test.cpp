#include "src/core/dataplane.hpp"

#include <gtest/gtest.h>

#include "src/partition/shapes.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {
namespace {

partition::PartitionSpec corner16() {
  return partition::build_shape(partition::Shape::kSquareCorner, 16,
                                {81, 159, 16});
}

TEST(LocalData, DefaultIsModeledPlane) {
  LocalData d;
  EXPECT_FALSE(d.numeric());
  util::Matrix c(16, 16);
  EXPECT_THROW(d.gather_c(corner16(), c), std::logic_error);
}

TEST(LocalData, ExtractsExactlyOwnedParts) {
  const auto spec = corner16();
  util::Matrix a(16, 16), b(16, 16);
  util::fill_random(a, 1);
  util::fill_random(b, 2);

  const LocalData d0(spec, 0, a, b);
  EXPECT_TRUE(d0.numeric());
  EXPECT_TRUE(d0.owns(0, 0));
  EXPECT_FALSE(d0.owns(0, 1));
  EXPECT_EQ(d0.a_part(0, 0).rows(), 9);
  EXPECT_EQ(d0.a_part(0, 0).cols(), 9);
  EXPECT_EQ(d0.a_part(0, 0)(0, 0), a(0, 0));
  EXPECT_EQ(d0.a_part(0, 0)(8, 8), a(8, 8));
  EXPECT_THROW(d0.a_part(0, 1), std::out_of_range);
  EXPECT_THROW(d0.b_part(2, 2), std::out_of_range);

  const LocalData d2(spec, 2, a, b);
  EXPECT_EQ(d2.a_part(2, 2)(0, 0), a(12, 12));
  EXPECT_EQ(d2.b_part(2, 2)(3, 3), b(15, 15));
}

TEST(LocalData, CRectIsCoveringRectangle) {
  const auto spec = corner16();
  util::Matrix a(16, 16), b(16, 16);
  const LocalData d1(spec, 1, a, b);
  EXPECT_EQ(d1.c_rect().rows, 16);
  EXPECT_EQ(d1.c_rect().cols, 16);
  EXPECT_EQ(d1.c().rows(), 16);

  const LocalData d2(spec, 2, a, b);
  EXPECT_EQ(d2.c_rect().row0, 12);
  EXPECT_EQ(d2.c().rows(), 4);
  EXPECT_EQ(d2.c().cols(), 4);
}

TEST(LocalData, GatherWritesOnlyOwnedCells) {
  const auto spec = corner16();
  util::Matrix a(16, 16), b(16, 16);
  LocalData d0(spec, 0, a, b);
  d0.c().fill(7.0);  // pretend rank 0 computed its 9x9 zone

  util::Matrix global(16, 16, -1.0);
  d0.gather_c(spec, global);
  EXPECT_EQ(global(0, 0), 7.0);
  EXPECT_EQ(global(8, 8), 7.0);
  EXPECT_EQ(global(0, 9), -1.0);   // P1's cell untouched
  EXPECT_EQ(global(15, 15), -1.0);  // P2's cell untouched
}

TEST(LocalData, GatherOfNonRectangularZone) {
  const auto spec = corner16();
  util::Matrix a(16, 16), b(16, 16);
  LocalData d1(spec, 1, a, b);
  d1.c().fill(3.0);
  util::Matrix global(16, 16, 0.0);
  d1.gather_c(spec, global);
  // P1's zone excludes the two corner squares.
  EXPECT_EQ(global(0, 0), 0.0);
  EXPECT_EQ(global(15, 15), 0.0);
  EXPECT_EQ(global(0, 12), 3.0);
  EXPECT_EQ(global(12, 0), 3.0);
  EXPECT_EQ(global(10, 10), 3.0);
}

TEST(LocalData, RejectsWrongGlobalShape) {
  const auto spec = corner16();
  util::Matrix a(16, 15), b(16, 16);
  EXPECT_THROW(LocalData(spec, 0, a, b), std::invalid_argument);
}

}  // namespace
}  // namespace summagen::core

// Metamorphic properties of the full PMM pipeline: relations that must
// hold between related runs, independent of absolute results.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/reference.hpp"
#include "src/core/runner.hpp"
#include "src/util/rng.hpp"

namespace summagen::core {
namespace {

// Numeric SummaGen product over a shape with explicit inputs.
util::Matrix product(const partition::PartitionSpec& spec,
                     const device::Platform& platform, const util::Matrix& a,
                     const util::Matrix& b) {
  const int p = platform.nprocs();
  const auto processors = platform.processors();
  std::vector<std::unique_ptr<LocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(std::make_unique<LocalData>(spec, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    summagen_rank(world, spec,
                  processors[static_cast<std::size_t>(world.rank())],
                  locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(spec.n, spec.n);
  for (int r = 0; r < p; ++r) locals[static_cast<std::size_t>(r)]->gather_c(spec, c);
  return c;
}

partition::PartitionSpec test_spec(std::int64_t n) {
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  return partition::build_shape(partition::Shape::kSquareCorner, n, areas);
}

TEST(Metamorphic, ScalingAScalesC) {
  const std::int64_t n = 96;
  const auto platform = device::Platform::synthetic({1.0, 2.0, 0.9});
  const auto spec = test_spec(n);
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  const auto c1 = product(spec, platform, a, b);
  util::Matrix a2 = a;
  for (double& v : a2.span()) v *= 2.0;
  const auto c2 = product(spec, platform, a2, b);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c2(i, j), 2.0 * c1(i, j), 1e-10);
    }
  }
}

TEST(Metamorphic, IdentityBReproducesA) {
  const std::int64_t n = 64;
  const auto platform = device::Platform::synthetic({1.0, 2.0, 0.9});
  const auto spec = test_spec(n);
  util::Matrix a(n, n), identity(n, n);
  util::fill_random(a, 3);
  for (std::int64_t i = 0; i < n; ++i) identity(i, i) = 1.0;
  const auto c = product(spec, platform, a, identity);
  EXPECT_LE(util::Matrix::max_abs_diff(c, a), 1e-12);
}

TEST(Metamorphic, ZeroAGivesZeroC) {
  const std::int64_t n = 64;
  const auto platform = device::Platform::synthetic({1.0, 2.0, 0.9});
  const auto spec = test_spec(n);
  util::Matrix zero(n, n), b(n, n);
  util::fill_random(b, 4);
  const auto c = product(spec, platform, zero, b);
  for (double v : c.span()) EXPECT_EQ(v, 0.0);
}

TEST(Metamorphic, ResultIndependentOfShape) {
  // All shapes compute the same C (bitwise, since the kernel reduction
  // order over k is identical for every sub-partition).
  const std::int64_t n = 80;
  const auto platform = device::Platform::synthetic({1.0, 2.0, 0.9});
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  util::Matrix a(n, n), b(n, n);
  util::fill_random(a, 5);
  util::fill_random(b, 6);
  const auto base = product(
      partition::build_shape(partition::Shape::kSquareCorner, n, areas),
      platform, a, b);
  for (auto s : partition::extended_shapes()) {
    const auto c = product(partition::build_shape(s, n, areas), platform, a,
                           b);
    EXPECT_LE(util::Matrix::max_abs_diff(c, base), 1e-12)
        << partition::shape_name(s);
  }
}

TEST(Metamorphic, ExecTimeMonotoneInProblemSize) {
  // Under a fixed shape/regime, the modeled time grows with n.
  double prev = 0.0;
  for (std::int64_t n : {512, 1024, 2048, 4096}) {
    ExperimentConfig config;
    config.n = n;
    config.shape = partition::Shape::kBlockRectangle;
    config.cpm_speeds = {1.0, 2.0, 0.9};
    const double t = run_pmm(config).exec_time_s;
    EXPECT_GT(t, prev) << "n=" << n;
    prev = t;
  }
}

TEST(Metamorphic, FasterPlatformIsFaster) {
  ExperimentConfig config;
  config.n = 1024;
  config.shape = partition::Shape::kOneDimensional;
  config.cpm_speeds = {1.0, 1.0, 1.0};
  config.platform = device::Platform::synthetic({1.0, 1.0, 1.0}, 100e9);
  const auto slow = run_pmm(config);
  config.platform = device::Platform::synthetic({1.0, 1.0, 1.0}, 400e9);
  const auto fast = run_pmm(config);
  // Computation scales exactly with device speed; communication does not,
  // so total time improves by less than 4x.
  EXPECT_NEAR(slow.comp_time_s / fast.comp_time_s, 4.0, 1e-6);
  EXPECT_GT(slow.exec_time_s / fast.exec_time_s, 1.5);
  EXPECT_DOUBLE_EQ(slow.comm_time_s, fast.comm_time_s);
}

TEST(Metamorphic, CommVolumeIndependentOfDeviceSpeeds) {
  // The broadcast bytes depend only on the partition geometry, not on how
  // fast the devices are.
  const std::int64_t n = 1024;
  const auto areas = partition::partition_areas_cpm(n * n, {1.0, 2.0, 0.9});
  auto total_bytes = [&](double unit) {
    ExperimentConfig config;
    config.n = n;
    config.platform = device::Platform::synthetic({1.0, 2.0, 0.9}, unit);
    config.cpm_speeds = {1.0, 2.0, 0.9};
    config.preset_areas = areas;
    config.shape = partition::Shape::kSquareRectangle;
    const auto res = run_pmm(config);
    std::int64_t bytes = 0;
    for (const auto& rep : res.reports) bytes += rep.bcast_bytes;
    return bytes;
  };
  EXPECT_EQ(total_bytes(50e9), total_bytes(800e9));
}

TEST(Metamorphic, ContentionNeverSpeedsUp) {
  ExperimentConfig config;
  config.n = 2048;
  config.shape = partition::Shape::kBlockRectangle;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.contended = true;
  const double loaded = run_pmm(config).exec_time_s;
  config.contended = false;
  const double solo = run_pmm(config).exec_time_s;
  EXPECT_LE(solo, loaded);
}

TEST(Metamorphic, SlowerNetworkOnlyAffectsCommTime) {
  ExperimentConfig config;
  config.n = 2048;
  config.shape = partition::Shape::kSquareCorner;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  const auto fast = run_pmm(config);
  config.platform.mpi_link.beta_s_per_byte *= 100.0;
  const auto slow = run_pmm(config);
  EXPECT_GT(slow.comm_time_s, 10.0 * fast.comm_time_s);
  EXPECT_DOUBLE_EQ(slow.comp_time_s, fast.comp_time_s);
}

}  // namespace
}  // namespace summagen::core

// Tests of the size-classed BufferPool and its accounting hooks: freelist
// reuse, hit/miss counters, residency tracking, trim, and the RAII handle's
// move semantics. A private pool instance keeps the pointer-identity
// assertions deterministic (the process singleton is shared with every
// other test in the binary).
#include <gtest/gtest.h>

#include <utility>

#include "src/util/accounting.hpp"
#include "src/util/buffer_pool.hpp"

namespace summagen::util {
namespace {

TEST(BufferPool, AcquireDeliversWritableBufferOfRequestedSize) {
  BufferPool pool;
  PooledBuffer buf = pool.acquire(1000);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_GE(buf.capacity(), 1000u);
  for (std::size_t i = 0; i < buf.size(); ++i) buf.data()[i] = 1.5;
  EXPECT_EQ(buf.data()[999], 1.5);
}

TEST(BufferPool, ZeroSizeAcquireReturnsEmptyHandle) {
  BufferPool pool;
  PooledBuffer buf = pool.acquire(0);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.cached_count(), 0u);
}

TEST(BufferPool, ReleaseThenAcquireReusesTheSameBlock) {
  BufferPool pool;
  double* first = nullptr;
  {
    PooledBuffer buf = pool.acquire(500);
    first = buf.data();
  }
  EXPECT_EQ(pool.cached_count(), 1u);
  PooledBuffer again = pool.acquire(500);
  EXPECT_EQ(again.data(), first);
  EXPECT_EQ(pool.cached_count(), 0u);
}

TEST(BufferPool, DifferentSizeClassesDoNotShareBlocks) {
  BufferPool pool;
  double* small = nullptr;
  { small = pool.acquire(256).data(); }
  // 10000 doubles rounds to a larger power-of-two class: the cached small
  // block cannot serve it.
  PooledBuffer big = pool.acquire(10000);
  EXPECT_NE(big.data(), small);
  EXPECT_EQ(pool.cached_count(), 1u);
}

TEST(BufferPool, HitAndMissAccounting) {
  BufferPool pool;
  const DataPlaneStats base = data_plane_stats();
  { PooledBuffer b = pool.acquire(300); }        // miss: fresh allocation
  { PooledBuffer b = pool.acquire(300); }        // hit: freelist pop
  const DataPlaneStats d = data_plane_stats().since(base);
  EXPECT_EQ(d.pool_acquires, 2);
  EXPECT_EQ(d.pool_hits, 1);
  EXPECT_EQ(d.allocs, 1);  // only the miss touched the heap
  EXPECT_GT(d.alloc_bytes, 0);
}

TEST(BufferPool, TrimFreesCachedBuffersAndResidency) {
  BufferPool pool;
  { PooledBuffer b = pool.acquire(400); }
  ASSERT_EQ(pool.cached_count(), 1u);
  const DataPlaneStats before = data_plane_stats();
  pool.trim();
  EXPECT_EQ(pool.cached_count(), 0u);
  const DataPlaneStats after = data_plane_stats();
  EXPECT_LT(after.pool_resident_bytes, before.pool_resident_bytes);
  // After a trim the next acquire is a miss again.
  const DataPlaneStats base = data_plane_stats();
  { PooledBuffer b = pool.acquire(400); }
  EXPECT_EQ(data_plane_stats().since(base).pool_hits, 0);
}

TEST(BufferPool, ExplicitReleaseReturnsStorageEarly) {
  BufferPool pool;
  PooledBuffer buf = pool.acquire(600);
  ASSERT_NE(buf.data(), nullptr);
  buf.release();
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.cached_count(), 1u);
  buf.release();  // double release is a no-op
  EXPECT_EQ(pool.cached_count(), 1u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool;
  PooledBuffer a = pool.acquire(700);
  double* ptr = a.data();
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(a.empty());
  PooledBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), ptr);
  // Only one handle owns the block, so only one return happens.
  c.release();
  EXPECT_EQ(pool.cached_count(), 1u);
}

TEST(BufferPool, PeakResidencyIsMonotone) {
  BufferPool pool;
  const DataPlaneStats base = data_plane_stats();
  PooledBuffer a = pool.acquire(2000);
  PooledBuffer b = pool.acquire(2000);
  const std::int64_t peak_while_live = data_plane_stats().pool_peak_resident_bytes;
  a.release();
  b.release();
  pool.trim();
  EXPECT_GE(data_plane_stats().pool_peak_resident_bytes, peak_while_live);
  EXPECT_GE(peak_while_live - base.pool_resident_bytes,
            static_cast<std::int64_t>(2 * 2048 * sizeof(double)));
}

}  // namespace
}  // namespace summagen::util

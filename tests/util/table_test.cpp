#include "src/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace summagen::util {
namespace {

TEST(Table, AlignedAsciiOutput) {
  Table t("demo");
  t.set_header({"N", "time"});
  t.add_row({"1024", "0.5"});
  t.add_row({"20480", "12.25"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("N"), std::string::npos);
  EXPECT_NE(s.find("20480"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t("demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsRowWidthMismatch) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RowsWithoutHeaderAllowed) {
  Table t("demo");
  t.add_row({"x", "y", "z"});
  EXPECT_EQ(t.row_count(), 1u);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("x"), std::string::npos);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 3), "1.000");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
}

}  // namespace
}  // namespace summagen::util

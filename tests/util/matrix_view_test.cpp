// Tests of the non-owning strided view layer: offset composition,
// structural validation, the aliasing predicates, copy/materialize edge
// cases, and (debug builds only) the per-element bounds aborts.
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/matrix.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::util {
namespace {

Matrix numbered(std::int64_t rows, std::int64_t cols) {
  Matrix m(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) m(i, j) = 100.0 * i + j;
  }
  return m;
}

TEST(MatrixView, WholeMatrixViewMatchesMatrix) {
  Matrix m = numbered(3, 5);
  MatrixView v(m);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 5);
  EXPECT_EQ(v.ld(), 5);
  EXPECT_TRUE(v.contiguous());
  EXPECT_EQ(v.data(), m.data());
  EXPECT_EQ(v(2, 4), m(2, 4));
}

TEST(MatrixView, SubviewOfSubviewComposesOffsets) {
  Matrix m = numbered(8, 10);
  const MatrixView outer = block_view(m, 2, 3, 5, 6);
  const MatrixView inner = outer.subview(1, 2, 3, 3);
  // The inner view addresses the original buffer: ld stays 10 and the
  // origin is the sum of both corner offsets.
  EXPECT_EQ(inner.ld(), 10);
  EXPECT_EQ(inner.data(), m.data() + (2 + 1) * 10 + (3 + 2));
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(inner(i, j), m(3 + i, 5 + j));
    }
  }
  EXPECT_FALSE(inner.contiguous());
}

TEST(MatrixView, ConstSubviewOfSubviewComposesOffsets) {
  const Matrix m = numbered(6, 7);
  const ConstMatrixView outer = block_view(m, 1, 1, 4, 5);
  const ConstMatrixView inner = outer.subview(2, 3, 2, 2);
  EXPECT_EQ(inner.data(), m.data() + 3 * 7 + 4);
  EXPECT_EQ(inner(1, 1), m(4, 5));
}

TEST(MatrixView, SubviewOutsideParentThrows) {
  Matrix m = numbered(4, 4);
  MatrixView v(m);
  EXPECT_THROW(v.subview(0, 0, 5, 1), std::out_of_range);
  EXPECT_THROW(v.subview(2, 2, 2, 3), std::out_of_range);
  EXPECT_THROW(v.subview(-1, 0, 1, 1), std::out_of_range);
  // A zero-extent subview at the far corner is legal (empty).
  EXPECT_TRUE(v.subview(4, 4, 0, 0).empty());
}

TEST(MatrixView, ShapeValidation) {
  double buf[12] = {};
  EXPECT_THROW(MatrixView(buf, 3, 4, 3), std::invalid_argument);  // ld < cols
  EXPECT_THROW(MatrixView(nullptr, 2, 2, 2), std::invalid_argument);
  EXPECT_NO_THROW(MatrixView(nullptr, 0, 0, 0));  // empty views are fine
  EXPECT_NO_THROW(MatrixView(buf, 3, 4, 4));
}

TEST(MatrixView, FillTouchesOnlyTheBlock) {
  Matrix m = numbered(5, 5);
  block_view(m, 1, 1, 3, 3).fill(-1.0);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      const bool inside = i >= 1 && i < 4 && j >= 1 && j < 4;
      EXPECT_EQ(m(i, j), inside ? -1.0 : 100.0 * i + j);
    }
  }
}

TEST(MatrixView, CopyViewStridedToStrided) {
  Matrix src = numbered(6, 8);
  Matrix dst(7, 9);
  dst.fill(0.0);
  copy_view(block_view(src, 2, 3, 3, 4), block_view(dst, 1, 1, 3, 4));
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(dst(1 + i, 1 + j), src(2 + i, 3 + j));
    }
  }
  EXPECT_EQ(dst(0, 0), 0.0);
  EXPECT_EQ(dst(6, 8), 0.0);
}

TEST(MatrixView, CopyViewShapeMismatchThrows) {
  Matrix a = numbered(4, 4);
  Matrix b(4, 4);
  EXPECT_THROW(copy_view(block_view(a, 0, 0, 2, 2), block_view(b, 0, 0, 2, 3)),
               std::invalid_argument);
}

TEST(MatrixView, CopyViewEmptyIsNoOp) {
  Matrix a = numbered(4, 4);
  Matrix b = numbered(4, 4);
  EXPECT_NO_THROW(
      copy_view(block_view(a, 0, 0, 0, 4), block_view(b, 0, 0, 0, 4)));
}

TEST(MatrixView, MaterializeCopiesStridedBlock) {
  Matrix m = numbered(6, 6);
  const Matrix out = materialize(block_view(m, 1, 2, 3, 2));
  ASSERT_EQ(out.rows(), 3);
  ASSERT_EQ(out.cols(), 2);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      EXPECT_EQ(out(i, j), m(1 + i, 2 + j));
    }
  }
}

TEST(MatrixView, ViewsOverlapPredicate) {
  Matrix m = numbered(8, 8);
  // Row-disjoint blocks occupy disjoint address spans.
  EXPECT_FALSE(
      views_overlap(block_view(m, 0, 0, 3, 8), block_view(m, 4, 0, 3, 8)));
  // A block and a sub-block of it overlap.
  EXPECT_TRUE(
      views_overlap(block_view(m, 1, 1, 4, 4), block_view(m, 2, 2, 2, 2)));
  // Column-disjoint blocks of adjacent columns interleave in memory; the
  // span test is deliberately conservative and reports overlap.
  EXPECT_TRUE(
      views_overlap(block_view(m, 0, 0, 8, 4), block_view(m, 0, 4, 8, 4)));
  // Empty views never overlap anything.
  EXPECT_FALSE(
      views_overlap(block_view(m, 0, 0, 0, 0), block_view(m, 0, 0, 8, 8)));
  // Views over different buffers do not overlap.
  Matrix other = numbered(8, 8);
  EXPECT_FALSE(views_overlap(ConstMatrixView(m), ConstMatrixView(other)));
}

TEST(MatrixView, ViewSpansContain) {
  Matrix m = numbered(8, 8);
  EXPECT_TRUE(
      view_spans_contain(ConstMatrixView(m), block_view(m, 2, 2, 3, 3)));
  EXPECT_FALSE(
      view_spans_contain(block_view(m, 2, 2, 3, 3), ConstMatrixView(m)));
  EXPECT_TRUE(
      view_spans_contain(block_view(m, 0, 0, 1, 1), block_view(m, 0, 0, 0, 0)));
}

TEST(MatrixView, CopyMatrixRejectsAliasingOverlap) {
  Matrix m = numbered(8, 8);
  // dst starting one row below src overlaps src's span.
  EXPECT_THROW(copy_matrix(m.data() + 8, 8, m.data(), 8, 4, 8),
               std::invalid_argument);
  // Disjoint halves of the same buffer are fine.
  EXPECT_NO_THROW(copy_matrix(m.data() + 4 * 8, 8, m.data(), 8, 4, 8));
}

TEST(MatrixView, CopyViewRejectsOverlap) {
  Matrix m = numbered(8, 8);
  EXPECT_THROW(
      copy_view(block_view(m, 0, 0, 4, 8), block_view(m, 1, 0, 4, 8)),
      std::invalid_argument);
}

#ifndef NDEBUG
using MatrixViewDeathTest = ::testing::Test;

TEST(MatrixViewDeathTest, OutOfBoundsElementAccessAborts) {
  Matrix m = numbered(3, 3);
  MatrixView v = block_view(m, 0, 0, 2, 2);
  EXPECT_DEATH((void)v(2, 0), "outside");
  EXPECT_DEATH((void)v(0, 2), "outside");
  EXPECT_DEATH((void)v(-1, 0), "outside");
}

TEST(MatrixViewDeathTest, ConstOutOfBoundsElementAccessAborts) {
  const Matrix m = numbered(3, 3);
  ConstMatrixView v = block_view(m, 1, 1, 2, 2);
  EXPECT_DEATH((void)v(2, 2), "outside");
}
#endif  // NDEBUG

}  // namespace
}  // namespace summagen::util

#include "src/util/log.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace summagen::util {
namespace {

// The logger writes to stderr; these tests exercise the level gate and the
// stream interface without asserting on the output text (capturing stderr
// is brittle under parallel test runners).

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultThresholdIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, StreamMacroComposesTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // silence actual emission
  // Must compile and not crash for mixed insertions.
  SG_LOG_DEBUG() << "n=" << 42 << " t=" << 1.5 << " ok=" << true;
  SG_LOG_INFO() << std::string("string") << '!';
  SG_LOG_WARN() << "below threshold";
}

TEST(Log, EmissionBelowThresholdIsCheap) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  for (int i = 0; i < 10000; ++i) {
    log_line(LogLevel::kDebug, "dropped");
  }
  SUCCEED();
}

TEST(Log, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        log_line(LogLevel::kWarn, "concurrent");
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace summagen::util

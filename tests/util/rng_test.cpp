#include "src/util/rng.hpp"

#include <gtest/gtest.h>

namespace summagen::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.uniform(0, 1) != b.uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalRoughlyCentred) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 1.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(FillRandom, DeterministicAndInRange) {
  Matrix a(8, 8), b(8, 8);
  fill_random(a, 42);
  fill_random(b, 42);
  EXPECT_EQ(a, b);
  for (double v : a.span()) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
  Matrix c(8, 8);
  fill_random(c, 43);
  EXPECT_NE(a, c);
}

TEST(DeriveSeed, SaltsProduceDistinctStreams) {
  const auto s0 = derive_seed(100, 0);
  const auto s1 = derive_seed(100, 1);
  const auto s2 = derive_seed(101, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, s2);
  EXPECT_EQ(derive_seed(100, 0), s0);  // deterministic
}

}  // namespace
}  // namespace summagen::util

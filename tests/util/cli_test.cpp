#include "src/util/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace summagen::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const auto cli = make({"--n", "512"});
  EXPECT_TRUE(cli.has("n"));
  EXPECT_EQ(cli.get_int("n", 0), 512);
}

TEST(Cli, EqualsSeparatedValue) {
  const auto cli = make({"--shape=square_corner"});
  EXPECT_EQ(cli.get("shape", ""), "square_corner");
}

TEST(Cli, BooleanSwitch) {
  const auto cli = make({"--csv", "--n", "8"});
  EXPECT_TRUE(cli.get_bool("csv", false));
  EXPECT_EQ(cli.get_int("n", 0), 8);
}

TEST(Cli, BooleanSwitchAtEnd) {
  const auto cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto cli = make({});
  EXPECT_FALSE(cli.has("n"));
  EXPECT_EQ(cli.get_int("n", 77), 77);
  EXPECT_EQ(cli.get_double("x", 1.5), 1.5);
  EXPECT_EQ(cli.get("s", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("b", true));
}

TEST(Cli, IntList) {
  const auto cli = make({"--sizes", "1024,2048,4096"});
  const auto v = cli.get_int_list("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1024);
  EXPECT_EQ(v[2], 4096);
}

TEST(Cli, DoubleList) {
  const auto cli = make({"--speeds=1.0,2.0,0.9"});
  const auto v = cli.get_double_list("speeds", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 0.9);
}

TEST(Cli, ListFallback) {
  const auto cli = make({});
  const auto v = cli.get_int_list("sizes", {7, 8});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 7);
}

TEST(Cli, PositionalArguments) {
  const auto cli = make({"input.txt", "--n", "4", "other"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "other");
}

TEST(Cli, NegativeNumericValue) {
  const auto cli = make({"--offset=-3"});
  EXPECT_EQ(cli.get_int("offset", 0), -3);
}

TEST(Cli, GetIntMinAcceptsValidValues) {
  const auto cli = make({"--kernel-block", "16", "--kernel-threads=0"});
  EXPECT_EQ(cli.get_int_min("kernel-block", 64, 1), 16);
  EXPECT_EQ(cli.get_int_min("kernel-threads", 0, 0), 0);
  EXPECT_EQ(cli.get_int_min("absent", 42, 1), 42);  // fallback bypasses min
}

TEST(Cli, GetIntMinRejectsBelowMinimum) {
  const auto cli = make({"--kernel-block=0", "--kernel-threads=-2"});
  try {
    cli.get_int_min("kernel-block", 64, 1);
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_NE(std::string(e.what()).find("--kernel-block"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find(">= 1"), std::string::npos);
  }
  EXPECT_THROW(cli.get_int_min("kernel-threads", 0, 0), CliError);
}

TEST(Cli, GetIntMinRejectsMalformedValues) {
  const auto cli = make({"--kernel-block=fast", "--kernel-threads=3x"});
  try {
    cli.get_int_min("kernel-block", 64, 1);
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    EXPECT_NE(std::string(e.what()).find("'fast'"), std::string::npos);
  }
  // Trailing junk after digits must not silently parse as 3.
  EXPECT_THROW(cli.get_int_min("kernel-threads", 0, 0), CliError);
}

}  // namespace
}  // namespace summagen::util

#include "src/util/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/util/rng.hpp"

namespace summagen::util {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructsZeroInitialised) {
  Matrix m(3, 5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_EQ(m.size(), 15);
  for (double v : m.span()) EXPECT_EQ(v, 0.0);
}

TEST(Matrix, ConstructsWithFillValue) {
  Matrix m(2, 2, 7.5);
  for (double v : m.span()) EXPECT_EQ(v, 7.5);
}

TEST(Matrix, ThrowsOnNegativeDimensions) {
  EXPECT_THROW(Matrix(-1, 2), std::invalid_argument);
  EXPECT_THROW(Matrix(2, -1), std::invalid_argument);
}

TEST(Matrix, ZeroByNIsValid) {
  Matrix m(0, 7);
  EXPECT_TRUE(m.empty());
  Matrix m2(7, 0);
  EXPECT_TRUE(m2.empty());
}

TEST(Matrix, ElementAccessIsRowMajor) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 2;
  m(1, 0) = 3;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[2], 2);
  EXPECT_EQ(m.data()[3], 3);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_THROW(m.at(-1, 0), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(1, 1) = 1.5;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, a), 0.0);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, b), std::invalid_argument);
}

TEST(CopyMatrix, ContiguousFastPath) {
  Matrix src(3, 4);
  fill_random(src, 1);
  Matrix dst(3, 4);
  copy_matrix(dst.data(), 4, src.data(), 4, 3, 4);
  EXPECT_EQ(dst, src);
}

TEST(CopyMatrix, StridedCopy) {
  // Copy a 2x2 block out of a 4x4 matrix into a 2x3 destination.
  Matrix src(4, 4);
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 4; ++j) src(i, j) = i * 10.0 + j;
  Matrix dst(2, 3, -1.0);
  copy_matrix(dst.data(), 3, src.data() + 1 * 4 + 2, 4, 2, 2);
  EXPECT_EQ(dst(0, 0), 12.0);
  EXPECT_EQ(dst(0, 1), 13.0);
  EXPECT_EQ(dst(1, 0), 22.0);
  EXPECT_EQ(dst(1, 1), 23.0);
  EXPECT_EQ(dst(0, 2), -1.0);  // untouched past the copied columns
}

TEST(CopyMatrix, ZeroExtentIsNoop) {
  Matrix dst(2, 2, 5.0);
  const double src[1] = {9.0};
  copy_matrix(dst.data(), 2, src, 1, 0, 1);
  copy_matrix(dst.data(), 2, src, 1, 1, 0);
  for (double v : dst.span()) EXPECT_EQ(v, 5.0);
}

TEST(CopyMatrix, RejectsBadLeadingDimensions) {
  Matrix a(2, 4), b(2, 4);
  EXPECT_THROW(copy_matrix(a.data(), 3, b.data(), 4, 2, 4),
               std::invalid_argument);
  EXPECT_THROW(copy_matrix(a.data(), 4, b.data(), 3, 2, 4),
               std::invalid_argument);
  EXPECT_THROW(copy_matrix(a.data(), 4, b.data(), 4, -1, 4),
               std::invalid_argument);
}

TEST(ExtractPlaceBlock, RoundTrips) {
  Matrix m(6, 6);
  fill_random(m, 3);
  const Matrix block = extract_block(m, 2, 1, 3, 4);
  EXPECT_EQ(block.rows(), 3);
  EXPECT_EQ(block.cols(), 4);
  EXPECT_EQ(block(0, 0), m(2, 1));
  EXPECT_EQ(block(2, 3), m(4, 4));

  Matrix target(6, 6);
  place_block(target, block, 2, 1);
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_EQ(target(2 + i, 1 + j), m(2 + i, 1 + j));
  EXPECT_EQ(target(0, 0), 0.0);
}

TEST(ExtractBlock, ThrowsOutsideMatrix) {
  Matrix m(4, 4);
  EXPECT_THROW(extract_block(m, 2, 2, 3, 1), std::out_of_range);
  EXPECT_THROW(extract_block(m, 0, 3, 1, 2), std::out_of_range);
  EXPECT_THROW(extract_block(m, -1, 0, 1, 1), std::out_of_range);
}

TEST(PlaceBlock, ThrowsOutsideMatrix) {
  Matrix m(4, 4);
  Matrix b(2, 2, 1.0);
  EXPECT_THROW(place_block(m, b, 3, 0), std::out_of_range);
  EXPECT_THROW(place_block(m, b, 0, 3), std::out_of_range);
}

TEST(ToString, RendersSmallMatrix) {
  Matrix m(2, 2);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  EXPECT_EQ(to_string(m), "2x2 [ 1 2 ; 3 4 ]");
}

TEST(ToString, TruncatesLargeMatrix) {
  Matrix m(20, 20, 1.0);
  const std::string s = to_string(m, 2);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("20x20"), std::string::npos);
}

}  // namespace
}  // namespace summagen::util

// Time-varying device-speed profiles (src/device/drift.hpp): the curves
// are pure functions of virtual time, so every property here is exact.
#include <gtest/gtest.h>

#include "src/device/drift.hpp"

namespace summagen::device {
namespace {

DriftEvent event(DriftKind kind, int rank, double at, double factor,
                 double arg = 0.0) {
  DriftEvent e;
  e.kind = kind;
  e.rank = rank;
  e.at_vtime = at;
  e.factor = factor;
  if (kind == DriftKind::kRamp) e.duration_s = arg;
  if (kind == DriftKind::kPeriodic) e.period_s = arg;
  return e;
}

TEST(DriftProfile, EmptyPlanIsUnity) {
  DriftPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 123.0), 1.0);
}

TEST(DriftProfile, StepIsOneBeforeAndFactorAfter) {
  DriftPlan plan;
  plan.events.push_back(event(DriftKind::kStep, 1, 0.5, 3.0));
  EXPECT_DOUBLE_EQ(drift_factor(plan, 1, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 1, 0.499), 1.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 1, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 1, 100.0), 3.0);
  // Other ranks are untouched.
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 100.0), 1.0);
}

TEST(DriftProfile, RampInterpolatesLinearlyThenHolds) {
  DriftPlan plan;
  plan.events.push_back(event(DriftKind::kRamp, 0, 1.0, 3.0, 2.0));
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 1.0), 1.0);   // ramp start
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 2.0), 2.0);   // halfway
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 3.0), 3.0);   // ramp end
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 50.0), 3.0);  // holds
}

TEST(DriftProfile, PeriodicAlternatesSlowHalfFirst) {
  DriftPlan plan;
  plan.events.push_back(event(DriftKind::kPeriodic, 2, 0.0, 2.0, 1.0));
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 0.0), 2.0);   // slow half
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 0.49), 2.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 0.5), 1.0);   // fast half
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 0.99), 1.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 1.0), 2.0);   // next period
  EXPECT_DOUBLE_EQ(drift_factor(plan, 2, 1.75), 1.0);
}

TEST(DriftProfile, OverlappingEventsMultiply) {
  DriftPlan plan;
  plan.events.push_back(event(DriftKind::kStep, 0, 0.0, 2.0));
  plan.events.push_back(event(DriftKind::kStep, 0, 1.0, 1.5));
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(drift_factor(plan, 0, 1.5), 3.0);
}

TEST(DriftProfile, DeterministicAcrossCalls) {
  DriftPlan plan;
  plan.events.push_back(event(DriftKind::kPeriodic, 0, 0.25, 2.5, 0.4));
  plan.events.push_back(event(DriftKind::kRamp, 0, 0.1, 1.7, 0.9));
  for (double t : {0.0, 0.3, 0.77, 1.4142, 9.0}) {
    EXPECT_DOUBLE_EQ(drift_factor(plan, 0, t), drift_factor(plan, 0, t));
  }
}

TEST(DriftProfile, KindNamesStable) {
  EXPECT_STREQ(drift_kind_name(DriftKind::kStep), "step");
  EXPECT_STREQ(drift_kind_name(DriftKind::kRamp), "ramp");
  EXPECT_STREQ(drift_kind_name(DriftKind::kPeriodic), "periodic");
}

}  // namespace
}  // namespace summagen::device

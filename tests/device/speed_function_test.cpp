#include "src/device/speed_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace summagen::device {
namespace {

TEST(SpeedFunction, ConstantModel) {
  const auto sf = SpeedFunction::constant(5.0e9);
  EXPECT_TRUE(sf.is_constant());
  EXPECT_EQ(sf.flops_at_edge(1.0), 5.0e9);
  EXPECT_EQ(sf.flops_at_edge(1e6), 5.0e9);
}

TEST(SpeedFunction, ConstantRejectsNonPositive) {
  EXPECT_THROW(SpeedFunction::constant(0.0), std::invalid_argument);
  EXPECT_THROW(SpeedFunction::constant(-1.0), std::invalid_argument);
}

TEST(SpeedFunction, FromPointsSortsByEdge) {
  const auto sf = SpeedFunction::from_points(
      {{200.0, 2.0e9}, {100.0, 1.0e9}, {300.0, 3.0e9}});
  EXPECT_EQ(sf.points().front().edge, 100.0);
  EXPECT_EQ(sf.points().back().edge, 300.0);
}

TEST(SpeedFunction, RejectsEmptyDuplicateOrNonPositive) {
  EXPECT_THROW(SpeedFunction::from_points({}), std::invalid_argument);
  EXPECT_THROW(
      SpeedFunction::from_points({{100.0, 1e9}, {100.0, 2e9}}),
      std::invalid_argument);
  EXPECT_THROW(SpeedFunction::from_points({{100.0, 0.0}}),
               std::invalid_argument);
}

TEST(SpeedFunction, PiecewiseLinearInterpolatesExactly) {
  const auto sf = SpeedFunction::from_points({{0.0, 10.0}, {10.0, 20.0}});
  EXPECT_DOUBLE_EQ(sf.flops_at_edge(5.0), 15.0);
  EXPECT_DOUBLE_EQ(sf.flops_at_edge(2.5), 12.5);
}

TEST(SpeedFunction, ClampsOutsideSampledRange) {
  const auto sf =
      SpeedFunction::from_points({{100.0, 1.0e9}, {200.0, 2.0e9}});
  EXPECT_EQ(sf.flops_at_edge(10.0), 1.0e9);
  EXPECT_EQ(sf.flops_at_edge(1e4), 2.0e9);
}

TEST(SpeedFunction, HitsKnotsExactlyBothInterpolations) {
  const std::vector<SpeedPoint> pts = {
      {64, 1.0e9}, {128, 3.0e9}, {256, 2.5e9}, {512, 4.0e9}, {1024, 3.9e9}};
  for (auto interp :
       {Interpolation::kPiecewiseLinear, Interpolation::kAkima}) {
    const auto sf = SpeedFunction::from_points(pts, interp);
    for (const auto& p : pts) {
      EXPECT_NEAR(sf.flops_at_edge(p.edge), p.flops_per_s,
                  1e-6 * p.flops_per_s);
    }
  }
}

TEST(SpeedFunction, AkimaIsSmootherThanLinearOnSmoothData) {
  // Sample a smooth curve; Akima should reconstruct midpoints better.
  std::vector<SpeedPoint> pts;
  auto f = [](double x) { return 1e9 * (2.0 + std::sin(x / 200.0)); };
  for (double x = 100; x <= 1500; x += 200) pts.push_back({x, f(x)});
  const auto lin =
      SpeedFunction::from_points(pts, Interpolation::kPiecewiseLinear);
  const auto aki = SpeedFunction::from_points(pts, Interpolation::kAkima);
  double lin_err = 0.0, aki_err = 0.0;
  for (double x = 200; x <= 1400; x += 200) {  // knot midpoints
    lin_err += std::abs(lin.flops_at_edge(x) - f(x));
    aki_err += std::abs(aki.flops_at_edge(x) - f(x));
  }
  EXPECT_LT(aki_err, lin_err);
}

TEST(SpeedFunction, AkimaDoesNotOvershootCliffsBadly) {
  // A sharp performance cliff; Akima (unlike cubic splines) stays bounded
  // and we additionally clamp at a positive floor.
  const auto sf = SpeedFunction::from_points(
      {{100, 4e9}, {200, 4e9}, {300, 4e9}, {400, 1e9}, {500, 1e9},
       {600, 1e9}},
      Interpolation::kAkima);
  for (double x = 100; x <= 600; x += 10) {
    const double v = sf.flops_at_edge(x);
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 4.6e9);
  }
}

TEST(SpeedFunction, TwoPointAkimaFallsBackToLine) {
  const auto sf = SpeedFunction::from_points({{0.0, 10.0}, {10.0, 30.0}},
                                             Interpolation::kAkima);
  EXPECT_NEAR(sf.flops_at_edge(5.0), 20.0, 1e-9);
}

TEST(SpeedFunction, RelativeVariationZeroForConstant) {
  const auto sf = SpeedFunction::constant(1e9);
  EXPECT_DOUBLE_EQ(sf.relative_variation(100, 1000), 0.0);
}

TEST(SpeedFunction, RelativeVariationDetectsDip) {
  const auto sf = SpeedFunction::from_points(
      {{100, 1e9}, {200, 1e9}, {300, 0.5e9}, {400, 1e9}});
  EXPECT_GT(sf.relative_variation(100, 400), 0.2);
  EXPECT_LT(sf.relative_variation(100, 200), 0.01);
}

TEST(ZoneTime, MatchesFormula) {
  const auto sf = SpeedFunction::constant(2.0e9);
  // zone of 10^6 elements in an n=1000 problem: 2*10^6*1000 flops.
  EXPECT_DOUBLE_EQ(zone_time(sf, 1e6, 1000.0), 2e9 / 2.0e9);
  EXPECT_DOUBLE_EQ(zone_time(sf, 0.0, 1000.0), 0.0);
}

TEST(ZoneTime, UsesSpeedAtSqrtArea) {
  const auto sf = SpeedFunction::from_points({{10.0, 1e9}, {1000.0, 1e9},
                                              {100.0, 5e8}});
  // area 10^4 -> edge 100 -> speed 5e8.
  EXPECT_DOUBLE_EQ(zone_time(sf, 1e4, 50.0), 2.0 * 1e4 * 50.0 / 5e8);
}

TEST(ZoneTime, RejectsBadInput) {
  const auto sf = SpeedFunction::constant(1e9);
  EXPECT_THROW(zone_time(sf, -1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(zone_time(sf, 100.0, 0.0), std::invalid_argument);
}

TEST(ProfileGrid, CoversRangeMonotonically) {
  const auto grid = profile_grid(64, 38416, 48);
  EXPECT_GE(grid.size(), 2u);
  EXPECT_EQ(grid.front(), 64.0);
  EXPECT_GE(grid.back(), 38400.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
    EXPECT_EQ(std::fmod(grid[i], 64.0), 0.0);
  }
}

TEST(ProfileGrid, SmallCountStillValid) {
  const auto grid = profile_grid(64, 1024, 2);
  EXPECT_EQ(grid.front(), 64.0);
  EXPECT_EQ(grid.back(), 1024.0);
}

TEST(ProfileGrid, RejectsBadArguments) {
  EXPECT_THROW(profile_grid(0, 100, 4), std::invalid_argument);
  EXPECT_THROW(profile_grid(100, 100, 4), std::invalid_argument);
  EXPECT_THROW(profile_grid(10, 100, 1), std::invalid_argument);
}

}  // namespace
}  // namespace summagen::device

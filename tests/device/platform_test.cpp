// Calibration properties of the simulated HCLServer1 — these pin the model
// to the paper's headline numbers so refactors cannot silently drift the
// reproduction.
#include "src/device/platform.hpp"

#include <gtest/gtest.h>

namespace summagen::device {
namespace {

TEST(Hclserver1, HasThreeDevicesAndPaperPeak) {
  const auto p = Platform::hclserver1();
  ASSERT_EQ(p.nprocs(), 3);
  EXPECT_NEAR(p.theoretical_peak_flops(), 2.50e12, 1e9);
  EXPECT_DOUBLE_EQ(p.static_power_w, 230.0);
}

TEST(Hclserver1, DeviceRolesMatchThePaper) {
  const auto p = Platform::hclserver1();
  EXPECT_EQ(p.devices[0].kind, DeviceKind::kMulticoreCpu);
  EXPECT_EQ(p.devices[1].kind, DeviceKind::kGpu);
  EXPECT_EQ(p.devices[2].kind, DeviceKind::kManycoreCoprocessor);
  EXPECT_FALSE(p.devices[0].needs_staging);
  EXPECT_TRUE(p.devices[1].needs_staging);
  EXPECT_TRUE(p.devices[2].needs_staging);
  EXPECT_EQ(p.devices[1].memory_bytes, 12LL << 30);
  EXPECT_EQ(p.devices[2].memory_bytes, 6LL << 30);
}

TEST(Hclserver1, ConstantRangeRelativeSpeedsNearPaper) {
  const auto p = Platform::hclserver1();
  const auto rel = p.constant_relative_speeds(14000.0, 22000.0);
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_DOUBLE_EQ(rel[0], 1.0);
  EXPECT_NEAR(rel[1], 2.0, 0.15);  // paper: 2.0
  EXPECT_NEAR(rel[2], 0.9, 0.1);   // paper: 0.9
}

TEST(Hclserver1, GpuIsFastestDeviceAtLargeSizes) {
  const auto aps = Platform::hclserver1().processors();
  const double cpu = aps[0].effective_flops(20000, true);
  const double gpu = aps[1].effective_flops(20000, true);
  const double phi = aps[2].effective_flops(20000, true);
  EXPECT_GT(gpu, cpu);
  EXPECT_GT(cpu, phi);
}

TEST(Hclserver1, CpuLeadsAtTinySizes) {
  // The CPU's short efficiency ramp makes it relatively better at small
  // problems — the effect that the FPM partitioner exploits at small N.
  const auto aps = Platform::hclserver1().processors();
  const double cpu = aps[0].effective_flops(128, true);
  const double gpu = aps[1].effective_flops(128, true);
  EXPECT_GT(cpu, gpu);
}

TEST(Hclserver1, PhiProfileSmoothBeforeWindowRoughInside) {
  const auto p = Platform::hclserver1();
  const auto grid = profile_grid(256, 12000, 64);
  const auto profiles = p.profiles(grid);
  const auto& phi = profiles[2];
  // Paper: Phi profile smooth at small/medium sizes, maximal variations in
  // the boost window (zone-edge [6400, 9600]). Compare post-ramp windows —
  // relative_variation also sees the monotone efficiency ramp, so the
  // pre-4000 region is excluded by design.
  EXPECT_LT(phi.relative_variation(4400, 6300), 0.06);
  EXPECT_GT(phi.relative_variation(6400, 9600),
            phi.relative_variation(4400, 6300));
}

TEST(Hclserver1, ProfilesConstantInPaperRange) {
  // Section VI-A: relative speeds nearly constant for N in [25600, 35840],
  // i.e. zone edges ~[14000, 22000].
  const auto p = Platform::hclserver1();
  const auto grid = profile_grid(13000, 23000, 24);
  for (const auto& sf : p.profiles(grid)) {
    EXPECT_LT(sf.relative_variation(14000, 22000), 0.12);
  }
}

TEST(Homogeneous, AllDevicesIdentical) {
  const auto p = Platform::homogeneous(4, 50e9);
  ASSERT_EQ(p.nprocs(), 4);
  const auto rel = p.constant_relative_speeds(1000, 2000);
  for (double r : rel) EXPECT_NEAR(r, 1.0, 1e-9);
  EXPECT_THROW(Platform::homogeneous(0), std::invalid_argument);
}

TEST(Synthetic, SpeedsProportional) {
  const auto p = Platform::synthetic({1.0, 2.0, 0.9});
  const auto rel = p.constant_relative_speeds(1000, 2000);
  EXPECT_NEAR(rel[1], 2.0, 1e-6);
  EXPECT_NEAR(rel[2], 0.9, 1e-6);
  EXPECT_THROW(Platform::synthetic({}), std::invalid_argument);
  EXPECT_THROW(Platform::synthetic({1.0, -1.0}), std::invalid_argument);
}

TEST(Cluster, ReplicatesDevicesAcrossNodes) {
  const auto node = Platform::hclserver1();
  const auto c = Platform::cluster(node, 3);
  EXPECT_EQ(c.nprocs(), 9);
  ASSERT_EQ(c.node_of.size(), 9u);
  EXPECT_EQ(c.node_of[0], 0);
  EXPECT_EQ(c.node_of[3], 1);
  EXPECT_EQ(c.node_of[8], 2);
  EXPECT_NEAR(c.theoretical_peak_flops(),
              3.0 * node.theoretical_peak_flops(), 1e6);
  EXPECT_DOUBLE_EQ(c.static_power_w, 3.0 * node.static_power_w);
  // Replicas keep the device character but get distinct noise streams.
  EXPECT_EQ(c.devices[0].peak_flops, c.devices[3].peak_flops);
  EXPECT_NE(c.devices[0].noise_seed, c.devices[3].noise_seed);
  EXPECT_NE(c.devices[0].name, c.devices[3].name);
}

TEST(Cluster, RejectsBadInput) {
  EXPECT_THROW(Platform::cluster(Platform::hclserver1(), 0),
               std::invalid_argument);
  Platform empty;
  EXPECT_THROW(Platform::cluster(empty, 2), std::invalid_argument);
}

TEST(Profiles, ContendedSlowerThanSolo) {
  const auto p = Platform::hclserver1();
  const auto grid = profile_grid(1024, 8192, 8);
  const auto loaded = p.profiles(grid, true);
  const auto solo = p.profiles(grid, false);
  for (std::size_t d = 0; d < loaded.size(); ++d) {
    for (double e : grid) {
      EXPECT_LT(loaded[d].flops_at_edge(e), solo[d].flops_at_edge(e) + 1.0);
    }
  }
}

}  // namespace
}  // namespace summagen::device

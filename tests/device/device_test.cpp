#include "src/device/device.hpp"

#include <gtest/gtest.h>

#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::device {
namespace {

DeviceSpec plain_spec(double peak = 1.0e12) {
  DeviceSpec d;
  d.name = "test";
  d.peak_flops = peak;
  d.asymptotic_efficiency = 0.8;
  d.contention_factor = 0.9;
  d.ramp_edge = 100.0;
  d.variation_amplitude = 0.0;
  d.memory_bytes = 1LL << 40;
  d.needs_staging = false;
  return d;
}

TEST(AbstractProcessor, RejectsBadSpecs) {
  DeviceSpec d = plain_spec();
  d.peak_flops = 0.0;
  EXPECT_THROW((AbstractProcessor{d}), std::invalid_argument);
  d = plain_spec();
  d.asymptotic_efficiency = 1.5;
  EXPECT_THROW((AbstractProcessor{d}), std::invalid_argument);
  d = plain_spec();
  d.memory_bytes = 0;
  EXPECT_THROW((AbstractProcessor{d}), std::invalid_argument);
}

TEST(AbstractProcessor, EffectiveFlopsRampsUpAndSaturates) {
  const AbstractProcessor ap(plain_spec());
  const double tiny = ap.effective_flops(10.0, false);
  const double mid = ap.effective_flops(200.0, false);
  const double big = ap.effective_flops(5000.0, false);
  EXPECT_LT(tiny, mid);
  EXPECT_LT(mid, big);
  EXPECT_NEAR(big, 1.0e12 * 0.8, 1.0e12 * 0.8 * 0.01);
}

TEST(AbstractProcessor, ContentionSlowsDown) {
  const AbstractProcessor ap(plain_spec());
  const double solo = ap.effective_flops(1000.0, false);
  const double loaded = ap.effective_flops(1000.0, true);
  EXPECT_NEAR(loaded / solo, 0.9, 1e-9);
}

TEST(AbstractProcessor, KernelCostMatchesFlopsOverSpeed) {
  const AbstractProcessor ap(plain_spec());
  const auto cost = ap.kernel_cost(512, 512, 512, false);
  const double edge = 512.0;
  EXPECT_NEAR(cost.compute_s,
              2.0 * 512.0 * 512.0 * 512.0 / ap.effective_flops(edge, false),
              1e-12);
  EXPECT_EQ(cost.transfer_s, 0.0);
  EXPECT_EQ(cost.ooc_passes, 1);
}

TEST(AbstractProcessor, ZeroSizedKernelIsFree) {
  const AbstractProcessor ap(plain_spec());
  const auto cost = ap.kernel_cost(0, 16, 16);
  EXPECT_EQ(cost.total_s(), 0.0);
}

TEST(AbstractProcessor, StagingAddsTransferCost) {
  DeviceSpec d = plain_spec();
  d.needs_staging = true;
  d.pcie = trace::HockneyParams{1.0e-5, 1.0 / 1.0e9};  // 1 GB/s
  const AbstractProcessor ap(d);
  const auto cost = ap.kernel_cost(256, 256, 256, false);
  // A, B in + C out = 3 * 256^2 * 8 bytes at 1 GB/s.
  const double expected_bytes = 3.0 * 256 * 256 * 8;
  EXPECT_GT(cost.transfer_s, expected_bytes / 1.0e9 * 0.99);
  EXPECT_EQ(cost.transferred_bytes,
            static_cast<std::int64_t>(expected_bytes));
}

TEST(AbstractProcessor, OutOfCoreKicksInBeyondDeviceMemory) {
  DeviceSpec d = plain_spec();
  d.needs_staging = true;
  d.memory_bytes = 1 << 20;  // 1 MiB: a 256^3 DGEMM cannot fit
  const AbstractProcessor ap(d);
  const auto cost = ap.kernel_cost(256, 256, 256, false);
  EXPECT_GT(cost.ooc_passes, 1);
  EXPECT_GT(cost.transferred_bytes,
            static_cast<std::int64_t>(3 * 256 * 256 * 8));
}

TEST(AbstractProcessor, OocOverlapHidesTraffic) {
  DeviceSpec d = plain_spec();
  d.needs_staging = true;
  d.memory_bytes = 1 << 20;
  d.ooc_overlap = 0.0;
  const AbstractProcessor exposed(d);
  d.ooc_overlap = 0.95;
  const AbstractProcessor hidden(d);
  EXPECT_GT(exposed.kernel_cost(256, 256, 256).transfer_s,
            hidden.kernel_cost(256, 256, 256).transfer_s);
}

TEST(AbstractProcessor, RunGemmComputesCorrectProduct) {
  const AbstractProcessor ap(plain_spec());
  util::Matrix a(32, 48), b(48, 24), c(32, 24);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  const auto cost =
      ap.run_gemm(32, 24, 48, a.data(), 48, b.data(), 24, c.data(), 24);
  EXPECT_GT(cost.compute_s, 0.0);
  for (std::int64_t i = 0; i < 32; ++i) {
    for (std::int64_t j = 0; j < 24; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < 48; ++l) acc += a(i, l) * b(l, j);
      EXPECT_NEAR(c(i, j), acc, 1e-10);
    }
  }
}

TEST(AbstractProcessor, RunGemmTakesOocPathWhenTooBig) {
  DeviceSpec d = plain_spec();
  d.needs_staging = true;
  d.memory_bytes = 64 * 1024;  // forces tiling for a 64^3 problem
  const AbstractProcessor ap(d);
  util::Matrix a(64, 64), b(64, 64), c(64, 64), want(64, 64);
  util::fill_random(a, 3);
  util::fill_random(b, 4);
  const auto cost =
      ap.run_gemm(64, 64, 64, a.data(), 64, b.data(), 64, c.data(), 64);
  EXPECT_GT(cost.ooc_passes, 1);
  blas::dgemm(64, 64, 64, 1.0, a.data(), 64, b.data(), 64, 0.0, want.data(),
              64);
  EXPECT_LE(util::Matrix::max_abs_diff(c, want), 1e-10);
}

TEST(VariationMultiplier, DisabledWhenAmplitudeZero) {
  DeviceSpec d = plain_spec();
  for (double e = 10; e < 1e5; e *= 3) {
    EXPECT_EQ(variation_multiplier(d, e), 1.0);
  }
}

TEST(VariationMultiplier, StaysWithinUnitInterval) {
  DeviceSpec d = plain_spec();
  d.variation_amplitude = 0.3;
  d.variation_boost = 0.4;
  d.variation_lo_edge = 1000;
  d.variation_hi_edge = 2000;
  d.variation_decays = false;
  for (double e = 1; e < 1e5; e *= 1.3) {
    const double v = variation_multiplier(d, e);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(VariationMultiplier, DeterministicPerSeed) {
  DeviceSpec d = plain_spec();
  d.variation_amplitude = 0.2;
  EXPECT_EQ(variation_multiplier(d, 777.0), variation_multiplier(d, 777.0));
  DeviceSpec d2 = d;
  d2.noise_seed = d.noise_seed + 1;
  // Different seeds shift the oscillation phases.
  bool differs = false;
  for (double e = 100; e < 3000; e += 100) {
    if (variation_multiplier(d, e) != variation_multiplier(d2, e)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(VariationMultiplier, BoostWindowDeepensDips) {
  DeviceSpec d = plain_spec();
  d.variation_amplitude = 0.01;
  d.variation_decays = false;
  d.variation_boost = 0.5;
  d.variation_lo_edge = 5000;
  d.variation_hi_edge = 6000;
  // Worst dip inside the window must exceed the worst dip far outside.
  double worst_in = 1.0, worst_out = 1.0;
  for (double e = 5000; e <= 6000; e += 10) {
    worst_in = std::min(worst_in, variation_multiplier(d, e));
  }
  for (double e = 100; e <= 1100; e += 10) {
    worst_out = std::min(worst_out, variation_multiplier(d, e));
  }
  EXPECT_LT(worst_in, worst_out - 0.1);
}

TEST(Profile, SpeedsEqualFlopsOverModeledTime) {
  const AbstractProcessor ap(plain_spec());
  const auto sf = ap.profile({128, 256, 512}, false);
  for (double e : {128.0, 256.0, 512.0}) {
    const auto x = static_cast<std::int64_t>(e);
    const auto cost = ap.kernel_cost(x, x, x, false);
    EXPECT_NEAR(sf.flops_at_edge(e),
                2.0 * e * e * e / cost.total_s(),
                1e-3 * sf.flops_at_edge(e));
  }
}

TEST(Profile, RejectsEmptyOrNonPositiveGrid) {
  const AbstractProcessor ap(plain_spec());
  EXPECT_THROW(ap.profile({}), std::invalid_argument);
  EXPECT_THROW(ap.profile({0.0}), std::invalid_argument);
}

TEST(GemmFootprint, CountsAllOperands) {
  // A (m*k) + B (k*n) + C and workspace (2*m*n), 8 bytes each.
  EXPECT_EQ(gemm_footprint_bytes(10, 20, 30),
            8 * (10 * 30 + 30 * 20 + 2 * 10 * 20));
}

TEST(DeviceKind, Names) {
  EXPECT_STREQ(to_string(DeviceKind::kMulticoreCpu), "multicore CPU");
  EXPECT_STREQ(to_string(DeviceKind::kGpu), "GPU");
  EXPECT_STREQ(to_string(DeviceKind::kManycoreCoprocessor),
               "manycore coprocessor");
}

}  // namespace
}  // namespace summagen::device

// Model-level properties of the device substrate: bounds and monotonicity
// that must survive any recalibration of the platform constants.
#include <gtest/gtest.h>

#include "src/device/platform.hpp"
#include "src/util/rng.hpp"

namespace summagen::device {
namespace {

std::vector<AbstractProcessor> all_processors() {
  return Platform::hclserver1().processors();
}

TEST(ModelProperties, EffectiveFlopsNeverExceedPeak) {
  for (const auto& ap : all_processors()) {
    for (double edge = 16; edge < 50000; edge *= 1.7) {
      EXPECT_LE(ap.effective_flops(edge, false), ap.spec().peak_flops)
          << ap.spec().name << " edge " << edge;
      EXPECT_GT(ap.effective_flops(edge, true), 0.0);
    }
  }
}

TEST(ModelProperties, KernelCostMonotoneInEachDimension) {
  // Doubling any GEMM dimension cannot make the kernel cheaper.
  for (const auto& ap : all_processors()) {
    util::Rng rng(404);
    for (int trial = 0; trial < 20; ++trial) {
      const std::int64_t m = rng.uniform_int(64, 4096);
      const std::int64_t n = rng.uniform_int(64, 4096);
      const std::int64_t k = rng.uniform_int(64, 4096);
      const double base = ap.kernel_cost(m, n, k).total_s();
      EXPECT_GE(ap.kernel_cost(2 * m, n, k).total_s(), base)
          << ap.spec().name;
      EXPECT_GE(ap.kernel_cost(m, 2 * n, k).total_s(), base);
      EXPECT_GE(ap.kernel_cost(m, n, 2 * k).total_s(), base);
    }
  }
}

TEST(ModelProperties, ComputeTimeScalesRoughlyWithFlops) {
  // At saturated sizes, 8x the flops costs 4x..16x the time (variations
  // and OOC knees allowed, but nothing pathological).
  for (const auto& ap : all_processors()) {
    const double t1 = ap.kernel_cost(4096, 4096, 4096).compute_s;
    const double t8 = ap.kernel_cost(8192, 8192, 8192).compute_s;
    EXPECT_GT(t8 / t1, 4.0) << ap.spec().name;
    EXPECT_LT(t8 / t1, 16.0) << ap.spec().name;
  }
}

TEST(ModelProperties, MoreDeviceMemoryNeverMoreTransfer) {
  DeviceSpec d;
  d.name = "probe";
  d.peak_flops = 1e12;
  d.asymptotic_efficiency = 0.9;
  d.needs_staging = true;
  d.variation_amplitude = 0.0;
  d.ooc_overlap = 0.5;
  double prev = 1e300;
  for (std::int64_t mem = 8 << 20; mem <= 512 << 20; mem *= 2) {
    d.memory_bytes = mem;
    const AbstractProcessor ap(d);
    const double transfer = ap.kernel_cost(1024, 1024, 1024).transfer_s;
    EXPECT_LE(transfer, prev) << "mem " << mem;
    prev = transfer;
  }
}

TEST(ModelProperties, ProfilesPositiveAndBoundedByPeak) {
  const auto platform = Platform::hclserver1();
  const auto grid = profile_grid(64, 38416, 48);
  const auto profiles = platform.profiles(grid);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (double e : grid) {
      const double s = profiles[i].flops_at_edge(e);
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, platform.devices[i].peak_flops);
    }
  }
}

TEST(ModelProperties, JitterIsUnbiasedEnough) {
  // The lognormal run-to-run noise must average near 1x over many seeds.
  DeviceSpec d;
  d.name = "probe";
  d.peak_flops = 1e12;
  d.asymptotic_efficiency = 0.9;
  d.variation_amplitude = 0.0;
  d.temporal_jitter_sigma = 0.05;
  double base;
  {
    DeviceSpec clean = d;
    clean.temporal_jitter_sigma = 0.0;
    base = AbstractProcessor(clean).kernel_cost(512, 512, 512).compute_s;
  }
  double sum = 0.0;
  const int reps = 200;
  for (int i = 0; i < reps; ++i) {
    d.temporal_jitter_seed = 1000 + static_cast<std::uint64_t>(i);
    sum += AbstractProcessor(d).kernel_cost(512, 512, 512).compute_s;
  }
  EXPECT_NEAR(sum / reps / base, 1.0, 0.02);
}

TEST(ModelProperties, ZoneTimeMatchesKernelAtSquareSizes) {
  // zone_time through a profile built from the model agrees with the
  // model's own square-kernel time at the sampled points.
  const auto ap = all_processors()[0];
  const auto sf = ap.profile({1024, 2048, 4096});
  for (double e : {1024.0, 2048.0, 4096.0}) {
    const auto x = static_cast<std::int64_t>(e);
    // zone of area e^2 in a problem of size n=e: flops 2e^3.
    const double via_zone = zone_time(sf, e * e, e);
    const double via_kernel = ap.kernel_cost(x, x, x).total_s();
    EXPECT_NEAR(via_zone, via_kernel, via_kernel * 1e-6);
  }
}

}  // namespace
}  // namespace summagen::device

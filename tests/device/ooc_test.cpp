#include "src/device/ooc.hpp"

#include <gtest/gtest.h>

#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::device {
namespace {

constexpr std::int64_t kB = 8;  // element size

TEST(Plan, InCoreUnstagedHasNoTraffic) {
  const auto plan = plan_out_of_core(64, 64, 64, 1 << 30, /*staged=*/false);
  EXPECT_EQ(plan.passes, 1);
  EXPECT_EQ(plan.transferred_bytes, 0);
  EXPECT_EQ(plan.transfer_messages, 0);
  EXPECT_EQ(plan.tile_m, 64);
}

TEST(Plan, InCoreStagedMovesOperandsOnce) {
  const auto plan = plan_out_of_core(64, 32, 16, 1 << 30, /*staged=*/true);
  EXPECT_EQ(plan.passes, 1);
  EXPECT_EQ(plan.transferred_bytes,
            kB * (64 * 16 + 16 * 32 + 64 * 32));
  EXPECT_EQ(plan.transfer_messages, 3);
}

TEST(Plan, TilesFitMemory) {
  const std::int64_t mem = 200 * 1024;
  const auto plan = plan_out_of_core(512, 512, 512, mem, true);
  EXPECT_GT(plan.passes, 1);
  const std::int64_t footprint =
      kB * (plan.tile_m * plan.tile_k + plan.tile_k * plan.tile_n +
            2 * plan.tile_m * plan.tile_n);
  EXPECT_LE(footprint, mem);
  EXPECT_GE(plan.tile_m, 1);
  EXPECT_GE(plan.tile_n, 1);
  EXPECT_GE(plan.tile_k, 1);
}

TEST(Plan, TrafficGrowsAsMemoryShrinks) {
  const auto big = plan_out_of_core(256, 256, 256, 1 << 20, true);
  const auto small = plan_out_of_core(256, 256, 256, 1 << 17, true);
  EXPECT_GT(small.passes, big.passes);
  EXPECT_GT(small.transferred_bytes, big.transferred_bytes);
}

TEST(Plan, TransferredAtLeastOperandSizes) {
  const auto plan = plan_out_of_core(128, 128, 128, 1 << 17, true);
  EXPECT_GE(plan.transferred_bytes,
            kB * (128 * 128 * 3));  // can never move less than A+B+C
}

TEST(Plan, RejectsBadArguments) {
  EXPECT_THROW(plan_out_of_core(0, 1, 1, 100, true), std::invalid_argument);
  EXPECT_THROW(plan_out_of_core(1, 1, 1, 0, true), std::invalid_argument);
  // Memory too small even for a single 1x1 tile with its workspace.
  EXPECT_THROW(plan_out_of_core(1 << 20, 1 << 20, 1 << 20, 16, true),
               std::invalid_argument);
}

class OocGemm : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(OocGemm, MatchesInCoreResultUnderMemoryPressure) {
  const std::int64_t mem = GetParam();
  const std::int64_t m = 48, n = 56, k = 40;
  util::Matrix a(m, k), b(k, n), c(m, n), want(m, n);
  util::fill_random(a, 11);
  util::fill_random(b, 12);
  // Seed C: out-of-core accumulates (C += A*B), so start non-zero.
  util::fill_random(c, 13);
  want = c;
  blas::dgemm(m, n, k, 1.0, a.data(), k, b.data(), n, 1.0, want.data(), n);

  const auto plan = out_of_core_gemm(m, n, k, a.data(), k, b.data(), n,
                                     c.data(), n, mem);
  EXPECT_LE(util::Matrix::max_abs_diff(c, want), 1e-10)
      << "mem=" << mem << " passes=" << plan.passes;
}

INSTANTIATE_TEST_SUITE_P(MemorySizes, OocGemm,
                         ::testing::Values<std::int64_t>(
                             1 << 30,   // fits fully (degenerate single tile)
                             64 << 10,  // a few tiles
                             16 << 10,  // many tiles
                             2 << 10),  // extreme tiling
                         [](const auto& param_info) {
                           return "mem" + std::to_string(param_info.param);
                         });

TEST(OocGemm, StridedBuffersWork) {
  // Operands embedded in larger matrices (non-trivial leading dimensions).
  const std::int64_t m = 20, n = 24, k = 16, ld = 40;
  util::Matrix a(ld, ld), b(ld, ld), c(ld, ld), want(ld, ld);
  util::fill_random(a, 21);
  util::fill_random(b, 22);
  blas::dgemm(m, n, k, 1.0, a.data(), ld, b.data(), ld, 1.0, want.data(), ld);
  out_of_core_gemm(m, n, k, a.data(), ld, b.data(), ld, c.data(), ld,
                   8 << 10);
  EXPECT_LE(util::Matrix::max_abs_diff(c, want), 1e-10);
}

}  // namespace
}  // namespace summagen::device

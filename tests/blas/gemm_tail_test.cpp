// Remainder-tail coverage for the dispatched packed kernel: every
// available SIMD tier is exercised over shapes that land on every fringe
// case of the five-loop scheme — M % MR, N % NR, K % KC leftovers, plus
// degenerate 1x1, 1xN and Mx1 problems — and compared to the naive oracle.
// Also pins the cross-tier bitwise contract: scalar == SSE2 exactly, and
// the scalar packed tier == kBlocked exactly, under any MC/NC/KC blocking
// and any thread width.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/blas/gemm.hpp"
#include "src/blas/simd.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

using util::Matrix;

Matrix oracle(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
  return c;
}

double tol(std::int64_t k) { return 1e-12 * static_cast<double>(k + 1); }

std::vector<SimdTier> available_tiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier t : {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    if (simd_tier_available(t)) tiers.push_back(t);
  }
  return tiers;
}

// Fringe shapes: MR is 4 or 6 and NR is 4 or 8 depending on tier, so these
// cover zero and non-zero remainders against every microkernel shape; the
// kc=3 blocking override below makes K=8/35 hit K % KC tails too.
struct Shape {
  std::int64_t m, n, k;
};

const Shape kShapes[] = {
    {1, 1, 1},   {1, 1, 8},   {1, 13, 35},  {17, 1, 35}, {4, 8, 8},
    {6, 8, 8},   {5, 7, 3},   {23, 17, 35}, {24, 16, 8}, {25, 33, 35},
    {12, 24, 1}, {31, 9, 19},
};

TEST(GemmTail, AllTiersMatchOracleOnFringeShapes) {
  for (SimdTier tier : available_tiers()) {
    for (const Shape& s : kShapes) {
      Matrix a(s.m, s.k), b(s.k, s.n);
      util::fill_random(a, 21);
      util::fill_random(b, 22);
      const Matrix want = oracle(a, b);
      // Tiny MC/NC/KC force multiple outer blocks even on these small
      // problems, so every loop level sees both full and fringe trips.
      for (std::int64_t kc : {std::int64_t{3}, std::int64_t{256}}) {
        GemmOptions opts{.kernel = GemmKernel::kPacked, .tier = tier,
                         .mc = 8, .nc = 16, .kc = kc};
        const Matrix got = multiply(a, b, opts);
        EXPECT_LE(Matrix::max_abs_diff(got, want), tol(s.k))
            << simd_tier_name(tier) << " m=" << s.m << " n=" << s.n
            << " k=" << s.k << " kc=" << kc;
      }
    }
  }
}

TEST(GemmTail, ScalarTierBitIdenticalToBlockedUnderAnyBlocking) {
  Matrix a(29, 35), b(35, 21);
  util::fill_random(a, 23);
  util::fill_random(b, 24);
  const Matrix blocked = multiply(a, b, {.kernel = GemmKernel::kBlocked});
  for (std::int64_t kc : {std::int64_t{2}, std::int64_t{7},
                          std::int64_t{256}}) {
    for (int threads : {1, 3}) {
      GemmOptions opts{.kernel = GemmKernel::kPacked, .threads = threads,
                       .tier = SimdTier::kScalar, .mc = 4, .nc = 8,
                       .kc = kc};
      EXPECT_EQ(blocked, multiply(a, b, opts)) << "kc=" << kc
                                               << " threads=" << threads;
    }
  }
}

TEST(GemmTail, Sse2TierBitIdenticalToScalar) {
  if (!simd_tier_available(SimdTier::kSse2)) {
    GTEST_SKIP() << "SSE2 tier not available on this host";
  }
  // SSE2 uses separate mulpd/addpd — same per-element roundings as the
  // scalar chain, so the results must agree to the bit on every fringe.
  for (const Shape& s : kShapes) {
    Matrix a(s.m, s.k), b(s.k, s.n);
    util::fill_random(a, 25);
    util::fill_random(b, 26);
    const Matrix scalar = multiply(
        a, b, {.kernel = GemmKernel::kPacked, .tier = SimdTier::kScalar});
    const Matrix sse2 = multiply(
        a, b, {.kernel = GemmKernel::kPacked, .tier = SimdTier::kSse2});
    EXPECT_EQ(scalar, sse2) << "m=" << s.m << " n=" << s.n << " k=" << s.k;
  }
}

TEST(GemmTail, EachTierDeterministicAcrossBlockingAndThreads) {
  // Within one tier, MC/NC/KC and the thread width must never change bits
  // (the per-element accumulation chain is invariant to them).
  Matrix a(26, 35), b(35, 18);
  util::fill_random(a, 27);
  util::fill_random(b, 28);
  for (SimdTier tier : available_tiers()) {
    const Matrix base = multiply(
        a, b, {.kernel = GemmKernel::kPacked, .threads = 1, .tier = tier});
    for (const auto& [mc, nc, kc] :
         std::vector<std::array<std::int64_t, 3>>{
             {8, 8, 5}, {64, 1024, 256}, {6, 16, 35}}) {
      GemmOptions opts{.kernel = GemmKernel::kPacked, .threads = 4,
                       .tier = tier, .mc = mc, .nc = nc, .kc = kc};
      EXPECT_EQ(base, multiply(a, b, opts))
          << simd_tier_name(tier) << " mc=" << mc << " nc=" << nc
          << " kc=" << kc;
    }
  }
}

TEST(GemmTail, BetaPathsOnFringeTiles) {
  // beta == 0 must overwrite (never read) C, including fringe tiles, and
  // beta == 1 must accumulate exactly, for every tier.
  for (SimdTier tier : available_tiers()) {
    const std::int64_t m = 7, n = 11, k = 9;
    Matrix a(m, k), b(k, n);
    util::fill_random(a, 29);
    util::fill_random(b, 30);
    const Matrix want = oracle(a, b);
    GemmOptions opts{.kernel = GemmKernel::kPacked, .tier = tier, .mc = 4,
                     .nc = 8, .kc = 4};

    Matrix c0(m, n);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        c0(i, j) = std::numeric_limits<double>::quiet_NaN();
      }
    }
    dgemm(m, n, k, 1.0, a.data(), k, b.data(), n, 0.0, c0.data(), n, opts);
    EXPECT_LE(Matrix::max_abs_diff(c0, want), tol(k))
        << simd_tier_name(tier) << " beta=0 over NaN";

    Matrix c1 = want;
    dgemm(m, n, k, 1.0, a.data(), k, b.data(), n, 1.0, c1.data(), n, opts);
    Matrix doubled = want;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) doubled(i, j) *= 2.0;
    }
    EXPECT_LE(Matrix::max_abs_diff(c1, doubled), 2 * tol(k))
        << simd_tier_name(tier) << " beta=1 accumulate";
  }
}

}  // namespace
}  // namespace summagen::blas

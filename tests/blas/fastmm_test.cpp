// Strassen-family fast-MM tests (src/blas/fastmm.hpp).
//
// Fast MM is legitimately not bit-identical to the classical kernels, so
// the regime here is norm-bound: ||C_fast - C_classical||_F must stay
// within fastmm_error_budget(k, depth) * eps * ||A||_F * ||B||_F. What
// stays exact: the algebra of the coefficient tables (Brent equations),
// run-to-run bit-identity of fast runs per tier, bit-equality with
// classical whenever no fast split applies (depth cap 0, sizes below the
// crossover), and the ~0-alloc warm-run property of the pooled
// temporaries.
#include "src/blas/fastmm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <tuple>

#include "src/blas/gemm.hpp"
#include "src/blas/tune.hpp"
#include "src/util/accounting.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

using util::Matrix;

double frobenius(const Matrix& x) {
  double s = 0.0;
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    for (std::int64_t j = 0; j < x.cols(); ++j) s += x(i, j) * x(i, j);
  }
  return std::sqrt(s);
}

double frobenius_diff(const Matrix& x, const Matrix& y) {
  double s = 0.0;
  for (std::int64_t i = 0; i < x.rows(); ++i) {
    for (std::int64_t j = 0; j < x.cols(); ++j) {
      const double d = x(i, j) - y(i, j);
      s += d * d;
    }
  }
  return std::sqrt(s);
}

bool bit_identical(const Matrix& x, const Matrix& y) {
  return x.rows() == y.rows() && x.cols() == y.cols() &&
         std::memcmp(x.data(), y.data(),
                     static_cast<std::size_t>(x.rows() * x.cols()) *
                         sizeof(double)) == 0;
}

TEST(FastMmTables, BrentEquationsHoldForEveryAlgorithm) {
  for (const FastMmAlgorithm* alg : fastmm_algorithms()) {
    EXPECT_TRUE(verify_brent_equations(*alg)) << alg->name;
    EXPECT_GT(alg->rank, 0) << alg->name;
    EXPECT_LT(alg->rank, alg->mt * alg->kt * alg->nt)
        << alg->name << ": no multiplication saved";
  }
}

TEST(FastMmTables, BrentCheckRejectsACorruptedTable) {
  const FastMmAlgorithm& good = strassen_algorithm();
  signed char u[7 * 4];
  std::memcpy(u, good.u, sizeof(u));
  u[0] = -u[0] + 1;  // flip one coefficient
  FastMmAlgorithm bad = good;
  bad.u = u;
  EXPECT_FALSE(verify_brent_equations(bad));
}

TEST(FastMmKindNames, RoundTripAndErrors) {
  for (FastMmKind kind : {FastMmKind::kClassical, FastMmKind::kStrassen,
                          FastMmKind::kS223, FastMmKind::kAuto}) {
    EXPECT_EQ(parse_fastmm_kind(fastmm_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_fastmm_kind("winograd"), std::invalid_argument);
  EXPECT_THROW(parse_fastmm_kind(""), std::invalid_argument);
}

TEST(FastMmChoose, RespectsKindCrossoverAndDepth) {
  using detail::choose_fastmm;
  // Classical never splits; depth cap stops recursion.
  EXPECT_EQ(choose_fastmm(256, 256, 256, FastMmKind::kClassical, 8, 0, 3),
            nullptr);
  EXPECT_EQ(choose_fastmm(256, 256, 256, FastMmKind::kStrassen, 8, 3, 3),
            nullptr);
  EXPECT_EQ(choose_fastmm(256, 256, 256, FastMmKind::kStrassen, 8, 0, 0),
            nullptr);
  // Crossover: a split may not push any sub-block dimension below it.
  EXPECT_EQ(choose_fastmm(15, 15, 15, FastMmKind::kStrassen, 8, 0, 3),
            nullptr);
  EXPECT_EQ(choose_fastmm(16, 16, 16, FastMmKind::kStrassen, 8, 0, 3),
            &strassen_algorithm());
  // s223 needs n divisible-ish room for thirds.
  EXPECT_EQ(choose_fastmm(16, 23, 16, FastMmKind::kS223, 8, 0, 3), nullptr);
  EXPECT_EQ(choose_fastmm(16, 24, 16, FastMmKind::kS223, 8, 0, 3),
            &s223_algorithm());
  // Auto: wide-C problems prefer the <2,2,3> split, square ones Strassen.
  EXPECT_EQ(choose_fastmm(100, 100, 100, FastMmKind::kAuto, 8, 0, 3),
            &strassen_algorithm());
  EXPECT_EQ(choose_fastmm(100, 300, 100, FastMmKind::kAuto, 8, 0, 3),
            &s223_algorithm());
  // Auto falls back to classical when nothing fits.
  EXPECT_EQ(choose_fastmm(15, 15, 15, FastMmKind::kAuto, 8, 0, 3), nullptr);
}

TEST(FastMmResolve, ExplicitCrossoverWinsOverDefault) {
  GemmOptions opts;
  opts.fastmm = FastMmKind::kStrassen;
  opts.fastmm_crossover = 77;
  EXPECT_EQ(resolve_fastmm_crossover(opts), 77);
  opts.fastmm_crossover = 0;
  EXPECT_GT(resolve_fastmm_crossover(opts), 0);
}

TEST(FastMmModel, FastCostsLessThanClassicalAboveCrossover) {
  GemmOptions fast;
  fast.fastmm = FastMmKind::kStrassen;
  fast.fastmm_crossover = 64;
  fast.fastmm_max_depth = 3;
  const double classical = 2.0 * 1024.0 * 1024.0 * 1024.0;
  const double modeled = fastmm_modeled_flops(1024, 1024, 1024, fast);
  EXPECT_LT(modeled, classical);
  EXPECT_GT(modeled, 0.5 * classical);
  // Below the crossover the model degenerates to 2mnk exactly.
  EXPECT_EQ(fastmm_modeled_flops(100, 100, 100, fast),
            2.0 * 100 * 100 * 100);
  GemmOptions classic;
  EXPECT_EQ(fastmm_modeled_flops(1024, 1024, 1024, classic), classical);
}

TEST(FastMmModel, ReachableDepthTracksSizeAndCaps) {
  GemmOptions opts;
  opts.fastmm = FastMmKind::kStrassen;
  opts.fastmm_crossover = 16;
  opts.fastmm_max_depth = 10;
  EXPECT_EQ(fastmm_max_reachable_depth(128, 128, 128, opts), 3);
  opts.fastmm_max_depth = 2;
  EXPECT_EQ(fastmm_max_reachable_depth(128, 128, 128, opts), 2);
  opts.fastmm_max_depth = 10;
  EXPECT_EQ(fastmm_max_reachable_depth(16, 16, 16, opts), 0);
}

// ---------------------------------------------------------------------------
// Norm-bound accuracy over shapes (odd/prime, tall-skinny, degenerate)
// ---------------------------------------------------------------------------

struct FastCase {
  std::int64_t m, n, k;
};

class FastMmShapes
    : public ::testing::TestWithParam<std::tuple<FastMmKind, FastCase>> {};

TEST_P(FastMmShapes, WithinNormBoundOfClassical) {
  const auto [kind, shape] = GetParam();
  Matrix a(shape.m, shape.k), b(shape.k, shape.n);
  util::fill_random(a, 11);
  util::fill_random(b, 12);

  GemmOptions classical;
  classical.threads = 2;
  GemmOptions fast = classical;
  fast.fastmm = kind;
  fast.fastmm_crossover = 8;  // tiny: force real recursion at test sizes
  fast.fastmm_max_depth = 3;

  const Matrix want = multiply(a, b, classical);
  const Matrix got = multiply(a, b, fast);

  const int depth =
      fastmm_max_reachable_depth(shape.m, shape.n, shape.k, fast);
  const double bound = fastmm_error_budget(shape.k, depth) *
                       std::numeric_limits<double>::epsilon() *
                       frobenius(a) * frobenius(b);
  EXPECT_LE(frobenius_diff(got, want), bound)
      << fastmm_kind_name(kind) << " m=" << shape.m << " n=" << shape.n
      << " k=" << shape.k << " depth=" << depth;
  // The budget must be a real bound, not a tautology: it stays far below
  // the result's own magnitude for these well-scaled inputs.
  if (frobenius(want) > 1.0) EXPECT_LT(bound, 1e-3 * frobenius(want));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndShapes, FastMmShapes,
    ::testing::Combine(
        ::testing::Values(FastMmKind::kStrassen, FastMmKind::kS223,
                          FastMmKind::kAuto),
        ::testing::Values(FastCase{64, 64, 64},      // power of two
                          FastCase{61, 67, 71},      // primes: full peeling
                          FastCase{96, 33, 96},      // odd middle
                          FastCase{128, 17, 64},     // narrow C
                          FastCase{48, 144, 48},     // wide C (s223 home)
                          FastCase{1, 64, 64},       // m = 1 degenerate
                          FastCase{64, 1, 64},       // n = 1 degenerate
                          FastCase{64, 64, 1},       // k = 1 degenerate
                          FastCase{200, 3, 5})),     // tall-skinny
    [](const auto& info) {
      const FastCase c = std::get<1>(info.param);
      return std::string(fastmm_kind_name(std::get<0>(info.param))) + "_" +
             std::to_string(c.m) + "x" + std::to_string(c.n) + "x" +
             std::to_string(c.k);
    });

TEST(FastMmAccuracy, AlphaBetaHandledIncludingNanOverwrite) {
  const std::int64_t n = 48;
  Matrix a(n, n), b(n, n);
  util::fill_random(a, 21);
  util::fill_random(b, 22);
  GemmOptions classical;
  classical.threads = 1;
  GemmOptions fast = classical;
  fast.fastmm = FastMmKind::kStrassen;
  fast.fastmm_crossover = 8;

  for (const double alpha : {1.0, 2.5, -0.75}) {
    for (const double beta : {0.0, 1.0, -0.5}) {
      Matrix c_classical(n, n), c_fast(n, n);
      if (beta == 0.0) {
        // beta == 0 must overwrite without reading: poison C with NaN.
        const double nan = std::numeric_limits<double>::quiet_NaN();
        for (std::int64_t i = 0; i < n; ++i) {
          for (std::int64_t j = 0; j < n; ++j) {
            c_classical(i, j) = nan;
            c_fast(i, j) = nan;
          }
        }
      } else {
        util::fill_random(c_classical, 23);
        util::fill_random(c_fast, 23);
      }
      dgemm(n, n, n, alpha, a.data(), n, b.data(), n, beta,
            c_classical.data(), n, classical);
      dgemm(n, n, n, alpha, a.data(), n, b.data(), n, beta, c_fast.data(), n,
            fast);
      const int depth = fastmm_max_reachable_depth(n, n, n, fast);
      const double bound = fastmm_error_budget(n, depth) *
                           std::numeric_limits<double>::epsilon() *
                           std::abs(alpha) * frobenius(a) * frobenius(b);
      // The beta*C term is applied identically on both sides (one multiply
      // and add per element), so it adds nothing to the comparison budget.
      EXPECT_LE(frobenius_diff(c_fast, c_classical), bound + 1e-12)
          << "alpha=" << alpha << " beta=" << beta;
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          ASSERT_FALSE(std::isnan(c_fast(i, j)))
              << "NaN leaked at " << i << "," << j << " beta=" << beta;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism and depth caps
// ---------------------------------------------------------------------------

TEST(FastMmDeterminism, DepthZeroIsBitIdenticalToClassical) {
  Matrix a(96, 96), b(96, 96);
  util::fill_random(a, 31);
  util::fill_random(b, 32);
  GemmOptions classical;
  GemmOptions fast = classical;
  fast.fastmm = FastMmKind::kStrassen;
  fast.fastmm_crossover = 8;
  fast.fastmm_max_depth = 0;  // cap at zero: must degenerate to classical
  EXPECT_TRUE(bit_identical(multiply(a, b, classical), multiply(a, b, fast)));
}

TEST(FastMmDeterminism, BelowCrossoverIsBitIdenticalToClassical) {
  Matrix a(64, 64), b(64, 64);
  util::fill_random(a, 33);
  util::fill_random(b, 34);
  GemmOptions classical;
  GemmOptions fast = classical;
  fast.fastmm = FastMmKind::kAuto;
  fast.fastmm_crossover = 512;  // 64/2 < 512: no split applies
  EXPECT_TRUE(bit_identical(multiply(a, b, classical), multiply(a, b, fast)));
}

class FastMmRunToRun : public ::testing::TestWithParam<SimdTier> {};

TEST_P(FastMmRunToRun, TwoIdenticalRunsAreBitIdentical) {
  const SimdTier tier = GetParam();
  if (tier != SimdTier::kAuto && !simd_tier_available(tier)) {
    GTEST_SKIP() << "tier unavailable on this host";
  }
  Matrix a(90, 126, 0.0), b(126, 90, 0.0);
  util::fill_random(a, 41);
  util::fill_random(b, 42);
  GemmOptions fast;
  fast.tier = tier;
  fast.fastmm = FastMmKind::kAuto;
  fast.fastmm_crossover = 8;
  // Parallel products and parallel leaves: scheduling must not leak into
  // the bits (fixed combination orders, per-product buffers).
  const Matrix first = multiply(a, b, fast);
  for (int run = 0; run < 3; ++run) {
    EXPECT_TRUE(bit_identical(first, multiply(a, b, fast))) << "run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, FastMmRunToRun,
                         ::testing::Values(SimdTier::kAuto, SimdTier::kScalar),
                         [](const auto& info) {
                           return std::string(simd_tier_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Pooled temporaries: warm runs stay ~0-alloc, fastmm counters tick
// ---------------------------------------------------------------------------

TEST(FastMmPooling, WarmSerialRunAllocatesNothingAndCountsLeases) {
  const std::int64_t n = 96;
  Matrix a(n, n), b(n, n), c(n, n);
  util::fill_random(a, 51);
  util::fill_random(b, 52);
  GemmOptions fast;
  fast.threads = 1;  // serial: the lease sequence is deterministic
  fast.fastmm = FastMmKind::kStrassen;
  fast.fastmm_crossover = 8;
  fast.fastmm_max_depth = 2;
  // Warm-up primes every size class the recursion shape needs.
  dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, fast);

  const util::DataPlaneStats base = util::data_plane_stats();
  dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, fast);
  const util::DataPlaneStats d = util::data_plane_stats().since(base);
  EXPECT_EQ(d.allocs, 0) << "warm fast-MM run hit the heap";
  EXPECT_GT(d.fastmm_leases, 0);
  EXPECT_GT(d.fastmm_bytes, 0);
  // Every fast-MM lease is also a pool acquire, all freelist hits.
  EXPECT_GE(d.pool_acquires, d.fastmm_leases);
  EXPECT_EQ(d.pool_hits, d.pool_acquires);
}

TEST(FastMmPooling, WarmParallelRunStaysNearZeroAlloc) {
  const std::int64_t n = 128;
  Matrix a(n, n), b(n, n), c(n, n);
  util::fill_random(a, 53);
  util::fill_random(b, 54);
  GemmOptions fast;
  fast.fastmm = FastMmKind::kStrassen;
  fast.fastmm_crossover = 16;
  // Three warm-ups: concurrent lease peaks can differ run to run, so let
  // the pool approach its high-water mark first.
  for (int w = 0; w < 3; ++w) {
    dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, fast);
  }

  const util::DataPlaneStats base = util::data_plane_stats();
  dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, fast);
  const util::DataPlaneStats d = util::data_plane_stats().since(base);
  // The lease peak depends on scheduling, so an exact zero (the serial
  // test above) or a fixed byte bound would be load-sensitive. The
  // property that matters: warm allocations are a small fraction of the
  // leased traffic — per-call staging would make them equal.
  EXPECT_GT(d.fastmm_leases, 0);
  EXPECT_GT(d.fastmm_bytes, 0);
  EXPECT_LT(d.alloc_bytes, d.fastmm_bytes / 2)
      << "warm parallel fast-MM run re-allocated most of its leases";
}

TEST(FastMmPooling, ClassicalRunsRecordNoFastMmTraffic) {
  const std::int64_t n = 64;
  Matrix a(n, n), b(n, n), c(n, n);
  util::fill_random(a, 55);
  util::fill_random(b, 56);
  const util::DataPlaneStats base = util::data_plane_stats();
  dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, {});
  const util::DataPlaneStats d = util::data_plane_stats().since(base);
  EXPECT_EQ(d.fastmm_leases, 0);
  EXPECT_EQ(d.fastmm_bytes, 0);
}

// ---------------------------------------------------------------------------
// Option validation
// ---------------------------------------------------------------------------

TEST(FastMmOptions, NegativeKnobsAreRejected) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  GemmOptions opts;
  opts.fastmm_crossover = -1;
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(),
                     4, opts),
               std::invalid_argument);
  opts.fastmm_crossover = 0;
  opts.fastmm_max_depth = -1;
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(),
                     4, opts),
               std::invalid_argument);
}

TEST(FastMmOptions, TuneRecordRoundTripsCrossover) {
  TuneFile file;
  TuneRecord rec;
  rec.bs = {96, 2048, 256};
  rec.gflops = 30.0;
  rec.fastmm_crossover = 384;
  file["cpu"]["avx2"] = rec;
  TuneFile parsed;
  ASSERT_TRUE(parse_tune_file(format_tune_file(file), &parsed));
  EXPECT_EQ(parsed["cpu"]["avx2"].fastmm_crossover, 384);
  // Old-format records (no crossover field) parse to 0 = untuned.
  ASSERT_TRUE(parse_tune_file(
      R"({"cpus": {"cpu": {"avx2": {"mc": 8, "nc": 16, "kc": 4}}}})",
      &parsed));
  EXPECT_EQ(parsed["cpu"]["avx2"].fastmm_crossover, 0);
}

}  // namespace
}  // namespace summagen::blas

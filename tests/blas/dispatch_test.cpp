// Dispatch-layer tests: tier parsing/availability and the force-scalar
// override, the tune-cache JSON round trip and block-size resolution, and
// the process-wide pack cache (hit/miss counters, waiter handshake,
// budget eviction, quiescent trim).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/blas/gemm.hpp"
#include "src/blas/pack_cache.hpp"
#include "src/blas/simd.hpp"
#include "src/blas/tune.hpp"
#include "src/util/accounting.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

// RAII environment override (tests run single-threaded at the top level).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

TEST(SimdDispatch, ParseAndNameRoundTrip) {
  for (SimdTier t : {SimdTier::kAuto, SimdTier::kScalar, SimdTier::kSse2,
                     SimdTier::kAvx2}) {
    EXPECT_EQ(parse_simd_tier(simd_tier_name(t)), t);
  }
  EXPECT_THROW(parse_simd_tier("avx512"), std::invalid_argument);
  EXPECT_THROW(parse_simd_tier(""), std::invalid_argument);
}

TEST(SimdDispatch, ScalarAlwaysAvailableAndAutoResolves) {
  EXPECT_TRUE(simd_tier_available(SimdTier::kScalar));
  const SimdTier best = best_simd_tier();
  EXPECT_TRUE(simd_tier_available(best));
  EXPECT_EQ(resolve_simd_tier(SimdTier::kAuto), best);
  EXPECT_EQ(resolve_simd_tier(SimdTier::kScalar), SimdTier::kScalar);
}

TEST(SimdDispatch, ForceScalarCapsAvailability) {
  ScopedEnv force("SUMMAGEN_FORCE_SCALAR", "1");
  EXPECT_TRUE(force_scalar_requested());
  EXPECT_EQ(best_simd_tier(), SimdTier::kScalar);
  EXPECT_FALSE(simd_tier_available(SimdTier::kSse2));
  EXPECT_FALSE(simd_tier_available(SimdTier::kAvx2));
  // Explicitly requesting a vector tier under the override must fail
  // loudly rather than silently downgrade.
  if (simd_tier_compiled(SimdTier::kSse2)) {
    EXPECT_THROW(resolve_simd_tier(SimdTier::kSse2), std::invalid_argument);
  }
}

TEST(SimdDispatch, ForceScalarZeroMeansOff) {
  ScopedEnv force("SUMMAGEN_FORCE_SCALAR", "0");
  EXPECT_FALSE(force_scalar_requested());
}

TEST(SimdDispatch, UnavailableExplicitTierThrows) {
  for (SimdTier t : {SimdTier::kSse2, SimdTier::kAvx2}) {
    if (!simd_tier_available(t)) {
      EXPECT_THROW(resolve_simd_tier(t), std::invalid_argument);
    }
  }
}

TEST(TuneCache, JsonRoundTrip) {
  TuneFile file;
  file["Test CPU @ 3.2GHz"]["avx2"] = {{96, 2048, 256}, 31.5};
  file["Test CPU @ 3.2GHz"]["scalar"] = {{128, 4096, 256}, 10.8};
  file["Other \"quoted\" CPU"]["sse2"] = {{64, 512, 128}, 7.25};
  const std::string text = format_tune_file(file);
  TuneFile parsed;
  ASSERT_TRUE(parse_tune_file(text, &parsed));
  ASSERT_EQ(parsed.size(), 2u);
  const TuneRecord& avx2 = parsed["Test CPU @ 3.2GHz"]["avx2"];
  EXPECT_EQ(avx2.bs.mc, 96);
  EXPECT_EQ(avx2.bs.nc, 2048);
  EXPECT_EQ(avx2.bs.kc, 256);
  EXPECT_DOUBLE_EQ(avx2.gflops, 31.5);
  EXPECT_EQ(parsed["Other \"quoted\" CPU"]["sse2"].bs.kc, 128);
}

TEST(TuneCache, ParseRejectsMalformedAndToleratesUnknownFields) {
  TuneFile out;
  EXPECT_FALSE(parse_tune_file("", &out));
  EXPECT_FALSE(parse_tune_file("{\"cpus\": {", &out));
  EXPECT_FALSE(parse_tune_file("not json", &out));
  // Unknown top-level keys (version, future additions) are skipped.
  ASSERT_TRUE(parse_tune_file(
      R"({"version": 1, "future": [1, {"x": "}"}], "cpus":
         {"cpu": {"avx2": {"mc": 8, "nc": 16, "kc": 4, "gflops": 1.0}}}})",
      &out));
  EXPECT_EQ(out["cpu"]["avx2"].bs.mc, 8);
}

TEST(TuneCache, DefaultsArePositiveForEveryTier) {
  for (SimdTier t : {SimdTier::kAuto, SimdTier::kScalar, SimdTier::kSse2,
                     SimdTier::kAvx2}) {
    const BlockSizes bs = default_block_sizes(t);
    EXPECT_GT(bs.mc, 0);
    EXPECT_GT(bs.nc, 0);
    EXPECT_GT(bs.kc, 0);
  }
}

TEST(TuneCache, ResolveHonoursExplicitOverrides) {
  GemmOptions opts;
  opts.mc = 24;
  opts.nc = 96;
  opts.kc = 12;
  const BlockSizes bs = resolve_block_sizes(opts, SimdTier::kScalar);
  EXPECT_EQ(bs.mc, 24);
  EXPECT_EQ(bs.nc, 96);
  EXPECT_EQ(bs.kc, 12);
  // Partial overrides keep the remaining auto values positive.
  GemmOptions partial;
  partial.kc = 5;
  const BlockSizes pb = resolve_block_sizes(partial, SimdTier::kScalar);
  EXPECT_EQ(pb.kc, 5);
  EXPECT_GT(pb.mc, 0);
  EXPECT_GT(pb.nc, 0);
}

TEST(TuneCache, CpuModelKeyIsNonEmpty) {
  EXPECT_FALSE(cpu_model_key().empty());
}

TEST(PackCache, MissThenHitCounts) {
  PackCache& cache = PackCache::instance();
  const PackKey key{pack_tag({0xfeedu, 1}), 0, 0, 8};
  const auto base = util::data_plane_stats();
  int packs = 0;
  {
    const auto lease1 = cache.lease(key, 64, [&](double* dst) {
      ++packs;
      for (int i = 0; i < 64; ++i) dst[i] = i;
    });
    ASSERT_TRUE(static_cast<bool>(lease1));
    const auto lease2 =
        cache.lease(key, 64, [&](double* dst) { ++packs; (void)dst; });
    ASSERT_TRUE(static_cast<bool>(lease2));
    EXPECT_EQ(lease1.data(), lease2.data());
    EXPECT_EQ(lease2.data()[63], 63.0);
  }
  EXPECT_EQ(packs, 1);
  const auto d = util::data_plane_stats().since(base);
  EXPECT_EQ(d.pack_lookups, 2);
  EXPECT_EQ(d.pack_hits, 1);
  cache.trim();
}

TEST(PackCache, DistinctKeysPackSeparately) {
  PackCache& cache = PackCache::instance();
  const std::uint64_t tag = pack_tag({0xfeedu, 2});
  int packs = 0;
  const auto fill = [&](double* dst) {
    ++packs;
    dst[0] = packs;
  };
  const auto a = cache.lease(PackKey{tag, 0, 0, 8}, 8, fill);
  const auto b = cache.lease(PackKey{tag, 8, 0, 8}, 8, fill);
  const auto c = cache.lease(PackKey{tag, 0, 256, 8}, 8, fill);
  EXPECT_EQ(packs, 3);
  EXPECT_NE(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
  cache.trim();
}

TEST(PackCache, ConcurrentLeasesPackOnce) {
  PackCache& cache = PackCache::instance();
  const PackKey key{pack_tag({0xfeedu, 3}), 0, 0, 8};
  std::atomic<int> packs{0};
  std::vector<std::thread> threads;
  std::vector<const double*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto lease = cache.lease(key, 256, [&](double* dst) {
        packs.fetch_add(1);
        for (int i = 0; i < 256; ++i) dst[i] = 1.5;
      });
      seen[static_cast<std::size_t>(t)] = lease.data();
      EXPECT_EQ(lease.data()[255], 1.5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(packs.load(), 1);
  for (const double* p : seen) EXPECT_EQ(p, seen[0]);
  cache.trim();
}

TEST(PackCache, TrimDropsUnleasedEntries) {
  PackCache& cache = PackCache::instance();
  cache.trim();
  const std::int64_t before = cache.resident_bytes();
  {
    const auto lease = cache.lease(
        PackKey{pack_tag({0xfeedu, 4}), 0, 0, 8}, 1024,
        [](double* dst) { dst[0] = 1.0; });
    // Leased entries survive a trim.
    cache.trim();
    EXPECT_GE(cache.resident_bytes(), before + 1024 * 8);
  }
  cache.trim();
  EXPECT_EQ(cache.resident_bytes(), before);
}

TEST(PackCache, BudgetEvictsLeastRecentlyUsed) {
  PackCache& cache = PackCache::instance();
  cache.trim();
  const std::int64_t old_budget = cache.budget_bytes();
  // Budget fits two 1 KiB entries but not three.
  cache.set_budget_bytes(2 * 1024 * 8 + 64);
  const std::uint64_t tag = pack_tag({0xfeedu, 5});
  int packs = 0;
  const auto fill = [&](double* dst) {
    ++packs;
    dst[0] = 1.0;
  };
  (void)cache.lease(PackKey{tag, 0, 0, 8}, 1024, fill);
  (void)cache.lease(PackKey{tag, 1, 0, 8}, 1024, fill);
  (void)cache.lease(PackKey{tag, 2, 0, 8}, 1024, fill);  // evicts key 0
  EXPECT_EQ(packs, 3);
  (void)cache.lease(PackKey{tag, 2, 0, 8}, 1024, fill);  // still resident
  EXPECT_EQ(packs, 3);
  (void)cache.lease(PackKey{tag, 0, 0, 8}, 1024, fill);  // was evicted
  EXPECT_EQ(packs, 4);
  cache.set_budget_bytes(old_budget);
  cache.trim();
}

TEST(PackCache, DgemmReusesPackedBAcrossCalls) {
  // Two dgemm calls with the same b_pack_key: the second packs nothing.
  util::Matrix a(32, 48), b(48, 24), c(32, 24);
  util::fill_random(a, 31);
  util::fill_random(b, 32);
  GemmOptions opts;
  opts.kernel = GemmKernel::kPacked;
  opts.b_pack_key = pack_tag({0xfeedu, 6});
  const auto base = util::data_plane_stats();
  dgemm(32, 24, 48, 1.0, a.data(), 48, b.data(), 24, 0.0, c.data(), 24,
        opts);
  util::Matrix first = c;
  dgemm(32, 24, 48, 1.0, a.data(), 48, b.data(), 24, 0.0, c.data(), 24,
        opts);
  EXPECT_EQ(first, c);
  const auto d = util::data_plane_stats().since(base);
  EXPECT_GE(d.pack_lookups, 2);
  EXPECT_GE(d.pack_hits, 1);
  EXPECT_GT(d.pack_hit_rate(), 0.0);
  // Keyed and unkeyed runs agree bitwise (the pack cache only changes who
  // packs, never what is packed).
  GemmOptions unkeyed = opts;
  unkeyed.b_pack_key = 0;
  util::Matrix c2(32, 24);
  dgemm(32, 24, 48, 1.0, a.data(), 48, b.data(), 24, 0.0, c2.data(), 24,
        unkeyed);
  EXPECT_EQ(first, c2);
  PackCache::instance().trim();
}

TEST(PackCache, PackTagNeverZeroAndOrderSensitive) {
  EXPECT_NE(pack_tag({0}), 0u);
  EXPECT_NE(pack_tag({1, 2}), pack_tag({2, 1}));
  EXPECT_NE(pack_tag({1, 2}), pack_tag({1, 2, 0}));
}

TEST(GemmValidation, RejectsNonPositiveBlockAndNegativeBlocking) {
  util::Matrix a(4, 4), b(4, 4), c(4, 4);
  GemmOptions bad_block{.kernel = GemmKernel::kBlocked, .block = 0};
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(),
                     4, bad_block),
               std::invalid_argument);
  GemmOptions bad_threaded{.kernel = GemmKernel::kThreaded, .block = -8};
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(),
                     4, bad_threaded),
               std::invalid_argument);
  GemmOptions bad_mc{.kernel = GemmKernel::kPacked, .mc = -1};
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(),
                     4, bad_mc),
               std::invalid_argument);
}

}  // namespace
}  // namespace summagen::blas

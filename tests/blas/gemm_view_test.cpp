// Tests of the view-based dgemm overload: validation, aliasing rejection,
// and the bit-identity oracle — a GEMM on strided subviews of a global
// matrix must produce exactly the bytes the same GEMM produces on compact
// copies of those blocks (the zero-copy refactor moves operands, never the
// operation sequence).
#include <gtest/gtest.h>

#include <stdexcept>

#include "src/blas/gemm.hpp"
#include "src/util/matrix.hpp"
#include "src/util/matrix_view.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

using summagen::util::ConstMatrixView;
using summagen::util::Matrix;
using summagen::util::MatrixView;
using summagen::util::block_view;
using summagen::util::materialize;

TEST(GemmView, MatchesWholeMatrixPointerCall) {
  const std::int64_t n = 48;
  Matrix a(n, n), b(n, n), c_view(n, n), c_ptr(n, n);
  summagen::util::fill_random(a, 11);
  summagen::util::fill_random(b, 12);
  c_view.fill(0.5);
  c_ptr.fill(0.5);

  dgemm(1.25, ConstMatrixView(a), ConstMatrixView(b), -0.5,
        MatrixView(c_view));
  dgemm(n, n, n, 1.25, a.data(), n, b.data(), n, -0.5, c_ptr.data(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(c_view(i, j), c_ptr(i, j)) << i << "," << j;
    }
  }
}

// The oracle: multiply strided blocks living inside one big global buffer,
// then multiply compact materialized copies of the same blocks, and demand
// bit-identical C bytes for every kernel.
TEST(GemmView, StridedSubviewsBitIdenticalToCompactCopies) {
  const std::int64_t m = 30, n = 26, k = 34;
  Matrix global(96, 96);
  summagen::util::fill_random(global, 21);

  const ConstMatrixView a = block_view(
      static_cast<const Matrix&>(global), 3, 5, m, k);
  const ConstMatrixView b = block_view(
      static_cast<const Matrix&>(global), 40, 7, k, n);
  const Matrix a_copy = materialize(a);
  const Matrix b_copy = materialize(b);

  for (GemmKernel kernel :
       {GemmKernel::kNaive, GemmKernel::kBlocked, GemmKernel::kThreaded,
        GemmKernel::kPacked}) {
    GemmOptions opts;
    opts.kernel = kernel;

    Matrix c_frame(64, 64);
    c_frame.fill(2.0);
    MatrixView c_strided = block_view(c_frame, 10, 20, m, n);
    dgemm(1.0, a, b, 1.0, c_strided, opts);

    Matrix c_compact(m, n);
    c_compact.fill(2.0);
    dgemm(1.0, ConstMatrixView(a_copy), ConstMatrixView(b_copy), 1.0,
          MatrixView(c_compact), opts);

    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        EXPECT_EQ(c_strided(i, j), c_compact(i, j))
            << "kernel " << static_cast<int>(kernel) << " at " << i << ","
            << j;
      }
    }
    // The frame around the strided C must be untouched.
    EXPECT_EQ(c_frame(9, 20), 2.0);
    EXPECT_EQ(c_frame(10 + m, 20), 2.0);
    EXPECT_EQ(c_frame(10, 19), 2.0);
    EXPECT_EQ(c_frame(10, 20 + n), 2.0);
  }
}

TEST(GemmView, InnerExtentMismatchThrows) {
  Matrix a(4, 5), b(6, 3), c(4, 3);
  EXPECT_THROW(
      dgemm(1.0, ConstMatrixView(a), ConstMatrixView(b), 0.0, MatrixView(c)),
      std::invalid_argument);
}

TEST(GemmView, OutputShapeMismatchThrows) {
  Matrix a(4, 5), b(5, 3), c(4, 4);
  EXPECT_THROW(
      dgemm(1.0, ConstMatrixView(a), ConstMatrixView(b), 0.0, MatrixView(c)),
      std::invalid_argument);
}

TEST(GemmView, AliasedOutputThrows) {
  Matrix m(12, 12);
  summagen::util::fill_random(m, 3);
  const ConstMatrixView a = block_view(
      static_cast<const Matrix&>(m), 0, 0, 4, 4);
  const ConstMatrixView b = block_view(
      static_cast<const Matrix&>(m), 8, 8, 4, 4);
  // C overlapping A.
  EXPECT_THROW(dgemm(1.0, a, b, 0.0, block_view(m, 2, 2, 4, 4)),
               std::invalid_argument);
  // C overlapping B.
  EXPECT_THROW(dgemm(1.0, a, b, 0.0, block_view(m, 7, 7, 4, 4)),
               std::invalid_argument);
}

TEST(GemmView, EmptyProductIsANoOp) {
  Matrix a(0, 7), b(7, 0), c(0, 0);
  EXPECT_NO_THROW(
      dgemm(1.0, ConstMatrixView(a), ConstMatrixView(b), 0.0, MatrixView(c)));
}

}  // namespace
}  // namespace summagen::blas

#include "src/blas/gemm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

using util::Matrix;

// Oracle: plain ijk triple loop, independent of the library kernels.
Matrix oracle(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
  return c;
}

double tol(std::int64_t k) { return 1e-12 * static_cast<double>(k + 1); }

struct Case {
  std::int64_t m, n, k;
};

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<GemmKernel, Case>> {};

TEST_P(GemmShapes, MatchesOracle) {
  const auto [kernel, c] = GetParam();
  Matrix a(c.m, c.k), b(c.k, c.n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  GemmOptions opts;
  opts.kernel = kernel;
  opts.threads = 3;
  opts.block = 16;  // force multiple blocks even at small sizes
  const Matrix got = multiply(a, b, opts);
  const Matrix want = oracle(a, b);
  EXPECT_LE(Matrix::max_abs_diff(got, want), tol(c.k))
      << "m=" << c.m << " n=" << c.n << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndShapes, GemmShapes,
    ::testing::Combine(
        ::testing::Values(GemmKernel::kNaive, GemmKernel::kBlocked,
                          GemmKernel::kThreaded, GemmKernel::kPacked),
        ::testing::Values(Case{1, 1, 1}, Case{1, 7, 3}, Case{5, 1, 9},
                          Case{8, 8, 8}, Case{17, 19, 23}, Case{16, 64, 16},
                          Case{64, 16, 48}, Case{33, 31, 1},
                          Case{100, 100, 100})),
    [](const auto& param_info) {
      const auto kernel = std::get<0>(param_info.param);
      const auto c = std::get<1>(param_info.param);
      const char* kn = kernel == GemmKernel::kNaive      ? "naive"
                       : kernel == GemmKernel::kBlocked  ? "blocked"
                       : kernel == GemmKernel::kThreaded ? "threaded"
                                                         : "packed";
      return std::string(kn) + "_" + std::to_string(c.m) + "x" +
             std::to_string(c.n) + "x" + std::to_string(c.k);
    });

TEST(Gemm, AlphaBetaSemantics) {
  Matrix a(4, 4), b(4, 4), c0(4, 4);
  util::fill_random(a, 3);
  util::fill_random(b, 4);
  util::fill_random(c0, 5);

  // C := 2*A*B + 0.5*C0
  Matrix c = c0;
  dgemm(4, 4, 4, 2.0, a.data(), 4, b.data(), 4, 0.5, c.data(), 4);
  const Matrix ab = oracle(a, b);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), 2.0 * ab(i, j) + 0.5 * c0(i, j), 1e-12);
    }
  }
}

TEST(Gemm, BetaZeroOverwritesEvenNan) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0);
  Matrix c(2, 2, std::numeric_limits<double>::quiet_NaN());
  dgemm(2, 2, 2, 1.0, a.data(), 2, b.data(), 2, 0.0, c.data(), 2);
  for (double v : c.span()) EXPECT_EQ(v, 2.0);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  Matrix a(2, 2, 1.0), b(2, 2, 1.0), c(2, 2, 4.0);
  dgemm(2, 2, 2, 0.0, a.data(), 2, b.data(), 2, 0.5, c.data(), 2);
  for (double v : c.span()) EXPECT_EQ(v, 2.0);
}

TEST(Gemm, StridedSubmatrixMultiply) {
  // Multiply the top-left 3x3 blocks of two 5x5 matrices into the
  // bottom-right 3x3 block of a 5x5 C, exercising all leading dimensions.
  Matrix a(5, 5), b(5, 5), c(5, 5);
  util::fill_random(a, 6);
  util::fill_random(b, 7);
  dgemm(3, 3, 3, 1.0, a.data(), 5, b.data(), 5, 0.0, c.data() + 2 * 5 + 2, 5);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < 3; ++l) acc += a(i, l) * b(l, j);
      EXPECT_NEAR(c(2 + i, 2 + j), acc, 1e-12);
    }
  }
  // Cells outside the target block stay zero.
  EXPECT_EQ(c(0, 0), 0.0);
  EXPECT_EQ(c(1, 4), 0.0);
}

TEST(Gemm, ZeroExtentsAreNoops) {
  Matrix a(4, 4, 1.0), b(4, 4, 1.0), c(4, 4, 3.0);
  dgemm(0, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(), 4);
  dgemm(4, 0, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(), 4);
  for (double v : c.span()) EXPECT_EQ(v, 3.0);
  // k == 0 applies beta but adds nothing.
  dgemm(4, 4, 0, 1.0, a.data(), 4, b.data(), 4, 0.5, c.data(), 4);
  for (double v : c.span()) EXPECT_EQ(v, 1.5);
}

TEST(Gemm, RejectsBadLeadingDimensions) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 3, b.data(), 4, 0.0, c.data(), 4),
               std::invalid_argument);
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 3, 0.0, c.data(), 4),
               std::invalid_argument);
  EXPECT_THROW(dgemm(4, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(), 3),
               std::invalid_argument);
  EXPECT_THROW(dgemm(-1, 4, 4, 1.0, a.data(), 4, b.data(), 4, 0.0, c.data(), 4),
               std::invalid_argument);
}

TEST(Gemm, MultiplyValidatesInnerDimensions) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(multiply(a, b), std::invalid_argument);
}

TEST(Gemm, ThreadedMatchesBlockedExactly) {
  // Same blocking => identical fp reassociation => bitwise-equal results.
  Matrix a(37, 41), b(41, 29);
  util::fill_random(a, 8);
  util::fill_random(b, 9);
  GemmOptions blocked{.kernel = GemmKernel::kBlocked, .threads = 1,
                      .block = 16};
  GemmOptions threaded{.kernel = GemmKernel::kThreaded, .threads = 4,
                       .block = 16};
  // Note: threading splits rows, which does not change the per-row
  // reduction order of the ikj kernel, so results are bit-identical.
  EXPECT_EQ(multiply(a, b, blocked), multiply(a, b, threaded));
  // The packed kernel's scalar tier preserves the same l-ascending
  // accumulation chain (the AVX2 tier fuses multiply-add and is checked
  // against the oracle by tolerance elsewhere).
  GemmOptions packed{.kernel = GemmKernel::kPacked, .threads = 3,
                     .tier = SimdTier::kScalar};
  EXPECT_EQ(multiply(a, b, blocked), multiply(a, b, packed));
}

TEST(Gemm, MoreThreadsThanRows) {
  Matrix a(2, 8), b(8, 2);
  util::fill_random(a, 10);
  util::fill_random(b, 11);
  GemmOptions opts{.kernel = GemmKernel::kThreaded, .threads = 16,
                   .block = 64};
  const Matrix got = multiply(a, b, opts);
  EXPECT_LE(Matrix::max_abs_diff(got, oracle(a, b)), tol(8));
}

TEST(GemmFlops, Formula) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48);
  EXPECT_EQ(gemm_flops(0, 3, 4), 0);
}

}  // namespace
}  // namespace summagen::blas

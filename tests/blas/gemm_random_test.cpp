// Randomised DGEMM sweep: many random shapes, leading dimensions, and
// alpha/beta combinations against a trusted oracle.
#include <gtest/gtest.h>

#include "src/blas/gemm.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

using util::Matrix;

TEST(GemmRandom, RandomShapesAllKernels) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    const std::int64_t m = rng.uniform_int(1, 48);
    const std::int64_t n = rng.uniform_int(1, 48);
    const std::int64_t k = rng.uniform_int(1, 48);
    Matrix a(m, k), b(k, n);
    util::fill_random(a, util::derive_seed(1000, trial));
    util::fill_random(b, util::derive_seed(2000, trial));

    Matrix want(m, n);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::int64_t l = 0; l < k; ++l) acc += a(i, l) * b(l, j);
        want(i, j) = acc;
      }
    }

    for (auto kernel : {GemmKernel::kNaive, GemmKernel::kBlocked,
                        GemmKernel::kThreaded, GemmKernel::kPacked}) {
      GemmOptions opts;
      opts.kernel = kernel;
      opts.threads = static_cast<int>(rng.uniform_int(1, 5));
      opts.block = rng.uniform_int(8, 40);
      const Matrix got = multiply(a, b, opts);
      EXPECT_LE(Matrix::max_abs_diff(got, want), 1e-11 * (k + 1))
          << "trial " << trial << " m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(GemmRandom, RandomStridedSubproblems) {
  // Random sub-blocks of larger matrices with independent leading dims.
  util::Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t ld = 64;
    Matrix a(ld, ld), b(ld, ld), c(ld, ld);
    util::fill_random(a, util::derive_seed(3000, trial));
    util::fill_random(b, util::derive_seed(4000, trial));
    util::fill_random(c, util::derive_seed(5000, trial));
    const Matrix c0 = c;

    const std::int64_t m = rng.uniform_int(1, 20);
    const std::int64_t n = rng.uniform_int(1, 20);
    const std::int64_t k = rng.uniform_int(1, 20);
    const std::int64_t ra = rng.uniform_int(0, ld - m);
    const std::int64_t ca = rng.uniform_int(0, ld - k);
    const std::int64_t rb = rng.uniform_int(0, ld - k);
    const std::int64_t cb = rng.uniform_int(0, ld - n);
    const std::int64_t rc = rng.uniform_int(0, ld - m);
    const std::int64_t cc = rng.uniform_int(0, ld - n);
    const double alpha = rng.uniform(-2, 2);
    const double beta = rng.uniform(-2, 2);

    dgemm(m, n, k, alpha, a.data() + ra * ld + ca, ld,
          b.data() + rb * ld + cb, ld, beta, c.data() + rc * ld + cc, ld);

    for (std::int64_t i = 0; i < ld; ++i) {
      for (std::int64_t j = 0; j < ld; ++j) {
        const bool inside =
            i >= rc && i < rc + m && j >= cc && j < cc + n;
        if (!inside) {
          // Everything outside the target block is untouched.
          EXPECT_EQ(c(i, j), c0(i, j)) << "trial " << trial;
          continue;
        }
        double acc = 0.0;
        for (std::int64_t l = 0; l < k; ++l) {
          acc += a(ra + i - rc, ca + l) * b(rb + l, cb + j - cc);
        }
        EXPECT_NEAR(c(i, j), alpha * acc + beta * c0(i, j), 1e-11 * (k + 1))
            << "trial " << trial;
      }
    }
  }
}

TEST(GemmRandom, AccumulationChainsAreAssociativeEnough) {
  // C += A_i * B_i accumulated through dgemm equals the one-shot product
  // of the concatenations — the pattern SummaGen's per-sub-partition
  // computation relies on.
  util::Rng rng(99);
  const std::int64_t m = 24, n = 20;
  Matrix c(m, n);
  Matrix big_a(m, 0), want(m, n);
  std::vector<Matrix> as, bs;
  std::int64_t k_total = 0;
  for (int piece = 0; piece < 5; ++piece) {
    const std::int64_t k = rng.uniform_int(1, 16);
    k_total += k;
    Matrix a(m, k), b(k, n);
    util::fill_random(a, util::derive_seed(6000, piece));
    util::fill_random(b, util::derive_seed(7000, piece));
    dgemm(m, n, k, 1.0, a.data(), k, b.data(), n, 1.0, c.data(), n);
    as.push_back(std::move(a));
    bs.push_back(std::move(b));
  }
  // One-shot reference from the concatenated operands.
  Matrix a_cat(m, k_total), b_cat(k_total, n);
  std::int64_t k0 = 0;
  for (std::size_t piece = 0; piece < as.size(); ++piece) {
    util::copy_matrix(a_cat.data() + k0, k_total, as[piece].data(),
                      as[piece].cols(), m, as[piece].cols());
    util::copy_matrix(b_cat.data() + k0 * n, n, bs[piece].data(), n,
                      bs[piece].rows(), n);
    k0 += as[piece].cols();
  }
  dgemm(m, n, k_total, 1.0, a_cat.data(), k_total, b_cat.data(), n, 0.0,
        want.data(), n);
  EXPECT_LE(Matrix::max_abs_diff(c, want), 1e-10);
}

}  // namespace
}  // namespace summagen::blas

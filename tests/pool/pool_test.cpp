// sgpool executor tests: primitives (task groups, stealing, exceptions,
// nesting), the no-thread-spawn-in-dgemm guarantee, concurrent dgemm
// callers vs a serial oracle, kPacked equivalence, and the pool under the
// pipelined SummaGen scheduler (this binary also runs in the TSan CI job).
#include "src/pool/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/blas/gemm.hpp"
#include "src/core/runner.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen {
namespace {

using blas::GemmKernel;
using blas::GemmOptions;
using blas::multiply;
using util::Matrix;

Matrix oracle(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    for (std::int64_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < a.cols(); ++l) acc += a(i, l) * b(l, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(Pool, RunsEverySubmittedTask) {
  sgpool::Pool pool(3);
  std::atomic<int> count{0};
  sgpool::TaskGroup group(pool);
  for (int i = 0; i < 200; ++i) {
    group.run([&count] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(pool.size(), 3);
  EXPECT_EQ(pool.stats().threads_spawned, 3);
  EXPECT_GE(pool.stats().tasks_executed, 200);
}

TEST(Pool, WorkerlessPoolRunsInline) {
  sgpool::Pool pool(0);
  std::atomic<int> count{0};
  sgpool::TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 16);
  EXPECT_EQ(pool.stats().threads_spawned, 0);
}

TEST(Pool, WaitRethrowsFirstTaskException) {
  sgpool::Pool pool(2);
  sgpool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i % 2 == 1) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // After the throw the group is reusable and clean.
  group.run([] {});
  EXPECT_NO_THROW(group.wait());
}

TEST(Pool, NestedGroupsDoNotDeadlock) {
  sgpool::Pool pool(2);
  std::atomic<int> inner_total{0};
  sgpool::TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.run([&pool, &inner_total] {
      sgpool::TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j) {
        inner.run([&inner_total] { inner_total.fetch_add(1); });
      }
      inner.wait();  // waits inside a pool task: helping keeps this live
    });
  }
  outer.wait();
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(Pool, WorkStealingStress) {
  // Deterministic steal: the first submission (a blocker) pins whichever
  // worker picks it up; external submissions land round-robin across both
  // deques, so the surviving worker can only finish the pinned worker's
  // share by stealing. The main thread deliberately does NOT call wait()
  // (which would help) until every light task is done.
  sgpool::Pool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  sgpool::TaskGroup group(pool);
  group.run([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    group.run([&done] { done.fetch_add(1); });
  }
  while (done.load() < kTasks) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(pool.stats().steals, 0);
  release.store(true);
  group.wait();
  EXPECT_GE(pool.stats().tasks_executed, kTasks + 1);
}

TEST(Pool, ParallelForCoversRangeOnce) {
  sgpool::Pool pool(3);
  std::vector<std::atomic<int>> hits(257);
  sgpool::parallel_for(
      0, 257, 10,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      },
      pool);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Pool, ConfigureResizesSharedPool) {
  const int before = sgpool::Pool::instance().size();
  sgpool::Pool::configure(before + 2);
  EXPECT_EQ(sgpool::Pool::instance().size(), before + 2);
  std::atomic<int> count{0};
  sgpool::TaskGroup group;
  for (int i = 0; i < 32; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 32);
  sgpool::Pool::configure(before);
  EXPECT_EQ(sgpool::Pool::instance().size(), before);
}

TEST(Pool, RecommendedSizeLeavesRoomForRanks) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int avail = static_cast<int>(hw == 0 ? 1 : hw);
  EXPECT_EQ(sgpool::Pool::recommended_size(0), std::max(1, avail));
  EXPECT_EQ(sgpool::Pool::recommended_size(3), std::max(1, avail - 3));
  EXPECT_EQ(sgpool::Pool::recommended_size(1000), 1);  // floor of one worker
}

// Ordering bug, pinned: set_reserved_threads used to only feed the lazy
// default size, so a reservation made AFTER the shared pool's first use was
// silently ignored — the pool kept its stale size and the host ended up
// oversubscribed by the rank threads. A late reservation must resize the
// already-constructed pool.
TEST(Pool, LateReservationResizesConstructedPool) {
  (void)sgpool::Pool::instance();  // force construction before reserving
  const int old_reserved = sgpool::Pool::reserved_threads();

  sgpool::Pool::set_reserved_threads(3);
  EXPECT_EQ(sgpool::Pool::reserved_threads(), 3);
  EXPECT_EQ(sgpool::Pool::instance().size(), sgpool::Pool::recommended_size(3));

  sgpool::Pool::set_reserved_threads(0);
  EXPECT_EQ(sgpool::Pool::instance().size(), sgpool::Pool::recommended_size(0));

  // Negative reservations clamp to zero rather than inflating the pool.
  sgpool::Pool::set_reserved_threads(-5);
  EXPECT_EQ(sgpool::Pool::reserved_threads(), 0);
  EXPECT_EQ(sgpool::Pool::instance().size(), sgpool::Pool::recommended_size(0));

  // The resized pool still executes work.
  std::atomic<int> count{0};
  sgpool::TaskGroup group;
  for (int i = 0; i < 16; ++i) group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 16);

  sgpool::Pool::set_reserved_threads(old_reserved);
}

// The acceptance hook: a dgemm call must never construct a thread — all
// parallelism is task submission into already-running pool workers.
TEST(Pool, DgemmSpawnsNoThreads) {
  sgpool::Pool::configure(4);
  Matrix a(96, 64), b(64, 80);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  // Warm-up creates any lazily-constructed state.
  (void)blas::multiply(a, b, {.kernel = GemmKernel::kPacked});
  const std::int64_t spawned_before = sgpool::Pool::process_threads_spawned();
  for (int rep = 0; rep < 20; ++rep) {
    for (GemmKernel kernel : {GemmKernel::kThreaded, GemmKernel::kPacked}) {
      GemmOptions opts;
      opts.kernel = kernel;
      (void)blas::multiply(a, b, opts);
    }
  }
  EXPECT_EQ(sgpool::Pool::process_threads_spawned(), spawned_before);
}

TEST(Pool, ConcurrentDgemmCallersMatchSerialOracle) {
  // N caller threads (standing in for sgmpi rank threads) share the one
  // pool; every result must match the serial oracle exactly as computed
  // serially (the kernels are scheduling-independent).
  sgpool::Pool::configure(2);
  constexpr int kCallers = 4;
  std::vector<Matrix> as, bs, wants;
  for (int r = 0; r < kCallers; ++r) {
    as.emplace_back(60 + r, 40 + r);
    bs.emplace_back(40 + r, 50 + r);
    util::fill_random(as.back(), util::derive_seed(10, r));
    util::fill_random(bs.back(), util::derive_seed(20, r));
    GemmOptions serial;
    serial.kernel = GemmKernel::kPacked;
    serial.threads = 1;
    wants.push_back(multiply(as.back(), bs.back(), serial));
  }
  for (GemmKernel kernel : {GemmKernel::kThreaded, GemmKernel::kPacked}) {
    std::vector<Matrix> got(kCallers);
    std::vector<std::thread> callers;
    for (int r = 0; r < kCallers; ++r) {
      callers.emplace_back([&, r] {
        GemmOptions opts;
        opts.kernel = kernel;
        for (int rep = 0; rep < 8; ++rep) {
          got[static_cast<std::size_t>(r)] =
              multiply(as[static_cast<std::size_t>(r)],
                       bs[static_cast<std::size_t>(r)], opts);
        }
      });
    }
    for (auto& t : callers) t.join();
    for (int r = 0; r < kCallers; ++r) {
      EXPECT_LE(Matrix::max_abs_diff(got[static_cast<std::size_t>(r)],
                                     wants[static_cast<std::size_t>(r)]),
                1e-11)
          << "caller " << r;
    }
  }
}

TEST(Pool, PackedMatchesNaiveOnRandomShapes) {
  sgpool::Pool::configure(3);
  util::Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t m = rng.uniform_int(1, 70);
    const std::int64_t n = rng.uniform_int(1, 70);
    const std::int64_t k = rng.uniform_int(1, 300);  // crosses the KC block
    Matrix a(m, k), b(k, n);
    util::fill_random(a, util::derive_seed(100, trial));
    util::fill_random(b, util::derive_seed(200, trial));
    const Matrix want = multiply(a, b, {.kernel = GemmKernel::kNaive});
    const Matrix got = multiply(a, b, {.kernel = GemmKernel::kPacked});
    EXPECT_LE(Matrix::max_abs_diff(got, want), 1e-11 * (k + 1))
        << "trial " << trial << " m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(Pool, PackedBitIdenticalToBlockedAndThreaded) {
  // The packed layout must not change the per-element accumulation chain.
  // The scalar (and SSE2) dispatch tiers keep that guarantee; the AVX2 tier
  // fuses multiply-add and is covered by tolerance tests instead.
  Matrix a(53, 210), b(210, 37);
  util::fill_random(a, 5);
  util::fill_random(b, 6);
  const Matrix blocked = multiply(a, b, {.kernel = GemmKernel::kBlocked});
  const Matrix threaded = multiply(a, b, {.kernel = GemmKernel::kThreaded});
  const Matrix packed = multiply(
      a, b,
      {.kernel = GemmKernel::kPacked, .tier = blas::SimdTier::kScalar});
  EXPECT_EQ(blocked, threaded);
  EXPECT_EQ(blocked, packed);
  // The auto tier (whatever this host dispatches to) stays within the
  // usual componentwise error bound of the same chain.
  const Matrix dispatched = multiply(a, b, {.kernel = GemmKernel::kPacked});
  EXPECT_LE(Matrix::max_abs_diff(blocked, dispatched), 1e-11 * (210 + 1));
}

TEST(Pool, PipelinedSchedulerOnPoolVerifies) {
  // The k-chunked pipelined schedule issues local DGEMMs from three rank
  // threads concurrently with outstanding broadcasts — exactly the workload
  // that oversubscribed the host before the shared pool. Run it numerically
  // end-to-end (TSan covers this binary in CI).
  core::ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 144;
  config.numeric = true;
  config.summagen_options.scheduler = core::Scheduler::kPipelined;
  config.summagen_options.overlap_depth = 2;
  config.summagen_options.bcast_panel_rows = 24;
  for (GemmKernel kernel : {GemmKernel::kThreaded, GemmKernel::kPacked}) {
    config.kernel.kernel = kernel;
    const auto res = core::run_pmm(config);
    EXPECT_TRUE(res.verified) << "max |err| " << res.max_abs_error;
  }
}

}  // namespace
}  // namespace summagen

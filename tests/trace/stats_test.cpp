#include "src/trace/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.hpp"

namespace summagen::trace {
namespace {

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(sample_stddev(xs), 2.138, 1e-3);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Stats, StddevOfSingletonIsZero) {
  EXPECT_EQ(sample_stddev({3.0}), 0.0);
}

TEST(StudentT, MatchesTabulatedValues) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(4, 0.95), 2.776, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 1e-3);
}

TEST(StudentT, LargeDfApproachesNormal) {
  EXPECT_NEAR(student_t_critical(1000, 0.95), 1.962, 5e-3);
}

TEST(StudentT, OtherConfidenceLevels) {
  // t_{0.995, 60} = 2.660 (99% two-sided).
  EXPECT_NEAR(student_t_critical(60, 0.99), 2.660, 2e-2);
}

TEST(StudentT, RejectsBadDf) {
  EXPECT_THROW(student_t_critical(0), std::invalid_argument);
}

TEST(ConfidenceHalfwidth, ShrinksWithSampleSize) {
  util::Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 5; ++i) small.push_back(rng.normal(10, 1));
  large = small;
  for (int i = 0; i < 95; ++i) large.push_back(rng.normal(10, 1));
  EXPECT_GT(confidence_halfwidth(small), confidence_halfwidth(large));
}

TEST(MeasureUntilPrecise, ConvergesOnLowNoiseExperiment) {
  util::Rng rng(7);
  const auto point = measure_until_precise(
      [&] { return 10.0 + rng.normal(0.0, 0.05); });
  EXPECT_TRUE(point.converged);
  EXPECT_NEAR(point.mean, 10.0, 0.2);
  EXPECT_LE(point.ci_halfwidth, 0.025 * point.mean + 1e-12);
  EXPECT_GE(point.repetitions, 3);
}

TEST(MeasureUntilPrecise, StopsAtMaxRepsOnNoisyExperiment) {
  util::Rng rng(11);
  MeasureOptions opts;
  opts.max_reps = 10;
  const auto point = measure_until_precise(
      [&] { return std::abs(rng.normal(1.0, 5.0)) + 0.01; }, opts);
  EXPECT_FALSE(point.converged);
  EXPECT_EQ(point.repetitions, 10);
}

TEST(MeasureUntilPrecise, DeterministicExperimentConvergesImmediately) {
  const auto point = measure_until_precise([] { return 4.2; });
  EXPECT_TRUE(point.converged);
  EXPECT_EQ(point.repetitions, 3);  // min_reps
  EXPECT_DOUBLE_EQ(point.mean, 4.2);
}

TEST(MeasureUntilPrecise, RejectsTooFewMinReps) {
  MeasureOptions opts;
  opts.min_reps = 1;
  EXPECT_THROW(measure_until_precise([] { return 1.0; }, opts),
               std::invalid_argument);
}

TEST(ChiSquared, CriticalValuesReasonable) {
  // chi2_{0.95, 5} = 11.07, chi2_{0.95, 10} = 18.31.
  EXPECT_NEAR(chi_squared_critical(5, 0.95), 11.07, 0.15);
  EXPECT_NEAR(chi_squared_critical(10, 0.95), 18.31, 0.2);
}

TEST(ChiSquared, NormalSamplePassesNormalityCheck) {
  // Seed-sensitive by nature: a 95%-level test rejects ~5% of healthy
  // samples. Seed 12 passes under Rng's member normal_distribution (which
  // consumes both Box-Muller variates per pair, unlike the old
  // construct-per-draw stream).
  util::Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(5.0, 2.0));
  const auto res = chi_squared_normality(xs);
  EXPECT_TRUE(res.normality_plausible)
      << "stat=" << res.statistic << " crit=" << res.critical_value;
}

TEST(ChiSquared, BimodalSampleFailsNormalityCheck) {
  util::Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) {
    xs.push_back((i % 2 == 0 ? -10.0 : 10.0) + rng.normal(0.0, 0.1));
  }
  const auto res = chi_squared_normality(xs);
  EXPECT_FALSE(res.normality_plausible);
}

TEST(ChiSquared, TinySampleTriviallyPlausible) {
  EXPECT_TRUE(chi_squared_normality({1.0, 2.0, 3.0}).normality_plausible);
}

TEST(PercentageSpread, MatchesHandComputation) {
  EXPECT_DOUBLE_EQ(percentage_spread({10.0, 12.0, 11.0}), 20.0);
  EXPECT_DOUBLE_EQ(percentage_spread({5.0}), 0.0);
}

TEST(PercentageSpread, RejectsNonPositive) {
  EXPECT_THROW(percentage_spread({0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(percentage_spread({}), std::invalid_argument);
}

}  // namespace
}  // namespace summagen::trace

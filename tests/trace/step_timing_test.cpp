// Per-step timing observations (src/trace/step_timing.hpp): the EWMA
// tracker and the step-ratio helpers feeding the drift detector.
#include <gtest/gtest.h>

#include "src/trace/step_timing.hpp"

namespace summagen::trace {
namespace {

TEST(EwmaTracker, FirstObservationSeedsTheValue) {
  EwmaTracker ewma(0.25);
  EXPECT_DOUBLE_EQ(ewma.value(), 1.0);  // neutral before any observation
  EXPECT_EQ(ewma.count(), 0);
  ewma.update(3.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 3.0);
  EXPECT_EQ(ewma.count(), 1);
}

TEST(EwmaTracker, SmoothsTowardsNewObservations) {
  EwmaTracker ewma(0.5);
  ewma.update(1.0);
  ewma.update(3.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 2.0);
  ewma.update(3.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 2.5);
}

TEST(EwmaTracker, AlphaOneTracksTheLastSample) {
  EwmaTracker ewma(1.0);
  ewma.update(5.0);
  ewma.update(0.5);
  EXPECT_DOUBLE_EQ(ewma.value(), 0.5);
}

TEST(StepRatio, ObservedOverPredicted) {
  StepSample s;
  s.predicted_s = 2.0;
  s.observed_s = 5.0;
  EXPECT_DOUBLE_EQ(step_ratio(s), 2.5);
}

TEST(StepRatio, ZeroPredictionIsNeutral) {
  StepSample s;
  s.predicted_s = 0.0;
  s.observed_s = 5.0;
  EXPECT_DOUBLE_EQ(step_ratio(s), 1.0);
}

TEST(StepDurations, ExtractsComputeEventsOfOneRank) {
  std::vector<Event> events;
  events.push_back({0, EventKind::kCompute, 0.0, 1.5, 0, 10, "a"});
  events.push_back({1, EventKind::kCompute, 0.0, 2.0, 0, 10, "b"});
  events.push_back({0, EventKind::kBcast, 1.5, 1.7, 8, 0, "c"});
  events.push_back({0, EventKind::kCompute, 1.7, 2.2, 0, 10, "d"});
  const auto durations = compute_step_durations(events, 0);
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_DOUBLE_EQ(durations[0], 1.5);
  EXPECT_DOUBLE_EQ(durations[1], 0.5);
}

}  // namespace
}  // namespace summagen::trace

#include "src/trace/events.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace summagen::trace {
namespace {

TEST(EventLog, DisabledLogRecordsNothing) {
  EventLog log(false);
  log.record({0, EventKind::kCompute, 0.0, 1.0, 0, 100, ""});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.enabled());
}

TEST(EventLog, RecordsAndSortsByRankThenTime) {
  EventLog log;
  log.record({1, EventKind::kCompute, 2.0, 3.0, 0, 0, "b"});
  log.record({0, EventKind::kBcast, 1.0, 1.5, 64, 0, "a"});
  log.record({1, EventKind::kBcast, 0.0, 0.5, 32, 0, "c"});
  const auto sorted = log.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].rank, 0);
  EXPECT_EQ(sorted[1].rank, 1);
  EXPECT_EQ(sorted[1].detail, "c");
  EXPECT_EQ(sorted[2].detail, "b");
}

TEST(EventLog, TotalSecondsFiltersByRankAndKind) {
  EventLog log;
  log.record({0, EventKind::kCompute, 0.0, 2.0, 0, 0, ""});
  log.record({0, EventKind::kCompute, 3.0, 4.0, 0, 0, ""});
  log.record({0, EventKind::kBcast, 2.0, 2.5, 0, 0, ""});
  log.record({1, EventKind::kCompute, 0.0, 10.0, 0, 0, ""});
  EXPECT_DOUBLE_EQ(log.total_seconds(0, EventKind::kCompute), 3.0);
  EXPECT_DOUBLE_EQ(log.total_seconds(0, EventKind::kBcast), 0.5);
  EXPECT_DOUBLE_EQ(log.total_seconds(1, EventKind::kCompute), 10.0);
  EXPECT_DOUBLE_EQ(log.total_seconds(2, EventKind::kCompute), 0.0);
}

TEST(EventLog, ConcurrentRecordingIsSafe) {
  EventLog log;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.record({t, EventKind::kCompute, static_cast<double>(i),
                    static_cast<double>(i) + 0.5, 0, 0, ""});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(EventLog, RenderTimelineMentionsRanksAndKinds) {
  EventLog log;
  log.record({0, EventKind::kCompute, 0.0, 1.0, 0, 2048, ""});
  log.record({1, EventKind::kBcast, 0.0, 0.1, 512, 0, "root=w0"});
  const std::string s = log.render_timeline();
  EXPECT_NE(s.find("rank 0:"), std::string::npos);
  EXPECT_NE(s.find("rank 1:"), std::string::npos);
  EXPECT_NE(s.find("compute"), std::string::npos);
  EXPECT_NE(s.find("bcast"), std::string::npos);
  EXPECT_NE(s.find("512B"), std::string::npos);
}

TEST(EventLog, ClearEmptiesTheLog) {
  EventLog log;
  log.record({0, EventKind::kCompute, 0.0, 1.0, 0, 0, ""});
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventKindNames, AllDistinct) {
  EXPECT_STREQ(to_string(EventKind::kCompute), "compute");
  EXPECT_STREQ(to_string(EventKind::kBcast), "bcast");
  EXPECT_STREQ(to_string(EventKind::kBarrier), "barrier");
  EXPECT_STREQ(to_string(EventKind::kCopy), "copy");
  EXPECT_STREQ(to_string(EventKind::kWait), "wait");
  EXPECT_STREQ(to_string(EventKind::kTransfer), "transfer");
}

}  // namespace
}  // namespace summagen::trace

#include "src/trace/vclock.hpp"

#include <gtest/gtest.h>

namespace summagen::trace {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0.0);
  EXPECT_EQ(c.compute_seconds(), 0.0);
  EXPECT_EQ(c.comm_seconds(), 0.0);
  EXPECT_EQ(c.idle_seconds(), 0.0);
}

TEST(VirtualClock, AdvanceComputeAccumulates) {
  VirtualClock c;
  c.advance_compute(1.5);
  c.advance_compute(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  EXPECT_DOUBLE_EQ(c.compute_seconds(), 2.0);
  EXPECT_EQ(c.comm_seconds(), 0.0);
}

TEST(VirtualClock, BucketsAreIndependent) {
  VirtualClock c;
  c.advance_compute(1.0);
  c.advance_comm(0.25);
  c.wait_until(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  EXPECT_DOUBLE_EQ(c.compute_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(c.comm_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(c.idle_seconds(), 0.75);
}

TEST(VirtualClock, WaitUntilPastIsNoop) {
  VirtualClock c;
  c.advance_compute(3.0);
  c.wait_until(1.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  EXPECT_EQ(c.idle_seconds(), 0.0);
}

TEST(VirtualClock, BucketsSumToNow) {
  VirtualClock c;
  c.advance_comm(0.5);
  c.wait_until(1.0);
  c.advance_compute(2.0);
  c.wait_until(5.0);
  EXPECT_DOUBLE_EQ(
      c.compute_seconds() + c.comm_seconds() + c.idle_seconds(), c.now());
}

TEST(VirtualClock, ResetClearsEverything) {
  VirtualClock c;
  c.advance_compute(1.0);
  c.advance_comm(1.0);
  c.wait_until(5.0);
  c.reset();
  EXPECT_EQ(c.now(), 0.0);
  EXPECT_EQ(c.compute_seconds(), 0.0);
  EXPECT_EQ(c.comm_seconds(), 0.0);
  EXPECT_EQ(c.idle_seconds(), 0.0);
}

}  // namespace
}  // namespace summagen::trace

#include "src/trace/gantt.hpp"

#include <gtest/gtest.h>

namespace summagen::trace {
namespace {

TEST(Gantt, EmptyEventsRenderNothing) {
  EXPECT_EQ(render_gantt({}), "");
}

TEST(Gantt, OneLanePerRank) {
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 1.0, 0, 0, ""},
      {2, EventKind::kCompute, 0.0, 1.0, 0, 0, ""},
  };
  const std::string s = render_gantt(events);
  EXPECT_NE(s.find("P0 |"), std::string::npos);
  EXPECT_NE(s.find("P2 |"), std::string::npos);
  EXPECT_EQ(s.find("P1 |"), std::string::npos);
}

TEST(Gantt, FullyBusyLaneIsAllCompute) {
  GanttOptions opts;
  opts.width = 10;
  opts.show_scale = false;
  opts.show_utilisation = false;
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 2.0, 0, 0, ""},
  };
  EXPECT_EQ(render_gantt(events, 0.0, opts), "P0 |CCCCCCCCCC|\n");
}

TEST(Gantt, HalfIdleLane) {
  GanttOptions opts;
  opts.width = 10;
  opts.show_scale = false;
  opts.show_utilisation = false;
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 1.0, 0, 0, ""},
  };
  // Makespan 2: first half compute, second half idle.
  EXPECT_EQ(render_gantt(events, 2.0, opts), "P0 |CCCCC.....|\n");
}

TEST(Gantt, DominantActivityWinsEachBucket) {
  GanttOptions opts;
  opts.width = 4;
  opts.show_scale = false;
  opts.show_utilisation = false;
  // Bucket width 1s: bcast dominates bucket 0 (0.7s vs 0.3s compute).
  const std::vector<Event> events = {
      {0, EventKind::kBcast, 0.0, 0.7, 64, 0, ""},
      {0, EventKind::kCompute, 0.7, 4.0, 0, 0, ""},
  };
  EXPECT_EQ(render_gantt(events, 4.0, opts), "P0 |BCCC|\n");
}

TEST(Gantt, UtilisationAndScaleShown) {
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 1.0, 0, 0, ""},
  };
  const std::string s = render_gantt(events, 2.0);
  EXPECT_NE(s.find("50%"), std::string::npos);
  EXPECT_NE(s.find("C=compute"), std::string::npos);
}

TEST(Gantt, TransferAndBarrierGlyphs) {
  GanttOptions opts;
  opts.width = 8;
  opts.show_scale = false;
  opts.show_utilisation = false;
  const std::vector<Event> events = {
      {1, EventKind::kTransfer, 0.0, 4.0, 64, 0, ""},
      {1, EventKind::kBarrier, 4.0, 8.0, 0, 0, ""},
  };
  EXPECT_EQ(render_gantt(events, 8.0, opts), "P1 |TTTTRRRR|\n");
}

TEST(Gantt, TinyWidthRejected) {
  GanttOptions opts;
  opts.width = 4;
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 1.0, 0, 0, ""},
  };
  opts.width = 2;
  EXPECT_EQ(render_gantt(events, 0.0, opts), "");
}

TEST(ChromeTrace, EmptyEventsYieldEmptyArray) {
  EXPECT_EQ(export_chrome_trace({}), "[\n]\n");
}

TEST(ChromeTrace, EmitsCompleteEventsWithMicroseconds) {
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.001, 0.003, 0, 4096, "subp(0,1)"},
      {1, EventKind::kBcast, 0.0, 0.0005, 512, 0, "root=w0"},
  };
  const std::string json = export_chrome_trace(events);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bcast\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);   // 1 ms
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos);  // 2 ms
  EXPECT_NE(json.find("\"bytes\":512"), std::string::npos);
  EXPECT_NE(json.find("\"flops\":4096"), std::string::npos);
  EXPECT_NE(json.find("subp(0,1)"), std::string::npos);
  // Valid JSON array bracketing.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(ChromeTrace, EscapesQuotesAndBackslashesInDetail) {
  const std::vector<Event> events = {
      {0, EventKind::kCopy, 0.0, 1.0, 0, 0, "say \"hi\" \\ bye"},
  };
  const std::string json = export_chrome_trace(events);
  EXPECT_NE(json.find("say \\\"hi\\\" \\\\ bye"), std::string::npos);
}

}  // namespace
}  // namespace summagen::trace

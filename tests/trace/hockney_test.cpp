#include "src/trace/hockney.hpp"

#include <gtest/gtest.h>

namespace summagen::trace {
namespace {

TEST(Hockney, P2pIsAffine) {
  HockneyParams link{1.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(link.p2p(0), 1.0e-6);
  EXPECT_DOUBLE_EQ(link.p2p(1000), 1.0e-6 + 1.0e-6);
  // Doubling bytes doubles the bandwidth term only.
  const double t1 = link.p2p(1 << 20);
  const double t2 = link.p2p(2 << 20);
  EXPECT_NEAR(t2 - t1, static_cast<double>(1 << 20) * 1.0e-9, 1e-15);
}

TEST(Hockney, BcastRounds) {
  EXPECT_EQ(bcast_rounds(0), 0);
  EXPECT_EQ(bcast_rounds(1), 0);
  EXPECT_EQ(bcast_rounds(2), 1);
  EXPECT_EQ(bcast_rounds(3), 2);
  EXPECT_EQ(bcast_rounds(4), 2);
  EXPECT_EQ(bcast_rounds(5), 3);
  EXPECT_EQ(bcast_rounds(8), 3);
  EXPECT_EQ(bcast_rounds(9), 4);
}

TEST(Hockney, BcastCostScalesWithRoundsAndBytes) {
  HockneyParams link{2.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(bcast_cost(link, 100, 1), 0.0);
  EXPECT_DOUBLE_EQ(bcast_cost(link, 100, 2), link.p2p(100));
  EXPECT_DOUBLE_EQ(bcast_cost(link, 100, 4), 2 * link.p2p(100));
  EXPECT_GT(bcast_cost(link, 1000, 3), bcast_cost(link, 100, 3));
}

TEST(Hockney, BarrierCostIsTwoEmptyTraversals) {
  HockneyParams link{3.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(barrier_cost(link, 2), 2 * link.p2p(0));
  EXPECT_DOUBLE_EQ(barrier_cost(link, 4), 4 * link.p2p(0));
  EXPECT_DOUBLE_EQ(barrier_cost(link, 1), 0.0);
}

TEST(Hockney, AllreduceCostIsReducePlusBcast) {
  HockneyParams link{3.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(allreduce_cost(link, 8, 3), 2 * 2 * link.p2p(8));
}

TEST(BcastAlgo, ParseAndPrintRoundTrip) {
  for (const BcastAlgo algo :
       {BcastAlgo::kTree, BcastAlgo::kFlat, BcastAlgo::kRing,
        BcastAlgo::kPipelined, BcastAlgo::kAuto}) {
    EXPECT_EQ(parse_bcast_algo(to_string(algo)), algo);
  }
  EXPECT_THROW(parse_bcast_algo("binomial"), std::invalid_argument);
}

// The historical default must stay bit-identical to bcast_cost: all
// committed virtual-time baselines (BENCH_*.json gates) were produced
// under the binomial tree.
TEST(BcastAlgo, TreeMatchesHistoricalBcastCostExactly) {
  HockneyParams link{2.0e-6, 1.0e-9};
  for (const int p : {1, 2, 3, 5, 8, 64, 1024}) {
    for (const std::int64_t bytes : {std::int64_t{0}, std::int64_t{100},
                                     std::int64_t{1} << 22}) {
      EXPECT_EQ(bcast_algo_cost(link, bytes, p, BcastAlgo::kTree),
                bcast_cost(link, bytes, p))
          << "p=" << p << " bytes=" << bytes;
    }
  }
}

TEST(BcastAlgo, ClosedFormCosts) {
  HockneyParams link{2.0e-6, 1.0e-9};
  // Flat: p-1 sequential sends from the root.
  EXPECT_DOUBLE_EQ(bcast_algo_cost(link, 100, 5, BcastAlgo::kFlat),
                   4.0 * link.p2p(100));
  // Ring (scatter + allgather): (p-1+ceil(log2 p)) alphas, 2m(p-1)/p bytes.
  const double ring = bcast_algo_cost(link, 1 << 20, 8, BcastAlgo::kRing);
  EXPECT_DOUBLE_EQ(ring, (7.0 + 3.0) * link.alpha_s +
                             2.0 * link.beta_s_per_byte *
                                 static_cast<double>(1 << 20) * 7.0 / 8.0);
  // Pipelined: (S+p-2) stages of one segment each.
  const int s = pipelined_bcast_segments(link, 1 << 16, 8);
  EXPECT_DOUBLE_EQ(
      bcast_algo_cost(link, 1 << 16, 8, BcastAlgo::kPipelined),
      (static_cast<double>(s) + 6.0) *
          (link.alpha_s + link.beta_s_per_byte *
                              (static_cast<double>(1 << 16) / s)));
  // Degenerate group: nothing to send.
  for (const BcastAlgo algo : {BcastAlgo::kTree, BcastAlgo::kFlat,
                               BcastAlgo::kRing, BcastAlgo::kPipelined}) {
    EXPECT_EQ(bcast_algo_cost(link, 1 << 20, 1, algo), 0.0);
  }
}

TEST(BcastAlgo, RingBeatsTreeForLargeMessagesOnLargeGroups) {
  HockneyParams link{2.0e-6, 1.0e-9};
  const std::int64_t big = std::int64_t{16} << 20;
  EXPECT_LT(bcast_algo_cost(link, big, 64, BcastAlgo::kRing),
            bcast_algo_cost(link, big, 64, BcastAlgo::kTree));
  // And tree wins the latency-bound regime.
  EXPECT_LT(bcast_algo_cost(link, 64, 64, BcastAlgo::kTree),
            bcast_algo_cost(link, 64, 64, BcastAlgo::kRing));
}

TEST(BcastAlgo, AutoSelectsByGroupAndMessageSize) {
  // Small group or small message: latency-dominated, binomial tree.
  EXPECT_EQ(resolve_bcast_algo(BcastAlgo::kAuto, 4, 1 << 20),
            BcastAlgo::kTree);
  EXPECT_EQ(resolve_bcast_algo(BcastAlgo::kAuto, 64, 1024), BcastAlgo::kTree);
  // Large message on a large group: bandwidth-optimal ring.
  EXPECT_EQ(resolve_bcast_algo(BcastAlgo::kAuto, 64, std::int64_t{1} << 20),
            BcastAlgo::kRing);
  // In between: segmented pipeline.
  EXPECT_EQ(resolve_bcast_algo(BcastAlgo::kAuto, 64, 64 << 10),
            BcastAlgo::kPipelined);
  // Explicit algorithms pass through untouched.
  EXPECT_EQ(resolve_bcast_algo(BcastAlgo::kFlat, 64, std::int64_t{1} << 20),
            BcastAlgo::kFlat);
}

TEST(BcastAlgo, PipelinedSegmentsAreClampedAndMonotonic) {
  HockneyParams link{2.0e-6, 1.0e-9};
  EXPECT_EQ(pipelined_bcast_segments(link, 1 << 20, 2), 1);  // no pipeline
  EXPECT_EQ(pipelined_bcast_segments(link, 1, 8), 1);
  EXPECT_LE(pipelined_bcast_segments(link, std::int64_t{1} << 30, 1024), 512);
  EXPECT_GE(pipelined_bcast_segments(link, 1 << 10, 8), 1);
  // More ranks to fill the pipe -> at least as many segments.
  EXPECT_LE(pipelined_bcast_segments(link, 1 << 20, 4),
            pipelined_bcast_segments(link, 1 << 20, 64));
  // Zero-latency link degenerates safely.
  HockneyParams free_link{0.0, 1.0e-9};
  EXPECT_EQ(pipelined_bcast_segments(free_link, 1 << 20, 8), 1);
}

}  // namespace
}  // namespace summagen::trace

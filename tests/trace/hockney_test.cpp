#include "src/trace/hockney.hpp"

#include <gtest/gtest.h>

namespace summagen::trace {
namespace {

TEST(Hockney, P2pIsAffine) {
  HockneyParams link{1.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(link.p2p(0), 1.0e-6);
  EXPECT_DOUBLE_EQ(link.p2p(1000), 1.0e-6 + 1.0e-6);
  // Doubling bytes doubles the bandwidth term only.
  const double t1 = link.p2p(1 << 20);
  const double t2 = link.p2p(2 << 20);
  EXPECT_NEAR(t2 - t1, static_cast<double>(1 << 20) * 1.0e-9, 1e-15);
}

TEST(Hockney, BcastRounds) {
  EXPECT_EQ(bcast_rounds(0), 0);
  EXPECT_EQ(bcast_rounds(1), 0);
  EXPECT_EQ(bcast_rounds(2), 1);
  EXPECT_EQ(bcast_rounds(3), 2);
  EXPECT_EQ(bcast_rounds(4), 2);
  EXPECT_EQ(bcast_rounds(5), 3);
  EXPECT_EQ(bcast_rounds(8), 3);
  EXPECT_EQ(bcast_rounds(9), 4);
}

TEST(Hockney, BcastCostScalesWithRoundsAndBytes) {
  HockneyParams link{2.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(bcast_cost(link, 100, 1), 0.0);
  EXPECT_DOUBLE_EQ(bcast_cost(link, 100, 2), link.p2p(100));
  EXPECT_DOUBLE_EQ(bcast_cost(link, 100, 4), 2 * link.p2p(100));
  EXPECT_GT(bcast_cost(link, 1000, 3), bcast_cost(link, 100, 3));
}

TEST(Hockney, BarrierCostIsTwoEmptyTraversals) {
  HockneyParams link{3.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(barrier_cost(link, 2), 2 * link.p2p(0));
  EXPECT_DOUBLE_EQ(barrier_cost(link, 4), 4 * link.p2p(0));
  EXPECT_DOUBLE_EQ(barrier_cost(link, 1), 0.0);
}

TEST(Hockney, AllreduceCostIsReducePlusBcast) {
  HockneyParams link{3.0e-6, 1.0e-9};
  EXPECT_DOUBLE_EQ(allreduce_cost(link, 8, 3), 2 * 2 * link.p2p(8));
}

}  // namespace
}  // namespace summagen::trace

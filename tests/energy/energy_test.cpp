#include "src/energy/energy.hpp"

#include <gtest/gtest.h>

namespace summagen::energy {
namespace {

using trace::Event;
using trace::EventKind;

device::Platform two_device_platform() {
  auto p = device::Platform::synthetic({1.0, 1.0});
  p.static_power_w = 100.0;
  p.devices[0].dynamic_power_w = 50.0;
  p.devices[0].comm_power_w = 10.0;
  p.devices[1].dynamic_power_w = 80.0;
  p.devices[1].comm_power_w = 20.0;
  return p;
}

TEST(ExactEnergy, IntegratesComputeIntervals) {
  const auto p = two_device_platform();
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 2.0, 0, 100, ""},
      {1, EventKind::kCompute, 0.0, 1.0, 0, 100, ""},
  };
  const auto e = dynamic_energy_exact(events, p, 2.0);
  EXPECT_DOUBLE_EQ(e.per_rank_dynamic_j[0], 50.0 * 2.0);
  EXPECT_DOUBLE_EQ(e.per_rank_dynamic_j[1], 80.0 * 1.0);
  EXPECT_DOUBLE_EQ(e.dynamic_j, 180.0);
  EXPECT_DOUBLE_EQ(e.static_j, 100.0 * 2.0);
  EXPECT_DOUBLE_EQ(e.total_j, 380.0);
}

TEST(ExactEnergy, CommEventsDrawCommPower) {
  const auto p = two_device_platform();
  const std::vector<Event> events = {
      {0, EventKind::kBcast, 0.0, 1.0, 64, 0, ""},
      {0, EventKind::kTransfer, 1.0, 2.0, 64, 0, ""},
      {0, EventKind::kBarrier, 2.0, 2.5, 0, 0, ""},
  };
  const auto e = dynamic_energy_exact(events, p, 3.0);
  EXPECT_DOUBLE_EQ(e.dynamic_j, 10.0 * 2.5);
}

TEST(ExactEnergy, WaitEventsAndForeignRanksDrawNothing) {
  const auto p = two_device_platform();
  const std::vector<Event> events = {
      {0, EventKind::kWait, 0.0, 5.0, 0, 0, ""},
      {7, EventKind::kCompute, 0.0, 5.0, 0, 0, ""},  // no such device
  };
  const auto e = dynamic_energy_exact(events, p, 5.0);
  EXPECT_DOUBLE_EQ(e.dynamic_j, 0.0);
}

TEST(ExactEnergy, RejectsNegativeElapsed) {
  EXPECT_THROW(dynamic_energy_exact({}, two_device_platform(), -1.0),
               std::invalid_argument);
}

TEST(InstantaneousPower, StaticPlusActiveDraws) {
  const auto p = two_device_platform();
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 1.0, 3.0, 0, 0, ""},
      {1, EventKind::kCompute, 2.0, 4.0, 0, 0, ""},
  };
  EXPECT_DOUBLE_EQ(instantaneous_power(events, p, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(instantaneous_power(events, p, 1.5), 150.0);
  EXPECT_DOUBLE_EQ(instantaneous_power(events, p, 2.5), 230.0);
  EXPECT_DOUBLE_EQ(instantaneous_power(events, p, 3.5), 180.0);
  // Interval is [start, end).
  EXPECT_DOUBLE_EQ(instantaneous_power(events, p, 4.0), 100.0);
}

TEST(Meter, NoiselessMeterMatchesExactOnConstantLoad) {
  auto p = two_device_platform();
  // One device computing for the whole window: power is constant, so
  // midpoint sampling is exact when noise is disabled.
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 10.0, 0, 0, ""},
  };
  MeterOptions opts;
  opts.accuracy = 0.0;
  opts.floor_accuracy_w = 0.0;
  const auto reading = simulate_wattsup(events, p, 10.0, opts);
  EXPECT_EQ(reading.samples_w.size(), 10u);
  EXPECT_DOUBLE_EQ(reading.total_j, (100.0 + 50.0) * 10.0);
  EXPECT_DOUBLE_EQ(dynamic_from_meter(reading, p.static_power_w),
                   50.0 * 10.0);
}

TEST(Meter, NoiseStaysWithinDatasheetBand) {
  const auto p = two_device_platform();
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 100.0, 0, 0, ""},
  };
  const auto reading = simulate_wattsup(events, p, 100.0);
  const double truth = 150.0;
  for (double w : reading.samples_w) {
    EXPECT_GE(w, truth * 0.97 - 0.5);
    EXPECT_LE(w, truth * 1.03 + 0.5);
  }
  // Integrated energy within ~1% of the exact value for 100 samples.
  EXPECT_NEAR(reading.total_j, truth * 100.0, truth * 100.0 * 0.01);
}

TEST(Meter, DeterministicPerSeed) {
  const auto p = two_device_platform();
  const std::vector<Event> events = {
      {0, EventKind::kCompute, 0.0, 5.0, 0, 0, ""},
  };
  const auto r1 = simulate_wattsup(events, p, 5.0);
  const auto r2 = simulate_wattsup(events, p, 5.0);
  EXPECT_EQ(r1.samples_w, r2.samples_w);
  MeterOptions other;
  other.seed = 999;
  const auto r3 = simulate_wattsup(events, p, 5.0, other);
  EXPECT_NE(r1.samples_w, r3.samples_w);
}

TEST(Meter, SubSecondTailSampleWeighted) {
  auto p = two_device_platform();
  p.static_power_w = 100.0;
  MeterOptions opts;
  opts.accuracy = 0.0;
  opts.floor_accuracy_w = 0.0;
  const auto reading = simulate_wattsup({}, p, 2.5, opts);
  EXPECT_EQ(reading.samples_w.size(), 3u);
  EXPECT_DOUBLE_EQ(reading.total_j, 100.0 * 2.5);
}

TEST(Meter, MinimumWattsClipsToZero) {
  auto p = two_device_platform();
  p.static_power_w = 0.2;  // below the 0.5 W floor
  MeterOptions opts;
  opts.accuracy = 0.0;
  opts.floor_accuracy_w = 0.0;
  const auto reading = simulate_wattsup({}, p, 3.0, opts);
  for (double w : reading.samples_w) EXPECT_EQ(w, 0.0);
}

TEST(Meter, RejectsBadSamplePeriod) {
  MeterOptions opts;
  opts.sample_period_s = 0.0;
  EXPECT_THROW(simulate_wattsup({}, two_device_platform(), 1.0, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace summagen::energy

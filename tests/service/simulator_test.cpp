// Virtual-clock service simulator: determinism, percentile math, and the
// admission-control behaviour the service bench gates on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/service/simulator.hpp"

namespace summagen::service {
namespace {

/// A scenario priced by a constant model: capacity = executors / 0.1 s.
ScenarioOptions constant_scenario(double rate, double duration) {
  ScenarioOptions options;
  options.arrival_rate_per_s = rate;
  options.duration_s = duration;
  options.executors = 2;
  options.seed = 7;
  options.queue.max_depth = 16;
  TenantProfile tenant;
  tenant.name = "t";
  JobTemplate jt;
  jt.config.n = 512;
  // Distinct signatures are irrelevant here; mark unbatchable via noise so
  // the constant model's speed isn't masked by coalescing.
  jt.config.noise_sigma = 0.5;
  tenant.jobs.push_back(jt);
  options.tenants.push_back(tenant);
  return options;
}

const ServiceModel kConstantModel = [](const core::ExperimentConfig&) {
  return 0.1;
};

TEST(LatencyStats, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) {
    samples.push_back(static_cast<double>(i));
  }
  const LatencyStats stats = latency_stats(samples);
  EXPECT_EQ(stats.count, 100);
  EXPECT_DOUBLE_EQ(stats.p50_s, 50.0);
  EXPECT_DOUBLE_EQ(stats.p95_s, 95.0);
  EXPECT_DOUBLE_EQ(stats.p99_s, 99.0);
  EXPECT_DOUBLE_EQ(stats.max_s, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean_s, 50.5);
}

TEST(LatencyStats, SmallAndEmptySamples) {
  EXPECT_EQ(latency_stats({}).count, 0);
  EXPECT_DOUBLE_EQ(latency_stats({}).p99_s, 0.0);
  const LatencyStats one = latency_stats({3.0});
  EXPECT_DOUBLE_EQ(one.p50_s, 3.0);
  EXPECT_DOUBLE_EQ(one.p99_s, 3.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const ScenarioOptions options = constant_scenario(15.0, 20.0);
  const ScenarioReport a = simulate(options, kConstantModel);
  const ScenarioReport b = simulate(options, kConstantModel);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.latency.p50_s, b.latency.p50_s);
  EXPECT_EQ(a.latency.p99_s, b.latency.p99_s);
}

TEST(Simulator, SeedChangesArrivals) {
  ScenarioOptions options = constant_scenario(15.0, 20.0);
  const ScenarioReport a = simulate(options, kConstantModel);
  options.seed = 8;
  const ScenarioReport b = simulate(options, kConstantModel);
  EXPECT_NE(a.submitted, b.submitted);
}

TEST(Simulator, UnderloadServesEverything) {
  // Offered 10/s against capacity 20/s: no shedding, latency near service.
  const ScenarioReport r =
      simulate(constant_scenario(10.0, 30.0), kConstantModel);
  EXPECT_GT(r.submitted, 0);
  EXPECT_EQ(r.shed, 0);
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_GE(r.latency.p50_s, 0.1);  // at least the service time
  EXPECT_LT(r.latency.p50_s, 0.3);
}

TEST(Simulator, OverloadShedsButThroughputHolds) {
  // Offered 100/s against capacity 20/s: admission drops the excess and
  // completions run at capacity instead of collapsing.
  const ScenarioReport r =
      simulate(constant_scenario(100.0, 30.0), kConstantModel);
  EXPECT_GT(r.shed, 0);
  EXPECT_GT(r.shed_fraction, 0.5);
  EXPECT_GT(r.throughput_jobs_per_s, 0.9 * 20.0);
  EXPECT_LE(r.throughput_jobs_per_s, 20.0 + 1e-9);
  // Queue bound of 16 caps waiting time at depth/capacity + service.
  EXPECT_LE(r.latency.max_s, 16.0 / 20.0 + 0.1 + 1e-9);
}

TEST(Simulator, RejectsIllFormedScenarios) {
  const ScenarioOptions good = constant_scenario(10.0, 5.0);
  ScenarioOptions bad = good;
  bad.tenants.clear();
  EXPECT_THROW(simulate(bad, kConstantModel), std::invalid_argument);
  bad = good;
  bad.tenants[0].jobs.clear();
  EXPECT_THROW(simulate(bad, kConstantModel), std::invalid_argument);
  bad = good;
  bad.executors = 0;
  EXPECT_THROW(simulate(bad, kConstantModel), std::invalid_argument);
  bad = good;
  bad.arrival_rate_per_s = 0.0;
  EXPECT_THROW(simulate(bad, kConstantModel), std::invalid_argument);
  EXPECT_THROW(simulate(good, ServiceModel()), std::invalid_argument);
}

TEST(Simulator, ModeledServiceTimePricesBySignature) {
  // The default model returns the modeled run's virtual time and memoizes
  // by signature: two calls on the same config are bit-identical (and the
  // second is a lookup, though that is unobservable here by design).
  const ServiceModel model = modeled_service_time();
  core::ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 768;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.engine = sgmpi::Engine::kModeled;
  const double first = model(config);
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(model(config), first);
  // And it matches a direct modeled run of the same config.
  core::ExperimentConfig direct = config;
  direct.numeric = false;
  EXPECT_EQ(core::run_pmm(direct).exec_time_s, first);
}

}  // namespace
}  // namespace summagen::service

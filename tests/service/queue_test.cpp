// JobQueue: admission control, DWRR fairness, and batch coalescing.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/service/queue.hpp"

namespace summagen::service {
namespace {

Job make_job(const std::string& tenant, double cost, std::uint64_t signature,
             std::uint64_t id = 0) {
  Job job;
  job.id = id;
  job.tenant = tenant;
  job.cost_units = cost;
  job.signature = signature;
  return job;
}

TEST(JobQueue, TailDropAtGlobalDepth) {
  JobQueue::Options options;
  options.max_depth = 2;
  JobQueue queue(options);
  EXPECT_TRUE(queue.submit(make_job("a", 1.0, 0)));
  EXPECT_TRUE(queue.submit(make_job("a", 1.0, 0)));
  EXPECT_FALSE(queue.submit(make_job("a", 1.0, 0)));
  const auto stats = queue.tenant_stats("a");
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(JobQueue, PerTenantBoundIsolatesAFloodingTenant) {
  JobQueue::Options options;
  options.max_depth = 8;
  options.max_tenant_depth = 2;
  JobQueue queue(options);
  for (int i = 0; i < 6; ++i) {
    queue.submit(make_job("flood", 1.0, 0));
  }
  // The flooder holds 2 slots, not 6 — the other tenant still gets in.
  EXPECT_EQ(queue.tenant_stats("flood").admitted, 2);
  EXPECT_EQ(queue.tenant_stats("flood").shed, 4);
  EXPECT_TRUE(queue.submit(make_job("other", 1.0, 0)));
}

TEST(JobQueue, DwrrServesProportionallyToWeights) {
  JobQueue::Options options;
  options.max_depth = 0;  // unbounded
  options.batch_limit = 1;
  options.quantum_units = 1.0;
  JobQueue queue(options);
  queue.set_tenant_weight("heavy", 3.0);
  queue.set_tenant_weight("light", 1.0);
  // Distinct signatures per job: batching is off anyway, but keep each
  // dispatch a single job by construction.
  for (std::uint64_t i = 0; i < 20; ++i) {
    queue.submit(make_job("heavy", 1.0, 0));
    queue.submit(make_job("light", 1.0, 0));
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 16; ++i) {
    const auto batch = queue.next_batch();
    ASSERT_EQ(batch.size(), 1u);
    ++served[batch.front().tenant];
  }
  // Equal costs, weights 3:1, both always backlogged: shares match the
  // weights exactly over whole rounds (16 dispatches = 4 rounds of 3+1).
  EXPECT_EQ(served["heavy"], 12);
  EXPECT_EQ(served["light"], 4);
  const auto heavy = queue.tenant_stats("heavy");
  const auto light = queue.tenant_stats("light");
  EXPECT_DOUBLE_EQ(heavy.service_units, 12.0);
  EXPECT_DOUBLE_EQ(light.service_units, 4.0);
}

TEST(JobQueue, LargeJobsStillDispatchAndRespectWeights) {
  // Job cost far above the quantum: the bulk-advance path must both
  // terminate and preserve the weighted shares.
  JobQueue::Options options;
  options.max_depth = 0;
  options.batch_limit = 1;
  options.quantum_units = 0.25;
  JobQueue queue(options);
  queue.set_tenant_weight("a", 2.0);
  queue.set_tenant_weight("b", 1.0);
  for (int i = 0; i < 12; ++i) {
    queue.submit(make_job("a", 100.0, 0));
    queue.submit(make_job("b", 100.0, 0));
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 9; ++i) {
    const auto batch = queue.next_batch();
    ASSERT_EQ(batch.size(), 1u);
    ++served[batch.front().tenant];
  }
  EXPECT_EQ(served["a"], 6);
  EXPECT_EQ(served["b"], 3);
}

TEST(JobQueue, IdleTenantForfeitsDeficit) {
  JobQueue::Options options;
  options.batch_limit = 1;
  options.quantum_units = 1.0;
  JobQueue queue(options);
  queue.set_tenant_weight("a", 1.0);
  queue.set_tenant_weight("b", 1.0);
  // b idles while a is served repeatedly...
  for (int i = 0; i < 8; ++i) {
    queue.submit(make_job("a", 1.0, 0));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(queue.next_batch().front().tenant, "a");
  }
  // ...then b arrives: it must NOT have banked 8 rounds of deficit — the
  // next rounds still alternate fairly instead of b bursting 8 in a row.
  for (int i = 0; i < 4; ++i) {
    queue.submit(make_job("a", 1.0, 0));
    queue.submit(make_job("b", 1.0, 0));
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 4; ++i) {
    ++served[queue.next_batch().front().tenant];
  }
  EXPECT_EQ(served["a"], 2);
  EXPECT_EQ(served["b"], 2);
}

TEST(JobQueue, CoalescesEqualSignaturesAcrossTenants) {
  JobQueue::Options options;
  options.batch_limit = 3;
  options.quantum_units = 10.0;
  JobQueue queue(options);
  queue.submit(make_job("a", 6.0, 77, 1));
  queue.submit(make_job("a", 6.0, 99, 2));  // different signature: stays
  queue.submit(make_job("b", 6.0, 77, 3));
  queue.submit(make_job("b", 6.0, 77, 4));
  queue.submit(make_job("b", 6.0, 77, 5));  // beyond batch_limit: stays

  const auto batch = queue.next_batch();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id, 1u);
  EXPECT_EQ(batch[1].id, 3u);
  EXPECT_EQ(batch[2].id, 4u);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.batches(), 1);
  EXPECT_EQ(queue.batched_jobs(), 3);

  // One execution of cost 6 split three ways: 2 units to a, 4 to b.
  EXPECT_DOUBLE_EQ(queue.tenant_stats("a").service_units, 2.0);
  EXPECT_DOUBLE_EQ(queue.tenant_stats("b").service_units, 4.0);
}

TEST(JobQueue, ZeroSignatureNeverBatches) {
  JobQueue::Options options;
  options.batch_limit = 8;
  options.quantum_units = 10.0;
  JobQueue queue(options);
  queue.submit(make_job("a", 1.0, 0, 1));
  queue.submit(make_job("a", 1.0, 0, 2));
  const auto batch = queue.next_batch();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(JobQueue, RejectsBadOptions) {
  JobQueue::Options bad_batch;
  bad_batch.batch_limit = 0;
  EXPECT_THROW(JobQueue{bad_batch}, std::invalid_argument);
  JobQueue::Options bad_quantum;
  bad_quantum.quantum_units = 0.0;
  EXPECT_THROW(JobQueue{bad_quantum}, std::invalid_argument);
}

}  // namespace
}  // namespace summagen::service

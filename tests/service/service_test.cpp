// PmmService: the threaded job-stream frontend — future delivery, load
// shedding, failure isolation, cross-job reuse, and counter consistency
// under concurrent submitters (runs under TSan in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/service/service.hpp"

namespace summagen::service {
namespace {

core::ExperimentConfig numeric_config(partition::Shape shape,
                                      std::uint64_t seed = 42) {
  core::ExperimentConfig config;
  config.platform = device::Platform::homogeneous(3);
  config.n = 160;
  config.shape = shape;
  config.numeric = true;
  config.seed = seed;
  return config;
}

core::ExperimentConfig modeled_config(partition::Shape shape) {
  core::ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = 1024;
  config.shape = shape;
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.engine = sgmpi::Engine::kModeled;
  return config;
}

PmmService::Options small_service(int executors) {
  PmmService::Options options;
  options.executors = executors;
  options.runtime.reserved_threads = 8;
  return options;
}

TEST(PmmService, DeliversMixedJobsFromConcurrentSubmitters) {
  PmmService service(small_service(2));
  const std::vector<core::ExperimentConfig> configs = {
      numeric_config(partition::Shape::kSquareCorner),
      numeric_config(partition::Shape::kBlockRectangle),
      modeled_config(partition::Shape::kSquareCorner),
      modeled_config(partition::Shape::kSquareRectangle),
  };

  std::vector<std::future<JobResult>> futures(configs.size() * 2);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < configs.size(); ++i) {
        futures[static_cast<std::size_t>(t) * configs.size() + i] =
            service.submit(t == 0 ? "alpha" : "beta", configs[i]);
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const JobResult r = futures[i].get();
    SCOPED_TRACE("job " + std::to_string(i));
    ASSERT_EQ(r.status, JobStatus::kCompleted) << r.error;
    EXPECT_GE(r.batch_size, 1);
    EXPECT_GE(r.latency_s, 0.0);
    if (configs[i % configs.size()].numeric) {
      EXPECT_TRUE(r.result.verified);
    }
  }

  const auto counters = service.counters();
  EXPECT_EQ(counters.submitted, 8);
  EXPECT_EQ(counters.completed, 8);
  EXPECT_EQ(counters.shed, 0);
  EXPECT_EQ(counters.failed, 0);
  EXPECT_EQ(service.tenant_stats("alpha").submitted, 4);
  EXPECT_EQ(service.tenant_stats("beta").submitted, 4);
}

TEST(PmmService, IdenticalJobsReuseThePlanAcrossTheStream) {
  PmmService service(small_service(1));
  const core::ExperimentConfig config =
      modeled_config(partition::Shape::kSquareCorner);

  const JobResult first = service.submit("t", config).get();
  ASSERT_EQ(first.status, JobStatus::kCompleted) << first.error;
  const JobResult second = service.submit("t", config).get();
  ASSERT_EQ(second.status, JobStatus::kCompleted) << second.error;

  // The service derived plan_cache_key from the job signature: the repeat
  // is plan-cache served, schedule-cache served, and bit-identical.
  EXPECT_FALSE(first.result.plan_cache_hit);
  EXPECT_TRUE(second.result.plan_cache_hit);
  EXPECT_GT(second.result.alloc.sched_lookups, 0);
  EXPECT_EQ(second.result.alloc.sched_hits,
            second.result.alloc.sched_lookups);
  EXPECT_EQ(second.result.exec_time_s, first.result.exec_time_s);
  const auto stats = service.runtime().plan_cache_stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.hits, 1);
}

TEST(PmmService, BatchesIdenticalQueuedJobs) {
  // One executor, deep queue: stall it with a numeric job (tens of ms of
  // real compute), pile up four identical modeled jobs behind it, and
  // watch them come back as one batch.
  PmmService::Options options = small_service(1);
  options.queue.batch_limit = 8;
  PmmService service(options);
  const core::ExperimentConfig config =
      modeled_config(partition::Shape::kSquareCorner);

  auto head = service.submit(
      "t", numeric_config(partition::Shape::kSquareCorner));
  std::vector<std::future<JobResult>> tail;
  for (int i = 0; i < 4; ++i) {
    tail.push_back(service.submit("t", config));
  }
  service.drain();

  EXPECT_EQ(head.get().status, JobStatus::kCompleted);
  int batched = 0;
  for (auto& f : tail) {
    const JobResult r = f.get();
    EXPECT_EQ(r.status, JobStatus::kCompleted);
    batched = std::max(batched, r.batch_size);
  }
  // Timing-dependent how many queued before the executor freed, but the
  // tail jobs were all enqueued before any of them ran, so at least two
  // must have shared an execution.
  EXPECT_GE(batched, 2);
  EXPECT_EQ(service.counters().completed, 5);
}

TEST(PmmService, ShedsAtAdmissionWhenFull) {
  PmmService::Options options = small_service(1);
  options.queue.max_depth = 1;
  options.queue.batch_limit = 1;
  PmmService service(options);
  const core::ExperimentConfig config =
      modeled_config(partition::Shape::kSquareCorner);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.submit("t", config));
  }
  int completed = 0;
  int shed = 0;
  for (auto& f : futures) {
    const JobResult r = f.get();
    if (r.status == JobStatus::kCompleted) {
      ++completed;
    } else {
      EXPECT_EQ(r.status, JobStatus::kShed);
      ++shed;
    }
  }
  EXPECT_EQ(completed + shed, 12);
  EXPECT_GT(shed, 0);  // depth 1 cannot hold a 12-deep burst
  const auto counters = service.counters();
  EXPECT_EQ(counters.completed, completed);
  EXPECT_EQ(counters.shed, shed);
}

TEST(PmmService, FailedJobsDeliverTheErrorAndSpareTheRest) {
  PmmService service(small_service(1));
  core::ExperimentConfig bad = modeled_config(partition::Shape::kSquareCorner);
  bad.n = -1;
  auto bad_future = service.submit("t", bad);
  auto good_future =
      service.submit("t", modeled_config(partition::Shape::kSquareCorner));

  const JobResult bad_result = bad_future.get();
  EXPECT_EQ(bad_result.status, JobStatus::kFailed);
  EXPECT_FALSE(bad_result.error.empty());
  EXPECT_EQ(good_future.get().status, JobStatus::kCompleted);
  EXPECT_EQ(service.counters().failed, 1);
  EXPECT_EQ(service.counters().completed, 1);
}

TEST(PmmService, DwrrWeightsShapeServiceOrder) {
  // Single executor, jobs pre-queued while it is busy: the 4:1 weighting
  // must show in the queue's served-units accounting.
  PmmService::Options options = small_service(1);
  options.queue.batch_limit = 1;
  PmmService service(options);
  service.set_tenant_weight("gold", 4.0);
  service.set_tenant_weight("bronze", 1.0);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit(
        "gold", modeled_config(partition::Shape::kSquareCorner)));
    futures.push_back(service.submit(
        "bronze", modeled_config(partition::Shape::kSquareRectangle)));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, JobStatus::kCompleted);
  }
  // Everything completes (work-conserving), and both tenants' accounting
  // adds up.
  EXPECT_EQ(service.tenant_stats("gold").dispatched, 6);
  EXPECT_EQ(service.tenant_stats("bronze").dispatched, 6);
  EXPECT_GT(service.tenant_stats("gold").service_units, 0.0);
}

TEST(PmmService, DestructorDrainsAdmittedJobs) {
  std::future<JobResult> future;
  {
    PmmService service(small_service(1));
    future = service.submit("t", modeled_config(partition::Shape::kSquareCorner));
  }
  EXPECT_EQ(future.get().status, JobStatus::kCompleted);
}

TEST(PmmService, OnlyOneRuntimeContextAllowed) {
  PmmService service(small_service(1));
  EXPECT_THROW(core::RuntimeContext(), std::logic_error);
}

}  // namespace
}  // namespace summagen::service

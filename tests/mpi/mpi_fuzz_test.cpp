// Randomised schedule fuzzing of the sgmpi runtime: random sequences of
// collectives over random (but consistently chosen) subgroups, with
// payload values and virtual-clock outcomes checked against a sequential
// reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "src/mpi/mpi.hpp"
#include "src/util/rng.hpp"

namespace summagen::sgmpi {
namespace {

// A deterministic program of operations all ranks agree on up front.
struct Op {
  enum Kind { kBcast, kBarrier, kAllreduceSum, kAllreduceMax, kCompute };
  Kind kind;
  std::vector<int> members;  // participating world ranks (sorted)
  int root = 0;              // comm-rank root for bcast
  std::int64_t bytes = 0;    // bcast payload
  double seconds = 0.0;      // compute advance (kCompute: members[0] only)
  double value = 0.0;        // contribution base for reductions
};

std::vector<Op> random_program(util::Rng& rng, int nranks, int length) {
  std::vector<Op> program;
  for (int i = 0; i < length; ++i) {
    Op op;
    const int kind = static_cast<int>(rng.uniform_int(0, 4));
    op.kind = static_cast<Op::Kind>(kind);
    if (op.kind == Op::kCompute) {
      op.members = {static_cast<int>(rng.uniform_int(0, nranks - 1))};
      op.seconds = rng.uniform(0.0, 0.01);
    } else {
      // Random subgroup of size >= 2.
      std::vector<int> all(static_cast<std::size_t>(nranks));
      std::iota(all.begin(), all.end(), 0);
      std::shuffle(all.begin(), all.end(), rng.engine());
      const auto size = static_cast<std::size_t>(
          rng.uniform_int(2, nranks));
      op.members.assign(all.begin(), all.begin() + size);
      std::sort(op.members.begin(), op.members.end());
      op.root = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
      op.bytes = rng.uniform_int(1, 4096) * 8;
      op.value = rng.uniform(-10.0, 10.0);
    }
    program.push_back(op);
  }
  return program;
}

// Sequential reference: simulates the virtual clocks of the whole program.
std::vector<double> reference_clocks(const std::vector<Op>& program,
                                     int nranks,
                                     const trace::HockneyParams& link) {
  std::vector<double> clock(static_cast<std::size_t>(nranks), 0.0);
  for (const Op& op : program) {
    if (op.kind == Op::kCompute) {
      clock[static_cast<std::size_t>(op.members[0])] += op.seconds;
      continue;
    }
    double entry_max = 0.0;
    for (int r : op.members) {
      entry_max = std::max(entry_max, clock[static_cast<std::size_t>(r)]);
    }
    const int q = static_cast<int>(op.members.size());
    double cost = 0.0;
    switch (op.kind) {
      case Op::kBcast:
        cost = trace::bcast_cost(link, op.bytes, q);
        break;
      case Op::kBarrier:
        cost = trace::barrier_cost(link, q);
        break;
      case Op::kAllreduceSum:
      case Op::kAllreduceMax:
        cost = trace::allreduce_cost(link, sizeof(double), q);
        break;
      case Op::kCompute:
        break;
    }
    for (int r : op.members) {
      clock[static_cast<std::size_t>(r)] = entry_max + cost;
    }
  }
  return clock;
}

TEST(MpiFuzz, RandomProgramsMatchTheReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    const int nranks = static_cast<int>(rng.uniform_int(2, 6));
    const auto program = random_program(rng, nranks, 60);

    Config config;
    config.nranks = nranks;
    config.link = trace::HockneyParams{2.0e-6, 1.0e-9};
    config.poll_interval_s = 0.002;
    Runtime runtime(config);

    std::vector<std::vector<double>> bcast_received(
        static_cast<std::size_t>(nranks));
    std::vector<std::vector<double>> reduce_results(
        static_cast<std::size_t>(nranks));

    runtime.run([&](Comm& world) {
      const int me = world.rank();
      for (const Op& op : program) {
        if (op.kind == Op::kCompute) {
          if (op.members[0] == me) world.clock().advance_compute(op.seconds);
          continue;
        }
        if (std::find(op.members.begin(), op.members.end(), me) ==
            op.members.end()) {
          continue;
        }
        Comm sub = world.subgroup(op.members);
        switch (op.kind) {
          case Op::kBcast: {
            std::vector<double> buf(
                static_cast<std::size_t>(op.bytes / 8),
                sub.rank() == op.root ? op.value : 0.0);
            sub.bcast(buf.data(), op.bytes / 8, op.root);
            bcast_received[static_cast<std::size_t>(me)].push_back(
                buf.front());
            break;
          }
          case Op::kBarrier:
            sub.barrier();
            break;
          case Op::kAllreduceSum:
            reduce_results[static_cast<std::size_t>(me)].push_back(
                sub.allreduce_sum(op.value + me));
            break;
          case Op::kAllreduceMax:
            reduce_results[static_cast<std::size_t>(me)].push_back(
                sub.allreduce_max(op.value + me));
            break;
          case Op::kCompute:
            break;
        }
      }
    });

    // Clocks match the sequential model exactly.
    const auto expected = reference_clocks(program, nranks, config.link);
    for (int r = 0; r < nranks; ++r) {
      EXPECT_NEAR(runtime.clock(r).now(),
                  expected[static_cast<std::size_t>(r)], 1e-9)
          << "seed " << seed << " rank " << r;
    }

    // Payloads match the program semantics.
    std::vector<std::size_t> bcast_idx(static_cast<std::size_t>(nranks), 0);
    std::vector<std::size_t> reduce_idx(static_cast<std::size_t>(nranks), 0);
    for (const Op& op : program) {
      if (op.kind == Op::kBcast) {
        for (int r : op.members) {
          const double got =
              bcast_received[static_cast<std::size_t>(r)]
                            [bcast_idx[static_cast<std::size_t>(r)]++];
          EXPECT_EQ(got, op.value) << "seed " << seed;
        }
      } else if (op.kind == Op::kAllreduceSum ||
                 op.kind == Op::kAllreduceMax) {
        double want = op.kind == Op::kAllreduceSum ? 0.0 : -1e300;
        for (int r : op.members) {
          if (op.kind == Op::kAllreduceSum) {
            want += op.value + r;
          } else {
            want = std::max(want, op.value + r);
          }
        }
        for (int r : op.members) {
          const double got =
              reduce_results[static_cast<std::size_t>(r)]
                            [reduce_idx[static_cast<std::size_t>(r)]++];
          EXPECT_NEAR(got, want, 1e-9) << "seed " << seed;
        }
      }
    }
  }
}

}  // namespace
}  // namespace summagen::sgmpi

// Tests of the non-blocking sgmpi request API: posting/completion split,
// payload delivery, virtual-time overlap semantics, and equivalence of the
// blocking wrappers with i* + wait.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {
namespace {

Config small_config(int nranks) {
  Config config;
  config.nranks = nranks;
  config.poll_interval_s = 0.005;
  return config;
}

TEST(Request, DefaultConstructedIsNotPending) {
  Request r;
  EXPECT_FALSE(r.pending());
}

TEST(Request, WaitOnNullRequestIsFreeNoOp) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    Request r;
    EXPECT_EQ(world.wait(r), 0.0);
    EXPECT_EQ(world.clock().now(), 0.0);
  });
}

TEST(Request, IbcastDeliversPayloadAtWait) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    std::vector<double> buf(64, world.rank() == 1 ? 2.5 : 0.0);
    Request r = world.ibcast_bytes(buf.data(), 64 * sizeof(double), 1);
    EXPECT_TRUE(r.pending());
    world.wait(r);
    EXPECT_FALSE(r.pending());
    for (double v : buf) EXPECT_EQ(v, 2.5);
  });
}

TEST(Request, IbcastSendBytesIsConstCorrectOnRoot) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    const std::vector<double> owned(32, 4.0);  // genuinely const payload
    std::vector<double> buf(32, 0.0);
    Request r = world.rank() == 0
                    ? world.ibcast_send_bytes(owned.data(),
                                              32 * sizeof(double), 0)
                    : world.ibcast_bytes(buf.data(), 32 * sizeof(double), 0);
    world.wait(r);
    if (world.rank() != 0) {
      for (double v : buf) EXPECT_EQ(v, 4.0);
    }
  });
}

TEST(Request, IbcastSendBytesThrowsOnNonRoot) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
                 const double x = 1.0;
                 world.ibcast_send_bytes(&x, sizeof(double),
                                         world.rank() == 0 ? 1 : 0);
               }),
               std::invalid_argument);
}

TEST(Request, SingleMemberIbcastCompletesImmediately) {
  Runtime rt(small_config(1));
  rt.run([](Comm& world) {
    double x = 7.0;
    Request r = world.ibcast_bytes(&x, sizeof(double), 0);
    EXPECT_FALSE(r.pending());
    EXPECT_EQ(world.wait(r), 0.0);
  });
}

TEST(Request, IsendIrecvRoundTrip) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      std::vector<double> out(16, 3.25);
      Request s = world.isend_bytes(out.data(), 16 * sizeof(double), 1, 7);
      // Buffered-eager: the buffer is reusable immediately after the post.
      std::fill(out.begin(), out.end(), -1.0);
      world.wait(s);
    } else {
      std::vector<double> in(16, 0.0);
      Request r = world.irecv_bytes(in.data(), 16 * sizeof(double), 0, 7);
      world.wait(r);
      for (double v : in) EXPECT_EQ(v, 3.25);
    }
  });
}

TEST(Request, BlockingBcastMatchesIbcastPlusWaitInVirtualTime) {
  const std::int64_t bytes = 4096;
  double blocking_time = 0.0, split_time = 0.0;
  double blocking_comm = 0.0, split_comm = 0.0;
  {
    Runtime rt(small_config(3));
    rt.run([&](Comm& world) {
      world.bcast_bytes(nullptr, bytes, 0);
      world.bcast_bytes(nullptr, bytes, 2);
    });
    blocking_time = rt.max_vtime();
    blocking_comm = rt.clock(0).comm_seconds();
  }
  {
    Runtime rt(small_config(3));
    rt.run([&](Comm& world) {
      Request r1 = world.ibcast_bytes(nullptr, bytes, 0);
      world.wait(r1);
      Request r2 = world.ibcast_bytes(nullptr, bytes, 2);
      world.wait(r2);
    });
    split_time = rt.max_vtime();
    split_comm = rt.clock(0).comm_seconds();
  }
  EXPECT_DOUBLE_EQ(blocking_time, split_time);
  EXPECT_DOUBLE_EQ(blocking_comm, split_comm);
}

TEST(Request, OverlappedBcastIsHiddenBehindCompute) {
  // Every rank posts a broadcast, computes for longer than the broadcast
  // costs, then waits: the broadcast must be fully hidden (no idle, no
  // main-line comm charge) and the clock must equal compute alone.
  const std::int64_t bytes = 1 << 20;
  Runtime rt(small_config(3));
  const double cost = trace::bcast_cost(Config{}.link, bytes, 3);
  const double compute = 10.0 * cost;
  rt.run([&](Comm& world) {
    Request r = world.ibcast_bytes(nullptr, bytes, 0);
    world.clock().advance_compute(compute);
    const double charged = world.wait(r);
    EXPECT_DOUBLE_EQ(charged, cost);  // full modeled cost is still reported
    EXPECT_DOUBLE_EQ(world.clock().now(), compute);
    EXPECT_DOUBLE_EQ(world.clock().hidden_comm_seconds(), cost);
    EXPECT_DOUBLE_EQ(world.clock().comm_seconds(), 0.0);
  });
  EXPECT_DOUBLE_EQ(rt.max_vtime(), compute);
}

TEST(Request, PartialOverlapChargesOnlyTheRemainder) {
  const std::int64_t bytes = 1 << 20;
  Runtime rt(small_config(2));
  const double cost = trace::bcast_cost(Config{}.link, bytes, 2);
  const double compute = 0.5 * cost;
  rt.run([&](Comm& world) {
    Request r = world.ibcast_bytes(nullptr, bytes, 0);
    world.clock().advance_compute(compute);
    world.wait(r);
    EXPECT_NEAR(world.clock().now(), cost, 1e-12);  // completion at cost
    EXPECT_NEAR(world.clock().comm_seconds(), cost - compute, 1e-12);
    EXPECT_NEAR(world.clock().hidden_comm_seconds(), compute, 1e-12);
  });
}

TEST(Request, PipelinedBroadcastsSerialiseOnTheCommLane) {
  // Two posted broadcasts occupy the lane back to back: total completion
  // is 2 * cost even though both were posted at t = 0.
  const std::int64_t bytes = 1 << 16;
  Runtime rt(small_config(2));
  const double cost = trace::bcast_cost(Config{}.link, bytes, 2);
  rt.run([&](Comm& world) {
    Request r1 = world.ibcast_bytes(nullptr, bytes, 0);
    Request r2 = world.ibcast_bytes(nullptr, bytes, 0);
    world.wait(r1);
    world.wait(r2);
    EXPECT_NEAR(world.clock().now(), 2.0 * cost, 1e-12);
  });
}

TEST(Request, WaitallCompletesEverythingInOrder) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    std::vector<std::vector<double>> bufs;
    std::vector<Request> reqs;
    for (int root = 0; root < 3; ++root) {
      bufs.emplace_back(8, world.rank() == root ? 1.0 + root : 0.0);
      reqs.push_back(world.ibcast_bytes(bufs.back().data(),
                                        8 * sizeof(double), root));
    }
    const double total = world.waitall(reqs);
    EXPECT_GT(total, 0.0);
    for (int root = 0; root < 3; ++root) {
      for (double v : bufs[static_cast<std::size_t>(root)]) {
        EXPECT_EQ(v, 1.0 + root);
      }
    }
    for (const Request& r : reqs) EXPECT_FALSE(r.pending());
  });
}

TEST(Request, TestReturnsFalseUntilPeersPost) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      Request r = world.ibcast_bytes(nullptr, 256, 0);
      // Rank 1 blocks in a recv before posting its ibcast, so test()
      // cannot succeed for the root (no receiver has copied).
      EXPECT_FALSE(world.test(r));
      world.send_bytes(nullptr, 0, 1, 3);
      world.wait(r);
    } else {
      world.recv_bytes(nullptr, 0, 0, 3);
      Request r = world.ibcast_bytes(nullptr, 256, 0);
      world.wait(r);
    }
  });
}

TEST(Request, TestCompletesIrecvOnlyWhenMessageArrived) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      Request r = world.irecv_bytes(nullptr, 64, 1, 9);
      EXPECT_FALSE(world.test(r));  // nothing sent yet
      world.send_bytes(nullptr, 0, 1, 1);  // release the sender
      world.wait(r);
      EXPECT_FALSE(r.pending());
    } else {
      world.recv_bytes(nullptr, 0, 0, 1);
      world.send_bytes(nullptr, 64, 0, 9);
    }
  });
}

TEST(Request, MismatchedBcastSizeAborts) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
                 Request r = world.ibcast_bytes(
                     nullptr, world.rank() == 0 ? 128 : 256, 0);
                 world.wait(r);
               }),
               std::invalid_argument);
}

TEST(Request, MismatchedRootAborts) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
                 Request r = world.ibcast_bytes(nullptr, 128,
                                                world.rank() == 0 ? 0 : 1);
                 world.wait(r);
               }),
               std::invalid_argument);
}

TEST(Request, SubgroupIbcastWorks) {
  Runtime rt(small_config(4));
  rt.run([](Comm& world) {
    if (world.rank() > 1) return;  // ranks 2, 3 sit out
    Comm pair = world.subgroup({0, 1});
    std::vector<double> buf(4, world.rank() == 0 ? 9.0 : 0.0);
    Request r = pair.ibcast_bytes(buf.data(), 4 * sizeof(double), 0);
    pair.wait(r);
    for (double v : buf) EXPECT_EQ(v, 9.0);
  });
}

TEST(Request, CompletedRequestDestructsQuietly) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    double payload = 3.0, sink = 0.0;
    Request r = world.rank() == 0
                    ? world.isend_bytes(&payload, sizeof(double), 1, 2)
                    : world.irecv_bytes(&sink, sizeof(double), 0, 2);
    world.wait(r);
  });  // waited requests destruct here: no abort
}

// Forgetting to wait a pending request silently corrupts the collective
// posting sequence, so the destructor fails loudly instead. Death tests
// fork, which thread sanitizer instrumentation does not support.
#if defined(__SANITIZE_THREAD__)
#define SUMMAGEN_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SUMMAGEN_TEST_TSAN 1
#endif
#endif

#ifndef SUMMAGEN_TEST_TSAN
TEST(RequestDeathTest, PendingRequestDestroyedFailsLoudly) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small_config(2));
        rt.run([](Comm& world) {
          double payload = 1.0, sink = 0.0;
          if (world.rank() == 0) {
            Request r = world.isend_bytes(&payload, sizeof(double), 1, 7);
            // dropped without wait/test
          } else {
            Request r = world.irecv_bytes(&sink, sizeof(double), 0, 7);
            world.wait(r);
          }
        });
      },
      "pending isend request destroyed without wait/test on comm 'world'");
}
#endif

}  // namespace
}  // namespace summagen::sgmpi

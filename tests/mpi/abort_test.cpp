// Abort/unwind coverage: when one rank throws mid-operation, every sibling
// blocked in any collective or point-to-point primitive must unwind with a
// typed AbortedError instead of polling forever — and the original error,
// not the sympathetic unwind, must surface from Runtime::run.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {
namespace {

Config small_config(int nranks) {
  Config config;
  config.nranks = nranks;
  config.poll_interval_s = 0.005;
  return config;
}

/// Rank 0 throws before touching the fabric; every other rank enters `op`
/// and must unwind via AbortedError. The root cause is what run() throws.
void expect_unwind(int nranks, const std::function<void(Comm&)>& op) {
  Runtime rt(small_config(nranks));
  EXPECT_THROW(rt.run([&](Comm& world) {
    if (world.rank() == 0) throw std::range_error("sibling failure");
    EXPECT_THROW(op(world), AbortedError);
    throw AbortedError();  // propagate like a real unwind would
  }),
               std::range_error);
}

TEST(AbortUnwind, Barrier) {
  expect_unwind(3, [](Comm& world) { world.barrier(); });
}

TEST(AbortUnwind, Bcast) {
  expect_unwind(3, [](Comm& world) {
    std::vector<double> buf(32, 0.0);
    world.bcast(buf.data(), 32, 1);
  });
}

TEST(AbortUnwind, BcastFromDeadRoot) {
  expect_unwind(3, [](Comm& world) {
    std::vector<double> buf(32, 1.0);
    world.bcast(buf.data(), 32, 0);  // root is the rank that threw
  });
}

TEST(AbortUnwind, IbcastWait) {
  expect_unwind(3, [](Comm& world) {
    std::vector<double> buf(32, 0.0);
    Request r = world.ibcast_bytes(buf.data(), 32 * sizeof(double), 1);
    world.wait(r);
  });
}

TEST(AbortUnwind, IsendWait) {
  // isend completion is local (buffered-eager), so a single post to the
  // dead rank can slip through before the sibling's abort registers; what
  // must hold is that the posting path's unwind check eventually fires.
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
    if (world.rank() == 0) throw std::range_error("sibling failure");
    const double payload = 1.0;
    bool aborted = false;
    try {
      for (;;) {
        Request r = world.isend_bytes(&payload, sizeof(double), 0, 9);
        world.wait(r);
      }
    } catch (const AbortedError&) {
      aborted = true;
    }
    EXPECT_TRUE(aborted);
    throw AbortedError();
  }),
               std::range_error);
}

TEST(AbortUnwind, IrecvWait) {
  expect_unwind(2, [](Comm& world) {
    double sink = 0.0;
    Request r = world.irecv_bytes(&sink, sizeof(double), 0, 9);
    world.wait(r);
  });
}

TEST(AbortUnwind, AllreduceMax) {
  expect_unwind(3, [](Comm& world) { world.allreduce_max(1.0); });
}

TEST(AbortUnwind, AllreduceSum) {
  expect_unwind(3, [](Comm& world) { world.allreduce_sum(1.0); });
}

TEST(AbortUnwind, AllreduceSumBuffer) {
  expect_unwind(3, [](Comm& world) {
    std::vector<double> buf(16, 1.0);
    world.allreduce_sum_buffer(buf.data(), 16);
  });
}

TEST(AbortUnwind, Gather) {
  expect_unwind(3, [](Comm& world) { world.gather(1.0, 1); });
}

TEST(AbortUnwind, SubgroupCollective) {
  expect_unwind(4, [](Comm& world) {
    if (world.rank() == 1) {
      // Subgroup {1, 2} can complete on its own; the next world-wide
      // operation is where the abort must surface.
      Comm g = world.subgroup({1, 2});
      g.allreduce_sum(1.0);
    } else if (world.rank() == 2) {
      Comm g = world.subgroup({1, 2});
      g.allreduce_sum(1.0);
    }
    world.barrier();
  });
}

TEST(AbortUnwind, PendingRequestsTolerateUnwind) {
  // A pending request destroyed *during* exception unwind must not abort
  // the process (the loud-failure check is for forgotten requests on the
  // happy path).
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([&](Comm& world) {
    if (world.rank() == 0) throw std::range_error("sibling failure");
    double sink = 0.0;
    Request r = world.irecv_bytes(&sink, sizeof(double), 0, 5);
    world.wait(r);  // throws AbortedError; `r` unwinds while pending
  }),
               std::range_error);
}

TEST(AbortUnwind, MidOperationThrowIsPromptVirtualTime) {
  // The unwound ranks' clocks must not have been dragged forward by the
  // abort: unwinding is a host-level event, not a modeled one.
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([&](Comm& world) {
    if (world.rank() == 0) throw std::range_error("boom");
    EXPECT_THROW(world.barrier(), AbortedError);
    EXPECT_EQ(world.clock().now(), 0.0);
    throw AbortedError();
  }),
               std::range_error);
}

}  // namespace
}  // namespace summagen::sgmpi

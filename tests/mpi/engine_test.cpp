// Modeled engine: FiberHost scheduling, engine selection, and the
// bit-identity contract between the thread and modeled engines over every
// sgmpi primitive class (collectives, async slots, point-to-point, faults).
#include "src/mpi/engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {
namespace {

using detail::FiberHost;

Config engine_config(int nranks, Engine engine) {
  Config config;
  config.nranks = nranks;
  config.engine = engine;
  config.poll_interval_s = 0.005;
  return config;
}

// --- FiberHost scheduling ---

TEST(FiberHost, RunsEveryFiberToCompletion) {
  FiberHost host(8, 0);
  std::vector<int> done(8, 0);
  host.run([&](int i) { done[static_cast<std::size_t>(i)] = i + 1; });
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(done[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(FiberHost, RoundRobinOrderIsDeterministic) {
  // Each fiber logs (index, step) around two yields: with ascending-order
  // sweeps the trace is exactly step-major.
  FiberHost host(3, 0);
  std::vector<std::pair<int, int>> trace;
  host.run([&](int i) {
    for (int step = 0; step < 3; ++step) {
      trace.emplace_back(i, step);
      FiberHost::current()->yield();
    }
  });
  ASSERT_EQ(trace.size(), 9u);
  std::size_t k = 0;
  for (int step = 0; step < 3; ++step) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(trace[k], std::make_pair(i, step)) << "entry " << k;
      ++k;
    }
  }
}

TEST(FiberHost, CurrentIsNullOutsideARun) {
  EXPECT_EQ(FiberHost::current(), nullptr);
  FiberHost host(2, 0);
  host.run([&](int) { EXPECT_EQ(FiberHost::current(), &host); });
  EXPECT_EQ(FiberHost::current(), nullptr);
}

TEST(FiberHost, CapturesPerFiberExceptions) {
  FiberHost host(4, 0);
  host.run([&](int i) {
    if (i == 2) throw std::runtime_error("fiber 2 failed");
  });
  for (int i = 0; i < 4; ++i) {
    const auto& e = host.errors()[static_cast<std::size_t>(i)];
    if (i == 2) {
      ASSERT_TRUE(e != nullptr);
      EXPECT_THROW(std::rethrow_exception(e), std::runtime_error);
    } else {
      EXPECT_TRUE(e == nullptr);
    }
  }
}

TEST(FiberHost, YieldOutsideAFiberThrows) {
  FiberHost host(1, 0);
  EXPECT_THROW(host.yield(), std::logic_error);
}

TEST(FiberHost, SurvivesDeepStackUse) {
  // Touch well into each fiber's stack (half the 256 KiB reservation) to
  // prove the guard-page layout leaves the reservation usable.
  FiberHost host(4, 256 * 1024);
  std::vector<double> sums(4, 0.0);
  host.run([&](int i) {
    volatile char buffer[128 * 1024];
    buffer[0] = static_cast<char>(i);
    buffer[sizeof(buffer) - 1] = static_cast<char>(i + 1);
    sums[static_cast<std::size_t>(i)] =
        static_cast<double>(buffer[0]) + buffer[sizeof(buffer) - 1];
  });
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sums[static_cast<std::size_t>(i)], 2.0 * i + 1.0);
  }
}

// --- Engine selection + parsing ---

TEST(Engine, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_engine("thread"), Engine::kThread);
  EXPECT_EQ(parse_engine("modeled"), Engine::kModeled);
  EXPECT_STREQ(to_string(Engine::kThread), "thread");
  EXPECT_STREQ(to_string(Engine::kModeled), "modeled");
  EXPECT_THROW(parse_engine("fibers"), std::invalid_argument);
}

// --- Modeled engine correctness over the primitives ---

TEST(ModeledEngine, CollectivesDeliverPayloads) {
  Runtime rt(engine_config(5, Engine::kModeled));
  rt.run([](Comm& world) {
    std::vector<double> buf(64, world.rank() == 1 ? 2.5 : 0.0);
    world.bcast(buf.data(), 64, 1);
    for (double v : buf) EXPECT_EQ(v, 2.5);
    EXPECT_EQ(world.allreduce_max(static_cast<double>(world.rank())), 4.0);
    EXPECT_EQ(world.allreduce_sum(1.0), 5.0);
    world.barrier();
    const auto gathered = world.gather(10.0 + world.rank(), 0);
    if (world.rank() == 0) {
      ASSERT_EQ(gathered.size(), 5u);
      for (int r = 0; r < 5; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)], 10.0 + r);
      }
    }
  });
}

TEST(ModeledEngine, PointToPointAndAsyncBcastWork) {
  Runtime rt(engine_config(4, Engine::kModeled));
  rt.run([](Comm& world) {
    // Ring send: r -> (r+1) % 4 with distinct tags, then an async bcast.
    const int next = (world.rank() + 1) % 4;
    const int prev = (world.rank() + 3) % 4;
    const double out = 100.0 + world.rank();
    double in = 0.0;
    Request s = world.isend_bytes(&out, sizeof(double), next, 7);
    Request r = world.irecv_bytes(&in, sizeof(double), prev, 7);
    world.wait(r);
    world.wait(s);
    EXPECT_EQ(in, 100.0 + prev);

    double payload = world.rank() == 0 ? 42.0 : 0.0;
    Request b = world.ibcast_bytes(&payload, sizeof(double), 0);
    world.wait(b);
    EXPECT_EQ(payload, 42.0);
  });
}

TEST(ModeledEngine, SubgroupCollectivesWork) {
  Runtime rt(engine_config(6, Engine::kModeled));
  rt.run([](Comm& world) {
    const bool even = world.rank() % 2 == 0;
    const std::vector<int> members =
        even ? std::vector<int>{0, 2, 4} : std::vector<int>{1, 3, 5};
    Comm sub = world.subgroup(members);
    const double sum = sub.allreduce_sum(static_cast<double>(world.rank()));
    EXPECT_EQ(sum, even ? 6.0 : 9.0);
  });
}

TEST(ModeledEngine, AbortUnwindsAllRanks) {
  Runtime rt(engine_config(4, Engine::kModeled));
  EXPECT_THROW(rt.run([](Comm& world) {
                 if (world.rank() == 2) {
                   throw std::runtime_error("rank 2 exploded");
                 }
                 world.barrier();  // peers park here until the abort lands
                 world.barrier();
               }),
               std::runtime_error);
}

TEST(ModeledEngine, PoisonedAfterAbort) {
  Runtime rt(engine_config(2, Engine::kModeled));
  EXPECT_THROW(
      rt.run([](Comm&) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  EXPECT_THROW(rt.run([](Comm&) {}), std::logic_error);
}

// --- Bit-identity against the thread engine ---

struct RunOutcome {
  std::vector<double> clock_now;
  std::vector<double> comm_time;
  std::vector<double> payload;
};

template <typename Body>
RunOutcome run_with_engine(Engine engine, int nranks, const Body& body) {
  Runtime rt(engine_config(nranks, engine));
  RunOutcome out;
  out.payload.assign(static_cast<std::size_t>(nranks), 0.0);
  out.comm_time.assign(static_cast<std::size_t>(nranks), 0.0);
  rt.run([&](Comm& world) {
    const auto result = body(world);
    out.payload[static_cast<std::size_t>(world.rank())] = result.first;
    out.comm_time[static_cast<std::size_t>(world.rank())] = result.second;
  });
  for (int r = 0; r < nranks; ++r) out.clock_now.push_back(rt.clock(r).now());
  return out;
}

template <typename Body>
void expect_engines_identical(int nranks, const Body& body) {
  const RunOutcome thread = run_with_engine(Engine::kThread, nranks, body);
  const RunOutcome modeled = run_with_engine(Engine::kModeled, nranks, body);
  for (int r = 0; r < nranks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(thread.clock_now[i], modeled.clock_now[i]) << "rank " << r;
    EXPECT_EQ(thread.comm_time[i], modeled.comm_time[i]) << "rank " << r;
    EXPECT_EQ(thread.payload[i], modeled.payload[i]) << "rank " << r;
  }
}

TEST(EngineEquivalence, MixedCollectiveScheduleIsBitIdentical) {
  expect_engines_identical(8, [](Comm& world) {
    double comm = 0.0;
    double value = static_cast<double>(world.rank());
    for (int round = 0; round < 4; ++round) {
      comm += world.bcast(&value, 1, round % world.size());
      value = world.allreduce_sum(value);
      world.barrier();
      value = world.allreduce_max(value - world.rank());
    }
    comm += world.allreduce_sum_buffer(&value, 1);
    return std::make_pair(value, comm);
  });
}

TEST(EngineEquivalence, AsyncOverlapScheduleIsBitIdentical) {
  expect_engines_identical(6, [](Comm& world) {
    double comm = 0.0;
    std::vector<double> panel(128, world.rank() == 0 ? 1.5 : 0.0);
    Request b =
        world.ibcast_bytes(panel.data(), 128 * sizeof(double), 0);
    // Overlapped "compute": advance the local lane before completing.
    world.clock().advance_compute(0.003 * (world.rank() + 1));
    comm += world.wait(b);
    const int next = (world.rank() + 1) % world.size();
    const int prev = (world.rank() + world.size() - 1) % world.size();
    double out = panel[0] * (world.rank() + 1);
    double in = 0.0;
    Request s = world.isend_bytes(&out, sizeof(double), next, 3);
    Request r = world.irecv_bytes(&in, sizeof(double), prev, 3);
    comm += world.wait(r);
    comm += world.wait(s);
    return std::make_pair(in, comm);
  });
}

TEST(EngineEquivalence, MultiNodeSubgroupScheduleIsBitIdentical) {
  // Two nodes of 8: world collectives cross the inter-node link, row
  // subgroups stay intra-node — the two-level pricing setup at p=16, the
  // acceptance bound for bit-identity checks.
  const auto body = [](Comm& world) {
    double comm = 0.0;
    std::vector<int> node_peers;
    const int base = world.rank() < 8 ? 0 : 8;
    for (int i = 0; i < 8; ++i) node_peers.push_back(base + i);
    Comm sub = world.subgroup(node_peers);
    double v = static_cast<double>(world.rank());
    comm += sub.bcast(&v, 1, 0);
    comm += world.bcast(&v, 1, 0);
    v = world.allreduce_sum(v);
    return std::make_pair(v, comm);
  };
  Config base = engine_config(16, Engine::kThread);
  base.node_of.assign(16, 0);
  for (int r = 8; r < 16; ++r) base.node_of[static_cast<std::size_t>(r)] = 1;

  RunOutcome outcomes[2];
  for (int pass = 0; pass < 2; ++pass) {
    Config config = base;
    config.engine = pass == 0 ? Engine::kThread : Engine::kModeled;
    Runtime rt(config);
    RunOutcome& out = outcomes[pass];
    out.payload.assign(16, 0.0);
    out.comm_time.assign(16, 0.0);
    rt.run([&](Comm& world) {
      const auto result = body(world);
      out.payload[static_cast<std::size_t>(world.rank())] = result.first;
      out.comm_time[static_cast<std::size_t>(world.rank())] = result.second;
    });
    for (int r = 0; r < 16; ++r) out.clock_now.push_back(rt.clock(r).now());
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(outcomes[0].clock_now[i], outcomes[1].clock_now[i]);
    EXPECT_EQ(outcomes[0].comm_time[i], outcomes[1].comm_time[i]);
    EXPECT_EQ(outcomes[0].payload[i], outcomes[1].payload[i]);
  }
}

// --- Faults under the modeled engine ---

TEST(ModeledEngine, CrashShrinkRecoveryWorks) {
  Config config = engine_config(4, Engine::kModeled);
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.rank = 1;
  crash.at_vtime = 0.0;
  config.faults.events.push_back(crash);
  Runtime rt(config);
  std::vector<int> survivors;
  rt.run([&](Comm& world) {
    try {
      for (int step = 0; step < 50; ++step) {
        world.clock().advance_compute(0.01);
        world.barrier();
      }
      world.ft_commit();
    } catch (const PeerFailedError&) {
      const ShrinkResult result = world.shrink();
      if (world.world_rank() == 0) survivors = result.survivors;
    }
  });
  EXPECT_EQ(survivors, (std::vector<int>{0, 2, 3}));
}

// --- Scale smoke: thousands of fibers on one thread ---

TEST(ModeledEngine, FiveHundredTwelveRanksComplete) {
  Config config = engine_config(512, Engine::kModeled);
  config.fiber_stack_bytes = 128 * 1024;
  Runtime rt(config);
  double sum = -1.0;
  rt.run([&](Comm& world) {
    double v = 1.0;
    v = world.allreduce_sum(v);
    world.barrier();
    if (world.rank() == 0) sum = v;
  });
  EXPECT_EQ(sum, 512.0);
  EXPECT_GT(rt.max_vtime(), 0.0);
}

}  // namespace
}  // namespace summagen::sgmpi

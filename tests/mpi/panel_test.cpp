// Tests of the strided panel transport: bcast_panel / ibcast_panel move a
// sub-matrix of the root's buffer straight into every rank's (differently
// strided) destination with no intermediate staging, and isend_panel /
// irecv_panel pack/scatter through the eager payload. Virtual timing must
// match the contiguous byte collectives carrying the same payload size.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/mpi/mpi.hpp"
#include "src/util/matrix.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::sgmpi {
namespace {

using summagen::util::ConstMatrixView;
using summagen::util::Matrix;
using summagen::util::MatrixView;
using summagen::util::block_view;

Config small_config(int nranks) {
  Config config;
  config.nranks = nranks;
  config.poll_interval_s = 0.005;
  return config;
}

Matrix numbered(std::int64_t rows, std::int64_t cols, double base = 0.0) {
  Matrix m(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) m(i, j) = base + 100.0 * i + j;
  }
  return m;
}

TEST(Panel, BcastDeliversStridedBlockToStridedDestinations) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    // Root 1 broadcasts a 3x4 block living inside a 6x8 matrix; every rank
    // receives into a block of its own 5x9 frame.
    Matrix src = numbered(6, 8, world.rank() == 1 ? 1000.0 : -1.0);
    Matrix frame(5, 9);
    frame.fill(0.0);
    MatrixView dst = block_view(frame, 1, 2, 3, 4);
    if (world.rank() == 1) {
      world.bcast_panel(block_view(static_cast<const Matrix&>(src), 2, 3,
                                   3, 4),
                        dst, 1);
    } else {
      world.bcast_panel({}, dst, 1);
    }
    // Root values: src(2+i, 3+j) with base 1000.
    for (std::int64_t i = 0; i < 3; ++i) {
      for (std::int64_t j = 0; j < 4; ++j) {
        EXPECT_EQ(frame(1 + i, 2 + j), 1000.0 + 100.0 * (2 + i) + (3 + j));
      }
    }
    // The frame outside the destination block is untouched.
    EXPECT_EQ(frame(0, 0), 0.0);
    EXPECT_EQ(frame(4, 8), 0.0);
  });
}

TEST(Panel, IbcastRootMayOmitLocalStore) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    Matrix src = numbered(4, 4, 500.0);
    Matrix dst(2, 2);
    dst.fill(-3.0);
    Request r;
    if (world.rank() == 0) {
      // Root already holds the data in place: pass an empty destination.
      r = world.ibcast_panel(block_view(static_cast<const Matrix&>(src), 0,
                                        0, 2, 2),
                             MatrixView{}, 0);
    } else {
      r = world.ibcast_panel({}, MatrixView(dst), 0);
    }
    world.wait(r);
    if (world.rank() == 0) {
      EXPECT_EQ(dst(0, 0), -3.0);  // untouched
    } else {
      EXPECT_EQ(dst(1, 1), 500.0 + 100.0 + 1.0);
    }
  });
}

TEST(Panel, BcastTimingMatchesContiguousBytes) {
  // Two runtimes with the same topology: a panel broadcast of r x c
  // doubles must advance the virtual clock exactly like bcast_bytes of
  // r*c*8 bytes (the zero-copy refactor cannot change modeled time).
  const int nranks = 4;
  const std::int64_t r = 12, c = 7;
  std::vector<double> panel_done(nranks), bytes_done(nranks);
  {
    Runtime rt(small_config(nranks));
    rt.run([&](Comm& world) {
      Matrix src = numbered(r, c);
      Matrix dst(r, c);
      if (world.rank() == 0) {
        world.bcast_panel(ConstMatrixView(src), MatrixView(dst), 0);
      } else {
        world.bcast_panel({}, MatrixView(dst), 0);
      }
      panel_done[static_cast<std::size_t>(world.rank())] =
          world.clock().now();
    });
  }
  {
    Runtime rt(small_config(nranks));
    rt.run([&](Comm& world) {
      std::vector<double> buf(static_cast<std::size_t>(r * c));
      world.bcast_bytes(buf.data(),
                        r * c * static_cast<std::int64_t>(sizeof(double)), 0);
      bytes_done[static_cast<std::size_t>(world.rank())] =
          world.clock().now();
    });
  }
  for (int i = 0; i < nranks; ++i) {
    EXPECT_DOUBLE_EQ(panel_done[static_cast<std::size_t>(i)],
                     bytes_done[static_cast<std::size_t>(i)])
        << "rank " << i;
  }
}

TEST(Panel, SingleMemberBcastIsLocalCopy) {
  Runtime rt(small_config(1));
  rt.run([](Comm& world) {
    Matrix src = numbered(3, 3);
    Matrix dst(3, 3);
    dst.fill(0.0);
    world.bcast_panel(ConstMatrixView(src), MatrixView(dst), 0);
    EXPECT_EQ(world.clock().now(), 0.0);
    EXPECT_EQ(dst(2, 1), 201.0);
  });
}

TEST(Panel, ShapeMismatchAcrossMembersThrows) {
  Runtime rt(small_config(2));
  EXPECT_THROW(
      rt.run([](Comm& world) {
        Matrix buf(4, 4);
        if (world.rank() == 0) {
          world.bcast_panel(block_view(static_cast<const Matrix&>(buf), 0, 0,
                                       2, 3),
                            MatrixView{}, 0);
        } else {
          world.bcast_panel({}, block_view(buf, 0, 0, 3, 2), 0);
        }
      }),
      std::invalid_argument);
}

TEST(Panel, NonRootMustPassEmptySource) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
                 Matrix src = numbered(2, 2);
                 Matrix dst(2, 2);
                 // Both ranks pass a source; rank 1 is not the root.
                 world.bcast_panel(ConstMatrixView(src), MatrixView(dst), 0);
               }),
               std::invalid_argument);
}

TEST(Panel, SendRecvScattersThroughEagerPayload) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      Matrix src = numbered(8, 8, 7000.0);
      world.send_panel(block_view(static_cast<const Matrix&>(src), 1, 2, 4,
                                  3),
                       1, 42);
    } else {
      Matrix frame(6, 6);
      frame.fill(0.0);
      world.recv_panel(block_view(frame, 2, 1, 4, 3), 0, 42);
      for (std::int64_t i = 0; i < 4; ++i) {
        for (std::int64_t j = 0; j < 3; ++j) {
          EXPECT_EQ(frame(2 + i, 1 + j),
                    7000.0 + 100.0 * (1 + i) + (2 + j));
        }
      }
      EXPECT_EQ(frame(0, 0), 0.0);
      EXPECT_EQ(frame(5, 5), 0.0);
    }
  });
}

TEST(Panel, IsendSnapshotsPayloadAtPost) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      Matrix src = numbered(4, 4);
      Request r = world.isend_panel(
          block_view(static_cast<const Matrix&>(src), 0, 0, 2, 2), 1, 9);
      // Buffered-eager semantics: mutating after the post must not change
      // what the receiver sees.
      src.fill(-1.0);
      world.wait(r);
    } else {
      Matrix dst(2, 2);
      Request r = world.irecv_panel(MatrixView(dst), 0, 9);
      world.wait(r);
      EXPECT_EQ(dst(0, 0), 0.0);
      EXPECT_EQ(dst(1, 1), 101.0);
    }
  });
}

}  // namespace
}  // namespace summagen::sgmpi

// Fault injection at the sgmpi layer: planned crashes, slowdowns, link
// degradation and transient message drops, and the typed failure +
// shrink agreement survivors use to recover (DESIGN.md "Fault model").
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {
namespace {

Config small_config(int nranks) {
  Config config;
  config.nranks = nranks;
  config.poll_interval_s = 0.005;
  return config;
}

TEST(Faults, EmptyPlanMakesShrinkALogicError) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    EXPECT_THROW(world.shrink(), std::logic_error);
    EXPECT_THROW(world.ft_commit(), std::logic_error);
    EXPECT_EQ(world.compute_slowdown(), 1.0);
  });
}

TEST(Faults, PlanValidationRejectsBadEvents) {
  Config config = small_config(2);
  config.faults.events.push_back({FaultKind::kCrash, /*rank=*/7, 0.0});
  EXPECT_THROW(Runtime{config}, std::invalid_argument);

  Config config2 = small_config(2);
  config2.faults.events.push_back(
      {FaultKind::kSlowdown, /*rank=*/0, 0.0, /*factor=*/-1.0});
  EXPECT_THROW(Runtime{config2}, std::invalid_argument);
}

TEST(Faults, CrashSurfacesAsTypedPeerFailureAndShrinks) {
  Config config = small_config(3);
  config.faults.events.push_back({FaultKind::kCrash, /*rank=*/1, 0.0});
  Runtime rt(config);
  std::atomic<int> peer_failures{0};
  rt.run([&](Comm& world) {
    try {
      world.barrier();
      // Rank 1 dies inside the barrier; 0 and 2 must not get here.
      ADD_FAILURE() << "rank " << world.rank() << " passed the barrier";
    } catch (const PeerFailedError& e) {
      EXPECT_EQ(e.rank, 1);
      EXPECT_EQ(e.kind, FaultKind::kCrash);
      EXPECT_GE(e.detected_vtime, config.fault_detect_s);
      peer_failures.fetch_add(1);
      const ShrinkResult res = world.shrink();
      EXPECT_EQ(res.survivors, (std::vector<int>{0, 2}));
      ASSERT_EQ(res.handled.size(), 1u);
      EXPECT_EQ(res.handled[0].kind, FaultKind::kCrash);
      // The shrunk communicator works after the fabric reset.
      Comm group = world.subgroup(res.survivors);
      group.barrier();
      EXPECT_EQ(group.allreduce_sum(1.0), 2.0);
    }
  });
  EXPECT_EQ(peer_failures.load(), 2);

  const auto records = rt.fault_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].triggered);
  EXPECT_TRUE(records[0].handled);
  EXPECT_GE(records[0].first_detect_vtime,
            records[0].trigger_vtime + config.fault_detect_s);
  EXPECT_GE(records[0].handled_vtime, records[0].first_detect_vtime);
}

TEST(Faults, SlowdownInterruptsEveryoneButNobodyDies) {
  Config config = small_config(2);
  config.faults.events.push_back(
      {FaultKind::kSlowdown, /*rank=*/0, 0.0, /*factor=*/4.0});
  Runtime rt(config);
  std::atomic<int> recovered{0};
  rt.run([&](Comm& world) {
    try {
      world.barrier();
      ADD_FAILURE() << "rank " << world.rank() << " passed the barrier";
    } catch (const PeerFailedError& e) {
      EXPECT_EQ(e.rank, 0);
      EXPECT_EQ(e.kind, FaultKind::kSlowdown);
      const ShrinkResult res = world.shrink();
      // A degraded rank is not removed: both survive.
      EXPECT_EQ(res.survivors, (std::vector<int>{0, 1}));
      EXPECT_EQ(world.compute_slowdown(), world.rank() == 0 ? 4.0 : 1.0);
      recovered.fetch_add(1);
    }
  });
  EXPECT_EQ(recovered.load(), 2);
}

TEST(Faults, LinkSlowdownStretchesTheVictimsCommunication) {
  const auto bcast_time = [](FaultPlan plan) {
    Config config = small_config(2);
    config.faults = std::move(plan);
    Runtime rt(config);
    std::vector<double> buf(128, 0.0);
    rt.run([&](Comm& world) {
      world.bcast(buf.data(), 128, 0);
    });
    return rt.clock(1).now();
  };
  FaultPlan slow;
  slow.events.push_back(
      {FaultKind::kLinkSlowdown, /*rank=*/1, 0.0, /*factor=*/8.0});
  const double clean = bcast_time({});
  const double degraded = bcast_time(slow);
  EXPECT_GT(clean, 0.0);
  EXPECT_GT(degraded, clean);
}

TEST(Faults, TransientDropsChargeRetriesAndDeliver) {
  const auto send_time = [](FaultPlan plan) {
    Config config = small_config(2);
    config.faults = std::move(plan);
    Runtime rt(config);
    double received = 0.0;
    rt.run([&](Comm& world) {
      const double payload = 7.5;
      if (world.rank() == 0) {
        Request r = world.isend_bytes(&payload, sizeof(double), 1, 3);
        world.wait(r);
      } else {
        Request r = world.irecv_bytes(&received, sizeof(double), 0, 3);
        world.wait(r);
      }
    });
    EXPECT_EQ(received, 7.5);  // retries make the delivery transparent
    return rt.clock(0).now();
  };
  FaultPlan drops;
  drops.events.push_back({FaultKind::kMessageDrop, /*rank=*/0, 0.0,
                          /*factor=*/1.0, /*drop_count=*/2});
  const double clean = send_time({});
  const double retried = send_time(drops);
  EXPECT_GT(retried, clean);
}

TEST(Faults, DropStormExhaustsRetriesAndFailsTheSender) {
  Config config = small_config(2);
  config.max_send_attempts = 3;
  config.faults.events.push_back({FaultKind::kMessageDrop, /*rank=*/0, 0.0,
                                  /*factor=*/1.0, /*drop_count=*/50});
  Runtime rt(config);
  double sink = 0.0;
  const double payload = 1.0;
  EXPECT_THROW(
      rt.run([&](Comm& world) {
        if (world.rank() == 0) {
          Request r = world.isend_bytes(&payload, sizeof(double), 1, 3);
          world.wait(r);
        } else {
          Request r = world.irecv_bytes(&sink, sizeof(double), 0, 3);
          world.wait(r);
        }
      }),
      PeerFailedError);
}

TEST(Faults, CommitGateConvergesAfterLateFault) {
  // The fault triggers while ranks sit in the commit gate: both must throw
  // PeerFailedError (not just one), then agree via shrink.
  Config config = small_config(2);
  config.faults.events.push_back(
      {FaultKind::kSlowdown, /*rank=*/1, 0.0, /*factor=*/2.0});
  Runtime rt(config);
  std::atomic<int> threw{0};
  rt.run([&](Comm& world) {
    try {
      world.ft_commit();
      ADD_FAILURE() << "rank " << world.rank() << " committed";
    } catch (const PeerFailedError&) {
      threw.fetch_add(1);
      world.shrink();
      // After handling, the commit succeeds.
      EXPECT_GE(world.ft_commit(), 0.0);
    }
  });
  EXPECT_EQ(threw.load(), 2);
}

TEST(Faults, FaultFreePlanLeavesTimingUntouched) {
  // A plan whose events never trigger must not change virtual timing.
  const auto run_time = [](FaultPlan plan) {
    Config config = small_config(3);
    config.faults = std::move(plan);
    Runtime rt(config);
    rt.run([](Comm& world) {
      world.barrier();
      world.allreduce_sum(static_cast<double>(world.rank()));
      std::vector<double> buf(64, 0.0);
      world.bcast(buf.data(), 64, 2);
    });
    return rt.max_vtime();
  };
  FaultPlan dormant;
  dormant.events.push_back({FaultKind::kCrash, /*rank=*/0, 1.0e9});
  EXPECT_EQ(run_time({}), run_time(dormant));
}

TEST(Faults, ParsePlanAcceptsTheDocumentedGrammar) {
  const FaultPlan plan =
      parse_fault_plan("crash@0.5:1,slow@0.25:0x4,link@0.2:2x8,drop@0.1:2x3");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events[0].rank, 1);
  EXPECT_DOUBLE_EQ(plan.events[0].at_vtime, 0.5);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 4.0);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kLinkSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[2].factor, 8.0);
  EXPECT_EQ(plan.events[3].kind, FaultKind::kMessageDrop);
  EXPECT_EQ(plan.events[3].drop_count, 3);
  // Defaults when 'x' is omitted.
  EXPECT_DOUBLE_EQ(parse_fault_plan("slow@1:0").events[0].factor, 2.0);
  EXPECT_EQ(parse_fault_plan("drop@1:0").events[0].drop_count, 1);
  EXPECT_TRUE(parse_fault_plan("").empty());
}

TEST(Faults, ParsePlanRejectsMalformedEvents) {
  EXPECT_THROW(parse_fault_plan("meteor@0.5:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash:1@0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@0.5:1x2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow@abc:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow@1:zz"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crash@0.5:1,,slow@1:0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace summagen::sgmpi

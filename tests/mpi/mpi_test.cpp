#include "src/mpi/mpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace summagen::sgmpi {
namespace {

Config small_config(int nranks) {
  Config config;
  config.nranks = nranks;
  config.poll_interval_s = 0.005;
  return config;
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(Runtime(small_config(0)), std::invalid_argument);
}

TEST(Runtime, RanksAndSizesAreCorrect) {
  Runtime rt(small_config(4));
  std::vector<int> seen(4, -1);
  rt.run([&](Comm& world) {
    EXPECT_EQ(world.size(), 4);
    EXPECT_EQ(world.world_rank(), world.rank());
    seen[static_cast<std::size_t>(world.rank())] = world.rank();
  });
  for (int r = 0; r < 4; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
}

TEST(Runtime, SingleRankWorks) {
  Runtime rt(small_config(1));
  rt.run([](Comm& world) {
    EXPECT_EQ(world.size(), 1);
    world.barrier();  // no-op
    double x = 3.0;
    world.bcast(&x, 1, 0);
    EXPECT_EQ(world.allreduce_max(5.0), 5.0);
  });
}

TEST(Bcast, RootZeroDistributesPayload) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    std::vector<double> buf(256, world.rank() == 0 ? 1.25 : 0.0);
    world.bcast(buf.data(), 256, 0);
    for (double v : buf) EXPECT_EQ(v, 1.25);
  });
}

TEST(Bcast, NonZeroRootWorks) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    std::vector<double> buf(16, world.rank() == 2 ? -7.0 : 0.0);
    world.bcast(buf.data(), 16, 2);
    for (double v : buf) EXPECT_EQ(v, -7.0);
  });
}

TEST(Bcast, SequenceOfBroadcastsWithRotatingRoots) {
  Runtime rt(small_config(4));
  rt.run([](Comm& world) {
    for (int round = 0; round < 20; ++round) {
      const int root = round % world.size();
      double v = world.rank() == root ? 100.0 + round : -1.0;
      world.bcast(&v, 1, root);
      EXPECT_EQ(v, 100.0 + round) << "round " << round;
    }
  });
}

TEST(Bcast, NullPayloadOnlyMovesClocks) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    const double cost = world.bcast_bytes(nullptr, 1 << 20, 0);
    EXPECT_GT(cost, 0.0);
  });
  EXPECT_GT(rt.clock(0).comm_seconds(), 0.0);
  EXPECT_GT(rt.clock(1).comm_seconds(), 0.0);
}

TEST(Bcast, ModeledCostMatchesHockneyTree) {
  Config config = small_config(3);
  config.link = trace::HockneyParams{1.0e-6, 1.0e-9};
  Runtime rt(config);
  const std::int64_t bytes = 4096;
  rt.run([&](Comm& world) {
    const double cost = world.bcast_bytes(nullptr, bytes, 0);
    EXPECT_DOUBLE_EQ(cost, trace::bcast_cost(config.link, bytes, 3));
  });
  // All ranks end at the same virtual time (they entered together).
  EXPECT_DOUBLE_EQ(rt.clock(0).now(), rt.clock(1).now());
  EXPECT_DOUBLE_EQ(rt.clock(0).now(), rt.clock(2).now());
}

TEST(Bcast, InvalidRootThrows) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
    double v = 0;
    world.bcast(&v, 1, 5);
  }),
               std::invalid_argument);
}

TEST(Barrier, SynchronisesVirtualClocks) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    // Rank r computes r seconds, then all meet at a barrier.
    world.clock().advance_compute(static_cast<double>(world.rank()));
    world.barrier();
  });
  // Everyone's clock is at least the slowest rank's pre-barrier time.
  for (int r = 0; r < 3; ++r) EXPECT_GE(rt.clock(r).now(), 2.0);
  // Idle time is charged to the fast ranks only.
  EXPECT_GT(rt.clock(0).idle_seconds(), rt.clock(2).idle_seconds());
}

TEST(SendRecv, DeliversPayloadAndOrder) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      std::vector<double> a(10);
      std::iota(a.begin(), a.end(), 0.0);
      world.send(a.data(), 10, 1, 1);
      std::vector<double> b(10);
      std::iota(b.begin(), b.end(), 100.0);
      world.send(b.data(), 10, 1, 1);
    } else {
      std::vector<double> buf(10);
      world.recv(buf.data(), 10, 0, 1);
      EXPECT_EQ(buf[3], 3.0);  // first message first
      world.recv(buf.data(), 10, 0, 1);
      EXPECT_EQ(buf[3], 103.0);
    }
  });
}

TEST(SendRecv, TagsMatchSelectively) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    if (world.rank() == 0) {
      double a = 1.0, b = 2.0;
      world.send(&a, 1, 1, /*tag=*/10);
      world.send(&b, 1, 1, /*tag=*/20);
    } else {
      double v = 0.0;
      world.recv(&v, 1, 0, /*tag=*/20);  // out of arrival order
      EXPECT_EQ(v, 2.0);
      world.recv(&v, 1, 0, /*tag=*/10);
      EXPECT_EQ(v, 1.0);
    }
  });
}

TEST(SendRecv, SizeMismatchThrows) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
    if (world.rank() == 0) {
      double v = 1.0;
      world.send(&v, 1, 1, 0);
    } else {
      double buf[4];
      world.recv(buf, 4, 0, 0);
    }
  }),
               std::invalid_argument);
}

TEST(SendRecv, SendToSelfRejected) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
    double v = 0;
    if (world.rank() == 0) world.send(&v, 1, 0, 0);
  }),
               std::invalid_argument);
}

TEST(Allreduce, MaxOfAllNegativeValues) {
  // Regression: the accumulator must be seeded by the first contribution,
  // not by 0 (found by the schedule fuzzer).
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    const double r = static_cast<double>(world.rank());
    EXPECT_DOUBLE_EQ(world.allreduce_max(-5.0 - r), -5.0);
  });
}

TEST(Allreduce, MaxAndSum) {
  Runtime rt(small_config(4));
  rt.run([](Comm& world) {
    const double r = static_cast<double>(world.rank());
    EXPECT_DOUBLE_EQ(world.allreduce_max(r), 3.0);
    EXPECT_DOUBLE_EQ(world.allreduce_sum(r), 6.0);
    // Twice in a row (state reset between collectives).
    EXPECT_DOUBLE_EQ(world.allreduce_max(-r), 0.0);
    EXPECT_DOUBLE_EQ(world.allreduce_sum(1.0), 4.0);
  });
}

TEST(Gather, CollectsInCommRankOrder) {
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    const auto got = world.gather(10.0 * world.rank(), 1);
    if (world.rank() == 1) {
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[0], 0.0);
      EXPECT_EQ(got[1], 10.0);
      EXPECT_EQ(got[2], 20.0);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Subgroup, RanksRemapToListOrder) {
  Runtime rt(small_config(4));
  rt.run([](Comm& world) {
    if (world.rank() == 1 || world.rank() == 3) {
      Comm sub = world.subgroup({1, 3});
      EXPECT_EQ(sub.size(), 2);
      EXPECT_EQ(sub.rank(), world.rank() == 1 ? 0 : 1);
      EXPECT_EQ(sub.world_rank(), world.rank());
      double v = sub.rank() == 0 ? 55.0 : 0.0;
      sub.bcast(&v, 1, 0);
      EXPECT_EQ(v, 55.0);
    }
  });
}

TEST(Subgroup, DisjointGroupsOperateConcurrently) {
  Runtime rt(small_config(4));
  rt.run([](Comm& world) {
    const bool low = world.rank() < 2;
    Comm sub = world.subgroup(low ? std::vector<int>{0, 1}
                                  : std::vector<int>{2, 3});
    double v = sub.rank() == 0 ? (low ? 1.0 : 2.0) : 0.0;
    sub.bcast(&v, 1, 0);
    EXPECT_EQ(v, low ? 1.0 : 2.0);
    EXPECT_DOUBLE_EQ(sub.allreduce_sum(1.0), 2.0);
  });
}

TEST(Subgroup, ReusedMemberListSharesState) {
  // Creating the "same" subgroup repeatedly must keep collectives matched.
  Runtime rt(small_config(3));
  rt.run([](Comm& world) {
    for (int i = 0; i < 10; ++i) {
      Comm sub = world.subgroup({0, 1, 2});
      double v = world.rank() == 0 ? i : -1;
      sub.bcast(&v, 1, 0);
      EXPECT_EQ(v, i);
    }
  });
}

TEST(Subgroup, NonMemberCallerRejected) {
  Runtime rt(small_config(3));
  EXPECT_THROW(rt.run([](Comm& world) {
    if (world.rank() == 2) {
      (void)world.subgroup({0, 1});
    } else {
      Comm sub = world.subgroup({0, 1});
      sub.barrier();
    }
  }),
               std::invalid_argument);
}

TEST(Subgroup, DuplicateMembersRejected) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
    if (world.rank() == 0) (void)world.subgroup({0, 0});
  }),
               std::invalid_argument);
}

TEST(Subgroup, UnknownWorldRankRejected) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm& world) {
    if (world.rank() == 0) (void)world.subgroup({0, 9});
  }),
               std::invalid_argument);
}

TEST(ErrorHandling, ExceptionOnOneRankUnwindsAll) {
  Runtime rt(small_config(3));
  EXPECT_THROW(rt.run([](Comm& world) {
    if (world.rank() == 1) throw std::runtime_error("boom");
    world.barrier();  // would deadlock without abort propagation
  }),
               std::runtime_error);
}

TEST(ErrorHandling, PoisonedRuntimeRefusesReuse) {
  Runtime rt(small_config(2));
  EXPECT_THROW(rt.run([](Comm&) { throw std::runtime_error("x"); }),
               std::runtime_error);
  EXPECT_THROW(rt.run([](Comm&) {}), std::logic_error);
}

TEST(ErrorHandling, RootCausePreferredOverAbortedError) {
  Runtime rt(small_config(3));
  try {
    rt.run([](Comm& world) {
      if (world.rank() == 0) throw std::domain_error("root-cause");
      world.barrier();
    });
    FAIL() << "expected a throw";
  } catch (const std::domain_error& e) {
    EXPECT_STREQ(e.what(), "root-cause");
  }
}

TEST(VirtualTime, ComputeThenBcastOrdersByEntryTimes) {
  Config config = small_config(2);
  config.link = trace::HockneyParams{1.0e-3, 0.0};  // 1 ms latency, no bw
  Runtime rt(config);
  rt.run([](Comm& world) {
    if (world.rank() == 0) world.clock().advance_compute(1.0);
    double v = world.rank() == 0 ? 9.0 : 0.0;
    world.bcast(&v, 1, 0);
  });
  // Completion = max(entries) + 1 round * 1ms = 1.001 on both ranks.
  EXPECT_NEAR(rt.clock(0).now(), 1.001, 1e-9);
  EXPECT_NEAR(rt.clock(1).now(), 1.001, 1e-9);
  EXPECT_NEAR(rt.clock(1).idle_seconds(), 1.0, 1e-9);
  EXPECT_NEAR(rt.clock(0).idle_seconds(), 0.0, 1e-9);
}

TEST(VirtualTime, SendRecvChargesBothSides) {
  Config config = small_config(2);
  config.link = trace::HockneyParams{1.0e-6, 1.0e-9};
  Runtime rt(config);
  const std::int64_t count = 1000;
  rt.run([&](Comm& world) {
    std::vector<double> buf(static_cast<std::size_t>(count), 1.0);
    if (world.rank() == 0) {
      world.send(buf.data(), count, 1, 0);
    } else {
      world.recv(buf.data(), count, 0, 0);
    }
  });
  const double cost = config.link.p2p(count * 8);
  EXPECT_NEAR(rt.clock(0).comm_seconds(), cost, 1e-12);
  EXPECT_NEAR(rt.clock(1).comm_seconds(), cost, 1e-12);
}

TEST(VirtualTime, ResetClocksZeroesState) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) { world.clock().advance_compute(5.0); });
  EXPECT_GT(rt.max_vtime(), 0.0);
  rt.reset_clocks();
  EXPECT_EQ(rt.max_vtime(), 0.0);
}

TEST(Events, BcastEventsRecordedWhenEnabled) {
  Config config = small_config(2);
  config.record_events = true;
  Runtime rt(config);
  rt.run([](Comm& world) {
    double v = 0;
    world.bcast(&v, 1, 0);
  });
  EXPECT_EQ(rt.events().size(), 2u);  // one event per participating rank
  const auto events = rt.events().sorted();
  EXPECT_EQ(events[0].kind, trace::EventKind::kBcast);
  EXPECT_EQ(events[0].bytes, 8);
}

TEST(Events, DisabledByDefault) {
  Runtime rt(small_config(2));
  rt.run([](Comm& world) {
    double v = 0;
    world.bcast(&v, 1, 0);
  });
  EXPECT_EQ(rt.events().size(), 0u);
}

TEST(Topology, IntraNodeGroupsUseFastLink) {
  Config config = small_config(4);
  config.link = trace::HockneyParams{1.0e-6, 1.0e-9};
  config.internode_link = trace::HockneyParams{1.0e-4, 1.0e-7};
  config.node_of = {0, 0, 1, 1};
  Runtime rt(config);
  rt.run([&](Comm& world) {
    // World spans nodes: inter-node price.
    const double world_cost = world.bcast_bytes(nullptr, 1000, 0);
    EXPECT_DOUBLE_EQ(world_cost,
                     trace::bcast_cost(config.internode_link, 1000, 4));
    // A subgroup within node 0: intra-node price.
    if (world.rank() < 2) {
      Comm sub = world.subgroup({0, 1});
      const double sub_cost = sub.bcast_bytes(nullptr, 1000, 0);
      EXPECT_DOUBLE_EQ(sub_cost, trace::bcast_cost(config.link, 1000, 2));
    } else {
      Comm sub = world.subgroup({2, 3});
      sub.bcast_bytes(nullptr, 1000, 0);
    }
  });
}

TEST(Topology, PointToPointPicksLinkPerPair) {
  Config config = small_config(3);
  config.link = trace::HockneyParams{0.0, 1.0e-9};
  config.internode_link = trace::HockneyParams{0.0, 1.0e-6};
  config.node_of = {0, 0, 1};
  Runtime rt(config);
  const std::int64_t bytes = 1 << 20;
  rt.run([&](Comm& world) {
    if (world.rank() == 0) {
      world.send_bytes(nullptr, bytes, 1, 0);  // same node
      world.send_bytes(nullptr, bytes, 2, 0);  // cross node
    } else {
      world.recv_bytes(nullptr, bytes, 0, 0);
    }
  });
  // Rank 1 (same node) paid ~1e-3 s; rank 2 (cross node) ~1 s.
  EXPECT_NEAR(rt.clock(1).comm_seconds(), bytes * 1.0e-9, 1e-6);
  EXPECT_NEAR(rt.clock(2).comm_seconds(), bytes * 1.0e-6, 1e-3);
}

TEST(Topology, NodeOfSizeMismatchRejected) {
  Config config = small_config(3);
  config.node_of = {0, 1};
  EXPECT_THROW(Runtime rt(config), std::invalid_argument);
}

TEST(Topology, EmptyNodeOfMeansSingleNode) {
  Config config = small_config(2);
  config.link = trace::HockneyParams{1.0e-6, 1.0e-9};
  config.internode_link = trace::HockneyParams{1.0, 1.0};  // absurd
  Runtime rt(config);
  rt.run([&](Comm& world) {
    const double cost = world.bcast_bytes(nullptr, 100, 0);
    EXPECT_DOUBLE_EQ(cost, trace::bcast_cost(config.link, 100, 2));
  });
}

TEST(Stress, ManyMixedCollectivesStayConsistent) {
  Runtime rt(small_config(4));
  rt.run([](Comm& world) {
    double acc = 0.0;
    for (int i = 0; i < 200; ++i) {
      double v = world.rank() == i % 4 ? i : 0.0;
      world.bcast(&v, 1, i % 4);
      acc += v;
      if (i % 7 == 0) world.barrier();
      if (i % 13 == 0) {
        EXPECT_DOUBLE_EQ(world.allreduce_sum(1.0), 4.0);
      }
    }
    // acc = sum of i over 0..199 on every rank.
    EXPECT_DOUBLE_EQ(acc, 199.0 * 200.0 / 2.0);
  });
}

}  // namespace
}  // namespace summagen::sgmpi

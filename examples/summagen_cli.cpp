// summagen_cli — the library as a command-line tool.
//
// Runs one PMM on the simulated HCLServer1 from either a shape name or a
// partition file in the paper's array notation, with optional numeric
// verification, energy accounting, a Gantt chart of the schedule, and
// spec export.
//
//   $ ./summagen_cli --n 1024 --shape square_corner --speeds 1,2,0.9
//   $ ./summagen_cli --n 1024 --shape block_rectangle --save-spec out.spec
//   $ ./summagen_cli --spec out.spec --numeric --gantt
//   $ ./summagen_cli --n 8192 --regime fpm --energy
#include <fstream>
#include <iostream>

#include "src/blas/fastmm.hpp"
#include "src/core/runner.hpp"
#include "src/mpi/faults.hpp"
#include "src/partition/spec_io.hpp"
#include "src/trace/gantt.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

void usage() {
  std::cout <<
      "summagen_cli — run one PMM on the simulated heterogeneous node\n"
      "  --n N              matrix size (default 1024; ignored with --spec)\n"
      "  --shape NAME       square_corner | square_rectangle |\n"
      "                     block_rectangle | one_dimensional | l_rectangle |\n"
      "                     layered\n"
      "  --spec FILE        run a partition file instead of building a shape\n"
      "  --regime cpm|fpm   workload partitioning regime (default cpm)\n"
      "  --speeds a,b,c     CPM speeds (default 1.0,2.0,0.9)\n"
      "  --numeric          really multiply and verify (n <= 8192)\n"
      "  --kernel NAME      numeric DGEMM kernel: packed (default) |\n"
      "                     threaded | blocked | naive\n"
      "  --kernel-threads N shared compute-pool size override (0 = auto:\n"
      "                     hardware threads minus rank threads)\n"
      "  --kernel-block B   cache-block edge for blocked/threaded (64)\n"
      "  --simd-tier T      packed microkernel tier: auto (default) |\n"
      "                     scalar | sse2 | avx2 (explicit unavailable\n"
      "                     tiers fail; SUMMAGEN_FORCE_SCALAR=1 caps auto)\n"
      "  --fastmm KIND      Strassen-family fast MM over the kernel:\n"
      "                     classical (default) | strassen | s223 | auto.\n"
      "                     Norm-bound accurate, not bit-identical; refused\n"
      "                     with --fault / --repartition\n"
      "  --fastmm-crossover X  smallest fast sub-block edge (0 = auto:\n"
      "                     tuned cache else 512)\n"
      "  --fastmm-max-depth D  fast recursion depth cap (default 3)\n"
      "  --scheduler NAME   eager | pipelined | taskgraph (default eager)\n"
      "  --engine NAME      thread (default, one OS thread per rank) |\n"
      "                     modeled (cooperative fibers on one scheduler\n"
      "                     thread; bit-identical, cheap at large p)\n"
      "  --bcast-algo NAME  collective pricing: tree (default) | flat |\n"
      "                     ring | pipelined | auto\n"
      "  --two-level        price collectives as inter-node stage over\n"
      "                     node leaders plus widest intra-node stage\n"
      "  --overlap-depth D  in-flight broadcast window (>= 0, 0 = unbounded):\n"
      "                     the pipelined prefetch depth, equivalently the\n"
      "                     task graph's posted-ahead window (--window is an\n"
      "                     alias)\n"
      "  --panel-rows R     broadcast panel rows, 0 = whole sub-partitions\n"
      "  --fault LIST       inject faults: <kind>@<t>:<rank>[x<arg>], e.g.\n"
      "                     crash@0.5:1 | slow@0.5:1x4 | link@0.2:0x8 |\n"
      "                     drop@0.1:2x3 (comma-separated list)\n"
      "  --fault-detect S   failure-detection latency in seconds (0.05)\n"
      "  --drift LIST       time-varying device speeds:\n"
      "                     <kind>@<t>:<rank>[x<factor>][/<arg>], e.g.\n"
      "                     step@0.5:1x2.5 | ramp@0.5:1x3/0.2 |\n"
      "                     periodic@0:2x2/0.1 (comma-separated list)\n"
      "  --repartition OPT  online drift re-partitioning: on | off (default)\n"
      "                     or key=value list over threshold, hysteresis,\n"
      "                     alpha, warmup, budget (implies on)\n"
      "  --energy           record events and report dynamic energy\n"
      "  --gantt            print the schedule as a Gantt chart\n"
      "  --chrome-trace F   write the schedule as Chrome trace JSON\n"
      "  --render           print the partition layout\n"
      "  --save-spec FILE   export the layout in the paper's notation\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  if (cli.get_bool("help", false)) {
    usage();
    return 0;
  }

  core::ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.numeric = cli.get_bool("numeric", false);
  config.record_events = cli.get_bool("energy", false) ||
                         cli.get_bool("gantt", false) ||
                         cli.has("chrome-trace");

  try {
    const std::string scheduler = cli.get("scheduler", "eager");
    if (scheduler == "pipelined") {
      config.summagen_options.scheduler = core::Scheduler::kPipelined;
    } else if (scheduler == "taskgraph") {
      config.summagen_options.scheduler = core::Scheduler::kTaskGraph;
    } else if (scheduler != "eager") {
      throw util::CliError("--scheduler: unknown scheduler '" + scheduler +
                           "' (expected eager | pipelined | taskgraph)");
    }
    // --overlap-depth and --window name the same quantity: the bound on
    // posted-but-uncompleted broadcasts (pipelined prefetch depth == the
    // task graph's in-flight window).
    if (cli.has("overlap-depth") && cli.has("window")) {
      throw util::CliError("--window is an alias of --overlap-depth; "
                           "pass only one");
    }
    config.summagen_options.overlap_depth = static_cast<int>(
        cli.has("window") ? cli.get_int_min("window", 2, 0)
                          : cli.get_int_min("overlap-depth", 2, 0));
    config.summagen_options.bcast_panel_rows = cli.get_int("panel-rows", 0);
    try {
      config.engine = sgmpi::parse_engine(cli.get("engine", "thread"));
    } catch (const std::invalid_argument& e) {
      throw util::CliError(std::string("--engine: ") + e.what());
    }
    try {
      config.bcast_algo =
          trace::parse_bcast_algo(cli.get("bcast-algo", "tree"));
    } catch (const std::invalid_argument& e) {
      throw util::CliError(std::string("--bcast-algo: ") + e.what());
    }
    config.two_level_collectives = cli.get_bool("two-level", false);
    const std::string kernel = cli.get("kernel", "packed");
    if (kernel == "packed") {
      config.kernel.kernel = blas::GemmKernel::kPacked;
    } else if (kernel == "threaded") {
      config.kernel.kernel = blas::GemmKernel::kThreaded;
    } else if (kernel == "blocked") {
      config.kernel.kernel = blas::GemmKernel::kBlocked;
    } else if (kernel == "naive") {
      config.kernel.kernel = blas::GemmKernel::kNaive;
    } else {
      std::cerr << "unknown kernel '" << kernel << "'\n";
      usage();
      return 2;
    }
    config.kernel.threads =
        static_cast<int>(cli.get_int_min("kernel-threads", 0, 0));
    config.kernel.block = cli.get_int_min("kernel-block", 64, 1);
    try {
      config.kernel.fastmm =
          blas::parse_fastmm_kind(cli.get("fastmm", "classical"));
    } catch (const std::invalid_argument& e) {
      throw util::CliError(std::string("--fastmm: ") + e.what());
    }
    config.kernel.fastmm_crossover =
        cli.get_int_min("fastmm-crossover", 0, 0);
    config.kernel.fastmm_max_depth =
        static_cast<int>(cli.get_int_min("fastmm-max-depth", 3, 0));
    try {
      config.kernel.tier = blas::parse_simd_tier(cli.get("simd-tier", "auto"));
    } catch (const std::invalid_argument& e) {
      throw util::CliError(std::string("--simd-tier: ") + e.what());
    }
    if (cli.has("fault")) {
      config.faults = sgmpi::parse_fault_plan(cli.get("fault", ""));
    }
    // Detection latency also prices how fast a confirmed drift surfaces to
    // the peers, so it applies to --repartition runs without --fault.
    config.fault_detect_s = cli.get_double("fault-detect", 0.05);
    if (cli.has("drift")) {
      try {
        config.drift = core::parse_drift_plan(cli.get("drift", ""));
      } catch (const partition::SpecParseError& e) {
        throw util::CliError("--drift: event " + std::to_string(e.line()) +
                             ", field '" + e.key() + "': " + e.what());
      }
    }
    if (cli.has("repartition")) {
      try {
        config.repartition =
            core::parse_repartition_options(cli.get("repartition", ""));
      } catch (const partition::SpecParseError& e) {
        throw util::CliError("--repartition: item " +
                             std::to_string(e.line()) + ", key '" + e.key() +
                             "': " + e.what());
      }
    }

    if (cli.has("spec")) {
      config.preset_spec = partition::load_spec(cli.get("spec", ""));
      config.n = config.preset_spec.n;
    } else {
      config.n = cli.get_int("n", 1024);
      const std::string shape = cli.get("shape", "square_corner");
      bool found = false;
      for (partition::Shape s : partition::extended_shapes()) {
        if (shape == partition::shape_name(s)) {
          config.shape = s;
          found = true;
        }
      }
      if (!found) {
        std::cerr << "unknown shape '" << shape << "'\n";
        usage();
        return 2;
      }
      if (cli.get("regime", "cpm") == "fpm") {
        config.regime = core::Regime::kFunctional;
      } else {
        config.cpm_speeds = cli.get_double_list("speeds", {1.0, 2.0, 0.9});
      }
    }

    const auto res = core::run_pmm(config);

    if (cli.get_bool("render", false)) {
      std::cout << res.spec.render(
                       std::max<std::int64_t>(1, config.n / 32))
                << "\n";
    }

    util::Table t("summagen_cli: N=" + std::to_string(config.n));
    t.set_header({"metric", "value"});
    t.add_row({"execution time (s)", util::Table::num(res.exec_time_s, 4)});
    t.add_row({"computation time (s)", util::Table::num(res.comp_time_s, 4)});
    t.add_row({"MPI time (s)", util::Table::num(res.comm_time_s, 4)});
    if (config.summagen_options.scheduler != core::Scheduler::kEager) {
      t.add_row({"hidden comm (s)",
                 util::Table::num(res.hidden_comm_time_s, 4)});
    }
    t.add_row({"TFLOPs", util::Table::num(res.tflops, 3)});
    t.add_row({"sum of half-perimeters",
               util::Table::num(res.total_half_perimeter)});
    if (res.has_energy) {
      t.add_row({"dynamic energy (kJ)",
                 util::Table::num(res.energy.dynamic_j / 1e3, 3)});
    }
    if (!config.faults.empty()) {
      t.add_row({"recoveries", std::to_string(res.recoveries)});
      t.add_row({"detection latency (s)",
                 util::Table::num(res.detection_latency_s, 4)});
      t.add_row({"recovery virtual time (s)",
                 util::Table::num(res.recovery_vtime_s, 4)});
      t.add_row({"redistributed C area",
                 util::Table::num(res.redistributed_area)});
    }
    if (config.repartition.enabled) {
      t.add_row({"re-partitions", std::to_string(res.repartitions.size())});
    }
    if (config.numeric) {
      t.add_row({"verified vs reference", res.verified ? "yes" : "NO"});
      t.add_row({"data-plane alloc (MiB)",
                 util::Table::num(
                     static_cast<double>(res.alloc.alloc_bytes) / 1048576.0,
                     2)});
      t.add_row({"data-plane allocs", util::Table::num(res.alloc.allocs)});
      t.add_row({"copied (MiB)",
                 util::Table::num(
                     static_cast<double>(res.alloc.copy_bytes) / 1048576.0,
                     2)});
      t.add_row({"copy calls", util::Table::num(res.alloc.copy_calls)});
      t.add_row({"pool hit rate",
                 util::Table::num(res.alloc.pool_hit_rate(), 3)});
      t.add_row({"B-pack lookups", util::Table::num(res.alloc.pack_lookups)});
      t.add_row({"B-pack hit rate",
                 util::Table::num(res.alloc.pack_hit_rate(), 3)});
      t.add_row({"pool peak resident (MiB)",
                 util::Table::num(
                     static_cast<double>(res.alloc.pool_peak_resident_bytes) /
                         1048576.0,
                     2)});
      if (config.kernel.fastmm != blas::FastMmKind::kClassical ||
          res.alloc.fastmm_leases > 0) {
        t.add_row({"fast-MM kind",
                   blas::fastmm_kind_name(config.kernel.fastmm)});
        t.add_row({"fast-MM leases",
                   util::Table::num(res.alloc.fastmm_leases)});
        t.add_row({"fast-MM leased (MiB)",
                   util::Table::num(
                       static_cast<double>(res.alloc.fastmm_bytes) /
                           1048576.0,
                       2)});
      }
    }
    t.print(std::cout);

    for (const auto& rec : res.fault_records) {
      std::cout << "fault: " << sgmpi::fault_kind_name(rec.event.kind)
                << " rank " << rec.event.rank << " @"
                << rec.event.at_vtime << "s — "
                << (rec.handled
                        ? "handled"
                        : rec.triggered ? "triggered" : "never triggered")
                << "\n";
    }
    for (const auto& ev : res.repartitions) {
      std::cout << "repartition: epoch " << ev.epoch << " ("
                << core::repartition_family_name(ev.family)
                << ") — confirmed by rank " << ev.trigger_rank << " @"
                << util::Table::num(ev.trigger_vtime, 4) << "s, "
                << ev.redone_cells << " cells / " << ev.redone_area
                << " area redistributed, measured speeds {";
      for (std::size_t s = 0; s < ev.measured_speeds.size(); ++s) {
        std::cout << (s ? ", " : "")
                  << util::Table::num(ev.measured_speeds[s], 3);
      }
      std::cout << "}\n";
    }

    if (cli.get_bool("gantt", false)) {
      std::cout << "\n" << trace::render_gantt(res.events, res.exec_time_s);
    }
    if (cli.has("chrome-trace")) {
      std::ofstream out(cli.get("chrome-trace", ""));
      if (!out) throw std::runtime_error("cannot open chrome-trace file");
      out << trace::export_chrome_trace(res.events);
      std::cout << "\nschedule written to " << cli.get("chrome-trace", "")
                << " (open in chrome://tracing)\n";
    }
    if (cli.has("save-spec")) {
      partition::save_spec(cli.get("save-spec", ""), res.spec);
      std::cout << "\nlayout written to " << cli.get("save-spec", "") << "\n";
    }
    return (config.numeric && !res.verified) ? 1 : 0;
  } catch (const util::CliError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

// Energy methodology walkthrough (paper Section VI-C): run a PMM, integrate
// the power model exactly, then replay it through the simulated WattsUp
// meter — 1 Hz sampling, +-3% accuracy — and recover the dynamic energy via
// Eq. 5 (E_D = E_T - P_S * T_E).
//
//   $ ./energy_study [--n 25600] [--shape square_corner]
#include <iostream>

#include "src/core/runner.hpp"
#include "src/energy/energy.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);

  core::ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = cli.get_int("n", 25600);
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.record_events = true;
  const std::string shape = cli.get("shape", "square_corner");
  for (partition::Shape s : partition::all_shapes()) {
    if (shape == partition::shape_name(s)) config.shape = s;
  }

  std::cout << "Energy study: N=" << config.n << ", shape "
            << partition::shape_name(config.shape) << "\n"
            << "static power P_S = " << config.platform.static_power_w
            << " W (fans pinned at full speed, as in the paper)\n\n";

  const auto res = core::run_pmm(config);
  std::cout << "run length T_E = " << util::Table::num(res.exec_time_s, 2)
            << " s\n\n";

  util::Table t("exact power-model integration");
  t.set_header({"component", "energy (kJ)"});
  t.add_row({"static (P_S * T_E)",
             util::Table::num(res.energy.static_j / 1e3, 3)});
  for (std::size_t r = 0; r < res.energy.per_rank_dynamic_j.size(); ++r) {
    t.add_row({"dynamic P" + std::to_string(r),
               util::Table::num(res.energy.per_rank_dynamic_j[r] / 1e3, 3)});
  }
  t.add_row({"dynamic total (E_D)",
             util::Table::num(res.energy.dynamic_j / 1e3, 3)});
  t.add_row({"total (E_T)", util::Table::num(res.energy.total_j / 1e3, 3)});
  t.print(std::cout);

  // Meter replay.
  const auto reading = energy::simulate_wattsup(res.events, config.platform,
                                                res.exec_time_s);
  const double metered =
      energy::dynamic_from_meter(reading, config.platform.static_power_w);
  std::cout << "\nWattsUp replay: " << reading.samples_w.size()
            << " samples at 1 Hz\n  first samples (W):";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, reading.samples_w.size());
       ++i) {
    std::cout << " " << util::Table::num(reading.samples_w[i], 1);
  }
  std::cout << "\n  metered E_T = " << util::Table::num(reading.total_j / 1e3, 3)
            << " kJ -> E_D via Eq.5 = " << util::Table::num(metered / 1e3, 3)
            << " kJ (exact: " << util::Table::num(res.energy.dynamic_j / 1e3, 3)
            << " kJ, deviation "
            << util::Table::num(
                   100.0 * (metered - res.energy.dynamic_j) /
                       res.energy.dynamic_j,
                   2)
            << "%)\n";
  return 0;
}

// Shape explorer: compare the paper's four shapes, the L-rectangle
// extension, and the Beaumont column-based rectangular baseline for
// user-chosen processor speeds,
// with ASCII renderings and the communication-volume geometry.
//
//   $ ./shape_explorer --n 512 --speeds 1.0,2.0,0.9
//   $ ./shape_explorer --n 2048 --speeds 1,10,1     # strong heterogeneity
#include <iostream>

#include "src/core/runner.hpp"
#include "src/partition/column_based.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 512);
  const auto speeds = cli.get_double_list("speeds", {1.0, 2.0, 0.9});
  if (speeds.size() != 3) {
    std::cerr << "shape_explorer needs exactly 3 speeds\n";
    return 1;
  }

  const auto platform = device::Platform::synthetic(speeds, 300.0e9);
  const auto areas = partition::partition_areas_cpm(n * n, speeds);

  std::cout << "N=" << n << ", speeds {" << speeds[0] << ", " << speeds[1]
            << ", " << speeds[2] << "}, areas {" << areas[0] << ", "
            << areas[1] << ", " << areas[2] << "}\n";

  util::Table summary("shape comparison");
  summary.set_header({"shape", "exec_s", "comp_s", "mpi_s", "half_perim",
                      "verified"});

  for (partition::Shape s : partition::extended_shapes()) {
    core::ExperimentConfig config;
    config.platform = platform;
    config.n = n;
    config.shape = s;
    config.cpm_speeds = speeds;
    config.preset_areas = areas;
    config.numeric = n <= 1024;  // really multiply at small sizes
    const auto res = core::run_pmm(config);

    std::cout << "\n--- " << partition::shape_name(s) << " ---\n"
              << res.spec.render(std::max<std::int64_t>(1, n / 16));
    summary.add_row({partition::shape_name(s),
                     util::Table::num(res.exec_time_s, 4),
                     util::Table::num(res.comp_time_s, 4),
                     util::Table::num(res.comm_time_s, 4),
                     util::Table::num(res.total_half_perimeter),
                     config.numeric ? (res.verified ? "yes" : "FAIL")
                                    : "modeled"});
  }

  // Rectangular column-based baseline (Beaumont et al.), for reference.
  const auto col_spec = partition::column_based_partition(n, areas);
  std::cout << "\n--- column_based (baseline) ---\n"
            << col_spec.render(std::max<std::int64_t>(1, n / 16));
  summary.add_row({"column_based(baseline)", "-", "-", "-",
                   util::Table::num(col_spec.total_half_perimeter()), "-"});

  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\n(half_perim = sum of covering-rectangle half-perimeters — "
               "the paper's communication-volume objective)\n";
  return 0;
}

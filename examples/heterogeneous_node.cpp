// Tour of the simulated heterogeneous node: device inventory, speed
// profiles, and a paper-scale PMM on the modeled plane with a per-rank
// timeline excerpt — the workflow of the paper's Section VI at a glance.
//
//   $ ./heterogeneous_node [--n 30720] [--shape square_rectangle]
#include <iostream>

#include "src/core/runner.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);

  const auto platform = device::Platform::hclserver1();
  std::cout << "Platform: " << platform.name << " — "
            << platform.theoretical_peak_flops() / 1e12
            << " TFLOPs theoretical peak\n\n";
  for (const auto& d : platform.devices) {
    std::cout << "  " << d.name << "\n    kind: " << device::to_string(d.kind)
              << ", peak " << d.peak_flops / 1e12 << " TFLOPs, memory "
              << (d.memory_bytes >> 30) << " GiB"
              << (d.needs_staging ? ", staged over PCIe" : "") << "\n";
  }

  // Mini Figure 5: contended speeds at a few representative sizes.
  std::cout << "\nContended speed profiles (TFLOPs):\n";
  util::Table t("speeds");
  t.set_header({"edge", "AbsCPU", "AbsGPU", "AbsXeonPhi"});
  const std::vector<double> edges = {512, 2048, 8192, 16384, 24576};
  const auto profiles = platform.profiles(edges);
  for (double e : edges) {
    t.add_row({util::Table::num(static_cast<std::int64_t>(e)),
               util::Table::num(profiles[0].flops_at_edge(e) / 1e12, 3),
               util::Table::num(profiles[1].flops_at_edge(e) / 1e12, 3),
               util::Table::num(profiles[2].flops_at_edge(e) / 1e12, 3)});
  }
  t.print(std::cout);

  // One paper-scale run on the modeled plane.
  core::ExperimentConfig config;
  config.platform = platform;
  config.n = cli.get_int("n", 30720);
  config.cpm_speeds = {1.0, 2.0, 0.9};
  config.record_events = true;
  const std::string shape = cli.get("shape", "square_rectangle");
  for (partition::Shape s : partition::all_shapes()) {
    if (shape == partition::shape_name(s)) config.shape = s;
  }

  std::cout << "\nRunning SummaGen: N=" << config.n << ", shape "
            << partition::shape_name(config.shape)
            << " (modeled plane — no data allocated)\n";
  const auto res = core::run_pmm(config);

  util::Table r("per-rank breakdown (virtual seconds)");
  r.set_header({"rank", "device", "complete", "compute", "mpi", "idle",
                "area", "gemms", "bcasts"});
  for (std::size_t k = 0; k < res.reports.size(); ++k) {
    r.add_row({"P" + std::to_string(k),
               platform.devices[k].name.substr(0, 10),
               util::Table::num(res.rank_exec_s[k], 3),
               util::Table::num(res.rank_comp_s[k], 3),
               util::Table::num(res.rank_comm_s[k], 3),
               util::Table::num(res.rank_idle_s[k], 3),
               util::Table::num(res.spec.area_of(static_cast<int>(k))),
               util::Table::num(
                   static_cast<std::int64_t>(res.reports[k].gemm_calls)),
               util::Table::num(
                   static_cast<std::int64_t>(res.reports[k].bcasts))});
  }
  std::cout << "\n";
  r.print(std::cout);

  std::cout << "\nparallel execution: " << res.exec_time_s << " s ("
            << res.tflops << " TFLOPs, "
            << 100.0 * res.tflops * 1e12 / platform.theoretical_peak_flops()
            << "% of peak)\n"
            << "dynamic energy: " << res.energy.dynamic_j / 1e3 << " kJ\n";

  // First few timeline events of the fastest rank.
  std::cout << "\ntimeline excerpt (rank 0, first 8 events):\n";
  int shown = 0;
  for (const auto& e : res.events) {
    if (e.rank != 0 || shown >= 8) continue;
    std::cout << "  [" << util::Table::num(e.vstart, 4) << " - "
              << util::Table::num(e.vend, 4) << "] "
              << trace::to_string(e.kind);
    if (e.bytes) std::cout << " " << e.bytes / 1024 / 1024 << " MiB";
    if (!e.detail.empty()) std::cout << " " << e.detail;
    std::cout << "\n";
    ++shown;
  }
  return 0;
}

// Functional performance models in action: build the node's contended
// profiles, run the load-imbalancing partitioner, and compare its
// distribution against naive proportionality — the paper's Section VI-B
// machinery, interactively.
//
//   $ ./fpm_partitioning [--n 16384] [--akima]
#include <iostream>

#include "src/core/runner.hpp"
#include "src/partition/areas.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 16384);
  const auto interp = cli.get_bool("akima", false)
                          ? device::Interpolation::kAkima
                          : device::Interpolation::kPiecewiseLinear;

  const auto platform = device::Platform::hclserver1();
  const auto models = core::default_fpm_models(platform, n, interp);
  std::vector<const device::SpeedFunction*> ptrs;
  for (const auto& m : models) ptrs.push_back(&m);

  std::cout << "FPM partitioning for N=" << n << " on " << platform.name
            << " ("
            << (interp == device::Interpolation::kAkima ? "Akima"
                                                        : "piecewise-linear")
            << " interpolation)\n\n";

  // The profiles around the candidate allocations.
  util::Table prof("speed functions near the operating points (TFLOPs)");
  prof.set_header({"zone edge", "AbsCPU", "AbsGPU", "AbsXeonPhi"});
  for (double frac : {0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    const double e = frac * static_cast<double>(n);
    prof.add_row({util::Table::num(static_cast<std::int64_t>(e)),
                  util::Table::num(models[0].flops_at_edge(e) / 1e12, 3),
                  util::Table::num(models[1].flops_at_edge(e) / 1e12, 3),
                  util::Table::num(models[2].flops_at_edge(e) / 1e12, 3)});
  }
  prof.print(std::cout);

  // Load-imbalancing distribution vs proportional.
  const auto fpm = partition::partition_areas_fpm(n, ptrs);
  const auto cpm = partition::partition_areas_cpm(
      n * n, core::default_cpm_speeds(platform));

  util::Table dist("workload distributions");
  dist.set_header({"", "P0 share", "P1 share", "P2 share", "tcomp_s"});
  auto row = [&](const char* name, const std::vector<std::int64_t>& areas) {
    std::vector<std::string> cells = {name};
    for (auto a : areas) {
      cells.push_back(util::Table::num(
          100.0 * static_cast<double>(a) / static_cast<double>(n * n), 2) +
          "%");
    }
    cells.push_back(util::Table::num(
        partition::distribution_time(n, ptrs, areas), 4));
    dist.add_row(cells);
  };
  std::cout << "\n";
  row("FPM load-imbalancing", fpm.areas);
  row("proportional (CPM)", cpm);
  dist.print(std::cout);

  const double gain =
      (partition::distribution_time(n, ptrs, cpm) - fpm.tcomp) /
      partition::distribution_time(n, ptrs, cpm) * 100.0;
  std::cout << "\nload imbalancing wins " << util::Table::num(gain, 1)
            << "% of computation time by dodging the profiles' troughs\n";

  // End-to-end: run all four shapes with the FPM distribution.
  std::cout << "\nPMM execution times with the FPM distribution:\n";
  util::Table res_table("shapes");
  res_table.set_header({"shape", "exec_s", "comp_s", "mpi_s"});
  for (partition::Shape s : partition::all_shapes()) {
    core::ExperimentConfig config;
    config.platform = platform;
    config.n = n;
    config.shape = s;
    config.preset_areas = fpm.areas;
    const auto res = core::run_pmm(config);
    res_table.add_row({partition::shape_name(s),
                       util::Table::num(res.exec_time_s, 4),
                       util::Table::num(res.comp_time_s, 4),
                       util::Table::num(res.comm_time_s, 4)});
  }
  res_table.print(std::cout);
  return 0;
}

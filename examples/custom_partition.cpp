// Low-level API tour: build your own partition layouts and drive the
// SummaGen core directly — no shape builder, no experiment runner.
//
// Three layouts over the same 4-processor platform:
//   1. a hand-written non-rectangular spec (a pinwheel);
//   2. the NRRP recursive partitioner's output;
//   3. the Push-Technique descent's output;
// each executed numerically and verified against the serial reference.
//
//   $ ./custom_partition [--n 240]
#include <iostream>
#include <memory>

#include "src/core/reference.hpp"
#include "src/core/runner.hpp"
#include "src/partition/nrrp.hpp"
#include "src/partition/push.hpp"
#include "src/util/cli.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace summagen;

// Runs SummaGen numerically over `spec` and reports (error, exec seconds).
std::pair<double, double> execute(const partition::PartitionSpec& spec,
                                  const device::Platform& platform) {
  const int p = platform.nprocs();
  const auto processors = platform.processors();
  util::Matrix a(spec.n, spec.n), b(spec.n, spec.n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);
  std::vector<std::unique_ptr<core::LocalData>> locals;
  for (int r = 0; r < p; ++r) {
    locals.push_back(std::make_unique<core::LocalData>(spec, r, a, b));
  }
  sgmpi::Config mpi_config;
  mpi_config.nranks = p;
  mpi_config.link = platform.mpi_link;
  sgmpi::Runtime runtime(mpi_config);
  runtime.run([&](sgmpi::Comm& world) {
    core::summagen_rank(world, spec,
                        processors[static_cast<std::size_t>(world.rank())],
                        locals[static_cast<std::size_t>(world.rank())].get());
  });
  util::Matrix c(spec.n, spec.n);
  for (int r = 0; r < p; ++r) locals[static_cast<std::size_t>(r)]->gather_c(spec, c);
  const double err =
      util::Matrix::max_abs_diff(c, core::reference_multiply(a, b));
  return {err, runtime.max_vtime()};
}

void show(const char* title, const partition::PartitionSpec& spec,
          const device::Platform& platform) {
  const auto [err, secs] = execute(spec, platform);
  std::cout << "--- " << title << " ---\n"
            << spec.render(std::max<std::int64_t>(1, spec.n / 16))
            << "sum of half-perimeters: " << spec.total_half_perimeter()
            << ", modeled time: " << secs << " s, max |error| vs reference: "
            << err << (err < 1e-9 ? "  [verified]" : "  [MISMATCH]")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::int64_t n = cli.get_int("n", 240);
  const auto platform = device::Platform::synthetic({1.0, 1.0, 1.0, 1.0},
                                                    200.0e9);

  // 1. Hand-written pinwheel: four L-ish zones interlocking around the
  //    centre — a layout no builder in this library produces. The spec
  //    interface takes any grid of sub-partitions and any ownership.
  {
    partition::PartitionSpec spec;
    spec.n = n;
    spec.subplda = 3;
    spec.subpldb = 3;
    const std::int64_t a = n / 3, b = n - 2 * (n / 3);
    spec.subph = {a, b, a};
    spec.subpw = {a, b, a};
    spec.subp = {0, 0, 1,
                 2, 0, 1,
                 2, 3, 3};
    show("hand-written pinwheel", spec, platform);
  }

  // 2. NRRP for four equal processors.
  {
    std::vector<std::int64_t> areas(4, n * n / 4);
    areas[0] += n * n - 4 * (n * n / 4);
    show("nrrp_partition", partition::nrrp_partition(n, areas), platform);
  }

  // 3. Push-Technique descent from a 1D start.
  {
    std::vector<std::int64_t> areas(4, n * n / 4);
    areas[0] += n * n - 4 * (n * n / 4);
    partition::PushOptions opts;
    opts.grid = 12;
    const auto res = partition::push_optimize(n, areas, opts);
    std::cout << "(push descent: " << res.initial_half_perimeter << " -> "
              << res.final_half_perimeter << " after " << res.swaps
              << " accepted moves)\n";
    show("push_optimize", res.spec, platform);
  }
  return 0;
}

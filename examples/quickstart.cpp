// Quickstart: multiply two matrices with SummaGen on the simulated
// three-device heterogeneous node, verify against the serial reference,
// and print the timing/energy breakdown.
//
//   $ ./quickstart [--n 512] [--shape square_corner]
#include <cstring>
#include <iostream>

#include "src/core/runner.hpp"
#include "src/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace summagen;
  const util::Cli cli(argc, argv);

  core::ExperimentConfig config;
  config.platform = device::Platform::hclserver1();
  config.n = cli.get_int("n", 512);
  config.regime = core::Regime::kConstant;
  config.cpm_speeds = {1.0, 2.0, 0.9};  // the paper's Figure-5 readout
  config.numeric = true;                // really multiply + verify
  config.record_events = true;          // enables the energy model

  const std::string shape = cli.get("shape", "square_corner");
  for (partition::Shape s : partition::all_shapes()) {
    if (shape == partition::shape_name(s)) config.shape = s;
  }

  std::cout << "SummaGen quickstart on " << config.platform.name << "\n"
            << "  N = " << config.n << ", shape = "
            << partition::shape_name(config.shape) << ", speeds = {1.0, 2.0, "
            << "0.9}\n\n";

  const core::ExperimentResult res = core::run_pmm(config);

  std::cout << "Partition layout (1 char = " << config.n / 16 << "x"
            << config.n / 16 << " elements):\n"
            << res.spec.render(std::max<std::int64_t>(1, config.n / 16))
            << "\n";
  std::cout << "areas: ";
  for (std::size_t r = 0; r < res.areas.size(); ++r) {
    std::cout << "P" << r << "=" << res.areas[r] << " ";
  }
  std::cout << "\nsum of half-perimeters (comm volume metric): "
            << res.total_half_perimeter << "\n\n";

  std::cout << "modeled parallel execution time: " << res.exec_time_s
            << " s\n"
            << "  computation (max rank): " << res.comp_time_s << " s\n"
            << "  MPI communication (max rank): " << res.comm_time_s
            << " s\n"
            << "  speed: " << res.tflops << " TFLOPs\n";
  if (res.has_energy) {
    std::cout << "  dynamic energy: " << res.energy.dynamic_j << " J\n";
  }
  std::cout << "\nnumeric verification vs serial reference: "
            << (res.verified ? "PASSED" : "FAILED")
            << " (max |error| = " << res.max_abs_error << ")\n";
  return res.verified ? 0 : 1;
}

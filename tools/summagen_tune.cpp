// summagen_tune — offline cache-blocking autotuner for the packed DGEMM.
//
// Sweeps the MC/NC/KC candidate grid for every requested (and available)
// SIMD tier, then merges the per-tier winners into the persisted tune
// cache (src/blas/tune.hpp documents the JSON format and lookup rules).
// dgemm's auto path picks the tuned blocking up on the next process start;
// tuning never runs implicitly.
//
//   --n N          problem size per timed multiply   (default 768)
//   --repeats R    timed multiplies per candidate, median taken (default 3)
//   --tiers LIST   comma list of scalar,sse2,avx2, or "all" (default all)
//   --fastmm-n N   also sweep the fast-MM crossover at this problem size
//                  and persist it per tier (0 = skip, the default; the
//                  sweep needs N >= 2x the smallest candidate to be
//                  meaningful, so prefer 1536+)
//   --out PATH     cache file to merge into (default: tune_cache_path())
//   --dry-run      sweep and report, but do not write the cache
#include <cstdint>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/blas/simd.hpp"
#include "src/blas/tune.hpp"
#include "src/util/cli.hpp"

namespace {

constexpr const char* kUsage =
    "usage: summagen_tune [--n N] [--repeats R] [--tiers scalar,sse2,avx2]\n"
    "                     [--fastmm-n N] [--out PATH] [--dry-run]\n";

std::vector<summagen::blas::SimdTier> parse_tiers(const std::string& spec) {
  using summagen::blas::SimdTier;
  if (spec == "all") {
    return {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2};
  }
  std::vector<SimdTier> tiers;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    try {
      const SimdTier tier = summagen::blas::parse_simd_tier(token);
      if (tier == SimdTier::kAuto) {
        throw std::invalid_argument("'auto' is not a tunable tier");
      }
      tiers.push_back(tier);
    } catch (const std::invalid_argument& e) {
      throw summagen::util::CliError(std::string("--tiers: ") + e.what());
    }
  }
  if (tiers.empty()) {
    throw summagen::util::CliError("--tiers: no tiers listed");
  }
  return tiers;
}

}  // namespace

int main(int argc, char** argv) {
  using summagen::blas::SimdTier;
  try {
    const summagen::util::Cli cli(argc, argv);
    const std::int64_t n = cli.get_int_min("n", 768, 64);
    const int repeats =
        static_cast<int>(cli.get_int_min("repeats", 3, 1));
    const std::vector<SimdTier> tiers =
        parse_tiers(cli.get("tiers", "all"));
    const std::int64_t fastmm_n = cli.get_int_min("fastmm-n", 0, 0);
    const std::string out =
        cli.get("out", summagen::blas::tune_cache_path());
    const bool dry_run = cli.get_bool("dry-run", false);

    const std::string cpu = summagen::blas::cpu_model_key();
    std::cout << "cpu: " << cpu << "\n"
              << "sweeping n=" << n << " repeats=" << repeats << "\n";

    const std::vector<summagen::blas::TuneResult> results =
        summagen::blas::autotune_block_sizes(n, repeats, tiers);
    if (results.empty()) {
      std::cerr << "error: none of the requested tiers are available on "
                   "this host\n";
      return 1;
    }
    for (const auto& r : results) {
      std::cout << "  " << summagen::blas::simd_tier_name(r.tier)
                << ": mc=" << r.bs.mc << " nc=" << r.bs.nc
                << " kc=" << r.bs.kc << "  (" << r.gflops << " GFLOP/s)\n";
    }

    // Optional second sweep: the Strassen crossover (smallest sub-block edge
    // worth splitting, src/blas/fastmm.hpp) per tier, persisted next to the
    // blocking so dgemm --fastmm picks it up without flags.
    std::vector<std::int64_t> crossovers(results.size(), 0);
    if (fastmm_n > 0) {
      std::cout << "sweeping fast-MM crossover at n=" << fastmm_n << "\n";
      for (std::size_t i = 0; i < results.size(); ++i) {
        const summagen::blas::FastMmTuneResult f =
            summagen::blas::autotune_fastmm_crossover(fastmm_n, repeats,
                                                      results[i].tier);
        crossovers[i] = f.crossover;
        std::cout << "  " << summagen::blas::simd_tier_name(results[i].tier)
                  << ": crossover=" << f.crossover << "  (" << f.gflops
                  << " GFLOP/s)\n";
      }
    }

    if (dry_run) {
      std::cout << "dry run: cache not written\n";
      return 0;
    }
    if (out.empty()) {
      std::cerr << "error: no cache path ($HOME and $SUMMAGEN_TUNE_CACHE "
                   "both unset); pass --out\n";
      return 1;
    }
    // Merge-write: keep other CPUs' entries and this CPU's untuned tiers.
    summagen::blas::TuneFile file;
    summagen::blas::load_tune_file(out, &file);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      summagen::blas::TuneRecord& rec =
          file[cpu][summagen::blas::simd_tier_name(r.tier)];
      const std::int64_t kept = rec.fastmm_crossover;  // survive a re-tune
      rec = {r.bs, r.gflops};
      rec.fastmm_crossover = fastmm_n > 0 ? crossovers[i] : kept;
    }
    if (!summagen::blas::save_tune_file(out, file)) {
      std::cerr << "error: cannot write " << out << "\n";
      return 1;
    }
    std::cout << "wrote " << out << "\n";
    return 0;
  } catch (const summagen::util::CliError& e) {
    std::cerr << "error: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

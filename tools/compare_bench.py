#!/usr/bin/env python3
"""Gate micro-benchmark regressions against a committed baseline.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--max-ratio 1.3]

Both files are Google-Benchmark JSON (micro_dgemm --json FILE). For every
benchmark present in BOTH files the script compares throughput
(items_per_second, i.e. FLOP/s for the DGEMM benches) and fails if

    baseline_items_per_second / current_items_per_second > max_ratio

for any benchmark — i.e. the current build is more than `max_ratio` slower
than the recorded baseline. NEW benchmarks (present only in the current
run) are reported but never fail the gate, so adding benches does not
require regenerating the baseline in the same commit. MISSING benchmarks
(present only in the baseline) are a hard failure: a silently-skipped
baseline is how a renamed or dropped bench escapes the gate while looking
green. Pass --allow-missing when removing a bench is intended. A
baseline-only name whose tier-stripped family is still measured (e.g. the
AVX2 variant on a machine that only ran the scalar tier) counts as
covered, not missing.

Benchmarks without items_per_second fall back to comparing real_time
(higher is worse), with the same ratio threshold.

Counter metrics: benches may export extra numeric counters on a row
(latency percentiles and throughput from service_load, alloc counters
from micro_dgemm). --metric NAME[:MAX_RATIO][:higher] gates one such
counter on every benchmark that exports it in BOTH files, each with its
own regression ratio (defaulting to --max-ratio). The default direction
is lower-is-better (latencies, shed fractions): current/baseline above
the ratio fails. A trailing ":higher" flips the direction for
throughput-style counters: baseline/current above the ratio fails. A
zero baseline gates exactness (any nonzero current value fails — the
virtual-clock benches are deterministic, so a baseline of zero means
zero is reproducible). Rows missing the counter in either file are
skipped with a note, so mixed-schema files stay comparable.

Example (the service-load gate):
    tools/compare_bench.py bench/BENCH_service.json current.json \
        --max-ratio 1.05 --metric latency_p50_s --metric latency_p99_s \
        --metric throughput_jobs_per_s:1.05:higher --metric shed_fraction

Repetitions: when a file was produced with --repeats (benchmark
repetitions), the per-repetition rows are noisy; the gate uses the
`_median` aggregate rows instead, keyed by the benchmark's run_name.
Files mixing styles are fine — a median row always wins over the
iteration rows of the same benchmark, and single-run files behave as
before.

Per-kernel baselines: benchmark families may grow per-variant entries
(e.g. BM_GemmPackedTierAvx2/1024 next to BM_GemmPacked/1024). A current
entry with no exact baseline match falls back to its family baseline —
the name with the `TierX` token stripped — so adding tiered entries does
not require regenerating the old baseline schema; tiered entries are
then gated against the family's recorded throughput. The fast-MM
ablation rows (BM_FastMMStrassen/2048 etc.) fall back the same way to a
BM_FastMM/2048 family baseline with the kind suffix stripped.

`--self-test` runs the built-in unit checks of the name-matching helpers
(family stripping, baseline fallback, counter directions) and exits
without reading any files; CI runs it before the real gates.

Allocation gate: benchmarks exporting the `alloc_bytes_per_iter` counter
(micro_dgemm does, via the data-plane accounting) are additionally checked
against the baseline's counter. The current build fails if it allocates
more than --max-alloc-ratio times the baseline's bytes per iteration, with
an absolute floor of --alloc-floor bytes. The floor absorbs residual
BufferPool size-class misses: the pool caches by observed *concurrent*
high-water per class, so a rerun of a single-iteration bench can legally
miss once (a few MiB) even though its baseline recorded zero. A genuine
per-call allocation regression (staging whole operands again) shows up as
tens of MiB per iteration and still trips the gate; the exact steady-state
property is enforced deterministically by tests/core/alloc_test.cpp.

Exit code 0 = within budget, 1 = regression, 2 = usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    out: dict[str, dict] = {}
    medians: set[str] = set()
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            # Prefer the median aggregate of a repeated run; ignore
            # mean/stddev/cv rows.
            if bench.get("aggregate_name") != "median":
                continue
            name = bench.get("run_name", bench["name"])
            out[name] = bench
            medians.add(name)
            continue
        # Per-repetition (or single-run) row: never overrides a median.
        name = bench.get("run_name", bench["name"])
        if name not in medians:
            out[name] = bench
    if not out:
        print(f"error: no benchmarks found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def family_name(name: str) -> str:
    """Strip per-variant tokens: the `TierX` token of the packed-GEMM
    entries (BM_GemmPackedTierAvx2/1024 -> BM_GemmPacked/1024) and the
    fast-MM kind suffix of the ablation_fastmm entries
    (BM_FastMMStrassen/2048 -> BM_FastMM/2048), so variant rows fall back
    to a family baseline and a forced-classical run still covers the
    family."""
    name = re.sub(r"Tier[A-Za-z0-9]+", "", name)
    return re.sub(
        r"^(BM_FastMM)(?:Classical|Strassen|S223|Auto)", r"\1", name
    )


def baseline_for(name: str, base: dict[str, dict]) -> tuple[str, dict] | None:
    """Exact baseline entry, else the family baseline for tiered entries."""
    if name in base:
        return name, base[name]
    family = family_name(name)
    if family != name and family in base:
        return family, base[family]
    return None


def parse_metric_spec(spec: str, default_ratio: float) -> tuple[str, float, bool]:
    """Parse NAME[:MAX_RATIO][:higher|lower] into (name, ratio, higher)."""
    parts = spec.split(":")
    name = parts[0]
    ratio = default_ratio
    higher = False
    for part in parts[1:]:
        if part == "higher":
            higher = True
        elif part == "lower":
            higher = False
        else:
            try:
                ratio = float(part)
            except ValueError:
                print(f"error: bad --metric spec '{spec}'", file=sys.stderr)
                sys.exit(2)
    if not name or ratio <= 0:
        print(f"error: bad --metric spec '{spec}'", file=sys.stderr)
        sys.exit(2)
    return name, ratio, higher


def metric_slowdown(b_val: float, c_val: float, higher: bool) -> float:
    """Regression factor for one counter (>1 == worse than baseline).
    Zero baselines gate exactness: equal-zero is 1.0, any deviation inf."""
    worse, better = (b_val, c_val) if higher else (c_val, b_val)
    if better == 0:
        return 1.0 if worse == 0 else float("inf")
    return worse / better


def slowdown(base: dict, cur: dict) -> float:
    """Return how many times slower `cur` is than `base` (>1 == regression)."""
    b_ips, c_ips = base.get("items_per_second"), cur.get("items_per_second")
    if b_ips and c_ips:
        return b_ips / c_ips
    return cur["real_time"] / base["real_time"]


def self_test() -> int:
    """Unit-check the matching helpers (run in CI before the real gates, so
    a fallback regression fails loudly instead of silently skipping rows)."""
    checks = [
        # Tier stripping (the packed-GEMM family fallback).
        (family_name("BM_GemmPackedTierAvx2/1024"), "BM_GemmPacked/1024"),
        (family_name("BM_GemmPacked/1024"), "BM_GemmPacked/1024"),
        # Fast-MM kind stripping.
        (family_name("BM_FastMMStrassen/2048"), "BM_FastMM/2048"),
        (family_name("BM_FastMMS223/512"), "BM_FastMM/512"),
        (family_name("BM_FastMMAuto/1024"), "BM_FastMM/1024"),
        (family_name("BM_FastMMClassical/2048"), "BM_FastMM/2048"),
        # Names that must NOT be rewritten.
        (family_name("BM_FastMM/2048"), "BM_FastMM/2048"),
        (family_name("BM_Barrier/8"), "BM_Barrier/8"),
    ]
    failures = [f"family_name: {got!r} != {want!r}" for got, want in checks
                if got != want]

    base = {
        "BM_FastMM/2048": {"real_time": 1.0},
        "BM_GemmPacked/1024": {"real_time": 2.0},
    }
    resolved = baseline_for("BM_FastMMStrassen/2048", base)
    if resolved is None or resolved[0] != "BM_FastMM/2048":
        failures.append("baseline_for: fast-MM family fallback missed")
    resolved = baseline_for("BM_GemmPackedTierSse2/1024", base)
    if resolved is None or resolved[0] != "BM_GemmPacked/1024":
        failures.append("baseline_for: tier family fallback missed")
    if baseline_for("BM_Unrelated/64", base) is not None:
        failures.append("baseline_for: matched an unrelated name")

    if metric_slowdown(2.0, 1.0, higher=True) != 2.0:
        failures.append("metric_slowdown: higher-is-better direction wrong")
    if metric_slowdown(1.0, 2.0, higher=False) != 2.0:
        failures.append("metric_slowdown: lower-is-better direction wrong")
    if metric_slowdown(0.0, 0.5, higher=False) != float("inf"):
        failures.append("metric_slowdown: zero baseline must gate exactness")
    if metric_slowdown(0.0, 0.0, higher=False) != 1.0:
        failures.append("metric_slowdown: zero == zero must pass")

    for line in failures:
        print(f"  [FAIL] {line}", file=sys.stderr)
    if failures:
        print(f"self-test: {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the built-in matching unit checks and exit (no files read)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="fail if current is more than this factor slower (default 1.3)",
    )
    parser.add_argument(
        "--max-alloc-ratio",
        type=float,
        default=1.05,
        help="fail if alloc_bytes_per_iter exceeds this factor of the "
        "baseline counter (default 1.05; allocation is deterministic)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        default=[],
        metavar="NAME[:MAX_RATIO][:higher|lower]",
        help="additionally gate this counter on every benchmark exporting "
        "it in both files; MAX_RATIO defaults to --max-ratio, direction "
        "defaults to lower-is-better (append ':higher' for throughput-style "
        "counters); repeatable",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="do not fail when a baseline benchmark is absent from the "
        "current run (use when intentionally removing a bench)",
    )
    parser.add_argument(
        "--alloc-floor",
        type=float,
        default=8.0 * 1024 * 1024,
        help="ignore alloc regressions below this many bytes/iter "
        "(default 8 MiB: above any residual pool-class miss, far below "
        "per-call operand staging)",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required unless --self-test")

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)
    metrics = [parse_metric_spec(spec, args.max_ratio) for spec in args.metric]

    failures = []
    metric_failures = []
    alloc_failures = []
    matched_baselines = set()
    unmatched_new = []
    for name in sorted(cur):
        resolved = baseline_for(name, base)
        if resolved is None:
            unmatched_new.append(name)
            continue
        base_name, base_entry = resolved
        matched_baselines.add(base_name)
        label = name if base_name == name else f"{name} (vs {base_name})"
        ratio = slowdown(base_entry, cur[name])
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"  [{status}] {label}: {ratio:.2f}x baseline time")
        if ratio > args.max_ratio:
            failures.append((label, ratio))
        for metric, metric_ratio, higher in metrics:
            b_val = base_entry.get(metric)
            c_val = cur[name].get(metric)
            if b_val is None or c_val is None:
                if b_val is not None or c_val is not None:
                    side = "baseline" if b_val is None else "current"
                    print(f"    ({metric}: absent from {side}, skipped)")
                continue
            m_ratio = metric_slowdown(b_val, c_val, higher)
            m_status = "FAIL" if m_ratio > metric_ratio else "ok"
            direction = "higher-better" if higher else "lower-better"
            print(
                f"    [{m_status}] {metric} ({direction}): "
                f"{b_val:g} -> {c_val:g} ({m_ratio:.2f}x, max "
                f"{metric_ratio:.2f}x)"
            )
            if m_ratio > metric_ratio:
                metric_failures.append((label, metric, b_val, c_val, m_ratio))
        b_alloc = base_entry.get("alloc_bytes_per_iter")
        c_alloc = cur[name].get("alloc_bytes_per_iter")
        if b_alloc is not None and c_alloc is not None:
            budget = max(b_alloc * args.max_alloc_ratio, args.alloc_floor)
            if c_alloc > budget:
                print(
                    f"  [FAIL] {label}: allocates {c_alloc:.0f} B/iter "
                    f"(baseline {b_alloc:.0f}, budget {budget:.0f})"
                )
                alloc_failures.append((label, b_alloc, c_alloc))
    current_families = {family_name(name) for name in cur}
    missing = []
    for name in sorted(set(base) - matched_baselines):
        if family_name(name) in current_families:
            # A tier variant of a family the current run did measure (e.g.
            # the forced-scalar job never runs the AVX2 entries).
            print(f"  (baseline-only, family covered) {name}")
        elif args.allow_missing:
            print(f"  (baseline-only, allowed by --allow-missing) {name}")
        else:
            print(f"  [FAIL] {name}: in baseline but missing from current run")
            missing.append(name)
    for name in unmatched_new:
        print(f"  (new, no baseline) {name}")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.max_ratio:.2f}x:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    if metric_failures:
        print(
            f"\n{len(metric_failures)} counter metric(s) regressed:",
            file=sys.stderr,
        )
        for label, metric, b_val, c_val, m_ratio in metric_failures:
            print(
                f"  {label} {metric}: {b_val:g} -> {c_val:g} "
                f"({m_ratio:.2f}x)",
                file=sys.stderr,
            )
    if alloc_failures:
        print(
            f"\n{len(alloc_failures)} benchmark(s) allocate beyond "
            f"{args.max_alloc_ratio:.2f}x the baseline bytes/iter:",
            file=sys.stderr,
        )
        for name, b_alloc, c_alloc in alloc_failures:
            print(
                f"  {name}: {b_alloc:.0f} -> {c_alloc:.0f} B/iter",
                file=sys.stderr,
            )
    if missing:
        print(
            f"\n{len(missing)} baseline benchmark(s) missing from the "
            f"current run (pass --allow-missing if intended):",
            file=sys.stderr,
        )
        for name in missing:
            print(f"  {name}", file=sys.stderr)
    if failures or metric_failures or alloc_failures or missing:
        return 1
    print(
        f"\nall baseline benchmarks covered and within "
        f"{args.max_ratio:.2f}x (alloc within {args.max_alloc_ratio:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate micro-benchmark regressions against a committed baseline.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--max-ratio 1.3]

Both files are Google-Benchmark JSON (micro_dgemm --json FILE). For every
benchmark present in BOTH files the script compares throughput
(items_per_second, i.e. FLOP/s for the DGEMM benches) and fails if

    baseline_items_per_second / current_items_per_second > max_ratio

for any benchmark — i.e. the current build is more than `max_ratio` slower
than the recorded baseline. Benchmarks present in only one file are
reported but never fail the gate (so adding/removing benches does not
require regenerating the baseline in the same commit).

Benchmarks without items_per_second fall back to comparing real_time
(higher is worse), with the same ratio threshold.

Exit code 0 = within budget, 1 = regression, 2 = usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    out: dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    if not out:
        print(f"error: no benchmarks found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def slowdown(base: dict, cur: dict) -> float:
    """Return how many times slower `cur` is than `base` (>1 == regression)."""
    b_ips, c_ips = base.get("items_per_second"), cur.get("items_per_second")
    if b_ips and c_ips:
        return b_ips / c_ips
    return cur["real_time"] / base["real_time"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="fail if current is more than this factor slower (default 1.3)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)

    failures = []
    for name in sorted(base):
        if name not in cur:
            print(f"  (baseline-only, skipped) {name}")
            continue
        ratio = slowdown(base[name], cur[name])
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"  [{status}] {name}: {ratio:.2f}x baseline time")
        if ratio > args.max_ratio:
            failures.append((name, ratio))
    for name in sorted(set(cur) - set(base)):
        print(f"  (new, no baseline) {name}")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.max_ratio:.2f}x:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"\nall shared benchmarks within {args.max_ratio:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gate micro-benchmark regressions against a committed baseline.

Usage:
    tools/compare_bench.py BASELINE.json CURRENT.json [--max-ratio 1.3]

Both files are Google-Benchmark JSON (micro_dgemm --json FILE). For every
benchmark present in BOTH files the script compares throughput
(items_per_second, i.e. FLOP/s for the DGEMM benches) and fails if

    baseline_items_per_second / current_items_per_second > max_ratio

for any benchmark — i.e. the current build is more than `max_ratio` slower
than the recorded baseline. Benchmarks present in only one file are
reported but never fail the gate (so adding/removing benches does not
require regenerating the baseline in the same commit).

Benchmarks without items_per_second fall back to comparing real_time
(higher is worse), with the same ratio threshold.

Allocation gate: benchmarks exporting the `alloc_bytes_per_iter` counter
(micro_dgemm does, via the data-plane accounting) are additionally checked
against the baseline's counter. The current build fails if it allocates
more than --max-alloc-ratio times the baseline's bytes per iteration, with
an absolute floor of --alloc-floor bytes. The floor absorbs residual
BufferPool size-class misses: the pool caches by observed *concurrent*
high-water per class, so a rerun of a single-iteration bench can legally
miss once (a few MiB) even though its baseline recorded zero. A genuine
per-call allocation regression (staging whole operands again) shows up as
tens of MiB per iteration and still trips the gate; the exact steady-state
property is enforced deterministically by tests/core/alloc_test.cpp.

Exit code 0 = within budget, 1 = regression, 2 = usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    out: dict[str, dict] = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    if not out:
        print(f"error: no benchmarks found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def slowdown(base: dict, cur: dict) -> float:
    """Return how many times slower `cur` is than `base` (>1 == regression)."""
    b_ips, c_ips = base.get("items_per_second"), cur.get("items_per_second")
    if b_ips and c_ips:
        return b_ips / c_ips
    return cur["real_time"] / base["real_time"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="fail if current is more than this factor slower (default 1.3)",
    )
    parser.add_argument(
        "--max-alloc-ratio",
        type=float,
        default=1.05,
        help="fail if alloc_bytes_per_iter exceeds this factor of the "
        "baseline counter (default 1.05; allocation is deterministic)",
    )
    parser.add_argument(
        "--alloc-floor",
        type=float,
        default=8.0 * 1024 * 1024,
        help="ignore alloc regressions below this many bytes/iter "
        "(default 8 MiB: above any residual pool-class miss, far below "
        "per-call operand staging)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cur = load_benchmarks(args.current)

    failures = []
    alloc_failures = []
    for name in sorted(base):
        if name not in cur:
            print(f"  (baseline-only, skipped) {name}")
            continue
        ratio = slowdown(base[name], cur[name])
        status = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"  [{status}] {name}: {ratio:.2f}x baseline time")
        if ratio > args.max_ratio:
            failures.append((name, ratio))
        b_alloc = base[name].get("alloc_bytes_per_iter")
        c_alloc = cur[name].get("alloc_bytes_per_iter")
        if b_alloc is not None and c_alloc is not None:
            budget = max(b_alloc * args.max_alloc_ratio, args.alloc_floor)
            if c_alloc > budget:
                print(
                    f"  [FAIL] {name}: allocates {c_alloc:.0f} B/iter "
                    f"(baseline {b_alloc:.0f}, budget {budget:.0f})"
                )
                alloc_failures.append((name, b_alloc, c_alloc))
    for name in sorted(set(cur) - set(base)):
        print(f"  (new, no baseline) {name}")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed beyond "
            f"{args.max_ratio:.2f}x:",
            file=sys.stderr,
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    if alloc_failures:
        print(
            f"\n{len(alloc_failures)} benchmark(s) allocate beyond "
            f"{args.max_alloc_ratio:.2f}x the baseline bytes/iter:",
            file=sys.stderr,
        )
        for name, b_alloc, c_alloc in alloc_failures:
            print(
                f"  {name}: {b_alloc:.0f} -> {c_alloc:.0f} B/iter",
                file=sys.stderr,
            )
    if failures or alloc_failures:
        return 1
    print(
        f"\nall shared benchmarks within {args.max_ratio:.2f}x of baseline "
        f"(alloc within {args.max_alloc_ratio:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_node.dir/heterogeneous_node.cpp.o"
  "CMakeFiles/heterogeneous_node.dir/heterogeneous_node.cpp.o.d"
  "heterogeneous_node"
  "heterogeneous_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

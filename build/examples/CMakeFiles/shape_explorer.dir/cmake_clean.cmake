file(REMOVE_RECURSE
  "CMakeFiles/shape_explorer.dir/shape_explorer.cpp.o"
  "CMakeFiles/shape_explorer.dir/shape_explorer.cpp.o.d"
  "shape_explorer"
  "shape_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

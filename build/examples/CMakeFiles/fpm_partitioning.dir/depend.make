# Empty dependencies file for fpm_partitioning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fpm_partitioning.dir/fpm_partitioning.cpp.o"
  "CMakeFiles/fpm_partitioning.dir/fpm_partitioning.cpp.o.d"
  "fpm_partitioning"
  "fpm_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpm_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/custom_partition.dir/custom_partition.cpp.o"
  "CMakeFiles/custom_partition.dir/custom_partition.cpp.o.d"
  "custom_partition"
  "custom_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_partition.cpp" "examples/CMakeFiles/custom_partition.dir/custom_partition.cpp.o" "gcc" "examples/CMakeFiles/custom_partition.dir/custom_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/summagen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/summagen_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/summagen_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/summagen_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/summagen_device.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/summagen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/summagen_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/summagen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for custom_partition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/summagen_cli.dir/summagen_cli.cpp.o"
  "CMakeFiles/summagen_cli.dir/summagen_cli.cpp.o.d"
  "summagen_cli"
  "summagen_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for summagen_cli.
# This may be replaced when dependencies are built.

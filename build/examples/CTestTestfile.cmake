# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n" "128")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heterogeneous_node "/root/repo/build/examples/heterogeneous_node" "--n" "4096")
set_tests_properties(example_heterogeneous_node PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shape_explorer "/root/repo/build/examples/shape_explorer" "--n" "128")
set_tests_properties(example_shape_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fpm_partitioning "/root/repo/build/examples/fpm_partitioning" "--n" "4096")
set_tests_properties(example_fpm_partitioning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_energy_study "/root/repo/build/examples/energy_study" "--n" "25600")
set_tests_properties(example_energy_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_partition "/root/repo/build/examples/custom_partition" "--n" "120")
set_tests_properties(example_custom_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli "/root/repo/build/examples/summagen_cli" "--n" "256" "--numeric" "--render" "--gantt")
set_tests_properties(example_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/summagen_core.dir/dataplane.cpp.o"
  "CMakeFiles/summagen_core.dir/dataplane.cpp.o.d"
  "CMakeFiles/summagen_core.dir/reference.cpp.o"
  "CMakeFiles/summagen_core.dir/reference.cpp.o.d"
  "CMakeFiles/summagen_core.dir/runner.cpp.o"
  "CMakeFiles/summagen_core.dir/runner.cpp.o.d"
  "CMakeFiles/summagen_core.dir/summa.cpp.o"
  "CMakeFiles/summagen_core.dir/summa.cpp.o.d"
  "CMakeFiles/summagen_core.dir/summa25d.cpp.o"
  "CMakeFiles/summagen_core.dir/summa25d.cpp.o.d"
  "CMakeFiles/summagen_core.dir/summagen.cpp.o"
  "CMakeFiles/summagen_core.dir/summagen.cpp.o.d"
  "libsummagen_core.a"
  "libsummagen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsummagen_core.a"
)

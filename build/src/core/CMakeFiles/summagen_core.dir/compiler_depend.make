# Empty compiler generated dependencies file for summagen_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsummagen_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/summagen_util.dir/cli.cpp.o"
  "CMakeFiles/summagen_util.dir/cli.cpp.o.d"
  "CMakeFiles/summagen_util.dir/log.cpp.o"
  "CMakeFiles/summagen_util.dir/log.cpp.o.d"
  "CMakeFiles/summagen_util.dir/matrix.cpp.o"
  "CMakeFiles/summagen_util.dir/matrix.cpp.o.d"
  "CMakeFiles/summagen_util.dir/table.cpp.o"
  "CMakeFiles/summagen_util.dir/table.cpp.o.d"
  "libsummagen_util.a"
  "libsummagen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

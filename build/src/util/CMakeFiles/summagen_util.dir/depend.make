# Empty dependencies file for summagen_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsummagen_mpi.a"
)

# Empty dependencies file for summagen_mpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/summagen_mpi.dir/comm.cpp.o"
  "CMakeFiles/summagen_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/summagen_mpi.dir/runtime.cpp.o"
  "CMakeFiles/summagen_mpi.dir/runtime.cpp.o.d"
  "libsummagen_mpi.a"
  "libsummagen_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

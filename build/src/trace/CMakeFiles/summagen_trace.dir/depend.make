# Empty dependencies file for summagen_trace.
# This may be replaced when dependencies are built.

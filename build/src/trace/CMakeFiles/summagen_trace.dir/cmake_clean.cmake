file(REMOVE_RECURSE
  "CMakeFiles/summagen_trace.dir/events.cpp.o"
  "CMakeFiles/summagen_trace.dir/events.cpp.o.d"
  "CMakeFiles/summagen_trace.dir/gantt.cpp.o"
  "CMakeFiles/summagen_trace.dir/gantt.cpp.o.d"
  "CMakeFiles/summagen_trace.dir/hockney.cpp.o"
  "CMakeFiles/summagen_trace.dir/hockney.cpp.o.d"
  "CMakeFiles/summagen_trace.dir/stats.cpp.o"
  "CMakeFiles/summagen_trace.dir/stats.cpp.o.d"
  "libsummagen_trace.a"
  "libsummagen_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsummagen_trace.a"
)

# Empty compiler generated dependencies file for summagen_blas.
# This may be replaced when dependencies are built.

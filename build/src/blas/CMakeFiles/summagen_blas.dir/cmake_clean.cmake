file(REMOVE_RECURSE
  "CMakeFiles/summagen_blas.dir/gemm.cpp.o"
  "CMakeFiles/summagen_blas.dir/gemm.cpp.o.d"
  "libsummagen_blas.a"
  "libsummagen_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsummagen_blas.a"
)

file(REMOVE_RECURSE
  "libsummagen_partition.a"
)

# Empty compiler generated dependencies file for summagen_partition.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/areas.cpp" "src/partition/CMakeFiles/summagen_partition.dir/areas.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/areas.cpp.o.d"
  "/root/repo/src/partition/column_based.cpp" "src/partition/CMakeFiles/summagen_partition.dir/column_based.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/column_based.cpp.o.d"
  "/root/repo/src/partition/nrrp.cpp" "src/partition/CMakeFiles/summagen_partition.dir/nrrp.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/nrrp.cpp.o.d"
  "/root/repo/src/partition/push.cpp" "src/partition/CMakeFiles/summagen_partition.dir/push.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/push.cpp.o.d"
  "/root/repo/src/partition/shapes.cpp" "src/partition/CMakeFiles/summagen_partition.dir/shapes.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/shapes.cpp.o.d"
  "/root/repo/src/partition/spec.cpp" "src/partition/CMakeFiles/summagen_partition.dir/spec.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/spec.cpp.o.d"
  "/root/repo/src/partition/spec_io.cpp" "src/partition/CMakeFiles/summagen_partition.dir/spec_io.cpp.o" "gcc" "src/partition/CMakeFiles/summagen_partition.dir/spec_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/summagen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/summagen_device.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/summagen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/summagen_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/summagen_partition.dir/areas.cpp.o"
  "CMakeFiles/summagen_partition.dir/areas.cpp.o.d"
  "CMakeFiles/summagen_partition.dir/column_based.cpp.o"
  "CMakeFiles/summagen_partition.dir/column_based.cpp.o.d"
  "CMakeFiles/summagen_partition.dir/nrrp.cpp.o"
  "CMakeFiles/summagen_partition.dir/nrrp.cpp.o.d"
  "CMakeFiles/summagen_partition.dir/push.cpp.o"
  "CMakeFiles/summagen_partition.dir/push.cpp.o.d"
  "CMakeFiles/summagen_partition.dir/shapes.cpp.o"
  "CMakeFiles/summagen_partition.dir/shapes.cpp.o.d"
  "CMakeFiles/summagen_partition.dir/spec.cpp.o"
  "CMakeFiles/summagen_partition.dir/spec.cpp.o.d"
  "CMakeFiles/summagen_partition.dir/spec_io.cpp.o"
  "CMakeFiles/summagen_partition.dir/spec_io.cpp.o.d"
  "libsummagen_partition.a"
  "libsummagen_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

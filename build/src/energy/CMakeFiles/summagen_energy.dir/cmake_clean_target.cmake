file(REMOVE_RECURSE
  "libsummagen_energy.a"
)

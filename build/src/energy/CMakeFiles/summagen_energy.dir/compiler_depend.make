# Empty compiler generated dependencies file for summagen_energy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/summagen_energy.dir/energy.cpp.o"
  "CMakeFiles/summagen_energy.dir/energy.cpp.o.d"
  "libsummagen_energy.a"
  "libsummagen_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for summagen_device.
# This may be replaced when dependencies are built.

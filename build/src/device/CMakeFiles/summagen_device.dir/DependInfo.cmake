
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/summagen_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/summagen_device.dir/device.cpp.o.d"
  "/root/repo/src/device/ooc.cpp" "src/device/CMakeFiles/summagen_device.dir/ooc.cpp.o" "gcc" "src/device/CMakeFiles/summagen_device.dir/ooc.cpp.o.d"
  "/root/repo/src/device/platform.cpp" "src/device/CMakeFiles/summagen_device.dir/platform.cpp.o" "gcc" "src/device/CMakeFiles/summagen_device.dir/platform.cpp.o.d"
  "/root/repo/src/device/speed_function.cpp" "src/device/CMakeFiles/summagen_device.dir/speed_function.cpp.o" "gcc" "src/device/CMakeFiles/summagen_device.dir/speed_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/summagen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/summagen_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/summagen_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

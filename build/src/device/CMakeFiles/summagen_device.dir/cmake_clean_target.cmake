file(REMOVE_RECURSE
  "libsummagen_device.a"
)

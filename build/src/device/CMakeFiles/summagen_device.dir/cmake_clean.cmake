file(REMOVE_RECURSE
  "CMakeFiles/summagen_device.dir/device.cpp.o"
  "CMakeFiles/summagen_device.dir/device.cpp.o.d"
  "CMakeFiles/summagen_device.dir/ooc.cpp.o"
  "CMakeFiles/summagen_device.dir/ooc.cpp.o.d"
  "CMakeFiles/summagen_device.dir/platform.cpp.o"
  "CMakeFiles/summagen_device.dir/platform.cpp.o.d"
  "CMakeFiles/summagen_device.dir/speed_function.cpp.o"
  "CMakeFiles/summagen_device.dir/speed_function.cpp.o.d"
  "libsummagen_device.a"
  "libsummagen_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summagen_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

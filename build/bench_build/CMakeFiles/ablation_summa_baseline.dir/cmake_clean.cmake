file(REMOVE_RECURSE
  "../bench/ablation_summa_baseline"
  "../bench/ablation_summa_baseline.pdb"
  "CMakeFiles/ablation_summa_baseline.dir/ablation_summa_baseline.cpp.o"
  "CMakeFiles/ablation_summa_baseline.dir/ablation_summa_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_summa_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_summa_baseline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig6_cpm.
# This may be replaced when dependencies are built.

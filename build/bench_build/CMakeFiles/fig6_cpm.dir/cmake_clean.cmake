file(REMOVE_RECURSE
  "../bench/fig6_cpm"
  "../bench/fig6_cpm.pdb"
  "CMakeFiles/fig6_cpm.dir/fig6_cpm.cpp.o"
  "CMakeFiles/fig6_cpm.dir/fig6_cpm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ablation_fpm_granularity"
  "../bench/ablation_fpm_granularity.pdb"
  "CMakeFiles/ablation_fpm_granularity.dir/ablation_fpm_granularity.cpp.o"
  "CMakeFiles/ablation_fpm_granularity.dir/ablation_fpm_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fpm_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_fpm_granularity.
# This may be replaced when dependencies are built.

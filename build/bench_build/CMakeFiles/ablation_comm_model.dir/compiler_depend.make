# Empty compiler generated dependencies file for ablation_comm_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_comm_model"
  "../bench/ablation_comm_model.pdb"
  "CMakeFiles/ablation_comm_model.dir/ablation_comm_model.cpp.o"
  "CMakeFiles/ablation_comm_model.dir/ablation_comm_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

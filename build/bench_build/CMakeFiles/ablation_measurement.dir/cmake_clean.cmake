file(REMOVE_RECURSE
  "../bench/ablation_measurement"
  "../bench/ablation_measurement.pdb"
  "CMakeFiles/ablation_measurement.dir/ablation_measurement.cpp.o"
  "CMakeFiles/ablation_measurement.dir/ablation_measurement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_push.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_push"
  "../bench/ablation_push.pdb"
  "CMakeFiles/ablation_push.dir/ablation_push.cpp.o"
  "CMakeFiles/ablation_push.dir/ablation_push.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ablation_energy_tradeoff"
  "../bench/ablation_energy_tradeoff.pdb"
  "CMakeFiles/ablation_energy_tradeoff.dir/ablation_energy_tradeoff.cpp.o"
  "CMakeFiles/ablation_energy_tradeoff.dir/ablation_energy_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_energy_tradeoff.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_nrrp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_nrrp"
  "../bench/ablation_nrrp.pdb"
  "CMakeFiles/ablation_nrrp.dir/ablation_nrrp.cpp.o"
  "CMakeFiles/ablation_nrrp.dir/ablation_nrrp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nrrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

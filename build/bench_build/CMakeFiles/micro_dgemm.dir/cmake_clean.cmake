file(REMOVE_RECURSE
  "../bench/micro_dgemm"
  "../bench/micro_dgemm.pdb"
  "CMakeFiles/micro_dgemm.dir/micro_dgemm.cpp.o"
  "CMakeFiles/micro_dgemm.dir/micro_dgemm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

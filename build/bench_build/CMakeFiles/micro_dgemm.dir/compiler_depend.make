# Empty compiler generated dependencies file for micro_dgemm.
# This may be replaced when dependencies are built.

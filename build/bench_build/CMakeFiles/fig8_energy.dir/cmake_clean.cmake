file(REMOVE_RECURSE
  "../bench/fig8_energy"
  "../bench/fig8_energy.pdb"
  "CMakeFiles/fig8_energy.dir/fig8_energy.cpp.o"
  "CMakeFiles/fig8_energy.dir/fig8_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

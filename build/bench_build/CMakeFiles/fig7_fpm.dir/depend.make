# Empty dependencies file for fig7_fpm.
# This may be replaced when dependencies are built.

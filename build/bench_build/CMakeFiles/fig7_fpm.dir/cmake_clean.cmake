file(REMOVE_RECURSE
  "../bench/fig7_fpm"
  "../bench/fig7_fpm.pdb"
  "CMakeFiles/fig7_fpm.dir/fig7_fpm.cpp.o"
  "CMakeFiles/fig7_fpm.dir/fig7_fpm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

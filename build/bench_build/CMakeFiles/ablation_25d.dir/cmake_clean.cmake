file(REMOVE_RECURSE
  "../bench/ablation_25d"
  "../bench/ablation_25d.pdb"
  "CMakeFiles/ablation_25d.dir/ablation_25d.cpp.o"
  "CMakeFiles/ablation_25d.dir/ablation_25d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_25d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

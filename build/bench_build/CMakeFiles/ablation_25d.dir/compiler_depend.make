# Empty compiler generated dependencies file for ablation_25d.
# This may be replaced when dependencies are built.

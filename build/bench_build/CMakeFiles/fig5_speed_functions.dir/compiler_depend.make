# Empty compiler generated dependencies file for fig5_speed_functions.
# This may be replaced when dependencies are built.

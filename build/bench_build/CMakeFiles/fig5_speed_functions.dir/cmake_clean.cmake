file(REMOVE_RECURSE
  "../bench/fig5_speed_functions"
  "../bench/fig5_speed_functions.pdb"
  "CMakeFiles/fig5_speed_functions.dir/fig5_speed_functions.cpp.o"
  "CMakeFiles/fig5_speed_functions.dir/fig5_speed_functions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speed_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_speed_ratio.
# This may be replaced when dependencies are built.

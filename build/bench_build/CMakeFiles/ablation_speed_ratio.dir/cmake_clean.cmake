file(REMOVE_RECURSE
  "../bench/ablation_speed_ratio"
  "../bench/ablation_speed_ratio.pdb"
  "CMakeFiles/ablation_speed_ratio.dir/ablation_speed_ratio.cpp.o"
  "CMakeFiles/ablation_speed_ratio.dir/ablation_speed_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_speed_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_partition.dir/partition/areas_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/areas_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/column_based_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/column_based_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/nrrp_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/nrrp_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/paper_examples_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/paper_examples_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/push_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/push_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/shapes_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/shapes_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/spec_io_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/spec_io_test.cpp.o.d"
  "CMakeFiles/test_partition.dir/partition/spec_test.cpp.o"
  "CMakeFiles/test_partition.dir/partition/spec_test.cpp.o.d"
  "test_partition"
  "test_partition.pdb"
  "test_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

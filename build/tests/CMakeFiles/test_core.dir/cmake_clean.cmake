file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/dataplane_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dataplane_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metamorphic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metamorphic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/runner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/runner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/summa25d_test.cpp.o"
  "CMakeFiles/test_core.dir/core/summa25d_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/summa_test.cpp.o"
  "CMakeFiles/test_core.dir/core/summa_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/summagen_test.cpp.o"
  "CMakeFiles/test_core.dir/core/summagen_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

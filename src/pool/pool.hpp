// sgpool — the process-wide compute executor.
//
// The paper delegates every local computation to a vendor DGEMM (MKL on the
// CPU/Phi, CUBLAS on the GPU) that owns one persistent, correctly-sized
// worker pool per abstract processor. This is the reproduction's equivalent:
// one shared work-stealing thread pool per process that all compute
// parallelism (blas::dgemm row bands, out-of-core tile stages, parallel
// matrix fills) is routed through. Rank threads of the in-process sgmpi
// platform submit tasks and *help execute them while waiting*, so the host
// is never oversubscribed beyond `rank threads + pool workers` — sized
// together to hardware_concurrency() (DESIGN.md "Compute executor").
//
// Shape: persistent workers, one mutex-guarded deque per worker. Owners
// push/pop LIFO at the back (cache-warm), thieves steal FIFO from the
// front (oldest == biggest remaining work under divide-and-conquer
// submission order). TaskGroup::wait() participates in execution, which
// makes nested parallelism (an OOC tile task issuing a pooled dgemm)
// deadlock-free by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace summagen::sgpool {

class TaskGroup;

/// Thread-local task token, inherited by pooled work: every submitted task
/// captures the submitting thread's token and installs it on the executing
/// thread for the task's duration (workers, thieves, and helping waiters
/// alike), restoring the executor's own token afterwards. The pool never
/// interprets the value — it is an attribution channel for layers above
/// (util::StatsSink rides it so concurrent jobs' data-plane events bill
/// the right job even from stolen tasks).
void* current_task_token();
void set_current_task_token(void* token);

/// Observability counters (test hooks; monotonically increasing).
struct PoolStats {
  std::int64_t threads_spawned = 0;  ///< workers ever created by this pool
  std::int64_t tasks_executed = 0;   ///< tasks completed (workers + helpers)
  std::int64_t steals = 0;  ///< tasks taken from a non-home deque
};

/// A fixed set of persistent worker threads with work-stealing deques.
///
/// Most code should use the shared process pool via `Pool::instance()` /
/// `TaskGroup`; separate instances exist for tests. Thread-safe: any thread
/// may submit; pool workers submitting go to their own deque.
class Pool {
 public:
  /// Spawns `threads` workers (clamped to >= 0; 0 = callers execute
  /// everything inline during wait(), still a valid executor).
  explicit Pool(int threads);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int size() const;
  PoolStats stats() const;

  /// The shared process-wide pool. Lazily created with
  /// `recommended_size(reserved_threads())` workers; never destroyed.
  static Pool& instance();

  /// Resizes the shared pool (no-op when the size already matches). Must be
  /// called at a quiescent point — no tasks in flight. The experiment
  /// runner calls this once per run with `hardware_concurrency()` minus the
  /// live rank threads.
  static void configure(int threads);

  /// Worker count that fills the machine alongside `reserved_threads`
  /// always-running threads (sgmpi ranks): max(1, hw_concurrency - reserved).
  static int recommended_size(int reserved_threads);

  /// Threads reserved for rank execution, used by the lazy default size.
  /// Late reservations are honored: when the shared pool already exists and
  /// the reservation changes, the pool is resized via configure() — so this
  /// is quiescent-only once the shared pool has tasks in flight.
  static void set_reserved_threads(int reserved);
  static int reserved_threads();

  /// Registers a callback run at every quiescent point — currently the top
  /// of configure(), i.e. once per experiment run, before any tasks of the
  /// new run are in flight. Used by process-wide caches (the blas pack
  /// cache) to release storage between runs. Hooks are never removed and
  /// must be safe to call with no tasks in flight.
  static void add_quiescent_hook(std::function<void()> hook);

  /// Total worker threads ever spawned by any Pool in this process — the
  /// test hook proving dgemm does not construct threads per call.
  static std::int64_t process_threads_spawned();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
    void* token = nullptr;  ///< submitter's task token (see above)
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;
    std::thread thread;
  };

  void start(int threads);
  void shutdown();
  void submit(Task task);
  /// Runs one task if any is available (own deque back first when called
  /// from a worker, then steal sweep). Returns false when idle.
  bool try_run_one();
  void run_task(Task& task);
  void worker_loop(std::size_t index);

  mutable std::mutex sleep_mu_;  ///< guards sleep/wake + worker vector swap
  std::condition_variable sleep_cv_;
  bool stop_ = false;  ///< guarded by sleep_mu_
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> rr_{0};  ///< round-robin external submission
  std::atomic<std::int64_t> spawned_{0};
  std::atomic<std::int64_t> executed_{0};
  std::atomic<std::int64_t> steals_{0};
};

/// A set of tasks submitted together and awaited together (TBB task_group
/// shape). `wait()` helps execute pool tasks while the group is pending and
/// rethrows the first task exception. Groups nest freely.
class TaskGroup {
 public:
  explicit TaskGroup(Pool& pool = Pool::instance());
  /// Blocks until pending tasks finish; exceptions from unawaited tasks are
  /// dropped — call wait() to observe them.
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits one task to the pool.
  void run(std::function<void()> fn);
  /// Waits for every submitted task, executing pool tasks in the meantime.
  /// Rethrows the first exception thrown by a task of this group.
  void wait();

 private:
  friend class Pool;
  void finish_task(std::exception_ptr error);
  void wait_nothrow();

  Pool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t pending_ = 0;   ///< guarded by mu_
  std::exception_ptr error_;   ///< first task failure, guarded by mu_
};

/// Splits [begin, end) into chunks of at most `grain` and runs
/// `body(chunk_begin, chunk_end)` on the pool; the caller participates.
/// Chunk boundaries depend only on (begin, end, grain), never on the worker
/// count, so any per-chunk seeding is reproducible across pool sizes.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  Pool& pool = Pool::instance());

}  // namespace summagen::sgpool

#include "src/pool/pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace summagen::sgpool {
namespace {

std::atomic<std::int64_t> g_process_spawned{0};
std::atomic<int> g_reserved_threads{0};
std::atomic<bool> g_instance_created{false};
std::mutex g_configure_mu;

std::mutex g_hooks_mu;
std::vector<std::function<void()>>& quiescent_hooks() {
  static std::vector<std::function<void()>>* hooks =
      new std::vector<std::function<void()>>();
  return *hooks;
}

// Which pool (if any) the current thread is a worker of, and its index —
// lets submit() use the cache-warm local deque and try_run_one() prefer it.
thread_local Pool* tl_worker_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

// Attribution token inherited by pooled tasks (see pool.hpp).
thread_local void* tl_task_token = nullptr;

}  // namespace

void* current_task_token() { return tl_task_token; }

void set_current_task_token(void* token) { tl_task_token = token; }

// Locking discipline: `workers_` (the vector itself) is only mutated by
// start()/shutdown(), which are quiescent-only (no tasks in flight, no
// concurrent submitters) — hot-path readers touch it lock-free. Each deque
// has its own mutex; nobody holds two deque mutexes at once. submit()
// briefly acquires sleep_mu_ *after* releasing the deque mutex so a parked
// worker's recheck-then-wait (done under sleep_mu_) cannot miss a wakeup.

Pool::Pool(int threads) { start(std::max(0, threads)); }

Pool::~Pool() { shutdown(); }

int Pool::size() const { return static_cast<int>(workers_.size()); }

PoolStats Pool::stats() const {
  PoolStats s;
  s.threads_spawned = spawned_.load(std::memory_order_relaxed);
  s.tasks_executed = executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  return s;
}

Pool& Pool::instance() {
  // Intentionally leaked: worker threads must outlive every static client,
  // and joining at static-destruction order is a losing game.
  static Pool* shared = [] {
    Pool* pool = new Pool(recommended_size(reserved_threads()));
    g_instance_created.store(true, std::memory_order_release);
    return pool;
  }();
  return *shared;
}

void Pool::configure(int threads) {
  std::lock_guard<std::mutex> lk(g_configure_mu);
  // Quiescent point: configure() is documented no-tasks-in-flight, so
  // caches can safely drop storage here (copy the hooks out so a hook may
  // itself register hooks without deadlocking).
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> hlk(g_hooks_mu);
    hooks = quiescent_hooks();
  }
  for (const auto& hook : hooks) hook();
  Pool& pool = instance();
  const int want = std::max(0, threads);
  if (pool.size() == want) return;
  pool.shutdown();
  pool.start(want);
}

void Pool::add_quiescent_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lk(g_hooks_mu);
  quiescent_hooks().push_back(std::move(hook));
}

int Pool::recommended_size(int reserved_threads) {
  const unsigned hw = std::thread::hardware_concurrency();
  const int avail = static_cast<int>(hw == 0 ? 1 : hw);
  return std::max(1, avail - std::max(0, reserved_threads));
}

void Pool::set_reserved_threads(int reserved) {
  const int clamped = std::max(0, reserved);
  const int previous = g_reserved_threads.exchange(clamped,
                                                   std::memory_order_relaxed);
  // The shared pool sizes itself from the reservation captured at its lazy
  // construction. A reservation arriving after that point used to be a
  // silent no-op; honor it by resizing the already-built pool (quiescent
  // contract identical to configure(), which every caller of this function
  // already satisfies).
  if (previous != clamped &&
      g_instance_created.load(std::memory_order_acquire)) {
    configure(recommended_size(clamped));
  }
}

int Pool::reserved_threads() {
  return g_reserved_threads.load(std::memory_order_relaxed);
}

std::int64_t Pool::process_threads_spawned() {
  return g_process_spawned.load(std::memory_order_relaxed);
}

void Pool::start(int threads) {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = false;
  }
  workers_.clear();
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only once the vector is final: worker_loop indexes into workers_.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
    spawned_.fetch_add(1, std::memory_order_relaxed);
    g_process_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

void Pool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // configure()/dtor are documented quiescent-only, so a leftover task
  // means a caller bug; still, run stragglers inline rather than wedging
  // their TaskGroup forever.
  for (auto& w : workers_) {
    for (Task& t : w->tasks) run_task(t);
    w->tasks.clear();
  }
}

void Pool::submit(Task task) {
  const std::size_t n = workers_.size();
  if (n == 0) {
    // Worker-less pool (tests): the submitting thread is the executor.
    run_task(task);
    return;
  }
  if (tl_worker_pool == this) {
    Worker* w = workers_[tl_worker_index % n].get();
    std::lock_guard<std::mutex> dlk(w->mu);
    w->tasks.push_back(std::move(task));  // LIFO end for the owner
  } else {
    const std::uint64_t slot =
        rr_.fetch_add(1, std::memory_order_relaxed) % n;
    Worker* w = workers_[slot].get();
    std::lock_guard<std::mutex> dlk(w->mu);
    w->tasks.push_front(std::move(task));  // FIFO injection
  }
  // Pairing with the parked worker's recheck under sleep_mu_ (see
  // worker_loop): acquiring the mutex between enqueue and notify closes
  // the enqueue/park race.
  { std::lock_guard<std::mutex> lk(sleep_mu_); }
  sleep_cv_.notify_one();
}

bool Pool::try_run_one() {
  const std::size_t n = workers_.size();
  if (n == 0) return false;
  Task task;
  bool got = false;
  bool stolen = false;
  const bool is_worker = tl_worker_pool == this;
  const std::size_t home =
      is_worker ? tl_worker_index % n
                : rr_.load(std::memory_order_relaxed) % n;
  if (is_worker) {
    Worker* w = workers_[home].get();
    std::lock_guard<std::mutex> dlk(w->mu);
    if (!w->tasks.empty()) {
      task = std::move(w->tasks.back());
      w->tasks.pop_back();
      got = true;
    }
  }
  for (std::size_t off = 0; !got && off < n; ++off) {
    const std::size_t v = (home + off) % n;
    Worker* w = workers_[v].get();
    std::lock_guard<std::mutex> dlk(w->mu);
    if (!w->tasks.empty()) {
      task = std::move(w->tasks.front());
      w->tasks.pop_front();
      got = true;
      stolen = is_worker && v != home;
    }
  }
  if (!got) return false;
  if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
  run_task(task);
  return true;
}

void Pool::run_task(Task& task) {
  // Install the submitter's token for the task's duration — the executing
  // thread may be a worker, a thief, or a helping waiter from another job.
  void* const prev_token = tl_task_token;
  tl_task_token = task.token;
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  tl_task_token = prev_token;
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (task.group != nullptr) task.group->finish_task(error);
}

void Pool::worker_loop(std::size_t index) {
  tl_worker_pool = this;
  tl_worker_index = index;
  for (;;) {
    if (try_run_one()) continue;
    std::unique_lock<std::mutex> lk(sleep_mu_);
    if (stop_) break;
    // Recheck under sleep_mu_: a submitter enqueues, then takes sleep_mu_,
    // then notifies — so either its task is visible to this scan or its
    // notify lands after our wait starts. The timeout is belt-and-braces.
    bool any = false;
    for (const auto& w : workers_) {
      std::lock_guard<std::mutex> dlk(w->mu);
      if (!w->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) continue;
    sleep_cv_.wait_for(lk, std::chrono::milliseconds(50));
    if (stop_) break;
  }
  tl_worker_pool = nullptr;
}

TaskGroup::TaskGroup(Pool& pool) : pool_(pool) {}

TaskGroup::~TaskGroup() { wait_nothrow(); }

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++pending_;
  }
  pool_.submit(Pool::Task{std::move(fn), this, tl_task_token});
}

void TaskGroup::finish_task(std::exception_ptr error) {
  // Notify under the lock: once pending_ hits 0 a waiter returning from
  // wait() may destroy the group, so no member may be touched after the
  // unlock — notifying inside the critical section keeps cv_ alive.
  std::lock_guard<std::mutex> lk(mu_);
  if (error && !error_) error_ = error;
  if (--pending_ == 0) cv_.notify_all();
}

void TaskGroup::wait_nothrow() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (pending_ == 0) return;
    }
    // Help: run pool tasks (any group — keeps nested groups live) while
    // ours are pending; park briefly only when the pool is drained but our
    // tasks are still in flight on other threads.
    if (pool_.try_run_one()) continue;
    std::unique_lock<std::mutex> lk(mu_);
    if (cv_.wait_for(lk, std::chrono::microseconds(500),
                     [&] { return pending_ == 0; })) {
      return;
    }
  }
}

void TaskGroup::wait() {
  wait_nothrow();
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lk(mu_);
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body,
                  Pool& pool) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  if (end - begin <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group(pool);
  for (std::int64_t lo = begin; lo < end; lo += grain) {
    const std::int64_t hi = std::min(end, lo + grain);
    group.run([&body, lo, hi] { body(lo, hi); });
  }
  group.wait();
}

}  // namespace summagen::sgpool

#include "src/util/cli.hpp"

#include <sstream>
#include <stdexcept>

namespace summagen::util {
namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.contains(name); }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stoll(it->second);
}

std::int64_t Cli::get_int_min(const std::string& name, std::int64_t fallback,
                              std::int64_t min_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t value = 0;
  try {
    std::size_t used = 0;
    value = std::stoll(it->second, &used);
    if (used != it->second.size()) {
      throw std::invalid_argument(it->second);
    }
  } catch (const std::exception&) {
    throw CliError("--" + name + ": expected an integer, got '" +
                   it->second + "'");
  }
  if (value < min_value) {
    throw CliError("--" + name + ": value must be >= " +
                   std::to_string(min_value) + ", got " +
                   std::to_string(value));
  }
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::vector<std::int64_t> out;
  for (const auto& tok : split_commas(it->second)) out.push_back(std::stoll(tok));
  return out;
}

std::vector<double> Cli::get_double_list(
    const std::string& name, const std::vector<double>& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::vector<double> out;
  for (const auto& tok : split_commas(it->second)) out.push_back(std::stod(tok));
  return out;
}

}  // namespace summagen::util

#include "src/util/accounting.hpp"

#include <atomic>

#include "src/pool/pool.hpp"

namespace summagen::util {
namespace {

std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<std::int64_t> g_copy_calls{0};
std::atomic<std::int64_t> g_copy_bytes{0};
std::atomic<std::int64_t> g_pool_acquires{0};
std::atomic<std::int64_t> g_pool_hits{0};
std::atomic<std::int64_t> g_pool_resident{0};
std::atomic<std::int64_t> g_pool_peak_resident{0};
std::atomic<std::int64_t> g_pack_lookups{0};
std::atomic<std::int64_t> g_pack_hits{0};
std::atomic<std::int64_t> g_sched_lookups{0};
std::atomic<std::int64_t> g_sched_hits{0};
std::atomic<std::int64_t> g_fastmm_leases{0};
std::atomic<std::int64_t> g_fastmm_bytes{0};

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

DataPlaneStats DataPlaneStats::since(const DataPlaneStats& base) const {
  DataPlaneStats d = *this;
  d.allocs -= base.allocs;
  d.alloc_bytes -= base.alloc_bytes;
  d.copy_calls -= base.copy_calls;
  d.copy_bytes -= base.copy_bytes;
  d.pool_acquires -= base.pool_acquires;
  d.pool_hits -= base.pool_hits;
  d.pack_lookups -= base.pack_lookups;
  d.pack_hits -= base.pack_hits;
  d.sched_lookups -= base.sched_lookups;
  d.sched_hits -= base.sched_hits;
  d.fastmm_leases -= base.fastmm_leases;
  d.fastmm_bytes -= base.fastmm_bytes;
  return d;
}

DataPlaneStats data_plane_stats() {
  DataPlaneStats s;
  s.allocs = g_allocs.load(kRelaxed);
  s.alloc_bytes = g_alloc_bytes.load(kRelaxed);
  s.copy_calls = g_copy_calls.load(kRelaxed);
  s.copy_bytes = g_copy_bytes.load(kRelaxed);
  s.pool_acquires = g_pool_acquires.load(kRelaxed);
  s.pool_hits = g_pool_hits.load(kRelaxed);
  s.pool_resident_bytes = g_pool_resident.load(kRelaxed);
  s.pool_peak_resident_bytes = g_pool_peak_resident.load(kRelaxed);
  s.pack_lookups = g_pack_lookups.load(kRelaxed);
  s.pack_hits = g_pack_hits.load(kRelaxed);
  s.sched_lookups = g_sched_lookups.load(kRelaxed);
  s.sched_hits = g_sched_hits.load(kRelaxed);
  s.fastmm_leases = g_fastmm_leases.load(kRelaxed);
  s.fastmm_bytes = g_fastmm_bytes.load(kRelaxed);
  return s;
}

DataPlaneStats StatsSink::snapshot() const {
  DataPlaneStats s;
  s.allocs = allocs_.load(kRelaxed);
  s.alloc_bytes = alloc_bytes_.load(kRelaxed);
  s.copy_calls = copy_calls_.load(kRelaxed);
  s.copy_bytes = copy_bytes_.load(kRelaxed);
  s.pool_acquires = pool_acquires_.load(kRelaxed);
  s.pool_hits = pool_hits_.load(kRelaxed);
  s.pack_lookups = pack_lookups_.load(kRelaxed);
  s.pack_hits = pack_hits_.load(kRelaxed);
  s.sched_lookups = sched_lookups_.load(kRelaxed);
  s.sched_hits = sched_hits_.load(kRelaxed);
  s.fastmm_leases = fastmm_leases_.load(kRelaxed);
  s.fastmm_bytes = fastmm_bytes_.load(kRelaxed);
  return s;
}

void StatsSink::add(const DataPlaneStats& d) {
  allocs_.fetch_add(d.allocs, kRelaxed);
  alloc_bytes_.fetch_add(d.alloc_bytes, kRelaxed);
  copy_calls_.fetch_add(d.copy_calls, kRelaxed);
  copy_bytes_.fetch_add(d.copy_bytes, kRelaxed);
  pool_acquires_.fetch_add(d.pool_acquires, kRelaxed);
  pool_hits_.fetch_add(d.pool_hits, kRelaxed);
  pack_lookups_.fetch_add(d.pack_lookups, kRelaxed);
  pack_hits_.fetch_add(d.pack_hits, kRelaxed);
  sched_lookups_.fetch_add(d.sched_lookups, kRelaxed);
  sched_hits_.fetch_add(d.sched_hits, kRelaxed);
  fastmm_leases_.fetch_add(d.fastmm_leases, kRelaxed);
  fastmm_bytes_.fetch_add(d.fastmm_bytes, kRelaxed);
}

// The sink pointer rides the sgpool task token so pooled tasks inherit the
// submitting thread's attribution (src/pool/pool.hpp).
StatsSink* current_stats_sink() {
  return static_cast<StatsSink*>(sgpool::current_task_token());
}

ScopedStatsSink::ScopedStatsSink(StatsSink* sink)
    : prev_(sgpool::current_task_token()) {
  sgpool::set_current_task_token(sink);
}

ScopedStatsSink::~ScopedStatsSink() { sgpool::set_current_task_token(prev_); }

void record_alloc(std::int64_t bytes) {
  if (bytes <= 0) return;
  g_allocs.fetch_add(1, kRelaxed);
  g_alloc_bytes.fetch_add(bytes, kRelaxed);
  if (StatsSink* s = current_stats_sink()) {
    s->allocs_.fetch_add(1, kRelaxed);
    s->alloc_bytes_.fetch_add(bytes, kRelaxed);
  }
}

void record_copy(std::int64_t bytes) {
  g_copy_calls.fetch_add(1, kRelaxed);
  g_copy_bytes.fetch_add(bytes, kRelaxed);
  if (StatsSink* s = current_stats_sink()) {
    s->copy_calls_.fetch_add(1, kRelaxed);
    s->copy_bytes_.fetch_add(bytes, kRelaxed);
  }
}

void record_pool_acquire(bool hit) {
  g_pool_acquires.fetch_add(1, kRelaxed);
  if (hit) g_pool_hits.fetch_add(1, kRelaxed);
  if (StatsSink* s = current_stats_sink()) {
    s->pool_acquires_.fetch_add(1, kRelaxed);
    if (hit) s->pool_hits_.fetch_add(1, kRelaxed);
  }
}

void record_pack_lookup(bool hit) {
  g_pack_lookups.fetch_add(1, kRelaxed);
  if (hit) g_pack_hits.fetch_add(1, kRelaxed);
  if (StatsSink* s = current_stats_sink()) {
    s->pack_lookups_.fetch_add(1, kRelaxed);
    if (hit) s->pack_hits_.fetch_add(1, kRelaxed);
  }
}

void record_sched_lookup(bool hit) {
  g_sched_lookups.fetch_add(1, kRelaxed);
  if (hit) g_sched_hits.fetch_add(1, kRelaxed);
  if (StatsSink* s = current_stats_sink()) {
    s->sched_lookups_.fetch_add(1, kRelaxed);
    if (hit) s->sched_hits_.fetch_add(1, kRelaxed);
  }
}

void record_fastmm_lease(std::int64_t bytes) {
  if (bytes <= 0) return;
  g_fastmm_leases.fetch_add(1, kRelaxed);
  g_fastmm_bytes.fetch_add(bytes, kRelaxed);
  if (StatsSink* s = current_stats_sink()) {
    s->fastmm_leases_.fetch_add(1, kRelaxed);
    s->fastmm_bytes_.fetch_add(bytes, kRelaxed);
  }
}

void record_pool_resident_delta(std::int64_t delta) {
  const std::int64_t now = g_pool_resident.fetch_add(delta, kRelaxed) + delta;
  // Racy max update is fine for a statistic: a lost update can only
  // under-report the peak by one in-flight allocation.
  std::int64_t peak = g_pool_peak_resident.load(kRelaxed);
  while (now > peak &&
         !g_pool_peak_resident.compare_exchange_weak(peak, now, kRelaxed)) {
  }
}

}  // namespace summagen::util

#include "src/util/accounting.hpp"

#include <atomic>

namespace summagen::util {
namespace {

std::atomic<std::int64_t> g_allocs{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<std::int64_t> g_copy_calls{0};
std::atomic<std::int64_t> g_copy_bytes{0};
std::atomic<std::int64_t> g_pool_acquires{0};
std::atomic<std::int64_t> g_pool_hits{0};
std::atomic<std::int64_t> g_pool_resident{0};
std::atomic<std::int64_t> g_pool_peak_resident{0};
std::atomic<std::int64_t> g_pack_lookups{0};
std::atomic<std::int64_t> g_pack_hits{0};

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

DataPlaneStats DataPlaneStats::since(const DataPlaneStats& base) const {
  DataPlaneStats d = *this;
  d.allocs -= base.allocs;
  d.alloc_bytes -= base.alloc_bytes;
  d.copy_calls -= base.copy_calls;
  d.copy_bytes -= base.copy_bytes;
  d.pool_acquires -= base.pool_acquires;
  d.pool_hits -= base.pool_hits;
  d.pack_lookups -= base.pack_lookups;
  d.pack_hits -= base.pack_hits;
  return d;
}

DataPlaneStats data_plane_stats() {
  DataPlaneStats s;
  s.allocs = g_allocs.load(kRelaxed);
  s.alloc_bytes = g_alloc_bytes.load(kRelaxed);
  s.copy_calls = g_copy_calls.load(kRelaxed);
  s.copy_bytes = g_copy_bytes.load(kRelaxed);
  s.pool_acquires = g_pool_acquires.load(kRelaxed);
  s.pool_hits = g_pool_hits.load(kRelaxed);
  s.pool_resident_bytes = g_pool_resident.load(kRelaxed);
  s.pool_peak_resident_bytes = g_pool_peak_resident.load(kRelaxed);
  s.pack_lookups = g_pack_lookups.load(kRelaxed);
  s.pack_hits = g_pack_hits.load(kRelaxed);
  return s;
}

void record_alloc(std::int64_t bytes) {
  if (bytes <= 0) return;
  g_allocs.fetch_add(1, kRelaxed);
  g_alloc_bytes.fetch_add(bytes, kRelaxed);
}

void record_copy(std::int64_t bytes) {
  g_copy_calls.fetch_add(1, kRelaxed);
  g_copy_bytes.fetch_add(bytes, kRelaxed);
}

void record_pool_acquire(bool hit) {
  g_pool_acquires.fetch_add(1, kRelaxed);
  if (hit) g_pool_hits.fetch_add(1, kRelaxed);
}

void record_pack_lookup(bool hit) {
  g_pack_lookups.fetch_add(1, kRelaxed);
  if (hit) g_pack_hits.fetch_add(1, kRelaxed);
}

void record_pool_resident_delta(std::int64_t delta) {
  const std::int64_t now = g_pool_resident.fetch_add(delta, kRelaxed) + delta;
  // Racy max update is fine for a statistic: a lost update can only
  // under-report the peak by one in-flight allocation.
  std::int64_t peak = g_pool_peak_resident.load(kRelaxed);
  while (now > peak &&
         !g_pool_peak_resident.compare_exchange_weak(peak, now, kRelaxed)) {
  }
}

}  // namespace summagen::util

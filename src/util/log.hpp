// Leveled logging with a global threshold; thread-safe line emission.
//
// The message-passing runtime runs one thread per rank, so log lines must
// not interleave mid-line; a process-wide mutex serialises emission.
#pragma once

#include <sstream>
#include <string>

namespace summagen::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kWarn, so library
/// code is silent in tests/benches unless something is wrong).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define SG_LOG_DEBUG() ::summagen::util::detail::LogStream(::summagen::util::LogLevel::kDebug)
#define SG_LOG_INFO() ::summagen::util::detail::LogStream(::summagen::util::LogLevel::kInfo)
#define SG_LOG_WARN() ::summagen::util::detail::LogStream(::summagen::util::LogLevel::kWarn)
#define SG_LOG_ERROR() ::summagen::util::detail::LogStream(::summagen::util::LogLevel::kError)

}  // namespace summagen::util

#include "src/util/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <sstream>

#include "src/util/accounting.hpp"

namespace summagen::util {

Matrix::Matrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("Matrix: negative dimension");
  }
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               0.0);
  record_alloc(static_cast<std::int64_t>(data_.size() * sizeof(double)));
}

Matrix::Matrix(std::int64_t rows, std::int64_t cols, double value)
    : Matrix(rows, cols) {
  fill(value);
}

double& Matrix::at(std::int64_t i, std::int64_t j) {
  if (i < 0 || i >= rows_ || j < 0 || j >= cols_) {
    throw std::out_of_range("Matrix::at(" + std::to_string(i) + "," +
                            std::to_string(j) + ") outside " +
                            std::to_string(rows_) + "x" +
                            std::to_string(cols_));
  }
  return (*this)(i, j);
}

double Matrix::at(std::int64_t i, std::int64_t j) const {
  return const_cast<Matrix*>(this)->at(i, j);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t k = 0; k < a.data_.size(); ++k) {
    worst = std::max(worst, std::abs(a.data_[k] - b.data_[k]));
  }
  return worst;
}

void copy_matrix(double* dst, std::int64_t dst_ld, const double* src,
                 std::int64_t src_ld, std::int64_t rows, std::int64_t cols) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("copy_matrix: negative extent");
  }
  if (dst_ld < cols || src_ld < cols) {
    throw std::invalid_argument("copy_matrix: leading dimension < cols");
  }
  if (rows == 0 || cols == 0) return;
  // The docstring promises "no aliasing overlap"; enforce it. The check is
  // conservative (address spans, ignoring gaps between rows), which is exact
  // for every legitimate pack/unpack in this codebase: overlapping spans with
  // row-wise memcpy would already be undefined behaviour.
  {
    const double* dst_end = dst + (rows - 1) * dst_ld + cols;
    const double* src_end = src + (rows - 1) * src_ld + cols;
    if (std::less<const double*>{}(src, dst_end) &&
        std::less<const double*>{}(dst, src_end)) {
      throw std::invalid_argument("copy_matrix: src and dst overlap");
    }
  }
  record_copy(rows * cols * static_cast<std::int64_t>(sizeof(double)));
  if (dst_ld == cols && src_ld == cols) {
    std::memcpy(dst, src,
                static_cast<std::size_t>(rows * cols) * sizeof(double));
    return;
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    std::memcpy(dst + i * dst_ld, src + i * src_ld,
                static_cast<std::size_t>(cols) * sizeof(double));
  }
}

Matrix extract_block(const Matrix& src, std::int64_t r0, std::int64_t c0,
                     std::int64_t rows, std::int64_t cols) {
  if (r0 < 0 || c0 < 0 || r0 + rows > src.rows() || c0 + cols > src.cols()) {
    throw std::out_of_range("extract_block: block outside matrix");
  }
  Matrix out(rows, cols);
  copy_matrix(out.data(), cols, src.data() + r0 * src.cols() + c0, src.cols(),
              rows, cols);
  return out;
}

void place_block(Matrix& dst, const Matrix& block, std::int64_t r0,
                 std::int64_t c0) {
  if (r0 < 0 || c0 < 0 || r0 + block.rows() > dst.rows() ||
      c0 + block.cols() > dst.cols()) {
    throw std::out_of_range("place_block: block outside matrix");
  }
  copy_matrix(dst.data() + r0 * dst.cols() + c0, dst.cols(), block.data(),
              block.cols(), block.rows(), block.cols());
}

std::string to_string(const Matrix& m, std::int64_t max_dim) {
  std::ostringstream os;
  os << m.rows() << "x" << m.cols() << " [";
  const std::int64_t r = std::min(m.rows(), max_dim);
  const std::int64_t c = std::min(m.cols(), max_dim);
  for (std::int64_t i = 0; i < r; ++i) {
    if (i) os << " ;";
    for (std::int64_t j = 0; j < c; ++j) os << " " << m(i, j);
    if (c < m.cols()) os << " ...";
  }
  if (r < m.rows()) os << " ; ...";
  os << " ]";
  return os.str();
}

}  // namespace summagen::util

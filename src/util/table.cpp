#include "src/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace summagen::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: expected " +
                                std::to_string(header_.size()) +
                                " cells, got " + std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c >= width.size()) width.resize(c + 1, 0);
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace summagen::util

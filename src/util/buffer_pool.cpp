#include "src/util/buffer_pool.hpp"

#include <bit>

#include "src/util/accounting.hpp"

namespace summagen::util {

void PooledBuffer::release() {
  if (pool_ != nullptr && data_ != nullptr) {
    pool_->put_back(std::move(data_), capacity_);
  }
  pool_ = nullptr;
  data_.reset();
  size_ = 0;
  capacity_ = 0;
}

BufferPool& BufferPool::instance() {
  static BufferPool* pool = new BufferPool();
  return *pool;
}

std::size_t BufferPool::class_index(std::size_t doubles) {
  const std::size_t rounded = std::bit_ceil(doubles);
  const std::size_t log2 =
      static_cast<std::size_t>(std::bit_width(rounded) - 1);
  const std::size_t idx = log2 <= kMinClassLog2 ? 0 : log2 - kMinClassLog2;
  return idx < kNumClasses ? idx : kNumClasses - 1;
}

std::size_t BufferPool::class_capacity(std::size_t index) {
  return std::size_t{1} << (kMinClassLog2 + index);
}

PooledBuffer BufferPool::acquire(std::size_t doubles) {
  if (doubles == 0) return PooledBuffer();
  const std::size_t idx = class_index(doubles);
  std::size_t capacity = class_capacity(idx);
  // Requests beyond the largest class get an exact-size allocation that is
  // freed (not cached) on release — see put_back.
  if (capacity < doubles) capacity = doubles;

  SizeClass& cls = classes_[idx];
  {
    std::lock_guard<std::mutex> lock(cls.mu);
    if (!cls.free.empty() && capacity == class_capacity(idx)) {
      std::unique_ptr<double[]> data = std::move(cls.free.back());
      cls.free.pop_back();
      record_pool_acquire(/*hit=*/true);
      return PooledBuffer(this, std::move(data), doubles,
                          class_capacity(idx));
    }
  }
  record_pool_acquire(/*hit=*/false);
  std::unique_ptr<double[]> data(new double[capacity]);
  const auto bytes = static_cast<std::int64_t>(capacity * sizeof(double));
  record_alloc(bytes);
  record_pool_resident_delta(bytes);
  return PooledBuffer(this, std::move(data), doubles, capacity);
}

void BufferPool::put_back(std::unique_ptr<double[]> data,
                          std::size_t capacity) {
  const std::size_t idx = class_index(capacity);
  if (capacity != class_capacity(idx)) {
    // Oversize (beyond-largest-class) block: drop it rather than cache a
    // block whose capacity the freelist can no longer describe.
    record_pool_resident_delta(
        -static_cast<std::int64_t>(capacity * sizeof(double)));
    return;
  }
  SizeClass& cls = classes_[idx];
  std::lock_guard<std::mutex> lock(cls.mu);
  cls.free.push_back(std::move(data));
}

void BufferPool::trim() {
  for (std::size_t idx = 0; idx < kNumClasses; ++idx) {
    SizeClass& cls = classes_[idx];
    std::vector<std::unique_ptr<double[]>> doomed;
    {
      std::lock_guard<std::mutex> lock(cls.mu);
      doomed.swap(cls.free);
    }
    if (!doomed.empty()) {
      record_pool_resident_delta(
          -static_cast<std::int64_t>(doomed.size() * class_capacity(idx) *
                                     sizeof(double)));
    }
  }
}

std::size_t BufferPool::cached_count() const {
  std::size_t total = 0;
  for (const SizeClass& cls : classes_) {
    std::lock_guard<std::mutex> lock(cls.mu);
    total += cls.free.size();
  }
  return total;
}

}  // namespace summagen::util

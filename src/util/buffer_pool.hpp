// Process-wide size-classed pool for transient double workspaces.
//
// The data plane needs short-lived scratch buffers constantly — GEMM pack
// panels, broadcast staging for strided sub-partitions, per-phase WA/WB
// workspaces, OOC device slabs. Allocating them with std::vector meant a
// malloc + zero-fill per use (and, for the old thread_local pack buffers,
// memory retained forever on every pool worker). The BufferPool serves
// these from power-of-two size-classed freelists: steady-state acquire is
// a mutex-guarded pop, memory is bounded by the high-water mark of
// *concurrent* use, and every transaction is accounted (hit rate, fresh
// bytes, resident peak) via src/util/accounting.hpp.
//
// Buffers are NOT zero-initialised on acquire — callers overwrite them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace summagen::util {

class BufferPool;

/// RAII handle to a pooled double buffer; returns the storage to the pool
/// on destruction. Move-only. `size()` is the requested element count;
/// the underlying block may be larger (its size class).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { release(); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_),
        data_(std::move(other.data_)),
        size_(other.size_),
        capacity_(other.capacity_) {
    other.pool_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      data_ = std::move(other.data_);
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.pool_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  double* data() noexcept { return data_.get(); }
  const double* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Returns the storage to the pool now (the handle becomes empty).
  void release();

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, std::unique_ptr<double[]> data,
               std::size_t size, std::size_t capacity)
      : pool_(pool), data_(std::move(data)), size_(size), capacity_(capacity) {}

  BufferPool* pool_ = nullptr;
  std::unique_ptr<double[]> data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Size-classed freelist pool. Thread-safe; one instance per process.
class BufferPool {
 public:
  /// The process-wide pool. Intentionally leaked so buffers held by
  /// thread_local caches or static state can release safely at shutdown.
  static BufferPool& instance();

  /// Acquires a buffer of at least `doubles` elements (uninitialised).
  /// A zero-size request returns an empty handle without touching the pool.
  PooledBuffer acquire(std::size_t doubles);

  /// Frees every cached (idle) buffer. Outstanding PooledBuffers are
  /// unaffected; their storage is freed on return. Mainly for tests and
  /// memory-pressure hooks.
  void trim();

  /// Number of idle buffers currently cached (test visibility).
  std::size_t cached_count() const;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  friend class PooledBuffer;

  // Size classes are powers of two from 2^kMinClassLog2 doubles upward.
  static constexpr std::size_t kMinClassLog2 = 8;  // 256 doubles = 2 KiB
  static constexpr std::size_t kNumClasses = 34;   // up to 2^41 doubles

  struct SizeClass {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<double[]>> free;
  };

  static std::size_t class_index(std::size_t doubles);
  static std::size_t class_capacity(std::size_t index);

  void put_back(std::unique_ptr<double[]> data, std::size_t capacity);

  std::array<SizeClass, kNumClasses> classes_;
};

}  // namespace summagen::util

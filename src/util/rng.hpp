// Deterministic random number helpers.
//
// Every stochastic component in the library (matrix initialisation, meter
// noise, profile jitter) takes an explicit seed so experiments replay
// bit-identically — a requirement for the Student-t repetition driver tests.
#pragma once

#include <cstdint>
#include <random>

#include "src/pool/pool.hpp"
#include "src/util/matrix.hpp"

namespace summagen::util {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
///
/// Distributions are members, parameterised per draw — constructing a fresh
/// std::*_distribution per call (the old shape) both costs a constructor on
/// every draw and, for normal(), discards the cached second Box-Muller
/// variate, wasting half the engine output.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    using Dist = std::uniform_real_distribution<double>;
    return real_(engine_, Dist::param_type(lo, hi));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    using Dist = std::uniform_int_distribution<std::int64_t>;
    return int_(engine_, Dist::param_type(lo, hi));
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    using Dist = std::normal_distribution<double>;
    return normal_(engine_, Dist::param_type(mean, stddev));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> real_;
  std::uniform_int_distribution<std::int64_t> int_;
  std::normal_distribution<double> normal_;
};

/// Derives a child seed; avoids correlated streams when a seed fans out
/// across ranks, rows, or repetitions (SplitMix64 finaliser).
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Fills `m` with uniform values in [lo, hi); deterministic given `seed`.
///
/// Each row draws from its own engine seeded with `derive_seed(seed, row)`
/// and rows fill in parallel on the shared sgpool executor — the result is
/// bit-identical for any worker count (including the serial small-matrix
/// path), since the row <-> stream mapping never depends on scheduling.
inline void fill_random(Matrix& m, std::uint64_t seed, double lo = -1.0,
                        double hi = 1.0) {
  const std::int64_t rows = m.rows();
  const std::int64_t cols = m.cols();
  double* data = m.data();
  const auto fill_rows = [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      Rng rng(derive_seed(seed, static_cast<std::uint64_t>(i)));
      double* row = data + i * cols;
      for (std::int64_t j = 0; j < cols; ++j) row[j] = rng.uniform(lo, hi);
    }
  };
  // Engine construction is ~2.5 KiB of state per row: not worth task
  // overhead for small matrices, and the values are identical either way.
  if (rows * cols < 1 << 14) {
    fill_rows(0, rows);
    return;
  }
  const std::int64_t width = sgpool::Pool::instance().size() + 1;
  sgpool::parallel_for(0, rows, (rows + width - 1) / width, fill_rows);
}

}  // namespace summagen::util

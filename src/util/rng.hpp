// Deterministic random number helpers.
//
// Every stochastic component in the library (matrix initialisation, meter
// noise, profile jitter) takes an explicit seed so experiments replay
// bit-identically — a requirement for the Student-t repetition driver tests.
#pragma once

#include <cstdint>
#include <random>

#include "src/util/matrix.hpp"

namespace summagen::util {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Fills `m` with uniform values in [lo, hi); deterministic given `seed`.
inline void fill_random(Matrix& m, std::uint64_t seed, double lo = -1.0,
                        double hi = 1.0) {
  Rng rng(seed);
  for (double& v : m.span()) v = rng.uniform(lo, hi);
}

/// Derives a child seed; avoids correlated streams when a seed fans out
/// across ranks or repetitions (SplitMix64 finaliser).
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace summagen::util

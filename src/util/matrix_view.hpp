// Non-owning strided views over row-major double buffers.
//
// SummaGen's pseudo-code (paper Figures 2-4) operates on sub-matrices of the
// global operands via pointer + leading-dimension arithmetic. MatrixView /
// ConstMatrixView make that idiom typed: a view is {data, rows, cols, ld}
// with `subview()` composing offsets, so sub-partitions and workspace panels
// can be described without copying them into owning Matrix objects.
//
// Checking policy:
//  * structural operations (construction, subview, view copies) validate
//    their arguments unconditionally and throw — they run once per panel,
//    not per element, so the cost is irrelevant;
//  * per-element access is asserted only in debug builds (!NDEBUG), where
//    a violation aborts (suitable for death tests); release builds compile
//    the check out entirely.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>

#include "src/util/matrix.hpp"

namespace summagen::util {

namespace detail {

[[noreturn]] inline void view_index_abort(const char* what, std::int64_t i,
                                          std::int64_t j, std::int64_t rows,
                                          std::int64_t cols) {
  std::fprintf(stderr, "%s: index (%lld,%lld) outside %lldx%lld view\n", what,
               static_cast<long long>(i), static_cast<long long>(j),
               static_cast<long long>(rows), static_cast<long long>(cols));
  std::abort();
}

inline void view_check_shape(const char* what, const double* data,
                             std::int64_t rows, std::int64_t cols,
                             std::int64_t ld) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument(std::string(what) + ": negative extent");
  }
  if (ld < cols) {
    throw std::invalid_argument(std::string(what) +
                                ": leading dimension < cols");
  }
  if (data == nullptr && rows > 0 && cols > 0) {
    throw std::invalid_argument(std::string(what) +
                                ": null data with non-empty extent");
  }
}

inline void view_check_subview(const char* what, std::int64_t r0,
                               std::int64_t c0, std::int64_t rows,
                               std::int64_t cols, std::int64_t parent_rows,
                               std::int64_t parent_cols) {
  if (r0 < 0 || c0 < 0 || rows < 0 || cols < 0 || r0 + rows > parent_rows ||
      c0 + cols > parent_cols) {
    throw std::out_of_range(std::string(what) + ": block (" +
                            std::to_string(r0) + "," + std::to_string(c0) +
                            ")+" + std::to_string(rows) + "x" +
                            std::to_string(cols) + " outside " +
                            std::to_string(parent_rows) + "x" +
                            std::to_string(parent_cols));
  }
}

}  // namespace detail

#ifndef NDEBUG
#define SUMMAGEN_VIEW_AT_CHECK(i, j, rows, cols, what)              \
  do {                                                              \
    if ((i) < 0 || (i) >= (rows) || (j) < 0 || (j) >= (cols)) {     \
      ::summagen::util::detail::view_index_abort(what, (i), (j),    \
                                                 (rows), (cols));   \
    }                                                               \
  } while (0)
#else
#define SUMMAGEN_VIEW_AT_CHECK(i, j, rows, cols, what) ((void)0)
#endif

/// Read-only non-owning view of a rows x cols block inside a row-major
/// buffer with leading dimension `ld` (in elements). Element (i, j) lives
/// at `data()[i*ld() + j]`. Copyable and cheap to pass by value.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;

  ConstMatrixView(const double* data, std::int64_t rows, std::int64_t cols,
                  std::int64_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    detail::view_check_shape("ConstMatrixView", data, rows, cols, ld);
  }

  /// Views a whole owning Matrix (implicit: a Matrix *is* a contiguous view).
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.cols()) {}

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t ld() const noexcept { return ld_; }
  std::int64_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }
  const double* data() const noexcept { return data_; }

  /// True when rows are adjacent in memory (the whole view is one span).
  bool contiguous() const noexcept { return ld_ == cols_ || rows_ <= 1; }

  const double* row(std::int64_t i) const noexcept { return data_ + i * ld_; }

  double operator()(std::int64_t i, std::int64_t j) const noexcept {
    SUMMAGEN_VIEW_AT_CHECK(i, j, rows_, cols_, "ConstMatrixView");
    return data_[static_cast<std::size_t>(i * ld_ + j)];
  }

  /// Sub-block with top-left corner (r0, c0); offsets compose, so a
  /// subview of a subview addresses the original buffer.
  ConstMatrixView subview(std::int64_t r0, std::int64_t c0, std::int64_t rows,
                          std::int64_t cols) const {
    detail::view_check_subview("ConstMatrixView::subview", r0, c0, rows, cols,
                               rows_, cols_);
    return ConstMatrixView(data_ + r0 * ld_ + c0, rows, cols, ld_);
  }

 private:
  const double* data_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t ld_ = 0;
};

/// Mutable non-owning view; converts implicitly to ConstMatrixView.
class MatrixView {
 public:
  MatrixView() = default;

  MatrixView(double* data, std::int64_t rows, std::int64_t cols,
             std::int64_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    detail::view_check_shape("MatrixView", data, rows, cols, ld);
  }

  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.cols()) {}

  operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
    return ConstMatrixView(data_, rows_, cols_, ld_);
  }

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t ld() const noexcept { return ld_; }
  std::int64_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }
  double* data() const noexcept { return data_; }

  bool contiguous() const noexcept { return ld_ == cols_ || rows_ <= 1; }

  double* row(std::int64_t i) const noexcept { return data_ + i * ld_; }

  double& operator()(std::int64_t i, std::int64_t j) const noexcept {
    SUMMAGEN_VIEW_AT_CHECK(i, j, rows_, cols_, "MatrixView");
    return data_[static_cast<std::size_t>(i * ld_ + j)];
  }

  MatrixView subview(std::int64_t r0, std::int64_t c0, std::int64_t rows,
                     std::int64_t cols) const {
    detail::view_check_subview("MatrixView::subview", r0, c0, rows, cols,
                               rows_, cols_);
    return MatrixView(data_ + r0 * ld_ + c0, rows, cols, ld_);
  }

  /// Sets every element of the viewed block to `value`.
  void fill(double value) const {
    for (std::int64_t i = 0; i < rows_; ++i) {
      double* r = row(i);
      for (std::int64_t j = 0; j < cols_; ++j) r[j] = value;
    }
  }

 private:
  double* data_ = nullptr;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t ld_ = 0;
};

/// Conservative aliasing predicate: true when the address spans of the two
/// views intersect (span = [row(0), row(rows-1) + cols), ignoring the gaps
/// between strided rows, so it may report overlap for interleaved disjoint
/// views — acceptable for a safety precondition).
inline bool views_overlap(ConstMatrixView a, ConstMatrixView b) noexcept {
  if (a.empty() || b.empty()) return false;
  const double* a_end = a.row(a.rows() - 1) + a.cols();
  const double* b_end = b.row(b.rows() - 1) + b.cols();
  return std::less<const double*>{}(a.data(), b_end) &&
         std::less<const double*>{}(b.data(), a_end);
}

/// Exact containment: true when every element of `inner` lies inside the
/// buffer span addressed by `outer` (used by debug invariants).
inline bool view_spans_contain(ConstMatrixView outer,
                               ConstMatrixView inner) noexcept {
  if (inner.empty()) return true;
  if (outer.empty()) return false;
  const double* outer_end = outer.row(outer.rows() - 1) + outer.cols();
  const double* inner_end = inner.row(inner.rows() - 1) + inner.cols();
  return !std::less<const double*>{}(inner.data(), outer.data()) &&
         !std::less<const double*>{}(outer_end, inner_end);
}

/// Copies `src` into `dst`. Shapes must match exactly and the views must
/// not overlap (both enforced; copy_matrix re-checks the span overlap).
inline void copy_view(ConstMatrixView src, MatrixView dst) {
  if (src.rows() != dst.rows() || src.cols() != dst.cols()) {
    throw std::invalid_argument(
        "copy_view: shape mismatch " + std::to_string(src.rows()) + "x" +
        std::to_string(src.cols()) + " -> " + std::to_string(dst.rows()) +
        "x" + std::to_string(dst.cols()));
  }
  if (src.empty()) return;
  copy_matrix(dst.data(), dst.ld(), src.data(), src.ld(), src.rows(),
              src.cols());
}

/// Copies a view into a fresh owning Matrix.
inline Matrix materialize(ConstMatrixView src) {
  Matrix out(src.rows(), src.cols());
  if (!src.empty()) copy_view(src, MatrixView(out));
  return out;
}

/// Mutable view of the block of `m` with top-left corner (r0, c0).
inline MatrixView block_view(Matrix& m, std::int64_t r0, std::int64_t c0,
                             std::int64_t rows, std::int64_t cols) {
  return MatrixView(m).subview(r0, c0, rows, cols);
}

/// Read-only view of the block of `m` with top-left corner (r0, c0).
inline ConstMatrixView block_view(const Matrix& m, std::int64_t r0,
                                  std::int64_t c0, std::int64_t rows,
                                  std::int64_t cols) {
  return ConstMatrixView(m).subview(r0, c0, rows, cols);
}

}  // namespace summagen::util

// Row-major dense matrix container and submatrix copy utilities.
//
// SummaGen (the paper, Section IV) manipulates raw row-major double buffers
// with explicit leading dimensions (`copy_matrix(dst, dld, src, sld, ...)`).
// This header provides a safe owning container plus the same low-level copy
// primitive the paper's pseudo-code relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace summagen::util {

/// Owning row-major matrix of doubles.
///
/// Invariants: `data().size() == rows()*cols()`, leading dimension == cols().
/// All indices are 0-based; element (i, j) lives at `data()[i*cols() + j]`.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialised.
  Matrix(std::int64_t rows, std::int64_t cols);

  /// Creates a rows x cols matrix filled with `value`.
  Matrix(std::int64_t rows, std::int64_t cols, double value);

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  std::int64_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  std::span<double> span() noexcept { return {data_.data(), data_.size()}; }
  std::span<const double> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  double& operator()(std::int64_t i, std::int64_t j) noexcept {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(std::int64_t i, std::int64_t j) const noexcept {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Bounds-checked element access (throws std::out_of_range).
  double& at(std::int64_t i, std::int64_t j);
  double at(std::int64_t i, std::int64_t j) const;

  /// Sets every element to `value`.
  void fill(double value);

  /// Frobenius norm of the difference, useful for verification.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  bool operator==(const Matrix& other) const = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> data_;
};

/// Copies a `rows x cols` block between two row-major buffers with
/// leading dimensions `dst_ld` / `src_ld` (in elements).
///
/// This mirrors the `copy_matrix` helper in the paper's Figures 2-4.
/// Preconditions: dst_ld >= cols, src_ld >= cols, no aliasing overlap.
void copy_matrix(double* dst, std::int64_t dst_ld, const double* src,
                 std::int64_t src_ld, std::int64_t rows, std::int64_t cols);

/// Extracts the block with top-left corner (r0, c0) and size rows x cols.
Matrix extract_block(const Matrix& src, std::int64_t r0, std::int64_t c0,
                     std::int64_t rows, std::int64_t cols);

/// Writes `block` into `dst` with top-left corner at (r0, c0).
void place_block(Matrix& dst, const Matrix& block, std::int64_t r0,
                 std::int64_t c0);

/// Renders a small matrix for diagnostics ("3x3 [ 1 2 3 ; ... ]").
std::string to_string(const Matrix& m, std::int64_t max_dim = 8);

}  // namespace summagen::util

// Minimal table formatter used by the benchmark harness to print
// paper-style tables (one bench binary per figure/table) both as aligned
// ASCII and as machine-readable CSV.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace summagen::util {

/// Column-aligned table with a title, one header row, and value rows.
///
/// Usage:
///   Table t("Figure 6a: Execution times (s)");
///   t.set_header({"N", "square_corner", "square_rect", ...});
///   t.add_row({"25600", "12.4", ...});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 4);
  static std::string num(std::int64_t v);

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Aligned ASCII rendering.
  void print(std::ostream& os) const;

  /// CSV rendering (comma-separated, header first).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace summagen::util

// Tiny command-line flag parser for the bench and example binaries.
//
// Supports `--name value` and `--name=value` forms plus boolean switches.
// Keeps the bench binaries dependency-free while allowing parameter sweeps
// to be customised from the shell.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace summagen::util {

/// A user-facing command-line error: the flag name and what was wrong with
/// its value. Binaries catch this separately from internal errors and print
/// the message plus usage.
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parsed command-line flags with typed, defaulted accessors.
class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed flags
  /// (non-flag positional arguments are collected separately).
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  /// get_int with a lower bound: throws CliError naming the flag when the
  /// value is malformed or below `min_value`.
  std::int64_t get_int_min(const std::string& name, std::int64_t fallback,
                           std::int64_t min_value) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated integer list, e.g. --sizes 1024,2048,4096.
  std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  /// Comma-separated double list, e.g. --speeds 1.0,2.0,0.9.
  std::vector<double> get_double_list(const std::string& name,
                                      const std::vector<double>& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace summagen::util

// Process-wide data-plane allocation and copy accounting.
//
// The zero-copy refactor (strided MatrixView + pooled workspaces) is only a
// win if it is measurable: these counters record every heap allocation made
// for matrix payloads (owning Matrix buffers, transient workspaces, pool
// misses), every copy_matrix invocation, and the BufferPool's hit/resident
// behaviour. The experiment runner snapshots them around a run and reports
// the delta; `micro_dgemm --json` exports them as benchmark counters.
//
// All counters are relaxed atomics: they are statistics, not
// synchronisation, and the hot paths only pay an uncontended atomic add.
//
// Per-job scoping: process-wide snapshot deltas misattribute events when
// experiments overlap (the multi-tenant service runs many jobs over the
// shared runtime at once), so every record_* call additionally credits the
// StatsSink installed on the recording thread, if any. The sink travels
// with the work: a rank thread installs its job's sink for its lifetime,
// and sgpool tasks inherit the submitting thread's sink (the pool
// propagates the thread-local task token from submit to execution), so a
// DGEMM pack running on a stolen worker still bills the right job.
#pragma once

#include <atomic>
#include <cstdint>

namespace summagen::util {

/// Cumulative process-wide data-plane counters (monotone except
/// pool_resident_bytes, which tracks the live pooled footprint).
struct DataPlaneStats {
  std::int64_t allocs = 0;       ///< heap allocations for matrix payloads
  std::int64_t alloc_bytes = 0;  ///< bytes of those allocations
  std::int64_t copy_calls = 0;   ///< copy_matrix invocations
  std::int64_t copy_bytes = 0;   ///< bytes moved by copy_matrix
  std::int64_t pool_acquires = 0;  ///< BufferPool::acquire calls
  std::int64_t pool_hits = 0;      ///< acquires served from a freelist
  std::int64_t pool_resident_bytes = 0;  ///< pooled bytes currently alive
  std::int64_t pool_peak_resident_bytes = 0;  ///< high-water mark of above
  std::int64_t pack_lookups = 0;  ///< blas PackCache lease lookups
  std::int64_t pack_hits = 0;     ///< lookups served by an existing panel
  std::int64_t sched_lookups = 0;  ///< shared plan/task-graph cache lookups
  std::int64_t sched_hits = 0;     ///< lookups served by a cached schedule
  std::int64_t fastmm_leases = 0;  ///< fast-MM temporary buffers leased
  std::int64_t fastmm_bytes = 0;   ///< bytes of those leases (S/T/M buffers)

  /// Fraction of pool acquires served without a heap allocation.
  double pool_hit_rate() const {
    return pool_acquires == 0
               ? 0.0
               : static_cast<double>(pool_hits) /
                     static_cast<double>(pool_acquires);
  }

  /// Fraction of pack-cache lookups that reused an already-packed B block.
  double pack_hit_rate() const {
    return pack_lookups == 0
               ? 0.0
               : static_cast<double>(pack_hits) /
                     static_cast<double>(pack_lookups);
  }

  /// Fraction of schedule-cache lookups served by a cached plan/graph.
  double sched_hit_rate() const {
    return sched_lookups == 0
               ? 0.0
               : static_cast<double>(sched_hits) /
                     static_cast<double>(sched_lookups);
  }

  /// Counter-wise difference (peaks and residency keep this snapshot's
  /// absolute values — a peak is not meaningful as a delta).
  DataPlaneStats since(const DataPlaneStats& base) const;
};

/// Snapshot of the process-wide counters.
DataPlaneStats data_plane_stats();

/// Per-job accumulator of the same event counters. Install one on a thread
/// with ScopedStatsSink and every record_* from that thread — and from any
/// sgpool task it submits — credits the sink on top of the process-wide
/// counters. Thread-safe (relaxed atomics, like the globals).
class StatsSink {
 public:
  StatsSink() = default;
  StatsSink(const StatsSink&) = delete;
  StatsSink& operator=(const StatsSink&) = delete;

  /// The events credited to this sink so far. The pool-residency fields are
  /// process-wide absolutes by definition and are always 0 here; callers
  /// wanting them combine this snapshot with data_plane_stats().
  DataPlaneStats snapshot() const;

  /// Adds `d`'s counter fields (not residency) to this sink — used when a
  /// helper measured a sub-phase separately.
  void add(const DataPlaneStats& d);

 private:
  friend void record_alloc(std::int64_t);
  friend void record_copy(std::int64_t);
  friend void record_pool_acquire(bool);
  friend void record_pack_lookup(bool);
  friend void record_sched_lookup(bool);
  friend void record_fastmm_lease(std::int64_t);

  std::atomic<std::int64_t> allocs_{0};
  std::atomic<std::int64_t> alloc_bytes_{0};
  std::atomic<std::int64_t> copy_calls_{0};
  std::atomic<std::int64_t> copy_bytes_{0};
  std::atomic<std::int64_t> pool_acquires_{0};
  std::atomic<std::int64_t> pool_hits_{0};
  std::atomic<std::int64_t> pack_lookups_{0};
  std::atomic<std::int64_t> pack_hits_{0};
  std::atomic<std::int64_t> sched_lookups_{0};
  std::atomic<std::int64_t> sched_hits_{0};
  std::atomic<std::int64_t> fastmm_leases_{0};
  std::atomic<std::int64_t> fastmm_bytes_{0};
};

/// The sink installed on the calling thread (nullptr when none).
StatsSink* current_stats_sink();

/// RAII install of `sink` as the calling thread's sink; restores the
/// previous sink on destruction. Passing nullptr suspends attribution for
/// the scope (e.g. around a verification reference that is measurement
/// harness, not data plane).
class ScopedStatsSink {
 public:
  explicit ScopedStatsSink(StatsSink* sink);
  ~ScopedStatsSink();
  ScopedStatsSink(const ScopedStatsSink&) = delete;
  ScopedStatsSink& operator=(const ScopedStatsSink&) = delete;

 private:
  void* prev_;
};

/// Records one heap allocation of `bytes` for matrix payload data. Called
/// by the Matrix constructor and by BufferPool misses; transient workspace
/// paths not yet routed through the pool call it directly.
void record_alloc(std::int64_t bytes);

/// Records one copy_matrix of `bytes`.
void record_copy(std::int64_t bytes);

/// Records one BufferPool::acquire (`hit` = served from a freelist).
void record_pool_acquire(bool hit);

/// Records one blas PackCache lookup (`hit` = reused a packed B block).
void record_pack_lookup(bool hit);

/// Records one shared-schedule cache lookup (`hit` = reused a cached
/// ExecutionPlan + TaskGraph instead of rebuilding them).
void record_sched_lookup(bool hit);

/// Records one fast-MM temporary lease of `bytes` (the S/T linear-
/// combination and M quadrant-product workspaces of src/blas/fastmm.cpp).
/// The lease still goes through the BufferPool — this counter exists so
/// fast-MM workspace traffic is visible separately from generic pool hits
/// and the ~0-alloc warm-run gate can cover --fastmm runs.
void record_fastmm_lease(std::int64_t bytes);

/// Adjusts the live pooled footprint by `delta` bytes (positive on a fresh
/// pool allocation, negative when the pool releases memory) and maintains
/// the peak.
void record_pool_resident_delta(std::int64_t delta);

}  // namespace summagen::util

// Process-wide data-plane allocation and copy accounting.
//
// The zero-copy refactor (strided MatrixView + pooled workspaces) is only a
// win if it is measurable: these counters record every heap allocation made
// for matrix payloads (owning Matrix buffers, transient workspaces, pool
// misses), every copy_matrix invocation, and the BufferPool's hit/resident
// behaviour. The experiment runner snapshots them around a run and reports
// the delta; `micro_dgemm --json` exports them as benchmark counters.
//
// All counters are relaxed atomics: they are statistics, not
// synchronisation, and the hot paths only pay an uncontended atomic add.
#pragma once

#include <cstdint>

namespace summagen::util {

/// Cumulative process-wide data-plane counters (monotone except
/// pool_resident_bytes, which tracks the live pooled footprint).
struct DataPlaneStats {
  std::int64_t allocs = 0;       ///< heap allocations for matrix payloads
  std::int64_t alloc_bytes = 0;  ///< bytes of those allocations
  std::int64_t copy_calls = 0;   ///< copy_matrix invocations
  std::int64_t copy_bytes = 0;   ///< bytes moved by copy_matrix
  std::int64_t pool_acquires = 0;  ///< BufferPool::acquire calls
  std::int64_t pool_hits = 0;      ///< acquires served from a freelist
  std::int64_t pool_resident_bytes = 0;  ///< pooled bytes currently alive
  std::int64_t pool_peak_resident_bytes = 0;  ///< high-water mark of above
  std::int64_t pack_lookups = 0;  ///< blas PackCache lease lookups
  std::int64_t pack_hits = 0;     ///< lookups served by an existing panel

  /// Fraction of pool acquires served without a heap allocation.
  double pool_hit_rate() const {
    return pool_acquires == 0
               ? 0.0
               : static_cast<double>(pool_hits) /
                     static_cast<double>(pool_acquires);
  }

  /// Fraction of pack-cache lookups that reused an already-packed B block.
  double pack_hit_rate() const {
    return pack_lookups == 0
               ? 0.0
               : static_cast<double>(pack_hits) /
                     static_cast<double>(pack_lookups);
  }

  /// Counter-wise difference (peaks and residency keep this snapshot's
  /// absolute values — a peak is not meaningful as a delta).
  DataPlaneStats since(const DataPlaneStats& base) const;
};

/// Snapshot of the process-wide counters.
DataPlaneStats data_plane_stats();

/// Records one heap allocation of `bytes` for matrix payload data. Called
/// by the Matrix constructor and by BufferPool misses; transient workspace
/// paths not yet routed through the pool call it directly.
void record_alloc(std::int64_t bytes);

/// Records one copy_matrix of `bytes`.
void record_copy(std::int64_t bytes);

/// Records one BufferPool::acquire (`hit` = served from a freelist).
void record_pool_acquire(bool hit);

/// Records one blas PackCache lookup (`hit` = reused a packed B block).
void record_pack_lookup(bool hit);

/// Adjusts the live pooled footprint by `delta` bytes (positive on a fresh
/// pool allocation, negative when the pool releases memory) and maintains
/// the peak.
void record_pool_resident_delta(std::int64_t delta);

}  // namespace summagen::util

#include "src/device/ooc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/pool/pool.hpp"
#include "src/util/buffer_pool.hpp"
#include "src/util/matrix.hpp"

namespace summagen::device {
namespace {

constexpr std::int64_t kElem = sizeof(double);

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Footprint of one (tm x tk)*(tk x tn) tile on the device: A panel, B panel,
// C tile plus an equally-sized accumulation workspace.
std::int64_t tile_footprint(std::int64_t tm, std::int64_t tn,
                            std::int64_t tk) {
  return kElem * (tm * tk + tk * tn + 2 * tm * tn);
}

}  // namespace

OutOfCorePlan plan_out_of_core(std::int64_t m, std::int64_t n, std::int64_t k,
                               std::int64_t memory_bytes, bool staged) {
  if (m <= 0 || n <= 0 || k <= 0) {
    throw std::invalid_argument("plan_out_of_core: non-positive dimension");
  }
  if (memory_bytes <= 0) {
    throw std::invalid_argument("plan_out_of_core: non-positive memory");
  }

  OutOfCorePlan plan;
  if (tile_footprint(m, n, k) <= memory_bytes) {
    plan.tile_m = m;
    plan.tile_n = n;
    plan.tile_k = k;
    plan.passes = 1;
    if (staged) {
      // Copy A and B in, C out (C starts zero on device; beta folding is
      // done on the host side by SummaGen's accumulation).
      plan.transferred_bytes = kElem * (m * k + k * n + m * n);
      plan.transfer_messages = 3;
    }
    return plan;
  }

  // Candidate search: for each k-depth (k, k/2, k/4, ..., 1) use the
  // largest square m/n tile that fits and keep the tiling with the least
  // traffic. Each candidate's tile grows with memory, so the chosen plan's
  // traffic is monotone non-increasing in the budget.
  auto traffic = [&](std::int64_t tm, std::int64_t tn, std::int64_t tk) {
    const std::int64_t pm = ceil_div(m, tm);
    const std::int64_t pn = ceil_div(n, tn);
    const std::int64_t pk = ceil_div(k, tk);
    // Loop order (im, in, ik): C stays resident across the k loop, so it
    // moves in+out once per (im, in); A and B tiles move every iteration.
    return kElem * (pm * pn * pk * (tm * tk + tk * tn) + 2 * m * n);
  };

  bool found = false;
  std::int64_t best_traffic = 0;
  for (std::int64_t tk = k;; tk = tk / 2) {
    // Largest square t with 8*(2*t*tk + 2*t^2) <= memory:
    //   t = (-tk + sqrt(tk^2 + memory/4)) / 2  (positive root).
    const double mk = static_cast<double>(memory_bytes) /
                      static_cast<double>(kElem);
    const double t_real =
        (-static_cast<double>(tk) +
         std::sqrt(static_cast<double>(tk) * static_cast<double>(tk) + mk)) /
        2.0;
    std::int64_t t = static_cast<std::int64_t>(std::floor(t_real));
    t = std::min<std::int64_t>(t, std::max(m, n));
    if (t >= 1) {
      const std::int64_t tm = std::min(t, m);
      std::int64_t tn = std::min(t, n);
      // Grow the n extent into any slack the m clamp freed up.
      while (tn < n && tile_footprint(tm, tn + 1, tk) <= memory_bytes) {
        ++tn;
      }
      if (tile_footprint(tm, tn, tk) <= memory_bytes) {
        const std::int64_t cand = traffic(tm, tn, tk);
        if (!found || cand < best_traffic) {
          found = true;
          best_traffic = cand;
          plan.tile_m = tm;
          plan.tile_n = tn;
          plan.tile_k = tk;
        }
      }
    }
    if (tk == 1) break;
  }
  if (!found) {
    throw std::invalid_argument(
        "plan_out_of_core: device memory too small for a single row tile");
  }

  const std::int64_t pm = ceil_div(m, plan.tile_m);
  const std::int64_t pn = ceil_div(n, plan.tile_n);
  const std::int64_t pk = ceil_div(k, plan.tile_k);
  plan.passes = static_cast<int>(pm * pn * pk);
  plan.transferred_bytes = best_traffic;
  plan.transfer_messages = pm * pn * (2 * pk + 2);
  return plan;
}

OutOfCorePlan out_of_core_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc, std::int64_t memory_bytes,
                               const blas::GemmOptions& kernel) {
  const OutOfCorePlan plan =
      plan_out_of_core(m, n, k, memory_bytes, /*staged=*/true);
  const std::int64_t tm = plan.tile_m;
  const std::int64_t tn = plan.tile_n;
  const std::int64_t tk = plan.tile_k;

  // One pool task per C tile: tiles own disjoint C blocks and accumulate
  // over k internally (ascending, as before, so results stay bit-identical
  // to the serial stage order). Each task stages through its own buffers —
  // the simulated "device memory" — and its inner dgemm calls land on the
  // same shared pool (TaskGroup::wait helps, so nesting cannot deadlock).
  sgpool::TaskGroup tiles;
  for (std::int64_t i0 = 0; i0 < m; i0 += tm) {
    for (std::int64_t j0 = 0; j0 < n; j0 += tn) {
      tiles.run([=] {
        const std::int64_t mm = std::min(tm, m - i0);
        const std::int64_t nn = std::min(tn, n - j0);
        // The simulated device slabs are leased from the shared buffer
        // pool: after the first tile of each shape, staging allocates
        // nothing. Contents need no zeroing — every cell read below is
        // copied in first.
        auto& pool = util::BufferPool::instance();
        util::PooledBuffer dev_a = pool.acquire(tm * tk);
        util::PooledBuffer dev_b = pool.acquire(tk * tn);
        util::PooledBuffer dev_c = pool.acquire(tm * tn);
        // "Copy C tile to device" (accumulation base).
        util::copy_matrix(dev_c.data(), nn, c + i0 * ldc + j0, ldc, mm, nn);
        for (std::int64_t l0 = 0; l0 < k; l0 += tk) {
          const std::int64_t kk = std::min(tk, k - l0);
          util::copy_matrix(dev_a.data(), kk, a + i0 * lda + l0, lda, mm, kk);
          util::copy_matrix(dev_b.data(), nn, b + l0 * ldb + j0, ldb, kk, nn);
          blas::dgemm(mm, nn, kk, 1.0, dev_a.data(), kk, dev_b.data(), nn,
                      1.0, dev_c.data(), nn, kernel);
        }
        // "Copy C tile back to host".
        util::copy_matrix(c + i0 * ldc + j0, ldc, dev_c.data(), nn, mm, nn);
      });
    }
  }
  tiles.wait();
  return plan;
}

}  // namespace summagen::device

// Platform descriptions: a set of abstract processors plus the node-level
// fabric and power figures.
//
// `hclserver1()` is the reproduction's stand-in for the paper's research
// server (Table I): a dual-socket Haswell CPU, an Nvidia K40c and an Intel
// Xeon Phi 3120P, modelled as three abstract processors. The model is
// calibrated so that
//   * the summed theoretical peak is 2.5 TFLOPs (paper Section I/VI-A);
//   * contended speeds in the paper's "constant" range have relative values
//     ~{1.0, 2.0, 0.9} for {AbsCPU, AbsGPU, AbsXeonPhi} (Section VI-A);
//   * the Phi develops an out-of-core knee near edge ~13.7k and maximal
//     profile variations in [12800, 19200] (Section VI-B);
//   * the combined achievable peak is ~84% of theoretical (Section VI-A).
#pragma once

#include <string>
#include <vector>

#include "src/device/device.hpp"
#include "src/device/speed_function.hpp"
#include "src/trace/hockney.hpp"

namespace summagen::device {

/// A heterogeneous node — or a cluster of them (see `cluster`).
struct Platform {
  std::string name;
  std::vector<DeviceSpec> devices;
  trace::HockneyParams mpi_link;  ///< intra-node fabric between processors
  double static_power_w = 230.0;  ///< paper: measured static power

  /// Multi-node topology: node id per device (empty = single node) and the
  /// network link between nodes. Filled by `cluster()`.
  std::vector<int> node_of;
  trace::HockneyParams internode_link{20.0e-6, 1.0 / 1.0e9};

  int nprocs() const { return static_cast<int>(devices.size()); }

  /// Sum of device theoretical peaks (the paper's 2.5 TFLOPs figure).
  double theoretical_peak_flops() const;

  /// One abstract processor per device, sharing a numeric kernel config.
  std::vector<AbstractProcessor> processors(
      blas::GemmOptions numeric_kernel = {}) const;

  /// Figure-5 style speed functions for every device, sampled at `edges`.
  std::vector<SpeedFunction> profiles(
      const std::vector<double>& edges, bool contended = true,
      Interpolation interp = Interpolation::kPiecewiseLinear) const;

  /// Mean contended speeds over [lo_edge, hi_edge], normalised so the first
  /// device is 1.0 — how the paper derives its CPM speeds {1.0, 2.0, 0.9}.
  std::vector<double> constant_relative_speeds(double lo_edge,
                                               double hi_edge) const;

  /// The reproduction's HCLServer1 (see file comment).
  static Platform hclserver1();

  /// p identical devices of the given speed — for tests and baselines.
  static Platform homogeneous(int p, double flops_per_s = 100.0e9);

  /// Three devices with contended speeds proportional to `speeds` (constant
  /// profiles, no ramps/variations) — for controlled shape studies.
  static Platform synthetic(const std::vector<double>& speeds,
                            double unit_flops = 100.0e9);

  /// `nodes` copies of `node_platform` connected by `internode` — the
  /// paper's future-work scenario ("distributed-memory nodes and large
  /// clusters"). Device names gain a node suffix; static power scales with
  /// the node count.
  static Platform cluster(const Platform& node_platform, int nodes,
                          trace::HockneyParams internode = {20.0e-6,
                                                            1.0 / 1.0e9});
};

}  // namespace summagen::device

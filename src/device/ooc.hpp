// Out-of-core DGEMM engine — substrate for the paper's ZZGemmOOC (GPU) and
// XeonPhiOOC (Phi) packages [27].
//
// An accelerator's kernel must fit device memory; when the (m x k)*(k x n)
// footprint exceeds it, the multiplication is tiled so each tile (A panel +
// B panel + C tile + workspace) fits, with host<->device transfers per tile.
// `plan_out_of_core` produces the transfer plan used by the performance
// model; `out_of_core_gemm` executes the plan numerically (real arithmetic
// through sgblas, with tile staging buffers standing in for device memory).
#pragma once

#include <cstdint>

#include "src/blas/gemm.hpp"

namespace summagen::device {

/// Tiling and traffic of one out-of-core (or staged in-core) DGEMM.
struct OutOfCorePlan {
  std::int64_t tile_m = 0;  ///< tile extents chosen so a tile fits memory
  std::int64_t tile_n = 0;
  std::int64_t tile_k = 0;
  int passes = 1;  ///< number of tiles (1 = fits in core)
  std::int64_t transferred_bytes = 0;  ///< total host<->device traffic
  std::int64_t transfer_messages = 0;  ///< number of DMA transfers
};

/// Plans the tiling for an (m x k)*(k x n) DGEMM against `memory_bytes` of
/// device memory. When `staged` is true (accelerators), traffic includes the
/// initial copy-in of A/B and copy-out of C even if everything fits.
/// Throws std::invalid_argument if memory is too small for any tiling
/// (less than a handful of matrix rows).
OutOfCorePlan plan_out_of_core(std::int64_t m, std::int64_t n, std::int64_t k,
                               std::int64_t memory_bytes, bool staged);

/// Numerically computes C += A*B through the tiled path of
/// `plan_out_of_core(m, n, k, memory_bytes, /*staged=*/true)`.
/// Tiles are copied into staging buffers (the simulated device memory)
/// before each in-core multiplication, exactly as the OOC packages do.
/// C-tile stages run as tasks on the shared sgpool executor (disjoint C
/// blocks; k accumulation stays in order, so results are bit-identical to
/// a serial stage sweep). Returns the plan that was executed.
OutOfCorePlan out_of_core_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc, std::int64_t memory_bytes,
                               const blas::GemmOptions& kernel = {});

}  // namespace summagen::device

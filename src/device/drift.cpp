#include "src/device/drift.hpp"

#include <cmath>

namespace summagen::device {

const char* drift_kind_name(DriftKind kind) {
  switch (kind) {
    case DriftKind::kStep:
      return "step";
    case DriftKind::kRamp:
      return "ramp";
    case DriftKind::kPeriodic:
      return "periodic";
  }
  return "unknown";
}

double drift_event_factor(const DriftEvent& event, double vtime) {
  const double t = vtime - event.at_vtime;
  if (t < 0.0) return 1.0;
  switch (event.kind) {
    case DriftKind::kStep:
      return event.factor;
    case DriftKind::kRamp: {
      if (event.duration_s <= 0.0) return event.factor;
      if (t >= event.duration_s) return event.factor;
      return 1.0 + (event.factor - 1.0) * (t / event.duration_s);
    }
    case DriftKind::kPeriodic: {
      if (event.period_s <= 0.0) return event.factor;
      const double phase = std::fmod(t, event.period_s);
      // Slow half first: the drift is observable immediately at at_vtime.
      return phase < 0.5 * event.period_s ? event.factor : 1.0;
    }
  }
  return 1.0;
}

double drift_factor(const DriftPlan& plan, int rank, double vtime) {
  double factor = 1.0;
  for (const DriftEvent& e : plan.events) {
    if (e.rank != rank) continue;
    factor *= drift_event_factor(e, vtime);
  }
  return factor;
}

}  // namespace summagen::device

#include "src/device/platform.hpp"

#include <stdexcept>

namespace summagen::device {

double Platform::theoretical_peak_flops() const {
  double sum = 0.0;
  for (const auto& d : devices) sum += d.peak_flops;
  return sum;
}

std::vector<AbstractProcessor> Platform::processors(
    blas::GemmOptions numeric_kernel) const {
  std::vector<AbstractProcessor> out;
  out.reserve(devices.size());
  for (const auto& d : devices) out.emplace_back(d, numeric_kernel);
  return out;
}

std::vector<SpeedFunction> Platform::profiles(const std::vector<double>& edges,
                                              bool contended,
                                              Interpolation interp) const {
  std::vector<SpeedFunction> out;
  out.reserve(devices.size());
  for (const auto& ap : processors()) {
    out.push_back(ap.profile(edges, contended, interp));
  }
  return out;
}

std::vector<double> Platform::constant_relative_speeds(double lo_edge,
                                                       double hi_edge) const {
  if (devices.empty()) throw std::logic_error("Platform: no devices");
  std::vector<double> mean_speed;
  const int kSamples = 32;
  for (const auto& ap : processors()) {
    double acc = 0.0;
    for (int i = 0; i <= kSamples; ++i) {
      const double e = lo_edge + (hi_edge - lo_edge) * i / kSamples;
      const auto x = static_cast<std::int64_t>(e);
      const KernelCost cost = ap.kernel_cost(x, x, x, /*contended=*/true);
      acc += static_cast<double>(blas::gemm_flops(x, x, x)) / cost.total_s();
    }
    mean_speed.push_back(acc / (kSamples + 1));
  }
  const double base = mean_speed.front();
  for (double& s : mean_speed) s /= base;
  return mean_speed;
}

Platform Platform::hclserver1() {
  Platform p;
  p.name = "HCLServer1 (simulated)";
  p.static_power_w = 230.0;
  // Intra-node MPI between abstract processors (shared memory transport).
  p.mpi_link = trace::HockneyParams{5.0e-6, 1.0 / 7.0e9};

  DeviceSpec cpu;
  cpu.name = "AbsCPU (Intel Haswell E5-2670V3, 22 cores)";
  cpu.kind = DeviceKind::kMulticoreCpu;
  cpu.peak_flops = 0.65e12;
  cpu.asymptotic_efficiency = 0.922;
  cpu.contention_factor = 0.90;  // shares memory/QPI with the host cores
  cpu.ramp_edge = 256.0;
  cpu.variation_amplitude = 0.08;
  cpu.variation_decays = true;
  cpu.noise_seed = 11;
  cpu.memory_bytes = 64LL << 30;
  cpu.needs_staging = false;
  cpu.dynamic_power_w = 185.0;
  cpu.comm_power_w = 25.0;
  cpu.cores_description = "2 sockets x 12 cores (22 used by the kernel)";
  cpu.memory_description = "64 GB DDR4";
  cpu.bandwidth_description = "68 GB/s";

  DeviceSpec gpu;
  gpu.name = "AbsGPU (Nvidia K40c + host core)";
  gpu.kind = DeviceKind::kGpu;
  gpu.peak_flops = 1.25e12;
  gpu.asymptotic_efficiency = 0.965;
  gpu.contention_factor = 0.96;  // dedicated host core, PCIe mostly isolated
  gpu.ramp_edge = 2048.0;
  gpu.variation_amplitude = 0.10;
  gpu.variation_decays = true;
  gpu.ooc_extra_variation = 0.05;
  gpu.noise_seed = 23;
  gpu.memory_bytes = 12LL << 30;
  gpu.needs_staging = true;
  gpu.pcie = trace::HockneyParams{10.0e-6, 1.0 / 10.0e9};
  gpu.dynamic_power_w = 155.0;
  gpu.comm_power_w = 20.0;
  gpu.cores_description = "2880 CUDA cores";
  gpu.memory_description = "12 GB GDDR5";
  gpu.bandwidth_description = "288 GB/s";

  DeviceSpec phi;
  phi.name = "AbsXeonPhi (Intel Xeon Phi 3120P + host core)";
  phi.kind = DeviceKind::kManycoreCoprocessor;
  phi.peak_flops = 0.60e12;
  phi.asymptotic_efficiency = 0.94;
  phi.contention_factor = 0.94;
  phi.ramp_edge = 1400.0;
  // Paper: smooth up to ~13760, maximal variations for problem sizes in
  // [12800^2, 19200^2], increasing again beyond 13824^2 where out-of-card
  // computation kicks in. The Phi's zone in a 3-processor PMM is ~25% of
  // the matrix, so those problem sizes correspond to zone edges of about
  // [6400, 9600] (edge = sqrt(area) = 0.5 N); the boost window lives in
  // zone-edge coordinates. The OOC knee emerges from memory_bytes below.
  phi.variation_amplitude = 0.02;
  phi.variation_decays = false;
  phi.variation_boost = 0.22;
  phi.variation_lo_edge = 6400.0;
  phi.variation_hi_edge = 9600.0;
  phi.ooc_extra_variation = 0.05;
  phi.ooc_overlap = 0.90;
  phi.noise_seed = 37;
  phi.memory_bytes = 6LL << 30;
  phi.needs_staging = true;
  phi.pcie = trace::HockneyParams{15.0e-6, 1.0 / 6.0e9};
  phi.dynamic_power_w = 145.0;
  phi.comm_power_w = 20.0;
  phi.cores_description = "57 cores";
  phi.memory_description = "6 GB GDDR5";
  phi.bandwidth_description = "240 GB/s";

  p.devices = {cpu, gpu, phi};
  return p;
}

Platform Platform::homogeneous(int nprocs, double flops_per_s) {
  if (nprocs < 1) throw std::invalid_argument("homogeneous: nprocs < 1");
  Platform p;
  p.name = "homogeneous-" + std::to_string(nprocs);
  p.mpi_link = trace::HockneyParams{5.0e-6, 1.0 / 7.0e9};
  for (int i = 0; i < nprocs; ++i) {
    DeviceSpec d;
    d.name = "P" + std::to_string(i);
    d.peak_flops = flops_per_s;
    d.asymptotic_efficiency = 1.0;
    d.contention_factor = 1.0;
    d.ramp_edge = 1e-6;  // effectively no ramp
    d.variation_amplitude = 0.0;
    d.memory_bytes = 1LL << 40;
    d.needs_staging = false;
    p.devices.push_back(d);
  }
  return p;
}

Platform Platform::synthetic(const std::vector<double>& speeds,
                             double unit_flops) {
  if (speeds.empty()) throw std::invalid_argument("synthetic: no speeds");
  Platform p;
  p.name = "synthetic";
  p.mpi_link = trace::HockneyParams{5.0e-6, 1.0 / 7.0e9};
  int i = 0;
  for (double s : speeds) {
    if (s <= 0.0) throw std::invalid_argument("synthetic: non-positive speed");
    DeviceSpec d;
    d.name = "P" + std::to_string(i++);
    d.peak_flops = s * unit_flops;
    d.asymptotic_efficiency = 1.0;
    d.contention_factor = 1.0;
    d.ramp_edge = 1e-6;
    d.variation_amplitude = 0.0;
    d.memory_bytes = 1LL << 40;
    d.needs_staging = false;
    p.devices.push_back(d);
  }
  return p;
}

Platform Platform::cluster(const Platform& node_platform, int nodes,
                           trace::HockneyParams internode) {
  if (nodes < 1) throw std::invalid_argument("cluster: nodes < 1");
  if (node_platform.nprocs() < 1) {
    throw std::invalid_argument("cluster: empty node platform");
  }
  Platform p;
  p.name = node_platform.name + " x" + std::to_string(nodes);
  p.mpi_link = node_platform.mpi_link;
  p.internode_link = internode;
  p.static_power_w = node_platform.static_power_w * nodes;
  for (int node = 0; node < nodes; ++node) {
    for (const DeviceSpec& d : node_platform.devices) {
      DeviceSpec copy = d;
      copy.name += " @node" + std::to_string(node);
      // Distinct noise streams per node so replicated devices do not dip
      // in lockstep.
      copy.noise_seed = d.noise_seed + 101 * static_cast<std::uint64_t>(node);
      p.devices.push_back(std::move(copy));
      p.node_of.push_back(node);
    }
  }
  return p;
}

}  // namespace summagen::device

#include "src/device/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/blas/fastmm.hpp"
#include "src/device/ooc.hpp"
#include "src/util/rng.hpp"

namespace summagen::device {

const char* to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kMulticoreCpu:
      return "multicore CPU";
    case DeviceKind::kGpu:
      return "GPU";
    case DeviceKind::kManycoreCoprocessor:
      return "manycore coprocessor";
  }
  return "?";
}

double variation_multiplier(const DeviceSpec& spec, double edge) {
  if (spec.variation_amplitude <= 0.0 && spec.variation_boost <= 0.0) {
    return 1.0;
  }
  // Base amplitude, optionally decaying with size (paper: "the variations
  // decrease for AbsCPU and AbsGPU as problem size increases").
  double amp = spec.variation_amplitude;
  if (spec.variation_decays) {
    amp *= std::exp(-edge / spec.variation_decay_edge);
  }
  // Boost window (paper: AbsXeonPhi "maximum variations occur for problem
  // sizes in the range [12800^2, 19200^2]").
  if (spec.variation_hi_edge > spec.variation_lo_edge) {
    const double mid =
        0.5 * (spec.variation_lo_edge + spec.variation_hi_edge);
    const double half =
        0.5 * (spec.variation_hi_edge - spec.variation_lo_edge);
    const double d = (edge - mid) / half;
    amp += spec.variation_boost * std::exp(-d * d);
  }
  if (amp <= 0.0) return 1.0;
  // Deterministic, reproducible "noise": hash-seeded phase mixture of
  // incommensurate oscillations, so the profile is non-smooth but replays
  // identically. Strictly within (0, 1].
  const double phase1 =
      static_cast<double>(util::derive_seed(spec.noise_seed, 1) % 10007) /
      10007.0 * 6.283185307;
  const double phase2 =
      static_cast<double>(util::derive_seed(spec.noise_seed, 2) % 10007) /
      10007.0 * 6.283185307;
  const double w = 0.5 * std::sin(edge / 689.0 + phase1) +
                   0.35 * std::sin(edge / 233.0 + phase2) +
                   0.15 * std::sin(edge / 97.0 + phase1 * 1.7);
  const double drop = amp * (0.5 + 0.5 * w);  // in [0, amp]
  return std::clamp(1.0 - drop, 0.05, 1.0);
}

std::int64_t gemm_footprint_bytes(std::int64_t m, std::int64_t n,
                                  std::int64_t k) {
  return static_cast<std::int64_t>(sizeof(double)) *
         (m * k + k * n + 2 * m * n);
}

AbstractProcessor::AbstractProcessor(DeviceSpec spec,
                                     blas::GemmOptions numeric_kernel)
    : spec_(std::move(spec)), numeric_kernel_(numeric_kernel) {
  if (spec_.peak_flops <= 0.0 || spec_.asymptotic_efficiency <= 0.0 ||
      spec_.asymptotic_efficiency > 1.0) {
    throw std::invalid_argument("AbstractProcessor: bad peak/efficiency");
  }
  if (spec_.memory_bytes <= 0) {
    throw std::invalid_argument("AbstractProcessor: non-positive memory");
  }
}

double AbstractProcessor::effective_flops(double edge, bool contended) const {
  if (edge <= 0.0) edge = 1.0;
  // Saturating efficiency ramp: small problems underutilise wide devices.
  const double ramp = 1.0 - std::exp(-edge / spec_.ramp_edge);
  double s = spec_.peak_flops * spec_.asymptotic_efficiency * ramp;
  s *= variation_multiplier(spec_, edge);
  if (contended) s *= spec_.contention_factor;
  return std::max(s, 1.0);
}

KernelCost AbstractProcessor::kernel_cost(std::int64_t m, std::int64_t n,
                                          std::int64_t k,
                                          bool contended) const {
  KernelCost cost;
  if (m <= 0 || n <= 0 || k <= 0) return cost;
  // Work actually executed by the configured kernel: 2mnk classically,
  // less when a fast-MM kind splits (src/blas/fastmm.hpp). With the
  // default classical kernel this is exactly gemm_flops, so every
  // committed virtual-time baseline is unchanged; under --fastmm the
  // partitioners see the modified s(x) shape (profile() still normalises
  // speeds to classical flops, the paper's convention).
  const double flops = blas::fastmm_modeled_flops(m, n, k, numeric_kernel_);
  const double edge = std::cbrt(static_cast<double>(m) *
                                static_cast<double>(n) *
                                static_cast<double>(k));
  cost.compute_s = flops / effective_flops(edge, contended);

  if (spec_.temporal_jitter_sigma > 0.0) {
    // Deterministic per (seed, kernel shape) lognormal factor: hashing the
    // shape keeps a run internally consistent, varying the seed across
    // repetitions produces iid run-to-run noise (Box-Muller on two
    // hash-derived uniforms).
    const std::uint64_t base = util::derive_seed(
        spec_.temporal_jitter_seed,
        static_cast<std::uint64_t>(m) * 1000003ULL +
            static_cast<std::uint64_t>(n) * 1009ULL +
            static_cast<std::uint64_t>(k));
    const double u1 =
        (static_cast<double>(util::derive_seed(base, 1) >> 11) + 0.5) /
        9007199254740992.0;
    const double u2 =
        (static_cast<double>(util::derive_seed(base, 2) >> 11) + 0.5) /
        9007199254740992.0;
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    cost.compute_s *= std::exp(spec_.temporal_jitter_sigma * z);
  }

  const std::int64_t footprint = gemm_footprint_bytes(m, n, k);
  if (spec_.needs_staging || footprint > spec_.memory_bytes) {
    const OutOfCorePlan plan =
        plan_out_of_core(m, n, k, spec_.memory_bytes, spec_.needs_staging);
    cost.transferred_bytes = plan.transferred_bytes;
    cost.ooc_passes = plan.passes;
    // The base staging of A/B in and C out is unavoidable; traffic beyond
    // that comes from out-of-core slab cycling, most of which the OOC
    // engines hide behind computation (double buffering).
    const std::int64_t base_bytes = std::min(
        plan.transferred_bytes,
        static_cast<std::int64_t>(sizeof(double)) * (m * k + k * n + m * n));
    const std::int64_t extra_bytes = plan.transferred_bytes - base_bytes;
    const double exposed =
        static_cast<double>(base_bytes) +
        (1.0 - spec_.ooc_overlap) * static_cast<double>(extra_bytes);
    cost.transfer_s =
        static_cast<double>(plan.transfer_messages) * spec_.pcie.alpha_s +
        exposed * spec_.pcie.beta_s_per_byte;
    if (plan.passes > 1 && spec_.ooc_extra_variation > 0.0) {
      // Out-of-core execution is noisier: add deterministic jitter on top
      // of the in-core variation model.
      const double u =
          0.5 + 0.5 * std::sin(edge / 311.0 +
                               static_cast<double>(spec_.noise_seed));
      cost.compute_s *= 1.0 + spec_.ooc_extra_variation * u;
    }
  }
  return cost;
}

KernelCost AbstractProcessor::run_gemm(std::int64_t m, std::int64_t n,
                                       std::int64_t k, const double* a,
                                       std::int64_t lda, const double* b,
                                       std::int64_t ldb, double* c,
                                       std::int64_t ldc, bool contended,
                                       std::uint64_t b_pack_key) const {
  const KernelCost cost = kernel_cost(m, n, k, contended);
  if (m <= 0 || n <= 0 || k <= 0) return cost;
  if (cost.ooc_passes > 1) {
    // Real out-of-core path: exercises the ZZGemmOOC-style slab engine.
    // Slabs slice B per pass, so the whole-operand pack key does not apply.
    out_of_core_gemm(m, n, k, a, lda, b, ldb, c, ldc, spec_.memory_bytes,
                     numeric_kernel_);
  } else {
    blas::GemmOptions opts = numeric_kernel_;
    opts.b_pack_key = b_pack_key;
    blas::dgemm(m, n, k, 1.0, a, lda, b, ldb, 1.0, c, ldc, opts);
  }
  return cost;
}

SpeedFunction AbstractProcessor::profile(const std::vector<double>& edges,
                                         bool contended,
                                         Interpolation interp) const {
  if (edges.empty()) {
    throw std::invalid_argument("profile: empty edge grid");
  }
  std::vector<SpeedPoint> points;
  points.reserve(edges.size());
  for (double e : edges) {
    const auto x = static_cast<std::int64_t>(std::llround(e));
    if (x <= 0) throw std::invalid_argument("profile: non-positive edge");
    const KernelCost cost = kernel_cost(x, x, x, contended);
    const double flops = static_cast<double>(blas::gemm_flops(x, x, x));
    points.push_back({e, flops / cost.total_s()});
  }
  return SpeedFunction::from_points(std::move(points), interp);
}

}  // namespace summagen::device

// Heterogeneous device models and abstract processors.
//
// The paper's platform (Table I) has three computing devices; each group
// "accelerator + dedicated host core" (or the 22-core CPU partition) is
// modelled as an *abstract processor* whose kernel execution time includes
// host<->device transfers. None of that hardware exists here, so a
// DeviceSpec captures the performance-relevant characteristics — peak flops,
// an in-core efficiency ramp, device memory capacity (out-of-core knee),
// a PCIe staging link, resource-contention degradation, non-smooth profile
// variations, and dynamic power — and the model produces DGEMM times from
// which Figure 5's speed functions are derived.
//
// Numeric execution (tests/examples) really computes with sgblas kernels;
// time always comes from the model, keeping figure shapes hardware-
// independent (DESIGN.md §2, §5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/blas/gemm.hpp"
#include "src/device/speed_function.hpp"
#include "src/trace/hockney.hpp"

namespace summagen::device {

/// Kind of computing device, for reporting only.
enum class DeviceKind { kMulticoreCpu, kGpu, kManycoreCoprocessor };

const char* to_string(DeviceKind kind);

/// Performance-relevant description of one abstract processor's device.
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kMulticoreCpu;

  // --- compute model ---
  double peak_flops = 1.0e12;     ///< theoretical peak (datasheet)
  double asymptotic_efficiency = 0.85;  ///< fraction of peak at large sizes
  double ramp_edge = 512.0;       ///< efficiency ramp constant (small sizes)
  double contention_factor = 0.92;  ///< speed multiplier when co-loaded

  // --- non-smooth FPM character (deterministic pseudo-variations) ---
  double variation_amplitude = 0.05;  ///< base relative amplitude
  double variation_boost = 0.0;       ///< extra amplitude inside boost range
  double variation_lo_edge = 0.0;     ///< boost range lower edge
  double variation_hi_edge = 0.0;     ///< boost range upper edge
  bool variation_decays = true;  ///< CPU/GPU: variations shrink with size
  double variation_decay_edge = 8192.0;  ///< decay length when they do
  std::uint64_t noise_seed = 1;

  // --- memory / staging model ---
  std::int64_t memory_bytes = 16LL << 30;  ///< device (or host) memory
  bool needs_staging = false;  ///< accelerators copy A/B in and C out
  trace::HockneyParams pcie{10.0e-6, 1.0 / 10.0e9};  ///< host<->device link
  /// Fraction of *extra* out-of-core traffic hidden behind computation
  /// (the OOC packages double-buffer slabs); the base staging of A/B/C is
  /// never hidden.
  double ooc_overlap = 0.85;
  /// Additional relative compute jitter once out-of-core (paper: Phi
  /// variations "increase for larger problem sizes where out-of-card
  /// computations are invoked").
  double ooc_extra_variation = 0.0;

  // --- run-to-run measurement noise (off by default) ---
  /// Lognormal sigma of per-kernel compute time across repetitions; the
  /// experiment runner varies `temporal_jitter_seed` per run so the
  /// Student-t repetition driver (paper Section VI methodology) has real
  /// variance to chew on. 0 = deterministic.
  double temporal_jitter_sigma = 0.0;
  std::uint64_t temporal_jitter_seed = 0;

  // --- energy model ---
  double dynamic_power_w = 150.0;  ///< while computing
  double comm_power_w = 20.0;      ///< while communicating / transferring

  // --- reporting (Table I) ---
  std::string cores_description;
  std::string memory_description;
  std::string bandwidth_description;
};

/// Deterministic relative speed multiplier in (0, 1] representing the
/// non-smooth variations real FPM profiles show (paper Fig. 5 discussion).
double variation_multiplier(const DeviceSpec& spec, double edge);

/// Device memory needed by an (m x k)*(k x n) DGEMM including a C-sized
/// accumulation workspace, in bytes.
std::int64_t gemm_footprint_bytes(std::int64_t m, std::int64_t n,
                                  std::int64_t k);

/// Breakdown of a modeled kernel invocation.
struct KernelCost {
  double compute_s = 0.0;   ///< in-core arithmetic time
  double transfer_s = 0.0;  ///< host<->device staging + out-of-core traffic
  std::int64_t transferred_bytes = 0;
  int ooc_passes = 1;  ///< 1 = fits in device memory
  double total_s() const { return compute_s + transfer_s; }
};

/// An abstract processor: one device spec + a numeric kernel.
class AbstractProcessor {
 public:
  AbstractProcessor(DeviceSpec spec, blas::GemmOptions numeric_kernel = {});

  const DeviceSpec& spec() const { return spec_; }

  /// Effective in-core speed (flops/s) for a workload with the given
  /// equivalent square edge; `contended` applies the contention factor
  /// (the paper measures all profiles under full co-load).
  double effective_flops(double edge, bool contended) const;

  /// Modeled cost of an (m x k)*(k x n) DGEMM on this processor, including
  /// staging and out-of-core slab traffic when the footprint exceeds device
  /// memory (the ZZGemmOOC / XeonPhiOOC behaviour).
  KernelCost kernel_cost(std::int64_t m, std::int64_t n, std::int64_t k,
                         bool contended = true) const;

  /// Numerically computes C += A*B with the configured sgblas kernel and
  /// returns the modeled cost. When the footprint exceeds device memory the
  /// computation takes the real out-of-core path (slabbed; see ooc.hpp).
  /// A non-zero `b_pack_key` asserts the B operand's content identity to
  /// the blas pack cache (see GemmOptions::b_pack_key); it applies to the
  /// in-core path only.
  KernelCost run_gemm(std::int64_t m, std::int64_t n, std::int64_t k,
                      const double* a, std::int64_t lda, const double* b,
                      std::int64_t ldb, double* c, std::int64_t ldc,
                      bool contended = true,
                      std::uint64_t b_pack_key = 0) const;

  /// Builds this processor's Figure-5 speed function by sampling the model
  /// at the given edges (speed = 2*edge^3 / modeled time).
  SpeedFunction profile(const std::vector<double>& edges, bool contended = true,
                        Interpolation interp =
                            Interpolation::kPiecewiseLinear) const;

 private:
  DeviceSpec spec_;
  blas::GemmOptions numeric_kernel_;
};

}  // namespace summagen::device

// Time-varying device speed profiles (dynamic load drift).
//
// Production nodes drift away from the static speeds of the paper's CPM/FPM
// models: background load, thermal throttling, tenant interference. A
// DriftPlan schedules deterministic slowdown curves per rank, driven by the
// rank's *virtual* clock — the same plan on the same workload always
// produces the same factor at the same point of the virtual execution, so
// drifting runs stay exactly reproducible.
//
// The plan only scales *modeled* kernel time (the simulated device slows
// down); numeric kernels are untouched, so results remain bit-identical to
// the drift-free run and only the virtual timeline stretches. An empty plan
// is exactly the static model: drift_factor() == 1.0 everywhere.
//
// Three curve kinds (DESIGN.md §5.13):
//   * step     — factor jumps from 1 to `factor` at `at_vtime` and holds
//                (a co-located job starts and stays);
//   * ramp     — factor rises linearly from 1 to `factor` over
//                `duration_s`, then holds (thermal throttle ramping in);
//   * periodic — square wave alternating `factor` and 1 with period
//                `period_s`, slow half first (periodic background work).
#pragma once

#include <vector>

namespace summagen::device {

enum class DriftKind {
  kStep,      ///< jump to `factor` at `at_vtime`, hold forever
  kRamp,      ///< linear 1 -> `factor` over `duration_s`, then hold
  kPeriodic,  ///< square wave: `factor` for period_s/2, then 1, repeating
};

const char* drift_kind_name(DriftKind kind);

/// One scheduled drift curve. `rank` is a world rank; `factor` > 1 slows
/// the device down (compute time multiplies by the factor), < 1 speeds it
/// up. Before `at_vtime` the curve contributes 1.0.
struct DriftEvent {
  DriftKind kind = DriftKind::kStep;
  int rank = 0;
  double at_vtime = 0.0;
  double factor = 2.0;
  double duration_s = 0.0;  ///< kRamp: rise time from 1 to `factor`
  double period_s = 0.0;    ///< kPeriodic: full square-wave period
};

struct DriftPlan {
  std::vector<DriftEvent> events;
  bool empty() const noexcept { return events.empty(); }
};

/// Multiplier applied to `rank`'s modeled compute time at virtual time
/// `vtime`: the product of every matching event's curve value (1.0 when no
/// event matches — in particular for an empty plan). Pure and deterministic.
double drift_factor(const DriftPlan& plan, int rank, double vtime);

/// Curve value of a single event at `vtime` (1.0 before `at_vtime`).
double drift_event_factor(const DriftEvent& event, double vtime);

}  // namespace summagen::device

// Functional performance models (FPMs): speed as a function of problem size.
//
// The paper's Figure 5 plots, for each abstract processor, the speed
// 2*x^3 / t of a square x-by-x DGEMM against x, measured with all abstract
// processors loaded simultaneously. Those discrete profiles are the inputs
// of both partitioning regimes:
//   * CPM  — constant speed functions (Section VI-A, speeds {1.0, 2.0, 0.9});
//   * FPM  — non-smooth functions driving the load-imbalancing partitioner
//            of Khaleghzadeh et al. (Section VI-B).
//
// A SpeedFunction stores discrete (edge, flops/s) samples with a choice of
// interpolation: piecewise linear (FuPerMod model b) or Akima sub-spline
// (FuPerMod model c), plus exact constant functions (model a).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace summagen::device {

/// One sample of a performance profile: a square `edge x edge` DGEMM ran at
/// `flops_per_s` (= 2*edge^3 / measured seconds).
struct SpeedPoint {
  double edge = 0.0;
  double flops_per_s = 0.0;
};

enum class Interpolation { kPiecewiseLinear, kAkima };

/// Discrete speed function with interpolation; immutable after construction.
///
/// Outside the sampled range the profile is clamped to the boundary values
/// (the standard FPM convention — extrapolating performance is unsafe).
class SpeedFunction {
 public:
  /// Constant performance model: same speed at every size.
  static SpeedFunction constant(double flops_per_s);

  /// Builds from samples; they are sorted by edge. Throws on empty input,
  /// duplicate edges, or non-positive speeds.
  static SpeedFunction from_points(std::vector<SpeedPoint> points,
                                   Interpolation interp =
                                       Interpolation::kPiecewiseLinear);

  /// Speed (flops/s) of a square DGEMM with the given edge.
  double flops_at_edge(double edge) const;

  /// True for constant-model functions.
  bool is_constant() const { return points_.size() == 1; }

  const std::vector<SpeedPoint>& points() const { return points_; }
  Interpolation interpolation() const { return interp_; }

  /// Largest relative deviation from the mean speed over [lo, hi] — used to
  /// decide whether a profile is "constant over a range" as in Section VI-A.
  double relative_variation(double lo_edge, double hi_edge) const;

 private:
  SpeedFunction() = default;
  std::vector<SpeedPoint> points_;
  Interpolation interp_ = Interpolation::kPiecewiseLinear;
  // Akima slopes, one per point (computed once at construction).
  std::vector<double> akima_slope_;
};

/// Modeled computation time of a zone of `area` matrix elements inside a
/// PMM of size n: the zone performs 2*area*n flops, at the speed the profile
/// predicts for the equivalent square problem (edge = sqrt(area)).
///
/// This is the paper's A(Z) / s(A(Z)) with the area<->edge mapping made
/// explicit (Section II, "speed functions of processors of areas of zones").
double zone_time(const SpeedFunction& sf, double area, double n);

/// Natural-ish sample grid for building profiles: geometric-ish progression
/// of edges from `lo` to `hi` with `count` samples, snapped to multiples
/// of `step`.
std::vector<double> profile_grid(double lo, double hi, int count,
                                 double step = 64.0);

}  // namespace summagen::device

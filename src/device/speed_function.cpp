#include "src/device/speed_function.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace summagen::device {
namespace {

// Akima 1970 sub-spline slopes. Robust to the non-smooth profiles FPMs
// produce: unlike cubic splines it does not overshoot near sharp kinks,
// which is why FuPerMod offers it as a performance-model option.
std::vector<double> akima_slopes(const std::vector<SpeedPoint>& pts) {
  const std::size_t n = pts.size();
  std::vector<double> slope(n, 0.0);
  if (n == 1) return slope;
  if (n == 2) {
    const double d =
        (pts[1].flops_per_s - pts[0].flops_per_s) / (pts[1].edge - pts[0].edge);
    slope[0] = slope[1] = d;
    return slope;
  }
  // Segment slopes with two phantom segments replicated at each end.
  std::vector<double> m(n + 3, 0.0);
  for (std::size_t i = 0; i < n - 1; ++i) {
    m[i + 2] = (pts[i + 1].flops_per_s - pts[i].flops_per_s) /
               (pts[i + 1].edge - pts[i].edge);
  }
  m[1] = 2.0 * m[2] - m[3];
  m[0] = 2.0 * m[1] - m[2];
  m[n + 1] = 2.0 * m[n] - m[n - 1];
  m[n + 2] = 2.0 * m[n + 1] - m[n];
  for (std::size_t i = 0; i < n; ++i) {
    const double w1 = std::abs(m[i + 3] - m[i + 2]);
    const double w2 = std::abs(m[i + 1] - m[i]);
    if (w1 + w2 == 0.0) {
      slope[i] = 0.5 * (m[i + 1] + m[i + 2]);
    } else {
      slope[i] = (w1 * m[i + 1] + w2 * m[i + 2]) / (w1 + w2);
    }
  }
  return slope;
}

}  // namespace

SpeedFunction SpeedFunction::constant(double flops_per_s) {
  if (flops_per_s <= 0.0) {
    throw std::invalid_argument("SpeedFunction: non-positive constant speed");
  }
  SpeedFunction sf;
  sf.points_ = {{1.0, flops_per_s}};
  return sf;
}

SpeedFunction SpeedFunction::from_points(std::vector<SpeedPoint> points,
                                         Interpolation interp) {
  if (points.empty()) {
    throw std::invalid_argument("SpeedFunction: no sample points");
  }
  std::sort(points.begin(), points.end(),
            [](const SpeedPoint& a, const SpeedPoint& b) {
              return a.edge < b.edge;
            });
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].flops_per_s <= 0.0) {
      throw std::invalid_argument("SpeedFunction: non-positive speed sample");
    }
    if (i > 0 && points[i].edge == points[i - 1].edge) {
      throw std::invalid_argument("SpeedFunction: duplicate edge sample");
    }
  }
  SpeedFunction sf;
  sf.points_ = std::move(points);
  sf.interp_ = interp;
  if (interp == Interpolation::kAkima && sf.points_.size() >= 2) {
    sf.akima_slope_ = akima_slopes(sf.points_);
  }
  return sf;
}

double SpeedFunction::flops_at_edge(double edge) const {
  const auto& p = points_;
  if (p.size() == 1) return p.front().flops_per_s;
  if (edge <= p.front().edge) return p.front().flops_per_s;
  if (edge >= p.back().edge) return p.back().flops_per_s;
  // Find segment i with p[i].edge <= edge < p[i+1].edge.
  const auto it = std::upper_bound(
      p.begin(), p.end(), edge,
      [](double e, const SpeedPoint& sp) { return e < sp.edge; });
  const std::size_t hi = static_cast<std::size_t>(it - p.begin());
  const std::size_t lo = hi - 1;
  const double h = p[hi].edge - p[lo].edge;
  const double t = (edge - p[lo].edge) / h;

  if (interp_ == Interpolation::kPiecewiseLinear || akima_slope_.empty()) {
    return p[lo].flops_per_s + t * (p[hi].flops_per_s - p[lo].flops_per_s);
  }
  // Cubic Hermite with Akima slopes.
  const double y0 = p[lo].flops_per_s;
  const double y1 = p[hi].flops_per_s;
  const double d0 = akima_slope_[lo] * h;
  const double d1 = akima_slope_[hi] * h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double v = (2 * t3 - 3 * t2 + 1) * y0 + (t3 - 2 * t2 + t) * d0 +
                   (-2 * t3 + 3 * t2) * y1 + (t3 - t2) * d1;
  // A speed can never be negative; Akima may undershoot near cliffs.
  return std::max(v, 1.0);
}

double SpeedFunction::relative_variation(double lo_edge, double hi_edge) const {
  if (hi_edge < lo_edge) std::swap(lo_edge, hi_edge);
  double lo = flops_at_edge(lo_edge);
  double hi = lo;
  double sum = 0.0;
  int count = 0;
  // Sample the interpolated profile plus the knots in range.
  const int kSamples = 64;
  for (int i = 0; i <= kSamples; ++i) {
    const double e = lo_edge + (hi_edge - lo_edge) * i / kSamples;
    const double s = flops_at_edge(e);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
    sum += s;
    ++count;
  }
  for (const auto& pt : points_) {
    if (pt.edge >= lo_edge && pt.edge <= hi_edge) {
      lo = std::min(lo, pt.flops_per_s);
      hi = std::max(hi, pt.flops_per_s);
      sum += pt.flops_per_s;
      ++count;
    }
  }
  const double meanv = sum / count;
  return std::max(hi - meanv, meanv - lo) / meanv;
}

double zone_time(const SpeedFunction& sf, double area, double n) {
  if (area < 0.0 || n <= 0.0) {
    throw std::invalid_argument("zone_time: bad area or n");
  }
  if (area == 0.0) return 0.0;
  const double flops = 2.0 * area * n;
  return flops / sf.flops_at_edge(std::sqrt(area));
}

std::vector<double> profile_grid(double lo, double hi, int count,
                                 double step) {
  if (count < 2 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("profile_grid: bad arguments");
  }
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(count));
  const double ratio = std::pow(hi / lo, 1.0 / (count - 1));
  double x = lo;
  for (int i = 0; i < count; ++i, x *= ratio) {
    double snapped = std::round(x / step) * step;
    snapped = std::max(snapped, step);
    if (grid.empty() || snapped > grid.back()) grid.push_back(snapped);
  }
  const double hi_snapped = std::max(step, std::round(hi / step) * step);
  if (hi_snapped > grid.back()) grid.push_back(hi_snapped);
  return grid;
}

}  // namespace summagen::device

// SSE2 4x4 microkernel (baseline x86-64 ISA, no extra target flags needed;
// kept in its own TU for symmetry with the AVX2 tier and so CMake can pin
// -ffp-contract=off on it).
//
// Uses separately rounded mulpd + addpd, i.e. exactly the scalar tier's
// per-element operation sequence in two-lane batches — the SSE2 tier is
// bitwise equal to the scalar tier (asserted by tests/blas/gemm_tail_test).

#include "src/blas/microkernel.hpp"

#ifdef SUMMAGEN_HAVE_SSE2_KERNEL

#include <emmintrin.h>

namespace summagen::blas::detail {

void micro_kernel_sse2_4x4(const double* pa_quad, const double* pb_panel,
                           std::int64_t kc, std::int64_t rows,
                           std::int64_t cols, bool first_block, double beta,
                           double* c, std::int64_t ldc) {
  constexpr std::int64_t kMr = 4;
  constexpr std::int64_t kNr = 4;
  __m128d acc[kMr][2];
  alignas(16) double tile[kMr * kNr];
  const bool full = rows == kMr && cols == kNr;
  if (first_block && beta == 0.0) {
    for (int r = 0; r < kMr; ++r) {
      acc[r][0] = _mm_setzero_pd();
      acc[r][1] = _mm_setzero_pd();
    }
  } else if (full) {
    // beta*cur is exact for beta == 1 (1.0*x == x bitwise, NaN included),
    // so the first-block multiply needs no special case.
    const __m128d bv = _mm_set1_pd(beta);
    for (int r = 0; r < kMr; ++r) {
      __m128d lo = _mm_loadu_pd(c + r * ldc);
      __m128d hi = _mm_loadu_pd(c + r * ldc + 2);
      acc[r][0] = first_block ? _mm_mul_pd(bv, lo) : lo;
      acc[r][1] = first_block ? _mm_mul_pd(bv, hi) : hi;
    }
  } else {
    // Fringe tile: stage the valid C region (zeros elsewhere) and run the
    // same vector loop — the packed operands are zero-padded, so padding
    // lanes accumulate only zeros and the valid lanes see the identical
    // operation sequence as a full tile.
    for (int r = 0; r < kMr; ++r) {
      for (int cix = 0; cix < kNr; ++cix) {
        double v = 0.0;
        if (r < rows && cix < cols) {
          const double cur = c[r * ldc + cix];
          v = first_block ? beta * cur : cur;
        }
        tile[r * kNr + cix] = v;
      }
    }
    for (int r = 0; r < kMr; ++r) {
      acc[r][0] = _mm_load_pd(tile + r * kNr);
      acc[r][1] = _mm_load_pd(tile + r * kNr + 2);
    }
  }

  for (std::int64_t l = 0; l < kc; ++l) {
    const double* pa_l = pa_quad + l * kMr;
    const __m128d b0 = _mm_loadu_pd(pb_panel + l * kNr);
    const __m128d b1 = _mm_loadu_pd(pb_panel + l * kNr + 2);
    for (int r = 0; r < kMr; ++r) {
      const __m128d av = _mm_set1_pd(pa_l[r]);
      acc[r][0] = _mm_add_pd(acc[r][0], _mm_mul_pd(av, b0));
      acc[r][1] = _mm_add_pd(acc[r][1], _mm_mul_pd(av, b1));
    }
  }

  if (full) {
    for (int r = 0; r < kMr; ++r) {
      _mm_storeu_pd(c + r * ldc, acc[r][0]);
      _mm_storeu_pd(c + r * ldc + 2, acc[r][1]);
    }
  } else {
    for (int r = 0; r < kMr; ++r) {
      _mm_store_pd(tile + r * kNr, acc[r][0]);
      _mm_store_pd(tile + r * kNr + 2, acc[r][1]);
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t cix = 0; cix < cols; ++cix) {
        c[r * ldc + cix] = tile[r * kNr + cix];
      }
    }
  }
}

}  // namespace summagen::blas::detail

#endif  // SUMMAGEN_HAVE_SSE2_KERNEL

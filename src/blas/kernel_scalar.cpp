// Portable 4x8 microkernel — the pre-dispatch kPacked kernel verbatim.
//
// Compiled with -ffp-contract=off (see src/blas/CMakeLists.txt), so the
// multiply and add stay separately rounded even under -march=native; this
// is what keeps the scalar tier bit-identical across build flag sets and
// bitwise equal to the SSE2 tier (same per-element operation sequence).

#include "src/blas/microkernel.hpp"

namespace summagen::blas::detail {

void micro_kernel_scalar_4x8(const double* pa_quad, const double* pb_panel,
                             std::int64_t kc, std::int64_t rows,
                             std::int64_t cols, bool first_block, double beta,
                             double* c, std::int64_t ldc) {
  constexpr std::int64_t kMr = 4;
  constexpr std::int64_t kNr = 8;
  double acc[kMr][kNr];
  for (std::int64_t r = 0; r < kMr; ++r) {
    for (std::int64_t cix = 0; cix < kNr; ++cix) {
      if (r < rows && cix < cols) {
        const double cur = c[r * ldc + cix];
        acc[r][cix] = first_block ? (beta == 0.0 ? 0.0 : beta * cur) : cur;
      } else {
        acc[r][cix] = 0.0;
      }
    }
  }
  for (std::int64_t l = 0; l < kc; ++l) {
    const double* pa_l = pa_quad + l * kMr;
    const double* pb_l = pb_panel + l * kNr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const double av = pa_l[r];
      for (std::int64_t cix = 0; cix < kNr; ++cix) {
        acc[r][cix] += av * pb_l[cix];
      }
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t cix = 0; cix < cols; ++cix) {
      c[r * ldc + cix] = acc[r][cix];
    }
  }
}

}  // namespace summagen::blas::detail

// Process-wide cache of packed-B panel blocks, shared across dgemm calls.
//
// SUMMA-family schedules multiply the *same* B panel many times: in SUMMA
// on a pr x 1 grid every rank's WB holds identical contents each k-step,
// and in SummaGen every sub-partition in spec column bj multiplies the
// same WB column slice. Packing B into NR-column panels is O(k*n) work and
// memory traffic per dgemm call; this cache packs each (operand, jc, pc)
// block once per run and hands every later caller the finished panels.
//
// Keying is caller-asserted content identity: a caller that passes
// GemmOptions::b_pack_key != 0 promises that any two dgemm calls using the
// same key present bit-identical B operands (same k, n and element
// values). The core schedulers build keys from pack_tag() over
// (runtime uid, geometric coordinates) — see summa.cpp / summagen.cpp —
// so keys never collide across runs (the uid is unique per sgmpi Context)
// and never alias different panels within a run. Correctness does not
// depend on *who* packs: contents are identical by the caller's contract,
// so numeric results stay bit-identical regardless of thread arrival
// order.
//
// Storage is leased from util::BufferPool, so evicted or trimmed entries
// return to the pool's freelists and the next run's packs are pool hits,
// not heap allocations (tests/core/alloc_test.cpp keeps holding). An LRU
// byte budget (SUMMAGEN_PACK_CACHE_MB, default 64 MiB) bounds residency;
// the shared compute pool invokes trim() at every reconfigure boundary
// (run start), dropping the previous run's stale entries.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>

namespace summagen::blas {

/// Order-sensitive 64-bit mix for building b_pack_key tags from the
/// coordinates that identify identical B contents. Never returns 0
/// (0 disables caching in GemmOptions).
std::uint64_t pack_tag(std::initializer_list<std::uint64_t> parts);

/// Identity of one packed block: the caller's content tag plus the block
/// coordinates and packing layout inside that operand.
struct PackKey {
  std::uint64_t tag = 0;  ///< GemmOptions::b_pack_key (content identity)
  std::int64_t jc = 0;    ///< column-block offset within the operand
  std::int64_t pc = 0;    ///< k-block offset within the operand
  std::int64_t nr = 0;    ///< packed panel width (layout discriminator)
  bool operator==(const PackKey&) const = default;
};

class PackCache {
 public:
  struct Entry;

  /// RAII lease keeping one packed block alive (shared; copyable moves of
  /// the underlying shared_ptr). data() is valid until destruction even if
  /// the entry is concurrently evicted from the cache index.
  class Lease {
   public:
    Lease() = default;
    const double* data() const;
    explicit operator bool() const { return entry_ != nullptr; }

   private:
    friend class PackCache;
    std::shared_ptr<Entry> entry_;
  };

  static PackCache& instance();

  /// Returns a lease on the packed block for `key` (`doubles` elements).
  /// On a miss the calling thread packs via `pack(dst)`; concurrent
  /// callers of the same key wait for the packer instead of re-packing.
  /// Lookups are counted in util::DataPlaneStats (pack_lookups/pack_hits).
  Lease lease(const PackKey& key, std::int64_t doubles,
              const std::function<void(double*)>& pack);

  /// Drops every entry not currently leased, returning its storage to the
  /// BufferPool. Invoked by sgpool::Pool reconfiguration (run boundaries).
  void trim();

  std::int64_t resident_bytes() const;
  std::int64_t budget_bytes() const;
  void set_budget_bytes(std::int64_t bytes);

 private:
  PackCache();

  void evict_to_budget_locked();

  mutable std::mutex mu_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace summagen::blas

#include "src/blas/gemm.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

namespace summagen::blas {
namespace {

void scale_c(std::int64_t m, std::int64_t n, double beta, double* c,
             std::int64_t ldc) {
  if (beta == 1.0) return;
  for (std::int64_t i = 0; i < m; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += a[i * lda + l] * b[l * ldb + j];
      }
      c[i * ldc + j] += alpha * acc;
    }
  }
}

// ikj-ordered cache-blocked kernel: the innermost loop streams a row of B
// and a row of C, which vectorises well on row-major storage.
void gemm_blocked_rows(std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t n, std::int64_t k, double alpha,
                       const double* a, std::int64_t lda, const double* b,
                       std::int64_t ldb, double* c, std::int64_t ldc,
                       std::int64_t blk) {
  for (std::int64_t i0 = row_begin; i0 < row_end; i0 += blk) {
    const std::int64_t i1 = std::min(i0 + blk, row_end);
    for (std::int64_t l0 = 0; l0 < k; l0 += blk) {
      const std::int64_t l1 = std::min(l0 + blk, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += blk) {
        const std::int64_t j1 = std::min(j0 + blk, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t l = l0; l < l1; ++l) {
            const double av = alpha * a[i * lda + l];
            const double* brow = b + l * ldb;
            double* crow = c + i * ldc;
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, const double* b,
           std::int64_t ldb, double beta, double* c, std::int64_t ldc,
           const GemmOptions& opts) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("dgemm: negative dimension");
  }
  if (lda < std::max<std::int64_t>(1, k) ||
      ldb < std::max<std::int64_t>(1, n) ||
      ldc < std::max<std::int64_t>(1, n)) {
    throw std::invalid_argument("dgemm: leading dimension too small");
  }
  if (m == 0 || n == 0) return;
  scale_c(m, n, beta, c, ldc);
  if (k == 0 || alpha == 0.0) return;

  switch (opts.kernel) {
    case GemmKernel::kNaive:
      gemm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      return;
    case GemmKernel::kBlocked:
      gemm_blocked_rows(0, m, n, k, alpha, a, lda, b, ldb, c, ldc,
                        std::max<std::int64_t>(8, opts.block));
      return;
    case GemmKernel::kThreaded: {
      const int want = std::max(1, opts.threads);
      const int nthreads = static_cast<int>(
          std::min<std::int64_t>(want, std::max<std::int64_t>(1, m)));
      if (nthreads == 1) {
        gemm_blocked_rows(0, m, n, k, alpha, a, lda, b, ldb, c, ldc,
                          std::max<std::int64_t>(8, opts.block));
        return;
      }
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(nthreads));
      const std::int64_t chunk = (m + nthreads - 1) / nthreads;
      for (int t = 0; t < nthreads; ++t) {
        const std::int64_t r0 = t * chunk;
        const std::int64_t r1 = std::min(m, r0 + chunk);
        if (r0 >= r1) break;
        workers.emplace_back([=] {
          gemm_blocked_rows(r0, r1, n, k, alpha, a, lda, b, ldb, c, ldc,
                            std::max<std::int64_t>(8, opts.block));
        });
      }
      for (auto& w : workers) w.join();
      return;
    }
  }
  throw std::logic_error("dgemm: unknown kernel");
}

util::Matrix multiply(const util::Matrix& a, const util::Matrix& b,
                      const GemmOptions& opts) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: inner dimensions differ");
  }
  util::Matrix c(a.rows(), b.cols());
  dgemm(a.rows(), b.cols(), a.cols(), 1.0, a.data(), a.cols(), b.data(),
        b.cols(), 0.0, c.data(), c.cols(), opts);
  return c;
}

}  // namespace summagen::blas

#include "src/blas/gemm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/pool/pool.hpp"
#include "src/util/buffer_pool.hpp"

namespace summagen::blas {
namespace {

// Scales rows [row_begin, row_end) of C by beta (zero-fill when beta == 0,
// so prior NaNs are overwritten). Runs inside pool tasks for the parallel
// kernels; the full-matrix serial prepass only survives on kNaive/kBlocked.
void scale_rows(std::int64_t row_begin, std::int64_t row_end, std::int64_t n,
                double beta, double* c, std::int64_t ldc) {
  if (beta == 1.0) return;
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += a[i * lda + l] * b[l * ldb + j];
      }
      c[i * ldc + j] += alpha * acc;
    }
  }
}

// ikj-ordered cache-blocked kernel: the innermost loop streams a row of B
// and a row of C, which vectorises well on row-major storage.
void gemm_blocked_rows(std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t n, std::int64_t k, double alpha,
                       const double* a, std::int64_t lda, const double* b,
                       std::int64_t ldb, double* c, std::int64_t ldc,
                       std::int64_t blk) {
  for (std::int64_t i0 = row_begin; i0 < row_end; i0 += blk) {
    const std::int64_t i1 = std::min(i0 + blk, row_end);
    for (std::int64_t l0 = 0; l0 < k; l0 += blk) {
      const std::int64_t l1 = std::min(l0 + blk, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += blk) {
        const std::int64_t j1 = std::min(j0 + blk, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t l = l0; l < l1; ++l) {
            const double av = alpha * a[i * lda + l];
            const double* brow = b + l * ldb;
            double* crow = c + i * ldc;
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kPacked: BLIS-lineage packed kernel ("Anatomy of High-Performance Matrix
// Multiplication" shape). The k dimension is processed in KC-deep blocks;
// per block, B is packed once into NR-column panels (contiguous, shared by
// all row bands) and each row band packs its alpha-folded A rows into
// MR-row quads, then a register-tiled MR x NR microkernel accumulates.
//
// Bit-identity with kBlocked/kThreaded: every C element's value is the
// chain  beta*c, then += (alpha*a[i][l]) * b[l][j] for l ascending — the
// packed layout and register accumulators change where operands live, not
// the operation sequence (stores/loads of doubles are exact).
// ---------------------------------------------------------------------------

constexpr std::int64_t kMr = 4;    ///< microkernel rows
constexpr std::int64_t kNr = 8;    ///< microkernel cols
constexpr std::int64_t kKc = 256;  ///< k-block depth (A quad: 8 KiB/row set)

// Packs rows [row_begin, row_end) of alpha*A, k-slice [l0, l0+kc), into
// MR-row quads: quad q holds interleaved rows at [q*kc*MR + l*MR + r].
// Rows past row_end are zero (the microkernel discards those lanes).
void pack_a_band(const double* a, std::int64_t lda, double alpha,
                 std::int64_t row_begin, std::int64_t row_end,
                 std::int64_t l0, std::int64_t kc, double* pa) {
  const std::int64_t quads = (row_end - row_begin + kMr - 1) / kMr;
  for (std::int64_t q = 0; q < quads; ++q) {
    double* quad = pa + q * kc * kMr;
    for (std::int64_t l = 0; l < kc; ++l) {
      for (std::int64_t r = 0; r < kMr; ++r) {
        const std::int64_t i = row_begin + q * kMr + r;
        quad[l * kMr + r] =
            i < row_end ? alpha * a[i * lda + (l0 + l)] : 0.0;
      }
    }
  }
}

// Packs the k-slice [l0, l0+kc) of B into NR-column panels: panel p holds
// columns [p*NR, p*NR+NR) at [p*kc*NR + l*NR + c], zero-padded past n.
void pack_b_panels(const double* b, std::int64_t ldb, std::int64_t n,
                   std::int64_t l0, std::int64_t kc,
                   std::int64_t panel_begin, std::int64_t panel_end,
                   double* pb) {
  for (std::int64_t p = panel_begin; p < panel_end; ++p) {
    double* panel = pb + p * kc * kNr;
    const std::int64_t j0 = p * kNr;
    const std::int64_t w = std::min(kNr, n - j0);
    for (std::int64_t l = 0; l < kc; ++l) {
      const double* brow = b + (l0 + l) * ldb + j0;
      double* prow = panel + l * kNr;
      for (std::int64_t cix = 0; cix < w; ++cix) prow[cix] = brow[cix];
      for (std::int64_t cix = w; cix < kNr; ++cix) prow[cix] = 0.0;
    }
  }
}

// MR x NR register-tiled microkernel over one packed A quad and one packed
// B panel. `first_block` fuses the beta pass into the accumulator init, so
// beta == 0 never reads C (satisfies overwrite-NaN semantics) and no
// separate zero-fill pass over C exists at all.
void micro_kernel(const double* pa_quad, const double* pb_panel,
                  std::int64_t kc, std::int64_t rows, std::int64_t cols,
                  bool first_block, double beta, double* c,
                  std::int64_t ldc) {
  double acc[kMr][kNr];
  for (std::int64_t r = 0; r < kMr; ++r) {
    for (std::int64_t cix = 0; cix < kNr; ++cix) {
      if (r < rows && cix < cols) {
        const double cur = c[r * ldc + cix];
        acc[r][cix] = first_block ? (beta == 0.0 ? 0.0 : beta * cur) : cur;
      } else {
        acc[r][cix] = 0.0;
      }
    }
  }
  for (std::int64_t l = 0; l < kc; ++l) {
    const double* pa_l = pa_quad + l * kMr;
    const double* pb_l = pb_panel + l * kNr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const double av = pa_l[r];
      for (std::int64_t cix = 0; cix < kNr; ++cix) {
        acc[r][cix] += av * pb_l[cix];
      }
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t cix = 0; cix < cols; ++cix) {
      c[r * ldc + cix] = acc[r][cix];
    }
  }
}

// One row band's share of one k-block: pack the band's A rows, then sweep
// quads x panels of microkernels. Runs as a pool task; the A scratch is
// leased from the shared buffer pool per band (steady state: a freelist
// pop), so worker threads retain no high-water-mark storage between calls
// the way the previous thread_local vector did.
void packed_band(const double* a, std::int64_t lda, double alpha,
                 std::int64_t row_begin, std::int64_t row_end,
                 std::int64_t l0, std::int64_t kc, const double* pb,
                 std::int64_t n, bool first_block, double beta, double* c,
                 std::int64_t ldc) {
  const std::int64_t quads = (row_end - row_begin + kMr - 1) / kMr;
  util::PooledBuffer pa =
      util::BufferPool::instance().acquire(quads * kc * kMr);
  pack_a_band(a, lda, alpha, row_begin, row_end, l0, kc, pa.data());
  const std::int64_t panels = (n + kNr - 1) / kNr;
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::int64_t i = row_begin + q * kMr;
    const std::int64_t rows = std::min(kMr, row_end - i);
    for (std::int64_t p = 0; p < panels; ++p) {
      const std::int64_t j = p * kNr;
      micro_kernel(pa.data() + q * kc * kMr, pb + p * kc * kNr, kc, rows,
                   std::min(kNr, n - j), first_block, beta,
                   c + i * ldc + j, ldc);
    }
  }
}

void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                 const double* a, std::int64_t lda, const double* b,
                 std::int64_t ldb, double beta, double* c, std::int64_t ldc,
                 int width) {
  const std::int64_t panels = (n + kNr - 1) / kNr;
  const std::int64_t quads = (m + kMr - 1) / kMr;
  util::PooledBuffer pb =
      util::BufferPool::instance().acquire(panels * kKc * kNr);
  // Row bands are quad-aligned; the split depends only on (m, width), so
  // results are independent of which worker runs which band.
  const std::int64_t band_quads =
      std::max<std::int64_t>(1, (quads + width - 1) / width);
  for (std::int64_t l0 = 0; l0 < k; l0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - l0);
    const bool first_block = l0 == 0;
    if (width <= 1) {
      pack_b_panels(b, ldb, n, l0, kc, 0, panels, pb.data());
      packed_band(a, lda, alpha, 0, m, l0, kc, pb.data(), n, first_block,
                  beta, c, ldc);
      continue;
    }
    sgpool::parallel_for(
        0, panels, std::max<std::int64_t>(1, (panels + width - 1) / width),
        [&](std::int64_t p0, std::int64_t p1) {
          pack_b_panels(b, ldb, n, l0, kc, p0, p1, pb.data());
        });
    sgpool::TaskGroup group;
    for (std::int64_t q0 = 0; q0 < quads; q0 += band_quads) {
      const std::int64_t r0 = q0 * kMr;
      const std::int64_t r1 = std::min(m, (q0 + band_quads) * kMr);
      group.run([=, &pb] {
        packed_band(a, lda, alpha, r0, r1, l0, kc, pb.data(), n, first_block,
                    beta, c, ldc);
      });
    }
    group.wait();
  }
}

}  // namespace

int resolve_gemm_threads(int threads) {
  if (threads <= 0) {
    // Auto: the shared pool's workers plus the calling thread, which helps
    // execute its own tasks while waiting.
    return sgpool::Pool::instance().size() + 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = static_cast<int>(hw == 0 ? 1 : hw);
  return std::clamp(threads, 1, cap);
}

void dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, const double* b,
           std::int64_t ldb, double beta, double* c, std::int64_t ldc,
           const GemmOptions& opts) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("dgemm: negative dimension");
  }
  if (lda < std::max<std::int64_t>(1, k) ||
      ldb < std::max<std::int64_t>(1, n) ||
      ldc < std::max<std::int64_t>(1, n)) {
    throw std::invalid_argument("dgemm: leading dimension too small");
  }
  if (m == 0 || n == 0) return;

  const bool pooled = opts.kernel == GemmKernel::kThreaded ||
                      opts.kernel == GemmKernel::kPacked;
  if (k == 0 || alpha == 0.0) {
    // Pure C-scaling call: still worth the pool on the parallel kernels.
    if (pooled && m > 1) {
      const int width = resolve_gemm_threads(opts.threads);
      sgpool::parallel_for(
          0, m, std::max<std::int64_t>(1, (m + width - 1) / width),
          [&](std::int64_t r0, std::int64_t r1) {
            scale_rows(r0, r1, n, beta, c, ldc);
          });
    } else {
      scale_rows(0, m, n, beta, c, ldc);
    }
    return;
  }

  switch (opts.kernel) {
    case GemmKernel::kNaive:
      scale_rows(0, m, n, beta, c, ldc);
      gemm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      return;
    case GemmKernel::kBlocked:
      scale_rows(0, m, n, beta, c, ldc);
      gemm_blocked_rows(0, m, n, k, alpha, a, lda, b, ldb, c, ldc,
                        std::max<std::int64_t>(8, opts.block));
      return;
    case GemmKernel::kThreaded: {
      const int want = resolve_gemm_threads(opts.threads);
      const int width = static_cast<int>(
          std::min<std::int64_t>(want, std::max<std::int64_t>(1, m)));
      const std::int64_t blk = std::max<std::int64_t>(8, opts.block);
      if (width == 1) {
        scale_rows(0, m, n, beta, c, ldc);
        gemm_blocked_rows(0, m, n, k, alpha, a, lda, b, ldb, c, ldc, blk);
        return;
      }
      // Row-band tasks on the shared pool; the beta pass is fused into
      // each band (one parallel touch of C instead of a serial prepass).
      const std::int64_t chunk = (m + width - 1) / width;
      sgpool::TaskGroup group;
      for (int t = 0; t < width; ++t) {
        const std::int64_t r0 = t * chunk;
        const std::int64_t r1 = std::min(m, r0 + chunk);
        if (r0 >= r1) break;
        group.run([=] {
          scale_rows(r0, r1, n, beta, c, ldc);
          gemm_blocked_rows(r0, r1, n, k, alpha, a, lda, b, ldb, c, ldc,
                            blk);
        });
      }
      group.wait();
      return;
    }
    case GemmKernel::kPacked: {
      const int want = resolve_gemm_threads(opts.threads);
      const int width = static_cast<int>(
          std::min<std::int64_t>(want, (m + kMr - 1) / kMr));
      gemm_packed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, width);
      return;
    }
  }
  throw std::logic_error("dgemm: unknown kernel");
}

void dgemm(double alpha, util::ConstMatrixView a, util::ConstMatrixView b,
           double beta, util::MatrixView c, const GemmOptions& opts) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("dgemm: inner dimensions differ (A is " +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()) + ", B is " +
                                std::to_string(b.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
  }
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("dgemm: C shape differs from A*B");
  }
  if (util::views_overlap(c, a) || util::views_overlap(c, b)) {
    throw std::invalid_argument("dgemm: C aliases an input view");
  }
  dgemm(a.rows(), b.cols(), a.cols(), alpha, a.data(),
        std::max<std::int64_t>(1, a.ld()), b.data(),
        std::max<std::int64_t>(1, b.ld()), beta, c.data(),
        std::max<std::int64_t>(1, c.ld()), opts);
}

util::Matrix multiply(const util::Matrix& a, const util::Matrix& b,
                      const GemmOptions& opts) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: inner dimensions differ");
  }
  util::Matrix c(a.rows(), b.cols());
  dgemm(a.rows(), b.cols(), a.cols(), 1.0, a.data(), a.cols(), b.data(),
        b.cols(), 0.0, c.data(), c.cols(), opts);
  return c;
}

}  // namespace summagen::blas

#include "src/blas/gemm.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/blas/fastmm.hpp"
#include "src/blas/microkernel.hpp"
#include "src/blas/pack_cache.hpp"
#include "src/blas/tune.hpp"
#include "src/pool/pool.hpp"
#include "src/util/buffer_pool.hpp"

namespace summagen::blas {
namespace {

// Scales rows [row_begin, row_end) of C by beta (zero-fill when beta == 0,
// so prior NaNs are overwritten). Runs inside pool tasks for the parallel
// kernels; the full-matrix serial prepass only survives on kNaive/kBlocked.
void scale_rows(std::int64_t row_begin, std::int64_t row_end, std::int64_t n,
                double beta, double* c, std::int64_t ldc) {
  if (beta == 1.0) return;
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    double* row = c + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

void gemm_naive(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                const double* a, std::int64_t lda, const double* b,
                std::int64_t ldb, double* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t l = 0; l < k; ++l) {
        acc += a[i * lda + l] * b[l * ldb + j];
      }
      c[i * ldc + j] += alpha * acc;
    }
  }
}

// ikj-ordered cache-blocked kernel: the innermost loop streams a row of B
// and a row of C, which vectorises well on row-major storage.
void gemm_blocked_rows(std::int64_t row_begin, std::int64_t row_end,
                       std::int64_t n, std::int64_t k, double alpha,
                       const double* a, std::int64_t lda, const double* b,
                       std::int64_t ldb, double* c, std::int64_t ldc,
                       std::int64_t blk) {
  for (std::int64_t i0 = row_begin; i0 < row_end; i0 += blk) {
    const std::int64_t i1 = std::min(i0 + blk, row_end);
    for (std::int64_t l0 = 0; l0 < k; l0 += blk) {
      const std::int64_t l1 = std::min(l0 + blk, k);
      for (std::int64_t j0 = 0; j0 < n; j0 += blk) {
        const std::int64_t j1 = std::min(j0 + blk, n);
        for (std::int64_t i = i0; i < i1; ++i) {
          for (std::int64_t l = l0; l < l1; ++l) {
            const double av = alpha * a[i * lda + l];
            const double* brow = b + l * ldb;
            double* crow = c + i * ldc;
            for (std::int64_t j = j0; j < j1; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kPacked: full five-loop BLIS blocking ("Anatomy of High-Performance
// Matrix Multiplication" shape):
//
//   jc over NC columns of B      — packed-B block resident in L3
//     pc over KC depth           — one packed block per (jc, pc)
//       ic over MC rows of A     — alpha-folded A band resident in L2
//         jr over NR panels, ir over MR quads
//           -> register-tiled MR x NR microkernel
//
// The microkernel (MR/NR shape and instruction set) is chosen at runtime
// by CPUID among AVX2+FMA 6x8 / SSE2 4x4 / scalar 4x8 (src/blas/simd.hpp);
// MC/NC/KC come from GemmOptions overrides, the persisted tune cache, or
// per-tier defaults (src/blas/tune.hpp).
//
// Bit-identity: every C element's value is the chain  beta*c, then
// += (alpha*a[i][l]) * b[l][j] for l ascending — packing, blocking and the
// band split change where operands live and which worker computes what,
// never the per-element operation sequence (stores/loads of doubles
// between k-blocks are exact). Hence any MC/NC/KC and any thread width
// give the same bits for a given tier, the scalar tier reproduces the
// pre-dispatch kPacked exactly, and only the AVX2 tier (fused
// multiply-add, one rounding) differs across tiers.
//
// When GemmOptions::b_pack_key != 0 the packed-B blocks are leased from
// the process-wide PackCache keyed by (key, jc, pc, NR), so SUMMA-family
// callers that multiply the same B panel repeatedly pack it once.
// ---------------------------------------------------------------------------

// Packs rows [row_begin, row_end) of alpha*A, k-slice [l0, l0+kc), into
// MR-row quads: quad q holds interleaved rows at [q*kc*MR + l*MR + r].
// Rows past row_end are zero (the microkernel discards those lanes).
void pack_a_band(const double* a, std::int64_t lda, double alpha,
                 std::int64_t row_begin, std::int64_t row_end,
                 std::int64_t l0, std::int64_t kc, std::int64_t mr,
                 double* pa) {
  const std::int64_t quads = (row_end - row_begin + mr - 1) / mr;
  for (std::int64_t q = 0; q < quads; ++q) {
    double* quad = pa + q * kc * mr;
    for (std::int64_t l = 0; l < kc; ++l) {
      for (std::int64_t r = 0; r < mr; ++r) {
        const std::int64_t i = row_begin + q * mr + r;
        quad[l * mr + r] =
            i < row_end ? alpha * a[i * lda + (l0 + l)] : 0.0;
      }
    }
  }
}

// Packs columns [col0, col0+ncols) of B, k-slice [l0, l0+kc), into
// NR-column panels: panel p holds columns [col0+p*NR, ...) at
// [p*kc*NR + l*NR + c], zero-padded past the block edge.
void pack_b_panels(const double* b, std::int64_t ldb, std::int64_t col0,
                   std::int64_t ncols, std::int64_t l0, std::int64_t kc,
                   std::int64_t nr, std::int64_t panel_begin,
                   std::int64_t panel_end, double* pb) {
  for (std::int64_t p = panel_begin; p < panel_end; ++p) {
    double* panel = pb + p * kc * nr;
    const std::int64_t j0 = p * nr;
    const std::int64_t w = std::min(nr, ncols - j0);
    for (std::int64_t l = 0; l < kc; ++l) {
      const double* brow = b + (l0 + l) * ldb + col0 + j0;
      double* prow = panel + l * nr;
      for (std::int64_t cix = 0; cix < w; ++cix) prow[cix] = brow[cix];
      for (std::int64_t cix = w; cix < nr; ++cix) prow[cix] = 0.0;
    }
  }
}

// One row band's share of one (jc, pc) block: pack the band's A rows, then
// sweep quads x panels of microkernels over C[band, col0:col0+ncols]. Runs
// as a pool task; the A scratch is leased from the shared buffer pool per
// band (steady state: a freelist pop).
void packed_band(const double* a, std::int64_t lda, double alpha,
                 std::int64_t row_begin, std::int64_t row_end,
                 std::int64_t l0, std::int64_t kc, const double* pb,
                 std::int64_t col0, std::int64_t ncols, bool first_block,
                 double beta, double* c, std::int64_t ldc,
                 const detail::MicroKernel& mk) {
  const std::int64_t quads = (row_end - row_begin + mk.mr - 1) / mk.mr;
  util::PooledBuffer pa =
      util::BufferPool::instance().acquire(quads * kc * mk.mr);
  pack_a_band(a, lda, alpha, row_begin, row_end, l0, kc, mk.mr, pa.data());
  const std::int64_t panels = (ncols + mk.nr - 1) / mk.nr;
  for (std::int64_t q = 0; q < quads; ++q) {
    const std::int64_t i = row_begin + q * mk.mr;
    const std::int64_t rows = std::min(mk.mr, row_end - i);
    for (std::int64_t p = 0; p < panels; ++p) {
      const std::int64_t j = p * mk.nr;
      mk.fn(pa.data() + q * kc * mk.mr, pb + p * kc * mk.nr, kc, rows,
            std::min(mk.nr, ncols - j), first_block, beta,
            c + i * ldc + col0 + j, ldc);
    }
  }
}

void gemm_packed(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                 const double* a, std::int64_t lda, const double* b,
                 std::int64_t ldb, double beta, double* c, std::int64_t ldc,
                 int width, const detail::MicroKernel& mk,
                 const BlockSizes& bs, std::uint64_t pack_key) {
  const std::int64_t quads = (m + mk.mr - 1) / mk.mr;
  // Row bands are quad-aligned and capped at MC rows; the split depends
  // only on (m, width, MC, MR), so results are independent of which worker
  // runs which band.
  const std::int64_t mc_quads =
      std::max<std::int64_t>(1, bs.mc / mk.mr);
  const std::int64_t band_quads =
      width <= 1 ? mc_quads
                 : std::min(mc_quads, std::max<std::int64_t>(
                                          1, (quads + width - 1) / width));
  for (std::int64_t jc = 0; jc < n; jc += bs.nc) {
    const std::int64_t nc = std::min(bs.nc, n - jc);
    const std::int64_t panels = (nc + mk.nr - 1) / mk.nr;
    for (std::int64_t l0 = 0; l0 < k; l0 += bs.kc) {
      const std::int64_t kc = std::min(bs.kc, k - l0);
      const bool first_block = l0 == 0;

      // Packed-B block for (jc, l0): leased from the shared pack cache
      // when the caller tagged the operand, otherwise packed privately.
      PackCache::Lease cached;
      util::PooledBuffer local;
      const double* pb = nullptr;
      if (pack_key != 0) {
        cached = PackCache::instance().lease(
            PackKey{pack_key, jc, l0, mk.nr}, panels * kc * mk.nr,
            [&](double* dst) {
              pack_b_panels(b, ldb, jc, nc, l0, kc, mk.nr, 0, panels, dst);
            });
        pb = cached.data();
      } else {
        local = util::BufferPool::instance().acquire(panels * kc * mk.nr);
        if (width <= 1) {
          pack_b_panels(b, ldb, jc, nc, l0, kc, mk.nr, 0, panels,
                        local.data());
        } else {
          sgpool::parallel_for(
              0, panels,
              std::max<std::int64_t>(1, (panels + width - 1) / width),
              [&](std::int64_t p0, std::int64_t p1) {
                pack_b_panels(b, ldb, jc, nc, l0, kc, mk.nr, p0, p1,
                              local.data());
              });
        }
        pb = local.data();
      }

      if (width <= 1) {
        for (std::int64_t q0 = 0; q0 < quads; q0 += band_quads) {
          const std::int64_t r0 = q0 * mk.mr;
          const std::int64_t r1 =
              std::min(m, (q0 + band_quads) * mk.mr);
          packed_band(a, lda, alpha, r0, r1, l0, kc, pb, jc, nc,
                      first_block, beta, c, ldc, mk);
        }
        continue;
      }
      sgpool::TaskGroup group;
      for (std::int64_t q0 = 0; q0 < quads; q0 += band_quads) {
        const std::int64_t r0 = q0 * mk.mr;
        const std::int64_t r1 = std::min(m, (q0 + band_quads) * mk.mr);
        group.run([=, &mk] {
          packed_band(a, lda, alpha, r0, r1, l0, kc, pb, jc, nc,
                      first_block, beta, c, ldc, mk);
        });
      }
      group.wait();
    }
  }
}

}  // namespace

int resolve_gemm_threads(int threads) {
  if (threads <= 0) {
    // Auto: the shared pool's workers plus the calling thread, which helps
    // execute its own tasks while waiting.
    return sgpool::Pool::instance().size() + 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  const int cap = static_cast<int>(hw == 0 ? 1 : hw);
  return std::clamp(threads, 1, cap);
}

void dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, const double* b,
           std::int64_t ldb, double beta, double* c, std::int64_t ldc,
           const GemmOptions& opts) {
  if (m < 0 || n < 0 || k < 0) {
    throw std::invalid_argument("dgemm: negative dimension");
  }
  if (lda < std::max<std::int64_t>(1, k) ||
      ldb < std::max<std::int64_t>(1, n) ||
      ldc < std::max<std::int64_t>(1, n)) {
    throw std::invalid_argument("dgemm: leading dimension too small");
  }
  if ((opts.kernel == GemmKernel::kBlocked ||
       opts.kernel == GemmKernel::kThreaded) &&
      opts.block <= 0) {
    throw std::invalid_argument("dgemm: block must be positive, got " +
                                std::to_string(opts.block));
  }
  if (opts.mc < 0 || opts.nc < 0 || opts.kc < 0) {
    throw std::invalid_argument(
        "dgemm: mc/nc/kc must be non-negative (0 = auto)");
  }
  if (opts.fastmm_crossover < 0) {
    throw std::invalid_argument(
        "dgemm: fastmm_crossover must be non-negative (0 = auto)");
  }
  if (opts.fastmm_max_depth < 0) {
    throw std::invalid_argument("dgemm: fastmm_max_depth must be >= 0");
  }
  if (m == 0 || n == 0) return;

  const bool pooled = opts.kernel == GemmKernel::kThreaded ||
                      opts.kernel == GemmKernel::kPacked;
  if (k == 0 || alpha == 0.0) {
    // Pure C-scaling call: still worth the pool on the parallel kernels.
    if (pooled && m > 1) {
      const int width = resolve_gemm_threads(opts.threads);
      sgpool::parallel_for(
          0, m, std::max<std::int64_t>(1, (m + width - 1) / width),
          [&](std::int64_t r0, std::int64_t r1) {
            scale_rows(r0, r1, n, beta, c, ldc);
          });
    } else {
      scale_rows(0, m, n, beta, c, ldc);
    }
    return;
  }

  if (opts.fastmm != FastMmKind::kClassical) {
    // Strassen-family layer (src/blas/fastmm.hpp): recurses over block
    // algorithms and re-enters dgemm with fastmm cleared for the leaves
    // and the peeled fringe strips.
    detail::fastmm_dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, opts);
    return;
  }

  switch (opts.kernel) {
    case GemmKernel::kNaive:
      scale_rows(0, m, n, beta, c, ldc);
      gemm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
      return;
    case GemmKernel::kBlocked:
      scale_rows(0, m, n, beta, c, ldc);
      gemm_blocked_rows(0, m, n, k, alpha, a, lda, b, ldb, c, ldc,
                        std::max<std::int64_t>(8, opts.block));
      return;
    case GemmKernel::kThreaded: {
      const int want = resolve_gemm_threads(opts.threads);
      const int width = static_cast<int>(
          std::min<std::int64_t>(want, std::max<std::int64_t>(1, m)));
      const std::int64_t blk = std::max<std::int64_t>(8, opts.block);
      if (width == 1) {
        scale_rows(0, m, n, beta, c, ldc);
        gemm_blocked_rows(0, m, n, k, alpha, a, lda, b, ldb, c, ldc, blk);
        return;
      }
      // Row-band tasks on the shared pool; the beta pass is fused into
      // each band (one parallel touch of C instead of a serial prepass).
      const std::int64_t chunk = (m + width - 1) / width;
      sgpool::TaskGroup group;
      for (int t = 0; t < width; ++t) {
        const std::int64_t r0 = t * chunk;
        const std::int64_t r1 = std::min(m, r0 + chunk);
        if (r0 >= r1) break;
        group.run([=] {
          scale_rows(r0, r1, n, beta, c, ldc);
          gemm_blocked_rows(r0, r1, n, k, alpha, a, lda, b, ldb, c, ldc,
                            blk);
        });
      }
      group.wait();
      return;
    }
    case GemmKernel::kPacked: {
      const SimdTier tier = resolve_simd_tier(opts.tier);
      const detail::MicroKernel mk = detail::microkernel_for(tier);
      const BlockSizes bs = resolve_block_sizes(opts, tier);
      const int want = resolve_gemm_threads(opts.threads);
      const int width = static_cast<int>(
          std::min<std::int64_t>(want, (m + mk.mr - 1) / mk.mr));
      gemm_packed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, width, mk,
                  bs, opts.b_pack_key);
      return;
    }
  }
  throw std::logic_error("dgemm: unknown kernel");
}

void dgemm(double alpha, util::ConstMatrixView a, util::ConstMatrixView b,
           double beta, util::MatrixView c, const GemmOptions& opts) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("dgemm: inner dimensions differ (A is " +
                                std::to_string(a.rows()) + "x" +
                                std::to_string(a.cols()) + ", B is " +
                                std::to_string(b.rows()) + "x" +
                                std::to_string(b.cols()) + ")");
  }
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("dgemm: C shape differs from A*B");
  }
  if (util::views_overlap(c, a) || util::views_overlap(c, b)) {
    throw std::invalid_argument("dgemm: C aliases an input view");
  }
  dgemm(a.rows(), b.cols(), a.cols(), alpha, a.data(),
        std::max<std::int64_t>(1, a.ld()), b.data(),
        std::max<std::int64_t>(1, b.ld()), beta, c.data(),
        std::max<std::int64_t>(1, c.ld()), opts);
}

util::Matrix multiply(const util::Matrix& a, const util::Matrix& b,
                      const GemmOptions& opts) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: inner dimensions differ");
  }
  util::Matrix c(a.rows(), b.cols());
  dgemm(a.rows(), b.cols(), a.cols(), 1.0, a.data(), a.cols(), b.data(),
        b.cols(), 0.0, c.data(), c.cols(), opts);
  return c;
}

}  // namespace summagen::blas

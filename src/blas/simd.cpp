#include "src/blas/simd.hpp"

#include <cstdlib>
#include <stdexcept>

#include "src/blas/microkernel.hpp"

namespace summagen::blas {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
bool cpu_supports_avx2_fma() {
  static const bool ok =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return ok;
}
#endif

}  // namespace

bool force_scalar_requested() {
  const char* env = std::getenv("SUMMAGEN_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

bool simd_tier_compiled(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kSse2:
#ifdef SUMMAGEN_HAVE_SSE2_KERNEL
      return true;
#else
      return false;
#endif
    case SimdTier::kAvx2:
#ifdef SUMMAGEN_HAVE_AVX2_KERNEL
      return true;
#else
      return false;
#endif
    case SimdTier::kAuto:
      return false;
  }
  return false;
}

bool simd_tier_available(SimdTier tier) {
  if (tier == SimdTier::kScalar) return true;
  if (!simd_tier_compiled(tier) || force_scalar_requested()) return false;
#if defined(__x86_64__) || defined(_M_X64)
  switch (tier) {
    case SimdTier::kSse2:
      return true;  // baseline x86-64 ISA
    case SimdTier::kAvx2:
      return cpu_supports_avx2_fma();
    default:
      return false;
  }
#else
  return false;
#endif
}

SimdTier best_simd_tier() {
  if (simd_tier_available(SimdTier::kAvx2)) return SimdTier::kAvx2;
  if (simd_tier_available(SimdTier::kSse2)) return SimdTier::kSse2;
  return SimdTier::kScalar;
}

SimdTier resolve_simd_tier(SimdTier requested) {
  if (requested == SimdTier::kAuto) return best_simd_tier();
  if (!simd_tier_available(requested)) {
    throw std::invalid_argument(
        std::string("dgemm: SIMD tier '") + simd_tier_name(requested) +
        "' is not available on this host" +
        (force_scalar_requested() ? " (SUMMAGEN_FORCE_SCALAR is set)" : ""));
  }
  return requested;
}

const char* simd_tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAuto:
      return "auto";
  }
  return "?";
}

SimdTier parse_simd_tier(const std::string& name) {
  if (name == "scalar") return SimdTier::kScalar;
  if (name == "sse2") return SimdTier::kSse2;
  if (name == "avx2") return SimdTier::kAvx2;
  if (name == "auto") return SimdTier::kAuto;
  throw std::invalid_argument("unknown SIMD tier '" + name +
                              "' (expected auto|scalar|sse2|avx2)");
}

namespace detail {

MicroKernel microkernel_for(SimdTier tier) {
  switch (tier) {
#ifdef SUMMAGEN_HAVE_AVX2_KERNEL
    case SimdTier::kAvx2:
      return {6, 8, &micro_kernel_avx2_6x8, "avx2_6x8"};
#endif
#ifdef SUMMAGEN_HAVE_SSE2_KERNEL
    case SimdTier::kSse2:
      return {4, 4, &micro_kernel_sse2_4x4, "sse2_4x4"};
#endif
    default:
      return {4, 8, &micro_kernel_scalar_4x8, "scalar_4x8"};
  }
}

}  // namespace detail
}  // namespace summagen::blas

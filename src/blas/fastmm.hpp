// Strassen-family fast matrix multiplication atop the tuned SIMD kernels.
//
// "A Framework for Practical Parallel Fast Matrix Multiplication" (Benson &
// Ballard) shows Strassen-like algorithms beating classical DGEMM at
// practical sizes once a good classical microkernel exists — which the
// CPUID-dispatched packed kernel (DESIGN.md §5.11) provides. Each algorithm
// here is a <mt,kt,nt;R> bilinear scheme stored as data-driven U/V/W
// integer coefficient tables: A is split into an mt x kt block grid, B into
// kt x nt, C into mt x nt, and for r = 0..R-1
//
//   S_r = sum_i U[r][i] * A_i        (block linear combination)
//   T_r = sum_j V[r][j] * B_j
//   M_r = S_r * T_r                  (recursive product)
//   C_i = beta*C_i + alpha * sum_r W[i][r] * M_r
//
// with R < mt*kt*nt block products — the source of the speedup. Shipping
// algorithms:
//
//   <2,2,2;7>  — classical Strassen;
//   <2,2,3;11> — rectangular-friendly variant (Strassen on the first two
//                block columns of B direct-summed with a classical third
//                block column; 11 products match the known rank of the
//                <2,2,3> tensor).
//
// Tables are validated algebraically by the Brent triple-product equations
// (tests/blas/fastmm_test.cpp), so a wrong coefficient cannot ship.
//
// Recursion bottoms out at the classical packed kernel once any sub-block
// dimension would fall below the (tuned, persisted) crossover or the depth
// cap is hit. Odd and fringe dimensions are handled by dynamic peeling:
// the largest block-divisible core runs fast, the k/m/n fringe strips run
// classical — arbitrary (m, n, k), including SUMMA's non-square panel
// products, are legal. All temporaries (S/T combination buffers and the R
// quadrant products M_r) are leased from the process-wide BufferPool and
// recorded under the distinct fastmm counters, so warm runs stay ~0-alloc
// and the accounting gate covers fast runs.
//
// Accuracy contract: fast MM is legitimately NOT bit-identical to the
// classical kernels — the reassociated accumulation grows the error by a
// bounded factor per recursion level. Results satisfy
//
//   ||C_fast - C_classical||_F <= fastmm_error_budget(k, depth)
//                                 * eps * ||A||_F * ||B||_F
//
// and remain run-to-run bit-identical per SIMD tier (fixed combination
// orders, deterministic leaves), so reproducibility still holds. Paths that
// demand bit-determinism across re-executions (fault recovery, online
// re-partitioning) refuse fast MM (src/core/runner.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "src/blas/gemm.hpp"

namespace summagen::blas {

/// One <mt,kt,nt;R> bilinear algorithm as integer coefficient tables.
/// Block indices are row-major: A_i at (i / kt, i % kt), B_j at
/// (j / nt, j % nt), C_i at (i / nt, i % nt).
struct FastMmAlgorithm {
  const char* name = "";  ///< "<2,2,2;7>" style display name
  int mt = 0;             ///< block rows of A and C
  int kt = 0;             ///< block cols of A == block rows of B
  int nt = 0;             ///< block cols of B and C
  int rank = 0;           ///< R, the number of block products
  const signed char* u = nullptr;  ///< rank x (mt*kt) row-major
  const signed char* v = nullptr;  ///< rank x (kt*nt) row-major
  const signed char* w = nullptr;  ///< (mt*nt) x rank row-major
};

/// Classical Strassen <2,2,2;7>.
const FastMmAlgorithm& strassen_algorithm();

/// Rectangular-friendly <2,2,3;11>.
const FastMmAlgorithm& s223_algorithm();

/// All built-in algorithms (test inventory; Brent validation sweeps this).
std::vector<const FastMmAlgorithm*> fastmm_algorithms();

/// Verifies the Brent triple-product equations for `alg`: for every
/// (i,p) x (p',j) x (i',j') the contraction sum_r U[r][ip] V[r][p'j]
/// W[i'j'][r] equals [i==i'][p==p'][j==j']. True iff the table is an exact
/// bilinear matrix-multiplication algorithm.
bool verify_brent_equations(const FastMmAlgorithm& alg);

/// Built-in crossover when neither GemmOptions nor the tune cache provide
/// one: sub-blocks below this edge multiply classically.
std::int64_t default_fastmm_crossover();

/// Crossover for one call: a positive GemmOptions::fastmm_crossover wins,
/// else the tuned cache entry for this CPU + the call's resolved tier, else
/// default_fastmm_crossover().
std::int64_t resolve_fastmm_crossover(const GemmOptions& opts);

/// Norm-wise error budget factor f: the fast result satisfies
/// ||C_fast - C_classical||_F <= f * eps * ||A||_F * ||B||_F where `depth`
/// is the deepest fast split applied. Grows ~6x per level (each level's
/// combinations can amplify the leaf bound by the table's coefficient
/// mass); the leading k term is the classical accumulation-length bound
/// shared by both operands of the comparison.
double fastmm_error_budget(std::int64_t k, int depth);

/// Deepest fast split choose_fastmm can reach for this call — the `depth`
/// to feed fastmm_error_budget when bounding a whole multiplication.
int fastmm_max_reachable_depth(std::int64_t m, std::int64_t n, std::int64_t k,
                               const GemmOptions& opts);

/// Modeled flop count of one fast-MM DGEMM: leaf multiplications (2mnk
/// each) plus one flop per linear-combination coefficient application plus
/// the classical fringe strips. Equals 2mnk when the call resolves to
/// classical. The device model uses this to derive a fast-MM-aware speed
/// function s(x) for the partitioners.
double fastmm_modeled_flops(std::int64_t m, std::int64_t n, std::int64_t k,
                            const GemmOptions& opts);

namespace detail {

/// The algorithm one recursion step uses for an (m x k) * (k x n) product
/// at `depth`, or nullptr for classical. Pure function of its arguments —
/// run-to-run determinism of fast runs rests on this.
const FastMmAlgorithm* choose_fastmm(std::int64_t m, std::int64_t n,
                                     std::int64_t k, FastMmKind kind,
                                     std::int64_t crossover, int depth,
                                     int max_depth);

/// Entry point used by dgemm() when opts.fastmm != kClassical: recursive
/// fast multiplication with dynamic peeling, pooled temporaries, and leaf
/// calls on the classical kernel configured by `opts` (with fastmm
/// cleared). Preconditions are dgemm's; m, n, k >= 1.
void fastmm_dgemm(std::int64_t m, std::int64_t n, std::int64_t k,
                  double alpha, const double* a, std::int64_t lda,
                  const double* b, std::int64_t ldb, double beta, double* c,
                  std::int64_t ldc, const GemmOptions& opts);

}  // namespace detail

}  // namespace summagen::blas

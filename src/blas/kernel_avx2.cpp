// AVX2+FMA 6x8 microkernel — the BLIS Haswell 8x6 register block
// transposed to row-major storage: 6 packed-A rows broadcast against two
// 4-wide packed-B vectors, 12 ymm accumulators + 2 B vectors + 1 broadcast
// = 15 of 16 architectural registers.
//
// This TU is compiled with -mavx2 -mfma (CMake probes the flags and only
// adds the file when they are accepted); the entry point must only be
// reached after __builtin_cpu_supports confirms AVX2+FMA, which
// simd_tier_available / resolve_simd_tier guarantee.
//
// FMA fuses multiply and add into one rounding, so this tier's results
// legitimately differ in low-order bits from the scalar/SSE2 tiers — but
// the per-element l-ascending chain is preserved, so the tier is
// deterministic and bit-identical run-to-run for any MC/NC/KC blocking.

#include "src/blas/microkernel.hpp"

#ifdef SUMMAGEN_HAVE_AVX2_KERNEL

#include <immintrin.h>

namespace summagen::blas::detail {

void micro_kernel_avx2_6x8(const double* pa_quad, const double* pb_panel,
                           std::int64_t kc, std::int64_t rows,
                           std::int64_t cols, bool first_block, double beta,
                           double* c, std::int64_t ldc) {
  constexpr std::int64_t kMr = 6;
  constexpr std::int64_t kNr = 8;
  __m256d acc0[kMr];  // columns 0..3 of each row
  __m256d acc1[kMr];  // columns 4..7
  alignas(32) double tile[kMr * kNr];
  const bool full = rows == kMr && cols == kNr;
  if (first_block && beta == 0.0) {
    for (int r = 0; r < kMr; ++r) {
      acc0[r] = _mm256_setzero_pd();
      acc1[r] = _mm256_setzero_pd();
    }
  } else if (full) {
    // beta*cur is exact for beta == 1, so no special case for the common
    // accumulate call.
    const __m256d bv = _mm256_set1_pd(beta);
    for (int r = 0; r < kMr; ++r) {
      const __m256d lo = _mm256_loadu_pd(c + r * ldc);
      const __m256d hi = _mm256_loadu_pd(c + r * ldc + 4);
      acc0[r] = first_block ? _mm256_mul_pd(bv, lo) : lo;
      acc1[r] = first_block ? _mm256_mul_pd(bv, hi) : hi;
    }
  } else {
    // Fringe: stage valid C into an aligned tile (zeros elsewhere) and run
    // the full-tile loop — packed operands are zero-padded, so padding
    // lanes never contribute to a valid element.
    for (int r = 0; r < kMr; ++r) {
      for (int cix = 0; cix < kNr; ++cix) {
        double v = 0.0;
        if (r < rows && cix < cols) {
          const double cur = c[r * ldc + cix];
          v = first_block ? beta * cur : cur;
        }
        tile[r * kNr + cix] = v;
      }
    }
    for (int r = 0; r < kMr; ++r) {
      acc0[r] = _mm256_load_pd(tile + r * kNr);
      acc1[r] = _mm256_load_pd(tile + r * kNr + 4);
    }
  }

  for (std::int64_t l = 0; l < kc; ++l) {
    const double* pa_l = pa_quad + l * kMr;
    const __m256d b0 = _mm256_loadu_pd(pb_panel + l * kNr);
    const __m256d b1 = _mm256_loadu_pd(pb_panel + l * kNr + 4);
    for (int r = 0; r < kMr; ++r) {
      const __m256d av = _mm256_broadcast_sd(pa_l + r);
      acc0[r] = _mm256_fmadd_pd(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_pd(av, b1, acc1[r]);
    }
  }

  if (full) {
    for (int r = 0; r < kMr; ++r) {
      _mm256_storeu_pd(c + r * ldc, acc0[r]);
      _mm256_storeu_pd(c + r * ldc + 4, acc1[r]);
    }
  } else {
    for (int r = 0; r < kMr; ++r) {
      _mm256_store_pd(tile + r * kNr, acc0[r]);
      _mm256_store_pd(tile + r * kNr + 4, acc1[r]);
    }
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t cix = 0; cix < cols; ++cix) {
        c[r * ldc + cix] = tile[r * kNr + cix];
      }
    }
  }
}

}  // namespace summagen::blas::detail

#endif  // SUMMAGEN_HAVE_AVX2_KERNEL

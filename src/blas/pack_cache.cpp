#include "src/blas/pack_cache.hpp"

#include <condition_variable>
#include <cstdlib>
#include <unordered_map>

#include "src/pool/pool.hpp"
#include "src/util/accounting.hpp"
#include "src/util/buffer_pool.hpp"

namespace summagen::blas {
namespace {

std::uint64_t splitmix64(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  return v ^ (v >> 31);
}

std::int64_t default_budget_bytes() {
  if (const char* env = std::getenv("SUMMAGEN_PACK_CACHE_MB")) {
    const long mb = std::strtol(env, nullptr, 10);
    if (mb >= 0) return static_cast<std::int64_t>(mb) << 20;
  }
  return 64ll << 20;
}

struct PackKeyHash {
  std::size_t operator()(const PackKey& k) const {
    std::uint64_t h = splitmix64(k.tag);
    h = splitmix64(h ^ static_cast<std::uint64_t>(k.jc));
    h = splitmix64(h ^ static_cast<std::uint64_t>(k.pc));
    h = splitmix64(h ^ static_cast<std::uint64_t>(k.nr));
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

std::uint64_t pack_tag(std::initializer_list<std::uint64_t> parts) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t v : parts) h = splitmix64(h ^ splitmix64(v));
  return h == 0 ? 1 : h;
}

struct PackCache::Entry {
  util::PooledBuffer buf;
  std::int64_t doubles = 0;
  bool ready = false;
  bool failed = false;
  std::uint64_t lru = 0;
};

const double* PackCache::Lease::data() const {
  return entry_ == nullptr ? nullptr : entry_->buf.data();
}

struct PackCache::Impl {
  std::unordered_map<PackKey, std::shared_ptr<Entry>, PackKeyHash> map;
  std::condition_variable cv;
  std::uint64_t tick = 0;
  std::int64_t resident = 0;
  std::int64_t budget = default_budget_bytes();
};

PackCache::PackCache() : impl_(std::make_unique<Impl>()) {
  // Drop the previous run's entries whenever the compute pool is
  // reconfigured — the experiment runner's per-run quiescent point — so
  // their buffers are back on the BufferPool freelists before the run's
  // allocation-accounting window opens.
  sgpool::Pool::add_quiescent_hook([] { PackCache::instance().trim(); });
}

PackCache& PackCache::instance() {
  static PackCache cache;
  return cache;
}

PackCache::Lease PackCache::lease(const PackKey& key, std::int64_t doubles,
                                  const std::function<void(double*)>& pack) {
  std::shared_ptr<Entry> e;
  bool packer = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = impl_->map.find(key);
    if (it != impl_->map.end() && it->second->doubles == doubles &&
        !it->second->failed) {
      e = it->second;
      e->lru = ++impl_->tick;
      util::record_pack_lookup(true);
      impl_->cv.wait(lk, [&] { return e->ready || e->failed; });
    } else {
      e = std::make_shared<Entry>();
      e->doubles = doubles;
      impl_->map[key] = e;
      packer = true;
      util::record_pack_lookup(false);
    }
  }
  if (packer) {
    try {
      e->buf = util::BufferPool::instance().acquire(doubles);
      pack(e->buf.data());
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        e->failed = true;
        auto it = impl_->map.find(key);
        if (it != impl_->map.end() && it->second == e) impl_->map.erase(it);
      }
      impl_->cv.notify_all();
      throw;
    }
    std::lock_guard<std::mutex> lk(mu_);
    e->ready = true;
    e->lru = ++impl_->tick;
    impl_->resident += doubles * static_cast<std::int64_t>(sizeof(double));
    evict_to_budget_locked();
    impl_->cv.notify_all();
  } else if (e->failed) {
    // The packer died (allocation failure mid-run); pack privately so this
    // caller still makes progress, without re-inserting the key.
    auto priv = std::make_shared<Entry>();
    priv->doubles = doubles;
    priv->buf = util::BufferPool::instance().acquire(doubles);
    pack(priv->buf.data());
    priv->ready = true;
    e = std::move(priv);
  }
  Lease lease;
  lease.entry_ = std::move(e);
  return lease;
}

void PackCache::evict_to_budget_locked() {
  while (impl_->resident > impl_->budget) {
    auto victim = impl_->map.end();
    for (auto it = impl_->map.begin(); it != impl_->map.end(); ++it) {
      if (!it->second->ready || it->second.use_count() > 1) continue;
      if (victim == impl_->map.end() || it->second->lru < victim->second->lru)
        victim = it;
    }
    if (victim == impl_->map.end()) return;  // everything is in use
    impl_->resident -=
        victim->second->doubles * static_cast<std::int64_t>(sizeof(double));
    impl_->map.erase(victim);
  }
}

void PackCache::trim() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = impl_->map.begin(); it != impl_->map.end();) {
    if (it->second->ready && it->second.use_count() == 1) {
      impl_->resident -=
          it->second->doubles * static_cast<std::int64_t>(sizeof(double));
      it = impl_->map.erase(it);
    } else {
      ++it;
    }
  }
}

std::int64_t PackCache::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return impl_->resident;
}

std::int64_t PackCache::budget_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return impl_->budget;
}

void PackCache::set_budget_bytes(std::int64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  impl_->budget = bytes < 0 ? 0 : bytes;
  evict_to_budget_locked();
}

}  // namespace summagen::blas

// Internal microkernel registry of the packed DGEMM path.
//
// Every microkernel computes one MR x NR register tile of
//   C := acc_init(op) + sum_l alpha*A[:,l] (*) B[l,:]
// over one packed A quad (kc x MR, row-interleaved, alpha folded in) and
// one packed B panel (kc x NR, zero-padded past the matrix edge), with
// the beta pass fused into the accumulator init of the first k-block:
//
//   acc = first_block ? (beta == 0 ? 0 : beta*C) : C      per valid element
//
// so beta == 0 never reads C (overwrite-NaN semantics) and no separate
// scale pass over C exists. `rows`/`cols` may be short at the fringes; the
// packed operands are zero-padded, so kernels may compute the full tile
// and write back only the valid region — padding lanes never feed a valid
// element's accumulator.
#pragma once

#include <cstdint>

#include "src/blas/simd.hpp"

namespace summagen::blas::detail {

using MicroKernelFn = void (*)(const double* pa_quad, const double* pb_panel,
                               std::int64_t kc, std::int64_t rows,
                               std::int64_t cols, bool first_block,
                               double beta, double* c, std::int64_t ldc);

struct MicroKernel {
  std::int64_t mr = 0;
  std::int64_t nr = 0;
  MicroKernelFn fn = nullptr;
  const char* name = "";
};

/// Registers (MR/NR shape + entry point) per concrete tier. `tier` must be
/// a resolved, available tier (see resolve_simd_tier).
MicroKernel microkernel_for(SimdTier tier);

// Per-TU entry points. The scalar kernel is the pre-dispatch kPacked
// microkernel verbatim; the SIMD ones live in translation units compiled
// with the matching target flags and exist only when CMake enabled them.
void micro_kernel_scalar_4x8(const double* pa_quad, const double* pb_panel,
                             std::int64_t kc, std::int64_t rows,
                             std::int64_t cols, bool first_block, double beta,
                             double* c, std::int64_t ldc);
#ifdef SUMMAGEN_HAVE_SSE2_KERNEL
void micro_kernel_sse2_4x4(const double* pa_quad, const double* pb_panel,
                           std::int64_t kc, std::int64_t rows,
                           std::int64_t cols, bool first_block, double beta,
                           double* c, std::int64_t ldc);
#endif
#ifdef SUMMAGEN_HAVE_AVX2_KERNEL
void micro_kernel_avx2_6x8(const double* pa_quad, const double* pb_panel,
                           std::int64_t kc, std::int64_t rows,
                           std::int64_t cols, bool first_block, double beta,
                           double* c, std::int64_t ldc);
#endif

}  // namespace summagen::blas::detail

// Row-major DGEMM kernels: C := alpha * A * B + beta * C.
//
// Substrate for the vendor DGEMM the paper delegates local computations to
// (Intel MKL on the CPU/Phi, CUBLAS on the GPU). SummaGen's `localDgemm`
// multiplies a (height x n) slice of WA by an (n x width) slice of WB, so
// everything here takes explicit leading dimensions.
//
// Four implementations, bit-identical in result (the parallel split and
// the packed layout preserve the per-element l-ascending accumulation
// chain of the ikj kernel):
//  * kNaive   - triple loop, the oracle used in tests;
//  * kBlocked - cache-blocked ikj kernel, serial;
//  * kThreaded- kBlocked with row bands run on the shared sgpool executor;
//  * kPacked  - five-loop BLIS blocking (NC -> KC -> MC -> NR -> MR) over
//               contiguous alpha*A quads and B column-panels, with the
//               microkernel selected at runtime by CPUID among AVX2+FMA /
//               SSE2 / scalar tiers (src/blas/simd.hpp), row bands on the
//               shared pool (default; see DESIGN.md §5.11).
//
// kNaive/kBlocked/kThreaded and the scalar/SSE2 tiers of kPacked are
// bit-identical to each other; the AVX2 tier fuses multiply-add (one
// rounding) and is bit-identical only per tier.
//
// No kernel ever constructs a std::thread: all parallelism is task
// submission into the persistent process-wide pool (sgpool::Pool), which
// the experiment runner sizes to hardware_concurrency() minus the live
// rank threads — mirroring the paper's one-MKL-pool-per-abstract-processor
// setup instead of oversubscribing the host per call.
#pragma once

#include <cstdint>
#include <string>

#include "src/blas/simd.hpp"
#include "src/util/matrix.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::blas {

enum class GemmKernel { kNaive, kBlocked, kThreaded, kPacked };

/// Fast (Strassen-family) matrix-multiplication mode layered on top of the
/// classical kernels (src/blas/fastmm.hpp). Fast MM trades the classical
/// per-element accumulation chain for fewer leaf multiplications: results
/// are norm-bound accurate (not bit-identical to classical) but remain
/// run-to-run bit-identical per SIMD tier.
enum class FastMmKind {
  kClassical = 0,  ///< plain kernels, the bit-determinism baseline (default)
  kStrassen,       ///< recursive <2,2,2;7> (Strassen) above the crossover
  kS223,           ///< recursive <2,2,3;11> (rectangular-friendly variant)
  kAuto,           ///< pick classical/<2,2,2;7>/<2,2,3;11> per (m,n,k)
};

/// "classical" | "strassen" | "s223" | "auto".
const char* fastmm_kind_name(FastMmKind kind);

/// Inverse of fastmm_kind_name; throws std::invalid_argument on anything
/// else (the CLI wraps this into a CliError).
FastMmKind parse_fastmm_kind(const std::string& name);

/// Options for dgemm. `threads` applies to kThreaded/kPacked; the fields
/// below `block` apply to kPacked only.
struct GemmOptions {
  GemmKernel kernel = GemmKernel::kPacked;
  /// Parallel width for the pool-backed kernels. 0 (default) = auto: the
  /// shared pool's workers plus the calling thread (which participates).
  /// Explicit values are clamped to [1, hardware_concurrency] — a larger
  /// request cannot oversubscribe the host, it only splits finer.
  int threads = 0;
  std::int64_t block = 64;  ///< cache-block edge for kBlocked/kThreaded
  /// Microkernel dispatch tier. kAuto (default) picks the best tier this
  /// CPU supports (capped to scalar by SUMMAGEN_FORCE_SCALAR); an explicit
  /// unavailable tier throws std::invalid_argument.
  SimdTier tier = SimdTier::kAuto;
  /// Cache-blocking overrides for the five-loop scheme; 0 (default) = auto
  /// (the persisted tune cache for this CPU, else per-tier defaults — see
  /// src/blas/tune.hpp). Block sizes never change numeric results.
  std::int64_t mc = 0;
  std::int64_t nc = 0;
  std::int64_t kc = 0;
  /// Non-zero opts B-panel packing into the process-wide pack cache
  /// (src/blas/pack_cache.hpp): the caller asserts that every dgemm call
  /// passing the same key presents a bit-identical B operand (same k, n
  /// and values), letting SUMMA-family schedules reuse packed panels
  /// across k-steps and ranks. 0 (default) packs privately per call.
  std::uint64_t b_pack_key = 0;
  /// Fast-MM mode (src/blas/fastmm.hpp). kClassical (default) is the plain
  /// kernel path; the fast kinds recurse Strassen-family block algorithms
  /// down to the classical kernel below `fastmm_crossover`. Fast results
  /// satisfy the norm-wise bound of fastmm_error_budget(), not bit equality
  /// with classical; per tier they stay run-to-run bit-identical.
  FastMmKind fastmm = FastMmKind::kClassical;
  /// Smallest block dimension fast recursion may produce; splits stop once
  /// any sub-block dimension would drop below it. 0 (default) = auto (the
  /// persisted tune cache for this CPU, else default_fastmm_crossover()).
  std::int64_t fastmm_crossover = 0;
  /// Recursion-depth cap for the fast kinds; 0 degenerates to classical.
  int fastmm_max_depth = 3;
};

/// Resolves `threads` (see GemmOptions::threads): 0 maps to the shared
/// pool size + 1, explicit requests clamp to [1, hardware_concurrency].
int resolve_gemm_threads(int threads);

/// General row-major dgemm with leading dimensions (in elements):
///   C[m x n] (ld ldc) := alpha * A[m x k] (ld lda) * B[k x n] (ld ldb)
///                        + beta * C.
/// Preconditions: lda >= k, ldb >= n, ldc >= n; no aliasing between C and
/// A/B. Throws std::invalid_argument on violations detectable from sizes.
void dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, const double* b,
           std::int64_t ldb, double beta, double* c, std::int64_t ldc,
           const GemmOptions& opts = {});

/// View-based dgemm: C := alpha * A * B + beta * C with shapes and strides
/// taken from the views (A is m x k, B is k x n, C is m x n; inner and
/// outer extents are validated, and C must not alias A or B). Because the
/// raw-pointer form already takes leading dimensions, this is a pure
/// adapter — the operation sequence, and therefore the result, is
/// bit-identical to the pointer call on the same storage.
void dgemm(double alpha, util::ConstMatrixView a, util::ConstMatrixView b,
           double beta, util::MatrixView c, const GemmOptions& opts = {});

/// Whole-matrix convenience: C := A * B (shapes validated).
util::Matrix multiply(const util::Matrix& a, const util::Matrix& b,
                      const GemmOptions& opts = {});

/// Number of floating-point operations of an m x n x k GEMM (2*m*n*k).
constexpr std::int64_t gemm_flops(std::int64_t m, std::int64_t n,
                                  std::int64_t k) {
  return 2 * m * n * k;
}

}  // namespace summagen::blas

// Row-major DGEMM kernels: C := alpha * A * B + beta * C.
//
// Substrate for the vendor DGEMM the paper delegates local computations to
// (Intel MKL on the CPU/Phi, CUBLAS on the GPU). SummaGen's `localDgemm`
// multiplies a (height x n) slice of WA by an (n x width) slice of WB, so
// everything here takes explicit leading dimensions.
//
// Three implementations, all bit-compatible in result up to floating-point
// reassociation:
//  * kNaive   - triple loop, the oracle used in tests;
//  * kBlocked - cache-blocked ikj kernel (default);
//  * kThreaded- kBlocked with rows parallelised over std::thread.
#pragma once

#include <cstdint>

#include "src/util/matrix.hpp"

namespace summagen::blas {

enum class GemmKernel { kNaive, kBlocked, kThreaded };

/// Options for dgemm. `threads` only applies to kThreaded.
struct GemmOptions {
  GemmKernel kernel = GemmKernel::kBlocked;
  int threads = 4;
  std::int64_t block = 64;  ///< cache-block edge for kBlocked/kThreaded
};

/// General row-major dgemm with leading dimensions (in elements):
///   C[m x n] (ld ldc) := alpha * A[m x k] (ld lda) * B[k x n] (ld ldb)
///                        + beta * C.
/// Preconditions: lda >= k, ldb >= n, ldc >= n; no aliasing between C and
/// A/B. Throws std::invalid_argument on violations detectable from sizes.
void dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t lda, const double* b,
           std::int64_t ldb, double beta, double* c, std::int64_t ldc,
           const GemmOptions& opts = {});

/// Whole-matrix convenience: C := A * B (shapes validated).
util::Matrix multiply(const util::Matrix& a, const util::Matrix& b,
                      const GemmOptions& opts = {});

/// Number of floating-point operations of an m x n x k GEMM (2*m*n*k).
constexpr std::int64_t gemm_flops(std::int64_t m, std::int64_t n,
                                  std::int64_t k) {
  return 2 * m * n * k;
}

}  // namespace summagen::blas

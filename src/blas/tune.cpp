#include "src/blas/tune.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/blas/fastmm.hpp"
#include "src/blas/gemm.hpp"
#include "src/util/matrix.hpp"
#include "src/util/rng.hpp"

namespace summagen::blas {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON scanner for the tune-cache format (objects, strings,
// numbers; arrays only skipped). Hand-rolled because the repo carries no
// JSON dependency.
// ---------------------------------------------------------------------------
class Scanner {
 public:
  explicit Scanner(const std::string& s)
      : p_(s.data()), end_(s.data() + s.size()) {}

  void ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool consume(char c) {
    ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool peek(char c) {
    ws();
    return p_ < end_ && *p_ == c;
  }

  bool parse_string(std::string* out) {
    ws();
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    out->clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\' && p_ + 1 < end_) {
        ++p_;
        switch (*p_) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(*p_); break;
        }
      } else {
        out->push_back(*p_);
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }

  bool parse_number(double* out) {
    ws();
    char* after = nullptr;
    const double v = std::strtod(p_, &after);
    if (after == p_) return false;
    p_ = after;
    *out = v;
    return true;
  }

  // Skips any value (string/number/object/array/true/false/null).
  bool skip_value() {
    ws();
    if (p_ >= end_) return false;
    if (*p_ == '"') {
      std::string s;
      return parse_string(&s);
    }
    if (*p_ == '{' || *p_ == '[') {
      const char open = *p_;
      const char close = open == '{' ? '}' : ']';
      int depth = 0;
      bool in_string = false;
      while (p_ < end_) {
        const char c = *p_++;
        if (in_string) {
          if (c == '\\' && p_ < end_) ++p_;
          else if (c == '"') in_string = false;
          continue;
        }
        if (c == '"') in_string = true;
        else if (c == open) ++depth;
        else if (c == close && --depth == 0) return true;
      }
      return false;
    }
    while (p_ < end_ && *p_ != ',' && *p_ != '}' && *p_ != ']' &&
           !std::isspace(static_cast<unsigned char>(*p_))) {
      ++p_;
    }
    return true;
  }

 private:
  const char* p_;
  const char* end_;
};

bool parse_record(Scanner& sc, TuneRecord* rec) {
  if (!sc.consume('{')) return false;
  if (sc.consume('}')) return true;
  do {
    std::string field;
    double v = 0.0;
    if (!sc.parse_string(&field) || !sc.consume(':')) return false;
    if (!sc.parse_number(&v)) return false;
    if (field == "mc") rec->bs.mc = static_cast<std::int64_t>(v);
    else if (field == "nc") rec->bs.nc = static_cast<std::int64_t>(v);
    else if (field == "kc") rec->bs.kc = static_cast<std::int64_t>(v);
    else if (field == "gflops") rec->gflops = v;
    else if (field == "fastmm_crossover")
      rec->fastmm_crossover = static_cast<std::int64_t>(v);
  } while (sc.consume(','));
  return sc.consume('}');
}

bool parse_tiers(Scanner& sc, std::map<std::string, TuneRecord>* tiers) {
  if (!sc.consume('{')) return false;
  if (sc.consume('}')) return true;
  do {
    std::string tier;
    if (!sc.parse_string(&tier) || !sc.consume(':')) return false;
    TuneRecord rec;
    if (!parse_record(sc, &rec)) return false;
    (*tiers)[tier] = rec;
  } while (sc.consume(','));
  return sc.consume('}');
}

void json_escape_to(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t h = v.size() / 2;
  return v.size() % 2 == 1 ? v[h] : 0.5 * (v[h - 1] + v[h]);
}

}  // namespace

BlockSizes default_block_sizes(SimdTier tier) {
  switch (tier) {
    case SimdTier::kAvx2:
      // MR=6: 96 rows x KC=256 doubles of packed A ~ 192 KiB (L2); the
      // packed B block streams from L3.
      return {96, 4096, 256};
    case SimdTier::kSse2:
    case SimdTier::kScalar:
    case SimdTier::kAuto:
      // KC=256 is the pre-dispatch kPacked depth (kept for the scalar
      // bit-identity guarantee, which in fact holds for any KC).
      return {128, 4096, 256};
  }
  return {128, 4096, 256};
}

std::string tune_cache_path() {
  if (const char* env = std::getenv("SUMMAGEN_TUNE_CACHE")) return env;
  if (const char* home = std::getenv("HOME")) {
    return std::string(home) + "/.cache/summagen/tune.json";
  }
  return {};
}

std::string cpu_model_key() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        const std::string name = trim(line.substr(colon + 1));
        if (!name.empty()) return name;
      }
    }
  }
  return "unknown-cpu";
}

bool parse_tune_file(const std::string& text, TuneFile* out) {
  Scanner sc(text);
  TuneFile file;
  if (!sc.consume('{')) return false;
  if (!sc.consume('}')) {
    do {
      std::string key;
      if (!sc.parse_string(&key) || !sc.consume(':')) return false;
      if (key == "cpus") {
        if (!sc.consume('{')) return false;
        if (!sc.consume('}')) {
          do {
            std::string cpu;
            if (!sc.parse_string(&cpu) || !sc.consume(':')) return false;
            if (!parse_tiers(sc, &file[cpu])) return false;
          } while (sc.consume(','));
          if (!sc.consume('}')) return false;
        }
      } else if (!sc.skip_value()) {
        return false;
      }
    } while (sc.consume(','));
    if (!sc.consume('}')) return false;
  }
  *out = std::move(file);
  return true;
}

std::string format_tune_file(const TuneFile& file) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"cpus\": {";
  bool first_cpu = true;
  for (const auto& [cpu, tiers] : file) {
    os << (first_cpu ? "\n" : ",\n") << "    \"";
    json_escape_to(os, cpu);
    os << "\": {";
    bool first_tier = true;
    for (const auto& [tier, rec] : tiers) {
      os << (first_tier ? "\n" : ",\n") << "      \"";
      json_escape_to(os, tier);
      os << "\": {\"mc\": " << rec.bs.mc << ", \"nc\": " << rec.bs.nc
         << ", \"kc\": " << rec.bs.kc << ", \"gflops\": " << rec.gflops;
      if (rec.fastmm_crossover > 0) {
        os << ", \"fastmm_crossover\": " << rec.fastmm_crossover;
      }
      os << "}";
      first_tier = false;
    }
    os << "\n    }";
    first_cpu = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

bool load_tune_file(const std::string& path, TuneFile* out) {
  if (path.empty()) return false;
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_tune_file(ss.str(), out);
}

bool save_tune_file(const std::string& path, const TuneFile& file) {
  if (path.empty()) return false;
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  out << format_tune_file(file);
  return static_cast<bool>(out);
}

namespace {

// Tuned entries for this CPU, loaded once per process (missing or
// malformed caches resolve to an empty map — callers fall back to the
// built-in defaults).
const std::map<std::string, TuneRecord>& tuned_records_for_this_cpu() {
  static const std::map<std::string, TuneRecord> tuned = [] {
    TuneFile file;
    std::map<std::string, TuneRecord> mine;
    if (load_tune_file(tune_cache_path(), &file)) {
      const auto it = file.find(cpu_model_key());
      if (it != file.end()) mine = it->second;
    }
    return mine;
  }();
  return tuned;
}

}  // namespace

BlockSizes resolve_block_sizes(const GemmOptions& opts, SimdTier tier) {
  const auto& tuned = tuned_records_for_this_cpu();
  BlockSizes bs = default_block_sizes(tier);
  const auto it = tuned.find(simd_tier_name(tier));
  if (it != tuned.end() && it->second.bs.mc > 0 && it->second.bs.nc > 0 &&
      it->second.bs.kc > 0) {
    bs = it->second.bs;
  }
  if (opts.mc > 0) bs.mc = opts.mc;
  if (opts.nc > 0) bs.nc = opts.nc;
  if (opts.kc > 0) bs.kc = opts.kc;
  bs.mc = std::max<std::int64_t>(1, bs.mc);
  bs.nc = std::max<std::int64_t>(1, bs.nc);
  bs.kc = std::max<std::int64_t>(1, bs.kc);
  return bs;
}

std::vector<TuneResult> autotune_block_sizes(
    std::int64_t n, int repeats, const std::vector<SimdTier>& tiers) {
  if (n < 32) n = 32;
  if (repeats < 1) repeats = 1;
  util::Matrix a(n, n), b(n, n), c(n, n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);

  std::vector<TuneResult> winners;
  for (SimdTier tier : tiers) {
    if (tier == SimdTier::kAuto || !simd_tier_available(tier)) continue;
    const std::int64_t mr = tier == SimdTier::kAvx2 ? 6 : 4;
    TuneResult best;
    best.tier = tier;
    for (std::int64_t mc : {8 * mr, 16 * mr, 32 * mr}) {
      for (std::int64_t kc : {128ll, 256ll, 512ll}) {
        for (std::int64_t nc : {512ll, 2048ll, 8192ll}) {
          GemmOptions opts;
          opts.kernel = GemmKernel::kPacked;
          opts.tier = tier;
          opts.mc = mc;
          opts.nc = nc;
          opts.kc = kc;
          // Warm-up: touches the pool classes for this candidate's shapes.
          dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n,
                opts);
          std::vector<double> gflops;
          for (int r = 0; r < repeats; ++r) {
            const auto t0 = std::chrono::steady_clock::now();
            dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n,
                  opts);
            const std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            gflops.push_back(static_cast<double>(gemm_flops(n, n, n)) /
                             dt.count() / 1e9);
          }
          const double med = median_of(std::move(gflops));
          if (med > best.gflops) {
            best.gflops = med;
            best.bs = {mc, nc, kc};
          }
        }
      }
    }
    winners.push_back(best);
  }
  std::sort(winners.begin(), winners.end(),
            [](const TuneResult& x, const TuneResult& y) {
              return x.gflops > y.gflops;
            });
  return winners;
}

std::int64_t tuned_fastmm_crossover(SimdTier tier) {
  const auto& tuned = tuned_records_for_this_cpu();
  const auto it = tuned.find(simd_tier_name(tier));
  return it != tuned.end() && it->second.fastmm_crossover > 0
             ? it->second.fastmm_crossover
             : 0;
}

FastMmTuneResult autotune_fastmm_crossover(std::int64_t n, int repeats,
                                           SimdTier tier) {
  if (n < 256) n = 256;
  if (repeats < 1) repeats = 1;
  util::Matrix a(n, n), b(n, n), c(n, n);
  util::fill_random(a, 1);
  util::fill_random(b, 2);

  FastMmTuneResult best;
  best.crossover = default_fastmm_crossover();
  for (std::int64_t x : {256ll, 384ll, 512ll, 768ll}) {
    GemmOptions opts;
    opts.kernel = GemmKernel::kPacked;
    opts.tier = tier;
    opts.fastmm = FastMmKind::kStrassen;
    opts.fastmm_crossover = x;
    // Warm-up: populates the pool size classes this candidate's recursion
    // shape will lease.
    dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, opts);
    std::vector<double> gflops;
    for (int r = 0; r < repeats; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n, opts);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      gflops.push_back(static_cast<double>(gemm_flops(n, n, n)) / dt.count() /
                       1e9);
    }
    const double med = median_of(std::move(gflops));
    if (med > best.gflops) {
      best.gflops = med;
      best.crossover = x;
    }
  }
  return best;
}

}  // namespace summagen::blas

// Runtime SIMD dispatch for the packed DGEMM kernel.
//
// The paper's AbsCPU owes its speed to a vendor DGEMM (MKL); our substrate
// gets there with BLIS-style microkernels selected at runtime by CPUID:
//
//   tier      microkernel      requires            result identity
//   kAvx2     6x8, FMA         AVX2 + FMA          bit-identical per tier
//   kSse2     4x4, mul+add     SSE2 (any x86-64)   bit-identical to kScalar
//   kScalar   4x8, mul+add     nothing             bit-identical to the
//                                                  pre-dispatch kPacked
//
// All tiers preserve the per-C-element l-ascending accumulation chain, so
// each tier is deterministic and run-to-run bit-identical; kSse2 performs
// the same round-to-nearest multiply and add per element as kScalar and is
// therefore bitwise equal to it, while kAvx2 fuses them (FMA: one rounding)
// and legitimately differs in low-order bits.
//
// The SIMD tiers only exist on x86-64 and only when the compiler accepts
// the target flags (CMake probes; non-x86 builds fall back to kScalar).
// Setting SUMMAGEN_FORCE_SCALAR=1 in the environment caps availability at
// kScalar — the CI forced-scalar job uses this to run the whole numeric
// plane on the portable kernel.
#pragma once

#include <string>

namespace summagen::blas {

/// Dispatch tier of the packed kernel. Order is ascending capability.
enum class SimdTier { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAuto = 3 };

/// True when the tier's translation unit was compiled into the library
/// (kScalar always; the SIMD tiers only on x86-64 with flag support).
bool simd_tier_compiled(SimdTier tier);

/// True when the tier is usable right now: compiled, the CPU reports the
/// required features, and SUMMAGEN_FORCE_SCALAR does not cap it away.
/// kScalar is always available; kAuto is not a concrete tier (false).
bool simd_tier_available(SimdTier tier);

/// Highest available tier (reads SUMMAGEN_FORCE_SCALAR live, so tests can
/// toggle the override around calls).
SimdTier best_simd_tier();

/// Maps kAuto to best_simd_tier() and validates explicit requests; throws
/// std::invalid_argument for a tier that is not available on this host.
SimdTier resolve_simd_tier(SimdTier requested);

/// "scalar" | "sse2" | "avx2" | "auto".
const char* simd_tier_name(SimdTier tier);

/// Inverse of simd_tier_name; throws std::invalid_argument on anything
/// else (the CLI wraps this into a CliError).
SimdTier parse_simd_tier(const std::string& name);

/// Live read of the SUMMAGEN_FORCE_SCALAR override (set and not "0").
bool force_scalar_requested();

}  // namespace summagen::blas

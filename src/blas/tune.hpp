// Cache-blocking autotuner for the packed DGEMM kernel.
//
// The five-loop scheme (DESIGN.md §5.11) has three free block sizes:
//   MC — A-block rows resident in L2 per band,
//   NC — B-block columns packed per outer block (L3 residency),
//   KC — k-depth of one packed block (shared with the pre-dispatch loop).
// Good values are CPU-specific, so `summagen_tune` (tools/) sweeps a small
// candidate grid per dispatch tier, measures single-caller GFLOP/s, and
// persists the winners to a JSON cache keyed by the CPU model string:
//
//   {"version": 1,
//    "cpus": {"<model name>": {
//       "avx2":   {"mc": 96, "nc": 2048, "kc": 256, "gflops": 31.4},
//       "scalar": {"mc": 128, "nc": 4096, "kc": 256, "gflops": 10.8}}}}
//
// The cache lives at $SUMMAGEN_TUNE_CACHE, falling back to
// $HOME/.cache/summagen/tune.json. dgemm's auto path (GemmOptions with
// mc/nc/kc == 0, the runner's threads=0 default configuration) consults
// the cache once per process; absent or unparsable caches fall back to the
// per-tier defaults. Tuning never runs implicitly — tests and runs stay
// deterministic-latency; only the explicit tool triggers the sweep.
//
// Block sizes never change numeric results: every tier's accumulation is
// the per-element l-ascending chain with exact double stores/loads between
// k-blocks, so MC/NC/KC only move work between cache levels.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/blas/simd.hpp"

namespace summagen::blas {

struct GemmOptions;

/// Resolved cache-blocking parameters (all positive).
struct BlockSizes {
  std::int64_t mc = 0;  ///< A-block rows per band (L2)
  std::int64_t nc = 0;  ///< B-block columns per outer block (L3)
  std::int64_t kc = 0;  ///< k-depth per packed block
};

/// Built-in per-tier defaults (used when no tuned entry exists).
BlockSizes default_block_sizes(SimdTier tier);

/// Blocking for one dgemm call: positive GemmOptions fields override,
/// otherwise the tuned cache entry for this CPU + tier (loaded once per
/// process), otherwise default_block_sizes. Always returns sane positive
/// values.
BlockSizes resolve_block_sizes(const GemmOptions& opts, SimdTier tier);

/// Tune-cache location: $SUMMAGEN_TUNE_CACHE if set, else
/// $HOME/.cache/summagen/tune.json (empty string when $HOME is unset).
std::string tune_cache_path();

/// "model name" from /proc/cpuinfo (trimmed), or "unknown-cpu".
std::string cpu_model_key();

/// One tuned record (the JSON leaf).
struct TuneRecord {
  BlockSizes bs;
  double gflops = 0.0;
  /// Tuned fast-MM crossover (src/blas/fastmm.hpp) for this CPU + tier;
  /// 0 = not tuned (resolve falls back to default_fastmm_crossover()).
  std::int64_t fastmm_crossover = 0;
};

/// Full cache file contents: cpu key -> tier name -> record.
using TuneFile = std::map<std::string, std::map<std::string, TuneRecord>>;

/// Parses a tune-cache JSON document; returns false (out untouched) on
/// malformed input. Tolerates unknown fields being absent, not junk syntax.
bool parse_tune_file(const std::string& text, TuneFile* out);

/// Serialises a TuneFile to the JSON format above.
std::string format_tune_file(const TuneFile& file);

/// Loads `path` into `out`; false when the file is missing or malformed.
bool load_tune_file(const std::string& path, TuneFile* out);

/// Writes `file` to `path` (creating parent directories best-effort);
/// false on I/O failure.
bool save_tune_file(const std::string& path, const TuneFile& file);

struct TuneResult {
  SimdTier tier = SimdTier::kScalar;
  BlockSizes bs;
  double gflops = 0.0;
};

/// Sweeps the candidate MC/NC/KC grid for each listed *available* tier at
/// problem size n (median of `repeats` timed multiplications per
/// candidate) and returns the per-tier winners, best tier first.
std::vector<TuneResult> autotune_block_sizes(std::int64_t n, int repeats,
                                             const std::vector<SimdTier>& tiers);

/// Tuned fast-MM crossover for this CPU + tier from the persisted cache
/// (loaded once per process); 0 when the cache has no entry.
std::int64_t tuned_fastmm_crossover(SimdTier tier);

/// Winner of the fast-MM crossover sweep (see autotune_fastmm_crossover).
struct FastMmTuneResult {
  std::int64_t crossover = 0;
  double gflops = 0.0;  ///< effective (2n^3-normalised) GFLOP/s at winner
};

/// Sweeps candidate fast-MM crossovers for Strassen at problem size n on
/// `tier` (median of `repeats` timed runs per candidate) and returns the
/// fastest. Throughput is normalised to classical flops (2n^3 / time), so
/// numbers compare directly against the classical tune records.
FastMmTuneResult autotune_fastmm_crossover(std::int64_t n, int repeats,
                                           SimdTier tier);

}  // namespace summagen::blas

#include "src/blas/fastmm.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "src/blas/tune.hpp"
#include "src/pool/pool.hpp"
#include "src/util/accounting.hpp"
#include "src/util/buffer_pool.hpp"

namespace summagen::blas {
namespace {

// ---------------------------------------------------------------------------
// Coefficient tables. Row-major block indices (see FastMmAlgorithm docs).
// Both tables are checked against the Brent triple-product equations by
// tests/blas/fastmm_test.cpp, so a transcription error fails the suite.
// ---------------------------------------------------------------------------

// <2,2,2;7> (Strassen 1969). A/B/C blocks = [X11 X12; X21 X22]:
//   M0 = (A11+A22)(B11+B22)   M1 = (A21+A22) B11    M2 = A11 (B12-B22)
//   M3 = A22 (B21-B11)        M4 = (A11+A12) B22    M5 = (A21-A11)(B11+B12)
//   M6 = (A12-A22)(B21+B22)
constexpr signed char kStrassenU[7 * 4] = {
    1,  0, 0, 1,   // M0
    0,  0, 1, 1,   // M1
    1,  0, 0, 0,   // M2
    0,  0, 0, 1,   // M3
    1,  1, 0, 0,   // M4
    -1, 0, 1, 0,   // M5
    0,  1, 0, -1,  // M6
};
constexpr signed char kStrassenV[7 * 4] = {
    1,  0, 0, 1,   // M0
    1,  0, 0, 0,   // M1
    0,  1, 0, -1,  // M2
    -1, 0, 1, 0,   // M3
    0,  0, 0, 1,   // M4
    1,  1, 0, 0,   // M5
    0,  0, 1, 1,   // M6
};
constexpr signed char kStrassenW[4 * 7] = {
    1, 0,  0, 1, -1, 0, 1,  // C11 = M0 + M3 - M4 + M6
    0, 0,  1, 0, 1,  0, 0,  // C12 = M2 + M4
    0, 1,  0, 1, 0,  0, 0,  // C21 = M1 + M3
    1, -1, 1, 0, 0,  1, 0,  // C22 = M0 - M1 + M2 + M5
};

// <2,2,3;11>: Strassen applied to the 2x2 sub-operator on B's first two
// block columns, direct-summed with the 4 classical products of the third
// block column (M7..M10). 11 products equal the known rank of the <2,2,3>
// tensor (2*7 - 3 via <2,2,2>+<2,2,1> splitting is 10+... classical would
// be 12), so the variant is rank-optimal, and its skew towards wide C
// fits SUMMA's (height x n) * (n x width) panel products with width > n.
// B blocks are indexed p*3+j over [B11 B12 B13; B21 B22 B23]; C likewise.
constexpr signed char kS223U[11 * 4] = {
    1,  0, 0, 1,   // M0
    0,  0, 1, 1,   // M1
    1,  0, 0, 0,   // M2
    0,  0, 0, 1,   // M3
    1,  1, 0, 0,   // M4
    -1, 0, 1, 0,   // M5
    0,  1, 0, -1,  // M6
    1,  0, 0, 0,   // M7 = A11 B13
    0,  1, 0, 0,   // M8 = A12 B23
    0,  0, 1, 0,   // M9 = A21 B13
    0,  0, 0, 1,   // M10 = A22 B23
};
constexpr signed char kS223V[11 * 6] = {
    1,  0, 0, 0, 1,  0,  // M0: B11 + B22
    1,  0, 0, 0, 0,  0,  // M1: B11
    0,  1, 0, 0, -1, 0,  // M2: B12 - B22
    -1, 0, 0, 1, 0,  0,  // M3: B21 - B11
    0,  0, 0, 0, 1,  0,  // M4: B22
    1,  1, 0, 0, 0,  0,  // M5: B11 + B12
    0,  0, 0, 1, 1,  0,  // M6: B21 + B22
    0,  0, 1, 0, 0,  0,  // M7: B13
    0,  0, 0, 0, 0,  1,  // M8: B23
    0,  0, 1, 0, 0,  0,  // M9: B13
    0,  0, 0, 0, 0,  1,  // M10: B23
};
constexpr signed char kS223W[6 * 11] = {
    1, 0,  0, 1, -1, 0, 1, 0, 0, 0, 0,  // C11
    0, 0,  1, 0, 1,  0, 0, 0, 0, 0, 0,  // C12
    0, 0,  0, 0, 0,  0, 0, 1, 1, 0, 0,  // C13 = M7 + M8
    0, 1,  0, 1, 0,  0, 0, 0, 0, 0, 0,  // C21
    1, -1, 1, 0, 0,  1, 0, 0, 0, 0, 0,  // C22
    0, 0,  0, 0, 0,  0, 0, 0, 0, 1, 1,  // C23 = M9 + M10
};

// ---------------------------------------------------------------------------
// Pooled temporaries and block linear combinations
// ---------------------------------------------------------------------------

// Every fast-MM workspace goes through here: BufferPool lease (warm runs
// pop a freelist, no heap) plus the distinct fastmm accounting so the CLI
// and the alloc gates can see fast-MM traffic separately.
util::PooledBuffer lease_fastmm(std::int64_t doubles) {
  util::PooledBuffer buf =
      util::BufferPool::instance().acquire(static_cast<std::size_t>(doubles));
  util::record_fastmm_lease(doubles *
                            static_cast<std::int64_t>(sizeof(double)));
  return buf;
}

// An S_r / T_r operand: either a zero-copy view into the parent matrix
// (single +1 term) or a leased contiguous buffer holding the combination.
struct Operand {
  const double* p = nullptr;
  std::int64_t ld = 0;
  util::PooledBuffer buf;
};

// Builds the coef-weighted sum of `src`'s (rows x cols) blocks, where
// block i sits at src + (i / grid_cols)*rows*ld + (i % grid_cols)*cols.
// Terms are applied in ascending block order — part of the run-to-run
// determinism contract.
Operand combine_blocks(const signed char* coef, int nblocks, int grid_cols,
                       const double* src, std::int64_t ld, std::int64_t rows,
                       std::int64_t cols) {
  const auto block = [&](int i) {
    return src + (i / grid_cols) * rows * ld + (i % grid_cols) * cols;
  };
  int terms = 0;
  int only = -1;
  for (int i = 0; i < nblocks; ++i) {
    if (coef[i] != 0) {
      ++terms;
      only = i;
    }
  }
  Operand out;
  if (terms == 1 && coef[only] == 1) {
    out.p = block(only);
    out.ld = ld;
    return out;
  }
  out.buf = lease_fastmm(rows * cols);
  double* dst = out.buf.data();
  out.p = dst;
  out.ld = cols;
  if (terms == 0) {  // impossible for the shipped tables; keep it defined
    std::fill(dst, dst + rows * cols, 0.0);
    return out;
  }
  bool first = true;
  for (int i = 0; i < nblocks; ++i) {
    if (coef[i] == 0) continue;
    const double s = static_cast<double>(coef[i]);
    const double* bp = block(i);
    for (std::int64_t r = 0; r < rows; ++r) {
      const double* srow = bp + r * ld;
      double* drow = dst + r * cols;
      if (first) {
        for (std::int64_t c = 0; c < cols; ++c) drow[c] = s * srow[c];
      } else {
        for (std::int64_t c = 0; c < cols; ++c) drow[c] += s * srow[c];
      }
    }
    first = false;
  }
  return out;
}

// ---------------------------------------------------------------------------
// The recursion
// ---------------------------------------------------------------------------

void fastmm_recurse(std::int64_t m, std::int64_t n, std::int64_t k,
                    double alpha, const double* a, std::int64_t lda,
                    const double* b, std::int64_t ldb, double beta, double* c,
                    std::int64_t ldc, const GemmOptions& leaf, FastMmKind kind,
                    std::int64_t crossover, int depth, int max_depth,
                    int width) {
  const FastMmAlgorithm* alg =
      detail::choose_fastmm(m, n, k, kind, crossover, depth, max_depth);
  if (alg == nullptr) {
    dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, leaf);
    return;
  }
  const std::int64_t ms = m / alg->mt;
  const std::int64_t ks = k / alg->kt;
  const std::int64_t ns = n / alg->nt;
  const std::int64_t mc = ms * alg->mt;
  const std::int64_t kc = ks * alg->kt;
  const std::int64_t nc = ns * alg->nt;
  const int rank = alg->rank;
  const int na = alg->mt * alg->kt;
  const int nb = alg->kt * alg->nt;

  // The R recursive block products of the divisible core. All R product
  // buffers stay alive until the W combination, so they are leased up
  // front (serially — the lease order is deterministic); the S/T operand
  // buffers live only inside their product.
  std::vector<util::PooledBuffer> mbuf(static_cast<std::size_t>(rank));
  for (int r = 0; r < rank; ++r) mbuf[r] = lease_fastmm(ms * ns);

  const auto product = [&](int r) {
    Operand s = combine_blocks(alg->u + r * na, na, alg->kt, a, lda, ms, ks);
    Operand t = combine_blocks(alg->v + r * nb, nb, alg->nt, b, ldb, ks, ns);
    fastmm_recurse(ms, ns, ks, 1.0, s.p, s.ld, t.p, t.ld, 0.0,
                   mbuf[static_cast<std::size_t>(r)].data(), ns, leaf, kind,
                   crossover, depth + 1, max_depth, width);
  };
  if (width <= 1) {
    for (int r = 0; r < rank; ++r) product(r);
  } else {
    // Products are independent; TaskGroup::wait() helps execute, so the
    // nesting (recursion inside products, pooled leaves inside that) is
    // deadlock-free. Results don't depend on scheduling: each product owns
    // its buffer and the W pass below has a fixed accumulation order.
    sgpool::TaskGroup group;
    for (int r = 0; r < rank; ++r) {
      group.run([&product, r] { product(r); });
    }
    group.wait();
  }

  // W combination: every core C element gets its fixed ascending-r sum,
  // then one beta/alpha application (beta == 0 never reads C).
  std::vector<const double*> mdat(static_cast<std::size_t>(rank));
  for (int r = 0; r < rank; ++r) {
    mdat[static_cast<std::size_t>(r)] = mbuf[static_cast<std::size_t>(r)].data();
  }
  for (int bi = 0; bi < alg->mt; ++bi) {
    for (int bj = 0; bj < alg->nt; ++bj) {
      const signed char* wrow = alg->w + (bi * alg->nt + bj) * rank;
      const double* terms_m[16];
      double terms_w[16];
      int nterms = 0;
      for (int q = 0; q < rank; ++q) {
        if (wrow[q] != 0) {
          terms_m[nterms] = mdat[static_cast<std::size_t>(q)];
          terms_w[nterms] = static_cast<double>(wrow[q]);
          ++nterms;
        }
      }
      double* cblk = c + bi * ms * ldc + bj * ns;
      const auto combine_rows = [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          double* crow = cblk + r * ldc;
          for (std::int64_t col = 0; col < ns; ++col) {
            double acc = 0.0;
            for (int t = 0; t < nterms; ++t) {
              acc += terms_w[t] * terms_m[t][r * ns + col];
            }
            crow[col] =
                beta == 0.0 ? alpha * acc : beta * crow[col] + alpha * acc;
          }
        }
      };
      if (width <= 1 || ms < 2) {
        combine_rows(0, ms);
      } else {
        sgpool::parallel_for(
            0, ms, std::max<std::int64_t>(1, (ms + width - 1) / width),
            combine_rows);
      }
    }
  }
  mbuf.clear();  // return the product buffers before the fringe leaves run

  // Dynamic peeling: thin classical strips cover the non-divisible edges.
  // The k-strip accumulates into the core's C region (beta was already
  // applied above); the n- and m-strips own disjoint C regions and carry
  // the caller's alpha/beta themselves.
  if (kc < k) {
    dgemm(mc, nc, k - kc, alpha, a + kc, lda, b + kc * ldb, ldb, 1.0, c, ldc,
          leaf);
  }
  if (nc < n) {
    dgemm(m, n - nc, k, alpha, a, lda, b + nc, ldb, beta, c + nc, ldc, leaf);
  }
  if (mc < m) {
    dgemm(m - mc, nc, k, alpha, a + mc * lda, lda, b, ldb, beta,
          c + mc * ldc, ldc, leaf);
  }
}

int table_nnz(const signed char* t, int len) {
  int nnz = 0;
  for (int i = 0; i < len; ++i) nnz += t[i] != 0;
  return nnz;
}

double modeled_flops_recurse(std::int64_t m, std::int64_t n, std::int64_t k,
                             FastMmKind kind, std::int64_t crossover,
                             int depth, int max_depth) {
  const FastMmAlgorithm* alg =
      detail::choose_fastmm(m, n, k, kind, crossover, depth, max_depth);
  if (alg == nullptr) {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
  const std::int64_t ms = m / alg->mt;
  const std::int64_t ks = k / alg->kt;
  const std::int64_t ns = n / alg->nt;
  const std::int64_t mc = ms * alg->mt;
  const std::int64_t kc = ks * alg->kt;
  const std::int64_t nc = ns * alg->nt;
  double f = alg->rank * modeled_flops_recurse(ms, ns, ks, kind, crossover,
                                               depth + 1, max_depth);
  // One flop per coefficient application in the S/T/W combinations.
  f += static_cast<double>(table_nnz(alg->u, alg->rank * alg->mt * alg->kt)) *
       static_cast<double>(ms * ks);
  f += static_cast<double>(table_nnz(alg->v, alg->rank * alg->kt * alg->nt)) *
       static_cast<double>(ks * ns);
  f += static_cast<double>(table_nnz(alg->w, alg->mt * alg->nt * alg->rank)) *
       static_cast<double>(ms * ns);
  // Classical peeled strips.
  f += 2.0 * static_cast<double>(mc * nc) * static_cast<double>(k - kc);
  f += 2.0 * static_cast<double>(m * (n - nc)) * static_cast<double>(k);
  f += 2.0 * static_cast<double>((m - mc) * nc) * static_cast<double>(k);
  return f;
}

}  // namespace

const FastMmAlgorithm& strassen_algorithm() {
  static constexpr FastMmAlgorithm alg{"<2,2,2;7>", 2,          2,
                                       2,           7,          kStrassenU,
                                       kStrassenV,  kStrassenW};
  return alg;
}

const FastMmAlgorithm& s223_algorithm() {
  static constexpr FastMmAlgorithm alg{"<2,2,3;11>", 2,      2,     3,
                                       11,           kS223U, kS223V, kS223W};
  return alg;
}

std::vector<const FastMmAlgorithm*> fastmm_algorithms() {
  return {&strassen_algorithm(), &s223_algorithm()};
}

bool verify_brent_equations(const FastMmAlgorithm& alg) {
  const int mt = alg.mt, kt = alg.kt, nt = alg.nt;
  for (int i = 0; i < mt; ++i) {
    for (int p = 0; p < kt; ++p) {
      for (int p2 = 0; p2 < kt; ++p2) {
        for (int j = 0; j < nt; ++j) {
          for (int i2 = 0; i2 < mt; ++i2) {
            for (int j2 = 0; j2 < nt; ++j2) {
              long sum = 0;
              for (int r = 0; r < alg.rank; ++r) {
                sum += static_cast<long>(alg.u[r * (mt * kt) + i * kt + p]) *
                       alg.v[r * (kt * nt) + p2 * nt + j] *
                       alg.w[(i2 * nt + j2) * alg.rank + r];
              }
              const long want = (i == i2 && p == p2 && j == j2) ? 1 : 0;
              if (sum != want) return false;
            }
          }
        }
      }
    }
  }
  return true;
}

std::int64_t default_fastmm_crossover() { return 512; }

std::int64_t resolve_fastmm_crossover(const GemmOptions& opts) {
  if (opts.fastmm_crossover > 0) return opts.fastmm_crossover;
  const std::int64_t tuned =
      tuned_fastmm_crossover(resolve_simd_tier(opts.tier));
  return tuned > 0 ? tuned : default_fastmm_crossover();
}

double fastmm_error_budget(std::int64_t k, int depth) {
  // Leaf products carry the classical accumulation-length bound (~k*eps
  // per element; the 64 mirrors gemm_tolerance's slack constant), and each
  // fast level can amplify it by at most the coefficient mass of the S/T/W
  // combinations — < 6 for both shipped tables (Higham's Strassen analysis
  // gives the same per-level geometric growth). `depth` is the deepest
  // fast split applied (fastmm_max_reachable_depth for a whole call).
  return 64.0 * static_cast<double>(std::max<std::int64_t>(k, 1)) *
         std::pow(6.0, depth);
}

int fastmm_max_reachable_depth(std::int64_t m, std::int64_t n, std::int64_t k,
                               const GemmOptions& opts) {
  if (opts.fastmm == FastMmKind::kClassical) return 0;
  const std::int64_t crossover = resolve_fastmm_crossover(opts);
  int depth = 0;
  while (const FastMmAlgorithm* alg = detail::choose_fastmm(
             m, n, k, opts.fastmm, crossover, depth, opts.fastmm_max_depth)) {
    m /= alg->mt;
    k /= alg->kt;
    n /= alg->nt;
    ++depth;
  }
  return depth;
}

double fastmm_modeled_flops(std::int64_t m, std::int64_t n, std::int64_t k,
                            const GemmOptions& opts) {
  if (m <= 0 || n <= 0 || k <= 0) return 0.0;
  if (opts.fastmm == FastMmKind::kClassical) {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
  return modeled_flops_recurse(m, n, k, opts.fastmm,
                               resolve_fastmm_crossover(opts), 0,
                               opts.fastmm_max_depth);
}

const char* fastmm_kind_name(FastMmKind kind) {
  switch (kind) {
    case FastMmKind::kClassical: return "classical";
    case FastMmKind::kStrassen: return "strassen";
    case FastMmKind::kS223: return "s223";
    case FastMmKind::kAuto: return "auto";
  }
  return "classical";
}

FastMmKind parse_fastmm_kind(const std::string& name) {
  if (name == "classical") return FastMmKind::kClassical;
  if (name == "strassen") return FastMmKind::kStrassen;
  if (name == "s223") return FastMmKind::kS223;
  if (name == "auto") return FastMmKind::kAuto;
  throw std::invalid_argument("unknown fast-MM kind: \"" + name +
                              "\" (expected classical|strassen|s223|auto)");
}

namespace detail {

const FastMmAlgorithm* choose_fastmm(std::int64_t m, std::int64_t n,
                                     std::int64_t k, FastMmKind kind,
                                     std::int64_t crossover, int depth,
                                     int max_depth) {
  if (kind == FastMmKind::kClassical || depth >= max_depth) return nullptr;
  const std::int64_t x = std::max<std::int64_t>(1, crossover);
  const bool can2 = m / 2 >= x && k / 2 >= x && n / 2 >= x;
  const bool can223 = m / 2 >= x && k / 2 >= x && n / 3 >= x;
  switch (kind) {
    case FastMmKind::kStrassen:
      return can2 ? &strassen_algorithm() : nullptr;
    case FastMmKind::kS223:
      return can223 ? &s223_algorithm() : nullptr;
    case FastMmKind::kAuto:
      // Wide-C problems (SUMMA panel products with n well past the other
      // extents) take the <2,2,3> split; square-ish ones take Strassen.
      if (can223 && 2 * n >= 3 * std::max(m, k)) return &s223_algorithm();
      if (can2) return &strassen_algorithm();
      if (can223) return &s223_algorithm();
      return nullptr;
    case FastMmKind::kClassical:
      break;
  }
  return nullptr;
}

void fastmm_dgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
                  const double* a, std::int64_t lda, const double* b,
                  std::int64_t ldb, double beta, double* c, std::int64_t ldc,
                  const GemmOptions& opts) {
  const std::int64_t crossover = resolve_fastmm_crossover(opts);
  GemmOptions leaf = opts;
  leaf.fastmm = FastMmKind::kClassical;
  if (choose_fastmm(m, n, k, opts.fastmm, crossover, 0,
                    opts.fastmm_max_depth) == nullptr) {
    // No fast split applies at this size: fall straight through to the
    // classical kernel with the caller's pack-cache tag intact (the
    // operand really is the tagged panel).
    dgemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, leaf);
    return;
  }
  leaf.b_pack_key = 0;  // sub-block operands are not the tagged B panel
  fastmm_recurse(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, leaf,
                 opts.fastmm, crossover, 0, opts.fastmm_max_depth,
                 resolve_gemm_threads(opts.threads));
}

}  // namespace detail

}  // namespace summagen::blas

// Deterministic discrete-event simulator of the multi-tenant PMM service
// (DESIGN.md §5.15): open-loop Poisson arrivals over a virtual clock,
// bounded executor slots draining a JobQueue, and a pluggable service-time
// model — the default prices each distinct job signature with one
// modeled-plane run_pmm (virtual exec_time_s), memoized.
//
// Everything is virtual time from seeded pseudo-randomness, so a scenario's
// latency percentiles, shed fractions, and per-tenant service shares are
// bit-identical across runs and machines: bench/service_load emits them as
// Google-Benchmark counters and CI gates them at tight (1.05x) ratios —
// the same trick the modeled communication plane plays for paper-scale N.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/service/queue.hpp"

namespace summagen::service {

/// One entry of a tenant's workload mix.
struct JobTemplate {
  core::ExperimentConfig config;
  double mix_weight = 1.0;  ///< relative pick probability within the tenant
};

struct TenantProfile {
  std::string name;
  double weight = 1.0;         ///< fair-share weight (JobQueue DWRR)
  double arrival_share = 1.0;  ///< share of the open-loop arrival stream
  std::vector<JobTemplate> jobs;
};

struct ScenarioOptions {
  /// Open-loop (arrivals never wait for completions — the overload-honest
  /// methodology) Poisson arrival rate, jobs per virtual second.
  double arrival_rate_per_s = 10.0;
  /// Arrival window: jobs arrive in [0, duration_s); the simulation then
  /// drains everything already admitted.
  double duration_s = 60.0;
  int executors = 2;          ///< concurrent service slots
  std::uint64_t seed = 1;     ///< arrival process + workload mix draws
  JobQueue::Options queue;    ///< admission/fairness/batching knobs
  std::vector<TenantProfile> tenants;
};

/// Nearest-rank percentiles over completed-job latencies.
struct LatencyStats {
  std::int64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Computes LatencyStats from a sample set (sorts a copy; empty -> zeros).
LatencyStats latency_stats(std::vector<double> latencies);

struct TenantReport {
  std::string name;
  JobQueue::TenantStats queue;  ///< admission + DWRR accounting
  std::int64_t completed = 0;
  LatencyStats latency;
};

struct ScenarioReport {
  double makespan_s = 0.0;  ///< last completion (>= duration_s under load)
  std::int64_t submitted = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;
  double shed_fraction = 0.0;  ///< shed / submitted
  /// Completions per virtual second of makespan — the figure that must not
  /// collapse under overload (admission control's whole job).
  double throughput_jobs_per_s = 0.0;
  double offered_jobs_per_s = 0.0;  ///< submitted / duration_s
  LatencyStats latency;             ///< over all completed jobs
  std::vector<TenantReport> tenants;
  std::int64_t batches = 0;       ///< executions dispatched
  std::int64_t batched_jobs = 0;  ///< jobs that shared an execution
};

/// Virtual service seconds one execution of `config` takes.
using ServiceModel =
    std::function<double(const core::ExperimentConfig& config)>;

/// The default model: one modeled-plane run_pmm per distinct non-zero job
/// signature (forced engine=kModeled, numeric=false, no event recording),
/// returning the deterministic virtual exec_time_s; results are memoized
/// by signature so a 10^4-job scenario prices each distinct config once.
/// Call under an active RuntimeContext to share the priced plans and
/// schedules with everything else in the process.
ServiceModel modeled_service_time();

/// Runs one scenario to completion on the virtual clock. Deterministic:
/// equal options + an equal (deterministic) model give a bit-identical
/// report. Throws std::invalid_argument on an ill-formed scenario (no
/// tenants, a tenant without templates, non-positive rate/executors).
ScenarioReport simulate(const ScenarioOptions& options,
                        const ServiceModel& model);

}  // namespace summagen::service

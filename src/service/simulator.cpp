#include "src/service/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>
#include <utility>

namespace summagen::service {
namespace {

/// Uniform (0, 1] from the top 53 bits of one mt19937_64 draw. The
/// engine's output sequence is fixed by the C++ standard and the mapping
/// uses only exact dyadic arithmetic, so draws are bit-identical across
/// platforms — std::uniform_real_distribution / std::exponential_
/// distribution give no such guarantee, hence the hand-rolled transforms.
double uniform_open(std::mt19937_64& rng) {
  return (static_cast<double>(rng() >> 11) + 1.0) *
         (1.0 / 9007199254740992.0);  // 2^-53
}

/// Inverse-CDF exponential inter-arrival gap (a Poisson arrival process).
double exp_gap(std::mt19937_64& rng, double rate) {
  return -std::log(uniform_open(rng)) / rate;
}

/// Weighted index pick: r in [0, sum(weights)) walks the prefix sums.
std::size_t pick_weighted(std::mt19937_64& rng,
                          const std::vector<double>& weights, double total) {
  double r = (uniform_open(rng) - (1.0 / 9007199254740992.0)) * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) {
      return i;
    }
    r -= weights[i];
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

struct Completion {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< dispatch order — deterministic tie-break
  double start = 0.0;
  double service_s = 0.0;
  std::vector<Job> batch;
};

struct CompletionLater {
  bool operator()(const Completion& a, const Completion& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    return a.seq > b.seq;
  }
};

}  // namespace

LatencyStats latency_stats(std::vector<double> latencies) {
  LatencyStats stats;
  stats.count = static_cast<std::int64_t>(latencies.size());
  if (latencies.empty()) {
    return stats;
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double v : latencies) {
    sum += v;
  }
  stats.mean_s = sum / static_cast<double>(latencies.size());
  stats.max_s = latencies.back();
  const auto nearest_rank = [&latencies](double pct) {
    const double n = static_cast<double>(latencies.size());
    const auto rank = static_cast<std::size_t>(std::ceil(pct / 100.0 * n));
    return latencies[std::min(latencies.size() - 1,
                              rank == 0 ? 0 : rank - 1)];
  };
  stats.p50_s = nearest_rank(50.0);
  stats.p95_s = nearest_rank(95.0);
  stats.p99_s = nearest_rank(99.0);
  return stats;
}

ServiceModel modeled_service_time() {
  auto memo = std::make_shared<std::map<std::uint64_t, double>>();
  return [memo](const core::ExperimentConfig& config) {
    const std::uint64_t sig = job_signature(config);
    if (sig != 0) {
      const auto it = memo->find(sig);
      if (it != memo->end()) {
        return it->second;
      }
    }
    core::ExperimentConfig priced = config;
    priced.engine = sgmpi::Engine::kModeled;
    priced.numeric = false;
    priced.record_events = false;
    const double seconds = core::run_pmm(priced).exec_time_s;
    if (sig != 0) {
      (*memo)[sig] = seconds;
    }
    return seconds;
  };
}

ScenarioReport simulate(const ScenarioOptions& options,
                        const ServiceModel& model) {
  if (options.tenants.empty()) {
    throw std::invalid_argument("simulate: scenario needs >= 1 tenant");
  }
  for (const TenantProfile& t : options.tenants) {
    if (t.jobs.empty()) {
      throw std::invalid_argument("simulate: tenant '" + t.name +
                                  "' has no job templates");
    }
  }
  if (!(options.arrival_rate_per_s > 0.0) || !(options.duration_s > 0.0)) {
    throw std::invalid_argument(
        "simulate: arrival rate and duration must be > 0");
  }
  if (options.executors < 1) {
    throw std::invalid_argument("simulate: executors must be >= 1");
  }
  if (!model) {
    throw std::invalid_argument("simulate: null service model");
  }

  JobQueue queue(options.queue);
  std::vector<double> tenant_shares;
  double share_total = 0.0;
  for (const TenantProfile& t : options.tenants) {
    queue.set_tenant_weight(t.name, t.weight);
    tenant_shares.push_back(t.arrival_share);
    share_total += t.arrival_share;
  }
  if (!(share_total > 0.0)) {
    throw std::invalid_argument("simulate: arrival shares sum to zero");
  }

  // Open-loop arrival schedule, fully materialised up front: the arrival
  // process never reacts to service state, which is what makes overload
  // measurements honest (a closed loop self-throttles and hides collapse).
  std::mt19937_64 rng(options.seed);
  std::vector<Job> arrivals;
  std::uint64_t next_id = 1;
  for (double t = exp_gap(rng, options.arrival_rate_per_s);
       t < options.duration_s; t += exp_gap(rng, options.arrival_rate_per_s)) {
    const std::size_t ti = pick_weighted(rng, tenant_shares, share_total);
    const TenantProfile& tenant = options.tenants[ti];
    std::vector<double> mix;
    double mix_total = 0.0;
    for (const JobTemplate& jt : tenant.jobs) {
      mix.push_back(jt.mix_weight);
      mix_total += jt.mix_weight;
    }
    const std::size_t ji =
        mix_total > 0.0 ? pick_weighted(rng, mix, mix_total) : 0;
    Job job;
    job.id = next_id++;
    job.tenant = tenant.name;
    job.config = tenant.jobs[ji].config;
    job.signature = job_signature(job.config);
    job.cost_units = job_cost_units(job.config);
    job.submit_time_s = t;
    arrivals.push_back(std::move(job));
  }

  // Discrete-event loop: two event sources (arrivals in time order,
  // completions in a min-heap), completions processed first at ties so a
  // freed slot can serve work arriving at the same instant.
  std::priority_queue<Completion, std::vector<Completion>, CompletionLater>
      completions;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  int idle = options.executors;
  std::uint64_t dispatch_seq = 0;
  double now = 0.0;
  double makespan = 0.0;

  std::vector<double> all_latencies;
  std::map<std::string, std::vector<double>> tenant_latencies;
  std::map<std::string, std::int64_t> tenant_completed;

  const auto dispatch = [&] {
    while (idle > 0 && !queue.empty()) {
      Completion c;
      c.batch = queue.next_batch();
      c.start = now;
      c.service_s = model(c.batch.front().config);
      c.time = now + c.service_s;
      c.seq = dispatch_seq++;
      completions.push(std::move(c));
      --idle;
    }
  };

  std::size_t ai = 0;
  while (ai < arrivals.size() || !completions.empty()) {
    const double ta = ai < arrivals.size() ? arrivals[ai].submit_time_s : kInf;
    const double tc = !completions.empty() ? completions.top().time : kInf;
    if (tc <= ta) {
      Completion c = completions.top();
      completions.pop();
      now = c.time;
      makespan = std::max(makespan, now);
      ++idle;
      for (const Job& job : c.batch) {
        all_latencies.push_back(now - job.submit_time_s);
        tenant_latencies[job.tenant].push_back(now - job.submit_time_s);
        ++tenant_completed[job.tenant];
      }
    } else {
      now = ta;
      queue.submit(std::move(arrivals[ai]));
      ++ai;
    }
    dispatch();
  }

  ScenarioReport report;
  report.makespan_s = std::max(makespan, options.duration_s);
  report.latency = latency_stats(all_latencies);
  report.completed = report.latency.count;
  report.batches = queue.batches();
  report.batched_jobs = queue.batched_jobs();
  for (const TenantProfile& t : options.tenants) {
    TenantReport tr;
    tr.name = t.name;
    tr.queue = queue.tenant_stats(t.name);
    tr.completed = tenant_completed[t.name];
    tr.latency = latency_stats(tenant_latencies[t.name]);
    report.submitted += tr.queue.submitted;
    report.shed += tr.queue.shed;
    report.tenants.push_back(std::move(tr));
  }
  report.shed_fraction =
      report.submitted > 0
          ? static_cast<double>(report.shed) /
                static_cast<double>(report.submitted)
          : 0.0;
  report.throughput_jobs_per_s =
      report.makespan_s > 0.0
          ? static_cast<double>(report.completed) / report.makespan_s
          : 0.0;
  report.offered_jobs_per_s =
      static_cast<double>(report.submitted) / options.duration_s;
  return report;
}

}  // namespace summagen::service

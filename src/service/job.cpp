#include "src/service/job.hpp"

#include <cstring>

namespace summagen::service {
namespace {

/// Order-sensitive 64-bit fold (FNV-1a over words with an avalanche
/// finisher) — same role as blas::pack_tag but accumulating, so vectors of
/// unknown length fold in without materialising an initializer list.
class Mixer {
 public:
  void fold(std::uint64_t v) {
    h_ ^= v;
    h_ *= 0x100000001b3ull;
    h_ ^= h_ >> 29;
  }
  void fold_double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fold(bits);
  }
  template <typename T>
  void fold_all(const std::vector<T>& values) {
    fold(values.size());
    for (const T& v : values) fold(static_cast<std::uint64_t>(v));
  }

  /// Finalised, never-zero digest (0 means "unbatchable" to callers).
  std::uint64_t digest() const {
    std::uint64_t h = h_;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h == 0 ? 1 : h;
  }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

}  // namespace

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kCompleted:
      return "completed";
    case JobStatus::kShed:
      return "shed";
    case JobStatus::kFailed:
      return "failed";
  }
  return "?";
}

double job_cost_units(const core::ExperimentConfig& config) {
  const double n = static_cast<double>(config.n);
  return n * n * n / (1024.0 * 1024.0 * 1024.0);
}

std::uint64_t job_signature(const core::ExperimentConfig& config,
                            std::uint64_t salt) {
  // Executions that are not a pure function of the folded fields never
  // share: fault/drift plans and online re-partitioning mutate the
  // schedule mid-run, and measurement noise is explicitly run-varying.
  if (!config.faults.empty() || !config.drift.empty() ||
      config.repartition.enabled || config.noise_sigma != 0.0) {
    return 0;
  }
  Mixer m;
  m.fold(salt);
  m.fold(static_cast<std::uint64_t>(config.platform.nprocs()));
  m.fold(static_cast<std::uint64_t>(config.n));
  m.fold(static_cast<std::uint64_t>(config.shape));
  m.fold(static_cast<std::uint64_t>(config.regime));
  m.fold(static_cast<std::uint64_t>(config.granularity));
  for (double s : config.cpm_speeds) m.fold_double(s);
  m.fold(static_cast<std::uint64_t>(config.fpm_options.grid_step));
  m.fold(static_cast<std::uint64_t>(config.fpm_options.refine_iters));
  m.fold_all(config.preset_areas);
  m.fold(static_cast<std::uint64_t>(config.preset_spec.n));
  if (config.preset_spec.n > 0) {
    m.fold(static_cast<std::uint64_t>(config.preset_spec.subplda));
    m.fold(static_cast<std::uint64_t>(config.preset_spec.subpldb));
    m.fold_all(config.preset_spec.subp);
    m.fold_all(config.preset_spec.subph);
    m.fold_all(config.preset_spec.subpw);
  }
  m.fold(static_cast<std::uint64_t>(config.summagen_options.bcast_panel_rows));
  m.fold(static_cast<std::uint64_t>(config.summagen_options.scheduler));
  m.fold(static_cast<std::uint64_t>(config.summagen_options.overlap_depth));
  m.fold(config.summagen_options.pack_namespace);
  m.fold(config.numeric ? 1 : 0);
  m.fold(config.record_events ? 1 : 0);
  m.fold(config.contended ? 1 : 0);
  m.fold(config.seed);
  m.fold(static_cast<std::uint64_t>(config.kernel.kernel));
  m.fold(static_cast<std::uint64_t>(config.kernel.tier));
  m.fold(static_cast<std::uint64_t>(config.kernel.block));
  m.fold(static_cast<std::uint64_t>(config.engine));
  m.fold(static_cast<std::uint64_t>(config.bcast_algo));
  m.fold(config.two_level_collectives ? 1 : 0);
  return m.digest();
}

}  // namespace summagen::service

// Multi-tenant job queue: admission control + deficit-weighted round-robin
// (DWRR) fair dispatch + coalescing of identical jobs (DESIGN.md §5.15).
//
// The queue is the scheduling brain shared by both execution frontends —
// the deterministic virtual-clock simulator (bench/service_load, CI-gated)
// and the threaded PmmService — so fairness and shedding behave
// identically whether latencies are virtual or wall-clock.
//
//   * Admission: tail-drop. A submit that would exceed the global depth
//     bound (or the per-tenant bound, which stops one flooding tenant from
//     squeezing everyone else out of the queue) is refused immediately —
//     under overload the service sheds load at the door instead of growing
//     an unbounded backlog whose every job times out.
//   * Dispatch: DWRR over tenants in registration order. Each tenant
//     accrues `quantum_units x weight` of deficit per scheduling round and
//     spends it on its jobs' cost_units (n^3-based), so long-run service
//     shares converge to the weight ratio regardless of per-job sizes —
//     the classic Shreedhar/Varghese scheme, O(1) amortised per dispatch.
//   * Batching: a dispatched job with a non-zero signature pulls up to
//     batch_limit-1 identical jobs (any tenant, oldest first) into one
//     shared execution; every member's tenant is charged an equal split of
//     the cost, since one execution served them all.
//
// Not thread-safe: PmmService serialises access under its own mutex, and
// the simulator is single-threaded by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/service/job.hpp"

namespace summagen::service {

class JobQueue {
 public:
  struct Options {
    /// Total queued jobs across tenants before submits shed; 0 = unbounded.
    std::size_t max_depth = 256;
    /// Per-tenant depth bound; 0 = the global bound (no extra isolation).
    std::size_t max_tenant_depth = 0;
    /// Jobs coalesced into one execution (1 disables batching).
    std::size_t batch_limit = 8;
    /// Deficit granted per unit weight per scheduling round, in the same
    /// units as Job::cost_units. Any positive value gives weight-
    /// proportional long-run shares; values around the typical job cost
    /// keep the interleaving fine-grained.
    double quantum_units = 8.0;
  };

  struct TenantStats {
    double weight = 1.0;
    std::int64_t submitted = 0;   ///< submit() calls
    std::int64_t admitted = 0;    ///< accepted into the queue
    std::int64_t shed = 0;        ///< refused at admission
    std::int64_t dispatched = 0;  ///< handed to an executor
    /// Cost charged to this tenant (batch members pay an even split) —
    /// the quantity whose cross-tenant ratios DWRR drives to the weights.
    double service_units = 0.0;
    std::size_t queued = 0;  ///< current depth
  };

  JobQueue();  ///< default Options
  explicit JobQueue(const Options& options);

  /// Sets (or pre-registers) a tenant's fair-share weight; clamped to a
  /// small positive floor so the deficit accounting stays well-posed.
  /// Unknown tenants submitting are auto-registered with weight 1.
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Admission control: returns false (job shed, not stored) when a depth
  /// bound is hit. The job's signature/cost_units must be filled in
  /// (job_signature/job_cost_units) by the caller.
  bool submit(Job job);

  /// Dispatches the next batch under DWRR: the winning tenant's oldest
  /// job, plus up to batch_limit-1 queued jobs with the same non-zero
  /// signature (scanning tenants in registration order, oldest first).
  /// Empty when no jobs are queued.
  std::vector<Job> next_batch();

  std::size_t depth() const { return depth_; }
  bool empty() const { return depth_ == 0; }

  TenantStats tenant_stats(const std::string& tenant) const;
  /// All tenants in registration order.
  std::vector<std::pair<std::string, TenantStats>> all_tenant_stats() const;

  std::int64_t batches() const { return batches_; }
  std::int64_t batched_jobs() const { return batched_jobs_; }

 private:
  struct Tenant {
    std::string name;
    double weight = 1.0;
    double deficit = 0.0;
    bool replenished = false;  ///< deficit granted for the current visit
    std::deque<Job> jobs;
    TenantStats stats;
  };

  Tenant& tenant(const std::string& name);

  Options options_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  ///< registration order
  std::map<std::string, std::size_t> index_;
  std::size_t depth_ = 0;
  std::size_t cursor_ = 0;  ///< DWRR position
  std::int64_t batches_ = 0;
  std::int64_t batched_jobs_ = 0;  ///< jobs that rode a shared execution
};

}  // namespace summagen::service

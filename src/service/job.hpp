// Job model of the multi-tenant PMM service (DESIGN.md §5.15).
//
// A job is one PMM request — an ExperimentConfig plus the tenant it bills
// to. The service layers above (JobQueue, ServiceSimulator, PmmService)
// schedule jobs by tenant-weighted fair queueing, shed them under
// overload, and coalesce identical jobs into one shared execution; this
// header defines the shared vocabulary: the job record, its lifecycle
// outcome, and the signature that decides "identical".
#pragma once

#include <cstdint>
#include <string>

#include "src/core/runner.hpp"

namespace summagen::service {

/// What happened to a submitted job.
enum class JobStatus {
  kCompleted,  ///< executed (possibly as part of a shared batch)
  kShed,       ///< refused at admission (queue full) — never executed
  kFailed,     ///< execution threw (configuration error, ...)
};

const char* to_string(JobStatus status);

/// One queued PMM request.
struct Job {
  std::uint64_t id = 0;  ///< service-assigned, unique per submission
  std::string tenant;
  core::ExperimentConfig config;
  /// Batching/plan identity of `config` (job_signature); 0 = unbatchable.
  std::uint64_t signature = 0;
  /// Abstract service cost used for fair-share accounting (n^3 based).
  double cost_units = 0.0;
  /// Submission time on the service's clock (virtual in the simulator,
  /// wall seconds in PmmService).
  double submit_time_s = 0.0;
};

/// Scheduling cost of one job in abstract service units: n^3 / 2^30 — the
/// classical-complexity work of the multiplication, scaled so paper-sized
/// problems land in single digits. Deliberately model-free: fairness is
/// about *requested* work, and pricing it identically for every tenant
/// keeps the deficit accounting interpretable.
double job_cost_units(const core::ExperimentConfig& config);

/// Batching/plan-reuse identity of a config, or 0 when the config must
/// never share an execution (fault plans, drift plans, online
/// re-partitioning, measurement noise — anything whose execution is more
/// than a pure function of the fields folded in below).
///
/// Two configs with equal non-zero signatures execute identically: the
/// signature folds in n, shape, regime, granularity, preset areas/spec
/// layout, CPM speed bits, engine, scheduler and its options, the numeric
/// flag and fill seed, the collective pricing options, and the platform's
/// processor count. It does NOT hash full platform or FPM-model contents —
/// per the repo's caller-asserted identity idiom (blas b_pack_key), a
/// caller mixing distinct platforms or custom models in one service must
/// make them distinguishable via `salt` (e.g. an index per platform).
std::uint64_t job_signature(const core::ExperimentConfig& config,
                            std::uint64_t salt = 0);

/// Delivery record for one job.
struct JobResult {
  std::uint64_t id = 0;
  std::string tenant;
  JobStatus status = JobStatus::kShed;
  core::ExperimentResult result;  ///< valid when kCompleted
  std::string error;              ///< what() when kFailed
  double queue_wait_s = 0.0;      ///< admission -> dispatch
  double service_s = 0.0;         ///< dispatch -> completion
  double latency_s = 0.0;         ///< admission -> completion (0 when shed)
  /// Jobs sharing this execution (1 = ran alone). The shared result is
  /// delivered to every member; cost accounting split the units evenly.
  int batch_size = 1;
};

}  // namespace summagen::service

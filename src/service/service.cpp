#include "src/service/service.hpp"

#include <chrono>
#include <exception>
#include <utility>

namespace summagen::service {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Per-job delivery state living outside the queue: the promise the
/// submitter holds the future of, plus the submission instant.
struct PmmService::Pending {
  std::promise<JobResult> promise;
  std::string tenant;
  double submit_s = 0.0;
};

PmmService::PmmService() : PmmService(Options()) {}

PmmService::PmmService(const Options& options)
    : options_(options),
      runtime_(options.runtime),
      queue_(options.queue) {
  const int executors = options_.executors < 1 ? 1 : options_.executors;
  executors_.reserve(static_cast<std::size_t>(executors));
  for (int i = 0; i < executors; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

PmmService::~PmmService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : executors_) {
    t.join();
  }
}

void PmmService::set_tenant_weight(const std::string& tenant, double weight) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_.set_tenant_weight(tenant, weight);
}

std::future<JobResult> PmmService::submit(
    const std::string& tenant, const core::ExperimentConfig& config) {
  auto pending = std::make_shared<Pending>();
  pending->tenant = tenant;
  pending->submit_s = now_s();
  std::future<JobResult> future = pending->promise.get_future();

  Job job;
  job.tenant = tenant;
  job.config = config;
  job.signature = job_signature(config, options_.signature_salt);
  job.cost_units = job_cost_units(config);
  job.submit_time_s = pending->submit_s;
  if (options_.reuse_plans && job.signature != 0 &&
      job.config.plan_cache_key == 0) {
    job.config.plan_cache_key = job.signature;
  }

  bool admitted = false;
  std::uint64_t id = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++counters_.submitted;
    id = next_id_++;
    job.id = id;
    // A stopping service sheds everything: executors are draining towards
    // exit and might already be past their final queue check.
    admitted = !stopping_ && queue_.submit(std::move(job));
    if (admitted) {
      pending_.emplace(id, pending);
    } else {
      ++counters_.shed;
    }
  }
  if (admitted) {
    work_cv_.notify_one();
  } else {
    JobResult shed;
    shed.id = id;
    shed.tenant = tenant;
    shed.status = JobStatus::kShed;
    pending->promise.set_value(std::move(shed));
  }
  return future;
}

void PmmService::executor_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to drain
      }
      batch = queue_.next_batch();
      ++active_;
    }
    execute_batch(std::move(batch));
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

void PmmService::execute_batch(std::vector<Job> batch) {
  const double start_s = now_s();
  core::ExperimentResult result;
  std::string error;
  bool ok = true;
  try {
    result = core::run_pmm(batch.front().config);
  } catch (const std::exception& e) {
    ok = false;
    error = e.what();
  } catch (...) {
    ok = false;
    error = "unknown execution error";
  }
  const double end_s = now_s();

  std::vector<std::shared_ptr<Pending>> members;
  members.reserve(batch.size());
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const Job& job : batch) {
      const auto it = pending_.find(job.id);
      members.push_back(it != pending_.end() ? it->second : nullptr);
      if (it != pending_.end()) {
        pending_.erase(it);
      }
    }
    ++counters_.batches;
    if (batch.size() > 1) {
      counters_.batched_jobs += static_cast<std::int64_t>(batch.size());
    }
    if (ok) {
      counters_.completed += static_cast<std::int64_t>(batch.size());
    } else {
      counters_.failed += static_cast<std::int64_t>(batch.size());
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (members[i] == nullptr) {
      continue;  // unreachable: pending_ outlives queue residency
    }
    JobResult jr;
    jr.id = batch[i].id;
    jr.tenant = batch[i].tenant;
    jr.status = ok ? JobStatus::kCompleted : JobStatus::kFailed;
    if (ok) {
      jr.result = result;  // shared execution: every member gets the result
    } else {
      jr.error = error;
    }
    jr.queue_wait_s = start_s - members[i]->submit_s;
    jr.service_s = end_s - start_s;
    jr.latency_s = end_s - members[i]->submit_s;
    jr.batch_size = static_cast<int>(batch.size());
    members[i]->promise.set_value(std::move(jr));
  }
}

void PmmService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

PmmService::Counters PmmService::counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  Counters c = counters_;
  c.batches = queue_.batches();
  c.batched_jobs = queue_.batched_jobs();
  return c;
}

JobQueue::TenantStats PmmService::tenant_stats(
    const std::string& tenant) const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.tenant_stats(tenant);
}

}  // namespace summagen::service

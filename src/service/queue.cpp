#include "src/service/queue.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace summagen::service {
namespace {

/// Weights below this are clamped up so deficit growth never stalls.
constexpr double kMinWeight = 1e-6;
/// Absorbs float rounding in the deficit/cost comparison so a tenant whose
/// accumulated quantum exactly matches a job's cost is not spuriously
/// skipped for one extra round.
constexpr double kDeficitEps = 1e-9;

}  // namespace

JobQueue::JobQueue() : JobQueue(Options()) {}

JobQueue::JobQueue(const Options& options) : options_(options) {
  if (options_.batch_limit == 0) {
    throw std::invalid_argument("JobQueue: batch_limit must be >= 1");
  }
  if (!(options_.quantum_units > 0.0)) {
    throw std::invalid_argument("JobQueue: quantum_units must be > 0");
  }
}

JobQueue::Tenant& JobQueue::tenant(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) {
    return *tenants_[it->second];
  }
  auto owned = std::make_unique<Tenant>();
  owned->name = name;
  owned->stats.weight = owned->weight;
  index_.emplace(name, tenants_.size());
  tenants_.push_back(std::move(owned));
  return *tenants_.back();
}

void JobQueue::set_tenant_weight(const std::string& name, double weight) {
  Tenant& t = tenant(name);
  t.weight = std::max(weight, kMinWeight);
  t.stats.weight = t.weight;
}

bool JobQueue::submit(Job job) {
  Tenant& t = tenant(job.tenant);
  ++t.stats.submitted;
  const std::size_t tenant_bound = options_.max_tenant_depth != 0
                                       ? options_.max_tenant_depth
                                       : options_.max_depth;
  const bool full = (options_.max_depth != 0 && depth_ >= options_.max_depth) ||
                    (tenant_bound != 0 && t.jobs.size() >= tenant_bound);
  if (full) {
    ++t.stats.shed;
    return false;
  }
  ++t.stats.admitted;
  t.jobs.push_back(std::move(job));
  t.stats.queued = t.jobs.size();
  ++depth_;
  return true;
}

std::vector<Job> JobQueue::next_batch() {
  if (depth_ == 0) {
    return {};
  }

  // DWRR scan: visit tenants round-robin from the cursor; on first arrival
  // at a backlogged tenant grant its quantum, dispatch if the deficit
  // covers the head job, otherwise move on. The cursor stays on the
  // dispatching tenant (its `replenished` flag stays set, so it is not
  // re-granted) — a tenant with deficit left keeps dispatching until it is
  // spent, exactly one quantum's worth of burst per round.
  //
  // When a whole pass finds every backlogged head unaffordable (jobs much
  // costlier than the quantum), we bulk-advance all backlogged tenants by
  // the minimum number of further rounds that makes some head affordable —
  // identical shares to looping round-by-round, but O(tenants) per
  // dispatch instead of O(cost/quantum).
  Tenant* winner = nullptr;
  while (winner == nullptr) {
    std::size_t scanned = 0;
    double min_rounds = 0.0;
    bool any_backlogged = false;
    while (scanned < tenants_.size()) {
      Tenant& t = *tenants_[cursor_];
      if (t.jobs.empty()) {
        // An idle tenant forfeits its balance: DWRR deficits reward
        // backlog, not absence, otherwise a long-idle tenant returns with
        // an unbounded burst.
        t.deficit = 0.0;
        t.replenished = false;
      } else {
        if (!t.replenished) {
          t.deficit += options_.quantum_units * t.weight;
          t.replenished = true;
        }
        if (t.deficit + kDeficitEps >= t.jobs.front().cost_units) {
          winner = &t;
          break;
        }
        any_backlogged = true;
        const double gap = t.jobs.front().cost_units - t.deficit;
        const double rounds =
            std::ceil(gap / (options_.quantum_units * t.weight));
        if (min_rounds == 0.0 || rounds < min_rounds) {
          min_rounds = rounds;
        }
      }
      t.replenished = false;
      cursor_ = (cursor_ + 1) % tenants_.size();
      ++scanned;
    }
    if (winner == nullptr) {
      if (!any_backlogged) {
        return {};  // unreachable while depth_ > 0; defensive
      }
      for (const auto& owned : tenants_) {
        if (!owned->jobs.empty()) {
          owned->deficit += min_rounds * options_.quantum_units * owned->weight;
          owned->replenished = true;
        }
      }
    }
  }

  std::vector<Job> batch;
  batch.push_back(std::move(winner->jobs.front()));
  winner->jobs.pop_front();
  // Copied, not referenced: push_back below reallocates `batch` and would
  // invalidate a reference into it.
  const std::uint64_t primary_signature = batch.front().signature;
  const double primary_cost = batch.front().cost_units;

  // Coalesce identical queued jobs (same non-zero signature) into this
  // execution, scanning tenants in registration order and each tenant's
  // queue oldest-first, so membership is deterministic.
  if (primary_signature != 0 && options_.batch_limit > 1) {
    for (const auto& owned : tenants_) {
      if (batch.size() >= options_.batch_limit) {
        break;
      }
      auto& jobs = owned->jobs;
      for (auto it = jobs.begin();
           it != jobs.end() && batch.size() < options_.batch_limit;) {
        if (it->signature == primary_signature) {
          batch.push_back(std::move(*it));
          it = jobs.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // One execution served the whole batch: each member's tenant pays an
  // even split of the primary's cost, keeping total charged units equal to
  // work actually performed.
  const double split = primary_cost / static_cast<double>(batch.size());
  for (const Job& job : batch) {
    Tenant& t = tenant(job.tenant);
    t.deficit = std::max(0.0, t.deficit - split);
    t.stats.service_units += split;
    ++t.stats.dispatched;
    t.stats.queued = t.jobs.size();
  }
  depth_ -= batch.size();
  ++batches_;
  if (batch.size() > 1) {
    batched_jobs_ += static_cast<std::int64_t>(batch.size());
  }
  return batch;
}

JobQueue::TenantStats JobQueue::tenant_stats(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    return TenantStats{};
  }
  return tenants_[it->second]->stats;
}

std::vector<std::pair<std::string, JobQueue::TenantStats>>
JobQueue::all_tenant_stats() const {
  std::vector<std::pair<std::string, TenantStats>> out;
  out.reserve(tenants_.size());
  for (const auto& owned : tenants_) {
    out.emplace_back(owned->name, owned->stats);
  }
  return out;
}

}  // namespace summagen::service

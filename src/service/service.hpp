// PmmService: the threaded frontend of the multi-tenant job service
// (DESIGN.md §5.15) — real executions with wall-clock latencies, where the
// simulator (simulator.hpp) is the virtual-clock twin for benchmarking.
//
// One PmmService owns one core::RuntimeContext (shared pool, plan cache,
// pack cache, schedule cache) and a fixed set of executor threads draining
// a JobQueue under DWRR fairness. submit() returns a future; jobs shed at
// admission resolve immediately with JobStatus::kShed. Batchable jobs
// (equal non-zero signatures) coalesce into one run_pmm whose result is
// delivered to every member, and their signature doubles as the
// plan_cache_key / pack namespace, so a stream of identical jobs re-plans
// and re-packs exactly once.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/runner.hpp"
#include "src/service/queue.hpp"

namespace summagen::service {

class PmmService {
 public:
  struct Options {
    /// Executor threads. Each dispatched job runs a full run_pmm on its
    /// executor (thread-engine jobs spawn their rank threads from there),
    /// so size `runtime.reserved_threads` for executors x ranks when
    /// oversubscription matters.
    int executors = 2;
    JobQueue::Options queue;
    core::RuntimeContext::Options runtime;
    /// Folded into every job_signature — set when mixing configs whose
    /// identity the signature does not hash (distinct platforms, custom
    /// FPM models); see job_signature's contract.
    std::uint64_t signature_salt = 0;
    /// Use each batchable job's signature as its plan_cache_key (and thus
    /// pack namespace) for cross-job reuse. Off = every job re-plans.
    bool reuse_plans = true;
  };

  struct Counters {
    std::int64_t submitted = 0;
    std::int64_t shed = 0;
    std::int64_t completed = 0;
    std::int64_t failed = 0;
    std::int64_t batches = 0;       ///< executions dispatched
    std::int64_t batched_jobs = 0;  ///< jobs that shared an execution
  };

  /// Starts the executors. Throws std::logic_error if another
  /// RuntimeContext is already active in the process (the context is the
  /// exclusive pool owner).
  PmmService();  ///< default Options
  explicit PmmService(const Options& options);

  /// Drains every admitted job, then stops the executors.
  ~PmmService();

  PmmService(const PmmService&) = delete;
  PmmService& operator=(const PmmService&) = delete;

  /// Sets a tenant's DWRR weight (default 1; may be called any time).
  void set_tenant_weight(const std::string& tenant, double weight);

  /// Submits one job. Always returns a valid future: kShed immediately
  /// when admission refuses, otherwise kCompleted/kFailed after execution.
  std::future<JobResult> submit(const std::string& tenant,
                                const core::ExperimentConfig& config);

  /// Blocks until every admitted job has completed (the queue is empty and
  /// all executors idle). New submissions during a drain may extend it.
  void drain();

  Counters counters() const;
  JobQueue::TenantStats tenant_stats(const std::string& tenant) const;

  /// The shared runtime (plan-cache stats, epoch bumps, ...).
  core::RuntimeContext& runtime() { return runtime_; }

 private:
  struct Pending;

  void executor_loop();
  void execute_batch(std::vector<Job> batch);

  Options options_;
  core::RuntimeContext runtime_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue non-empty or stopping
  std::condition_variable drain_cv_;  ///< queue empty and executors idle
  JobQueue queue_;
  /// Promise + clock bookkeeping per queued job, keyed by job id (batching
  /// pulls jobs from arbitrary queue positions, so no FIFO container fits).
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::uint64_t next_id_ = 1;
  int active_ = 0;  ///< executors currently running a batch
  bool stopping_ = false;
  Counters counters_;

  std::vector<std::thread> executors_;
};

}  // namespace summagen::service

#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/mpi/context.hpp"
#include "src/mpi/engine.hpp"
#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {

namespace detail {
std::uint64_t next_context_uid() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

const char* to_string(Engine engine) noexcept {
  return engine == Engine::kModeled ? "modeled" : "thread";
}

Engine parse_engine(const std::string& name) {
  if (name == "thread") return Engine::kThread;
  if (name == "modeled") return Engine::kModeled;
  throw std::invalid_argument("unknown engine '" + name +
                              "' (expected thread|modeled)");
}

Runtime::Runtime(Config config) : config_(config) {
  if (config_.nranks < 1) {
    throw std::invalid_argument("sgmpi: nranks must be >= 1");
  }
  ctx_ = std::make_shared<Context>(config_);
}

Runtime::~Runtime() = default;

void Runtime::run(const std::function<void(Comm&)>& body) {
  if (ctx_->poisoned) {
    throw std::logic_error(
        "sgmpi: Runtime was poisoned by an aborted run; create a new one");
  }
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(config_.nranks));
  // One rank body, shared by both engines so error semantics cannot drift.
  const auto rank_main = [this, &body, &errors](int r) {
    try {
      Comm world(ctx_, 0, r);
      body(world);
    } catch (const RankCrashedError&) {
      // A planned crash that the body did not handle: the victim exits
      // quietly. Its peers observe the failure as PeerFailedError and
      // either recover (fault-tolerant bodies) or unwind the run with a
      // typed error instead of polling forever.
    } catch (...) {
      errors[static_cast<std::size_t>(r)] = std::current_exception();
      ctx_->aborted.store(true, std::memory_order_relaxed);
      // Wake blocked peers so the unwind is prompt, not a poll period.
      ctx_->notify_all_waiters();
    }
  };

  if (config_.engine == Engine::kModeled) {
    // All ranks as fibers on this thread, resumed round-robin in rank
    // order; blocked operations yield back here instead of sleeping.
    detail::FiberHost host(config_.nranks, config_.fiber_stack_bytes);
    host.run(rank_main);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(config_.nranks));
    for (int r = 0; r < config_.nranks; ++r) {
      threads.emplace_back([&rank_main, r] { rank_main(r); });
    }
    for (auto& t : threads) t.join();
  }

  if (ctx_->aborted.load()) {
    ctx_->poisoned = true;
    // Surface the first real error, preferring non-Aborted exceptions so the
    // root cause is reported rather than a sympathetic unwind.
    std::exception_ptr aborted_error;
    for (const auto& e : errors) {
      if (!e) continue;
      try {
        std::rethrow_exception(e);
      } catch (const AbortedError&) {
        aborted_error = e;
      } catch (...) {
        std::rethrow_exception(e);
      }
    }
    if (aborted_error) std::rethrow_exception(aborted_error);
    throw std::logic_error("sgmpi: aborted without recorded error");
  }
}

const trace::VirtualClock& Runtime::clock(int rank) const {
  if (rank < 0 || rank >= config_.nranks) {
    throw std::out_of_range("sgmpi: clock rank out of range");
  }
  return ctx_->clocks[static_cast<std::size_t>(rank)];
}

double Runtime::max_vtime() const {
  double worst = 0.0;
  for (const auto& c : ctx_->clocks) worst = std::max(worst, c.now());
  return worst;
}

trace::EventLog& Runtime::events() { return ctx_->event_log; }

void Runtime::reset_clocks() {
  for (auto& c : ctx_->clocks) c.reset();
}

std::vector<FaultRecord> Runtime::fault_records() const {
  if (!ctx_->faults) return {};
  return ctx_->faults->records();
}

}  // namespace summagen::sgmpi

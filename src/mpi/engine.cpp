#include "src/mpi/engine.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <stdexcept>

// Fiber switches move the stack pointer between unrelated allocations, which
// ASan and TSan must be told about or they report false positives (and ASan's
// fake-stack bookkeeping leaks). Both interfaces ship with GCC >= 10 / Clang.
#if defined(__SANITIZE_ADDRESS__)
#define SUMMAGEN_ASAN_FIBERS 1
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(__SANITIZE_THREAD__)
#define SUMMAGEN_TSAN_FIBERS 1
#include <sanitizer/tsan_interface.h>
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(SUMMAGEN_ASAN_FIBERS)
#define SUMMAGEN_ASAN_FIBERS 1
#include <sanitizer/common_interface_defs.h>
#endif
#if __has_feature(thread_sanitizer) && !defined(SUMMAGEN_TSAN_FIBERS)
#define SUMMAGEN_TSAN_FIBERS 1
#include <sanitizer/tsan_interface.h>
#endif
#endif

namespace summagen::sgmpi::detail {

namespace {
thread_local FiberHost* g_current_host = nullptr;

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t ps = page_size();
  return (bytes + ps - 1) / ps * ps;
}
}  // namespace

struct FiberHost::Fiber {
  ucontext_t ctx{};
  ucontext_t return_ctx{};  ///< where the scheduler resumes when we yield
  void* mapping = nullptr;  ///< guard page + stack
  std::size_t mapping_bytes = 0;
  void* stack = nullptr;  ///< usable stack (above the guard page)
  std::size_t stack_bytes = 0;
  FiberHost* host = nullptr;
  int index = -1;
  bool started = false;
  bool done = false;
  void* fake_stack = nullptr;  ///< ASan fake-stack save slot
  void* tsan_fiber = nullptr;

  ~Fiber() {
#if defined(SUMMAGEN_TSAN_FIBERS)
    if (tsan_fiber != nullptr) __tsan_destroy_fiber(tsan_fiber);
#endif
    if (mapping != nullptr) ::munmap(mapping, mapping_bytes);
  }
};

FiberHost::FiberHost(int nfibers, std::size_t stack_bytes) {
  if (nfibers < 0) {
    throw std::invalid_argument("sgmpi: FiberHost with negative fiber count");
  }
  stack_bytes_ =
      round_up_pages(stack_bytes == 0 ? kDefaultStackBytes : stack_bytes);
  if (stack_bytes_ < 4 * page_size()) stack_bytes_ = 4 * page_size();
  fibers_.reserve(static_cast<std::size_t>(nfibers));
  errors_.resize(static_cast<std::size_t>(nfibers));
  for (int i = 0; i < nfibers; ++i) {
    auto f = std::make_unique<Fiber>();
    f->host = this;
    f->index = i;
    // One anonymous mapping per fiber: [guard page][stack]. Pages commit
    // lazily on first touch, so idle fibers cost address space, not RSS.
    f->mapping_bytes = stack_bytes_ + page_size();
    void* m = ::mmap(nullptr, f->mapping_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (m == MAP_FAILED) throw std::bad_alloc();
    f->mapping = m;
    ::mprotect(m, page_size(), PROT_NONE);  // overflow faults, not corrupts
    f->stack = static_cast<std::byte*>(m) + page_size();
    f->stack_bytes = stack_bytes_;
    fibers_.push_back(std::move(f));
  }
}

FiberHost::~FiberHost() = default;

FiberHost* FiberHost::current() noexcept { return g_current_host; }

void FiberHost::trampoline() {
  // The scheduler sets g_current_host and running_ before the first switch
  // into this fiber, so no arguments need to survive makecontext's int-only
  // calling convention.
  FiberHost* host = g_current_host;
  Fiber* f = host->fibers_[static_cast<std::size_t>(host->running_)].get();
#if defined(SUMMAGEN_ASAN_FIBERS)
  // First entry on this stack: tell ASan the switch completed and learn the
  // scheduler stack's bounds for the switches back.
  __sanitizer_finish_switch_fiber(f->fake_stack, &host->host_stack_bottom_,
                                  &host->host_stack_size_);
#endif
  try {
    (*host->body_)(f->index);
  } catch (...) {
    host->errors_[static_cast<std::size_t>(f->index)] =
        std::current_exception();
  }
  f->done = true;
  ++host->finished_;
  host->switch_back(*f, /*dying=*/true);
  // Unreachable: a dead fiber is never resumed.
}

void FiberHost::switch_to(int index) {
  Fiber& f = *fibers_[static_cast<std::size_t>(index)];
  running_ = index;
  if (!f.started) {
    f.started = true;
    ::getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack;
    f.ctx.uc_stack.ss_size = f.stack_bytes;
    f.ctx.uc_link = nullptr;
    ::makecontext(&f.ctx, &FiberHost::trampoline, 0);
  }
#if defined(SUMMAGEN_TSAN_FIBERS)
  if (f.tsan_fiber == nullptr) f.tsan_fiber = __tsan_create_fiber(0);
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
#if defined(SUMMAGEN_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&host_fake_stack_, f.stack, f.stack_bytes);
#endif
  ::swapcontext(&f.return_ctx, &f.ctx);
#if defined(SUMMAGEN_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(host_fake_stack_, nullptr, nullptr);
#endif
  running_ = -1;
}

void FiberHost::switch_back(Fiber& fiber, bool dying) {
#if defined(SUMMAGEN_TSAN_FIBERS)
  __tsan_switch_to_fiber(host_tsan_fiber_, 0);
#endif
#if defined(SUMMAGEN_ASAN_FIBERS)
  // A dying fiber passes null so ASan releases its fake stack.
  __sanitizer_start_switch_fiber(dying ? nullptr : &fiber.fake_stack,
                                 host_stack_bottom_, host_stack_size_);
#endif
  ::swapcontext(&fiber.ctx, &fiber.return_ctx);
#if defined(SUMMAGEN_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fiber.fake_stack, nullptr, nullptr);
#endif
  (void)dying;
}

void FiberHost::yield() {
  if (running_ < 0) {
    throw std::logic_error("sgmpi: FiberHost::yield outside a fiber");
  }
  switch_back(*fibers_[static_cast<std::size_t>(running_)], /*dying=*/false);
}

void FiberHost::run(const std::function<void(int)>& body) {
  if (g_current_host != nullptr) {
    throw std::logic_error("sgmpi: nested FiberHost::run on one thread");
  }
  body_ = &body;
  g_current_host = this;
#if defined(SUMMAGEN_TSAN_FIBERS)
  host_tsan_fiber_ = __tsan_get_current_fiber();
#endif
  const int n = static_cast<int>(fibers_.size());
  // Round-robin sweeps in ascending rank order until every fiber returns.
  // Each resumed fiber runs until it finishes or hits a blocking wait site
  // (which yields); the sweep order is the whole scheduling policy, so the
  // interleaving — and therefore every max/sum over rank arrival state — is
  // exactly reproducible.
  while (finished_ < n) {
    for (int i = 0; i < n; ++i) {
      if (!fibers_[static_cast<std::size_t>(i)]->done) switch_to(i);
    }
  }
  g_current_host = nullptr;
  body_ = nullptr;
}

}  // namespace summagen::sgmpi::detail

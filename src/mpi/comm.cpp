#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/mpi/context.hpp"
#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {

namespace {

void validate_root(int root, int size) {
  if (root < 0 || root >= size) {
    throw std::invalid_argument("sgmpi: root " + std::to_string(root) +
                                " outside communicator of size " +
                                std::to_string(size));
  }
}

}  // namespace

int Comm::size() const noexcept {
  return static_cast<int>(ctx_->state(state_index_).members.size());
}

const std::vector<int>& Comm::world_ranks() const noexcept {
  return ctx_->state(state_index_).members;
}

int Comm::world_rank() const noexcept {
  return world_ranks()[static_cast<std::size_t>(rank_)];
}

trace::VirtualClock& Comm::clock() {
  return ctx_->clocks[static_cast<std::size_t>(world_rank())];
}

const trace::VirtualClock& Comm::clock() const {
  return ctx_->clocks[static_cast<std::size_t>(world_rank())];
}

trace::EventLog& Comm::events() { return ctx_->event_log; }

const trace::HockneyParams& Comm::link() const {
  return ctx_->state(state_index_).link;
}

const trace::HockneyParams& Comm::link_to(int dest) const {
  const int me = world_rank();
  const int other = world_ranks()[static_cast<std::size_t>(dest)];
  if (ctx_->node_of(me) == ctx_->node_of(other)) return ctx_->config.link;
  return ctx_->config.internode_link;
}

void Comm::barrier() {
  auto& st = ctx_->state(state_index_);
  const int q = size();
  if (q == 1) return;
  const double entry = clock().now();
  double entry_max = 0.0;
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { st.entry_max = std::max(st.entry_max, entry); },
      [&] {
        st.op_complete = st.entry_max + barrier_cost(link(), q);
      });
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] { st.entry_max = 0.0; });
  clock().wait_until(entry_max);
  clock().advance_comm(barrier_cost(link(), q));
  if (events().enabled()) {
    events().record({world_rank(), trace::EventKind::kBarrier, entry,
                     clock().now(), 0, 0, ""});
  }
}

double Comm::bcast_bytes(void* data, std::int64_t bytes, int root) {
  const int q = size();
  validate_root(root, q);
  if (bytes < 0) throw std::invalid_argument("sgmpi: negative bcast size");
  if (q == 1) return 0.0;

  auto& st = ctx_->state(state_index_);
  const double entry = clock().now();
  const double cost = trace::bcast_cost(link(), bytes, q);

  // Phase 1: gather entry times, publish the root's source buffer.
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        if (rank_ == root) st.bcast_src = data;
      },
      [&] { st.op_complete = st.entry_max + cost; });

  // Data movement happens outside the lock; the trailing rendezvous keeps
  // the root's buffer alive until every receiver has copied.
  if (data != nullptr && rank_ != root && st.bcast_src != nullptr) {
    std::memcpy(data, st.bcast_src, static_cast<std::size_t>(bytes));
  }

  double entry_max = 0.0;
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.bcast_src = nullptr;
        st.entry_max = 0.0;
      });

  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  if (events().enabled()) {
    events().record({world_rank(), trace::EventKind::kBcast, entry,
                     clock().now(), bytes, 0,
                     "root=w" + std::to_string(world_ranks()[static_cast<
                                    std::size_t>(root)])});
  }
  return cost;
}

void Comm::send_bytes(const void* data, std::int64_t bytes, int dest,
                      int tag) {
  const int q = size();
  if (dest < 0 || dest >= q) {
    throw std::invalid_argument("sgmpi: send to invalid rank");
  }
  if (dest == rank_) {
    throw std::invalid_argument("sgmpi: send to self is not supported");
  }
  if (bytes < 0) throw std::invalid_argument("sgmpi: negative send size");

  detail::Message msg;
  msg.comm_state = state_index_;
  msg.src_comm_rank = rank_;
  msg.tag = tag;
  msg.bytes = bytes;
  msg.sender_entry_vtime = clock().now();
  if (data != nullptr && bytes > 0) {
    const auto* p = static_cast<const std::byte*>(data);
    msg.payload.assign(p, p + bytes);
  }

  const int dest_world = world_ranks()[static_cast<std::size_t>(dest)];
  auto& box = ctx_->mailboxes[static_cast<std::size_t>(dest_world)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
  clock().advance_comm(link_to(dest).p2p(bytes));
}

void Comm::recv_bytes(void* data, std::int64_t bytes, int source, int tag) {
  const int q = size();
  if (source < 0 || source >= q) {
    throw std::invalid_argument("sgmpi: recv from invalid rank");
  }
  if (bytes < 0) throw std::invalid_argument("sgmpi: negative recv size");

  auto& box = ctx_->mailboxes[static_cast<std::size_t>(world_rank())];
  const double entry = clock().now();
  detail::Message msg;
  {
    std::unique_lock<std::mutex> lock(box.mutex);
    const auto poll = std::chrono::duration<double>(
        ctx_->config.poll_interval_s);
    for (;;) {
      const auto it = std::find_if(
          box.queue.begin(), box.queue.end(), [&](const detail::Message& m) {
            return m.comm_state == state_index_ && m.src_comm_rank == source &&
                   m.tag == tag;
          });
      if (it != box.queue.end()) {
        msg = std::move(*it);
        box.queue.erase(it);
        break;
      }
      if (ctx_->aborted.load(std::memory_order_relaxed)) throw AbortedError();
      box.cv.wait_for(lock, poll);
    }
  }
  if (msg.bytes != bytes) {
    throw std::invalid_argument(
        "sgmpi: recv size mismatch (got " + std::to_string(msg.bytes) +
        " bytes, expected " + std::to_string(bytes) + ")");
  }
  if (data != nullptr && !msg.payload.empty()) {
    std::memcpy(data, msg.payload.data(), msg.payload.size());
  }
  clock().wait_until(msg.sender_entry_vtime);
  clock().advance_comm(link_to(source).p2p(bytes));
  if (events().enabled()) {
    events().record({world_rank(), trace::EventKind::kTransfer, entry,
                     clock().now(), bytes, 0,
                     "recv from c" + std::to_string(source)});
  }
}

double Comm::allreduce_max(double value) {
  const int q = size();
  if (q == 1) return value;
  auto& st = ctx_->state(state_index_);
  const double entry = clock().now();
  const double cost = trace::allreduce_cost(link(), sizeof(double), q);
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        st.reduce_acc = st.reduce_started ? std::max(st.reduce_acc, value)
                                          : value;
        st.reduce_started = true;
      },
      [] {});
  const double result = st.reduce_acc;
  double entry_max = 0.0;
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.reduce_acc = 0.0;
        st.reduce_started = false;
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  return result;
}

double Comm::allreduce_sum(double value) {
  const int q = size();
  if (q == 1) return value;
  auto& st = ctx_->state(state_index_);
  const double entry = clock().now();
  const double cost = trace::allreduce_cost(link(), sizeof(double), q);
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        st.reduce_acc += value;
      },
      [] {});
  const double result = st.reduce_acc;
  double entry_max = 0.0;
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.reduce_acc = 0.0;
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  return result;
}

double Comm::allreduce_sum_buffer(double* data, std::int64_t count) {
  if (count < 0) {
    throw std::invalid_argument("sgmpi: negative allreduce count");
  }
  const int q = size();
  if (q == 1 || count == 0) return 0.0;
  auto& st = ctx_->state(state_index_);
  const double entry = clock().now();
  const double cost = trace::allreduce_cost(
      link(), count * static_cast<std::int64_t>(sizeof(double)), q);

  // Phase 1: element-wise accumulation into the shared buffer (first
  // contributor seeds it).
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        if (data != nullptr) {
          if (!st.reduce_started) {
            st.reduce_buf.assign(data, data + count);
          } else {
            for (std::int64_t i = 0; i < count; ++i) {
              st.reduce_buf[static_cast<std::size_t>(i)] += data[i];
            }
          }
        }
        st.reduce_started = true;
      },
      [] {});

  // Copy the result out before the trailing rendezvous releases the state.
  if (data != nullptr && !st.reduce_buf.empty()) {
    std::copy(st.reduce_buf.begin(), st.reduce_buf.end(), data);
  }

  double entry_max = 0.0;
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.reduce_started = false;
        st.reduce_buf.clear();
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  if (events().enabled()) {
    events().record({world_rank(), trace::EventKind::kBcast, entry,
                     clock().now(),
                     count * static_cast<std::int64_t>(sizeof(double)), 0,
                     "allreduce"});
  }
  return cost;
}

std::vector<double> Comm::gather(double value, int root) {
  const int q = size();
  validate_root(root, q);
  if (q == 1) return {value};
  auto& st = ctx_->state(state_index_);
  const double entry = clock().now();
  const double cost =
      trace::bcast_rounds(q) * link().p2p(sizeof(double));
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        if (st.gather_buf.size() != static_cast<std::size_t>(q)) {
          st.gather_buf.assign(static_cast<std::size_t>(q), 0.0);
        }
        st.gather_buf[static_cast<std::size_t>(rank_)] = value;
      },
      [] {});
  std::vector<double> result;
  if (rank_ == root) result = st.gather_buf;
  double entry_max = 0.0;
  st.meeting.rendezvous(
      ctx_->aborted, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.gather_buf.clear();
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  return result;
}

Comm Comm::subgroup(const std::vector<int>& members) {
  if (members.empty()) {
    throw std::invalid_argument("sgmpi: subgroup with no members");
  }
  for (int m : members) {
    if (m < 0 || m >= ctx_->config.nranks) {
      throw std::invalid_argument("sgmpi: subgroup member " +
                                  std::to_string(m) + " is not a world rank");
    }
  }
  std::vector<int> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("sgmpi: subgroup with duplicate members");
  }
  const auto it = std::find(members.begin(), members.end(), world_rank());
  if (it == members.end()) {
    throw std::invalid_argument(
        "sgmpi: calling rank is not a member of the subgroup");
  }
  const std::size_t index = ctx_->subgroup_state(members);
  return Comm(ctx_, index, static_cast<int>(it - members.begin()));
}

}  // namespace summagen::sgmpi

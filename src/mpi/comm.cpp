#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/mpi/context.hpp"
#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi {

namespace {

void validate_root(int root, int size) {
  if (root < 0 || root >= size) {
    throw std::invalid_argument("sgmpi: root " + std::to_string(root) +
                                " outside communicator of size " +
                                std::to_string(size));
  }
}

}  // namespace

int Comm::size() const noexcept {
  return static_cast<int>(ctx_->state(state_index_).members.size());
}

const std::vector<int>& Comm::world_ranks() const noexcept {
  return ctx_->state(state_index_).members;
}

int Comm::world_rank() const noexcept {
  return world_ranks()[static_cast<std::size_t>(rank_)];
}

trace::VirtualClock& Comm::clock() {
  return ctx_->clocks[static_cast<std::size_t>(world_rank())];
}

const trace::VirtualClock& Comm::clock() const {
  return ctx_->clocks[static_cast<std::size_t>(world_rank())];
}

trace::EventLog& Comm::events() { return ctx_->event_log; }

std::uint64_t Comm::context_uid() const noexcept { return ctx_->uid; }

const trace::HockneyParams& Comm::link() const {
  return ctx_->state(state_index_).link;
}

double Comm::modeled_bcast_cost(std::int64_t bytes, int q) const {
  auto& st = ctx_->state(state_index_);
  const trace::BcastAlgo algo = ctx_->config.bcast_algo;
  if (ctx_->config.two_level_collectives && st.n_nodes > 1) {
    // Two-level pricing: root -> node leaders over the inter-node link,
    // then every leader fans out inside its node concurrently; completion
    // is the inter-node stage plus the widest intra-node stage. The
    // algorithm resolves per stage (stage sizes differ under kAuto).
    return trace::bcast_algo_cost(ctx_->config.internode_link, bytes,
                                  st.n_nodes, algo) +
           trace::bcast_algo_cost(ctx_->config.link, bytes,
                                  st.max_node_ranks, algo);
  }
  return trace::bcast_algo_cost(st.link, bytes, q, algo);
}

const trace::HockneyParams& Comm::link_to(int dest) const {
  const int me = world_rank();
  const int other = world_ranks()[static_cast<std::size_t>(dest)];
  if (ctx_->node_of(me) == ctx_->node_of(other)) return ctx_->config.link;
  return ctx_->config.internode_link;
}

void Comm::barrier() {
  auto& st = ctx_->state(state_index_);
  const int q = size();
  if (q == 1) return;
  const int me = world_rank();
  const auto unwind = [this, me] { ctx_->unwind_check(me); };
  unwind();
  const double entry = clock().now();
  double entry_max = 0.0;
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] { st.entry_max = std::max(st.entry_max, entry); },
      [&] {
        st.op_complete = st.entry_max + barrier_cost(link(), q);
      });
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] { st.entry_max = 0.0; });
  clock().wait_until(entry_max);
  clock().advance_comm(barrier_cost(link(), q));
  if (events().enabled()) {
    events().record({world_rank(), trace::EventKind::kBarrier, entry,
                     clock().now(), 0, 0, ""});
  }
}

double Comm::allreduce_max(double value) {
  const int q = size();
  if (q == 1) return value;
  auto& st = ctx_->state(state_index_);
  const int me = world_rank();
  const auto unwind = [this, me] { ctx_->unwind_check(me); };
  unwind();
  const double entry = clock().now();
  const double cost = trace::allreduce_cost(link(), sizeof(double), q);
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        st.reduce_acc = st.reduce_started ? std::max(st.reduce_acc, value)
                                          : value;
        st.reduce_started = true;
      },
      [] {});
  const double result = st.reduce_acc;
  double entry_max = 0.0;
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.reduce_acc = 0.0;
        st.reduce_started = false;
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  return result;
}

double Comm::allreduce_sum(double value) {
  const int q = size();
  if (q == 1) return value;
  auto& st = ctx_->state(state_index_);
  const int me = world_rank();
  const auto unwind = [this, me] { ctx_->unwind_check(me); };
  unwind();
  const double entry = clock().now();
  const double cost = trace::allreduce_cost(link(), sizeof(double), q);
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        st.reduce_acc += value;
      },
      [] {});
  const double result = st.reduce_acc;
  double entry_max = 0.0;
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.reduce_acc = 0.0;
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  return result;
}

double Comm::allreduce_sum_buffer(double* data, std::int64_t count) {
  if (count < 0) {
    throw std::invalid_argument("sgmpi: negative allreduce count");
  }
  const int q = size();
  if (q == 1 || count == 0) return 0.0;
  auto& st = ctx_->state(state_index_);
  const int me = world_rank();
  const auto unwind = [this, me] { ctx_->unwind_check(me); };
  unwind();
  const double entry = clock().now();
  const double cost = trace::allreduce_cost(
      link(), count * static_cast<std::int64_t>(sizeof(double)), q);

  // Phase 1: every rank stages its contribution in a per-rank slot; the
  // last arrival sums the slots in ascending communicator-rank order.
  // Arrival order is scheduling noise — summing in rank order keeps the
  // reduction bit-deterministic across runs and schedulers.
  const std::size_t ucount = static_cast<std::size_t>(count);
  const int cr = rank();
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        if (data != nullptr) {
          if (st.reduce_ranks.empty()) {
            st.gather_buf.assign(static_cast<std::size_t>(q) * ucount, 0.0);
          }
          std::copy(data, data + count,
                    st.gather_buf.begin() +
                        static_cast<std::size_t>(cr) * ucount);
          st.reduce_ranks.push_back(cr);
        }
      },
      [&] {
        if (st.reduce_ranks.empty()) return;
        std::sort(st.reduce_ranks.begin(), st.reduce_ranks.end());
        st.reduce_buf.assign(ucount, 0.0);
        for (const int r : st.reduce_ranks) {
          const double* slot =
              st.gather_buf.data() + static_cast<std::size_t>(r) * ucount;
          for (std::size_t i = 0; i < ucount; ++i) {
            st.reduce_buf[i] += slot[i];
          }
        }
      });

  // Copy the result out before the trailing rendezvous releases the state.
  if (data != nullptr && !st.reduce_buf.empty()) {
    std::copy(st.reduce_buf.begin(), st.reduce_buf.end(), data);
  }

  double entry_max = 0.0;
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.reduce_ranks.clear();
        st.gather_buf.clear();
        st.reduce_buf.clear();
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  if (events().enabled()) {
    events().record({world_rank(), trace::EventKind::kBcast, entry,
                     clock().now(),
                     count * static_cast<std::int64_t>(sizeof(double)), 0,
                     "allreduce"});
  }
  return cost;
}

std::vector<double> Comm::gather(double value, int root) {
  const int q = size();
  validate_root(root, q);
  if (q == 1) return {value};
  auto& st = ctx_->state(state_index_);
  const int me = world_rank();
  const auto unwind = [this, me] { ctx_->unwind_check(me); };
  unwind();
  const double entry = clock().now();
  const double cost =
      trace::bcast_rounds(q) * link().p2p(sizeof(double));
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] {
        st.entry_max = std::max(st.entry_max, entry);
        if (st.gather_buf.size() != static_cast<std::size_t>(q)) {
          st.gather_buf.assign(static_cast<std::size_t>(q), 0.0);
        }
        st.gather_buf[static_cast<std::size_t>(rank_)] = value;
      },
      [] {});
  std::vector<double> result;
  if (rank_ == root) result = st.gather_buf;
  double entry_max = 0.0;
  st.meeting.rendezvous(
      unwind, ctx_->config.poll_interval_s, q,
      [&] { entry_max = st.entry_max; },
      [&] {
        st.entry_max = 0.0;
        st.gather_buf.clear();
      });
  clock().wait_until(entry_max);
  clock().advance_comm(cost);
  return result;
}

void Comm::fault_check() { ctx_->unwind_check(world_rank()); }

double Comm::compute_slowdown() const {
  if (!ctx_->faults) return 1.0;
  return ctx_->faults->compute_factor(world_rank());
}

void Comm::raise_drift() {
  if (!ctx_->faults) {
    throw std::logic_error(
        "sgmpi: raise_drift() requires a fault plan or adaptive mode");
  }
  const double now = clock().now();
  ctx_->faults->raise_drift(world_rank(), now);
  throw PeerFailedError(world_rank(), FaultKind::kDrift, now);
}

ShrinkResult Comm::shrink() {
  if (!ctx_->faults) {
    throw std::logic_error(
        "sgmpi: shrink() requires a fault plan or adaptive mode");
  }
  ShrinkResult result = ctx_->faults->shrink_arrive(
      world_rank(), clock().now(), ctx_->config.poll_interval_s);
  // Virtual cost of the agreement: everyone synchronises at the latest
  // arrival, then pays one allreduce over the survivors (the vote).
  const int live = static_cast<int>(result.survivors.size());
  const double cost =
      live > 1 ? trace::allreduce_cost(ctx_->state(0).link, sizeof(double),
                                       live)
               : 0.0;
  clock().wait_until(result.agree_vtime);
  clock().advance_comm(cost);
  result.agree_vtime += cost;
  return result;
}

double Comm::ft_commit() {
  if (!ctx_->faults) {
    throw std::logic_error(
        "sgmpi: ft_commit() requires a fault plan or adaptive mode");
  }
  const auto [entry_max, live] = ctx_->faults->commit_arrive(
      world_rank(), clock(), ctx_->config.poll_interval_s);
  const double cost =
      live > 1 ? trace::barrier_cost(ctx_->state(0).link, live) : 0.0;
  clock().advance_comm(cost);
  return clock().now();
}

Comm Comm::subgroup(const std::vector<int>& members) {
  if (members.empty()) {
    throw std::invalid_argument("sgmpi: subgroup with no members");
  }
  for (int m : members) {
    if (m < 0 || m >= ctx_->config.nranks) {
      throw std::invalid_argument("sgmpi: subgroup member " +
                                  std::to_string(m) + " is not a world rank");
    }
  }
  std::vector<int> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("sgmpi: subgroup with duplicate members");
  }
  const auto it = std::find(members.begin(), members.end(), world_rank());
  if (it == members.end()) {
    throw std::invalid_argument(
        "sgmpi: calling rank is not a member of the subgroup");
  }
  const std::size_t index = ctx_->subgroup_state(members);
  return Comm(ctx_, index, static_cast<int>(it - members.begin()));
}

}  // namespace summagen::sgmpi

// sgmpi: an in-process MPI-like message-passing runtime.
//
// Substrate replacing Intel MPI in the reproduction (DESIGN.md §2). The
// paper runs SummaGen with one MPI process per abstract processor on a
// single node; here each rank is a `std::thread`, and the primitives the
// paper's code uses (communicators, sub-communicators over the ranks of a
// sub-partition row/column, `MPI_Bcast`, point-to-point) are implemented
// over shared memory with rendezvous synchronisation.
//
// Timing: every operation advances the calling rank's *virtual clock* using
// the Hockney model (Section III-A of the paper). Collectives are
// synchronising in virtual time: completion = max(entry times) + tree cost.
// Payload pointers may be null, in which case only the clocks move — this is
// the `Modeled` data plane that lets benches run at the paper's N (10+ GB
// matrices) without allocating them.
//
// Thread-safety: a Comm handle belongs to exactly one rank/thread. All ranks
// of a communicator must invoke collectives in the same order (standard MPI
// contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/mpi/faults.hpp"
#include "src/trace/events.hpp"
#include "src/trace/hockney.hpp"
#include "src/trace/vclock.hpp"
#include "src/util/matrix_view.hpp"

namespace summagen::sgmpi {

class Context;

/// Execution engine backing the ranks of a run (DESIGN.md §5.14).
enum class Engine {
  /// One OS thread per rank — the historical default. Real parallelism on
  /// the numeric plane, but caps the simulated cluster at a few dozen ranks.
  kThread,
  /// Cooperative fibers: every rank is a resumable state machine driven
  /// round-robin by one scheduler thread. Blocking wait sites yield instead
  /// of sleeping, so p=1024–4096 runs cost one thread plus lazily-committed
  /// fiber stacks. Results and virtual times are bit-identical to kThread.
  kModeled,
};

const char* to_string(Engine engine) noexcept;

/// Parses "thread|modeled"; throws std::invalid_argument on anything else.
Engine parse_engine(const std::string& name);

/// Configuration of a runtime instance.
struct Config {
  int nranks = 3;
  trace::HockneyParams link;   ///< intra-node fabric between ranks
  bool record_events = false;  ///< populate the EventLog

  /// Multi-node topology (paper future work: "distributed-memory nodes and
  /// large clusters"). `node_of[rank]` maps each rank to a node id; empty =
  /// all ranks on one node. Communication between ranks on different nodes
  /// is priced with `internode_link`; a collective whose members span nodes
  /// pays the inter-node price (its broadcast tree crosses the network).
  std::vector<int> node_of;
  trace::HockneyParams internode_link{20.0e-6, 1.0 / 1.0e9};

  /// Watchdog: rendezvous waits poll the abort flag with this period (waits
  /// back off exponentially from min(poll_interval_s, 1 ms) up to it).
  double poll_interval_s = 0.02;

  /// Execution engine. kModeled decouples "rank = thread": rank bodies run
  /// unchanged on cooperative fibers scheduled by a single-threaded
  /// virtual-time event loop, which is what makes p in the thousands cheap.
  Engine engine = Engine::kThread;
  /// Stack reservation per modeled rank (rounded up to whole pages, guard
  /// page added); 0 = the 1 MiB default. Pages commit lazily, so this
  /// bounds address space, not RSS.
  std::size_t fiber_stack_bytes = 0;

  /// Broadcast algorithm priced into bcast/ibcast costs (trace::BcastAlgo).
  /// kTree is the historical binomial tree and keeps virtual times
  /// bit-identical to prior releases; flat/ring/pipelined/auto re-price the
  /// collective per resolve_bcast_algo.
  trace::BcastAlgo bcast_algo = trace::BcastAlgo::kTree;
  /// Topology-aware two-level collectives: a broadcast whose communicator
  /// spans nodes is priced as an inter-node stage over the node leaders plus
  /// the widest intra-node stage, instead of one flat tree over the
  /// inter-node link. Default off (the historical flat pricing).
  bool two_level_collectives = false;

  /// Scheduled fault injection (see faults.hpp). Empty = fault-free: the
  /// runtime takes no fault paths and execution is bit-identical, in results
  /// and virtual timing, to a build without the fault subsystem.
  FaultPlan faults;
  /// Modeled failure-detector latency: a peer failure at virtual time t is
  /// observed by a blocked rank no earlier than t + fault_detect_s.
  double fault_detect_s = 0.05;
  /// Adaptive execution: create the fault runtime even with an empty plan,
  /// so ranks may raise dynamic events (Comm::raise_drift) and use the
  /// shrink/ft_commit agreement gates for online re-partitioning. False
  /// with an empty plan = the exact fault-free execution path.
  bool adaptive = false;
  /// Send retry policy under injected message drops.
  int max_send_attempts = 5;
  double send_retry_backoff_s = 1.0e-4;  ///< first-retry virtual backoff
};

/// Thrown on the sibling ranks when one rank aborts with an exception, so
/// the whole parallel region unwinds instead of deadlocking.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("sgmpi: run aborted by another rank") {}
};

/// Handle to one in-flight non-blocking operation (MPI_Request analogue).
///
/// Obtained from `Comm::ibcast_bytes` / `isend_bytes` / `irecv_bytes` and
/// completed with `Comm::wait` / `waitall` / `test` on the same Comm. A
/// default-constructed Request is null: waiting on it is a no-op. Requests
/// are move-only; destroying a pending request without completing it is a
/// programming error — the peers of a collective would block forever
/// waiting for this rank's completion — and fails loudly: the destructor
/// logs the op kind and communicator and calls std::abort(). Destruction
/// during exception unwind is tolerated (the run is already tearing down).
class Request {
 public:
  Request() = default;
  ~Request();
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  /// True while the operation has been posted but not yet completed.
  bool pending() const noexcept { return op_ != nullptr; }

 private:
  friend class Comm;

  enum class Kind { kBcastRecv, kBcastSendRoot, kSend, kRecv };

  struct Op {
    Kind kind = Kind::kBcastRecv;
    std::size_t state_index = 0;  ///< communicator the op was posted on
    std::uint64_t seq = 0;        ///< per-communicator matching sequence
    void* recv_buf = nullptr;     ///< receiver payload (bcast/recv)
    std::int64_t bytes = 0;
    int root = -1;        ///< communicator rank of the bcast root
    int peer = -1;        ///< dest/source for point-to-point
    int tag = 0;
    double cost = 0.0;        ///< modeled Hockney cost of the operation
    double lane_start = 0.0;  ///< comm-lane slot reserved at post time
    bool blocking = false;    ///< posted by a blocking wrapper (event kind)
    std::string comm_desc;    ///< communicator label for error reports

    // Strided (panel) descriptor, set by the *_panel operations: the
    // payload is a panel_rows x panel_cols double block. recv_buf/dst_ld
    // locate this rank's destination; panel_src/src_ld the root's source
    // view (used for the root's own local store at completion).
    bool panel = false;
    std::int64_t panel_rows = 0;
    std::int64_t panel_cols = 0;
    std::int64_t src_ld = 0;
    std::int64_t dst_ld = 0;
    const double* panel_src = nullptr;
  };

  explicit Request(std::unique_ptr<Op> op) : op_(std::move(op)) {}
  std::unique_ptr<Op> op_;
};

/// Communicator handle bound to one rank.
///
/// `rank()`/`size()` follow MPI conventions. For subgroup communicators,
/// `world_ranks()[r]` maps communicator rank r to the world rank — the
/// `comm_ranks` array of the paper's Figure 2.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;
  const std::vector<int>& world_ranks() const noexcept;
  int world_rank() const noexcept;

  /// Synchronising barrier (virtual cost: two empty tree traversals).
  void barrier();

  /// Broadcast of `bytes` bytes from communicator rank `root`. All members
  /// call with the same `bytes` and `root`; `data` is the send buffer on
  /// the root and the receive buffer elsewhere (may be null everywhere for
  /// modeled-only traffic). Returns the modeled cost charged to this rank.
  /// Implemented as ibcast_bytes + wait.
  double bcast_bytes(void* data, std::int64_t bytes, int root);

  /// Root-side blocking broadcast over a read-only buffer: semantically
  /// identical to `bcast_bytes` called on the root, but const-correct — the
  /// runtime only ever reads the root's payload. The calling rank must be
  /// `root`.
  double bcast_send_bytes(const void* data, std::int64_t bytes, int root);

  /// Typed convenience over bcast_bytes.
  double bcast(double* data, std::int64_t count, int root) {
    return bcast_bytes(data, count * static_cast<std::int64_t>(sizeof(double)),
                       root);
  }

  /// Non-blocking broadcast. Posts the operation on this rank — posting
  /// never blocks on the peers — and reserves this rank's communication
  /// lane; completion (payload delivery and virtual-time settlement)
  /// happens in `wait`/`waitall`/`test`. All members must post collectives
  /// on a communicator in the same order and eventually complete every
  /// posted request. The root's buffer must stay valid until its own wait
  /// returns (which also guarantees every receiver has copied).
  Request ibcast_bytes(void* data, std::int64_t bytes, int root);

  /// Root-side non-blocking broadcast over a read-only buffer (the
  /// const-correct path for broadcasting owned, in-place data). The calling
  /// rank must be `root`.
  Request ibcast_send_bytes(const void* data, std::int64_t bytes, int root);

  /// Strided (zero-copy) broadcast of a rows x cols double panel from
  /// communicator rank `root`. The root passes `src` — a view of its owned
  /// data, typically a sub-block viewed in place inside a larger matrix —
  /// and every member that wants the panel stored locally passes `dst`
  /// (leading dimensions are free on both ends; non-root members pass {}
  /// for `src`). Receivers copy row-wise straight out of the root's buffer
  /// at completion, and the root's own `dst` (when non-empty) is filled at
  /// its wait — neither side stages through a contiguous scratch buffer.
  /// Wire size, modeled cost and event shape are exactly those of
  /// `bcast_bytes` with rows*cols*sizeof(double) bytes.
  double bcast_panel(util::ConstMatrixView src, util::MatrixView dst,
                     int root);

  /// Non-blocking form of `bcast_panel`; same contract as `ibcast_bytes`
  /// (the root's `src` must stay valid until its own wait returns).
  Request ibcast_panel(util::ConstMatrixView src, util::MatrixView dst,
                       int root);

  /// Non-blocking point-to-point. isend is buffered-eager like send_bytes
  /// (the payload is snapshotted at post time); irecv records the post time
  /// and matches at completion.
  Request isend_bytes(const void* data, std::int64_t bytes, int dest, int tag);
  Request irecv_bytes(void* data, std::int64_t bytes, int source, int tag);

  /// Strided point-to-point: `isend_panel` snapshots the view row-wise into
  /// the eager buffer at post time (the same single staging copy a
  /// contiguous isend makes); `irecv_panel` scatters the payload into `dst`
  /// at completion. Wire size and modeled cost equal a contiguous transfer
  /// of rows*cols doubles; the matching peer may use the flat byte calls.
  Request isend_panel(util::ConstMatrixView src, int dest, int tag);
  Request irecv_panel(util::MatrixView dst, int source, int tag);

  /// Blocks until `request` completes; null requests return immediately.
  /// Returns the modeled cost charged to this rank (0 for null/trivial
  /// operations). The request becomes null.
  double wait(Request& request);

  /// Waits on every request in order; returns the summed modeled cost.
  double waitall(std::vector<Request>& requests);

  /// Attempts to complete `request` without blocking: returns true (and
  /// settles the request exactly like `wait`) if the operation can finish
  /// now, false if it would have to block on a peer. Null requests test
  /// true.
  bool test(Request& request);

  /// Blocking point-to-point (eager buffered send, matching by source+tag;
  /// messages between a (src,dst,tag) triple are delivered in order).
  /// Implemented as i* + wait.
  void send_bytes(const void* data, std::int64_t bytes, int dest, int tag);
  void recv_bytes(void* data, std::int64_t bytes, int source, int tag);
  void send(const double* data, std::int64_t count, int dest, int tag) {
    send_bytes(data, count * static_cast<std::int64_t>(sizeof(double)), dest,
               tag);
  }
  void recv(double* data, std::int64_t count, int source, int tag) {
    recv_bytes(data, count * static_cast<std::int64_t>(sizeof(double)), source,
               tag);
  }

  /// Blocking strided point-to-point (isend_panel/irecv_panel + wait).
  void send_panel(util::ConstMatrixView src, int dest, int tag);
  void recv_panel(util::MatrixView dst, int source, int tag);

  /// Allreduce of one double with max/sum combiners.
  double allreduce_max(double value);
  double allreduce_sum(double value);

  /// Element-wise sum-allreduce of a buffer of `count` doubles (in place on
  /// every member). `data` may be null everywhere for modeled-only traffic.
  /// Returns the modeled cost charged to this rank.
  double allreduce_sum_buffer(double* data, std::int64_t count);

  /// Gathers one double from every member onto `root` (others get {}).
  std::vector<double> gather(double value, int root);

  /// Fault check: throws if this rank must unwind — AbortedError when the
  /// run is aborting, RankCrashedError when this rank's own scheduled crash
  /// is due, PeerFailedError when an interrupting fault has triggered and
  /// is not yet handled. No-op when the fault plan is empty and the run is
  /// healthy. Every runtime operation performs this check on entry; call it
  /// from compute loops to bound detection latency.
  void fault_check();

  /// Multiplier (>= 1 in practice) applied to this rank's compute costs by
  /// triggered slowdown faults; exactly 1.0 when the fault plan is empty.
  double compute_slowdown() const;

  /// Raises a confirmed-drift event for this rank at its current virtual
  /// time and throws PeerFailedError(kDrift) on the caller. Call only after
  /// this rank has completed its communication schedule for the phase: the
  /// peers keep running undisturbed (poll ignores kDrift) and observe the
  /// event at the ft_commit gate, then everyone shrinks and re-partitions.
  /// Requires a fault plan or Config::adaptive.
  [[noreturn]] void raise_drift();

  /// ULFM-style agreement after a failure: every live rank that caught
  /// PeerFailedError calls shrink(); it blocks until all live ranks arrive,
  /// settles every triggered fault as handled, resets communicator fabric
  /// (in-flight slots, sequence counters, mailboxes), and returns the
  /// survivor list plus the agreed virtual time. Collective over all live
  /// ranks; requires a non-empty fault plan.
  ShrinkResult shrink();

  /// End-of-phase commitment: blocks until every live rank arrives, then
  /// returns the agreed virtual time if no unhandled fault exists and
  /// throws PeerFailedError on every arriver otherwise. This is how a
  /// fault-tolerant caller ensures a failure that triggered after its last
  /// communication (e.g. during trailing compute) is still recovered.
  /// Collective over all live ranks; requires a non-empty fault plan.
  double ft_commit();

  /// Collective among exactly the listed *world* ranks (sorted ascending or
  /// in the order given; communicator rank = index in the list). Every
  /// listed rank must call with an identical list; the calling rank must be
  /// a member. This is the `get_subp_comm` of the paper's Figure 2/3.
  Comm subgroup(const std::vector<int>& members);

  /// Virtual clock of this rank (shared across all communicators).
  trace::VirtualClock& clock();
  const trace::VirtualClock& clock() const;

  /// Event log of the run (shared, may be disabled).
  trace::EventLog& events();

  /// Process-unique id of the owning runtime (Context::uid) — stable for
  /// every communicator of one Runtime, distinct across Runtimes. Used to
  /// namespace per-run cache keys such as blas pack tags.
  std::uint64_t context_uid() const noexcept;

  /// Hockney parameters used by this communicator: the intra-node fabric
  /// if all members share a node, the inter-node link otherwise.
  const trace::HockneyParams& link() const;

  /// Link used for point-to-point traffic to communicator rank `dest`.
  const trace::HockneyParams& link_to(int dest) const;

 private:
  friend class Runtime;
  friend class Context;
  Comm(std::shared_ptr<Context> ctx, std::size_t state_index, int rank)
      : ctx_(std::move(ctx)), state_index_(state_index), rank_(rank) {}

  /// Appends the event-log entry for a completed request.
  void record_completion(const Request::Op& op, double wait_entry,
                         double completion);

  /// Modeled completion cost of a broadcast of `bytes` on this q-member
  /// communicator under Config::bcast_algo, with the optional two-level
  /// topology pricing (inter-node stage over the node leaders plus the
  /// widest intra-node stage) when the members span nodes.
  double modeled_bcast_cost(std::int64_t bytes, int q) const;

  std::shared_ptr<Context> ctx_;
  std::size_t state_index_;  ///< index of the CommState in the context
  int rank_;                 ///< my rank within this communicator
};

/// Owns the parallel region: spawns `nranks` threads, hands each a world
/// communicator, joins, and rethrows the first exception.
class Runtime {
 public:
  explicit Runtime(Config config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes `body(world)` on every rank. May be called repeatedly; clocks
  /// and the event log persist across calls until `reset_clocks()`.
  void run(const std::function<void(Comm&)>& body);

  int nranks() const noexcept { return config_.nranks; }

  /// Clock of `rank` (valid between runs).
  const trace::VirtualClock& clock(int rank) const;

  /// Maximum virtual completion time over all ranks — the parallel
  /// execution time of the last run.
  double max_vtime() const;

  trace::EventLog& events();

  void reset_clocks();

  /// Lifecycle snapshot of every planned fault event (empty when the plan
  /// is empty) — trigger, detection, and agreement virtual times.
  std::vector<FaultRecord> fault_records() const;

 private:
  Config config_;
  std::shared_ptr<Context> ctx_;
};

}  // namespace summagen::sgmpi

// FaultRuntime: trigger bookkeeping, failure detection, and the shrink /
// commit agreement gates (DESIGN.md "Fault model").
//
// Determinism: an event triggers when its victim's own virtual clock first
// reaches `at_vtime` at a runtime operation, so the trigger point is a pure
// function of the virtual execution. A blocked rank learns of a failure via
// the fault epoch (bumped under the lock, waiters notified), but the
// *virtual* detection time it records is max(own clock, trigger + detect_s)
// — independent of real-thread scheduling.

#include "src/mpi/faults.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/mpi/engine.hpp"

namespace summagen::sgmpi {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSlowdown:
      return "slowdown";
    case FaultKind::kLinkSlowdown:
      return "link-slowdown";
    case FaultKind::kMessageDrop:
      return "message-drop";
    case FaultKind::kDrift:
      return "drift";
  }
  return "unknown";
}

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  const auto fail = [&](const std::string& item, const std::string& why) {
    throw std::invalid_argument("parse_fault_plan: '" + item + "': " + why +
                                " (expected <kind>@<t>:<rank>[x<arg>], "
                                "kind = crash|slow|link|drop)");
  };
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      if (text.empty()) break;
      fail(text, "empty event");
    }

    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos) {
      fail(item, "missing '@' or ':'");
    }
    const std::string kind = item.substr(0, at);
    const std::string when = item.substr(at + 1, colon - at - 1);
    std::string rank = item.substr(colon + 1);
    std::string arg;
    const std::size_t x = rank.find('x');
    if (x != std::string::npos) {
      arg = rank.substr(x + 1);
      rank = rank.substr(0, x);
    }

    FaultEvent ev;
    if (kind == "crash") {
      ev.kind = FaultKind::kCrash;
      if (!arg.empty()) fail(item, "crash takes no 'x' argument");
    } else if (kind == "slow") {
      ev.kind = FaultKind::kSlowdown;
      ev.factor = 2.0;
    } else if (kind == "link") {
      ev.kind = FaultKind::kLinkSlowdown;
      ev.factor = 2.0;
    } else if (kind == "drop") {
      ev.kind = FaultKind::kMessageDrop;
      ev.drop_count = 1;
    } else {
      fail(item, "unknown kind '" + kind + "'");
    }
    try {
      std::size_t used = 0;
      ev.at_vtime = std::stod(when, &used);
      if (used != when.size()) throw std::invalid_argument(when);
      ev.rank = std::stoi(rank, &used);
      if (used != rank.size()) throw std::invalid_argument(rank);
      if (!arg.empty()) {
        if (ev.kind == FaultKind::kMessageDrop) {
          ev.drop_count = std::stoi(arg, &used);
        } else {
          ev.factor = std::stod(arg, &used);
        }
        if (used != arg.size()) throw std::invalid_argument(arg);
      }
    } catch (const std::exception&) {
      fail(item, "bad number");
    }
    plan.events.push_back(ev);
    if (comma == text.size()) break;
  }
  return plan;
}

namespace detail {

FaultRuntime::FaultRuntime(FaultPlan plan, int nranks, double detect_s,
                           int max_send_attempts, double retry_backoff_s)
    : nranks_(nranks),
      detect_s_(detect_s),
      max_send_attempts_(max_send_attempts),
      retry_backoff_s_(retry_backoff_s),
      dead_(static_cast<std::size_t>(nranks), false),
      shrink_arrived_(static_cast<std::size_t>(nranks), false),
      commit_arrived_(static_cast<std::size_t>(nranks), false) {
  events_.reserve(plan.events.size());
  for (const FaultEvent& e : plan.events) {
    if (e.rank < 0 || e.rank >= nranks) {
      throw std::invalid_argument("sgmpi: fault event rank " +
                                  std::to_string(e.rank) +
                                  " outside world of size " +
                                  std::to_string(nranks));
    }
    if ((e.kind == FaultKind::kSlowdown ||
         e.kind == FaultKind::kLinkSlowdown) &&
        e.factor <= 0.0) {
      throw std::invalid_argument("sgmpi: fault slowdown factor must be > 0");
    }
    if (e.kind == FaultKind::kMessageDrop && e.drop_count < 1) {
      throw std::invalid_argument("sgmpi: fault drop_count must be >= 1");
    }
    EventState s;
    s.event = e;
    events_.push_back(s);
  }
}

bool FaultRuntime::trigger_due_locked(int rank, double vtime) {
  bool newly_interrupting = false;
  for (EventState& s : events_) {
    if (s.phase != EventState::Phase::kPending || s.event.rank != rank)
      continue;
    if (vtime < s.event.at_vtime) continue;
    s.trigger_vtime = vtime;
    switch (s.event.kind) {
      case FaultKind::kCrash:
        s.phase = EventState::Phase::kTriggered;
        dead_[static_cast<std::size_t>(rank)] = true;
        newly_interrupting = true;
        break;
      case FaultKind::kSlowdown:
        s.phase = EventState::Phase::kTriggered;
        newly_interrupting = true;
        break;
      case FaultKind::kLinkSlowdown:
        // Non-interrupting: active from now on, settled immediately.
        s.phase = EventState::Phase::kHandled;
        s.handled_vtime = vtime;
        break;
      case FaultKind::kMessageDrop:
        s.phase = EventState::Phase::kHandled;
        s.handled_vtime = vtime;
        s.drops_left = s.event.drop_count;
        break;
      case FaultKind::kDrift:
        // Normally raised dynamically (raise_drift); a planned kDrift event
        // behaves like a slowdown whose detection is deferred to the commit
        // gate.
        s.phase = EventState::Phase::kTriggered;
        newly_interrupting = true;
        break;
    }
  }
  if (newly_interrupting) {
    epoch_.fetch_add(1, std::memory_order_release);
    cv_.notify_all();
  }
  return newly_interrupting;
}

FaultRuntime::EventState* FaultRuntime::live_failure_locked(
    bool include_drift) {
  for (EventState& s : events_) {
    if (s.phase != EventState::Phase::kTriggered || !interrupting(s)) continue;
    if (!include_drift && s.event.kind == FaultKind::kDrift) continue;
    return &s;
  }
  return nullptr;
}

void FaultRuntime::raise_drift(int rank, double vtime) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    EventState s;
    s.event.kind = FaultKind::kDrift;
    s.event.rank = rank;
    s.event.at_vtime = vtime;
    s.phase = EventState::Phase::kTriggered;
    s.trigger_vtime = vtime;
    s.first_detect_vtime = vtime;  // the raiser detected it itself
    events_.push_back(s);
    epoch_.fetch_add(1, std::memory_order_release);
    cv_.notify_all();
  }
  // Waking the context's blocked waits is harmless (poll ignores kDrift);
  // it just keeps the wakeup discipline uniform with planned triggers.
  if (on_trigger) on_trigger();
}

bool FaultRuntime::all_live_arrived_locked(
    const std::vector<bool>& arrived) const {
  for (int r = 0; r < nranks_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (!dead_[i] && !arrived[i]) return false;
  }
  return true;
}

void FaultRuntime::throw_detected_locked(EventState& failure,
                                         trace::VirtualClock& clk) {
  const double detected =
      std::max(clk.now(), failure.trigger_vtime + detect_s_);
  clk.wait_until(detected);
  if (failure.first_detect_vtime < 0.0 ||
      detected < failure.first_detect_vtime) {
    failure.first_detect_vtime = detected;
  }
  throw PeerFailedError(failure.event.rank, failure.event.kind, detected);
}

void FaultRuntime::poll(int rank, trace::VirtualClock& clk) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool newly = trigger_due_locked(rank, clk.now());
  const bool self_dead = dead_[static_cast<std::size_t>(rank)];
  if (newly) {
    // Wake every blocked wait in the context so detection is prompt. The
    // callback takes other locks, so drop ours first.
    lock.unlock();
    if (on_trigger) on_trigger();
    lock.lock();
  }
  if (self_dead) throw RankCrashedError(rank);
  // kDrift excluded: a drift raiser finishes its communication schedule
  // before raising, so peers complete their graphs undisturbed and observe
  // the drift at the commit gate instead.
  if (EventState* failure = live_failure_locked(/*include_drift=*/false)) {
    throw_detected_locked(*failure, clk);
  }
}

bool FaultRuntime::rank_dead(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_[static_cast<std::size_t>(rank)];
}

double FaultRuntime::compute_factor(int rank) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double factor = 1.0;
  for (const EventState& s : events_) {
    if (s.event.rank != rank || s.event.kind != FaultKind::kSlowdown) continue;
    if (s.phase != EventState::Phase::kPending) factor *= s.event.factor;
  }
  return factor;
}

double FaultRuntime::link_factor(int rank, double vtime) {
  std::lock_guard<std::mutex> lock(mutex_);
  double factor = 1.0;
  for (EventState& s : events_) {
    if (s.event.rank != rank || s.event.kind != FaultKind::kLinkSlowdown)
      continue;
    if (s.phase == EventState::Phase::kPending && vtime >= s.event.at_vtime) {
      s.phase = EventState::Phase::kHandled;
      s.trigger_vtime = vtime;
      s.handled_vtime = vtime;
    }
    if (s.phase != EventState::Phase::kPending) factor *= s.event.factor;
  }
  return factor;
}

double FaultRuntime::send_attempt_penalty(int rank, double vtime,
                                          double base_cost) {
  std::lock_guard<std::mutex> lock(mutex_);
  double penalty = 0.0;
  int attempts = 1;  // the attempt that finally lands
  for (EventState& s : events_) {
    if (s.event.rank != rank || s.event.kind != FaultKind::kMessageDrop)
      continue;
    if (s.phase == EventState::Phase::kPending && vtime >= s.event.at_vtime) {
      s.phase = EventState::Phase::kHandled;
      s.trigger_vtime = vtime;
      s.handled_vtime = vtime;
      s.drops_left = s.event.drop_count;
    }
    while (s.drops_left > 0) {
      --s.drops_left;
      ++attempts;
      if (attempts > max_send_attempts_) {
        // Retries exhausted: the sender's link is effectively down. This is
        // not an agreed failure epoch — it unwinds the run like any other
        // rank error.
        throw PeerFailedError(rank, FaultKind::kMessageDrop, vtime + penalty);
      }
      // Wasted attempt plus exponential backoff (1x, 2x, 4x, ... the base).
      penalty += base_cost +
                 retry_backoff_s_ * std::pow(2.0, static_cast<double>(attempts - 2));
    }
  }
  return penalty;
}

ShrinkResult FaultRuntime::shrink_arrive(int rank, double entry_vtime,
                                         double poll_interval_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  shrink_arrived_[static_cast<std::size_t>(rank)] = true;
  ++shrink_arrived_count_;
  shrink_entry_max_ = std::max(shrink_entry_max_, entry_vtime);
  const std::uint64_t my_gen = shrink_gen_;
  double backoff_s = std::min(poll_interval_s, 0.001);
  while (shrink_gen_ == my_gen) {
    if (!shrink_finalizing_ && all_live_arrived_locked(shrink_arrived_)) {
      // First observer of completion finalises: reset the communicator
      // fabric (unwound ranks left slots, sequence counters, and mailboxes
      // in divergent states), then settle every triggered event. The reset
      // takes communicator locks, so it runs without ours; everyone else is
      // parked here until the generation bumps.
      shrink_finalizing_ = true;
      lock.unlock();
      if (fabric_reset) fabric_reset();
      lock.lock();
      ShrinkResult result;
      for (int r = 0; r < nranks_; ++r) {
        if (!dead_[static_cast<std::size_t>(r)]) result.survivors.push_back(r);
      }
      for (EventState& s : events_) {
        if (s.phase == EventState::Phase::kTriggered) {
          s.phase = EventState::Phase::kHandled;
          s.handled_vtime = shrink_entry_max_;
          result.handled.push_back(s.event);
        }
      }
      result.agree_vtime = shrink_entry_max_;
      shrink_snapshot_ = result;
      std::fill(shrink_arrived_.begin(), shrink_arrived_.end(), false);
      shrink_arrived_count_ = 0;
      shrink_entry_max_ = 0.0;
      shrink_finalizing_ = false;
      ++shrink_gen_;
      cv_.notify_all();
      return result;
    }
    engine_wait_step(lock, cv_, backoff_s, poll_interval_s);
  }
  // Released by the finaliser. The snapshot cannot have been overwritten: a
  // next round needs every live rank to arrive again, including us.
  return shrink_snapshot_;
}

std::pair<double, int> FaultRuntime::commit_arrive(int rank,
                                                   trace::VirtualClock& clk,
                                                   double poll_interval_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  {
    // Trigger this rank's due events at the commit point (a rank whose
    // crash lands between its last operation and the commit dies here).
    const bool newly = trigger_due_locked(rank, clk.now());
    if (newly) {
      lock.unlock();
      if (on_trigger) on_trigger();
      lock.lock();
    }
    if (dead_[static_cast<std::size_t>(rank)]) throw RankCrashedError(rank);
  }
  commit_arrived_[static_cast<std::size_t>(rank)] = true;
  ++commit_arrived_count_;
  commit_entry_max_ = std::max(commit_entry_max_, clk.now());
  const std::uint64_t my_gen = commit_gen_;
  double backoff_s = std::min(poll_interval_s, 0.001);
  while (commit_gen_ == my_gen) {
    // Failure first: if an interrupting event is live, every arriver must
    // unwind to recovery, so withdraw and throw rather than completing.
    // kDrift included: the commit gate is exactly where confirmed drift
    // surfaces to the peers.
    if (EventState* failure = live_failure_locked(/*include_drift=*/true)) {
      commit_arrived_[static_cast<std::size_t>(rank)] = false;
      --commit_arrived_count_;
      throw_detected_locked(*failure, clk);
    }
    if (all_live_arrived_locked(commit_arrived_)) {
      commit_result_ = commit_entry_max_;
      commit_live_ = 0;
      for (int r = 0; r < nranks_; ++r) {
        if (!dead_[static_cast<std::size_t>(r)]) ++commit_live_;
      }
      std::fill(commit_arrived_.begin(), commit_arrived_.end(), false);
      commit_arrived_count_ = 0;
      commit_entry_max_ = 0.0;
      ++commit_gen_;
      cv_.notify_all();
      clk.wait_until(commit_result_);
      return {commit_result_, commit_live_};
    }
    engine_wait_step(lock, cv_, backoff_s, poll_interval_s);
  }
  clk.wait_until(commit_result_);
  return {commit_result_, commit_live_};
}

std::vector<FaultRecord> FaultRuntime::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultRecord> out;
  out.reserve(events_.size());
  for (const EventState& s : events_) {
    FaultRecord r;
    r.event = s.event;
    r.triggered = s.phase != EventState::Phase::kPending;
    r.handled = s.phase == EventState::Phase::kHandled;
    r.trigger_vtime = s.trigger_vtime;
    r.first_detect_vtime = s.first_detect_vtime;
    r.handled_vtime = s.handled_vtime;
    out.push_back(r);
  }
  return out;
}

}  // namespace detail
}  // namespace summagen::sgmpi

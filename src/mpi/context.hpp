// Internal shared state of the sgmpi runtime. Not part of the public API.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "src/mpi/engine.hpp"
#include "src/mpi/mpi.hpp"

namespace summagen::sgmpi::detail {

/// Reusable rendezvous point: all `size` participants meet; each runs
/// `contribute` under the lock, the last arrival additionally runs
/// `finalize` under the lock, then everyone is released together.
///
/// Waits run `unwind_check` (which throws AbortedError / PeerFailedError
/// when the run must unwind) so that an exception on one rank unwinds the
/// whole parallel region instead of deadlocking. Polling backs off
/// exponentially from min(poll_interval_s, 1 ms) up to poll_interval_s;
/// aborts and fault triggers notify the condition variable, so unwind
/// latency is one wakeup, not a full poll period. Under the modeled engine
/// a blocked participant yields to the fiber scheduler instead of sleeping
/// (engine_wait_step).
class Meeting {
 public:
  template <typename UnwindCheck, typename Contribute, typename Finalize>
  void rendezvous(const UnwindCheck& unwind_check, double poll_interval_s,
                  int size, Contribute&& contribute, Finalize&& finalize) {
    std::unique_lock<std::mutex> lock(mutex_);
    contribute();
    if (++count_ == size) {
      finalize();
      count_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    const std::uint64_t my_generation = generation_;
    double backoff_s = std::min(poll_interval_s, 0.001);
    while (generation_ == my_generation) {
      unwind_check();
      engine_wait_step(lock, cv_, backoff_s, poll_interval_s);
    }
    unwind_check();
  }

  /// Wakes every waiter (used on abort / fault trigger so blocked ranks
  /// re-run their unwind check immediately).
  void notify() { cv_.notify_all(); }

  /// Resets the meeting to its idle state. Only valid when no participant
  /// is inside `rendezvous` (the shrink finaliser holds this invariant:
  /// every live rank is parked in the shrink gate).
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    ++generation_;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int count_ = 0;
  std::uint64_t generation_ = 0;
};

/// One in-flight non-blocking collective on a communicator. Collectives on
/// a communicator are matched by a per-member posting sequence number (the
/// standard MPI rule that all members issue collectives in the same order);
/// a slot is created by the first poster and retired by the last completer.
struct AsyncSlot {
  int posted = 0;     ///< members that have posted so far
  int copied = 0;     ///< non-root members that have copied the payload
  int finished = 0;   ///< members whose wait/test has completed
  double entry_max = 0.0;      ///< max comm-lane start over posters
  const void* src = nullptr;   ///< root's payload (valid until root leaves)
  std::int64_t bytes = -1;     ///< payload size (validated across members)
  int root = -1;               ///< communicator rank of the root
  bool root_posted = false;
  // Panel (strided) broadcasts: geometry of the root's source view, so
  // receivers copy row-wise straight out of the root's matrix instead of a
  // flat staging buffer. -1 = contiguous op / root not yet posted.
  std::int64_t src_ld = -1;    ///< root-side leading dimension (doubles)
  std::int64_t rows = -1;      ///< panel rows (validated across members)
  std::int64_t cols = -1;      ///< panel cols (validated across members)
};

/// State shared by all members of one communicator.
struct CommState {
  explicit CommState(std::vector<int> members_in)
      : members(std::move(members_in)),
        next_post_seq(members.size(), 0) {}

  std::vector<int> members;  ///< world ranks; communicator rank = index
  trace::HockneyParams link;  ///< fabric used by this communicator's
                              ///< collectives (set at creation)
  // Topology summary for two-level collective pricing (set at creation):
  // how many distinct nodes the members span, and the widest per-node
  // member count — the sizes of the inter- and intra-node stages.
  int n_nodes = 1;
  int max_node_ranks = 1;

  Meeting meeting;

  // Non-blocking collectives (ibcast and the blocking wrappers built on
  // it). Guarded by `async_mutex`; waiters poll `async_cv` plus the abort
  // flag, mirroring Meeting.
  std::mutex async_mutex;
  std::condition_variable async_cv;
  std::vector<std::uint64_t> next_post_seq;    ///< per-member post counter
  std::map<std::uint64_t, AsyncSlot> async_slots;  ///< keyed by sequence

  // Scratch for the collective in flight (written in `contribute`/`finalize`
  // under the meeting lock, reset by the trailing rendezvous).
  double entry_max = 0.0;
  double op_complete = 0.0;
  double reduce_acc = 0.0;
  bool reduce_started = false;  ///< first contributor seeds the accumulator
  std::vector<double> gather_buf;
  std::vector<double> reduce_buf;  ///< buffer allreduce accumulator
  std::vector<int> reduce_ranks;   ///< buffer allreduce contributors (comm
                                   ///< ranks; summed in ascending order)
};

/// Eagerly-buffered point-to-point message.
struct Message {
  std::size_t comm_state = 0;  ///< matching is per communicator
  int src_comm_rank = 0;
  int tag = 0;
  std::int64_t bytes = 0;
  double sender_entry_vtime = 0.0;
  std::vector<std::byte> payload;  ///< empty in modeled-only transfers
};

/// Per-world-rank receive queue.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> queue;
};

}  // namespace summagen::sgmpi::detail

namespace summagen::sgmpi {

namespace detail {
/// Monotone id source for Context::uid (defined in runtime.cpp).
std::uint64_t next_context_uid();
}  // namespace detail

/// Whole-runtime shared state (one per Runtime).
class Context {
 public:
  /// Process-unique id of this runtime instance. Lets per-runtime cache
  /// keys (the blas pack cache) stay distinct across Runtime lifetimes
  /// even when allocator reuse hands a new Context the same address.
  const std::uint64_t uid = detail::next_context_uid();

  explicit Context(Config config_in)
      : config(std::move(config_in)),
        clocks(static_cast<std::size_t>(config.nranks)),
        event_log(config.record_events),
        mailboxes(static_cast<std::size_t>(config.nranks)) {
    if (!config.node_of.empty() &&
        config.node_of.size() != static_cast<std::size_t>(config.nranks)) {
      throw std::invalid_argument("sgmpi: node_of size != nranks");
    }
    // State 0 is the world communicator.
    std::vector<int> world(static_cast<std::size_t>(config.nranks));
    for (int r = 0; r < config.nranks; ++r)
      world[static_cast<std::size_t>(r)] = r;
    states.emplace_back(world);
    states.back().link = link_for(world);
    init_topology(states.back());
    subgroup_cache.emplace(std::move(world), 0);
    if (!config.faults.empty() || config.adaptive) {
      faults = std::make_unique<detail::FaultRuntime>(
          config.faults, config.nranks, config.fault_detect_s,
          config.max_send_attempts, config.send_retry_backoff_s);
      faults->on_trigger = [this] { notify_all_waiters(); };
      faults->fabric_reset = [this] { reset_fabric(); };
    }
  }

  /// Deque elements have stable addresses, but indexing walks the deque's
  /// internal node map, which reallocates when `subgroup_state` appends —
  /// so the walk itself must hold the lock. The returned reference stays
  /// valid after release.
  detail::CommState& state(std::size_t index) {
    std::lock_guard<std::mutex> lock(states_mutex);
    return states[index];
  }

  int node_of(int rank) const {
    if (config.node_of.empty()) return 0;
    return config.node_of[static_cast<std::size_t>(rank)];
  }

  /// Per-node member counts of a communicator, summarised into the fields
  /// two-level collective pricing reads.
  void init_topology(detail::CommState& st) const {
    st.n_nodes = 1;
    st.max_node_ranks = static_cast<int>(st.members.size());
    if (config.node_of.empty()) return;
    std::map<int, int> per_node;
    for (int r : st.members) ++per_node[node_of(r)];
    st.n_nodes = static_cast<int>(per_node.size());
    st.max_node_ranks = 1;
    for (const auto& [node, count] : per_node) {
      (void)node;
      st.max_node_ranks = std::max(st.max_node_ranks, count);
    }
  }

  /// Intra-node fabric when every listed rank shares a node, inter-node
  /// link otherwise.
  trace::HockneyParams link_for(const std::vector<int>& ranks) const {
    if (config.node_of.empty() || ranks.size() < 2) return config.link;
    const int first = node_of(ranks.front());
    for (int r : ranks) {
      if (node_of(r) != first) return config.internode_link;
    }
    return config.link;
  }

  /// Returns the index of the cached communicator state for `members`,
  /// creating it if needed. Communicators are cached by member list: every
  /// logical re-creation with the same members reuses the state, which is
  /// sound because all members order their operations identically.
  std::size_t subgroup_state(const std::vector<int>& members) {
    std::lock_guard<std::mutex> lock(states_mutex);
    const auto it = subgroup_cache.find(members);
    if (it != subgroup_cache.end()) return it->second;
    states.emplace_back(members);
    states.back().link = link_for(members);
    init_topology(states.back());
    const std::size_t index = states.size() - 1;
    subgroup_cache.emplace(members, index);
    return index;
  }

  /// Unwind check run by every blocked wait and operation entry: throws
  /// AbortedError when the run is aborting, and (when fault injection is
  /// active) lets the fault runtime trigger due events / surface failures
  /// for `world_rank`. With an empty fault plan this is exactly the old
  /// abort-flag check.
  void unwind_check(int world_rank) {
    if (aborted.load(std::memory_order_relaxed)) throw AbortedError();
    if (faults) {
      faults->poll(world_rank, clocks[static_cast<std::size_t>(world_rank)]);
    }
  }

  /// Wakes every blocked wait in the runtime (meetings, async-collective
  /// waiters, mailbox receivers) so they re-run their unwind check.
  void notify_all_waiters() {
    {
      std::lock_guard<std::mutex> lock(states_mutex);
      for (auto& st : states) {
        st.meeting.notify();
        st.async_cv.notify_all();
      }
    }
    for (auto& box : mailboxes) box.cv.notify_all();
  }

  /// Resets all communicator fabric to its idle state: in-flight async
  /// slots, posting sequence counters, meeting scratch, and mailboxes.
  /// Called by the shrink finaliser while every live rank is parked in the
  /// shrink gate (so nothing is mid-operation) — unwound ranks leave
  /// divergent sequence counters and orphaned slots behind, which would
  /// mismatch the first post-recovery collective.
  void reset_fabric() {
    {
      std::lock_guard<std::mutex> lock(states_mutex);
      for (auto& st : states) {
        {
          std::lock_guard<std::mutex> async_lock(st.async_mutex);
          st.async_slots.clear();
          std::fill(st.next_post_seq.begin(), st.next_post_seq.end(), 0);
          st.entry_max = 0.0;
          st.op_complete = 0.0;
          st.reduce_acc = 0.0;
          st.reduce_started = false;
          st.gather_buf.clear();
          st.reduce_buf.clear();
          st.reduce_ranks.clear();
        }
        st.meeting.reset();
      }
    }
    for (auto& box : mailboxes) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.clear();
    }
  }

  Config config;
  std::vector<trace::VirtualClock> clocks;
  trace::EventLog event_log;
  std::unique_ptr<detail::FaultRuntime> faults;  ///< null when plan empty
  std::atomic<bool> aborted{false};
  bool poisoned = false;  ///< set after an aborted run; Runtime enforces

  std::mutex states_mutex;
  std::deque<detail::CommState> states;  ///< stable addresses
  std::map<std::vector<int>, std::size_t> subgroup_cache;

  std::vector<detail::Mailbox> mailboxes;
};

}  // namespace summagen::sgmpi
